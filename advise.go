package xpathviews

// This file is the view-advisor facade: a workload recorder hooked into
// the serving layer, and Advise/ApplyAdvice, which close the
// materialization loop the paper leaves open — observe traffic, advise
// a view set under a space budget, re-materialize, serve faster. The
// machinery lives in internal/advisor.

import (
	"errors"
	"fmt"

	"xpathviews/internal/advisor"
	"xpathviews/internal/pattern"
	"xpathviews/internal/xpath"
)

// Recorder is the workload recorder (see internal/advisor). Attach one
// with SetRecorder and enable sampling to collect the served workload.
type Recorder = advisor.Recorder

// NewRecorder creates a recorder; see advisor.NewRecorder. The store
// argument may be nil for in-memory tallies.
var NewRecorder = advisor.NewRecorder

// AdviceOptions re-exports the advisor's tuning knobs.
type AdviceOptions = advisor.Options

// Advice re-exports the advisor's result.
type Advice = advisor.Advice

// SetRecorder attaches (or, with nil, detaches) the workload recorder.
// Recording costs one atomic load per Answer* call while the recorder
// is absent or its sampling is disabled.
func (s *System) SetRecorder(r *Recorder) { s.rec.Store(r) }

// WorkloadRecorder returns the attached recorder, or nil.
func (s *System) WorkloadRecorder() *Recorder { return s.rec.Load() }

// observe samples one served query into the attached recorder, if any.
// q must be the minimized pattern; err is the serving outcome.
func (s *System) observe(q *pattern.Pattern, viewAnswered bool, err error) {
	r := s.rec.Load()
	if r == nil {
		return
	}
	r.RecordPattern(q, classifyOutcome(viewAnswered, err))
}

// classifyOutcome maps a serving result onto the recorder's buckets.
func classifyOutcome(viewAnswered bool, err error) advisor.Outcome {
	switch {
	case err == nil && viewAnswered:
		return advisor.Answered
	case err == nil:
		return advisor.FellBack
	case errors.Is(err, ErrBudgetExceeded):
		return advisor.BudgetExhausted
	default:
		return advisor.Failed
	}
}

// Advise proposes a view set for the workload under opts.ByteBudget,
// using the system's document. The workload typically comes from
// WorkloadRecorder().Snapshot() or a workload file
// (advisor.StatsFromEntries). Advise only reads the document; it does
// not change the materialized set — pass the result to ApplyAdvice.
func (s *System) Advise(stats []advisor.QueryStat, opts AdviceOptions) (*Advice, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	adv, err := advisor.Advise(s.doc, s.enc, s.registry.Index, stats, opts)
	if err == nil {
		// The advised workload is, by definition, the distribution the
		// next view set is designed for: arm the drift detector so
		// serving can tell when live traffic stops looking like it.
		s.SetDesignWorkload(stats)
	}
	return adv, err
}

// ApplyAdvice materializes the advised views, returning their IDs. Views
// that fail to materialize (e.g. the document changed since Advise)
// abort with an error after rolling back the views added so far.
func (s *System) ApplyAdvice(adv *Advice) ([]int, error) {
	ids := make([]int, 0, len(adv.Views))
	for _, av := range adv.Views {
		p, err := xpath.Parse(av.XPath)
		if err != nil {
			s.rollbackViews(ids)
			return nil, fmt.Errorf("xpathviews: advice view %q: %w", av.XPath, err)
		}
		id, err := s.AddViewPattern(p, adv.PerViewLimit)
		if err != nil {
			s.rollbackViews(ids)
			return nil, fmt.Errorf("xpathviews: advice view %q: %w", av.XPath, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func (s *System) rollbackViews(ids []int) {
	for _, id := range ids {
		s.RemoveView(id)
	}
}
