package xpathviews_test

// Tests for the observability layer: metrics invariants under a
// concurrent hammer, span-tree shapes per serving path, the slow-query
// log, fault-injection counters, and the metrics exposition.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"xpathviews"
	"xpathviews/internal/faults"
	"xpathviews/internal/paperdata"
)

// obsSystem builds the paper's running example with an isolated metrics
// registry, so counter assertions don't race with other tests sharing
// the process default.
func obsSystem(t *testing.T) (*xpathviews.System, *xpathviews.MetricsRegistry) {
	t.Helper()
	sys, err := xpathviews.OpenWithFST(paperdata.BookTree(), paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range paperdata.TableIViews() {
		if _, err := sys.AddView(src, 0); err != nil {
			t.Fatalf("AddView(%q): %v", src, err)
		}
	}
	reg := xpathviews.NewMetricsRegistry()
	sys.SetMetricsRegistry(reg)
	return sys, reg
}

func counterVal(reg *xpathviews.MetricsRegistry, name string) int64 {
	return reg.Counter(name).Value()
}

// TestMetricsHammer pounds one hot query from 64 goroutines and checks
// the fundamental accounting invariants: every call is counted, no call
// errs, and every call is classified as exactly one plan-cache hit or
// miss. Run under -race in CI.
func TestMetricsHammer(t *testing.T) {
	sys, reg := obsSystem(t)
	const (
		goroutines = 64
		perG       = 32
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := sys.AnswerContext(context.Background(), paperdata.QueryE,
					xpathviews.Options{Strategy: xpathviews.HV}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	const calls = goroutines * perG
	if got := counterVal(reg, "xpv_answers_total"); got != calls {
		t.Fatalf("xpv_answers_total = %d, want %d", got, calls)
	}
	if got := counterVal(reg, "xpv_answer_errors_total"); got != 0 {
		t.Fatalf("xpv_answer_errors_total = %d, want 0", got)
	}
	hits := counterVal(reg, "xpv_plan_cache_hits_total")
	misses := counterVal(reg, "xpv_plan_cache_misses_total")
	if hits+misses != calls {
		t.Fatalf("hits(%d) + misses(%d) = %d, want %d", hits, misses, hits+misses, calls)
	}
	if misses == 0 {
		t.Fatal("expected at least one plan-cache miss on the cold key")
	}
	if hits == 0 {
		t.Fatal("expected plan-cache hits on a hammered hot key")
	}
}

// spanNames collects the direct child names of a span.
func spanNames(sp *xpathviews.Span) []string {
	var out []string
	for _, c := range sp.Children() {
		out = append(out, c.Name())
	}
	return out
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestTraceShapeMiss: a cold query's span tree covers the full
// pipeline — parse, plan (vfilter + select inside), rewrite
// (refine/join/extract inside), collect — and the plan span records the
// cache miss.
func TestTraceShapeMiss(t *testing.T) {
	sys, _ := obsSystem(t)
	tr := xpathviews.NewTrace()
	_, err := sys.AnswerContext(context.Background(), paperdata.QueryE,
		xpathviews.Options{Strategy: xpathviews.HV, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	names := spanNames(root)
	for _, want := range []string{"parse", "plan", "rewrite", "collect"} {
		if !hasName(names, want) {
			t.Fatalf("root children %v missing %q\n%s", names, want, tr.Text())
		}
	}
	plan := tr.Find("plan")
	if v, _ := plan.Attr("cache"); v != "miss" {
		t.Fatalf("plan cache attr = %v, want miss\n%s", v, tr.Text())
	}
	pnames := spanNames(plan)
	if !hasName(pnames, "vfilter") || !hasName(pnames, "select") {
		t.Fatalf("plan children %v, want vfilter+select\n%s", pnames, tr.Text())
	}
	rw := tr.Find("rewrite")
	rnames := spanNames(rw)
	for _, want := range []string{"refine", "join", "extract"} {
		if !hasName(rnames, want) {
			t.Fatalf("rewrite children %v missing %q\n%s", rnames, want, tr.Text())
		}
	}
	if root.Duration() <= 0 {
		t.Fatal("root span has no duration")
	}
}

// TestTraceShapeHit: the warm path's tree shows the hit and skips
// filtering and selection entirely.
func TestTraceShapeHit(t *testing.T) {
	sys, _ := obsSystem(t)
	opts := xpathviews.Options{Strategy: xpathviews.HV}
	if _, err := sys.AnswerContext(context.Background(), paperdata.QueryE, opts); err != nil {
		t.Fatal(err)
	}
	tr := xpathviews.NewTrace()
	opts.Trace = tr
	res, err := sys.AnswerContext(context.Background(), paperdata.QueryE, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlanCacheHit {
		t.Fatal("warm query did not report PlanCacheHit")
	}
	if v, _ := tr.Find("plan").Attr("cache"); v != "hit" {
		t.Fatalf("plan cache attr = %v, want hit\n%s", v, tr.Text())
	}
	if tr.Find("vfilter") != nil || tr.Find("select") != nil {
		t.Fatalf("hit path ran filtering/selection:\n%s", tr.Text())
	}
	if tr.Find("rewrite") == nil {
		t.Fatalf("hit path skipped rewriting:\n%s", tr.Text())
	}
}

// TestTraceShapeNotAnswerable: an unanswerable query's tree stops at
// the plan (marked negative on a repeat), with no rewrite stage.
func TestTraceShapeNotAnswerable(t *testing.T) {
	sys, _ := obsSystem(t)
	const q = "//nosuchlabel[whatever]"
	opts := xpathviews.Options{Strategy: xpathviews.HV}
	if _, err := sys.AnswerContext(context.Background(), q, opts); !errors.Is(err, xpathviews.ErrNotAnswerable) {
		t.Fatalf("err = %v, want ErrNotAnswerable", err)
	}
	tr := xpathviews.NewTrace()
	opts.Trace = tr
	if _, err := sys.AnswerContext(context.Background(), q, opts); !errors.Is(err, xpathviews.ErrNotAnswerable) {
		t.Fatalf("err = %v, want ErrNotAnswerable", err)
	}
	plan := tr.Find("plan")
	if plan == nil {
		t.Fatalf("no plan span:\n%s", tr.Text())
	}
	if v, _ := plan.Attr("negative"); v != true {
		t.Fatalf("plan negative attr = %v, want true\n%s", v, tr.Text())
	}
	if tr.Find("rewrite") != nil {
		t.Fatalf("negative plan still ran rewriting:\n%s", tr.Text())
	}
	if v, _ := tr.Root().Attr("err"); v == nil {
		t.Fatalf("root span lost the error attr:\n%s", tr.Text())
	}
}

// TestTraceShapeFault: an injected join fault surfaces as ErrInternal,
// the rewrite span carries the error, and the per-point injection
// counter on the default registry moves.
func TestTraceShapeFault(t *testing.T) {
	sys, _ := obsSystem(t)
	// Warm the plan so the fault hits the rewrite stage, not planning.
	opts := xpathviews.Options{Strategy: xpathviews.HV}
	if _, err := sys.AnswerContext(context.Background(), paperdata.QueryE, opts); err != nil {
		t.Fatal(err)
	}
	injected := xpathviews.DefaultMetricsRegistry().
		Counter(`xpv_fault_injected_total{point="rewrite.join"}`).Value()
	if !faults.ArmN("rewrite.join", faults.Error, 1) {
		t.Fatal("rewrite.join fault point not registered")
	}
	defer faults.DisarmAll()
	tr := xpathviews.NewTrace()
	opts.Trace = tr
	_, err := sys.AnswerContext(context.Background(), paperdata.QueryE, opts)
	if !errors.Is(err, xpathviews.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	rw := tr.Find("rewrite")
	if rw == nil {
		t.Fatalf("no rewrite span:\n%s", tr.Text())
	}
	if v, _ := rw.Attr("err"); v == nil {
		t.Fatalf("rewrite span lost the fault error:\n%s", tr.Text())
	}
	after := xpathviews.DefaultMetricsRegistry().
		Counter(`xpv_fault_injected_total{point="rewrite.join"}`).Value()
	if after != injected+1 {
		t.Fatalf("injection counter moved %d -> %d, want +1", injected, after)
	}
}

// TestResultStageTimings: the per-call nanosecond accounting is
// populated without any tracing — full pipeline on a miss, rewrite-only
// on a hit (satellite of the PR: timings on the plan-cache-hit path).
func TestResultStageTimings(t *testing.T) {
	sys, _ := obsSystem(t)
	opts := xpathviews.Options{Strategy: xpathviews.HV}
	cold, err := sys.AnswerContext(context.Background(), paperdata.QueryE, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PlanCacheHit {
		t.Fatal("cold call reported a plan-cache hit")
	}
	if cold.ParseNanos <= 0 || cold.FilterNanos <= 0 || cold.SelectNanos <= 0 {
		t.Fatalf("cold call missing stage timings: parse=%d filter=%d select=%d",
			cold.ParseNanos, cold.FilterNanos, cold.SelectNanos)
	}
	if cold.RefineNanos <= 0 || cold.ExtractNanos <= 0 {
		t.Fatalf("cold call missing rewrite timings: refine=%d extract=%d",
			cold.RefineNanos, cold.ExtractNanos)
	}
	if cold.TotalNanos < cold.RefineNanos {
		t.Fatalf("total %d < refine %d", cold.TotalNanos, cold.RefineNanos)
	}
	warm, err := sys.AnswerContext(context.Background(), paperdata.QueryE, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.PlanCacheHit {
		t.Fatal("warm call missed the plan cache")
	}
	if warm.FilterNanos != 0 || warm.SelectNanos != 0 {
		t.Fatalf("hit path reported filter/select time: %d/%d", warm.FilterNanos, warm.SelectNanos)
	}
	if warm.RefineNanos <= 0 || warm.ExtractNanos <= 0 {
		t.Fatalf("hit path missing rewrite timings: refine=%d extract=%d",
			warm.RefineNanos, warm.ExtractNanos)
	}
}

// TestSlowQueryLog: arming the threshold records entries (with the
// query text and cache status); disarming stops recording.
func TestSlowQueryLog(t *testing.T) {
	sys, reg := obsSystem(t)
	sys.SetSlowQueryThreshold(1) // 1ns: everything is slow
	opts := xpathviews.Options{Strategy: xpathviews.HV}
	for i := 0; i < 2; i++ {
		if _, err := sys.AnswerContext(context.Background(), paperdata.QueryE, opts); err != nil {
			t.Fatal(err)
		}
	}
	entries := sys.SlowQueries()
	if len(entries) != 2 {
		t.Fatalf("slow log has %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.Query != paperdata.QueryE {
			t.Fatalf("slow entry query = %q, want %q", e.Query, paperdata.QueryE)
		}
		if e.Total <= 0 {
			t.Fatalf("slow entry has no total duration: %+v", e)
		}
	}
	if !entries[1].CacheHit {
		t.Fatal("second slow entry should be a plan-cache hit")
	}
	if got := counterVal(reg, "xpv_slow_queries_total"); got != 2 {
		t.Fatalf("xpv_slow_queries_total = %d, want 2", got)
	}
	sys.SetSlowQueryThreshold(0)
	if _, err := sys.AnswerContext(context.Background(), paperdata.QueryE, opts); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.SlowQueries()); got != 2 {
		t.Fatalf("disarmed slow log still recorded: %d entries", got)
	}
}

// TestResilientRungMetrics: a query no view answers falls down the
// chain to BN; the fallback counter and the served-rung counter both
// record it.
func TestResilientRungMetrics(t *testing.T) {
	sys, reg := obsSystem(t)
	tr := xpathviews.NewTrace()
	res, err := sys.AnswerResilient(context.Background(), "//nosuchlabel",
		xpathviews.Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "BN" {
		t.Fatalf("rung = %q, want BN", res.Rung)
	}
	if !res.Degraded {
		t.Fatal("result not marked degraded")
	}
	if got := counterVal(reg, `xpv_resilient_rung_served_total{rung="BN"}`); got != 1 {
		t.Fatalf("BN served counter = %d, want 1", got)
	}
	if got := counterVal(reg, "xpv_resilient_fallbacks_total"); got < 2 {
		t.Fatalf("fallback counter = %d, want >= 2", got)
	}
	// The trace shows one span per attempted rung.
	names := spanNames(tr.Root())
	for _, want := range []string{"rung:HV", "rung:BN"} {
		if !hasName(names, want) {
			t.Fatalf("resilient trace %v missing %q\n%s", names, want, tr.Text())
		}
	}
}

// TestDumpMetrics: the text exposition carries both registry metrics
// and the live system gauges.
func TestDumpMetrics(t *testing.T) {
	sys, _ := obsSystem(t)
	if _, err := sys.AnswerContext(context.Background(), paperdata.QueryE,
		xpathviews.Options{Strategy: xpathviews.HV}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sys.DumpMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"xpv_answers_total 1",
		"xpv_answer_ns_count 1",
		"xpv_plan_cache_misses_total 1",
		"xpv_plancache_len",
		"xpv_views 4",
		"xpv_rewrite_pool_gets",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DumpMetrics output missing %q:\n%s", want, out)
		}
	}
}

// TestPerCallMetricsOverride: Options.Metrics redirects one call's
// counters without touching the system registry.
func TestPerCallMetricsOverride(t *testing.T) {
	sys, sysReg := obsSystem(t)
	callReg := xpathviews.NewMetricsRegistry()
	if _, err := sys.AnswerContext(context.Background(), paperdata.QueryE,
		xpathviews.Options{Strategy: xpathviews.HV, Metrics: callReg}); err != nil {
		t.Fatal(err)
	}
	if got := counterVal(callReg, "xpv_answers_total"); got != 1 {
		t.Fatalf("override registry answers = %d, want 1", got)
	}
	if got := counterVal(sysReg, "xpv_answers_total"); got != 0 {
		t.Fatalf("system registry answers = %d, want 0", got)
	}
}

// TestSlowLogTimeMonotonic guards the slow log against a zero Time
// field (the ring must stamp entries).
func TestSlowLogStamps(t *testing.T) {
	sys, _ := obsSystem(t)
	sys.SetSlowQueryThreshold(time.Nanosecond)
	if _, err := sys.AnswerContext(context.Background(), paperdata.QueryE,
		xpathviews.Options{Strategy: xpathviews.HV}); err != nil {
		t.Fatal(err)
	}
	e := sys.SlowQueries()
	if len(e) != 1 || e[0].Time.IsZero() {
		t.Fatalf("slow entry not stamped: %+v", e)
	}
}
