package xpathviews_test

import (
	"context"
	"errors"
	"testing"

	"xpathviews"
	"xpathviews/internal/dewey"
	"xpathviews/internal/faults"
	"xpathviews/internal/paperdata"
)

// chaosSystem is the book-tree fixture with the paper's Table I views:
// every strategy and every registered fault point is reachable on it.
func chaosSystem(t *testing.T) *xpathviews.System {
	t.Helper()
	sys, err := xpathviews.OpenWithFST(paperdata.BookTree(), paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range paperdata.TableIViews() {
		if _, err := sys.AddView(src, xpathviews.DefaultFragmentLimit); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

var chaosStrategies = []xpathviews.Strategy{
	xpathviews.BN, xpathviews.BF, xpathviews.MN,
	xpathviews.MV, xpathviews.HV, xpathviews.CV,
}

// sweep exercises every answering entry point once, asserting that each
// call either succeeds or fails with a contained, typed error — never a
// crash of the test binary.
func sweep(t *testing.T, sys *xpathviews.System, point string) {
	t.Helper()
	for _, strat := range chaosStrategies {
		// NoPlanCache: the sweep asserts each stage's fault point fires,
		// so every call must run the full uncached pipeline (a plan-cache
		// hit legitimately skips filtering and selection).
		res, err := sys.AnswerContext(context.Background(), paperdata.QueryE,
			xpathviews.Options{Strategy: strat, NoPlanCache: true})
		if err == nil {
			if res == nil {
				t.Fatalf("[%s] %v: nil result without error", point, strat)
			}
			continue
		}
		if !errors.Is(err, xpathviews.ErrInternal) {
			t.Fatalf("[%s] %v: error not contained as ErrInternal: %v", point, strat, err)
		}
		var ie *xpathviews.InternalError
		if !errors.As(err, &ie) || ie.Stage == "" {
			t.Fatalf("[%s] %v: ErrInternal without a stage: %v", point, strat, err)
		}
	}
	if _, _, err := sys.AnswerContained(paperdata.QueryE); err != nil && !errors.Is(err, xpathviews.ErrInternal) {
		t.Fatalf("[%s] contained: error not contained as ErrInternal: %v", point, err)
	}

	// Mutation surface: an insert/delete round-trip through the
	// incremental maintenance path (faults × updates). The fault point
	// fires before any state changes, so a contained failure must leave
	// the document and views exactly as they were; a successful insert is
	// reverted by the paired delete.
	parent := dewey.Code{0, 8} // the book tree's s2 section
	ins, err := sys.InsertSubtree(parent, "<p/>")
	if err != nil {
		if !errors.Is(err, xpathviews.ErrInternal) {
			t.Fatalf("[%s] insert: error not contained as ErrInternal: %v", point, err)
		}
		var ie *xpathviews.InternalError
		if !errors.As(err, &ie) || ie.Stage == "" {
			t.Fatalf("[%s] insert: ErrInternal without a stage: %v", point, err)
		}
	} else {
		if _, derr := sys.DeleteSubtree(ins.Code); derr != nil && !errors.Is(derr, xpathviews.ErrInternal) {
			t.Fatalf("[%s] delete: error not contained as ErrInternal: %v", point, derr)
		}
	}
}

// TestChaosRegisteredPoints checks the full set of fault points the
// pipeline declares, so a new stage cannot silently ship without one.
func TestChaosRegisteredPoints(t *testing.T) {
	want := []string{
		"engine.bn", "engine.bf", "vfilter.filtering",
		"selection.minimum", "selection.heuristic", "selection.costbased",
		"rewrite.refine", "rewrite.join", "rewrite.extract", "rewrite.contained",
		"maintain.apply",
	}
	names := map[string]bool{}
	for _, n := range faults.Names() {
		names[n] = true
	}
	for _, w := range want {
		if !names[w] {
			t.Errorf("fault point %q not registered (have %v)", w, faults.Names())
		}
	}
}

// TestChaosEveryPointEveryMode arms each registered fault point in error
// and panic mode and drives the whole answering surface through it. The
// acceptance bar: a typed ErrInternal or a successful (possibly
// degraded) Result — never an uncontained panic.
func TestChaosEveryPointEveryMode(t *testing.T) {
	sys := chaosSystem(t)
	modes := []struct {
		name string
		m    faults.Mode
	}{{"error", faults.Error}, {"panic", faults.Panic}}
	for _, name := range faults.Names() {
		for _, mode := range modes {
			t.Run(name+"/"+mode.name, func(t *testing.T) {
				defer faults.DisarmAll()
				if !faults.Arm(name, mode.m) {
					t.Fatalf("cannot arm %q", name)
				}
				sweep(t, sys, name)
				if faults.Hits(name) == 0 {
					t.Fatalf("point %q never fired during the sweep", name)
				}
			})
		}
	}
	// With everything disarmed again the pipeline is healthy.
	res, err := sys.Answer(paperdata.QueryE, xpathviews.HV)
	if err != nil || len(res.Answers) == 0 {
		t.Fatalf("pipeline unhealthy after chaos: %v %v", res, err)
	}
}

// TestChaosResilientDegrades: under an injected fault in the primary
// rung, AnswerResilient still serves the query and records both the rung
// that answered and why the earlier one was skipped.
func TestChaosResilientDegrades(t *testing.T) {
	sys := chaosSystem(t)
	for _, mode := range []faults.Mode{faults.Error, faults.Panic} {
		defer faults.DisarmAll()
		faults.Arm("selection.heuristic", mode)
		res, err := sys.AnswerResilient(context.Background(), paperdata.QueryE,
			xpathviews.Options{NoPlanCache: true})
		if err != nil {
			t.Fatalf("mode %v: resilient chain failed outright: %v", mode, err)
		}
		if !res.Degraded || res.Rung == "HV" {
			t.Fatalf("mode %v: expected degradation past HV, got rung=%q degraded=%v reasons=%v",
				mode, res.Rung, res.Degraded, res.DegradedReasons)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("mode %v: degraded chain lost the answers", mode)
		}
		if len(res.DegradedReasons) == 0 {
			t.Fatalf("mode %v: no degradation reasons recorded", mode)
		}
		faults.DisarmAll()
	}

	// A fault in every view-based rung degrades all the way to direct
	// evaluation.
	defer faults.DisarmAll()
	faults.Arm("vfilter.filtering", faults.Panic)
	faults.Arm("rewrite.contained", faults.Error)
	res, err := sys.AnswerResilient(context.Background(), paperdata.QueryE,
		xpathviews.Options{NoPlanCache: true})
	if err != nil {
		t.Fatalf("resilient chain failed outright: %v", err)
	}
	if res.Rung != "BN" || !res.Degraded {
		t.Fatalf("expected degradation to BN, got rung=%q degraded=%v", res.Rung, res.Degraded)
	}
	base, err := sys.Answer(paperdata.QueryE, xpathviews.BF)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(base.Answers) {
		t.Fatalf("degraded answers differ: %d vs %d", len(res.Answers), len(base.Answers))
	}
}
