package xpathviews_test

// Differential correctness of incremental view maintenance: after every
// mutation batch, each incrementally maintained view must be
// indistinguishable from a view rematerialized from scratch over the
// mutated document, and every strategy must agree with direct
// evaluation. Plus WAL replay equivalence, scoped plan invalidation, and
// a mixed read/write hammer.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"

	"xpathviews"
	"xpathviews/internal/dewey"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/storage"
	"xpathviews/internal/views"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
)

// freshEqual asserts every registered view is fragment-for-fragment
// identical to a from-scratch materialization over the current document.
func freshEqual(t *testing.T, sys *xpathviews.System, tag string) {
	t.Helper()
	doc, enc := sys.Document(), sys.Encoding()
	if err := doc.Validate(); err != nil {
		t.Fatalf("%s: document invalid after mutations: %v", tag, err)
	}
	for _, v := range sys.Registry().Views() {
		fresh, err := views.Materialize(v.ID, v.Pattern, doc, enc, nil, 0)
		if err != nil {
			t.Fatalf("%s: rematerialize view %d: %v", tag, v.ID, err)
		}
		if len(v.Fragments) != len(fresh.Fragments) {
			t.Fatalf("%s: view %d has %d fragments, fresh materialization has %d",
				tag, v.ID, len(v.Fragments), len(fresh.Fragments))
		}
		total := 0
		for i := range fresh.Fragments {
			a, b := &v.Fragments[i], &fresh.Fragments[i]
			if dewey.Compare(a.Code, b.Code) != 0 {
				t.Fatalf("%s: view %d fragment %d code %s, fresh %s", tag, v.ID, i, a.Code, b.Code)
			}
			if got, want := a.Tree.Root().String(), b.Tree.Root().String(); got != want {
				t.Fatalf("%s: view %d fragment %d content drifted:\n got %s\nwant %s", tag, v.ID, i, got, want)
			}
			if len(a.NodeCodes) != len(b.NodeCodes) {
				t.Fatalf("%s: view %d fragment %d has %d node codes, fresh %d",
					tag, v.ID, i, len(a.NodeCodes), len(b.NodeCodes))
			}
			for j := range a.NodeCodes {
				if dewey.Compare(a.NodeCodes[j], b.NodeCodes[j]) != 0 {
					t.Fatalf("%s: view %d fragment %d node code %d: %s vs %s",
						tag, v.ID, i, j, a.NodeCodes[j], b.NodeCodes[j])
				}
			}
			if a.Bytes != b.Bytes {
				t.Fatalf("%s: view %d fragment %d bytes %d, fresh %d", tag, v.ID, i, a.Bytes, b.Bytes)
			}
			total += a.Bytes
		}
		if v.TotalBytes != total || v.TotalBytes != fresh.TotalBytes {
			t.Fatalf("%s: view %d TotalBytes %d, fragments sum %d, fresh %d",
				tag, v.ID, v.TotalBytes, total, fresh.TotalBytes)
		}
	}
}

func answerCodes(res *xpathviews.Result) []string {
	out := make([]string, len(res.Answers))
	for i, a := range res.Answers {
		out[i] = a.Code.String()
	}
	slices.Sort(out)
	return out
}

// answersAgree asserts the view strategies return exactly the direct-
// evaluation answer set for each query on the mutated document.
func answersAgree(t *testing.T, sys *xpathviews.System, queries []string, tag string) {
	t.Helper()
	for _, q := range queries {
		base, err := sys.Answer(q, xpathviews.BN)
		if err != nil {
			t.Fatalf("%s: BN %s: %v", tag, q, err)
		}
		want := answerCodes(base)
		for _, strat := range []xpathviews.Strategy{xpathviews.HV, xpathviews.MV} {
			res, err := sys.Answer(q, strat)
			if errors.Is(err, xpathviews.ErrNotAnswerable) {
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v %s: %v", tag, strat, q, err)
			}
			if got := answerCodes(res); !slices.Equal(got, want) {
				t.Fatalf("%s: %v %s answers diverge from BN:\n got %v\nwant %v", tag, strat, q, got, want)
			}
		}
	}
}

// mutator drives a random but schema-valid stream of inserts and deletes
// against a System, tracking inserted subtree roots for later deletion.
type mutator struct {
	rng      *rand.Rand
	inserted []dewey.Code
}

func (m *mutator) emit(b *strings.Builder, fst *dewey.FST, label string, depth int) {
	kids := fst.ChildAlphabet(label)
	if depth == 0 || len(kids) == 0 || m.rng.Intn(2) == 0 {
		fmt.Fprintf(b, "<%s/>", label)
		return
	}
	fmt.Fprintf(b, "<%s>", label)
	for i, n := 0, 1+m.rng.Intn(2); i < n; i++ {
		m.emit(b, fst, kids[m.rng.Intn(len(kids))], depth-1)
	}
	fmt.Fprintf(b, "</%s>", label)
}

func (m *mutator) step(t *testing.T, sys *xpathviews.System) {
	t.Helper()
	if m.rng.Intn(2) == 0 || len(m.inserted) == 0 {
		doc, enc, fst := sys.Document(), sys.Encoding(), sys.FST()
		var parents []*xmltree.Node
		doc.Walk(func(n *xmltree.Node) bool {
			if len(fst.ChildAlphabet(n.Label)) > 0 {
				parents = append(parents, n)
			}
			return true
		})
		p := parents[m.rng.Intn(len(parents))]
		var b strings.Builder
		alpha := fst.ChildAlphabet(p.Label)
		m.emit(&b, fst, alpha[m.rng.Intn(len(alpha))], 2)
		res, err := sys.InsertSubtree(enc.MustCode(p), b.String())
		if err != nil {
			t.Fatalf("insert %s under %s: %v", b.String(), p.Label, err)
		}
		m.inserted = append(m.inserted, res.Code)
	} else {
		code := m.inserted[m.rng.Intn(len(m.inserted))]
		if _, err := sys.DeleteSubtree(code); err != nil {
			t.Fatalf("delete %s: %v", code, err)
		}
		keep := m.inserted[:0]
		for _, c := range m.inserted {
			if !dewey.IsPrefix(code, c) {
				keep = append(keep, c)
			}
		}
		m.inserted = keep
	}
}

// TestMutationDifferentialPaper: the paper's book fixture under targeted
// and random mutations, checked against from-scratch materialization
// after every batch.
func TestMutationDifferentialPaper(t *testing.T) {
	sys := chaosSystem(t)
	queries := []string{paperdata.QueryE, "//s[t]/p", "//s//p", "//s[p]/f"}
	freshEqual(t, sys, "seed")
	answersAgree(t, sys, queries, "seed")

	// Targeted: delete s3 (0.8.6) — it carries f1/i1, so QueryE loses
	// the s2 answer — then insert an equivalent section. The allocator
	// hands out the earliest gap in the section residue class (2 mod 4),
	// which is component 2: the new section lands between p1 and p2 in
	// document order.
	if _, err := sys.DeleteSubtree(dewey.Code{0, 8, 6}); err != nil {
		t.Fatal(err)
	}
	freshEqual(t, sys, "delete-s3")
	answersAgree(t, sys, queries, "delete-s3")
	res, err := sys.InsertSubtree(dewey.Code{0, 8}, "<s><t/><p/><f><i/></f></s>")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Code.String(); got != "0.8.2" {
		t.Fatalf("reinserted section got code %s, want the earliest gap 0.8.2", got)
	}
	freshEqual(t, sys, "reinsert-s3")
	answersAgree(t, sys, queries, "reinsert-s3")

	// Random interleaving in batches.
	m := &mutator{rng: rand.New(rand.NewSource(2008))}
	for batch := 0; batch < 6; batch++ {
		for i := 0; i < 8; i++ {
			m.step(t, sys)
		}
		tag := fmt.Sprintf("batch-%d", batch)
		freshEqual(t, sys, tag)
		answersAgree(t, sys, queries, tag)
	}
}

// TestMutationDifferentialXMark: the same differential bar on a
// generated XMark document with realistic views.
func TestMutationDifferentialXMark(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.02, Seed: 77})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{
		"//person/address/city",
		"//person[address]/name",
		"//item[location]/name",
		"//mail[from]/date",
		"//open_auction/bidder/increase",
	} {
		if _, err := sys.AddView(v, xpathviews.DefaultFragmentLimit); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"//person/address/city",
		"//person[address]/name",
		"//item[location]/name",
		"//mail[from]/date",
	}
	freshEqual(t, sys, "seed")
	answersAgree(t, sys, queries, "seed")
	m := &mutator{rng: rand.New(rand.NewSource(77))}
	for batch := 0; batch < 5; batch++ {
		for i := 0; i < 10; i++ {
			m.step(t, sys)
		}
		tag := fmt.Sprintf("batch-%d", batch)
		freshEqual(t, sys, tag)
		answersAgree(t, sys, queries, tag)
	}
}

// walMutations applies a fixed mutation script and returns the expected
// record count.
func walMutations(t *testing.T, sys *xpathviews.System) int {
	t.Helper()
	script := []struct {
		op   string
		code dewey.Code
		xml  string
	}{
		{"insert", dewey.Code{0, 8}, "<p/>"},
		{"insert", dewey.Code{0, 5}, "<s><t/><p/></s>"},
		{"delete", dewey.Code{0, 8, 6}, ""},
		{"insert", dewey.Code{0, 8}, "<s><t/><f><i/></f></s>"},
		{"delete", dewey.Code{0, 1}, ""},
	}
	var lastSeq uint64
	for i, sc := range script {
		var res *xpathviews.MaintainResult
		var err error
		if sc.op == "insert" {
			res, err = sys.InsertSubtree(sc.code, sc.xml)
		} else {
			res, err = sys.DeleteSubtree(sc.code)
		}
		if err != nil {
			t.Fatalf("script step %d (%s %s): %v", i, sc.op, sc.code, err)
		}
		if res.WALSeq <= lastSeq {
			t.Fatalf("script step %d: WALSeq %d not increasing past %d", i, res.WALSeq, lastSeq)
		}
		lastSeq = res.WALSeq
	}
	return len(script)
}

// sameState asserts two systems hold identical documents and identical
// view fragment stores.
func sameState(t *testing.T, a, b *xpathviews.System, tag string) {
	t.Helper()
	if got, want := a.Document().Root().String(), b.Document().Root().String(); got != want {
		t.Fatalf("%s: documents diverge:\n got %s\nwant %s", tag, got, want)
	}
	av, bv := a.Registry().Views(), b.Registry().Views()
	if len(av) != len(bv) {
		t.Fatalf("%s: view counts diverge: %d vs %d", tag, len(av), len(bv))
	}
	for i := range av {
		if len(av[i].Fragments) != len(bv[i].Fragments) {
			t.Fatalf("%s: view %d fragment counts diverge: %d vs %d",
				tag, av[i].ID, len(av[i].Fragments), len(bv[i].Fragments))
		}
		for j := range av[i].Fragments {
			fa, fb := &av[i].Fragments[j], &bv[i].Fragments[j]
			if dewey.Compare(fa.Code, fb.Code) != 0 || fa.Tree.Root().String() != fb.Tree.Root().String() {
				t.Fatalf("%s: view %d fragment %d diverges", tag, av[i].ID, j)
			}
		}
	}
}

// TestWALReplayEquality: replaying the log into a fresh seed system
// reproduces the mutated system bit-for-bit — documents, codes, and
// fragments.
func TestWALReplayEquality(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sys1 := chaosSystem(t)
	if n, err := sys1.AttachWAL(st); err != nil || n != 0 {
		t.Fatalf("attach empty wal: n=%d err=%v", n, err)
	}
	want := walMutations(t, sys1)
	if err := sys1.DetachWAL().Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sys2 := chaosSystem(t)
	n, err := sys2.AttachWAL(st2)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != want {
		t.Fatalf("replayed %d records, want %d", n, want)
	}
	sameState(t, sys1, sys2, "replay")
	freshEqual(t, sys2, "replay")

	// The replayed system keeps logging under continuing sequence
	// numbers: a further mutation must not collide with replayed keys.
	res, err := sys2.InsertSubtree(dewey.Code{0, 8}, "<p/>")
	if err != nil {
		t.Fatal(err)
	}
	if res.WALSeq != uint64(want)+1 {
		t.Fatalf("post-replay WALSeq = %d, want %d", res.WALSeq, want+1)
	}
}

// TestWALTornTail: garbage appended after the last complete record — a
// crash mid-append — is truncated by storage.Open, and the surviving
// prefix replays cleanly.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sys1 := chaosSystem(t)
	if _, err := sys1.AttachWAL(st); err != nil {
		t.Fatal(err)
	}
	want := walMutations(t, sys1)
	if err := sys1.DetachWAL().Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x7f, 0x01, 0x02, 0x03, 0x04}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := storage.Open(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer st2.Close()
	sys2 := chaosSystem(t)
	n, err := sys2.AttachWAL(st2)
	if err != nil {
		t.Fatalf("replay after torn tail: %v", err)
	}
	if n != want {
		t.Fatalf("replayed %d records after torn tail, want %d", n, want)
	}
	sameState(t, sys1, sys2, "torn-tail")
}

// TestScopedInvalidation: a mutation drops exactly the cached plans that
// cover a dirtied view; the global mode drops everything.
func TestScopedInvalidation(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.02, Seed: 5})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	idCity, err := sys.AddView("//person/address/city", xpathviews.DefaultFragmentLimit)
	if err != nil {
		t.Fatal(err)
	}
	idLoc, err := sys.AddView("//item/location", xpathviews.DefaultFragmentLimit)
	if err != nil {
		t.Fatal(err)
	}
	qCity, qLoc := "//person/address/city", "//item/location"
	warm := func(q string) {
		t.Helper()
		if _, err := sys.Answer(q, xpathviews.HV); err != nil {
			t.Fatalf("warm %s: %v", q, err)
		}
		res, err := sys.Answer(q, xpathviews.HV)
		if err != nil || !res.PlanCacheHit {
			t.Fatalf("warm %s: second call not a hit (err=%v)", q, err)
		}
	}
	hit := func(q string) bool {
		t.Helper()
		res, err := sys.Answer(q, xpathviews.HV)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return res.PlanCacheHit
	}
	// Pick any item as the mutation target.
	var item *xmltree.Node
	sys.Document().Walk(func(n *xmltree.Node) bool {
		if n.Label == "item" {
			item = n
			return false
		}
		return true
	})
	if item == nil {
		t.Fatal("no item in the generated document")
	}
	itemCode := sys.Encoding().MustCode(item)

	if !sys.ScopedInvalidation() {
		t.Fatal("scoped invalidation should be the default")
	}
	warm(qCity)
	warm(qLoc)
	genCity0, _ := sys.ViewGeneration(idCity)
	genLoc0, _ := sys.ViewGeneration(idLoc)
	inv0 := sys.PlanCacheStats().Invalidations

	res, err := sys.InsertSubtree(itemCode, "<location/>")
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyViews == 0 {
		t.Fatal("inserting a location dirtied no view")
	}
	if g, _ := sys.ViewGeneration(idLoc); g != genLoc0+1 {
		t.Fatalf("location view generation = %d, want %d", g, genLoc0+1)
	}
	if g, _ := sys.ViewGeneration(idCity); g != genCity0 {
		t.Fatalf("city view generation moved to %d on an unrelated mutation", g)
	}
	if !hit(qCity) {
		t.Fatal("scoped: plan over the untouched city view was dropped")
	}
	if hit(qLoc) {
		t.Fatal("scoped: plan over the dirtied location view survived")
	}
	if inv := sys.PlanCacheStats().Invalidations; inv <= inv0 {
		t.Fatalf("no invalidation recorded (before %d, after %d)", inv0, inv)
	}
	if !hit(qLoc) {
		t.Fatal("recomputed location plan did not re-enter the cache")
	}

	// Global mode: any mutation drops every plan.
	sys.SetScopedInvalidation(false)
	warm(qCity)
	warm(qLoc)
	if _, err := sys.InsertSubtree(itemCode, "<location/>"); err != nil {
		t.Fatal(err)
	}
	if hit(qCity) {
		t.Fatal("global: plan over the untouched city view survived a mutation")
	}
	if hit(qLoc) {
		t.Fatal("global: plan over the location view survived a mutation")
	}
}

// TestMaintainHammer: 64 goroutines of mixed reads, writes, and
// generation watching. Run with -race for the full acceptance bar; the
// final state must still equal a from-scratch materialization (every
// writer reverts its own inserts).
func TestMaintainHammer(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 7})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for _, v := range []string{
		"//person/address/city",
		"//item[location]/name",
		"//mail[from]/date",
		"//closed_auction/price",
	} {
		id, err := sys.AddView(v, xpathviews.DefaultFragmentLimit)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	queries := []string{
		"//person/address/city",
		"//item[location]/name",
		"//mail[from]/date",
		"//closed_auction/price",
	}

	// One mutation target per writer, codes resolved before any
	// goroutine starts (codes are stable, the lookup is not locked).
	var items []*xmltree.Node
	sys.Document().Walk(func(n *xmltree.Node) bool {
		if n.Label == "item" {
			items = append(items, n)
		}
		return true
	})
	const writers, readers = 16, 47
	if len(items) < writers {
		t.Fatalf("document too small: %d items for %d writers", len(items), writers)
	}
	parentCodes := make([]dewey.Code, writers)
	for i := range parentCodes {
		parentCodes[i] = sys.Encoding().MustCode(items[i])
	}

	var wg, watchWG sync.WaitGroup
	stop := make(chan struct{})
	// Generation watcher: per-view generations only move forward.
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		last := make(map[int]uint64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range ids {
				g, ok := sys.ViewGeneration(id)
				if !ok {
					t.Errorf("view %d vanished", id)
					return
				}
				if g < last[id] {
					t.Errorf("view %d generation went backwards: %d -> %d", id, last[id], g)
					return
				}
				last[id] = g
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			strats := []xpathviews.Strategy{xpathviews.HV, xpathviews.BN, xpathviews.MV}
			for i := 0; i < 25; i++ {
				q := queries[(r+i)%len(queries)]
				res, err := sys.Answer(q, strats[(r+i)%len(strats)])
				if err != nil {
					if errors.Is(err, xpathviews.ErrNotAnswerable) {
						continue
					}
					t.Errorf("reader %d: %s: %v", r, q, err)
					return
				}
				for _, a := range res.Answers {
					if a.Node == nil || len(a.Code) == 0 {
						t.Errorf("reader %d: %s: torn answer %+v", r, q, a)
						return
					}
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				res, err := sys.InsertSubtree(parentCodes[w],
					"<mailbox><mail><from/><to/><date/></mail></mailbox>")
				if err != nil {
					t.Errorf("writer %d insert: %v", w, err)
					return
				}
				if _, err := sys.DeleteSubtree(res.Code); err != nil {
					t.Errorf("writer %d delete %s: %v", w, res.Code, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	watchWG.Wait()

	// Every writer reverted its inserts, so the final fragment stores
	// must equal a clean materialization of the (net-unchanged) document.
	freshEqual(t, sys, "hammer-final")
	answersAgree(t, sys, queries, "hammer-final")
}
