package advisor_test

import (
	"path/filepath"
	"sync"
	"testing"

	"xpathviews/internal/advisor"
	"xpathviews/internal/pattern"
	"xpathviews/internal/storage"
	"xpathviews/internal/workload"
	"xpathviews/internal/xpath"
)

func mustParse(t *testing.T, s string) *pattern.Pattern {
	t.Helper()
	p, err := xpath.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return p
}

func TestRecorderTallies(t *testing.T) {
	r, err := advisor.NewRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSampling(1)
	a := mustParse(t, "//person/name")
	b := mustParse(t, "//item[.//keyword]/name")
	for i := 0; i < 5; i++ {
		r.RecordPattern(a, advisor.Answered)
	}
	r.RecordPattern(a, advisor.FellBack)
	r.RecordPattern(b, advisor.BudgetExhausted)
	r.RecordPattern(b, advisor.Failed)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d distinct queries, want 2", len(snap))
	}
	// Sorted by frequency descending: a (6) before b (2).
	if snap[0].Freq() != 6 || snap[1].Freq() != 2 {
		t.Fatalf("freqs = %d, %d; want 6, 2", snap[0].Freq(), snap[1].Freq())
	}
	if snap[0].Counts[advisor.Answered] != 5 || snap[0].Counts[advisor.FellBack] != 1 {
		t.Fatalf("top query counts = %v", snap[0].Counts)
	}
	if snap[1].Counts[advisor.BudgetExhausted] != 1 || snap[1].Counts[advisor.Failed] != 1 {
		t.Fatalf("second query counts = %v", snap[1].Counts)
	}
}

func TestRecorderDisabledRecordsNothing(t *testing.T) {
	r, err := advisor.NewRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}
	q := mustParse(t, "//person/name")
	for i := 0; i < 100; i++ {
		r.RecordPattern(q, advisor.Answered)
	}
	if n := r.Len(); n != 0 {
		t.Fatalf("disabled recorder tallied %d queries", n)
	}
}

func TestRecorderSamplingOneInN(t *testing.T) {
	r, err := advisor.NewRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSampling(4)
	q := mustParse(t, "//person/name")
	for i := 0; i < 100; i++ {
		r.RecordPattern(q, advisor.Answered)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d distinct queries, want 1", len(snap))
	}
	if f := snap[0].Freq(); f != 25 {
		t.Fatalf("1-in-4 sampling of 100 calls tallied %d, want 25", f)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r, err := advisor.NewRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSampling(1)
	queries := []string{"//person/name", "//item/name", "//open_auction/seller"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := mustParse(t, queries[g%len(queries)])
			for i := 0; i < 200; i++ {
				r.RecordPattern(q, advisor.Outcome(i%3))
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, st := range r.Snapshot() {
		total += st.Freq()
	}
	if total != 8*200 {
		t.Fatalf("lost records under concurrency: %d of %d", total, 8*200)
	}
}

func TestRecorderPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.log")
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := advisor.NewRecorder(st)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSampling(1)
	q := mustParse(t, "//person[address]/name")
	for i := 0; i < 7; i++ {
		r.RecordPattern(q, advisor.Answered)
	}
	r.RecordPattern(q, advisor.FellBack)
	if n := r.PersistErrors(); n != 0 {
		t.Fatalf("%d persist errors", n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2, err := advisor.NewRecorder(st2)
	if err != nil {
		t.Fatal(err)
	}
	snap := r2.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("reloaded %d queries, want 1", len(snap))
	}
	if snap[0].Freq() != 8 || snap[0].Counts[advisor.Answered] != 7 || snap[0].Counts[advisor.FellBack] != 1 {
		t.Fatalf("reloaded tallies wrong: %+v", snap[0])
	}

	// Reset must clear both memory and the store.
	r2.Reset()
	if r2.Len() != 0 {
		t.Fatal("Reset left in-memory tallies")
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	r3, err := advisor.NewRecorder(st3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Len() != 0 {
		t.Fatalf("Reset left %d persisted tallies", r3.Len())
	}
}

func TestStatsEntriesRoundTrip(t *testing.T) {
	entries := []workload.Entry{
		{Freq: 9, Query: "//person/name"},
		{Freq: 2, Query: "//item/name"},
	}
	stats := advisor.StatsFromEntries(entries)
	if len(stats) != 2 {
		t.Fatalf("got %d stats", len(stats))
	}
	for i, st := range stats {
		if st.Freq() != entries[i].Freq || st.Query != entries[i].Query {
			t.Fatalf("stat %d = %+v, want %+v", i, st, entries[i])
		}
	}
	back := advisor.EntriesFromStats(stats)
	for i := range entries {
		if back[i] != entries[i] {
			t.Fatalf("entry %d round-tripped to %+v", i, back[i])
		}
	}
}
