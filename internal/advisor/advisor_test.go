package advisor_test

import (
	"testing"

	"xpathviews/internal/advisor"
	"xpathviews/internal/dewey"
	"xpathviews/internal/pattern"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

func testDoc(t *testing.T) (*xmltree.Tree, *dewey.Encoding) {
	t.Helper()
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 42})
	enc, _, err := dewey.EncodeTree(doc)
	if err != nil {
		t.Fatal(err)
	}
	return doc, enc
}

func statsOf(entries ...workload.Entry) []advisor.QueryStat {
	return advisor.StatsFromEntries(entries)
}

// TestGenerateCandidatesNeverUniverse feeds the generator queries whose
// generalizations brush against the universe pattern (//*, //*//*) and
// checks every emitted candidate still carries a concrete label.
func TestGenerateCandidatesNeverUniverse(t *testing.T) {
	var pats []*pattern.Pattern
	for _, s := range []string{
		"//person/name",
		"//open_auction[bidder]/seller",
		"//*",
		"//*//*",
	} {
		pats = append(pats, pattern.Minimize(mustParse(t, s)))
	}
	freqs := []int{10, 5, 3, 1}
	cands := advisor.GenerateCandidates(pats, freqs, len(pats))
	if len(cands) == 0 {
		t.Fatal("no candidates generated")
	}
	seen := make(map[string]bool)
	for _, c := range cands {
		if advisor.IsUniverse(c.Pattern) {
			t.Fatalf("universe candidate emitted: %s (source %s)", c.Key, c.Source)
		}
		if seen[c.Key] {
			t.Fatalf("duplicate candidate %s", c.Key)
		}
		seen[c.Key] = true
	}
	// The all-wildcard queries alone must yield nothing at all.
	wild := []*pattern.Pattern{pattern.Minimize(mustParse(t, "//*"))}
	if got := advisor.GenerateCandidates(wild, []int{1}, 1); len(got) != 0 {
		t.Fatalf("universe query produced %d candidates", len(got))
	}
}

// TestAdviseRootOnlyQuery exercises the spine-length-1 edge: no wildcard
// steps, prefix == verbatim, and a branch hanging directly off the
// answer node.
func TestAdviseRootOnlyQuery(t *testing.T) {
	doc, enc := testDoc(t)
	stats := statsOf(
		workload.Entry{Freq: 10, Query: "//person"},
		workload.Entry{Freq: 5, Query: "//person[address]"},
	)
	adv, err := advisor.Advise(doc, enc, nil, stats, advisor.Options{ByteBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Views) == 0 {
		t.Fatal("no views advised for a root-only workload")
	}
	if adv.Predicted.WeightedFraction != 1 {
		t.Fatalf("root-only workload not fully covered: %+v", adv.Predicted)
	}
	if adv.TotalBytes > adv.ByteBudget {
		t.Fatalf("advised %d bytes over budget %d", adv.TotalBytes, adv.ByteBudget)
	}
}

// TestAdviseDeltaLeafPlacement checks answerability is predicted for
// both Δ placements: answer node at the end of the spine with a
// side branch (Δ interior to the leaf set) and answer node as the only
// spine node (Δ at the root).
func TestAdviseDeltaLeafPlacement(t *testing.T) {
	doc, enc := testDoc(t)
	stats := statsOf(
		// Δ = seller, second leaf = bidder branch.
		workload.Entry{Freq: 8, Query: "//open_auction[bidder]/seller"},
		// Δ = name at the spine leaf, no branches.
		workload.Entry{Freq: 4, Query: "//person/name"},
	)
	adv, err := advisor.Advise(doc, enc, nil, stats, advisor.Options{ByteBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Predicted.WeightedFraction != 1 {
		t.Fatalf("Δ-leaf workload not fully covered: %+v", adv.Predicted)
	}
	for _, v := range adv.Views {
		p, err := xpath.Parse(v.XPath)
		if err != nil {
			t.Fatalf("advised view %q does not parse back: %v", v.XPath, err)
		}
		if advisor.IsUniverse(p) {
			t.Fatalf("universe view advised: %s", v.XPath)
		}
		if v.Bytes <= 0 || v.Fragments <= 0 {
			t.Fatalf("advised view %q has no materialization: %+v", v.XPath, v)
		}
	}
}

// TestAdviseUnsatisfiablePruned: queries over labels absent from the
// document generate candidates, but none may survive trial
// materialization or be advised.
func TestAdviseUnsatisfiablePruned(t *testing.T) {
	doc, enc := testDoc(t)
	stats := statsOf(
		workload.Entry{Freq: 10, Query: "//zzz/yyy"},
		workload.Entry{Freq: 3, Query: "//nosuchlabel[zzz]/yyy"},
	)
	adv, err := advisor.Advise(doc, enc, nil, stats, advisor.Options{ByteBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if adv.CandidatesGenerated == 0 {
		t.Fatal("expected candidates to be generated before pruning")
	}
	if adv.CandidatesKept != 0 {
		t.Fatalf("%d unsatisfiable candidates survived materialization", adv.CandidatesKept)
	}
	if len(adv.Views) != 0 {
		t.Fatalf("unsatisfiable workload got %d advised views", len(adv.Views))
	}
}

// TestAdvisePerViewLimitPrunes: a tiny per-view cap must prune oversized
// candidates rather than blow the budget.
func TestAdvisePerViewLimitPrunes(t *testing.T) {
	doc, enc := testDoc(t)
	stats := statsOf(workload.Entry{Freq: 10, Query: "//person/name"})
	adv, err := advisor.Advise(doc, enc, nil, stats, advisor.Options{
		ByteBudget:   1 << 20,
		PerViewLimit: 8, // nothing real fits in 8 bytes
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Views) != 0 || adv.CandidatesKept != 0 {
		t.Fatalf("oversized candidates survived a per-view cap of 8 bytes: %+v", adv)
	}
}

// TestAdviseGeneralizes: with shared-prefix queries and a budget too
// small for all verbatim views, the advisor should still cover traffic,
// typically via a generalized (prefix/lgg/widen) view.
func TestAdviseGeneralizes(t *testing.T) {
	doc, enc := testDoc(t)
	stats := statsOf(
		workload.Entry{Freq: 6, Query: "//person/name"},
		workload.Entry{Freq: 5, Query: "//person/emailaddress"},
		workload.Entry{Freq: 4, Query: "//person/address/city"},
		workload.Entry{Freq: 3, Query: "//person/address/country"},
	)
	adv, err := advisor.Advise(doc, enc, nil, stats, advisor.Options{ByteBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Predicted.WeightedFraction < 0.99 {
		t.Fatalf("shared-prefix workload poorly covered: %+v", adv.Predicted)
	}
}

// TestExactSelectorNotWorse: for a pool small enough for the exponential
// search, the exact answer must cover at least as much weighted traffic
// as the greedy one at the same budget.
func TestExactSelectorNotWorse(t *testing.T) {
	doc, enc := testDoc(t)
	stats := statsOf(
		workload.Entry{Freq: 7, Query: "//person/name"},
		workload.Entry{Freq: 5, Query: "//open_auction/seller"},
		workload.Entry{Freq: 2, Query: "//item/location"},
	)
	budget := 24 << 10
	greedy, err := advisor.Advise(doc, enc, nil, stats, advisor.Options{
		ByteBudget: budget, MaxCandidates: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := advisor.Advise(doc, enc, nil, stats, advisor.Options{
		ByteBudget: budget, MaxCandidates: 12, ExactThreshold: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Predicted.WeightedFraction < greedy.Predicted.WeightedFraction {
		t.Fatalf("exact selector worse than greedy: %.3f < %.3f",
			exact.Predicted.WeightedFraction, greedy.Predicted.WeightedFraction)
	}
	if exact.TotalBytes > budget || greedy.TotalBytes > budget {
		t.Fatalf("selection over budget: exact %d, greedy %d > %d",
			exact.TotalBytes, greedy.TotalBytes, budget)
	}
}

// TestEvaluateAgainstNaive sanity-checks the baseline helpers used by
// the CLI and the acceptance benchmark.
func TestEvaluateAgainstNaive(t *testing.T) {
	doc, enc := testDoc(t)
	stats := statsOf(
		workload.Entry{Freq: 9, Query: "//person/name"},
		workload.Entry{Freq: 1, Query: "//item/location"},
	)
	naive, bytes := advisor.NaiveTopK(doc, enc, nil, stats, 1<<20)
	if len(naive) == 0 || bytes <= 0 {
		t.Fatalf("naive baseline empty: %d views, %d bytes", len(naive), bytes)
	}
	cov := advisor.Evaluate(naive, stats)
	if cov.WeightedFraction != 1 {
		t.Fatalf("naive baseline with full budget should cover everything: %+v", cov)
	}
	if cov.TotalFreq != 10 {
		t.Fatalf("TotalFreq = %d, want 10", cov.TotalFreq)
	}
}
