package advisor

// Candidate generation: from recorded queries to view patterns worth
// trial-materializing. Each generalization makes the candidate contain
// more queries (a homomorphism from the view into the query is what
// selection needs, §IV-A), at the price of materializing more bytes:
//
//   - verbatim: the query itself as a view;
//   - spine prefixes: the root→x path alone for every spine node x —
//     anchoring the view higher covers every leaf below x by the
//     compensating query (mode (a) of the leaf cover), so one prefix
//     view can serve many sibling queries;
//   - attr-stripping: the same minus attribute predicates;
//   - axis widening: every edge relaxed to descendant;
//   - wildcard steps: one spine label at a time replaced by '*';
//   - pairwise least-general generalizations (LGG) of frequent queries —
//     the prefix/branch merging of query-clustering approaches.
//
// Candidates that generalize to the universe (no concrete label left)
// are pruned here; candidates that are unsatisfiable on the document
// (empty trial materialization) or blow the per-view byte cap are pruned
// by Advise after trial materialization.

import (
	"sort"

	"xpathviews/internal/pattern"
)

// Candidate is one view pattern proposed for materialization.
type Candidate struct {
	Pattern *pattern.Pattern
	// Key is the canonical (minimized) string form, the dedup identity.
	Key string
	// Source names the generalization that produced the candidate.
	Source string
}

// GenerateCandidates derives deduplicated candidate view patterns from
// the (already minimized) workload queries. freqs aligns with qs; the
// lggTop most frequent queries are additionally generalized pairwise.
func GenerateCandidates(qs []*pattern.Pattern, freqs []int, lggTop int) []*Candidate {
	g := &candGen{seen: make(map[string]bool)}
	for _, q := range qs {
		g.add(q, "verbatim")
		spine := q.Spine()
		for i := range spine {
			g.add(spinePrefix(spine, i, true), "prefix")
			g.add(spinePrefix(spine, i, false), "prefix-noattr")
		}
		g.add(widen(q), "widen")
		// Wildcard one spine step at a time on the branch-free form.
		if len(spine) >= 2 {
			for i := range spine {
				g.add(wildcardStep(spine, i), "wildcard")
			}
		}
	}
	// Pairwise LGG over the most frequent queries.
	order := make([]int, len(qs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if freqs[order[a]] != freqs[order[b]] {
			return freqs[order[a]] > freqs[order[b]]
		}
		return order[a] < order[b]
	})
	if lggTop > len(order) {
		lggTop = len(order)
	}
	for a := 0; a < lggTop; a++ {
		for b := a + 1; b < lggTop; b++ {
			if p := lgg(qs[order[a]], qs[order[b]]); p != nil {
				g.add(p, "lgg")
			}
		}
	}
	return g.out
}

type candGen struct {
	seen map[string]bool
	out  []*Candidate
}

func (g *candGen) add(p *pattern.Pattern, source string) {
	if p == nil {
		return
	}
	p = pattern.Minimize(p)
	if IsUniverse(p) {
		return
	}
	key := p.String()
	if g.seen[key] {
		return
	}
	g.seen[key] = true
	g.out = append(g.out, &Candidate{Pattern: p, Key: key, Source: source})
}

// IsUniverse reports a pattern with no concrete label at all — its
// materialization would be (nearly) the whole document, e.g. //* or
// //*//*. Such candidates are never worth proposing.
func IsUniverse(p *pattern.Pattern) bool {
	concrete := false
	p.Walk(func(n *pattern.Node) bool {
		if n.Label != pattern.Wildcard {
			concrete = true
			return false
		}
		return true
	})
	return !concrete
}

// spinePrefix builds the branch-free path root→spine[i], answer node at
// the end. keepAttrs retains the spine nodes' attribute predicates.
func spinePrefix(spine []*pattern.Node, i int, keepAttrs bool) *pattern.Pattern {
	var root, cur *pattern.Node
	for j := 0; j <= i; j++ {
		n := spine[j]
		if cur == nil {
			cur = pattern.NewNode(n.Label, n.Axis)
			root = cur
		} else {
			cur = cur.AddChild(n.Label, n.Axis)
		}
		if keepAttrs {
			cur.Attrs = append([]pattern.AttrPred(nil), n.Attrs...)
		}
	}
	return &pattern.Pattern{Root: root, Ret: cur}
}

// widen clones q with every edge relaxed to the descendant axis.
func widen(q *pattern.Pattern) *pattern.Pattern {
	c := q.Clone()
	c.Walk(func(n *pattern.Node) bool {
		n.Axis = pattern.Descendant
		return true
	})
	return c
}

// wildcardStep is the branch-free spine with step i's label replaced by
// '*' (and its attribute predicates dropped: a wildcard step is a pure
// structural placeholder).
func wildcardStep(spine []*pattern.Node, i int) *pattern.Pattern {
	p := spinePrefix(spine, len(spine)-1, true)
	cur := p.Root
	for j := 0; j < i; j++ {
		cur = cur.Children[0]
	}
	cur.Label = pattern.Wildcard
	cur.Attrs = nil
	return p
}

// lgg is the least general generalization of two queries' spines: the
// longest common prefix where differing labels become wildcards,
// differing axes become descendant, and only shared attribute
// predicates survive. Returns nil when the result carries no concrete
// label.
func lgg(a, b *pattern.Pattern) *pattern.Pattern {
	sa, sb := a.Spine(), b.Spine()
	n := len(sa)
	if len(sb) < n {
		n = len(sb)
	}
	var root, cur *pattern.Node
	for i := 0; i < n; i++ {
		label := sa[i].Label
		if label != sb[i].Label {
			label = pattern.Wildcard
		}
		axis := sa[i].Axis
		if axis != sb[i].Axis {
			axis = pattern.Descendant
		}
		if cur == nil {
			cur = pattern.NewNode(label, axis)
			root = cur
		} else {
			cur = cur.AddChild(label, axis)
		}
		if label != pattern.Wildcard {
			cur.Attrs = sharedAttrs(sa[i].Attrs, sb[i].Attrs)
		}
	}
	if root == nil {
		return nil
	}
	p := &pattern.Pattern{Root: root, Ret: cur}
	if IsUniverse(p) {
		return nil
	}
	return p
}

// sharedAttrs returns the predicates present in both lists.
func sharedAttrs(a, b []pattern.AttrPred) []pattern.AttrPred {
	var out []pattern.AttrPred
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}
