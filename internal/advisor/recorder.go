// Package advisor closes the materialization loop the paper leaves
// open: §IV selects which *given* views answer one query, but never asks
// which views are worth materializing in the first place. The advisor
// observes the served workload (Recorder), generalizes the recorded
// queries into candidate view patterns (GenerateCandidates), and picks a
// set to materialize under a byte budget by estimated benefit against
// the §IV-B cost model (Advise) — the observe → advise → re-materialize
// loop of a self-tuning serving system.
package advisor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"xpathviews/internal/pattern"
	"xpathviews/internal/storage"
	"xpathviews/internal/workload"
)

// Outcome classifies how the serving layer disposed of one query.
type Outcome uint8

const (
	// Answered: an equivalent view-based rewriting produced the result.
	Answered Outcome = iota
	// FellBack: the query was served, but not from views alone — direct
	// evaluation (BN/BF) or a contained/degraded rung.
	FellBack
	// BudgetExhausted: the call ran out of its step/hom budget.
	BudgetExhausted
	// Failed: any other failure (not answerable, internal error, ...).
	Failed

	numOutcomes
)

var outcomeNames = [...]string{"answered", "fellback", "budget", "failed"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// QueryStat is the recorded tally for one distinct (canonicalized)
// query.
type QueryStat struct {
	Query  string
	Counts [numOutcomes]int
}

// Freq is the total number of recorded calls for the query.
func (s QueryStat) Freq() int {
	n := 0
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// storeKeyPrefix namespaces recorder entries inside a shared store.
const storeKeyPrefix = "wl\x00"

// Recorder tallies served queries by canonical pattern string and
// outcome. It is safe for concurrent use and designed to sit on the
// serving hot path: when sampling is disabled (the default), Record is
// one atomic load; when enabled, one mutex acquisition plus a map
// update. With a backing store, every sampled record is persisted, so
// workloads survive restarts.
type Recorder struct {
	// every is the sampling period: 0 = disabled, 1 = every call,
	// n = one call in n.
	every atomic.Int64
	tick  atomic.Int64

	mu    sync.Mutex
	stats map[string]*QueryStat
	store *storage.Store
	// persistErrs counts store writes that failed; recording never fails
	// the serving call.
	persistErrs atomic.Int64
}

// NewRecorder creates a recorder. store may be nil (in-memory tallies
// only); otherwise previously persisted tallies are loaded, and every
// sampled record is written through. A store dedicated to one recorder
// can arm storage.SetAutoCompact so repeated tallies do not grow the log
// without bound.
func NewRecorder(store *storage.Store) (*Recorder, error) {
	r := &Recorder{stats: make(map[string]*QueryStat), store: store}
	if store == nil {
		return r, nil
	}
	for _, k := range store.Keys() {
		if !strings.HasPrefix(k, storeKeyPrefix) {
			continue
		}
		v, ok := store.Get([]byte(k))
		if !ok {
			continue
		}
		st := &QueryStat{Query: k[len(storeKeyPrefix):]}
		if err := decodeCounts(v, &st.Counts); err != nil {
			return nil, fmt.Errorf("advisor: corrupt workload entry %q: %w", st.Query, err)
		}
		r.stats[st.Query] = st
	}
	return r, nil
}

// SetSampling sets the sampling period: 0 disables recording, 1 records
// every call, n > 1 records one call in n.
func (r *Recorder) SetSampling(every int) {
	if every < 0 {
		every = 0
	}
	r.every.Store(int64(every))
}

// Sampling returns the current sampling period (0 = disabled).
func (r *Recorder) Sampling() int { return int(r.every.Load()) }

// RecordPattern samples one served query. The pattern is canonicalized
// (String of the already-minimized pattern) only when this call is
// actually sampled, keeping the disabled/skipped path allocation-free.
func (r *Recorder) RecordPattern(q *pattern.Pattern, o Outcome) {
	every := r.every.Load()
	if every == 0 {
		return
	}
	if every > 1 && r.tick.Add(1)%every != 0 {
		return
	}
	r.record(q.String(), o)
}

// Record tallies a pre-canonicalized query string, bypassing sampling.
func (r *Recorder) Record(query string, o Outcome) { r.record(query, o) }

func (r *Recorder) record(query string, o Outcome) {
	if int(o) >= int(numOutcomes) {
		o = Failed
	}
	r.mu.Lock()
	st, ok := r.stats[query]
	if !ok {
		st = &QueryStat{Query: query}
		r.stats[query] = st
	}
	st.Counts[o]++
	var enc []byte
	if r.store != nil {
		enc = encodeCounts(st.Counts)
	}
	r.mu.Unlock()
	if enc != nil {
		if err := r.store.Put([]byte(storeKeyPrefix+query), enc); err != nil {
			r.persistErrs.Add(1)
		}
	}
}

// Len returns the number of distinct recorded queries.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.stats)
}

// PersistErrors reports how many store writes failed (entries stay
// tallied in memory regardless).
func (r *Recorder) PersistErrors() int64 { return r.persistErrs.Load() }

// Snapshot returns the tallies sorted by frequency (descending, ties by
// query string), safe to use while recording continues.
func (r *Recorder) Snapshot() []QueryStat {
	r.mu.Lock()
	out := make([]QueryStat, 0, len(r.stats))
	for _, st := range r.stats {
		out = append(out, *st)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].Freq(), out[j].Freq()
		if fi != fj {
			return fi > fj
		}
		return out[i].Query < out[j].Query
	})
	return out
}

// Reset drops all tallies, including persisted ones.
func (r *Recorder) Reset() {
	r.mu.Lock()
	queries := make([]string, 0, len(r.stats))
	for q := range r.stats {
		queries = append(queries, q)
	}
	r.stats = make(map[string]*QueryStat)
	r.mu.Unlock()
	if r.store != nil {
		for _, q := range queries {
			if err := r.store.Delete([]byte(storeKeyPrefix + q)); err != nil {
				r.persistErrs.Add(1)
			}
		}
	}
}

func encodeCounts(c [numOutcomes]int) []byte {
	return []byte(fmt.Sprintf("%d %d %d %d", c[0], c[1], c[2], c[3]))
}

func decodeCounts(b []byte, c *[numOutcomes]int) error {
	n, err := fmt.Sscanf(string(b), "%d %d %d %d", &c[0], &c[1], &c[2], &c[3])
	if err != nil || n != int(numOutcomes) {
		return fmt.Errorf("bad counts %q", b)
	}
	return nil
}

// StatsFromEntries converts workload-file entries into advisor stats;
// the file carries only frequencies, so every count lands on FellBack
// (the "needs a view" bucket).
func StatsFromEntries(entries []workload.Entry) []QueryStat {
	out := make([]QueryStat, 0, len(entries))
	for _, e := range entries {
		st := QueryStat{Query: e.Query}
		f := e.Freq
		if f < 1 {
			f = 1
		}
		st.Counts[FellBack] = f
		out = append(out, st)
	}
	return out
}

// EntriesFromStats converts tallies back to workload-file entries
// (outcome detail is dropped; frequency survives).
func EntriesFromStats(stats []QueryStat) []workload.Entry {
	out := make([]workload.Entry, 0, len(stats))
	for _, s := range stats {
		out = append(out, workload.Entry{Freq: s.Freq(), Query: s.Query})
	}
	return out
}
