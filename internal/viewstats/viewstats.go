// Package viewstats is the view observatory's accounting core: an
// always-on, allocation-free layer the serving pipeline threads its
// per-view attribution through. It answers the three questions the
// paper's offline §IV-B selection cannot — which materialized views
// actually earn their bytes (per-view hit counters and Δ-fragment
// volume), how far the predicted cost drifts from realized latency
// (a running calibration error, per view and global), and whether the
// live workload still looks like the one the view set was advised from
// (the drift detector in drift.go).
//
// Design constraints mirror internal/telemetry:
//
//  1. The hot path is atomics only. Per-view slots are indexed by the
//     registry's dense, never-reused view IDs through a copy-on-write
//     slice behind an atomic pointer, so steady-state recording takes
//     no lock and allocates nothing; the slice grows (under a mutex)
//     only when a brand-new view ID is first seen.
//  2. Floating-point accumulators (cost-model scale, calibration-error
//     EWMAs) are CAS loops over math.Float64bits — no mutex, no box.
//  3. A nil *Store is inert: every method nil-checks, so "observatory
//     off" is a nil pointer, exactly like a nil metrics registry.
package viewstats

import (
	"math"
	"sync"
	"sync/atomic"
)

// EWMA smoothing factors. The scale (realized ns per predicted cost
// unit) adapts faster than the error estimate so a plan-mix change
// re-centers the model before it poisons the error signal.
const (
	scaleAlpha = 0.2
	calAlpha   = 0.1
	// relErrCap bounds one observation's relative error contribution:
	// a single pathological call (cold cache, GC pause) must not wipe
	// out the EWMA's history.
	relErrCap = 10.0
)

// ewma is an atomic float64 exponentially weighted moving average. The
// zero value is "unset": the first update seeds it directly.
type ewma struct{ bits atomic.Uint64 }

func (e *ewma) value() float64 { return math.Float64frombits(e.bits.Load()) }

// update folds x in with smoothing factor alpha and returns the new
// average. Lock-free: concurrent updates serialize through CAS.
func (e *ewma) update(x, alpha float64) float64 {
	for {
		old := e.bits.Load()
		next := x
		if old != 0 {
			cur := math.Float64frombits(old)
			next = cur + alpha*(x-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

// Slot is one view's live accounting. All fields are atomics; a Slot is
// shared by every goroutine serving or maintaining the view.
type Slot struct {
	// Serving-side attribution.
	hits         atomic.Int64 // answered queries this view's cover contributed to
	fragsScanned atomic.Int64 // fragments refinement looked at on behalf of those queries
	fragsKept    atomic.Int64 // Δ-fragment volume: fragments surviving refinement
	calErr       ewma         // per-view calibration relative-error EWMA
	calObs       atomic.Int64

	// Maintenance-side upkeep (fed by the mutation path so benefit can
	// be reported net of what the view costs to keep fresh).
	maintPasses     atomic.Int64
	spliceAdded     atomic.Int64
	spliceRemoved   atomic.Int64
	spliceRefreshed atomic.Int64
	lastSplice      atomic.Int64 // size of the most recent dirty splice
	fullFrags       atomic.Int64 // fragments a full rematerialization would have recopied, cumulative
}

// SlotStat is a point-in-time read of one view's slot.
type SlotStat struct {
	ID              int     `json:"id"`
	Hits            int64   `json:"hits"`
	FragsScanned    int64   `json:"frags_scanned"`
	FragsKept       int64   `json:"frags_kept"`
	CalibrationErr  float64 `json:"calibration_err"`
	CalibrationObs  int64   `json:"calibration_obs"`
	MaintPasses     int64   `json:"maint_passes"`
	SpliceAdded     int64   `json:"splice_added"`
	SpliceRemoved   int64   `json:"splice_removed"`
	SpliceRefreshed int64   `json:"splice_refreshed"`
	LastSpliceSize  int64   `json:"last_splice_size"`
	FullFrags       int64   `json:"full_frags"`
}

// SpliceTotal is the view's cumulative dirty-splice volume — the
// incremental-maintenance work it has cost so far.
func (st SlotStat) SpliceTotal() int64 {
	return st.SpliceAdded + st.SpliceRemoved + st.SpliceRefreshed
}

// IncrementalFrac estimates the incremental-vs-full maintenance ratio:
// splice volume over what full rematerialization would have recopied
// across the same passes (0 when the view was never maintained; lower
// is better).
func (st SlotStat) IncrementalFrac() float64 {
	if st.FullFrags <= 0 {
		return 0
	}
	return float64(st.SpliceTotal()) / float64(st.FullFrags)
}

// Store is the observatory: per-view slots plus the global cost-model
// calibration state and the workload-drift detector.
type Store struct {
	growMu sync.Mutex
	slots  atomic.Pointer[[]*Slot]

	queries atomic.Int64 // attributed (view-answered) queries
	scale   ewma         // realized ns per predicted §IV-B cost unit
	calErr  ewma         // global calibration relative-error EWMA
	calObs  atomic.Int64

	// Drift is the workload-drift detector (see drift.go). Embedded by
	// value so the Store stays one allocation.
	Drift Detector
}

// New builds an empty observatory.
func New() *Store {
	s := &Store{}
	s.Drift.init()
	return s
}

// Slot returns view id's slot, growing the slot table on first sight of
// the id. The grow path takes a mutex and allocates; the steady state —
// every live view already has a slot — is one atomic load and an index.
func (s *Store) Slot(id int) *Slot {
	if s == nil || id < 0 {
		return nil
	}
	if p := s.slots.Load(); p != nil && id < len(*p) {
		return (*p)[id]
	}
	return s.growSlot(id)
}

func (s *Store) growSlot(id int) *Slot {
	s.growMu.Lock()
	defer s.growMu.Unlock()
	old := s.slots.Load()
	n := 0
	if old != nil {
		n = len(*old)
	}
	if id < n {
		return (*old)[id]
	}
	next := make([]*Slot, id+1, id+8)
	if old != nil {
		copy(next, *old)
	}
	for i := n; i < len(next); i++ {
		next[i] = &Slot{}
	}
	s.slots.Store(&next)
	return next[id]
}

// Peek returns view id's slot without growing, or nil.
func (s *Store) Peek(id int) *Slot {
	if s == nil || id < 0 {
		return nil
	}
	if p := s.slots.Load(); p != nil && id < len(*p) {
		return (*p)[id]
	}
	return nil
}

// Len returns the slot table's extent (max seen view ID + 1).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	if p := s.slots.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// RecordQuery folds one answered query's predicted §IV-B cost and its
// realized rewrite time into the calibration model and returns the
// call's relative calibration error (against the pre-update scale), or
// -1 when no error can be computed yet (first observation seeds the
// scale, non-positive inputs are ignored). Allocation-free.
func (s *Store) RecordQuery(predCost float64, realizedNs int64) float64 {
	if s == nil {
		return -1
	}
	s.queries.Add(1)
	if predCost <= 0 || realizedNs <= 0 {
		return -1
	}
	prev := s.scale.value()
	s.scale.update(float64(realizedNs)/predCost, scaleAlpha)
	if prev == 0 {
		return -1
	}
	predNs := predCost * prev
	rel := math.Abs(float64(realizedNs)-predNs) / predNs
	if rel > relErrCap {
		rel = relErrCap
	}
	s.calErr.update(rel, calAlpha)
	s.calObs.Add(1)
	return rel
}

// RecordViewHit attributes one answered query to a contributing view:
// scanned/kept are the view's refinement volumes for this call, relErr
// the call's calibration error from RecordQuery (negative = none).
// Allocation-free in the steady state.
func (s *Store) RecordViewHit(id int, scanned, kept int64, relErr float64) {
	sl := s.Slot(id)
	if sl == nil {
		return
	}
	sl.hits.Add(1)
	sl.fragsScanned.Add(scanned)
	sl.fragsKept.Add(kept)
	if relErr >= 0 {
		sl.calErr.update(relErr, calAlpha)
		sl.calObs.Add(1)
	}
}

// RecordMaintain feeds one maintenance pass's per-view outcome: the
// dirty-splice composition and the fragment count a full
// rematerialization would have recopied instead.
func (s *Store) RecordMaintain(id int, added, removed, refreshed, fullFrags int64) {
	sl := s.Slot(id)
	if sl == nil {
		return
	}
	sl.maintPasses.Add(1)
	sl.spliceAdded.Add(added)
	sl.spliceRemoved.Add(removed)
	sl.spliceRefreshed.Add(refreshed)
	sl.lastSplice.Store(added + removed + refreshed)
	sl.fullFrags.Add(fullFrags)
}

// Queries returns the number of attributed queries.
func (s *Store) Queries() int64 {
	if s == nil {
		return 0
	}
	return s.queries.Load()
}

// CalibrationError returns the global relative-error EWMA and how many
// observations shaped it.
func (s *Store) CalibrationError() (errEWMA float64, obs int64) {
	if s == nil {
		return 0, 0
	}
	return s.calErr.value(), s.calObs.Load()
}

// ScaleNsPerCost returns the model's current conversion factor:
// realized rewrite nanoseconds per predicted §IV-B cost unit (0 until
// the first observation).
func (s *Store) ScaleNsPerCost() float64 {
	if s == nil {
		return 0
	}
	return s.scale.value()
}

// Stat reads view id's slot (zero SlotStat for unseen IDs).
func (s *Store) Stat(id int) SlotStat {
	st := SlotStat{ID: id}
	sl := s.Peek(id)
	if sl == nil {
		return st
	}
	st.Hits = sl.hits.Load()
	st.FragsScanned = sl.fragsScanned.Load()
	st.FragsKept = sl.fragsKept.Load()
	st.CalibrationErr = sl.calErr.value()
	st.CalibrationObs = sl.calObs.Load()
	st.MaintPasses = sl.maintPasses.Load()
	st.SpliceAdded = sl.spliceAdded.Load()
	st.SpliceRemoved = sl.spliceRemoved.Load()
	st.SpliceRefreshed = sl.spliceRefreshed.Load()
	st.LastSpliceSize = sl.lastSplice.Load()
	st.FullFrags = sl.fullFrags.Load()
	return st
}

// Stats reads every slot, in view-ID order.
func (s *Store) Stats() []SlotStat {
	n := s.Len()
	out := make([]SlotStat, 0, n)
	for id := 0; id < n; id++ {
		out = append(out, s.Stat(id))
	}
	return out
}

// HashQuery hashes a query's canonical rendering for the drift sketch:
// FNV-1a over the bytes with whitespace skipped, so "//a / b" and
// "//a/b" land in the same bucket — the same spelling classes the plan
// cache's normalizeQuery collapses. Allocation-free.
func HashQuery(q string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(q); i++ {
		c := q[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			continue
		}
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
