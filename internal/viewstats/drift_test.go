package viewstats

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestDetector() (*Detector, *fakeClock) {
	d := &Detector{}
	d.init()
	clk := &fakeClock{t: time.Unix(1_200_000_000, 0)}
	d.SetClock(clk.now)
	return d, clk
}

func TestDetectorDisarmedFastPath(t *testing.T) {
	d, _ := newTestDetector()
	if d.Armed() {
		t.Fatal("fresh detector must be disarmed")
	}
	for i := 0; i < 10*checkEvery; i++ {
		if checked, _, crossed := d.Observe(uint64(i)); checked || crossed {
			t.Fatal("disarmed detector must never check")
		}
	}
	if d.RecentN() != 0 {
		t.Fatal("disarmed detector must not accumulate")
	}
	if n := testing.AllocsPerRun(100, func() { d.Observe(42) }); n != 0 {
		t.Fatalf("disarmed Observe allocates %v/op", n)
	}
}

func TestSteadyTrafficStaysBelowThreshold(t *testing.T) {
	d, _ := newTestDetector()
	design := []uint64{HashQuery("//a/b"), HashQuery("//a/c"), HashQuery("//d[e]/f")}
	d.SetDesign(design, []int64{6, 3, 1})
	if !d.Armed() {
		t.Fatal("SetDesign must arm")
	}
	// Replay the design mix exactly: 60/30/10.
	for round := 0; round < 100; round++ {
		for i := 0; i < 6; i++ {
			d.Observe(design[0])
		}
		for i := 0; i < 3; i++ {
			d.Observe(design[1])
		}
		d.Observe(design[2])
	}
	ppm, crossed := d.Check()
	if crossed || ppm >= d.ThresholdPPM() {
		t.Fatalf("steady traffic tripped: ppm=%d threshold=%d", ppm, d.ThresholdPPM())
	}
	if ppm != 0 {
		t.Fatalf("exact replay should measure zero distance, got %d ppm", ppm)
	}
	if d.Events() != 0 {
		t.Fatalf("steady traffic produced %d events", d.Events())
	}
}

func TestShiftedTrafficTripsOnce(t *testing.T) {
	d, _ := newTestDetector()
	design := []uint64{HashQuery("//a/b"), HashQuery("//a/c")}
	d.SetDesign(design, nil)
	// Entirely new pattern: total variation heads to 1.0.
	novel := HashQuery("//x/y[z]")
	var sawCheck, sawCross bool
	for i := 0; i < 4*checkEvery; i++ {
		checked, ppm, crossed := d.Observe(novel)
		if checked {
			sawCheck = true
			if ppm < d.ThresholdPPM() {
				t.Fatalf("all-novel traffic measured only %d ppm", ppm)
			}
		}
		if crossed {
			sawCross = true
		}
	}
	if !sawCheck || !sawCross {
		t.Fatalf("checked=%t crossed=%t, want both", sawCheck, sawCross)
	}
	// The latch holds: staying above threshold is one event, not one per
	// check.
	if d.Events() != 1 {
		t.Fatalf("events = %d, want exactly 1 while continuously above", d.Events())
	}
	if d.LastPPM() < d.ThresholdPPM() {
		t.Fatalf("LastPPM = %d below threshold", d.LastPPM())
	}
}

func TestDecayRecoversAfterShift(t *testing.T) {
	d, clk := newTestDetector()
	design := []uint64{HashQuery("//a/b")}
	d.SetDesign(design, nil)
	novel := HashQuery("//x/y")
	for i := 0; i < 2*checkEvery; i++ {
		d.Observe(novel)
	}
	if ppm, _ := d.Check(); ppm < d.ThresholdPPM() {
		t.Fatalf("shift not detected: %d ppm", ppm)
	}
	// Traffic returns to the design mix; old novel mass decays away.
	for burst := 0; burst < 12; burst++ {
		clk.advance(DefaultDriftHalfLife)
		for i := 0; i < checkEvery; i++ {
			d.Observe(design[0])
		}
	}
	ppm, crossed := d.Check()
	if crossed || ppm >= d.ThresholdPPM() {
		t.Fatalf("detector did not recover: ppm=%d events=%d", ppm, d.Events())
	}
	// Recovery resets the latch: a new shift counts a new event.
	for i := 0; i < 2*checkEvery; i++ {
		d.Observe(novel)
	}
	d.Check()
	if d.Events() != 2 {
		t.Fatalf("events = %d, want 2 after recover + re-shift", d.Events())
	}
}

func TestSetDesignResetsWindowKeepsEvents(t *testing.T) {
	d, _ := newTestDetector()
	d.SetDesign([]uint64{HashQuery("//a")}, nil)
	novel := HashQuery("//b/c")
	for i := 0; i < 2*checkEvery; i++ {
		d.Observe(novel)
	}
	d.Check()
	if d.Events() != 1 {
		t.Fatalf("setup: events = %d", d.Events())
	}
	// Re-arming (a new advised view set) clears the window and the
	// latch but keeps the cumulative event count.
	d.SetDesign([]uint64{HashQuery("//b/c")}, nil)
	if d.RecentN() != 0 || d.LastPPM() != 0 {
		t.Fatal("SetDesign must reset the recent window")
	}
	if d.Events() != 1 {
		t.Fatalf("SetDesign must keep events, got %d", d.Events())
	}
	// Disarm via empty input.
	d.SetDesign(nil, nil)
	if d.Armed() {
		t.Fatal("empty design must disarm")
	}
}

func TestObserveAllocFreeWhenArmed(t *testing.T) {
	d, _ := newTestDetector()
	d.SetDesign([]uint64{1, 2, 3}, nil)
	h := HashQuery("//a/b")
	if n := testing.AllocsPerRun(200, func() { d.Observe(h) }); n != 0 {
		t.Fatalf("armed Observe allocates %v/op", n)
	}
}
