package viewstats

// Workload-drift detection: a sketch-based comparison of the recent
// query-pattern distribution against the design workload the current
// view set was advised from. Both sides are fixed-size hash sketches
// (SketchSize buckets over HashQuery of the canonical pattern), so the
// hot path is one atomic add per query and the distance computation —
// total variation between the two normalized sketches — touches a
// fixed 2·SketchSize floats. Distance runs on a sampled cadence
// (checkEvery observations), never per call.
//
// The detector is armed by SetDesign (typically at Advise/ApplyAdvice
// time, when the workload the selection optimized for is in hand) and
// stays fully inert before that: Observe returns after one atomic load.
// Time only matters for the recent sketch's exponential decay, and the
// clock is injectable, so tests drive the detector deterministically.

import (
	"sync"
	"sync/atomic"
	"time"
)

// SketchSize is the sketch width. 64 buckets keep the distance
// computation trivial while separating realistic workload mixes (tens
// of distinct patterns) with low collision probability.
const SketchSize = 64

// checkEvery is the sampled distance cadence: every checkEvery-th
// observed query recomputes the distance and evaluates the threshold.
const checkEvery = 64

// DefaultDriftThresholdPPM is the default alarm threshold: total
// variation distance 0.25 (25% of recent traffic mass sits in buckets
// the design workload did not predict), in parts per million.
const DefaultDriftThresholdPPM = 250_000

// DefaultDriftHalfLife is the recent sketch's decay half-life: counts
// halve this often, so the "recent distribution" window slides instead
// of accumulating forever.
const DefaultDriftHalfLife = 5 * time.Minute

// Detector compares recent traffic against a design workload. The zero
// value needs init(); build through viewstats.New.
type Detector struct {
	design atomic.Pointer[[SketchSize]float64] // normalized; nil = disarmed

	recent  [SketchSize]atomic.Int64
	recentN atomic.Int64
	gate    atomic.Int64 // observations since arm, drives the check cadence

	thresholdPPM atomic.Int64
	lastPPM      atomic.Int64
	events       atomic.Int64 // upward threshold crossings
	above        atomic.Bool

	mu        sync.Mutex // serializes check/decay/SetDesign bookkeeping
	clock     func() time.Time
	halfLife  time.Duration
	lastDecay time.Time
}

func (d *Detector) init() {
	d.thresholdPPM.Store(DefaultDriftThresholdPPM)
	d.clock = time.Now
	d.halfLife = DefaultDriftHalfLife
}

// SetClock injects the time source the decay window uses (tests). Must
// be set before traffic.
func (d *Detector) SetClock(now func() time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock = now
	d.lastDecay = now()
}

// SetThresholdPPM sets the alarm threshold in parts per million of
// total variation distance (0 restores the default).
func (d *Detector) SetThresholdPPM(ppm int64) {
	if ppm <= 0 {
		ppm = DefaultDriftThresholdPPM
	}
	d.thresholdPPM.Store(ppm)
}

// ThresholdPPM returns the alarm threshold.
func (d *Detector) ThresholdPPM() int64 { return d.thresholdPPM.Load() }

// SetDesign arms (or re-arms) the detector with the design workload:
// one (pattern hash, weight) pair per distinct query. The recent sketch
// and the above-threshold latch reset — the new view set starts with a
// clean comparison window; the cumulative event counter is retained.
// Empty input disarms the detector.
func (d *Detector) SetDesign(hashes []uint64, weights []int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var dist [SketchSize]float64
	var total float64
	for i, h := range hashes {
		w := int64(1)
		if i < len(weights) && weights[i] > 0 {
			w = weights[i]
		}
		dist[h%SketchSize] += float64(w)
		total += float64(w)
	}
	if total == 0 {
		d.design.Store(nil)
		return
	}
	for i := range dist {
		dist[i] /= total
	}
	for i := range d.recent {
		d.recent[i].Store(0)
	}
	d.recentN.Store(0)
	d.gate.Store(0)
	d.above.Store(false)
	d.lastPPM.Store(0)
	if d.clock != nil {
		d.lastDecay = d.clock()
	}
	d.design.Store(&dist)
}

// Armed reports whether a design workload is set.
func (d *Detector) Armed() bool { return d.design.Load() != nil }

// Observe records one served query's pattern hash. Returns checked =
// false on the fast path; every checkEvery-th observation recomputes
// the distance and reports it (ppm) plus whether this check crossed the
// threshold upward. Allocation-free in all cases; disarmed detectors
// return after one atomic load.
func (d *Detector) Observe(hash uint64) (checked bool, ppm int64, crossed bool) {
	if d.design.Load() == nil {
		return false, 0, false
	}
	d.recent[hash%SketchSize].Add(1)
	d.recentN.Add(1)
	if d.gate.Add(1)%checkEvery != 0 {
		return false, 0, false
	}
	ppm, crossed = d.Check()
	return true, ppm, crossed
}

// Check recomputes the total variation distance between the recent and
// design distributions, applies any due decay, updates the gauge state
// and the threshold latch, and reports the distance in ppm plus whether
// this check crossed the threshold upward. Callers needing the current
// value without a fresh computation read LastPPM.
func (d *Detector) Check() (ppm int64, crossed bool) {
	design := d.design.Load()
	if design == nil {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.clock != nil && d.halfLife > 0 {
		now := d.clock()
		if d.lastDecay.IsZero() {
			d.lastDecay = now
		}
		for now.Sub(d.lastDecay) >= d.halfLife {
			var n int64
			for i := range d.recent {
				v := d.recent[i].Load() / 2
				d.recent[i].Store(v)
				n += v
			}
			d.recentN.Store(n)
			d.lastDecay = d.lastDecay.Add(d.halfLife)
		}
	}
	total := d.recentN.Load()
	if total == 0 {
		d.lastPPM.Store(0)
		return 0, false
	}
	var dist float64
	for i := range d.recent {
		p := float64(d.recent[i].Load()) / float64(total)
		q := design[i]
		if p > q {
			dist += p - q
		} else {
			dist += q - p
		}
	}
	// Total variation: half the L1 distance, in [0,1].
	ppm = int64(dist / 2 * 1e6)
	d.lastPPM.Store(ppm)
	over := ppm >= d.thresholdPPM.Load()
	if over && !d.above.Load() {
		d.above.Store(true)
		d.events.Add(1)
		return ppm, true
	}
	if !over {
		d.above.Store(false)
	}
	return ppm, false
}

// LastPPM returns the most recently computed distance in ppm.
func (d *Detector) LastPPM() int64 { return d.lastPPM.Load() }

// Events returns the cumulative count of upward threshold crossings.
func (d *Detector) Events() int64 { return d.events.Load() }

// RecentN returns the decayed observation mass in the recent sketch.
func (d *Detector) RecentN() int64 { return d.recentN.Load() }
