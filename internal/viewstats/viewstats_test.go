package viewstats

import (
	"math"
	"sync"
	"testing"
)

func TestSlotGrowthAndSteadyState(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatalf("empty store Len = %d", s.Len())
	}
	sl := s.Slot(3)
	if sl == nil || s.Len() != 4 {
		t.Fatalf("Slot(3): slot=%v len=%d", sl, s.Len())
	}
	// Every index below the grown extent is populated, not nil.
	for id := 0; id < 4; id++ {
		if s.Peek(id) == nil {
			t.Fatalf("Peek(%d) = nil after growing to 4", id)
		}
	}
	if s.Slot(3) != sl {
		t.Fatal("Slot(3) not stable across calls")
	}
	if s.Peek(10) != nil {
		t.Fatal("Peek past the extent should be nil")
	}
	if s.Slot(-1) != nil {
		t.Fatal("negative IDs must be rejected")
	}
}

func TestNilStoreInert(t *testing.T) {
	var s *Store
	s.RecordQuery(1, 100)
	s.RecordViewHit(0, 1, 1, 0.5)
	s.RecordMaintain(0, 1, 2, 3, 4)
	if s.Queries() != 0 || s.Len() != 0 || s.ScaleNsPerCost() != 0 {
		t.Fatal("nil store must be fully inert")
	}
	if e, n := s.CalibrationError(); e != 0 || n != 0 {
		t.Fatal("nil store calibration must be zero")
	}
}

func TestEWMASeedAndConverge(t *testing.T) {
	var e ewma
	if e.value() != 0 {
		t.Fatal("zero value must read 0")
	}
	if got := e.update(5, 0.1); got != 5 {
		t.Fatalf("first update seeds directly, got %v", got)
	}
	// Repeated folding of a constant converges to it.
	for i := 0; i < 200; i++ {
		e.update(10, 0.1)
	}
	if got := e.value(); math.Abs(got-10) > 1e-6 {
		t.Fatalf("EWMA did not converge: %v", got)
	}
}

func TestRecordQueryCalibration(t *testing.T) {
	s := New()
	// First observation seeds the scale; no error yet.
	if rel := s.RecordQuery(2, 2000); rel != -1 {
		t.Fatalf("first observation rel = %v, want -1", rel)
	}
	if got := s.ScaleNsPerCost(); got != 1000 {
		t.Fatalf("scale = %v, want 1000 ns/cost", got)
	}
	// A perfectly predicted call has zero relative error.
	if rel := s.RecordQuery(3, 3000); rel != 0 {
		t.Fatalf("perfect prediction rel = %v, want 0", rel)
	}
	// A call 2x over prediction has relative error 1 against the
	// pre-update scale.
	if rel := s.RecordQuery(1, 2000); math.Abs(rel-1) > 1e-9 {
		t.Fatalf("2x miss rel = %v, want 1", rel)
	}
	if _, obs := s.CalibrationError(); obs != 2 {
		t.Fatalf("calibration obs = %d, want 2", obs)
	}
	// Non-positive inputs count the query but not the model.
	before := s.ScaleNsPerCost()
	s.RecordQuery(0, 500)
	s.RecordQuery(5, 0)
	if s.ScaleNsPerCost() != before {
		t.Fatal("non-positive inputs must not move the scale")
	}
	if s.Queries() != 5 {
		t.Fatalf("queries = %d, want 5", s.Queries())
	}
}

func TestRecordQueryErrorCapped(t *testing.T) {
	s := New()
	s.RecordQuery(1, 1000)
	// 1000x over prediction: relative error capped at relErrCap.
	if rel := s.RecordQuery(1, 1_000_000); rel != relErrCap {
		t.Fatalf("pathological rel = %v, want cap %v", rel, relErrCap)
	}
}

func TestViewHitAndMaintainAccounting(t *testing.T) {
	s := New()
	s.RecordViewHit(2, 10, 4, 0.5)
	s.RecordViewHit(2, 6, 2, -1) // negative = no calibration sample
	st := s.Stat(2)
	if st.Hits != 2 || st.FragsScanned != 16 || st.FragsKept != 6 {
		t.Fatalf("hit accounting: %+v", st)
	}
	if st.CalibrationObs != 1 || st.CalibrationErr != 0.5 {
		t.Fatalf("calibration accounting: %+v", st)
	}

	s.RecordMaintain(2, 3, 1, 2, 100)
	s.RecordMaintain(2, 0, 0, 1, 100)
	st = s.Stat(2)
	if st.MaintPasses != 2 || st.SpliceAdded != 3 || st.SpliceRemoved != 1 || st.SpliceRefreshed != 3 {
		t.Fatalf("maintain accounting: %+v", st)
	}
	if st.LastSpliceSize != 1 {
		t.Fatalf("last splice = %d, want 1", st.LastSpliceSize)
	}
	if st.SpliceTotal() != 7 {
		t.Fatalf("splice total = %d, want 7", st.SpliceTotal())
	}
	if got := st.IncrementalFrac(); math.Abs(got-7.0/200) > 1e-9 {
		t.Fatalf("incremental frac = %v, want 0.035", got)
	}

	// Stats covers the whole extent in ID order.
	all := s.Stats()
	if len(all) != 3 || all[0].ID != 0 || all[2].Hits != 2 {
		t.Fatalf("Stats() = %+v", all)
	}
}

func TestConcurrentRecording(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.RecordViewHit(i%16, 1, 1, 0.1)
				s.RecordQuery(1, 100)
			}
		}(g)
	}
	wg.Wait()
	if s.Queries() != 8000 {
		t.Fatalf("queries = %d, want 8000", s.Queries())
	}
	var hits int64
	for _, st := range s.Stats() {
		hits += st.Hits
	}
	if hits != 8000 {
		t.Fatalf("total hits = %d, want 8000", hits)
	}
}

func TestHashQuerySpellingClasses(t *testing.T) {
	if HashQuery("//a / b") != HashQuery("//a/b") {
		t.Fatal("whitespace spellings must collide")
	}
	if HashQuery("//a/b") == HashQuery("//a/c") {
		t.Fatal("distinct queries should hash apart")
	}
	if n := testing.AllocsPerRun(100, func() { HashQuery("//site/people/person[address]/name") }); n != 0 {
		t.Fatalf("HashQuery allocates %v/op", n)
	}
}
