package rewrite_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/views"
	"xpathviews/internal/xpath"
)

// TestContainedSubsetAndCompleteness on the book tree: a more
// restrictive view yields a strict, sound subset; an equivalent view
// yields the full set with Complete=true.
func TestContainedSubsetAndCompleteness(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	// Restrictive: only paragraphs of sections that also have a figure.
	restrictive, err := reg.Add(xpath.MustParse("//s[t][f]/p"), 0)
	if err != nil {
		t.Fatal(err)
	}

	q := xpath.MustParse("//s[t]/p")
	direct := engine.Answers(tree, q)

	res := rewrite.Contained(q, reg.ViewList, enc.FST())
	if res.Complete {
		t.Fatal("restrictive view must not be reported complete")
	}
	if len(res.Answers) == 0 || len(res.Answers) >= len(direct) {
		t.Fatalf("contained answers = %d, want a non-empty strict subset of %d", len(res.Answers), len(direct))
	}
	directSet := map[string]bool{}
	for _, n := range direct {
		directSet[enc.MustCode(n).String()] = true
	}
	for _, a := range res.Answers {
		if !directSet[a.Code.String()] {
			t.Fatalf("contained rewriting returned a wrong answer %s", a.Code)
		}
	}
	if len(res.ViewsUsed) != 1 || res.ViewsUsed[0] != restrictive.ID {
		t.Fatalf("ViewsUsed = %v", res.ViewsUsed)
	}

	// Add an equivalent view: result becomes complete.
	if _, err := reg.Add(xpath.MustParse("//s[t]/p"), 0); err != nil {
		t.Fatal(err)
	}
	res2 := rewrite.Contained(q, reg.ViewList, enc.FST())
	if !res2.Complete || len(res2.Answers) != len(direct) {
		t.Fatalf("with an equivalent view: complete=%v answers=%d want %d",
			res2.Complete, len(res2.Answers), len(direct))
	}
}

// TestContainedSoundnessRandomized: contained answers are always a subset
// of direct evaluation, on random documents/views/queries.
func TestContainedSoundnessRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(311))
	labels := []string{"a", "b", "c", "d"}
	contributed := 0
	for doc := 0; doc < 12; doc++ {
		tree := randomTree(r, 100, labels)
		enc, fst, err := dewey.EncodeTree(tree)
		if err != nil {
			t.Fatal(err)
		}
		reg := views.NewRegistry(tree, enc)
		for len(reg.ViewList) < 20 {
			if _, err := reg.Add(randomPattern(r, labels, 4), 0); err != nil {
				t.Fatal(err)
			}
		}
		for qi := 0; qi < 25; qi++ {
			q := pattern.Minimize(randomPattern(r, labels, 5))
			res := rewrite.Contained(q, reg.ViewList, fst)
			if len(res.Answers) == 0 {
				continue
			}
			contributed++
			want := map[string]bool{}
			for _, n := range engine.Answers(tree, q) {
				want[enc.MustCode(n).String()] = true
			}
			for _, a := range res.Answers {
				if !want[a.Code.String()] {
					t.Fatalf("unsound contained answer %s for %s", a.Code, q)
				}
			}
			if res.Complete && len(res.Answers) != len(want) {
				t.Fatalf("Complete claimed but %d != %d for %s", len(res.Answers), len(want), q)
			}
		}
	}
	if contributed < 15 {
		t.Fatalf("only %d contributing cases", contributed)
	}
}
