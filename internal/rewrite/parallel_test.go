package rewrite_test

import (
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// TestParallelMatchesSequentialPaper is the differential acceptance test
// on the paper's running example: Example 5.1's rewriting must return the
// same sorted code list under the sequential path (MaxWorkers 1) and
// every parallel width.
func TestParallelMatchesSequentialPaper(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	reg.Add(xpath.MustParse(paperdata.ViewV1), 0)
	reg.Add(xpath.MustParse(paperdata.ViewV2), 0)
	q := xpath.MustParse(paperdata.QueryE)
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := rewrite.ExecuteOptions(q, sel, enc.FST(), nil, rewrite.Options{MaxWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Answers) != 5 {
		t.Fatalf("sequential baseline drifted: %v", seq.Codes())
	}
	for _, workers := range []int{0, 2, 3, 8} {
		par, err := rewrite.ExecuteOptions(q, sel, enc.FST(), nil, rewrite.Options{MaxWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sameCodes(seq, par) {
			t.Fatalf("workers=%d: parallel %v != sequential %v", workers, par.Codes(), seq.Codes())
		}
		if par.FragmentsScanned != seq.FragmentsScanned {
			t.Fatalf("workers=%d: scanned %d fragments, sequential scanned %d",
				workers, par.FragmentsScanned, seq.FragmentsScanned)
		}
	}
}

// TestParallelMatchesSequentialXMark runs the same differential property
// over an XMark document and a workload of answerable queries: for every
// (query, strategy) the minimum selection declares answerable, the
// parallel rewrite's Codes() must equal both the sequential rewrite's and
// direct evaluation's.
func TestParallelMatchesSequentialXMark(t *testing.T) {
	tree := xmark.Generate(xmark.Config{Scale: 0.08, Seed: 61})
	enc, fst, err := dewey.EncodeTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	for _, src := range []string{
		"//person/address/city",
		"//person[address]/name",
		"//person/profile/age",
		"//open_auction/interval/start",
		"//open_auction/bidder/increase",
		"//closed_auction/price",
		"//person/name",
	} {
		if _, err := reg.Add(xpath.MustParse(src), 0); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"//person/address/city",
		"//person[address/city]/name",
		"//person[address][profile/age]/name",
		"//open_auction/bidder/increase",
		"//closed_auction/price",
		"//person[name]/profile/age",
	}
	answerable := 0
	for _, src := range queries {
		q := pattern.Minimize(xpath.MustParse(src))
		sel, err := selection.Minimum(q, reg.ViewList)
		if err != nil {
			continue
		}
		answerable++
		seq, err := rewrite.ExecuteOptions(q, sel, fst, nil, rewrite.Options{MaxWorkers: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", src, err)
		}
		if !codesMatch(t, enc, engine.Answers(tree, q), seq) {
			t.Fatalf("%s: sequential rewrite disagrees with direct evaluation", src)
		}
		for _, workers := range []int{0, 2, 5} {
			par, err := rewrite.ExecuteOptions(q, sel, fst, nil, rewrite.Options{MaxWorkers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", src, workers, err)
			}
			if !sameCodes(seq, par) {
				t.Fatalf("%s workers=%d: parallel %v != sequential %v",
					src, workers, par.Codes(), seq.Codes())
			}
		}
	}
	if answerable < 4 {
		t.Fatalf("only %d answerable queries; differential test too weak", answerable)
	}
}

// TestCodesMemoized is the regression test for Result.Codes: the second
// call returns the identical (already sorted) slice with zero further
// allocation.
func TestCodesMemoized(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	reg.Add(xpath.MustParse(paperdata.ViewV1), 0)
	reg.Add(xpath.MustParse(paperdata.ViewV2), 0)
	q := xpath.MustParse(paperdata.QueryE)
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Execute(q, sel, enc.FST())
	if err != nil {
		t.Fatal(err)
	}
	first := res.Codes()
	if len(first) == 0 {
		t.Fatal("no codes on the running example")
	}
	for i := 1; i < len(first); i++ {
		if dewey.Compare(first[i-1], first[i]) > 0 {
			t.Fatalf("codes not sorted: %v", first)
		}
	}
	second := res.Codes()
	if &first[0] != &second[0] || len(first) != len(second) {
		t.Fatal("Codes() rebuilt the slice instead of returning the memo")
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = res.Codes() }); allocs != 0 {
		t.Fatalf("repeated Codes() allocates %.1f objects per call, want 0", allocs)
	}
}
