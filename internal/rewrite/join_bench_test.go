package rewrite

// Microbenchmarks for the holistic-join kernel in isolation: the
// loser-tree virtual-tree build, the sequential upper-pattern join, and
// the prefix-partitioned parallel join at several worker counts. Run via
// `make bench-join` (which raises GOMAXPROCS so the parallel variants
// actually fan out) or profile with `go run ./cmd/xpvbench -join
// -cpuprofile join.pprof`.

import (
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// joinBenchEnv refines an 8-view selection over a scale-1.0 XMark
// document once; the refined streams are read-only for the join, so
// every benchmark iteration reuses them.
type joinBenchEnv struct {
	fst     *dewey.FST
	plan    *JoinPlan
	refined []refinedView
}

func newJoinBenchEnv(tb testing.TB) *joinBenchEnv {
	tb.Helper()
	doc := xmark.Generate(xmark.Config{Scale: 1.0, Seed: 2008})
	enc, fst, err := dewey.EncodeTree(doc)
	if err != nil {
		tb.Fatal(err)
	}
	reg := views.NewRegistry(doc, enc)
	for _, v := range []string{
		"//person/name",
		"//person/emailaddress",
		"//person/phone",
		"//person/address/city",
		"//person/homepage",
		"//person/creditcard",
		"//person/profile/age",
		"//person/watches/watch",
	} {
		if _, err := reg.Add(xpath.MustParse(v), 0); err != nil {
			tb.Fatal(err)
		}
	}
	q := pattern.Minimize(xpath.MustParse(
		"//person[emailaddress][phone][address/city][homepage][creditcard][profile/age][watches/watch]/name"))
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		tb.Fatal(err)
	}
	jp, err := PlanJoin(q, sel.Covers)
	if err != nil {
		tb.Fatal(err)
	}
	refined := make([]refinedView, len(sel.Covers))
	for i, c := range sel.Covers {
		if err := refineView(q, c, fst, &refined[i], nil, nil); err != nil {
			tb.Fatal(err)
		}
	}
	return &joinBenchEnv{fst: fst, plan: jp, refined: refined}
}

func BenchmarkJoinKernel(b *testing.B) {
	env := newJoinBenchEnv(b)
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vt, _, _ := buildVirtual(env.fst, env.refined)
			putVtree(vt)
		}
	})
	b.Run("join-seq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vt, anchors, _ := buildVirtual(env.fst, env.refined)
			if _, err := joinUpper(env.plan, env.refined, vt, anchors, nil); err != nil {
				b.Fatal(err)
			}
			putVtree(vt)
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run("join-par"+string(rune('0'+workers)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vt, anchors, _ := buildVirtual(env.fst, env.refined)
				if _, _, err := joinParallel(env.plan, env.refined, vt, anchors, nil, workers); err != nil {
					b.Fatal(err)
				}
				putVtree(vt)
			}
		})
	}
}
