//go:build !race

package rewrite

const raceEnabled = false
