package rewrite

// White-box tests for the holistic join kernel: the loser-tree k-way
// merge (with its galloping fast path), the Dewey-prefix partitioner
// behind the parallel join, the epoch-stamped joiner scratch, and the
// sort-and-compact answer dedup. The differential tests here force the
// parallel join onto tiny fixtures by overriding joinParGrain — the
// black-box tests in parallel_test.go only reach it on large documents.

import (
	"math/rand"
	"sort"
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// mergeStreams runs the exact merge loop buildVirtual uses (tournament
// build, gallop against the path-minimum challenger, replay) and returns
// the emitted (stream, code) sequence.
func mergeStreams(refined []refinedView) (streams []int32, codes []dewey.Code) {
	k := len(refined)
	m := codeMerger{refined: refined, heads: make([]int32, k), loser: make([]int32, k), k: int32(k)}
	w := m.build()
	if m.exhausted(w) {
		w = -1
	}
	for w >= 0 {
		ch := m.challenger(w)
		for {
			fi := m.heads[w]
			m.heads[w]++
			streams = append(streams, w)
			codes = append(codes, m.refined[w].frags[fi].Code)
			if m.exhausted(w) || (ch >= 0 && !m.less(w, ch)) {
				break
			}
		}
		w = m.replay(w)
	}
	return streams, codes
}

// randStreams builds k sorted code streams with skewed lengths (stream 0
// gets runs of consecutive codes, exercising the gallop) and duplicate
// codes both within and across streams.
func randStreams(r *rand.Rand, k, maxLen int) []refinedView {
	refined := make([]refinedView, k)
	for vi := range refined {
		n := r.Intn(maxLen + 1)
		if vi == 0 {
			n = maxLen * 2 // skew: the dominant stream gallops
		}
		frags := make([]*views.Fragment, 0, n)
		for i := 0; i < n; i++ {
			depth := 1 + r.Intn(4)
			code := make(dewey.Code, depth)
			for d := range code {
				code[d] = uint32(r.Intn(4))
			}
			frags = append(frags, &views.Fragment{Code: code})
		}
		sort.Slice(frags, func(i, j int) bool { return dewey.Compare(frags[i].Code, frags[j].Code) < 0 })
		refined[vi] = refinedView{frags: frags}
	}
	return refined
}

// TestLoserTreeMergeRandom: for many random stream sets and widths, the
// loser-tree merge (gallop included) must emit every code exactly once,
// in global document order, breaking ties by stream index — the order
// the old k-head linear scan produced.
func TestLoserTreeMergeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.Intn(9)
		refined := randStreams(r, k, 1+r.Intn(20))

		type emit struct {
			stream int32
			code   dewey.Code
		}
		var want []emit
		for vi := range refined {
			for _, f := range refined[vi].frags {
				want = append(want, emit{int32(vi), f.Code})
			}
		}
		sort.SliceStable(want, func(i, j int) bool {
			c := dewey.Compare(want[i].code, want[j].code)
			return c < 0 || (c == 0 && want[i].stream < want[j].stream)
		})

		streams, codes := mergeStreams(refined)
		if len(codes) != len(want) {
			t.Fatalf("trial %d (k=%d): merged %d codes, want %d", trial, k, len(codes), len(want))
		}
		for i := range want {
			if streams[i] != want[i].stream || dewey.Compare(codes[i], want[i].code) != 0 {
				t.Fatalf("trial %d (k=%d): emit %d = (stream %d, %v), want (stream %d, %v)",
					trial, k, i, streams[i], codes[i], want[i].stream, want[i].code)
			}
		}
	}
}

// TestLoserTreeGallopSkew pins the gallop fast path on a hand-built skew:
// one stream holds a long run strictly below every other head, so after
// the first replay the whole run must drain in emit order.
func TestLoserTreeGallopSkew(t *testing.T) {
	mk := func(codes ...dewey.Code) refinedView {
		frags := make([]*views.Fragment, len(codes))
		for i, c := range codes {
			frags[i] = &views.Fragment{Code: c}
		}
		return refinedView{frags: frags}
	}
	refined := []refinedView{
		mk(dewey.Code{0, 1}, dewey.Code{0, 2}, dewey.Code{0, 3}, dewey.Code{0, 4}, dewey.Code{0, 9}),
		mk(dewey.Code{0, 5}),
		mk(dewey.Code{0, 6}, dewey.Code{0, 7}),
	}
	wantStreams := []int32{0, 0, 0, 0, 1, 2, 2, 0}
	streams, codes := mergeStreams(refined)
	if len(streams) != len(wantStreams) {
		t.Fatalf("emitted %d codes, want %d", len(streams), len(wantStreams))
	}
	for i, ws := range wantStreams {
		if streams[i] != ws {
			t.Fatalf("emit %d came from stream %d (%v), want stream %d", i, streams[i], codes[i], ws)
		}
	}
	for i := 1; i < len(codes); i++ {
		if dewey.Compare(codes[i-1], codes[i]) > 0 {
			t.Fatalf("merge out of order at %d: %v > %v", i, codes[i-1], codes[i])
		}
	}
}

// TestPartitionByPrefix checks the span invariants the parallel join
// relies on: spans tile the fragment list contiguously, fragments that
// share a span share their code prefix at some depth, and the partition
// deepens past a shared top-level component instead of collapsing to one
// span (the all-persons-under-/site/people shape).
func TestPartitionByPrefix(t *testing.T) {
	mkFrags := func(codes ...dewey.Code) []*views.Fragment {
		frags := make([]*views.Fragment, len(codes))
		for i, c := range codes {
			frags[i] = &views.Fragment{Code: c}
		}
		return frags
	}
	checkTiling := func(t *testing.T, parts []fragSpan, n int) {
		t.Helper()
		at := 0
		for _, sp := range parts {
			if sp.lo != at || sp.hi <= sp.lo {
				t.Fatalf("spans do not tile [0,%d): %v", n, parts)
			}
			at = sp.hi
		}
		if at != n {
			t.Fatalf("spans cover [0,%d), want [0,%d): %v", at, n, parts)
		}
	}

	if parts := partitionByPrefix(nil, 4); parts != nil {
		t.Fatalf("empty input produced spans: %v", parts)
	}

	// Distinct second components split at depth 2 already.
	frags := mkFrags(
		dewey.Code{0, 0, 1}, dewey.Code{0, 0, 2},
		dewey.Code{0, 1, 0},
		dewey.Code{0, 2, 0}, dewey.Code{0, 2, 1},
	)
	parts := partitionByPrefix(frags, 3)
	checkTiling(t, parts, len(frags))
	if len(parts) != 3 {
		t.Fatalf("got %d spans %v, want 3", len(parts), parts)
	}

	// All fragments under one deep shared prefix: the partitioner must
	// deepen until the codes separate rather than return a single span.
	frags = mkFrags(
		dewey.Code{0, 1, 0, 0}, dewey.Code{0, 1, 0, 1},
		dewey.Code{0, 1, 1, 0}, dewey.Code{0, 1, 2, 0},
		dewey.Code{0, 1, 3, 0}, dewey.Code{0, 1, 3, 1},
	)
	parts = partitionByPrefix(frags, 4)
	checkTiling(t, parts, len(frags))
	if len(parts) < 4 {
		t.Fatalf("partitioner failed to deepen past the shared prefix: %v", parts)
	}

	// Identical codes can never split: the partitioner must terminate and
	// return one span, not loop hunting for fan-out that cannot exist.
	frags = mkFrags(dewey.Code{0, 1}, dewey.Code{0, 1}, dewey.Code{0, 1})
	parts = partitionByPrefix(frags, 8)
	checkTiling(t, parts, len(frags))

	// Singleton overshoot: one deepening step separates every fragment at
	// once (100 siblings under one prefix). Coalescing must cap the
	// schedule near the requested fan-out instead of returning 100
	// one-fragment spans.
	many := make([]dewey.Code, 100)
	for i := range many {
		many[i] = dewey.Code{0, 1, uint32(i)}
	}
	frags = mkFrags(many...)
	parts = partitionByPrefix(frags, 4)
	checkTiling(t, parts, len(frags))
	if len(parts) < 4 || len(parts) > 8 {
		t.Fatalf("coalescing produced %d spans for minParts=4, want 4..8", len(parts))
	}
}

// planFixture builds a (plan, fst, refined) stack from the paper's
// running example, refined for real.
func planFixture(t *testing.T) (*JoinPlan, *dewey.FST, []refinedView, func()) {
	t.Helper()
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	reg.Add(xpath.MustParse(paperdata.ViewV1), 0)
	reg.Add(xpath.MustParse(paperdata.ViewV2), 0)
	q := xpath.MustParse(paperdata.QueryE)
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := PlanJoin(q, sel.Covers)
	if err != nil {
		t.Fatal(err)
	}
	refined := make([]refinedView, len(sel.Covers))
	for i, c := range sel.Covers {
		if err := refineView(q, c, enc.FST(), &refined[i], nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	return jp, enc.FST(), refined, func() { releaseRefined(refined) }
}

// TestJoinParallelMatchesJoinUpper drives the parallel kernel directly
// against the sequential one on the paper example, across worker counts
// that exceed both the span count and the fragment count.
func TestJoinParallelMatchesJoinUpper(t *testing.T) {
	jp, fst, refined, release := planFixture(t)
	defer release()
	vt, anchors, _ := buildVirtual(fst, refined)
	defer putVtree(vt)

	seq, err := joinUpper(jp, refined, vt, anchors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("paper example joined zero fragments; fixture drifted")
	}
	for _, workers := range []int{1, 2, 3, 16} {
		par, _, err := joinParallel(jp, refined, vt, anchors, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: joined %d fragments, sequential joined %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: fragment %d differs (order must match the sequential path)", workers, i)
			}
		}
	}
}

// TestParallelJoinForcedXMark lowers joinParGrain so ExecuteOptions
// engages the parallel join on a small XMark instance, then checks the
// full pipeline's answers against the sequential path across worker
// counts. This is the end-to-end differential guard for the kernel on a
// document where all Δ-fragments share a top-level prefix.
func TestParallelJoinForcedXMark(t *testing.T) {
	oldGrain := joinParGrain
	joinParGrain = 1
	defer func() { joinParGrain = oldGrain }()

	tree := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 17})
	enc, fst, err := dewey.EncodeTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	for _, src := range []string{
		"//person/name",
		"//person[address]/name",
		"//person/address/city",
		"//open_auction/bidder/increase",
	} {
		if _, err := reg.Add(xpath.MustParse(src), 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range []string{
		"//person[address/city]/name",
		"//person/address/city",
		"//open_auction/bidder/increase",
	} {
		q := pattern.Minimize(xpath.MustParse(src))
		sel, err := selection.Minimum(q, reg.ViewList)
		if err != nil {
			continue
		}
		seq, err := ExecuteOptions(q, sel, fst, nil, Options{MaxWorkers: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", src, err)
		}
		for _, workers := range []int{2, 3, 7} {
			par, err := ExecuteOptions(q, sel, fst, nil, Options{MaxWorkers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", src, workers, err)
			}
			if seq.FragmentsJoined >= 2 && par.JoinWorkers < 2 {
				t.Fatalf("%s workers=%d: parallel join not engaged (JoinWorkers=%d) despite grain=1 and %d Δ-fragments",
					src, workers, par.JoinWorkers, seq.FragmentsJoined)
			}
			sc, pc := seq.Codes(), par.Codes()
			if len(sc) != len(pc) {
				t.Fatalf("%s workers=%d: %d answers, sequential %d", src, workers, len(pc), len(sc))
			}
			for i := range sc {
				if dewey.Compare(sc[i], pc[i]) != 0 {
					t.Fatalf("%s workers=%d: answer %d = %v, sequential %v", src, workers, i, pc[i], sc[i])
				}
			}
		}
	}
}

// TestJoinPlanReuse: passing the precomputed JoinPlan through Options
// must give the same answers as recomputing it per call (the serving
// layer's plan-cache wiring depends on this).
func TestJoinPlanReuse(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	reg.Add(xpath.MustParse(paperdata.ViewV1), 0)
	reg.Add(xpath.MustParse(paperdata.ViewV2), 0)
	q := xpath.MustParse(paperdata.QueryE)
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := PlanJoin(q, sel.Covers)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ExecuteOptions(q, sel, enc.FST(), nil, Options{MaxWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	withPlan, err := ExecuteOptions(q, sel, enc.FST(), nil, Options{MaxWorkers: 1, Plan: jp})
	if err != nil {
		t.Fatal(err)
	}
	bc, pc := base.Codes(), withPlan.Codes()
	if len(bc) != len(pc) {
		t.Fatalf("plan reuse changed answer count: %d vs %d", len(pc), len(bc))
	}
	for i := range bc {
		if dewey.Compare(bc[i], pc[i]) != 0 {
			t.Fatalf("plan reuse changed answer %d: %v vs %v", i, pc[i], bc[i])
		}
	}
	// A plan for a different pattern object must be ignored, not misused.
	q2 := xpath.MustParse(paperdata.QueryE)
	sel2, err := selection.Minimum(q2, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := ExecuteOptions(q2, sel2, enc.FST(), nil, Options{MaxWorkers: 1, Plan: jp})
	if err != nil {
		t.Fatal(err)
	}
	if len(cross.Codes()) != len(bc) {
		t.Fatalf("mismatched plan not recomputed: %d answers, want %d", len(cross.Codes()), len(bc))
	}
}

// TestJoinerEpochWraparound: when the per-fragment epoch counter wraps,
// stale stamps must not read as live assignments.
func TestJoinerEpochWraparound(t *testing.T) {
	jp, fst, refined, release := planFixture(t)
	defer release()
	vt, _, _ := buildVirtual(fst, refined)
	defer putVtree(vt)

	j := acquireJoiner(jp, vt, nil)
	defer releaseJoiner(j)
	j.beginEmbed()
	j.setAssign(jp.rootIdx, 0)
	if _, ok := j.assigned(int32(jp.rootIdx)); !ok {
		t.Fatal("fresh assignment not visible")
	}
	// Force the wrap: the next beginEmbed overflows to 0 and must
	// hard-reset rather than let old stamps equal the new epoch.
	j.epoch = ^uint32(0)
	j.assignEp[jp.rootIdx] = ^uint32(0)
	j.beginEmbed()
	if j.epoch == 0 {
		t.Fatal("epoch stayed 0 after wrap; stamps comparing equal to 0 would leak")
	}
	if _, ok := j.assigned(int32(jp.rootIdx)); ok {
		t.Fatal("stale assignment survived epoch wraparound")
	}
}

// TestDedupAnswers: duplicates collapse to the first-seen answer (the
// map-based dedup's survivor) and the dropped tail is zeroed so pooled
// buffers do not pin fragment nodes.
func TestDedupAnswers(t *testing.T) {
	c := func(xs ...uint32) dewey.Code { return dewey.Code(xs) }
	res := &Result{Answers: []Answer{
		{Code: c(0, 1)}, {Code: c(0, 1)}, {Code: c(0, 2)}, {Code: c(0, 2)}, {Code: c(0, 2)}, {Code: c(0, 3)},
	}}
	backing := res.Answers
	dedupAnswers(res)
	want := []dewey.Code{c(0, 1), c(0, 2), c(0, 3)}
	if len(res.Answers) != len(want) {
		t.Fatalf("dedup kept %d answers, want %d", len(res.Answers), len(want))
	}
	for i, w := range want {
		if dewey.Compare(res.Answers[i].Code, w) != 0 {
			t.Fatalf("answer %d = %v, want %v", i, res.Answers[i].Code, w)
		}
	}
	for i := len(want); i < len(backing); i++ {
		if backing[i].Code != nil || backing[i].Node != nil {
			t.Fatalf("dropped tail slot %d not zeroed: %+v", i, backing[i])
		}
	}
}
