//go:build race

package rewrite

// raceEnabled reports the race detector is compiled in; allocation
// accounting tests skip themselves (the detector's shadow memory
// distorts alloc counts).
const raceEnabled = true
