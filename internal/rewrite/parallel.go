package rewrite

// Parallel execution of the rewriting pipeline's parallel stages. §V's
// refinement ("pushing selection") treats each selected view
// independently, and extraction treats each joined Δ-fragment
// independently, so both fan out across a bounded worker pool: one
// worker per view (refinement) or a pool striding over fragments
// (extraction). The holistic join splits in two: the arena build stays
// the single loser-tree merge scan the paper designed to be linear,
// while the per-fragment embeds — independent by construction — fan out
// over Dewey-prefix partitions (see joinParallel in join.go).
//
// Correctness under concurrency: the shared budget charges atomically
// (internal/budget), fragment trees are pre-numbered at materialization
// (Tree.Ord is read-only afterwards), and patterns are never mutated by
// matching. Workers write only their own refinedView slot or answer
// slot, so merged results are deterministic and identical to the
// sequential path's.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"xpathviews/internal/budget"
	"xpathviews/internal/dewey"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
)

// Options tunes one Execute call.
type Options struct {
	// MaxWorkers caps the refinement/join/extraction worker pools. 0
	// means min(GOMAXPROCS, work items); 1 forces the sequential path
	// (useful for differential testing and single-core deployments).
	MaxWorkers int
	// Plan, when non-nil, supplies a precomputed join skeleton for
	// exactly this call's (pattern, covers) pair — the serving layer
	// caches one per query plan. A mismatched or nil Plan is recomputed
	// on the fly, so passing it is purely an optimization.
	Plan *JoinPlan
}

// workersFor resolves the worker count for n independent work items.
func (o Options) workersFor(n int) int {
	w := o.MaxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// refineAll runs stage 1+2 for every cover, with workers goroutines when
// workers > 1. It reports empty=true when some view refined to zero
// fragments (the rewriting's answer is empty); on a parallel run the
// discovering worker flips a cooperative stop flag so sibling workers
// abandon their remaining fragments early. All workers are joined before
// returning, so the caller may release the refined scratch safely.
func refineAll(q *pattern.Pattern, covers []*selection.Cover, fst *dewey.FST, refined []refinedView, b *budget.B, workers int) (empty bool, err error) {
	if workers <= 1 || len(covers) == 1 {
		for i, c := range covers {
			if err := refineView(q, c, fst, &refined[i], b, nil); err != nil {
				return false, err
			}
			if len(refined[i].frags) == 0 {
				return true, nil
			}
		}
		return false, nil
	}

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		gotEmpty atomic.Bool
		errSlot  atomic.Pointer[error]
	)
	next := atomic.Int64{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(covers) {
					return
				}
				if stop.Load() {
					continue // drain remaining indexes cheaply
				}
				if e := refineView(q, covers[i], fst, &refined[i], b, &stop); e != nil {
					p := new(error)
					*p = e
					if errSlot.CompareAndSwap(nil, p) {
						stop.Store(true)
					}
					continue
				}
				if !stop.Load() && len(refined[i].frags) == 0 {
					gotEmpty.Store(true)
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if p := errSlot.Load(); p != nil {
		return false, *p
	}
	if gotEmpty.Load() {
		return true, nil
	}
	// A worker cancelled by the stop flag may have left a view partially
	// refined; without an error or an empty view the flag is never set,
	// so reaching here means every view was fully refined.
	return false, nil
}
