package rewrite

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xpathviews/internal/budget"
	"xpathviews/internal/dewey"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
)

// JoinPlan is the data-independent skeleton of the holistic join for one
// (query, selection) pair: the upper twig (Q restricted to the union of
// the root→X_i paths), the Δ-path marking, the per-node landing views,
// and the rigid-anchor pins with their targets resolved to dense query-
// node indexes. Everything here depends only on the plan — never on
// which fragments exist today — so the serving layer memoizes it in the
// plan cache and every query that hits the plan skips the skeleton
// rebuild (and its per-query map) entirely.
type JoinPlan struct {
	// q is the pattern the skeleton was computed against; ExecuteOptions
	// recomputes the plan if handed a different pattern object (covers
	// index into q's nodes, so identity is the correctness condition).
	q        *pattern.Pattern
	deltaIdx int

	rootIdx int
	labels  []string       // query node labels by index
	axes    []pattern.Axis // query node axes by index

	keep      []bool    // query node participates in the upper twig
	deltaPath []bool    // query node lies on root→X_Δ
	landAt    [][]int32 // view indexes landing on the query node
	keptKids  [][]int32 // kept children (as node indexes) per query node
	pins      [][]pinRef
}

// pinRef is a selection.Pin with its target resolved to a query-node
// index, so pin validation in the join's inner loop is an array load
// instead of a map lookup.
type pinRef struct {
	y int32 // query-node index of Pin.Y
	k int32 // Pin.K
}

// DeltaIndex exposes the chosen Δ-view's position in the selection's
// cover list (Explain and the bench harness report it).
func (p *JoinPlan) DeltaIndex() int { return p.deltaIdx }

// PlanJoin computes the join skeleton for q under the selection's
// covers, choosing the Δ-view. It fails only when the selection has no
// Δ-view — the same condition ExecuteOptions rejects.
func PlanJoin(q *pattern.Pattern, covers []*selection.Cover) (*JoinPlan, error) {
	deltaIdx := chooseDelta(covers)
	if deltaIdx < 0 {
		return nil, fmt.Errorf("rewrite: no Δ-view in selection")
	}
	nodes := q.Nodes()
	n := len(nodes)
	idx := make(map[*pattern.Node]int, n)
	for i, qn := range nodes {
		idx[qn] = i
	}
	p := &JoinPlan{
		q:         q,
		deltaIdx:  deltaIdx,
		rootIdx:   idx[q.Root],
		labels:    make([]string, n),
		axes:      make([]pattern.Axis, n),
		keep:      make([]bool, n),
		deltaPath: make([]bool, n),
		landAt:    make([][]int32, n),
		keptKids:  make([][]int32, n),
		pins:      make([][]pinRef, len(covers)),
	}
	for i, qn := range nodes {
		p.labels[i] = qn.Label
		p.axes[i] = qn.Axis
	}
	for vi, c := range covers {
		for qn := c.X; qn != nil; qn = qn.Parent {
			p.keep[idx[qn]] = true
		}
		xi := idx[c.X]
		p.landAt[xi] = append(p.landAt[xi], int32(vi))
		for _, pin := range c.Pins {
			p.pins[vi] = append(p.pins[vi], pinRef{y: int32(idx[pin.Y]), k: int32(pin.K)})
		}
	}
	for qn := covers[deltaIdx].X; qn != nil; qn = qn.Parent {
		p.deltaPath[idx[qn]] = true
	}
	for i, qn := range nodes {
		for _, c := range qn.Children {
			ci := idx[c]
			if p.keep[ci] {
				p.keptKids[i] = append(p.keptKids[i], int32(ci))
			}
		}
	}
	return p, nil
}

// joiner matches the query's upper pattern on the virtual tree, once per
// Δ-view fragment, reusing all scratch state across fragments. The upper
// pattern is Q restricted to the union of the root→X_i paths: everything
// below an X_i is already verified inside fragments by refinement, and
// predicate branches discharged by rigid guarantees are enforced as pins
// rather than matched structurally.
//
// Per-fragment scratch is epoch-stamped: instead of clearing the O(|Q|)
// assignment array before every fragment, embed bumps an epoch counter
// and a slot counts as assigned only when its stamp matches — resetting
// state is a single increment. Instances are pooled (joinerPool) so a
// steady-state join allocates nothing, and the hot placement loops are
// plain methods: the closure-per-node-visit of the old backtracker was
// one heap allocation per candidate probe.
type joiner struct {
	p  *JoinPlan
	vt *vtree

	epoch    uint32
	assign   []int32  // by query-node index; valid when stamp matches
	assignEp []uint32 // epoch stamp per assign slot

	chain     []int32 // chain[d] = depth-d ancestor of the anchor
	deltaFrag *views.Fragment

	// budget aborts the backtracking search; err sticks once set. b is a
	// budget.Stepper so the same kernel runs under the shared budget
	// (sequential path) or a per-worker shard (parallel path).
	b   budget.Stepper
	err error
}

// joinerPool recycles joiners with their grown scratch arrays, like
// vtPool does for the arena.
var joinerPool = sync.Pool{New: func() any { return &joiner{} }}

func acquireJoiner(p *JoinPlan, vt *vtree, b budget.Stepper) *joiner {
	j := joinerPool.Get().(*joiner)
	j.p, j.vt, j.b, j.err = p, vt, b, nil
	if j.b == nil {
		j.b = (*budget.B)(nil) // nil *B is a valid, never-aborting Stepper
	}
	n := len(p.labels)
	if cap(j.assign) < n {
		j.assign = make([]int32, n)
		j.assignEp = make([]uint32, n)
	}
	j.assign = j.assign[:n]
	j.assignEp = j.assignEp[:n]
	// Stale stamps from an earlier (possibly longer) query must not
	// collide with this query's epochs: restart the epoch space.
	for i := range j.assignEp {
		j.assignEp[i] = 0
	}
	j.epoch = 0
	return j
}

func releaseJoiner(j *joiner) {
	j.p, j.vt, j.b, j.deltaFrag, j.err = nil, nil, nil, nil, nil
	joinerPool.Put(j)
}

// joinUpper returns the Δ-view fragments that participate in at least
// one embedding of the upper pattern in the virtual tree, charging one
// budget step per embedding attempt.
func joinUpper(p *JoinPlan, refined []refinedView, vt *vtree, anchors [][]int32, b budget.Stepper) ([]*views.Fragment, error) {
	j := acquireJoiner(p, vt, b)
	defer releaseJoiner(j)
	frags := refined[p.deltaIdx].frags
	anch := anchors[p.deltaIdx]
	out := make([]*views.Fragment, 0, len(frags))
	for fi, frag := range frags {
		if j.embed(frag, anch[fi]) {
			out = append(out, frag)
		}
		if j.err != nil {
			return nil, j.err
		}
	}
	return out, nil
}

// joinPartsPerWorker is the partition fan-out per worker: enough spans
// that dynamic scheduling evens out skewed document regions, few enough
// that span bookkeeping stays negligible.
const joinPartsPerWorker = 4

// joinParGrain is the Δ-fragment count one join worker should own at
// minimum; below 2×grain the parallel kernel is not engaged. A package
// variable so the differential tests can force tiny parallel joins.
var joinParGrain = 64

// fragSpan is one contiguous run of Δ-fragments sharing a Dewey code
// prefix.
type fragSpan struct{ lo, hi int }

// partitionByPrefix splits the (code-sorted) Δ-fragment list into
// contiguous spans of equal code prefix, deepening the prefix length
// until at least minParts spans exist or every fragment stands alone.
// Starting at the top-level component and deepening adaptively handles
// documents where all fragments live under one top-level subtree (every
// XMark person is under /site/people): a fixed top-level split would
// yield a single span there.
func partitionByPrefix(frags []*views.Fragment, minParts int) []fragSpan {
	n := len(frags)
	if n == 0 {
		return nil
	}
	maxLen := 0
	for _, f := range frags {
		if len(f.Code) > maxLen {
			maxLen = len(f.Code)
		}
	}
	for depth := 2; ; depth++ {
		parts := spansAtPrefix(frags, depth)
		if len(parts) >= minParts || len(parts) == n || depth >= maxLen {
			return coalesceSpans(parts, minParts)
		}
	}
}

// coalesceSpans caps the schedule at ~2×minParts work items by merging
// adjacent spans. The adaptive deepening can overshoot from too few
// spans straight to per-fragment singletons (one step deeper separates
// every person under the shared /site/people prefix); thousands of
// one-fragment spans would cost an atomic claim each and schedule no
// better than ~2×minParts balanced ones. Merging only adjacent spans
// keeps every group a contiguous code range, preserving the per-worker
// arena locality the partition exists for.
func coalesceSpans(parts []fragSpan, minParts int) []fragSpan {
	maxParts := 2 * minParts
	if len(parts) <= maxParts {
		return parts
	}
	total := parts[len(parts)-1].hi - parts[0].lo
	per := (total + maxParts - 1) / maxParts
	out := parts[:0] // in-place: write index never passes the read index
	cur := parts[0]
	for _, sp := range parts[1:] {
		if cur.hi-cur.lo >= per {
			out = append(out, cur)
			cur = sp
			continue
		}
		cur.hi = sp.hi
	}
	return append(out, cur)
}

// spansAtPrefix groups consecutive fragments whose codes agree on their
// first depth components (codes shorter than depth group only with equal
// codes). One pass: the list is sorted, so equal prefixes are adjacent.
func spansAtPrefix(frags []*views.Fragment, depth int) []fragSpan {
	var parts []fragSpan
	lo := 0
	for i := 1; i < len(frags); i++ {
		a, b := frags[i-1].Code, frags[i].Code
		la, lb := len(a), len(b)
		if la > depth {
			la = depth
		}
		if lb > depth {
			lb = depth
		}
		if la != lb || dewey.CommonPrefixLen(a, b) < la {
			parts = append(parts, fragSpan{lo, i})
			lo = i
		}
	}
	return append(parts, fragSpan{lo, len(frags)})
}

// joinParallel is joinUpper fanned out over a worker pool: the Δ-view's
// fragments are partitioned by Dewey code prefix into contiguous spans
// (each worker walks one document region at a time, staying local in the
// shared read-only arena), workers claim spans dynamically, each runs
// its own pooled joiner under a budget shard, and survivors are recorded
// in a per-fragment bitmap so the merged output is in exactly the
// sequential path's order. Per-fragment embeds share no state, so the
// result set is identical to joinUpper's. The second return value is
// the scheduled partition fan-out (len(parts)), exported as a metric.
func joinParallel(p *JoinPlan, refined []refinedView, vt *vtree, anchors [][]int32, b *budget.B, workers int) ([]*views.Fragment, int, error) {
	frags := refined[p.deltaIdx].frags
	anch := anchors[p.deltaIdx]
	parts := partitionByPrefix(frags, workers*joinPartsPerWorker)
	ok := make([]bool, len(frags))
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		stop    atomic.Bool
		errSlot atomic.Pointer[error]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := budget.NewShard(b)
			defer sh.Close()
			j := acquireJoiner(p, vt, sh)
			defer releaseJoiner(j)
			for {
				pi := int(next.Add(1)) - 1
				if pi >= len(parts) || stop.Load() {
					return
				}
				sp := parts[pi]
				for fi := sp.lo; fi < sp.hi; fi++ {
					if j.embed(frags[fi], anch[fi]) {
						ok[fi] = true
					}
					if j.err != nil {
						e := new(error)
						*e = j.err
						errSlot.CompareAndSwap(nil, e)
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if e := errSlot.Load(); e != nil {
		return nil, len(parts), *e
	}
	out := make([]*views.Fragment, 0, len(frags))
	for fi, joined := range ok {
		if joined {
			out = append(out, frags[fi])
		}
	}
	return out, len(parts), nil
}

// beginEmbed opens a fresh per-fragment epoch; all assignment slots
// become unassigned in O(1).
func (j *joiner) beginEmbed() {
	j.epoch++
	if j.epoch == 0 { // wrapped: stale stamps could collide, hard-reset
		for i := range j.assignEp {
			j.assignEp[i] = 0
		}
		j.epoch = 1
	}
}

func (j *joiner) assigned(qi int32) (int32, bool) {
	if j.assignEp[qi] != j.epoch {
		return -1, false
	}
	return j.assign[qi], true
}

func (j *joiner) setAssign(qi int, v int32) {
	j.assign[qi] = v
	j.assignEp[qi] = j.epoch
}

func (j *joiner) clearAssign(qi int) { j.assignEp[qi] = 0 }

// embed reports whether the upper pattern embeds with the Δ landing node
// pinned to this fragment's anchor node.
func (j *joiner) embed(frag *views.Fragment, anchor int32) bool {
	j.deltaFrag = frag
	j.beginEmbed()
	// chain[d] = depth-d ancestor of anchor; chain[0] is the document
	// root. Reuse the backing array.
	depth := j.vt.depth(anchor)
	if cap(j.chain) < depth+1 {
		j.chain = make([]int32, depth+1)
	}
	j.chain = j.chain[:depth+1]
	for v := anchor; v >= 0; v = j.vt.nodes[v].parent {
		j.chain[j.vt.depth(v)] = v
	}
	// The query root is on the Δ-path, so it maps onto the anchor chain:
	// a '/'-rooted query at chain[0], a '//'-rooted one anywhere on it.
	rootIdx := j.p.rootIdx
	if !j.p.keep[rootIdx] {
		return false
	}
	if j.p.axes[rootIdx] == pattern.Child {
		return j.try(rootIdx, j.chain[0])
	}
	for _, v := range j.chain {
		if j.try(rootIdx, v) {
			return true
		}
	}
	return false
}

// pinsOK validates every pin of view vi whose target is already assigned
// against the candidate fragment.
func (j *joiner) pinsOK(vi int32, frag *views.Fragment) bool {
	for _, p := range j.p.pins[vi] {
		w, ok := j.assigned(p.y)
		if !ok {
			continue // ancestors are always assigned before descendants
		}
		wc := j.vt.nodes[w].code
		want := len(frag.Code) - int(p.k)
		if want < 1 || len(wc) != want || !isPrefixCode(wc, frag.Code) {
			return false
		}
	}
	return true
}

func isPrefixCode(w, c []uint32) bool {
	if len(w) > len(c) {
		return false
	}
	for i := range w {
		if w[i] != c[i] {
			return false
		}
	}
	return true
}

// pickFrag returns the first fragment of view vi rooted at arena node at
// whose pins validate (for the Δ-view, only the fragment under test
// itself qualifies — its landing node is pinned to the anchor).
func (j *joiner) pickFrag(at, vi int32) *views.Fragment {
	for e := j.vt.nodes[at].fragHead; e >= 0; e = j.vt.fragEntries[e].next {
		fe := &j.vt.fragEntries[e]
		if fe.view != vi {
			continue
		}
		if int(vi) == j.p.deltaIdx && fe.frag != j.deltaFrag {
			continue
		}
		if j.pinsOK(vi, fe.frag) {
			return fe.frag
		}
	}
	return nil
}

// try assigns query node qi to arena node at and recursively places its
// kept children; on failure all assignments made beneath are rolled back.
func (j *joiner) try(qi int, at int32) bool {
	if j.err != nil {
		return false
	}
	if j.err = j.b.Step(1); j.err != nil {
		return false
	}
	if lbl := j.p.labels[qi]; lbl != pattern.Wildcard && lbl != j.vt.nodes[at].label {
		return false
	}
	j.setAssign(qi, at)
	for _, vi := range j.p.landAt[qi] {
		if j.pickFrag(at, vi) == nil {
			j.clearAssign(qi)
			return false
		}
	}
	if !j.placeKids(qi, at, 0) {
		j.clearAssign(qi)
		return false
	}
	return true
}

// placeKids places the kept children of qi starting from index k.
func (j *joiner) placeKids(qi int, at int32, k int) bool {
	kids := j.p.keptKids[qi]
	if k == len(kids) {
		return true
	}
	ci := kids[k]
	if j.p.deltaPath[ci] {
		// ci maps onto the anchor chain only; its parent must itself sit
		// on the chain.
		d := j.vt.depth(at)
		if d >= len(j.chain) || j.chain[d] != at {
			return false
		}
		if j.p.axes[ci] == pattern.Child {
			return d+1 < len(j.chain) && j.placeAt(ci, j.chain[d+1], qi, at, k)
		}
		for dd := d + 1; dd < len(j.chain); dd++ {
			if j.placeAt(ci, j.chain[dd], qi, at, k) {
				return true
			}
		}
		return false
	}
	if j.p.axes[ci] == pattern.Child {
		for v := j.vt.nodes[at].firstChild; v >= 0; v = j.vt.nodes[v].nextSib {
			if j.placeAt(ci, v, qi, at, k) {
				return true
			}
		}
		return false
	}
	return j.placeDesc(ci, at, qi, at, k)
}

// placeAt tries child query node ci at arena node v, then continues with
// the remaining siblings of the placement in progress.
func (j *joiner) placeAt(ci, v int32, qi int, at int32, k int) bool {
	if !j.try(int(ci), v) {
		return false
	}
	if j.placeKids(qi, at, k+1) {
		return true
	}
	j.unassign(int(ci))
	return false
}

// placeDesc scans the arena subtree below root for a placement of ci
// (descendant axis).
func (j *joiner) placeDesc(ci, root int32, qi int, at int32, k int) bool {
	for ch := j.vt.nodes[root].firstChild; ch >= 0; ch = j.vt.nodes[ch].nextSib {
		if j.placeAt(ci, ch, qi, at, k) || j.placeDesc(ci, ch, qi, at, k) {
			return true
		}
	}
	return false
}

// unassign rolls back the subtree assignment rooted at query node qi.
func (j *joiner) unassign(qi int) {
	if !j.p.keep[qi] {
		return
	}
	j.clearAssign(qi)
	for _, ci := range j.p.keptKids[qi] {
		j.unassign(int(ci))
	}
}
