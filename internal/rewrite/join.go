package rewrite

import (
	"xpathviews/internal/budget"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
)

// joiner matches the query's upper pattern on the virtual tree, once per
// Δ-view fragment, reusing all scratch state across fragments. The upper
// pattern is Q restricted to the union of the root→X_i paths: everything
// below an X_i is already verified inside fragments by refinement, and
// predicate branches discharged by rigid guarantees are enforced as pins
// rather than matched structurally.
type joiner struct {
	q      *pattern.Pattern
	qIdx   map[*pattern.Node]int
	qNodes []*pattern.Node
	vt     *vtree

	keep      []bool  // query node participates in the upper twig
	deltaPath []bool  // query node lies on root→X_Δ
	landAt    [][]int // view indexes landing on the query node
	keptKids  [][]int // kept children (as qIdx) per query node

	covers   []*selection.Cover
	pins     [][]selection.Pin
	deltaIdx int

	// per-fragment scratch
	assign     []int32 // by qIdx; -1 unassigned
	fragChoice []*views.Fragment
	chain      []int32
	deltaFrag  *views.Fragment

	// budget aborts the backtracking search; err sticks once set.
	b   *budget.B
	err error
}

// joinUpper returns the Δ-view fragments that participate in at least one
// embedding of the upper pattern in the virtual tree, charging one budget
// step per embedding attempt.
func joinUpper(q *pattern.Pattern, covers []*selection.Cover, refined []refinedView, vt *vtree, anchors [][]int32, deltaIdx int, b *budget.B) ([]*views.Fragment, error) {
	j := newJoiner(q, covers, vt, deltaIdx)
	j.b = b
	out := make([]*views.Fragment, 0, len(refined[deltaIdx].frags))
	for fi, frag := range refined[deltaIdx].frags {
		if j.embed(frag, anchors[deltaIdx][fi]) {
			out = append(out, frag)
		}
		if j.err != nil {
			return nil, j.err
		}
	}
	return out, nil
}

func newJoiner(q *pattern.Pattern, covers []*selection.Cover, vt *vtree, deltaIdx int) *joiner {
	j := &joiner{q: q, covers: covers, vt: vt, deltaIdx: deltaIdx, qNodes: q.Nodes()}
	n := len(j.qNodes)
	j.qIdx = make(map[*pattern.Node]int, n)
	for i, qn := range j.qNodes {
		j.qIdx[qn] = i
	}
	j.keep = make([]bool, n)
	j.deltaPath = make([]bool, n)
	j.landAt = make([][]int, n)
	j.keptKids = make([][]int, n)
	j.assign = make([]int32, n)
	for i := range j.assign {
		j.assign[i] = -1
	}
	j.fragChoice = make([]*views.Fragment, len(covers))
	j.pins = make([][]selection.Pin, len(covers))
	for i, c := range covers {
		for qn := c.X; qn != nil; qn = qn.Parent {
			j.keep[j.qIdx[qn]] = true
		}
		j.landAt[j.qIdx[c.X]] = append(j.landAt[j.qIdx[c.X]], i)
		j.pins[i] = c.Pins
	}
	for qn := covers[deltaIdx].X; qn != nil; qn = qn.Parent {
		j.deltaPath[j.qIdx[qn]] = true
	}
	for i, qn := range j.qNodes {
		for _, c := range qn.Children {
			ci := j.qIdx[c]
			if j.keep[ci] {
				j.keptKids[i] = append(j.keptKids[i], ci)
			}
		}
	}
	return j
}

// embed reports whether the upper pattern embeds with the Δ landing node
// pinned to this fragment's anchor node.
func (j *joiner) embed(frag *views.Fragment, anchor int32) bool {
	j.deltaFrag = frag
	// chain[d] = depth-d ancestor of anchor; chain[0] is the document
	// root. Reuse the backing array.
	depth := j.vt.depth(anchor)
	if cap(j.chain) < depth+1 {
		j.chain = make([]int32, depth+1)
	}
	j.chain = j.chain[:depth+1]
	for v := anchor; v >= 0; v = j.vt.nodes[v].parent {
		j.chain[j.vt.depth(v)] = v
	}
	for i := range j.assign {
		j.assign[i] = -1
	}
	for i := range j.fragChoice {
		j.fragChoice[i] = nil
	}
	// The query root is on the Δ-path, so it maps onto the anchor chain:
	// a '/'-rooted query at chain[0], a '//'-rooted one anywhere on it.
	rootIdx := j.qIdx[j.q.Root]
	if !j.keep[rootIdx] {
		return false
	}
	if j.q.Root.Axis == pattern.Child {
		return j.try(rootIdx, j.chain[0])
	}
	for _, v := range j.chain {
		if j.try(rootIdx, v) {
			return true
		}
	}
	return false
}

// pinsOK validates every pin of view vi whose target is already assigned
// against the candidate fragment.
func (j *joiner) pinsOK(vi int, frag *views.Fragment) bool {
	for _, p := range j.pins[vi] {
		w := j.assign[j.qIdx[p.Y]]
		if w < 0 {
			continue // ancestors are always assigned before descendants
		}
		wc := j.vt.nodes[w].code
		want := len(frag.Code) - p.K
		if want < 1 || len(wc) != want || !isPrefixCode(wc, frag.Code) {
			return false
		}
	}
	return true
}

func isPrefixCode(w, c []uint32) bool {
	if len(w) > len(c) {
		return false
	}
	for i := range w {
		if w[i] != c[i] {
			return false
		}
	}
	return true
}

// try assigns query node qi to arena node at and recursively places its
// kept children; on failure all assignments made beneath are rolled back.
func (j *joiner) try(qi int, at int32) bool {
	if j.err != nil {
		return false
	}
	if j.err = j.b.Step(1); j.err != nil {
		return false
	}
	qn := j.qNodes[qi]
	if qn.Label != pattern.Wildcard && qn.Label != j.vt.nodes[at].label {
		return false
	}
	j.assign[qi] = at
	var chosen int // count of fragChoice entries set here
	fail := func() bool {
		for _, vi := range j.landAt[qi][:chosen] {
			j.fragChoice[vi] = nil
		}
		j.assign[qi] = -1
		return false
	}
	for _, vi := range j.landAt[qi] {
		var pick *views.Fragment
		j.vt.fragsAt(at, vi, func(f *views.Fragment) bool {
			if vi == j.deltaIdx && f != j.deltaFrag {
				return true
			}
			if j.pinsOK(vi, f) {
				pick = f
				return false
			}
			return true
		})
		if pick == nil {
			return fail()
		}
		j.fragChoice[vi] = pick
		chosen++
	}
	if !j.placeKids(qi, at, 0) {
		return fail()
	}
	return true
}

// placeKids places the kept children of qi starting from index k.
func (j *joiner) placeKids(qi int, at int32, k int) bool {
	kids := j.keptKids[qi]
	if k == len(kids) {
		return true
	}
	ci := kids[k]
	c := j.qNodes[ci]
	place := func(v int32) bool {
		if !j.try(ci, v) {
			return false
		}
		if j.placeKids(qi, at, k+1) {
			return true
		}
		j.unassign(ci)
		return false
	}
	if j.deltaPath[ci] {
		// c maps onto the anchor chain only; its parent must itself sit
		// on the chain.
		d := j.vt.depth(at)
		if d >= len(j.chain) || j.chain[d] != at {
			return false
		}
		if c.Axis == pattern.Child {
			return d+1 < len(j.chain) && place(j.chain[d+1])
		}
		for dd := d + 1; dd < len(j.chain); dd++ {
			if place(j.chain[dd]) {
				return true
			}
		}
		return false
	}
	if c.Axis == pattern.Child {
		for v := j.vt.nodes[at].firstChild; v >= 0; v = j.vt.nodes[v].nextSib {
			if place(v) {
				return true
			}
		}
		return false
	}
	var desc func(v int32) bool
	desc = func(v int32) bool {
		for ch := j.vt.nodes[v].firstChild; ch >= 0; ch = j.vt.nodes[ch].nextSib {
			if place(ch) || desc(ch) {
				return true
			}
		}
		return false
	}
	return desc(at)
}

// unassign rolls back the subtree assignment rooted at query node qi.
func (j *joiner) unassign(qi int) {
	if !j.keep[qi] {
		return
	}
	j.assign[qi] = -1
	for _, vi := range j.landAt[qi] {
		j.fragChoice[vi] = nil
	}
	for _, ci := range j.keptKids[qi] {
		j.unassign(ci)
	}
}
