package rewrite

import (
	"fmt"

	"xpathviews/internal/dewey"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
)

// ExecuteNaive is the ablation baseline for the holistic join: instead of
// one merged scan into a prefix trie, it enumerates the full cross
// product of refined fragment tuples and re-checks the upper pattern per
// tuple. Semantically identical to Execute; asymptotically worse in the
// number of views (the paper's motivation for a holistic algorithm).
func ExecuteNaive(q *pattern.Pattern, sel *selection.Selection, fst *dewey.FST) (*Result, error) {
	if len(sel.Covers) == 0 {
		return nil, fmt.Errorf("rewrite: empty selection")
	}
	if !selection.Answerable(q, sel.Covers) {
		return nil, selection.ErrNotAnswerable
	}
	covers := sel.Covers
	jp, err := PlanJoin(q, covers)
	if err != nil {
		return nil, err
	}
	deltaIdx := jp.deltaIdx
	res := &Result{}

	refined := make([]refinedView, len(covers))
	defer releaseRefined(refined)
	for i, c := range covers {
		if err := refineView(q, c, fst, &refined[i], nil, nil); err != nil {
			return nil, err
		}
		res.FragmentsScanned += refined[i].scanned
		if len(refined[i].frags) == 0 {
			return res, nil
		}
	}

	var joined []*views.Fragment
	tuple := make([]int, len(covers))
	seen := make(map[string]bool)
	var rec func(i int)
	rec = func(i int) {
		if i == len(covers) {
			if tupleJoins(jp, refined, tuple, fst) {
				f := refined[deltaIdx].frags[tuple[deltaIdx]]
				key := f.Code.String()
				if !seen[key] {
					seen[key] = true
					joined = append(joined, f)
				}
			}
			return
		}
		for fi := range refined[i].frags {
			tuple[i] = fi
			rec(i + 1)
		}
	}
	rec(0)
	res.FragmentsJoined = len(joined)
	if err := extract(q, covers[deltaIdx], joined, res, nil, 1); err != nil {
		return nil, err
	}
	return res, nil
}

// tupleJoins re-checks one concrete fragment tuple by building a tiny
// virtual tree from just these codes and matching the upper pattern.
func tupleJoins(jp *JoinPlan, refined []refinedView, tuple []int, fst *dewey.FST) bool {
	mini := make([]refinedView, len(tuple))
	for i, fi := range tuple {
		mini[i] = refinedView{
			frags:  []*views.Fragment{refined[i].frags[fi]},
			labels: [][]string{refined[i].labels[fi]},
		}
	}
	vt, anchors, _ := buildVirtual(fst, mini)
	joined, err := joinUpper(jp, mini, vt, anchors, nil)
	putVtree(vt)
	return err == nil && len(joined) > 0
}
