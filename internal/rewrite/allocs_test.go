package rewrite

import (
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/xpath"
)

// TestRewriteSteadyStateAllocs is the allocation regression guard for
// the rewrite hot path. With the join skeleton precomputed and every
// pool warm, one sequential rewrite of the paper's running example sits
// at ~26 heap allocations (Result, answer slice, compensating-pattern
// bits). The bound leaves a little headroom for GC-timed pool evictions
// but fails if per-answer work creeps back in — the old extract dedup
// alone cost one Code.String() key per answer plus a map, and the old
// joiner allocated a closure per backtracking probe.
func TestRewriteSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector distorts allocation counts")
	}
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	reg.Add(xpath.MustParse(paperdata.ViewV1), 0)
	reg.Add(xpath.MustParse(paperdata.ViewV2), 0)
	q := xpath.MustParse(paperdata.QueryE)
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := PlanJoin(q, sel.Covers)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := ExecuteOptions(q, sel, enc.FST(), nil, Options{MaxWorkers: 1, Plan: jp}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		run() // warm vtPool, joinerPool, refineScratchPool
	}
	if allocs := testing.AllocsPerRun(200, run); allocs > 32 {
		t.Fatalf("steady-state rewrite allocates %.1f objects/op, want <= 32 "+
			"(per-answer dedup keys or per-probe closures have crept back in)", allocs)
	}
}
