package rewrite

import (
	"sort"

	"xpathviews/internal/budget"
	"xpathviews/internal/dewey"
	"xpathviews/internal/faults"
	"xpathviews/internal/pattern"
	"xpathviews/internal/views"
)

// fpContained is the chaos-test fault point for contained rewriting.
var fpContained = faults.New("rewrite.contained")

// This file implements the second of §VII's planned extensions: "maximal
// rewriting using multiple views in data integration scenario". When no
// equivalent rewriting exists, a *contained* rewriting returns a sound
// subset of the query's answers — every reported node is a true answer,
// but some answers may be missing. This is the classic fallback when
// views, not base data, are all that is accessible.
//
// A view V contributes its fragments when a homomorphism from Q into V
// maps RET(Q) onto RET(V) (respecting root axes): V's pattern is then at
// least as restrictive as Q around the same answer position, so every
// materialized answer of V satisfies Q. The result is the union over all
// such views — maximal for this single-view certification rule.

// Contained computes a contained rewriting of q over the given views.
// The result's answers are always a subset of q's true answers; Complete
// reports whether some view certified equivalence (V ≡ Q at the answer
// position in both directions), in which case the subset is exact.
type ContainedResult struct {
	Answers []Answer
	// ViewsUsed lists contributing view IDs.
	ViewsUsed []int
	// Complete reports that the union is known to be the full answer set.
	Complete bool
}

// Contained runs the contained rewriting. fst is unused today but kept
// for symmetry with Execute (future per-fragment refinement of contained
// answers would need it).
func Contained(q *pattern.Pattern, all []*views.View, fst *dewey.FST) *ContainedResult {
	res, err := ContainedBudget(q, all, fst, nil)
	if err != nil {
		// Only an armed fault point can fail an unbudgeted run; degrade to
		// an empty (still sound) result for legacy callers.
		return &ContainedResult{}
	}
	return res
}

// ContainedBudget is Contained under a cancellation/step budget: each
// candidate view charges one homomorphism check, each contributed
// fragment one step. On error the partial result is discarded.
func ContainedBudget(q *pattern.Pattern, all []*views.View, fst *dewey.FST, b *budget.B) (*ContainedResult, error) {
	if err := fpContained.Fire(); err != nil {
		return nil, err
	}
	res := &ContainedResult{}
	seen := make(map[string]bool)
	for _, v := range all {
		if v == nil || v.IsEmpty() {
			continue
		}
		if err := b.Hom(); err != nil {
			return nil, err
		}
		if !answersContained(q, v.Pattern) {
			continue
		}
		res.ViewsUsed = append(res.ViewsUsed, v.ID)
		if !res.Complete && answersContained(v.Pattern, q) {
			// Mutual containment at the answer position: V's answers are
			// exactly Q's.
			res.Complete = true
		}
		for fi := range v.Fragments {
			f := &v.Fragments[fi]
			if err := b.Step(1); err != nil {
				return nil, err
			}
			key := f.Code.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			res.Answers = append(res.Answers, Answer{Code: f.Code, Node: f.Tree.Root()})
		}
	}
	sort.Slice(res.Answers, func(i, j int) bool {
		return dewey.Compare(res.Answers[i].Code, res.Answers[j].Code) < 0
	})
	return res, nil
}

// answersContained reports that every answer of inner is an answer of
// outer: a homomorphism from outer into inner mapping RET(outer) onto
// RET(inner). (Sound; incomplete in the usual homomorphism corners.)
func answersContained(outer, inner *pattern.Pattern) bool {
	h := pattern.NewHom(outer, inner)
	for _, m := range h.SpineMappings() {
		if m.Ret() == inner.Ret {
			return true
		}
	}
	return false
}
