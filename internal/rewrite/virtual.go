package rewrite

import (
	"sort"
	"sync"
	"sync/atomic"

	"xpathviews/internal/budget"
	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
)

// The virtual tree is the prefix-closed trie of the participating
// fragment roots' extended Dewey codes. Labels come from FST decoding —
// never from base data. It is stored as an index-linked arena: one slab
// of nodes, no per-node allocations, built in a single merge scan of the
// per-view code streams (which materialization keeps sorted). This is
// the paper's "holistic join ... requires only one scan of all roots of
// fragments and runs in linear time" (§V).
type vtree struct {
	nodes []vnode
	// fragEntries is the slab backing each node's fragment list.
	fragEntries []fragEntry

	// Build scratch, recycled with the arena through vtPool so a
	// steady-state buildVirtual allocates nothing: the rightmost-path
	// stack, the per-level last-child index, the merge's stream cursors
	// and loser tree, and the slab backing the returned anchor slices.
	stack       []int32
	lastChild   []int32
	heads       []int32
	loser       []int32
	anchorSlab  []int32
	anchorViews [][]int32
}

type vnode struct {
	code  dewey.Code // shares the owning fragment's backing array
	label string
	// arena links; -1 means none.
	parent, firstChild, nextSib int32
	// fragHead indexes fragEntries, -1 when no fragment roots here.
	fragHead int32
}

type fragEntry struct {
	view int32
	frag *views.Fragment
	next int32
}

func (t *vtree) depth(v int32) int { return len(t.nodes[v].code) - 1 }

// Fragment lists are walked inline by the joiner (joiner.pickFrag): a
// yield-callback iterator here would cost one closure allocation per
// candidate probe on the join's hottest loop.

// vtPool recycles arenas across queries: the backing slabs keep their
// grown capacity, so steady-state joins allocate almost nothing.
var vtPool = sync.Pool{New: func() any { return &vtree{} }}

func putVtree(t *vtree) {
	// Drop references so pooled arenas don't pin fragments or codes.
	for i := range t.nodes {
		t.nodes[i].code = nil
		t.nodes[i].label = ""
	}
	for i := range t.fragEntries {
		t.fragEntries[i].frag = nil
	}
	t.nodes = t.nodes[:0]
	t.fragEntries = t.fragEntries[:0]
	t.anchorViews = t.anchorViews[:0]
	vtPool.Put(t)
}

// codeMerger is the loser-tree k-way merge over the per-view sorted
// fragment-code streams. The classic linear scan picks each pop by
// comparing all k stream heads; the loser tree replays only the ⌈log₂k⌉
// matches along the popped leaf's path, and the galloping fast path in
// buildVirtual skips even that while one stream's run of codes stays
// below every other head — the common shape when one view dominates a
// document region. Comparisons are dewey.Compare on the raw code arrays
// shared with the fragments; decoded label-paths are never consulted.
//
// Layout: streams are leaves k..2k-1 of an implicit tournament tree,
// internal nodes 1..k-1 each hold the losing stream of their match, and
// the overall winner is kept aside. Works for any k ≥ 1 (k = 1 has no
// internal nodes and the single stream just drains).
type codeMerger struct {
	refined []refinedView
	heads   []int32 // per-stream cursor into refined[i].frags
	loser   []int32 // internal nodes 1..k-1; index 0 unused
	k       int32
}

// exhausted reports stream a has no codes left.
func (m *codeMerger) exhausted(a int32) bool {
	return int(m.heads[a]) >= len(m.refined[a].frags)
}

// less orders streams by current head code, exhausted streams last,
// ties by stream index (keeps the emit order of the old linear scan).
func (m *codeMerger) less(a, b int32) bool {
	if m.exhausted(a) {
		return false
	}
	if m.exhausted(b) {
		return true
	}
	c := dewey.Compare(m.refined[a].frags[m.heads[a]].Code, m.refined[b].frags[m.heads[b]].Code)
	return c < 0 || (c == 0 && a < b)
}

// build runs the initial tournament and returns the winning stream.
func (m *codeMerger) build() int32 {
	if m.k == 1 {
		return 0
	}
	var play func(j int32) int32
	play = func(j int32) int32 {
		if j >= m.k {
			return j - m.k // leaf: stream index
		}
		w, l := play(2*j), play(2*j+1)
		if m.less(l, w) {
			w, l = l, w
		}
		m.loser[j] = l
		return w
	}
	return play(1)
}

// replay re-runs the matches along stream w's leaf path after its head
// advanced, returning the new overall winner (-1 when all streams are
// exhausted).
func (m *codeMerger) replay(w int32) int32 {
	cur := w
	for j := (w + m.k) / 2; j >= 1; j /= 2 {
		if m.less(m.loser[j], cur) {
			m.loser[j], cur = cur, m.loser[j]
		}
	}
	if m.exhausted(cur) {
		return -1
	}
	return cur
}

// challenger returns the best stream other than winner w — the min over
// the losers on w's path, which cover every other leaf — or -1 when
// there is none (k = 1). Exhausted challengers are fine: less() against
// them lets the gallop drain w to its end.
func (m *codeMerger) challenger(w int32) int32 {
	ch := int32(-1)
	for j := (w + m.k) / 2; j >= 1; j /= 2 {
		if l := m.loser[j]; ch < 0 || m.less(l, ch) {
			ch = l
		}
	}
	return ch
}

// grow returns s resized to length n, reallocating only past capacity.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// buildVirtual merges the sorted fragment-code streams of all views into
// the virtual tree in one scan; shared prefixes collapse. It returns the
// tree, per view the arena index each fragment landed on, and the number
// of gallop hits — emits taken by the inner fast-path loop without a
// loser-tree replay (the kernel's skew exploitation, exported as a
// metric). Callers must release the tree with putVtree once the join is
// done; the anchor slices are backed by the tree's pooled slab and die
// with it.
func buildVirtual(fst *dewey.FST, refined []refinedView) (*vtree, [][]int32, int64) {
	total := 0
	for vi := range refined {
		total += len(refined[vi].frags)
	}
	t := vtPool.Get().(*vtree)
	if cap(t.nodes) == 0 {
		t.nodes = make([]vnode, 0, total*2+8)
		t.fragEntries = make([]fragEntry, 0, total)
	}
	t.nodes = append(t.nodes, vnode{code: dewey.Code{0}, label: fst.RootLabel(), parent: -1, firstChild: -1, nextSib: -1, fragHead: -1})

	// Anchor slices carved out of one pooled slab.
	t.anchorSlab = growI32(t.anchorSlab, total)
	anchors := t.anchorViews[:0]
	off := 0
	for vi := range refined {
		n := len(refined[vi].frags)
		anchors = append(anchors, t.anchorSlab[off:off+n:off+n])
		off += n
	}
	t.anchorViews = anchors

	k := len(refined)
	m := codeMerger{refined: refined, heads: growI32(t.heads, k), loser: growI32(t.loser, k), k: int32(k)}
	for i := range m.heads {
		m.heads[i] = 0
	}
	t.heads, t.loser = m.heads, m.loser

	// stack holds the rightmost path (arena indices); stack[d] is the
	// node whose code is prev[:d+1], so after each insert len(stack) ==
	// len(prev). lastChild per stack position appends siblings in O(1).
	stack := t.stack[:0]
	stack = append(stack, 0)
	lastChild := t.lastChild[:0]
	lastChild = append(lastChild, -1)
	prev := t.nodes[0].code

	var gallop int64
	w := m.build()
	if m.exhausted(w) {
		w = -1
	}
	for w >= 0 {
		// Gallop: while stream w's run stays strictly below the best
		// other head, emit without replaying the tree.
		ch := m.challenger(w)
		for {
			fi := m.heads[w]
			m.heads[w]++
			frag := m.refined[w].frags[fi]
			labels := m.refined[w].labels[fi]
			code := frag.Code

			// Pop to the longest stack prefix of code. The stack mirrors
			// prev's path, so that prefix has exactly commonPrefixLen
			// components — one O(min depth) scan instead of repeated
			// IsPrefix checks per popped level.
			if n := dewey.CommonPrefixLen(prev, code); n < len(stack) {
				stack = stack[:n]
				lastChild = lastChild[:n]
			}
			top := stack[len(stack)-1]
			for d := len(stack); d < len(code); d++ {
				idx := int32(len(t.nodes))
				t.nodes = append(t.nodes, vnode{
					code: code[:d+1], label: labels[d],
					parent: top, firstChild: -1, nextSib: -1, fragHead: -1,
				})
				if lastChild[len(lastChild)-1] < 0 {
					t.nodes[top].firstChild = idx
				} else {
					t.nodes[lastChild[len(lastChild)-1]].nextSib = idx
				}
				lastChild[len(lastChild)-1] = idx
				stack = append(stack, idx)
				lastChild = append(lastChild, -1)
				top = idx
			}
			e := int32(len(t.fragEntries))
			t.fragEntries = append(t.fragEntries, fragEntry{view: int32(w), frag: frag, next: t.nodes[top].fragHead})
			t.nodes[top].fragHead = e
			anchors[w][fi] = top
			prev = code

			if m.exhausted(w) || (ch >= 0 && !m.less(w, ch)) {
				break
			}
			gallop++
		}
		w = m.replay(w)
	}
	t.stack, t.lastChild = stack, lastChild
	return t, anchors, gallop
}

// extract runs the answer-extraction compensating query on the Δ-view's
// joined fragments (§V's final step) and appends results, charging one
// budget step per fragment. With workers > 1 the per-fragment
// compensating queries run on a worker pool; per-fragment answer lists
// are merged in fragment order, so the deduplicated, sorted result is
// identical to the sequential path's.
func extract(q *pattern.Pattern, dc *selection.Cover, frags []*views.Fragment, res *Result, b *budget.B, workers int) error {
	if err := fpExtract.Fire(); err != nil {
		return err
	}
	comp := compensating(q, dc.X)
	if dc.X == q.Ret && len(comp.Root.Children) == 0 && len(comp.Root.Attrs) == 0 {
		// The view's answers are the query's answers: no compensating
		// work inside fragments. Fragment roots are distinct by
		// construction, so no dedup pass is needed either.
		if err := b.Step(len(frags)); err != nil {
			return err
		}
		for _, f := range frags {
			res.Answers = append(res.Answers, Answer{Code: f.Code, Node: f.Tree.Root()})
		}
		sortAnswers(res)
		return nil
	}
	if workers > 1 && len(frags) >= minParallelFrags {
		if err := extractParallel(comp, frags, res, b, workers); err != nil {
			return err
		}
	} else {
		for _, f := range frags {
			if err := b.Step(1); err != nil {
				return err
			}
			appendFragAnswers(comp, f, &res.Answers)
		}
	}
	// Answers are appended in fragment order; the stable sort keeps that
	// order among equal codes, so dropping adjacent duplicates keeps the
	// first-seen Answer — the same survivor the old map-based dedup kept,
	// without a Code.String() key allocation per answer.
	sortAnswers(res)
	dedupAnswers(res)
	return nil
}

// minParallelFrags is the fragment count below which fan-out overhead
// (goroutines, per-slot slices) outweighs the per-fragment match work.
const minParallelFrags = 4

// appendFragAnswers runs the compensating query on one fragment and
// appends its (not yet deduplicated) answers.
func appendFragAnswers(comp *pattern.Pattern, f *views.Fragment, out *[]Answer) {
	answers := engine.AnswersAtRoot(f.Tree, comp)
	for _, a := range answers {
		ord := f.Tree.Ord(a)
		var code dewey.Code
		if ord < len(f.NodeCodes) {
			code = f.NodeCodes[ord]
		}
		*out = append(*out, Answer{Code: code, Node: a})
	}
}

// extractParallel fans the per-fragment compensating queries out over a
// worker pool. Workers fill their own fragment's slot; the merge walks
// slots in fragment order, so the caller's stable sort + adjacent dedup
// sees the same sequence the sequential loop builds.
func extractParallel(comp *pattern.Pattern, frags []*views.Fragment, res *Result, b *budget.B, workers int) error {
	slots := make([][]Answer, len(frags))
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		stop    atomic.Bool
		errSlot atomic.Pointer[error]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(frags) || stop.Load() {
					return
				}
				if err := b.Step(1); err != nil {
					p := new(error)
					*p = err
					errSlot.CompareAndSwap(nil, p)
					stop.Store(true)
					return
				}
				appendFragAnswers(comp, frags[i], &slots[i])
			}
		}()
	}
	wg.Wait()
	if p := errSlot.Load(); p != nil {
		return *p
	}
	for _, slot := range slots {
		res.Answers = append(res.Answers, slot...)
	}
	return nil
}

// sortAnswers orders answers in document order. The sort is stable so
// that among equal codes the fragment-order first answer stays first —
// dedupAnswers relies on that to pick the sequential path's survivor.
func sortAnswers(res *Result) {
	sort.SliceStable(res.Answers, func(i, j int) bool {
		return dewey.Compare(res.Answers[i].Code, res.Answers[j].Code) < 0
	})
}

// dedupAnswers drops adjacent equal-code answers from the sorted list.
// Overlapping Δ-fragments can extract the same base node more than once;
// since answers are sorted, duplicates are adjacent and the whole dedup
// is one compaction pass — no per-answer key strings, no map.
func dedupAnswers(res *Result) {
	a := res.Answers
	if len(a) < 2 {
		return
	}
	out := 1
	for i := 1; i < len(a); i++ {
		if dewey.Compare(a[i].Code, a[out-1].Code) == 0 {
			continue
		}
		a[out] = a[i]
		out++
	}
	// Zero the dropped tail so fragment nodes aren't pinned past reuse.
	for i := out; i < len(a); i++ {
		a[i] = Answer{}
	}
	res.Answers = a[:out]
}
