package rewrite

import (
	"sort"
	"sync"
	"sync/atomic"

	"xpathviews/internal/budget"
	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
)

// The virtual tree is the prefix-closed trie of the participating
// fragment roots' extended Dewey codes. Labels come from FST decoding —
// never from base data. It is stored as an index-linked arena: one slab
// of nodes, no per-node allocations, built in a single merge scan of the
// per-view code streams (which materialization keeps sorted). This is
// the paper's "holistic join ... requires only one scan of all roots of
// fragments and runs in linear time" (§V).
type vtree struct {
	nodes []vnode
	// fragEntries is the slab backing each node's fragment list.
	fragEntries []fragEntry
}

type vnode struct {
	code  dewey.Code // shares the owning fragment's backing array
	label string
	// arena links; -1 means none.
	parent, firstChild, nextSib int32
	// fragHead indexes fragEntries, -1 when no fragment roots here.
	fragHead int32
}

type fragEntry struct {
	view int32
	frag *views.Fragment
	next int32
}

func (t *vtree) depth(v int32) int { return len(t.nodes[v].code) - 1 }

// fragsAt iterates the fragments of view vi rooted at node v.
func (t *vtree) fragsAt(v int32, vi int, yield func(f *views.Fragment) bool) {
	for e := t.nodes[v].fragHead; e >= 0; e = t.fragEntries[e].next {
		fe := &t.fragEntries[e]
		if int(fe.view) == vi {
			if !yield(fe.frag) {
				return
			}
		}
	}
}

// vtPool recycles arenas across queries: the backing slabs keep their
// grown capacity, so steady-state joins allocate almost nothing.
var vtPool = sync.Pool{New: func() any { return &vtree{} }}

func putVtree(t *vtree) {
	// Drop references so pooled arenas don't pin fragments or codes.
	for i := range t.nodes {
		t.nodes[i].code = nil
		t.nodes[i].label = ""
	}
	for i := range t.fragEntries {
		t.fragEntries[i].frag = nil
	}
	t.nodes = t.nodes[:0]
	t.fragEntries = t.fragEntries[:0]
	vtPool.Put(t)
}

// buildVirtual merges the sorted fragment-code streams of all views into
// the virtual tree in one scan; shared prefixes collapse. It returns the
// tree and, per view, the arena index each fragment landed on. Callers
// must release the tree with putVtree once the join is done.
func buildVirtual(fst *dewey.FST, refined []refinedView) (*vtree, [][]int32) {
	total := 0
	for vi := range refined {
		total += len(refined[vi].frags)
	}
	t := vtPool.Get().(*vtree)
	if cap(t.nodes) == 0 {
		t.nodes = make([]vnode, 0, total*2+8)
		t.fragEntries = make([]fragEntry, 0, total)
	}
	t.nodes = append(t.nodes, vnode{code: dewey.Code{0}, label: fst.RootLabel(), parent: -1, firstChild: -1, nextSib: -1, fragHead: -1})

	anchors := make([][]int32, len(refined))
	heads := make([]int, len(refined))
	for vi := range refined {
		anchors[vi] = make([]int32, len(refined[vi].frags))
	}

	// stack holds the rightmost path (arena indices).
	stack := make([]int32, 1, 16)
	stack[0] = 0
	// lastChild per stack position to append siblings in O(1).
	lastChild := make([]int32, 1, 16)
	lastChild[0] = -1

	for {
		// k-way merge: pick the stream with the smallest head code.
		best := -1
		for vi := range refined {
			if heads[vi] >= len(refined[vi].frags) {
				continue
			}
			if best < 0 || dewey.Compare(refined[vi].frags[heads[vi]].Code, refined[best].frags[heads[best]].Code) < 0 {
				best = vi
			}
		}
		if best < 0 {
			break
		}
		fi := heads[best]
		heads[best]++
		frag := refined[best].frags[fi]
		labels := refined[best].labels[fi]
		code := frag.Code

		// pop to the longest stack prefix of code
		for len(stack) > 1 {
			top := stack[len(stack)-1]
			if dewey.IsPrefix(t.nodes[top].code, code) {
				break
			}
			stack = stack[:len(stack)-1]
			lastChild = lastChild[:len(lastChild)-1]
		}
		top := stack[len(stack)-1]
		for d := len(t.nodes[top].code); d < len(code); d++ {
			idx := int32(len(t.nodes))
			t.nodes = append(t.nodes, vnode{
				code: code[:d+1], label: labels[d],
				parent: top, firstChild: -1, nextSib: -1, fragHead: -1,
			})
			if lastChild[len(lastChild)-1] < 0 {
				t.nodes[top].firstChild = idx
			} else {
				t.nodes[lastChild[len(lastChild)-1]].nextSib = idx
			}
			lastChild[len(lastChild)-1] = idx
			stack = append(stack, idx)
			lastChild = append(lastChild, -1)
			top = idx
		}
		e := int32(len(t.fragEntries))
		t.fragEntries = append(t.fragEntries, fragEntry{view: int32(best), frag: frag, next: t.nodes[top].fragHead})
		t.nodes[top].fragHead = e
		anchors[best][fi] = top
	}
	return t, anchors
}

// extract runs the answer-extraction compensating query on the Δ-view's
// joined fragments (§V's final step) and appends results, charging one
// budget step per fragment. With workers > 1 the per-fragment
// compensating queries run on a worker pool; per-fragment answer lists
// are merged in fragment order, so the deduplicated, sorted result is
// identical to the sequential path's.
func extract(q *pattern.Pattern, dc *selection.Cover, frags []*views.Fragment, res *Result, b *budget.B, workers int) error {
	if err := fpExtract.Fire(); err != nil {
		return err
	}
	comp := compensating(q, dc.X)
	if dc.X == q.Ret && len(comp.Root.Children) == 0 && len(comp.Root.Attrs) == 0 {
		// The view's answers are the query's answers: no compensating
		// work inside fragments. Fragment roots are distinct by
		// construction, so no dedup pass is needed either.
		if err := b.Step(len(frags)); err != nil {
			return err
		}
		for _, f := range frags {
			res.Answers = append(res.Answers, Answer{Code: f.Code, Node: f.Tree.Root()})
		}
		sortAnswers(res)
		return nil
	}
	if workers > 1 && len(frags) >= minParallelFrags {
		if err := extractParallel(comp, frags, res, b, workers); err != nil {
			return err
		}
		sortAnswers(res)
		return nil
	}
	seen := make(map[string]bool)
	for _, f := range frags {
		if err := b.Step(1); err != nil {
			return err
		}
		appendFragAnswers(comp, f, &res.Answers, seen)
	}
	sortAnswers(res)
	return nil
}

// minParallelFrags is the fragment count below which fan-out overhead
// (goroutines, per-slot slices) outweighs the per-fragment match work.
const minParallelFrags = 4

// appendFragAnswers runs the compensating query on one fragment and
// appends its (not yet globally deduplicated) answers. seen, when
// non-nil, dedups across fragments as the sequential path does.
func appendFragAnswers(comp *pattern.Pattern, f *views.Fragment, out *[]Answer, seen map[string]bool) {
	answers := engine.AnswersAtRoot(f.Tree, comp)
	for _, a := range answers {
		ord := f.Tree.Ord(a)
		var code dewey.Code
		if ord < len(f.NodeCodes) {
			code = f.NodeCodes[ord]
		}
		if seen != nil {
			key := code.String()
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		*out = append(*out, Answer{Code: code, Node: a})
	}
}

// extractParallel fans the per-fragment compensating queries out over a
// worker pool. Workers fill their own fragment's slot; the merge walks
// slots in fragment order with the same dedup rule as the sequential
// loop, keeping the surviving Answer for a duplicated code identical.
func extractParallel(comp *pattern.Pattern, frags []*views.Fragment, res *Result, b *budget.B, workers int) error {
	slots := make([][]Answer, len(frags))
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		stop    atomic.Bool
		errSlot atomic.Pointer[error]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(frags) || stop.Load() {
					return
				}
				if err := b.Step(1); err != nil {
					p := new(error)
					*p = err
					errSlot.CompareAndSwap(nil, p)
					stop.Store(true)
					return
				}
				appendFragAnswers(comp, frags[i], &slots[i], nil)
			}
		}()
	}
	wg.Wait()
	if p := errSlot.Load(); p != nil {
		return *p
	}
	seen := make(map[string]bool)
	for _, slot := range slots {
		for _, a := range slot {
			key := a.Code.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			res.Answers = append(res.Answers, a)
		}
	}
	return nil
}

func sortAnswers(res *Result) {
	sort.Slice(res.Answers, func(i, j int) bool {
		return dewey.Compare(res.Answers[i].Code, res.Answers[j].Code) < 0
	})
}
