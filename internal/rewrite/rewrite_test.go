package rewrite_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/views"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

// TestExample51 replays §V's rewriting walk-through: answering
// Q_e = //s[f//i][t]/p from V1 = //s[t]/p and V2 = //s[p]/f on the book
// tree yields exactly {p3, p4, p5, p6, p7} — with p1, p2 filtered by the
// join (no common s parent with an f fragment) and p8 filtered too.
func TestExample51(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	v1, err := reg.Add(xpath.MustParse(paperdata.ViewV1), 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.Add(xpath.MustParse(paperdata.ViewV2), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's fragment sets: eight p's for V1, {f1,f2,f3} for V2.
	if len(v1.Fragments) != 8 {
		t.Fatalf("V1 has %d fragments, want 8", len(v1.Fragments))
	}
	if len(v2.Fragments) != 3 {
		t.Fatalf("V2 has %d fragments, want 3", len(v2.Fragments))
	}

	q := xpath.MustParse(paperdata.QueryE)
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Execute(q, sel, enc.FST())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"0.8.6.1":  true, // p3
		"0.5.1":    true, // p4
		"0.5.5":    true, // p5
		"0.5.10.1": true, // p6
		"0.5.10.5": true, // p7
	}
	if len(res.Answers) != len(want) {
		t.Fatalf("answers = %v, want 5 of %v", res.Codes(), want)
	}
	for _, a := range res.Answers {
		if !want[a.Code.String()] {
			t.Fatalf("unexpected answer %s (all: %v)", a.Code, res.Codes())
		}
	}
	// Ground truth must agree.
	direct := engine.Answers(tree, q)
	if len(direct) != len(res.Answers) {
		t.Fatalf("direct evaluation found %d answers, rewrite %d", len(direct), len(res.Answers))
	}
}

// TestNaiveJoinAgrees: the ablation baseline must produce identical
// results on the running example.
func TestNaiveJoinAgrees(t *testing.T) {
	tree := paperdata.BookTree()
	enc, _ := dewey.Encode(tree, paperdata.BookFST())
	reg := views.NewRegistry(tree, enc)
	reg.Add(xpath.MustParse(paperdata.ViewV1), 0)
	reg.Add(xpath.MustParse(paperdata.ViewV2), 0)
	q := xpath.MustParse(paperdata.QueryE)
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rewrite.Execute(q, sel, enc.FST())
	if err != nil {
		t.Fatal(err)
	}
	b, err := rewrite.ExecuteNaive(q, sel, enc.FST())
	if err != nil {
		t.Fatal(err)
	}
	if !sameCodes(a, b) {
		t.Fatalf("holistic %v vs naive %v", a.Codes(), b.Codes())
	}
}

func sameCodes(a, b *rewrite.Result) bool {
	ca, cb := a.Codes(), b.Codes()
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if dewey.Compare(ca[i], cb[i]) != 0 {
			return false
		}
	}
	return true
}

// TestSingleViewRewrite: a view equal to the query answers it exactly.
func TestSingleViewRewrite(t *testing.T) {
	tree := paperdata.BookTree()
	enc, _ := dewey.Encode(tree, paperdata.BookFST())
	reg := views.NewRegistry(tree, enc)
	reg.Add(xpath.MustParse("//s[t]//p"), 0)
	q := xpath.MustParse("//s[t]//p")
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Covers) != 1 || !sel.Covers[0].Strong {
		t.Fatalf("expected a single strong cover, got %+v", sel.Covers)
	}
	res, err := rewrite.Execute(q, sel, enc.FST())
	if err != nil {
		t.Fatal(err)
	}
	direct := engine.Answers(tree, q)
	if len(res.Answers) != len(direct) {
		t.Fatalf("rewrite %d answers, direct %d", len(res.Answers), len(direct))
	}
}

// TestEquivalence is the headline property: whenever a selection strategy
// declares a random query answerable by random materialized views, the
// rewritten result equals direct evaluation — on randomized documents.
func TestEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	labels := []string{"a", "b", "c", "d", "e"}
	answerable, trials := 0, 0
	for doc := 0; doc < 12; doc++ {
		tree := randomTree(r, 60+r.Intn(120), labels)
		enc, fst, err := dewey.EncodeTree(tree)
		if err != nil {
			t.Fatal(err)
		}
		reg := views.NewRegistry(tree, enc)
		f := vfilter.New()
		for len(reg.ViewList) < 25 {
			vp := randomPattern(r, labels, 4)
			v, err := reg.Add(vp, 0)
			if err != nil {
				continue
			}
			f.AddView(v.ID, v.Pattern)
		}
		for qi := 0; qi < 30; qi++ {
			q := pattern.Minimize(randomPattern(r, labels, 5))
			direct := engine.Answers(tree, q)
			res := f.Filtering(q)
			trials++

			var cands []*views.View
			for _, id := range res.Candidates {
				cands = append(cands, reg.Get(id))
			}
			for name, sel := range map[string]*selection.Selection{
				"minimum":   trySel(func() (*selection.Selection, error) { return selection.Minimum(q, cands) }),
				"heuristic": trySel(func() (*selection.Selection, error) { return selection.Heuristic(q, res, reg) }),
			} {
				if sel == nil {
					continue
				}
				answerable++
				out, err := rewrite.Execute(q, sel, fst)
				if err != nil {
					t.Fatalf("%s rewrite of %s failed: %v", name, q, err)
				}
				if !codesMatch(t, enc, direct, out) {
					t.Fatalf("%s: query %s via %d views: rewrite %v != direct %v",
						name, q, len(sel.Covers), out.Codes(), codesOf(enc, direct))
				}
				// The naive join must agree as well.
				nv, err := rewrite.ExecuteNaive(q, sel, fst)
				if err != nil {
					t.Fatalf("naive rewrite: %v", err)
				}
				if !sameCodes(out, nv) {
					t.Fatalf("naive join disagrees on %s", q)
				}
			}
		}
	}
	if answerable < 20 {
		t.Fatalf("only %d answerable cases in %d trials; test too weak", answerable, trials)
	}
}

func trySel(f func() (*selection.Selection, error)) *selection.Selection {
	s, err := f()
	if err != nil {
		return nil
	}
	return s
}

func codesOf(enc *dewey.Encoding, nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = enc.MustCode(n).String()
	}
	return out
}

func codesMatch(t *testing.T, enc *dewey.Encoding, direct []*xmltree.Node, res *rewrite.Result) bool {
	t.Helper()
	want := map[string]bool{}
	for _, n := range direct {
		want[enc.MustCode(n).String()] = true
	}
	if len(res.Answers) != len(want) {
		return false
	}
	for _, a := range res.Answers {
		if !want[a.Code.String()] {
			return false
		}
	}
	return true
}

func randomTree(r *rand.Rand, n int, labels []string) *xmltree.Tree {
	t := xmltree.New(labels[0])
	nodes := []*xmltree.Node{t.Root()}
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		c := t.AddChild(parent, labels[r.Intn(len(labels))])
		nodes = append(nodes, c)
	}
	t.Renumber()
	return t
}

func randomPattern(r *rand.Rand, labels []string, maxNodes int) *pattern.Pattern {
	root := pattern.NewNode(labels[r.Intn(len(labels))], pattern.Descendant)
	nodes := []*pattern.Node{root}
	n := 1 + r.Intn(maxNodes)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		lb := labels[r.Intn(len(labels))]
		if r.Intn(7) == 0 {
			lb = pattern.Wildcard
		}
		nodes = append(nodes, parent.AddChild(lb, pattern.Axis(r.Intn(2))))
	}
	return &pattern.Pattern{Root: root, Ret: nodes[r.Intn(len(nodes))]}
}
