// Package rewrite implements §V: equivalent query rewriting over the
// materialized fragments of a selected view set, without touching base
// data. The pipeline is
//
//  1. refinement — each selected view's fragments are filtered by a
//     compensating pattern (the query's subtree at the node the view's
//     answers land on), "pushing selection" before the join;
//  2. root-path filtering — a fragment participates only when its
//     extended-Dewey-decoded label-path matches the query's root-to-
//     landing-node path pattern;
//  3. holistic join — fragment roots of all views are merged (one scan
//     of the sorted code streams) into a prefix trie, the virtual tree;
//     the query's upper pattern is matched on it with the views' answer
//     positions pinned to fragment roots and the selection's rigid
//     anchors (Pin) enforced;
//  4. extraction — for every Δ-view fragment that joins, the
//     compensating answer pattern extracts RET(Q) inside the fragment.
package rewrite

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xpathviews/internal/budget"
	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/faults"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/xmltree"
)

// Fault points at the rewriting stage boundaries (chaos tests).
var (
	fpRefine  = faults.New("rewrite.refine")
	fpJoin    = faults.New("rewrite.join")
	fpExtract = faults.New("rewrite.extract")
)

// AttrMaxViews caps the per-cover attribution arrays in Result: fixed
// size so attribution adds no allocation to the hot path.
const AttrMaxViews = 8

// Answer is one query result produced from view fragments only.
type Answer struct {
	// Code is the answer node's extended Dewey code in the base document.
	Code dewey.Code
	// Node is the answer node inside the owning fragment's copy.
	Node *xmltree.Node
}

// Result is the outcome of rewriting.
type Result struct {
	Answers []Answer
	// Stats for benchmarking/ablation.
	FragmentsScanned int
	FragmentsJoined  int
	// Per-stage wall time. Refine covers stages 1+2 and Extract stage 4;
	// Join covers stage 3 — the virtual-tree merge build plus the
	// per-fragment embeds. JoinBuildNanos isolates the build, the join's
	// only inherently sequential part: BENCH_serving.json derives the
	// join's parallelizable fraction from JoinNanos-JoinBuildNanos.
	RefineNanos    int64
	JoinNanos      int64
	JoinBuildNanos int64
	ExtractNanos   int64
	// RefineWorkers, JoinWorkers and ExtractWorkers are the worker-pool
	// sizes the parallel stages actually ran with (1 = sequential), for
	// the telemetry span's worker-count attributes.
	RefineWorkers  int
	JoinWorkers    int
	ExtractWorkers int

	// Per-cover refinement accounting for view attribution, indexed by
	// cover position in the selection (the serving layer maps positions
	// to view IDs). Fixed-size arrays keep the hot path allocation-free;
	// selections wider than AttrMaxViews report only the first
	// AttrMaxViews covers' volumes (view selection minimizes join width,
	// so real selections are far narrower).
	ViewScanned [AttrMaxViews]int32
	ViewKept    [AttrMaxViews]int32

	// Join-kernel internals (stage 3): JoinPartitions is the prefix-
	// partition fan-out the parallel kernel scheduled (1 when the join
	// ran sequentially, 0 when no join stage ran — the strong single-
	// cover fast path); GallopHits counts loser-tree merge emits that
	// rode the galloping fast path (consecutive pops from one stream
	// without a tree replay).
	JoinPartitions int
	GallopHits     int64

	// codes memoizes Codes(): the pipeline sorts answers once at
	// construction (sortAnswers), so repeated calls should not re-sort or
	// re-allocate. Not synchronized — a Result belongs to one query.
	codes []dewey.Code
}

// Codes returns the answers' codes, sorted in document order. The slice
// is computed once and cached; callers must not modify it.
func (r *Result) Codes() []dewey.Code {
	if r.codes == nil {
		out := make([]dewey.Code, len(r.Answers))
		for i, a := range r.Answers {
			out[i] = a.Code
		}
		// Answers are sorted at construction by sortAnswers; sorting the
		// extracted codes is a no-op pass then, but keeps Codes correct
		// for hand-built Results too.
		if !sort.SliceIsSorted(out, func(i, j int) bool { return dewey.Compare(out[i], out[j]) < 0 }) {
			sort.Slice(out, func(i, j int) bool { return dewey.Compare(out[i], out[j]) < 0 })
		}
		r.codes = out
	}
	return r.codes
}

// Execute answers q from the selected covers' materialized fragments.
// fst must be the document's FST (shipped with the view store; not base
// data). The selection must be answerable — callers obtain it from
// selection.Minimum or selection.Heuristic.
func Execute(q *pattern.Pattern, sel *selection.Selection, fst *dewey.FST) (*Result, error) {
	return ExecuteBudget(q, sel, fst, nil)
}

// ExecuteBudget is Execute under a cancellation/step budget: refinement
// charges one step per scanned fragment, the holistic join one step per
// embedding attempt, extraction one step per fragment. A nil budget
// never aborts on its own, but the stage fault points may.
func ExecuteBudget(q *pattern.Pattern, sel *selection.Selection, fst *dewey.FST, b *budget.B) (*Result, error) {
	return ExecuteOptions(q, sel, fst, b, Options{})
}

// ExecuteOptions is ExecuteBudget with explicit execution options: the
// per-view refinement of stage 1+2 and the per-fragment extraction of
// stage 4 fan out across a bounded worker pool (see Options.MaxWorkers),
// sharing the (atomically charged) budget. Results are identical to the
// sequential path — answers are merged in deterministic order and sorted
// by extended Dewey code either way.
func ExecuteOptions(q *pattern.Pattern, sel *selection.Selection, fst *dewey.FST, b *budget.B, opt Options) (*Result, error) {
	if len(sel.Covers) == 0 {
		return nil, fmt.Errorf("rewrite: empty selection")
	}
	if !selection.Answerable(q, sel.Covers) {
		return nil, selection.ErrNotAnswerable
	}
	covers := sel.Covers
	// The join skeleton (Δ-view choice, upper twig, resolved pins) is
	// data-independent; a caller holding a cached plan passes it through
	// Options and skips the rebuild. Identity with this call's pattern
	// and covers is the correctness condition — on mismatch, recompute.
	jp := opt.Plan
	if jp == nil || jp.q != q || len(jp.pins) != len(covers) {
		var err error
		if jp, err = PlanJoin(q, covers); err != nil {
			return nil, err
		}
	}
	deltaIdx := jp.deltaIdx
	res := &Result{}

	// Stage 1+2: refine fragments and filter by decoded root paths, one
	// worker per view; any view refining to zero fragments cancels the
	// others early (the query's answer is certainly empty).
	if err := fpRefine.Fire(); err != nil {
		return nil, err
	}
	refined := make([]refinedView, len(covers))
	defer releaseRefined(refined)
	refWorkers := opt.workersFor(len(covers))
	if sel.TotalFragments() < minParallelFrags {
		refWorkers = 1 // too little scan work to pay for the fan-out
	}
	res.RefineWorkers = refWorkers
	stage := time.Now()
	empty, err := refineAll(q, covers, fst, refined, b, refWorkers)
	res.RefineNanos = int64(time.Since(stage))
	for i := range refined {
		res.FragmentsScanned += refined[i].scanned
		if i < AttrMaxViews {
			res.ViewScanned[i] = int32(refined[i].scanned)
			res.ViewKept[i] = int32(len(refined[i].frags))
		}
	}
	if err != nil {
		return nil, err
	}
	if empty {
		return res, nil // some view contributes nothing → empty result
	}

	// Seam check: refine → join/extract. Refinement polls the context only
	// every few hundred steps; a caller that disconnected during it must
	// not start the join.
	if err := b.CtxErr(); err != nil {
		return nil, err
	}

	// Fast path: a strong Δ-cover answers alone (condition 3, §IV-A).
	dc := covers[deltaIdx]
	if dc.Strong && len(covers) == 1 {
		stage = time.Now()
		res.ExtractWorkers = opt.workersFor(len(refined[deltaIdx].frags))
		err := extract(q, dc, refined[deltaIdx].frags, res, b, res.ExtractWorkers)
		res.ExtractNanos = int64(time.Since(stage))
		if err != nil {
			return nil, err
		}
		return res, nil
	}

	// Stage 3: holistic join on the virtual tree. The arena build is one
	// loser-tree merge scan; the per-fragment embeds are independent, so
	// with enough Δ-fragments to amortize the fan-out they run on a
	// worker pool over prefix partitions (joinParallel).
	if err := fpJoin.Fire(); err != nil {
		return nil, err
	}
	jw := 1
	if dfrags := len(refined[deltaIdx].frags); dfrags >= 2*joinParGrain {
		jw = opt.workersFor(dfrags / joinParGrain)
	}
	res.JoinWorkers = jw
	stage = time.Now()
	vt, anchors, gallop := buildVirtual(fst, refined)
	res.JoinBuildNanos = int64(time.Since(stage))
	res.GallopHits = gallop
	var joined []*views.Fragment
	if jw > 1 {
		var nparts int
		joined, nparts, err = joinParallel(jp, refined, vt, anchors, b, jw)
		res.JoinPartitions = nparts
	} else {
		joined, err = joinUpper(jp, refined, vt, anchors, b)
		res.JoinPartitions = 1
	}
	putVtree(vt)
	res.JoinNanos = int64(time.Since(stage))
	if err != nil {
		return nil, err
	}
	res.FragmentsJoined = len(joined)

	// Seam check: join → extract.
	if err := b.CtxErr(); err != nil {
		return nil, err
	}

	// Stage 4: extraction from the Δ-view's joined fragments.
	stage = time.Now()
	res.ExtractWorkers = opt.workersFor(len(joined))
	err = extract(q, dc, joined, res, b, res.ExtractWorkers)
	res.ExtractNanos = int64(time.Since(stage))
	if err != nil {
		return nil, err
	}
	return res, nil
}

// refinedView holds a view's surviving fragments and their decoded
// label-paths (decoded once, reused by the join).
type refinedView struct {
	frags  []*views.Fragment
	labels [][]string
	// scanned counts fragments this view's refinement looked at.
	scanned int
	// sc is the pooled scratch backing frags/labels/slab; released by
	// releaseRefined once the query is done with the refined sets.
	sc *refineScratch
}

// refineScratch is the pooled allocation unit of one view's refinement:
// the label slab plus the kept-fragment slices. Pooling these keeps the
// steady-state per-query allocation count flat, like putVtree does for
// the join arena.
type refineScratch struct {
	slab   []string
	frags  []*views.Fragment
	labels [][]string
}

var refineScratchPool = sync.Pool{New: func() any {
	poolNews.Add(1)
	return new(refineScratch)
}}

// poolGets/poolNews count refine-scratch pool traffic: a Get that did
// not hit the New func reused pooled scratch. Exposed via PoolStats for
// the metrics exposition.
var (
	poolGets atomic.Int64
	poolNews atomic.Int64
)

// PoolStats reports refine-scratch pool traffic since process start:
// total Gets and how many had to allocate fresh scratch. gets-news is
// the number of reuses.
func PoolStats() (gets, news int64) {
	return poolGets.Load(), poolNews.Load()
}

// releaseRefined returns every view's scratch to the pool, dropping
// fragment references so pooled scratch does not pin view data.
func releaseRefined(refined []refinedView) {
	for i := range refined {
		sc := refined[i].sc
		if sc == nil {
			continue
		}
		refined[i].sc = nil
		refined[i].frags = nil
		refined[i].labels = nil
		for j := range sc.frags {
			sc.frags[j] = nil
		}
		for j := range sc.labels {
			sc.labels[j] = nil
		}
		sc.frags = sc.frags[:0]
		sc.labels = sc.labels[:0]
		// Slab strings are FST-interned labels that live as long as the
		// system; retaining the backing array pins nothing extra.
		sc.slab = sc.slab[:0]
		refineScratchPool.Put(sc)
	}
}

// refineView applies the compensating pattern and the root-path filter to
// every fragment of one cover. stop, when non-nil, is a cooperative
// early-cancel flag checked per fragment (set by a sibling view that
// refined to zero fragments, making the join's result empty).
func refineView(q *pattern.Pattern, c *selection.Cover, fst *dewey.FST, out *refinedView, b *budget.B, stop *atomic.Bool) error {
	comp := compensating(q, c.X)
	// The root-path filter already certifies x's own label; when the
	// compensating pattern has no predicates below x, refinement is a
	// no-op.
	trivialComp := len(comp.Root.Children) == 0 && len(comp.Root.Attrs) == 0
	rootPath := rootToNodePath(q, c.X)
	// One label slab for all fragments of the view; kept label-paths are
	// sub-slices (when the slab grows, older backing arrays stay alive
	// through them, which is exactly what we want).
	poolGets.Add(1)
	sc := refineScratchPool.Get().(*refineScratch)
	out.sc = sc
	slab := sc.slab[:0]
	out.frags = sc.frags[:0]
	out.labels = sc.labels[:0]
	defer func() {
		// Grown slices flow back into the scratch so their capacity is
		// kept for the next query.
		sc.slab = slab
		sc.frags = out.frags
		sc.labels = out.labels
	}()
	for fi := range c.View.Fragments {
		f := &c.View.Fragments[fi]
		if stop != nil && stop.Load() {
			return nil
		}
		if err := b.Step(1); err != nil {
			return err
		}
		out.scanned++
		start := len(slab)
		var err error
		slab, err = fst.DecodeAppend(f.Code, slab)
		if err != nil {
			return fmt.Errorf("rewrite: decode %s: %w", f.Code, err)
		}
		labels := slab[start:len(slab):len(slab)]
		if !labelPathMatches(labels, rootPath) {
			slab = slab[:start]
			continue
		}
		if !trivialComp && !engine.MatchesAtRoot(f.Tree, comp) {
			slab = slab[:start]
			continue
		}
		out.frags = append(out.frags, f)
		out.labels = append(out.labels, labels)
	}
	return nil
}

// chooseDelta picks the Δ-view: prefer strong covers, then the deepest
// landing node (smallest extraction work), then larger covers.
func chooseDelta(covers []*selection.Cover) int {
	best := -1
	for i, c := range covers {
		if !c.Delta {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := covers[best]
		switch {
		case c.Strong != b.Strong:
			if c.Strong {
				best = i
			}
		case depthOf(c.X) != depthOf(b.X):
			if depthOf(c.X) > depthOf(b.X) {
				best = i
			}
		case c.Size() > b.Size():
			best = i
		}
	}
	return best
}

func depthOf(n *pattern.Node) int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// compensating builds the pattern applied to each fragment of a view
// landing on x: the query's subtree at x. The fragment root is pinned to
// x, so the root axis is irrelevant.
func compensating(q *pattern.Pattern, x *pattern.Node) *pattern.Pattern {
	return q.SubtreeAt(x)
}

// rootToNodePath is the path pattern from the query root down to x.
func rootToNodePath(q *pattern.Pattern, x *pattern.Node) pattern.Path {
	var rev []pattern.Step
	for n := x; n != nil; n = n.Parent {
		rev = append(rev, pattern.Step{Axis: n.Axis, Label: n.Label})
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return pattern.Path{Steps: rev}
}

// labelPathMatches reports whether a concrete root label-path satisfies a
// path pattern ending exactly at the path's last label — the classic
// O(|labels|·|steps|) DP over (step, position) pairs. Child steps consume
// the next label; descendant steps may skip any number of labels first.
func labelPathMatches(labels []string, p pattern.Path) bool {
	steps := p.Steps
	n, m := len(labels), len(steps)
	if m == 0 || n == 0 {
		return m == 0 && n == 0
	}
	// end[i] (current row j): steps[:j] matched, step j-1 exactly at
	// labels[i-1]. before[i]: ∃ i' < i with end-of-previous-row at i'.
	// Stack buffers keep the per-fragment hot path allocation-free.
	var prevBuf, curBuf [64]bool
	var prev, cur []bool
	if n < 64 {
		prev, cur = prevBuf[:n+1], curBuf[:n+1]
	} else {
		prev, cur = make([]bool, n+1), make([]bool, n+1)
	}
	for j := 1; j <= m; j++ {
		s := steps[j-1]
		anyBefore := false
		for i := 1; i <= n; i++ {
			if j > 1 && prev[i-1] {
				anyBefore = true
			}
			ok := s.Label == pattern.Wildcard || s.Label == labels[i-1]
			if ok {
				if s.Axis == pattern.Child {
					if j == 1 {
						ok = i == 1
					} else {
						ok = prev[i-1]
					}
				} else {
					if j == 1 {
						ok = true
					} else {
						ok = anyBefore
					}
				}
			}
			cur[i] = ok
		}
		prev, cur = cur, prev
		for i := range cur {
			cur[i] = false
		}
	}
	return prev[n]
}
