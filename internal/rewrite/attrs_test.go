package rewrite_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

// These tests exercise §V's "Handling comparison predicates": attribute
// predicates participate in homomorphisms only when syntactically equal,
// and are evaluated inside fragments (on the answer subtree) or
// guaranteed by the view — never on Dewey codes.

func attrDoc(t *testing.T) (*xmltree.Tree, *dewey.Encoding) {
	t.Helper()
	src := `<shop>
	  <item id="1" featured="yes"><name>a</name><price v="10"/></item>
	  <item id="2"><name>b</name><price v="90"/></item>
	  <item id="3" featured="yes"><name>c</name><price v="50"/></item>
	</shop>`
	tree, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	enc, _, err := dewey.EncodeTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	return tree, enc
}

// TestAttrInsideFragment: a query predicate on/below the answer node is
// checked by refinement inside fragments.
func TestAttrInsideFragment(t *testing.T) {
	tree, enc := attrDoc(t)
	reg := views.NewRegistry(tree, enc)
	v, err := reg.Add(xpath.MustParse("//shop/item"), 0)
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse("//shop/item[@featured]")
	c := selection.ComputeCover(v, q)
	if c == nil || !selection.Answerable(q, []*selection.Cover{c}) {
		t.Fatalf("cover = %v; item view must answer featured-item query", c)
	}
	res, err := rewrite.Execute(q, &selection.Selection{Covers: []*selection.Cover{c}}, enc.FST())
	if err != nil {
		t.Fatal(err)
	}
	direct := engine.Answers(tree, q)
	if len(res.Answers) != len(direct) || len(res.Answers) != 2 {
		t.Fatalf("rewrite %d answers, direct %d, want 2", len(res.Answers), len(direct))
	}
}

// TestAttrOnInternalNodeRequiresMirror: a query attribute on an internal
// root-path node is only usable when the view's spine carries the same
// predicate (the "exactly the same" rule).
func TestAttrOnInternalNodeRequiresMirror(t *testing.T) {
	tree, enc := attrDoc(t)
	reg := views.NewRegistry(tree, enc)
	plain, err := reg.Add(xpath.MustParse("//item/name"), 0)
	if err != nil {
		t.Fatal(err)
	}
	mirrored, err := reg.Add(xpath.MustParse("//item[@featured]/name"), 0)
	if err != nil {
		t.Fatal(err)
	}

	q := xpath.MustParse("//item[@featured]/name")
	// The plain view cannot certify @featured above its answers.
	cPlain := selection.ComputeCover(plain, q)
	if cPlain != nil && selection.Answerable(q, []*selection.Cover{cPlain}) {
		t.Fatalf("plain //item/name must not answer %s alone: %v", q, cPlain)
	}
	// The mirrored view can.
	cM := selection.ComputeCover(mirrored, q)
	if cM == nil || !selection.Answerable(q, []*selection.Cover{cM}) {
		t.Fatalf("mirrored view should answer: %v", cM)
	}
	res, err := rewrite.Execute(q, &selection.Selection{Covers: []*selection.Cover{cM}}, enc.FST())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
}

// TestAttrComparisonOperators end-to-end through a view.
func TestAttrComparisonOperators(t *testing.T) {
	tree, enc := attrDoc(t)
	reg := views.NewRegistry(tree, enc)
	v, err := reg.Add(xpath.MustParse("//shop/item"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		q    string
		want int
	}{
		{"//shop/item[price[@v<60]]", 2},
		{"//shop/item[price[@v>=50]]", 2},
		{"//shop/item[price[@v=90]]", 1},
		{"//shop/item[price[@v!=90]]", 2},
	} {
		q := xpath.MustParse(tc.q)
		c := selection.ComputeCover(v, q)
		if c == nil {
			t.Fatalf("no cover for %s", tc.q)
		}
		res, err := rewrite.Execute(q, &selection.Selection{Covers: []*selection.Cover{c}}, enc.FST())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != tc.want {
			t.Errorf("%s: %d answers, want %d", tc.q, len(res.Answers), tc.want)
		}
	}
}

// TestAttrEquivalenceRandomized is the attribute-aware differential test.
func TestAttrEquivalenceRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	labels := []string{"a", "b", "c"}
	attrs := []string{"x", "y"}
	answered := 0
	for doc := 0; doc < 10; doc++ {
		tree := randomAttrTree(r, 80, labels, attrs)
		enc, fst, err := dewey.EncodeTree(tree)
		if err != nil {
			t.Fatal(err)
		}
		reg := views.NewRegistry(tree, enc)
		for len(reg.ViewList) < 20 {
			if _, err := reg.Add(randomAttrPattern(r, labels, attrs, 4), 0); err != nil {
				t.Fatal(err)
			}
		}
		for qi := 0; qi < 40; qi++ {
			q := pattern.Minimize(randomAttrPattern(r, labels, attrs, 5))
			sel, err := selection.Minimum(q, reg.ViewList)
			if err != nil {
				continue
			}
			answered++
			out, err := rewrite.Execute(q, sel, fst)
			if err != nil {
				t.Fatalf("rewrite %s: %v", q, err)
			}
			direct := engine.Answers(tree, q)
			if len(out.Answers) != len(direct) {
				t.Fatalf("query %s: rewrite %d vs direct %d (views %d)",
					q, len(out.Answers), len(direct), len(sel.Covers))
			}
		}
	}
	if answered < 15 {
		t.Fatalf("only %d answerable attribute cases", answered)
	}
}

func randomAttrTree(r *rand.Rand, n int, labels, attrs []string) *xmltree.Tree {
	t := xmltree.New(labels[0])
	nodes := []*xmltree.Node{t.Root()}
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		c := t.AddChild(parent, labels[r.Intn(len(labels))])
		if r.Intn(3) == 0 {
			c.SetAttr(attrs[r.Intn(len(attrs))], "1")
		}
		nodes = append(nodes, c)
	}
	t.Renumber()
	return t
}

func randomAttrPattern(r *rand.Rand, labels, attrs []string, maxNodes int) *pattern.Pattern {
	root := pattern.NewNode(labels[r.Intn(len(labels))], pattern.Descendant)
	nodes := []*pattern.Node{root}
	n := 1 + r.Intn(maxNodes)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		c := parent.AddChild(labels[r.Intn(len(labels))], pattern.Axis(r.Intn(2)))
		if r.Intn(5) == 0 {
			c.Attrs = append(c.Attrs, pattern.AttrPred{Name: attrs[r.Intn(len(attrs))], Op: pattern.AttrExists})
		}
		nodes = append(nodes, c)
	}
	return &pattern.Pattern{Root: root, Ret: nodes[r.Intn(len(nodes))]}
}
