package tjfast_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/tjfast"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

func TestBookQueries(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	streams := tjfast.BuildStreams(tree, enc)
	for _, tc := range []struct {
		q    string
		want int
	}{
		{"//s[f//i][t]/p", 5},
		{"//s[t]/p", 8},
		{"//s[p]/f", 3},
		{"//s//s/t", 3},
		{"/b/s", 2},
		{"//*/f", 3},
		{"//s[x]", 0},
	} {
		got, err := tjfast.Eval(xpath.MustParse(tc.q), streams, enc.FST())
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if len(got) != tc.want {
			t.Errorf("Eval(%s) = %d codes, want %d", tc.q, len(got), tc.want)
		}
	}
}

func TestRejectsAttributes(t *testing.T) {
	tree := paperdata.BookTree()
	enc, _ := dewey.Encode(tree, paperdata.BookFST())
	streams := tjfast.BuildStreams(tree, enc)
	if _, err := tjfast.Eval(xpath.MustParse("//s[@x]/p"), streams, enc.FST()); err == nil {
		t.Fatal("attribute predicates must be rejected")
	}
}

// TestAgreesWithEngine is the differential property: TJFast over code
// streams must equal the in-memory reference evaluator.
func TestAgreesWithEngine(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	labels := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 20; trial++ {
		tree := randomTree(r, 120, labels)
		enc, fst, err := dewey.EncodeTree(tree)
		if err != nil {
			t.Fatal(err)
		}
		streams := tjfast.BuildStreams(tree, enc)
		for qi := 0; qi < 30; qi++ {
			q := randomPattern(r, labels, 6)
			want := engine.Answers(tree, q)
			got, err := tjfast.Eval(q, streams, fst)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("query %s: tjfast %d vs engine %d", q, len(got), len(want))
			}
			wantSet := map[string]bool{}
			for _, n := range want {
				wantSet[enc.MustCode(n).String()] = true
			}
			for _, c := range got {
				if !wantSet[c.String()] {
					t.Fatalf("query %s: wrong code %s", q, c)
				}
			}
		}
	}
}

func TestOnXMark(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 5})
	enc, fst, err := dewey.EncodeTree(doc)
	if err != nil {
		t.Fatal(err)
	}
	streams := tjfast.BuildStreams(doc, enc)
	q := xpath.MustParse("//open_auction[interval/start]/bidder/increase")
	got, err := tjfast.Eval(q, streams, fst)
	if err != nil {
		t.Fatal(err)
	}
	want := engine.Answers(doc, q)
	if len(got) != len(want) {
		t.Fatalf("tjfast %d vs engine %d", len(got), len(want))
	}
	if len(streams.Labels()) == 0 || streams.Stream("bidder") == nil {
		t.Fatal("streams accessors broken")
	}
}

func randomTree(r *rand.Rand, n int, labels []string) *xmltree.Tree {
	t := xmltree.New(labels[0])
	nodes := []*xmltree.Node{t.Root()}
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		nodes = append(nodes, t.AddChild(parent, labels[r.Intn(len(labels))]))
	}
	t.Renumber()
	return t
}

func randomPattern(r *rand.Rand, labels []string, maxNodes int) *pattern.Pattern {
	root := pattern.NewNode(labels[r.Intn(len(labels))], pattern.Axis(r.Intn(2)))
	nodes := []*pattern.Node{root}
	n := 1 + r.Intn(maxNodes)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		lb := labels[r.Intn(len(labels))]
		if r.Intn(6) == 0 {
			lb = pattern.Wildcard
		}
		nodes = append(nodes, parent.AddChild(lb, pattern.Axis(r.Intn(2))))
	}
	return &pattern.Pattern{Root: root, Ret: nodes[r.Intn(len(nodes))]}
}
