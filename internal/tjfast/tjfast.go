// Package tjfast implements a holistic twig-join evaluator over extended
// Dewey leaf streams, in the spirit of TJFast (Lu et al., VLDB 2005 — the
// paper's [22] and the algorithm §V's fragment join is modelled on).
//
// The evaluator answers a twig pattern using only, per query leaf, the
// sorted stream of extended Dewey codes of elements with the leaf's
// label. Each code's full root label-path is recovered through the FST,
// so internal query nodes never need their own streams — the property
// that makes extended Dewey attractive and that the paper's rewriting
// inherits.
//
// Pipeline: (1) filter each leaf stream by the query's root-to-leaf path
// pattern (a DP over the decoded label-path); (2) merge all surviving
// codes into a prefix trie in one scan; (3) run the twig-matching DP on
// the trie, where query leaves may only land on their own stream's
// entries. Sound and complete for the attribute-free fragment
// {/, //, *, []}: any real embedding's leaf witnesses survive (1), and
// the ancestor closure in (2) contains every internal witness.
//
// Attribute predicates are not supported — codes cannot carry attribute
// values (the same §V limitation the paper notes) — and are rejected.
package tjfast

import (
	"fmt"
	"sort"

	"xpathviews/internal/dewey"
	"xpathviews/internal/pattern"
	"xpathviews/internal/xmltree"
)

// Streams holds, per label, the document-ordered extended Dewey codes of
// all elements with that label — the only document access TJFast needs.
type Streams struct {
	byLabel map[string][]dewey.Code
	all     []dewey.Code // merged stream for wildcard leaves, built lazily
}

// BuildStreams extracts the label streams from an encoded document.
func BuildStreams(t *xmltree.Tree, enc *dewey.Encoding) *Streams {
	s := &Streams{byLabel: make(map[string][]dewey.Code)}
	t.Walk(func(n *xmltree.Node) bool {
		c, ok := enc.CodeOf(n)
		if ok {
			s.byLabel[n.Label] = append(s.byLabel[n.Label], c)
		}
		return true
	})
	return s
}

// Labels returns the indexed labels, sorted.
func (s *Streams) Labels() []string {
	out := make([]string, 0, len(s.byLabel))
	for l := range s.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Stream returns the code stream of one label (shared; do not modify).
func (s *Streams) Stream(label string) []dewey.Code { return s.byLabel[label] }

// merged returns the stream of every element, built on first use.
func (s *Streams) merged() []dewey.Code {
	if s.all != nil {
		return s.all
	}
	total := 0
	for _, cs := range s.byLabel {
		total += len(cs)
	}
	all := make([]dewey.Code, 0, total)
	for _, cs := range s.byLabel {
		all = append(all, cs...)
	}
	sort.Slice(all, func(i, j int) bool { return dewey.Compare(all[i], all[j]) < 0 })
	s.all = all
	return all
}

// Eval answers the twig pattern and returns the answer codes in document
// order. It fails on patterns with attribute predicates.
func Eval(q *pattern.Pattern, s *Streams, fst *dewey.FST) ([]dewey.Code, error) {
	hasAttrs := false
	q.Walk(func(n *pattern.Node) bool {
		if len(n.Attrs) > 0 {
			hasAttrs = true
			return false
		}
		return true
	})
	if hasAttrs {
		return nil, fmt.Errorf("tjfast: attribute predicates are not supported on code streams")
	}

	leaves := q.Leaves()
	// Stage 1: per-leaf stream filtering by root-to-leaf path pattern.
	type survivor struct {
		code   dewey.Code
		labels []string
		leaf   int // index into leaves
	}
	var survivors []survivor
	var slab []string
	for li, leaf := range leaves {
		rootPath := rootToLeafPath(leaf)
		var stream []dewey.Code
		if leaf.Label == pattern.Wildcard {
			stream = s.merged()
		} else {
			stream = s.byLabel[leaf.Label]
		}
		for _, c := range stream {
			start := len(slab)
			var err error
			slab, err = fst.DecodeAppend(c, slab)
			if err != nil {
				return nil, err
			}
			labels := slab[start:len(slab):len(slab)]
			if !pathMatches(labels, rootPath) {
				slab = slab[:start]
				continue
			}
			survivors = append(survivors, survivor{code: c, labels: labels, leaf: li})
		}
	}
	if len(survivors) == 0 {
		return nil, nil
	}

	// Stage 2: one merge scan into a prefix trie.
	sort.Slice(survivors, func(i, j int) bool {
		return dewey.Compare(survivors[i].code, survivors[j].code) < 0
	})
	type tnode struct {
		code                        dewey.Code
		label                       string
		parent, firstChild, nextSib int32
		// leafTags is a bitset over query leaves whose stream this node
		// belongs to (query twigs are small).
		leafTags uint64
	}
	if len(leaves) > 64 {
		return nil, fmt.Errorf("tjfast: more than 64 query leaves")
	}
	nodes := []tnode{{code: dewey.Code{0}, label: fst.RootLabel(), parent: -1, firstChild: -1, nextSib: -1}}
	stack := []int32{0}
	last := []int32{-1}
	for _, sv := range survivors {
		for len(stack) > 1 {
			top := stack[len(stack)-1]
			if dewey.IsPrefix(nodes[top].code, sv.code) {
				break
			}
			stack = stack[:len(stack)-1]
			last = last[:len(last)-1]
		}
		top := stack[len(stack)-1]
		for d := len(nodes[top].code); d < len(sv.code); d++ {
			idx := int32(len(nodes))
			nodes = append(nodes, tnode{
				code: sv.code[:d+1], label: sv.labels[d],
				parent: top, firstChild: -1, nextSib: -1,
			})
			if last[len(last)-1] < 0 {
				nodes[top].firstChild = idx
			} else {
				nodes[last[len(last)-1]].nextSib = idx
			}
			last[len(last)-1] = idx
			stack = append(stack, idx)
			last = append(last, -1)
			top = idx
		}
		nodes[top].leafTags |= 1 << uint(sv.leaf)
	}

	// Stage 3: twig matching DP on the trie. feas[qi][v] = subtree of
	// query node qi embeds with image v; then a reachability pass pins
	// the answer set.
	qNodes := q.Nodes()
	qIdx := make(map[*pattern.Node]int, len(qNodes))
	for i, n := range qNodes {
		qIdx[n] = i
	}
	leafBit := make(map[*pattern.Node]int, len(leaves))
	for li, l := range leaves {
		leafBit[l] = li
	}
	n := len(nodes)
	feas := make([][]bool, len(qNodes))
	below := make([][]bool, len(qNodes))
	for i := range feas {
		feas[i] = make([]bool, n)
		below[i] = make([]bool, n)
	}
	for i := len(qNodes) - 1; i >= 0; i-- {
		qn := qNodes[i]
		for v := n - 1; v >= 0; v-- {
			ok := qn.Label == pattern.Wildcard || qn.Label == nodes[v].label
			if ok && qn.IsLeaf() {
				ok = nodes[v].leafTags&(1<<uint(leafBit[qn])) != 0
			}
			if ok {
				for _, qc := range qn.Children {
					ci := qIdx[qc]
					found := false
					if qc.Axis == pattern.Child {
						for ch := nodes[v].firstChild; ch >= 0; ch = nodes[ch].nextSib {
							if feas[ci][ch] {
								found = true
								break
							}
						}
					} else {
						found = below[ci][v]
					}
					if !found {
						ok = false
						break
					}
				}
			}
			feas[i][v] = ok
			// below row of i at v's parent accumulates later; compute
			// below for THIS i over the trie after the v loop.
		}
		// below[i][v] = feas[i] holds at some proper descendant of v.
		for v := n - 1; v >= 1; v-- {
			p := nodes[v].parent
			if feas[i][v] || below[i][v] {
				below[i][p] = true
			}
		}
	}

	// Reachability: reach[qi] over trie nodes.
	reach := make([][]bool, len(qNodes))
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	if q.Root.Axis == pattern.Child {
		if feas[0][0] {
			reach[0][0] = true
		}
	} else {
		copy(reach[0], feas[0])
	}
	for i := 1; i < len(qNodes); i++ {
		qn := qNodes[i]
		pi := qIdx[qn.Parent]
		if qn.Axis == pattern.Child {
			for v := 0; v < n; v++ {
				if feas[i][v] && nodes[v].parent >= 0 && reach[pi][nodes[v].parent] {
					reach[i][v] = true
				}
			}
		} else {
			// under[v]: some proper ancestor of v is reach[pi].
			under := make([]bool, n)
			for v := 1; v < n; v++ {
				p := nodes[v].parent
				under[v] = under[p] || reach[pi][p]
				if under[v] && feas[i][v] {
					reach[i][v] = true
				}
			}
		}
	}
	retRow := reach[qIdx[q.Ret]]
	var out []dewey.Code
	for v := 0; v < n; v++ {
		if retRow[v] {
			out = append(out, nodes[v].code)
		}
	}
	return out, nil
}

// rootToLeafPath is the path pattern from the query root down to leaf.
func rootToLeafPath(leaf *pattern.Node) pattern.Path {
	var rev []pattern.Step
	for n := leaf; n != nil; n = n.Parent {
		rev = append(rev, pattern.Step{Axis: n.Axis, Label: n.Label})
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return pattern.Path{Steps: rev}
}

// pathMatches reports whether a concrete root label-path satisfies the
// path pattern ending exactly at its last label.
func pathMatches(labels []string, p pattern.Path) bool {
	steps := p.Steps
	n, m := len(labels), len(steps)
	if m == 0 || n == 0 {
		return m == 0 && n == 0
	}
	var prevBuf, curBuf [64]bool
	var prev, cur []bool
	if n < 64 {
		prev, cur = prevBuf[:n+1], curBuf[:n+1]
	} else {
		prev, cur = make([]bool, n+1), make([]bool, n+1)
	}
	for j := 1; j <= m; j++ {
		s := steps[j-1]
		anyBefore := false
		for i := 1; i <= n; i++ {
			if j > 1 && prev[i-1] {
				anyBefore = true
			}
			ok := s.Label == pattern.Wildcard || s.Label == labels[i-1]
			if ok {
				if s.Axis == pattern.Child {
					if j == 1 {
						ok = i == 1
					} else {
						ok = prev[i-1]
					}
				} else if j > 1 {
					ok = anyBefore
				}
			}
			cur[i] = ok
		}
		prev, cur = cur, prev
		for i := range cur {
			cur[i] = false
		}
	}
	return prev[n]
}
