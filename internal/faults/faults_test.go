package faults_test

import (
	"errors"
	"testing"

	"xpathviews/internal/faults"
)

var pt = faults.New("faults_test.point")

func TestDisarmedFireIsNil(t *testing.T) {
	faults.DisarmAll()
	for i := 0; i < 100; i++ {
		if err := pt.Fire(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestErrorMode(t *testing.T) {
	defer faults.DisarmAll()
	if !faults.Arm("faults_test.point", faults.Error) {
		t.Fatal("known point not armable")
	}
	err := pt.Fire()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Fire = %v", err)
	}
	if faults.Hits("faults_test.point") != 1 {
		t.Fatalf("hits = %d", faults.Hits("faults_test.point"))
	}
}

func TestPanicMode(t *testing.T) {
	defer faults.DisarmAll()
	faults.Arm("faults_test.point", faults.Panic)
	defer func() {
		if recover() == nil {
			t.Fatal("armed panic point did not panic")
		}
	}()
	_ = pt.Fire()
}

func TestArmNAutoDisarms(t *testing.T) {
	defer faults.DisarmAll()
	faults.ArmN("faults_test.point", faults.Error, 2)
	if err := pt.Fire(); err == nil {
		t.Fatal("first fire not injected")
	}
	if err := pt.Fire(); err == nil {
		t.Fatal("second fire not injected")
	}
	if err := pt.Fire(); err != nil {
		t.Fatalf("third fire injected after budget: %v", err)
	}
}

func TestUnknownNameNotArmable(t *testing.T) {
	if faults.Arm("no.such.point", faults.Error) {
		t.Fatal("unknown point reported armable")
	}
}

func TestNamesIncludesRegistered(t *testing.T) {
	found := false
	for _, n := range faults.Names() {
		if n == "faults_test.point" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered point missing from Names")
	}
}
