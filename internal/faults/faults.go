// Package faults provides named fault-injection points for chaos testing
// the answering pipeline. Each pipeline stage declares a package-level
// *Point; production code calls Fire() at the stage boundary. Disarmed
// points cost one atomic load, so the instrumentation can stay compiled
// into release builds.
//
// Tests arm a point by name with Arm or ArmN and must DisarmAll when
// done. An armed point either returns an error wrapping ErrInjected or
// panics, letting the serving layer's containment be exercised for both
// failure shapes.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrInjected is the root error of every error-mode injection.
var ErrInjected = errors.New("faults: injected fault")

// Mode selects what an armed point does when fired.
type Mode int32

const (
	// Off is the default: Fire is a no-op.
	Off Mode = iota
	// Error makes Fire return an error wrapping ErrInjected.
	Error
	// Panic makes Fire panic with a descriptive string.
	Panic
)

// Point is one named fault site.
type Point struct {
	name string
	mode atomic.Int32
	// remaining counts fires left before auto-disarm; negative means
	// unlimited.
	remaining atomic.Int64
	hits      atomic.Int64
}

var (
	mu       sync.Mutex
	registry = map[string]*Point{}

	// observer, when set, is called with the point's name every time a
	// fire actually injects (both error and panic modes) — the telemetry
	// layer hooks it to count injections per point. One atomic load when
	// unset; never called for disarmed points.
	observer atomic.Pointer[func(string)]
)

// SetObserver installs (or, with nil, removes) the injection observer.
// The callback must be cheap and must not itself arm or fire points.
func SetObserver(fn func(name string)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

// notify reports one injection to the observer, if any.
func notify(name string) {
	if fn := observer.Load(); fn != nil {
		(*fn)(name)
	}
}

// New registers (or retrieves) the fault point with the given name. It is
// intended for package-level var initialization; calling it twice with
// the same name returns the same point.
func New(name string) *Point {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := registry[name]; ok {
		return p
	}
	p := &Point{name: name}
	registry[name] = p
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Fire triggers the point. Disarmed: returns nil. Error mode: returns an
// error wrapping ErrInjected. Panic mode: panics.
func (p *Point) Fire() error {
	switch Mode(p.mode.Load()) {
	case Off:
		return nil
	case Error:
		if !p.take() {
			return nil
		}
		notify(p.name)
		return fmt.Errorf("%w at %s", ErrInjected, p.name)
	default:
		if !p.take() {
			return nil
		}
		notify(p.name)
		panic(fmt.Sprintf("faults: injected panic at %s", p.name))
	}
}

// take consumes one remaining fire, disarming the point when the count
// hits zero. It reports whether this call should actually inject.
func (p *Point) take() bool {
	for {
		r := p.remaining.Load()
		if r < 0 { // unlimited
			p.hits.Add(1)
			return true
		}
		if r == 0 {
			p.mode.Store(int32(Off))
			return false
		}
		if p.remaining.CompareAndSwap(r, r-1) {
			if r == 1 {
				p.mode.Store(int32(Off))
			}
			p.hits.Add(1)
			return true
		}
	}
}

// Arm arms the named point indefinitely. It reports whether the point is
// registered.
func Arm(name string, m Mode) bool { return ArmN(name, m, -1) }

// ArmN arms the named point for n fires (n < 0 = unlimited), after which
// it disarms itself. It reports whether the point is registered.
func ArmN(name string, m Mode, n int64) bool {
	mu.Lock()
	p, ok := registry[name]
	mu.Unlock()
	if !ok {
		return false
	}
	if n == 0 {
		n = -1
	}
	p.remaining.Store(n)
	p.mode.Store(int32(m))
	return true
}

// DisarmAll switches every registered point off and clears hit counters.
func DisarmAll() {
	mu.Lock()
	defer mu.Unlock()
	for _, p := range registry {
		p.mode.Store(int32(Off))
		p.remaining.Store(0)
		p.hits.Store(0)
	}
}

// Names returns all registered point names, sorted.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Hits returns how many times the named point has injected since the
// last DisarmAll; zero for unknown names.
func Hits(name string) int64 {
	mu.Lock()
	p, ok := registry[name]
	mu.Unlock()
	if !ok {
		return 0
	}
	return p.hits.Load()
}
