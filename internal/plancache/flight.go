package plancache

// Group is the cache's singleflight mechanism lifted out on its own: per-
// key coalescing of concurrent identical computations, with no storage of
// the result afterwards. The serving daemon uses it to extend the plan
// cache's thundering-herd protection from plans to *full answers* —
// identical in-flight queries from concurrent clients collapse onto one
// pipeline execution, and everyone shares the (immutable) result — while
// the answer itself is deliberately not retained: answers depend on the
// materialized fragments and would otherwise need the same generation
// bookkeeping as plans for no hit-rate benefit within one request's
// lifetime.

import "sync"

// Group coalesces concurrent calls with the same key. The zero value is
// ready to use.
type Group struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// Do executes fn for key, coalescing concurrent callers: while one call
// for key is in flight, later Do calls with the same key wait for it and
// receive its value and error. shared reports that the result came from
// another goroutine's execution — a shared error may reflect the other
// caller's budget or cancellation, not this caller's, so callers that
// care should re-execute locally when err != nil && shared (mirroring
// Cache.GetOrCompute's contract).
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}

// InFlight returns the number of distinct keys currently executing.
func (g *Group) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
