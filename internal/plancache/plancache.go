// Package plancache implements the serving layer's memoized query plans:
// a sharded LRU keyed by the normalized query string, with per-key
// singleflight and generation-based lazy invalidation.
//
// The cache exploits the observation behind Mandhani & Suciu's cached-
// view scenario (the paper's [19], see also internal/cache): real XPath
// workloads are highly repetitive, so the expensive query-dependent but
// data-independent work — parsing, VFILTER filtering (§III) and view
// selection (§IV) — is worth computing once and replaying. Values are
// opaque to this package; the serving layer stores its plan structs.
//
// Sharding: keys are hashed with FNV-1a and distributed over a power-of-
// two number of shards, each with its own mutex, hash map and intrusive
// LRU list, so concurrent lookups on different keys rarely contend.
//
// Singleflight: when many goroutines miss on the same key at once (a
// thundering herd on a cold popular query), one of them computes the
// plan while the rest wait for the result; the expensive selection runs
// once, not N times.
//
// Invalidation is lazy and generational: the owner bumps a generation
// counter whenever the view set changes, and entries written under an
// older generation are treated as misses (and dropped) on their next
// touch. Nothing is eagerly scanned on mutation.
package plancache

import (
	"sync"
)

// Stats reports cache effectiveness counters. Waiters that obtained a
// plan from another goroutine's in-flight computation count as hits.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
}

// Cache is a sharded, generation-checked LRU. The zero value is not
// usable; construct with New.
type Cache struct {
	shards []shard
	mask   uint32
	// perShard is each shard's entry capacity.
	perShard int
}

// DefaultCapacity is the total entry capacity used when New is given a
// non-positive capacity: enough for a large hot query set while bounding
// retained selections.
const DefaultCapacity = 1024

// New builds a cache holding at most capacity entries spread over
// nshards shards. nshards is rounded up to a power of two; non-positive
// values pick a default suited to moderate core counts. capacity <= 0
// means DefaultCapacity.
func New(capacity, nshards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if nshards <= 0 {
		nshards = 16
	}
	n := 1
	for n < nshards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint32(n - 1), perShard: per}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
		c.shards[i].flights = make(map[string]*flight)
	}
	return c
}

type entry struct {
	key   string
	gen   uint64
	value any
	// Intrusive LRU links within the shard; nil at list ends.
	prev, next *entry
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	// head is the most recently used entry, tail the least.
	head, tail *entry
	flights    map[string]*flight
	stats      Stats
}

// fnv1a is the 32-bit FNV-1a hash of s (the shard selector).
func fnv1a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached value for key if present and written under gen.
// A present entry with a stale generation is dropped and counted as an
// invalidation (and a miss).
func (c *Cache) Get(key string, gen uint64) (any, bool) {
	return c.GetValidated(key, gen, nil)
}

// GetValidated is Get with an additional per-entry validator: an entry
// that matches gen but whose value fails valid is dropped and counted as
// an invalidation, exactly like a stale generation. This is the hook for
// scoped invalidation — the owner validates that the views a plan covers
// are still at the generations the plan was computed against, so a
// mutation only evicts the plans it actually dirtied. valid runs under
// the shard lock and must be fast and non-reentrant. A nil valid accepts
// every value.
func (c *Cache) GetValidated(key string, gen uint64, valid func(any) bool) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	if e.gen != gen || (valid != nil && !valid(e.value)) {
		s.remove(e)
		s.stats.Invalidations++
		s.stats.Misses++
		return nil, false
	}
	s.moveToFront(e)
	s.stats.Hits++
	v := e.value // copy under the lock: remove may nil it out after
	return v, true
}

// Put stores value for key under gen, evicting the shard's LRU entry
// when the shard is full.
func (c *Cache) Put(key string, gen uint64, value any) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(c.perShard, key, gen, value)
}

// GetOrCompute returns the cached value for key, or computes it with fn.
// Concurrent callers missing on the same key coalesce: one runs fn, the
// rest wait. The computing caller's result is cached under gen only on
// success.
//
// shared reports that the returned value or error came from another
// goroutine's computation. A shared error may reflect the other caller's
// budget or cancellation, not this caller's — callers that care should
// recompute locally (without coalescing) when err != nil && shared.
func (c *Cache) GetOrCompute(key string, gen uint64, fn func() (any, error)) (v any, err error, shared bool) {
	return c.GetOrComputeValidated(key, gen, nil, fn)
}

// GetOrComputeValidated is GetOrCompute with the per-entry validator of
// GetValidated: a generation-matching entry whose value fails valid is
// dropped (counted as an invalidation) and recomputed.
func (c *Cache) GetOrComputeValidated(key string, gen uint64, valid func(any) bool, fn func() (any, error)) (v any, err error, shared bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		if e.gen == gen && (valid == nil || valid(e.value)) {
			s.moveToFront(e)
			s.stats.Hits++
			v := e.value // copy under the lock: remove may nil it out after
			s.mu.Unlock()
			return v, nil, false
		}
		s.remove(e)
		s.stats.Invalidations++
	}
	if f, ok := s.flights[key]; ok {
		// Coalesce onto the in-flight computation.
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err, true
		}
		s.mu.Lock()
		s.stats.Hits++
		s.mu.Unlock()
		return f.val, nil, true
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.stats.Misses++
	s.mu.Unlock()

	f.val, f.err = fn()

	s.mu.Lock()
	delete(s.flights, key)
	if f.err == nil {
		s.put(c.perShard, key, gen, f.val)
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}

// put inserts or refreshes an entry; the caller holds s.mu.
func (s *shard) put(cap int, key string, gen uint64, value any) {
	if e, ok := s.entries[key]; ok {
		e.gen = gen
		e.value = value
		s.moveToFront(e)
		return
	}
	e := &entry{key: key, gen: gen, value: value}
	s.entries[key] = e
	s.pushFront(e)
	for len(s.entries) > cap {
		victim := s.tail
		if victim == nil {
			break
		}
		s.remove(victim)
		s.stats.Evictions++
	}
}

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	s.pushFront(e)
}

// remove unlinks and deletes an entry; the caller holds s.mu.
func (s *shard) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.value = nil
	delete(s.entries, e.key)
}

// Len returns the number of live entries (stale ones included until
// their next touch).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats sums the per-shard counters.
func (c *Cache) Stats() Stats {
	var out Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Hits += s.stats.Hits
		out.Misses += s.stats.Misses
		out.Evictions += s.stats.Evictions
		out.Invalidations += s.stats.Invalidations
		s.mu.Unlock()
	}
	return out
}

// Purge drops every entry (stats are kept). Mainly for tests and for
// callers that prefer eager invalidation.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.entries {
			s.remove(e)
		}
		s.mu.Unlock()
	}
}

// NumShards reports the rounded shard count (for tests).
func (c *Cache) NumShards() int { return len(c.shards) }
