package plancache_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xpathviews/internal/plancache"
)

func TestGetPut(t *testing.T) {
	c := plancache.New(64, 4)
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1, "plan-a")
	v, ok := c.Get("a", 1)
	if !ok || v.(string) != "plan-a" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGenerationInvalidates(t *testing.T) {
	c := plancache.New(64, 4)
	c.Put("a", 1, "old")
	if _, ok := c.Get("a", 2); ok {
		t.Fatal("stale-generation entry served")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	// The stale entry must be gone, not resurrectable at the old gen.
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("stale entry survived its invalidation")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard so the LRU order is global and deterministic.
	c := plancache.New(2, 1)
	if c.NumShards() != 1 {
		t.Fatalf("NumShards = %d", c.NumShards())
	}
	c.Put("a", 1, 1)
	c.Put("b", 1, 2)
	c.Get("a", 1) // a is now MRU
	c.Put("c", 1, 3)
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("LRU victim b survived")
	}
	if _, ok := c.Get("a", 1); !ok {
		t.Fatal("recently used a evicted")
	}
	if _, ok := c.Get("c", 1); !ok {
		t.Fatal("fresh c evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestShardRounding(t *testing.T) {
	if got := plancache.New(0, 5).NumShards(); got != 8 {
		t.Fatalf("shards for 5 = %d, want 8", got)
	}
	if got := plancache.New(0, 16).NumShards(); got != 16 {
		t.Fatalf("shards for 16 = %d, want 16", got)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := plancache.New(64, 4)
	var computes atomic.Int64
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := c.GetOrCompute("hot", 1, func() (any, error) {
				computes.Add(1)
				<-gate
				return "plan", nil
			})
			if err != nil {
				t.Errorf("GetOrCompute: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Let the herd pile up, then release the single computation.
	for computes.Load() == 0 {
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	for i, v := range results {
		if v.(string) != "plan" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
	// The plan must now be cached.
	if _, ok := c.Get("hot", 1); !ok {
		t.Fatal("computed plan not cached")
	}
}

func TestSingleflightErrorNotCached(t *testing.T) {
	c := plancache.New(64, 4)
	boom := errors.New("boom")
	_, err, shared := c.GetOrCompute("k", 1, func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) || shared {
		t.Fatalf("err=%v shared=%v", err, shared)
	}
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("failed computation was cached")
	}
}

func TestSharedErrorReported(t *testing.T) {
	c := plancache.New(64, 4)
	boom := errors.New("boom")
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.GetOrCompute("k", 1, func() (any, error) {
			close(started)
			<-gate
			return nil, boom
		})
	}()
	<-started
	done := make(chan struct{})
	entered := make(chan struct{})
	var sharedErr error
	var shared bool
	go func() {
		defer close(done)
		close(entered)
		_, sharedErr, shared = c.GetOrCompute("k", 1, func() (any, error) {
			t.Error("waiter must not compute")
			return nil, nil
		})
	}()
	// Give the waiter time to reach the in-flight coalescing point before
	// the leader finishes; if it somehow doesn't, its fn fires t.Error.
	<-entered
	time.Sleep(20 * time.Millisecond)
	close(gate)
	<-done
	if !errors.Is(sharedErr, boom) || !shared {
		t.Fatalf("waiter got err=%v shared=%v, want boom/true", sharedErr, shared)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := plancache.New(128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("q%d", i%50)
				gen := uint64(1 + i/250) // generation flips mid-run
				v, err, _ := c.GetOrCompute(key, gen, func() (any, error) {
					return key, nil
				})
				if err != nil || v.(string) != key {
					t.Errorf("got %v, %v", v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
}

func TestPurge(t *testing.T) {
	c := plancache.New(64, 4)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprint(i), 1, i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
}
