// Package paperdata reconstructs the running examples of the paper: the
// book.xml tree of Figure 2 (with the extended Dewey codes used in
// Examples 2.1 and 5.1), the view set of Table I, and the example query
// Q_e of Examples 3.4/4.3/5.1.
//
// The original Figure 2 had 34 nodes; the figure itself did not survive in
// the source text, so this is a 28-node reconstruction engineered to
// reproduce every concrete code and result the prose mentions:
//
//   - s3 has code 0.8.6 and label-path b/s/s (Example 2.1);
//   - t4 = 0.8.6.0, p3 = 0.8.6.1, f1 = 0.8.6.3, p1 = 0.8.1 (Example 5.1);
//   - V1 = //s[t]/p materializes fragments rooted at eight p nodes;
//   - V2 = //s[p]/f materializes fragments rooted at {f1, f2, f3};
//   - Q_e = //s[f//i][t]/p evaluates to {p3, p4, p5, p6, p7}.
package paperdata

import (
	"xpathviews/internal/dewey"
	"xpathviews/internal/xmltree"
)

// Labels of the book alphabet: book, title, author, section, paragraph,
// figure, image.
const (
	Book      = "b"
	Title     = "t"
	Author    = "a"
	Section   = "s"
	Paragraph = "p"
	Figure    = "f"
	Image     = "i"
)

// BookTree builds the reconstructed Figure 2 tree.
func BookTree() *xmltree.Tree {
	t := xmltree.New(Book)
	b := t.Root()

	t.AddChild(b, Title)  // t1 (0.0)
	t.AddChild(b, Author) // a1 (0.1)
	t.AddChild(b, Author) // a2 (0.4)

	s1 := t.AddChild(b, Section) // s1 (0.5)
	t.AddChild(s1, Title)        // t2 (0.5.0)
	t.AddChild(s1, Paragraph)    // p4 (0.5.1)
	t.AddChild(s1, Paragraph)    // p5 (0.5.5)
	f2 := t.AddChild(s1, Figure) // f2 (0.5.7)
	t.AddChild(f2, Image)        // i2 (0.5.7.0)
	s4 := t.AddChild(s1, Section)
	t.AddChild(s4, Title)        // t5
	t.AddChild(s4, Paragraph)    // p6
	t.AddChild(s4, Paragraph)    // p7
	f3 := t.AddChild(s4, Figure) // f3
	t.AddChild(f3, Image)        // i3

	s2 := t.AddChild(b, Section) // s2 (0.8)
	t.AddChild(s2, Title)        // t3 (0.8.0)
	t.AddChild(s2, Paragraph)    // p1 (0.8.1)
	t.AddChild(s2, Paragraph)    // p2 (0.8.5)
	s3 := t.AddChild(s2, Section)
	t.AddChild(s3, Title)        // t4 (0.8.6.0)
	t.AddChild(s3, Paragraph)    // p3 (0.8.6.1)
	f1 := t.AddChild(s3, Figure) // f1 (0.8.6.3)
	t.AddChild(f1, Image)        // i1 (0.8.6.3.0)
	s5 := t.AddChild(s2, Section)
	t.AddChild(s5, Title)     // t6
	t.AddChild(s5, Paragraph) // p8

	t.Renumber()
	return t
}

// BookFST returns the FST of Figure 3, with the child-alphabet orders the
// paper's concrete codes imply: under b the order is (t, a, s) and under s
// it is (t, p, s, f).
func BookFST() *dewey.FST {
	return dewey.BuildFSTFromSchema(Book, map[string][]string{
		Book:    {Title, Author, Section},
		Section: {Title, Paragraph, Section, Figure},
		Figure:  {Image},
	})
}

// TableIViews returns the four views of Table I in XPath syntax; element 0
// is V1. The table itself did not survive OCR, so this is a reconstruction
// engineered to reproduce every concrete statement in Examples 3.2–3.4,
// 4.3 and 5.1:
//
//   - reading w1 = STR(s/f//i) reaches exactly two accepting states,
//     owned by V2 (path s//i) and V4 (path s/f);
//   - reading w2 = STR(s/t) increments only NUM(V1);
//   - reading w3 = STR(s/p) increments all of NUM(V1..V4);
//   - the final counters are NUM(V1)=2=|D(V1)|, NUM(V2)=2≠3=|D(V2)|,
//     NUM(V3)=1≠2=|D(V3)|, NUM(V4)=2=|D(V4)|, so the candidates are
//     exactly {V1, V4};
//   - the surviving sorted lists are {(V4,2)} for s/f//i, {(V1,2)} for
//     s/t, and {(V1,2),(V4,2)} for s/p;
//   - V3 contributes the path s/*//t whose normalization s//*/t is the
//     P5 of Examples 3.2/3.3;
//   - V4 = //s[p]/f is the view called V4 in Example 4.3 and V2 in
//     Example 5.1 (the paper reuses the name), with LC(V4,Q_e) = {i, p}
//     and LC(V1,Q_e) = {Δ, t, p}, so Algorithm 2 returns {V1, V4}.
func TableIViews() []string {
	return []string{
		"//s[t]/p",        // V1, D = {s/t, s/p}
		"//s[a][.//i]//p", // V2, D = {s/a, s//i, s//p}
		"//s[*//t]//p",    // V3, D = {s/*//t, s//p}
		"//s[p]/f",        // V4, D = {s/p, s/f}
	}
}

// QueryE is the running example query of Examples 3.4, 4.3 and 5.1.
const QueryE = "//s[f//i][t]/p"

// ViewV1 and ViewV2 are the two views of the rewriting walk-through in
// Example 5.1.
const (
	ViewV1 = "//s[t]/p"
	ViewV2 = "//s[p]/f"
)

// FindAll returns the nodes of t with the given label, in document order.
func FindAll(t *xmltree.Tree, label string) []*xmltree.Node {
	var out []*xmltree.Node
	t.Walk(func(n *xmltree.Node) bool {
		if n.Label == label {
			out = append(out, n)
		}
		return true
	})
	return out
}
