package paperdata_test

import (
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/xpath"
)

func TestBookTreeShape(t *testing.T) {
	tree := paperdata.BookTree()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Root().Label != paperdata.Book {
		t.Fatalf("root = %s", tree.Root().Label)
	}
	if tree.Size() != 28 {
		t.Fatalf("tree has %d nodes, reconstruction documents 28", tree.Size())
	}
	counts := map[string]int{}
	for _, n := range tree.Nodes() {
		counts[n.Label]++
	}
	// The fragment sets of Example 5.1 depend on these counts.
	if counts[paperdata.Paragraph] != 8 || counts[paperdata.Figure] != 3 ||
		counts[paperdata.Section] != 5 || counts[paperdata.Image] != 3 {
		t.Fatalf("label counts = %v", counts)
	}
}

func TestBookFSTOrders(t *testing.T) {
	fst := paperdata.BookFST()
	if got := fst.ChildAlphabet(paperdata.Book); len(got) != 3 || got[0] != paperdata.Title || got[2] != paperdata.Section {
		t.Fatalf("b alphabet = %v, want [t a s]", got)
	}
	if got := fst.ChildAlphabet(paperdata.Section); len(got) != 4 || got[1] != paperdata.Paragraph || got[3] != paperdata.Figure {
		t.Fatalf("s alphabet = %v, want [t p s f]", got)
	}
}

func TestViewsAndQueryParse(t *testing.T) {
	for _, src := range paperdata.TableIViews() {
		if _, err := xpath.Parse(src); err != nil {
			t.Errorf("Table I view %q: %v", src, err)
		}
	}
	for _, src := range []string{paperdata.QueryE, paperdata.ViewV1, paperdata.ViewV2} {
		if _, err := xpath.Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestFindAll(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	ps := paperdata.FindAll(tree, paperdata.Paragraph)
	if len(ps) != 8 {
		t.Fatalf("FindAll(p) = %d", len(ps))
	}
	// p1 is the document-order 4th paragraph? No — assert the known code
	// of the first paragraph in document order (p4 at 0.5.1).
	if enc.MustCode(ps[0]).String() != "0.5.1" {
		t.Fatalf("first paragraph code = %s, want 0.5.1", enc.MustCode(ps[0]))
	}
}
