// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). It is shared by the root bench suite (bench_test.go)
// and the xpvbench command.
//
// Workload reconstruction notes (see DESIGN.md): the four Table III
// queries did not survive in the source text; the specs below use XMark
// vocabulary, satisfy the constraints the prose states (max depth 4; Q1
// answerable by one view, Q2/Q3 by two, Q4 by three; Q2 the shallowest at
// depth 3), and are made answerable by seeding a handful of anchor views
// into the generated view population — mirroring how the paper "extracted"
// its test queries from the materialized workload.
package experiments

import (
	"fmt"
	"time"

	"xpathviews"
	"xpathviews/internal/engine"
	"xpathviews/internal/pattern"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// Config sizes an experiment environment. The zero value is unusable;
// use Default() or Quick().
type Config struct {
	// Scale is the XMark document scale (1.0 ≈ 70k nodes).
	Scale float64
	// NumViews is the number of generated positive views to materialize
	// (the paper used 1000).
	NumViews int
	// FragmentLimit caps per-view materialized bytes (paper: 128 KB).
	FragmentLimit int
	// Seed drives document and workload generation.
	Seed int64
	// FilterSizes are the view-set sizes for Figures 10-12 (the paper
	// used 1000..8000).
	FilterSizes []int
	// UtilityQueries is the number of test queries for Figure 10.
	UtilityQueries int
}

// Default mirrors the paper's setup, scaled to run on a laptop in
// minutes. Scale 2.5 (~175k nodes) is where the paper's Figure 8 ordering
// emerges in memory: fragment-capped view strategies stop paying for
// document growth while the direct baselines keep scanning.
func Default() Config {
	return Config{
		Scale:          2.5,
		NumViews:       1000,
		FragmentLimit:  128 << 10,
		Seed:           2008,
		FilterSizes:    []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000},
		UtilityQueries: 200,
	}
}

// Quick is a smaller configuration for unit tests and -short benches.
func Quick() Config {
	return Config{
		Scale:          0.08,
		NumViews:       150,
		FragmentLimit:  128 << 10,
		Seed:           2008,
		FilterSizes:    []int{250, 500, 1000, 2000},
		UtilityQueries: 40,
	}
}

// QuerySpec is one Table III row.
type QuerySpec struct {
	Name string
	// XPath source of the query.
	XPath string
	// ViewsNeeded is the number of views the paper's Table III reports
	// for the query (1, 2, 2, 3).
	ViewsNeeded int
}

// TableIII returns the reconstructed test queries Q1..Q4.
func TableIII() []QuerySpec {
	return []QuerySpec{
		{Name: "Q1", XPath: "//site//closed_auction[buyer]/annotation/happiness", ViewsNeeded: 1},
		{Name: "Q2", XPath: "//person[address/city]/name", ViewsNeeded: 2},
		{Name: "Q3", XPath: "//open_auctions/open_auction[interval/start]/bidder/increase", ViewsNeeded: 2},
		{Name: "Q4", XPath: "//people/person[profile/age][watches]/address/city", ViewsNeeded: 3},
	}
}

// anchorViews make the Table III queries answerable (they join the
// generated population and are subject to the same filtering/selection
// machinery — and the same 128 KB cap — as every other view).
func anchorViews() []string {
	return []string{
		"//site//closed_auction[buyer]/annotation/happiness", // answers Q1 alone
		"//person[address]/name",                             // Q2 Δ-view
		"//person/address/city",                              // Q2 + Q4 predicate view
		"//open_auction/bidder/increase",                     // Q3 Δ-view
		"//open_auction/interval/start",                      // Q3 predicate view
		"//people/person/address/city",                       // Q4 Δ-view
		"//person/profile/age",                               // Q4 predicate view
		"//person/watches",                                   // Q4 predicate view
	}
}

// Env is a fully materialized experiment environment.
type Env struct {
	Cfg Config
	Sys *xpathviews.System
	// Queries are the Table III specs parsed.
	Queries []QuerySpec
	// SkippedViews counts generated views over the fragment cap.
	SkippedViews int
	// DocNodes is the document size.
	DocNodes int
}

// NewEnv builds the Figure 8/9 environment: document, anchors, and
// NumViews generated positive views under the fragment cap.
func NewEnv(cfg Config) (*Env, error) {
	doc := xmark.Generate(xmark.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		return nil, err
	}
	env := &Env{Cfg: cfg, Sys: sys, Queries: TableIII(), DocNodes: doc.Size()}
	for _, a := range anchorViews() {
		if _, err := sys.AddView(a, cfg.FragmentLimit); err != nil {
			return nil, fmt.Errorf("experiments: anchor view %s: %w (raise Scale or the cap)", a, err)
		}
	}
	gen := workload.New(cfg.Seed+1, xmark.Schema(), xmark.Attributes(), workload.Params{
		MaxDepth: 4, ProbWild: 0.2, ProbDesc: 0.2, NumPred: 1, NumNestedPath: 1,
	})
	idx := engine.BuildLabelIndex(doc)
	tries := 0
	maxTries := cfg.NumViews * 60
	for sys.NumViews() < cfg.NumViews+len(anchorViews()) && tries < maxTries {
		tries++
		q := gen.Query()
		// The paper materializes positive queries only.
		if len(engine.AnswersFast(doc, idx, q)) == 0 {
			continue
		}
		if _, err := sys.AddViewPattern(q, cfg.FragmentLimit); err != nil {
			env.SkippedViews++
			continue
		}
	}
	if sys.NumViews() < cfg.NumViews {
		return nil, fmt.Errorf("experiments: only materialized %d of %d views", sys.NumViews(), cfg.NumViews)
	}
	return env, nil
}

// Fig8Row is one bar of Figure 8.
type Fig8Row struct {
	Query    string
	Strategy xpathviews.Strategy
	Elapsed  time.Duration
	Answers  int
	Views    int // number of views used (view strategies)
	Err      string
}

// Fig8 measures query processing time for Q1..Q4 × {BN, BF, MN, MV, HV}.
// Each measurement is the best of three runs after one warm-up (which
// also pays one-time index construction).
func (e *Env) Fig8() []Fig8Row {
	var rows []Fig8Row
	strategies := []xpathviews.Strategy{xpathviews.BN, xpathviews.BF, xpathviews.MN, xpathviews.MV, xpathviews.HV}
	for _, qs := range e.Queries {
		for _, st := range strategies {
			row := Fig8Row{Query: qs.Name, Strategy: st}
			res, err := e.Sys.Answer(qs.XPath, st) // warm-up
			if err != nil {
				row.Err = err.Error()
				rows = append(rows, row)
				continue
			}
			best := time.Duration(0)
			for rep := 0; rep < 3; rep++ {
				t0 := time.Now()
				res, _ = e.Sys.Answer(qs.XPath, st)
				if el := time.Since(t0); best == 0 || el < best {
					best = el
				}
			}
			row.Elapsed = best
			row.Answers = len(res.Answers)
			row.Views = len(res.ViewsUsed)
			rows = append(rows, row)
		}
	}
	return rows
}

// Fig9Row is one bar of Figure 9 (lookup = selection time only).
type Fig9Row struct {
	Query    string
	Strategy xpathviews.Strategy
	Elapsed  time.Duration
	Views    int
	Homs     int
	Err      string
}

// Fig9 measures view-selection (lookup) time for Q1..Q4 × {MN, MV, HV}.
func (e *Env) Fig9() []Fig9Row {
	var rows []Fig9Row
	for _, qs := range e.Queries {
		q := pattern.Minimize(xpath.MustParse(qs.XPath))
		for _, st := range []xpathviews.Strategy{xpathviews.MN, xpathviews.MV, xpathviews.HV} {
			row := Fig9Row{Query: qs.Name, Strategy: st}
			t0 := time.Now()
			sel, _, err := e.Sys.Select(q, st)
			row.Elapsed = time.Since(t0)
			if err != nil {
				row.Err = err.Error()
			} else {
				row.Views = len(sel.Covers)
				row.Homs = sel.HomsComputed
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FilterEnv holds the Figures 10-12 machinery: filters over growing view
// sets, plus the raw view patterns for utility computation.
type FilterEnv struct {
	Cfg     Config
	Sizes   []int
	Filters []*vfilter.Filter
	Views   []*pattern.Pattern
	// TestQueries is the Figure 10 query set.
	TestQueries []*pattern.Pattern
}

// NewFilterEnv generates the view sets V_1..V_k of §VI-B
// (num_nestedpath=2, no attribute predicates) and builds one automaton
// per size.
func NewFilterEnv(cfg Config) *FilterEnv {
	gen := workload.New(cfg.Seed+2, xmark.Schema(), xmark.Attributes(), workload.Params{
		MaxDepth: 4, ProbWild: 0.2, ProbDesc: 0.2, NumPred: 0, NumNestedPath: 2,
	})
	fe := &FilterEnv{Cfg: cfg, Sizes: cfg.FilterSizes}
	maxSize := cfg.FilterSizes[len(cfg.FilterSizes)-1]
	for len(fe.Views) < maxSize {
		fe.Views = append(fe.Views, gen.Query())
	}
	for _, n := range cfg.FilterSizes {
		f := vfilter.New()
		for id := 0; id < n; id++ {
			f.AddView(id, fe.Views[id])
		}
		fe.Filters = append(fe.Filters, f)
	}
	for i := 0; i < cfg.UtilityQueries; i++ {
		fe.TestQueries = append(fe.TestQueries, gen.Query())
	}
	return fe
}

// Fig10Row reports utility U(Q) = |V”|/|V_Q| statistics for one view-set
// size.
type Fig10Row struct {
	NumViews   int
	AvgUtility float64
	MaxUtility float64
	MaxCandSet int // largest |V''| observed (paper: never above 50)
}

// Fig10 computes average and maximum utility over the test queries.
func (fe *FilterEnv) Fig10() []Fig10Row {
	var rows []Fig10Row
	for si, f := range fe.Filters {
		n := fe.Sizes[si]
		sum, maxU := 0.0, 0.0
		maxCand := 0
		counted := 0
		for _, q := range fe.TestQueries {
			res := f.Filtering(q)
			vq := 0
			for id := 0; id < n; id++ {
				if pattern.Contains(fe.Views[id], q) {
					vq++
				}
			}
			if vq == 0 {
				continue // utility undefined when no view contains Q
			}
			u := float64(len(res.Candidates)) / float64(vq)
			sum += u
			if u > maxU {
				maxU = u
			}
			if len(res.Candidates) > maxCand {
				maxCand = len(res.Candidates)
			}
			counted++
		}
		row := Fig10Row{NumViews: n, MaxUtility: maxU, MaxCandSet: maxCand}
		if counted > 0 {
			row.AvgUtility = sum / float64(counted)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig11Row reports automaton size scaling.
type Fig11Row struct {
	NumViews int
	States   int
	Bytes    int
	// ScaleVsFirst is S_i/S_1.
	ScaleVsFirst float64
}

// Fig11 measures the stored size of each automaton.
func (fe *FilterEnv) Fig11() []Fig11Row {
	var rows []Fig11Row
	base := 0
	for si, f := range fe.Filters {
		b := f.StoredSize()
		if base == 0 {
			base = b
		}
		rows = append(rows, Fig11Row{
			NumViews:     fe.Sizes[si],
			States:       f.NumStates(),
			Bytes:        b,
			ScaleVsFirst: float64(b) / float64(base),
		})
	}
	return rows
}

// Fig12Row reports filtering time for one query at one view-set size.
type Fig12Row struct {
	Query    string
	NumViews int
	Elapsed  time.Duration
}

// Fig12 measures the filtering time of Q1..Q4 on each automaton.
func (fe *FilterEnv) Fig12() []Fig12Row {
	const reps = 50
	var rows []Fig12Row
	for _, qs := range TableIII() {
		q := xpath.MustParse(qs.XPath)
		for si, f := range fe.Filters {
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				f.Filtering(q)
			}
			rows = append(rows, Fig12Row{
				Query:    qs.Name,
				NumViews: fe.Sizes[si],
				Elapsed:  time.Since(t0) / reps,
			})
		}
	}
	return rows
}
