package experiments

// Maintenance benchmarks: what document mutations cost.
//
// MaintainBench compares incremental view maintenance (the dirty-root
// delta pass of internal/maintain, everything InsertSubtree/DeleteSubtree
// does) against the baseline it replaces — rematerializing every view
// from scratch after each mutation — across inserted-subtree sizes.
//
// UpdateStorm measures what scoped plan invalidation buys under a
// mutation-heavy workload: per-view generation tracking drops only the
// cached plans that cover a dirtied view, while the global-bump policy
// drops every plan on every mutation.

import (
	"fmt"
	"time"

	"xpathviews"
	"xpathviews/internal/engine"
	"xpathviews/internal/views"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
)

// MaintainConfig sizes the maintenance benchmarks.
type MaintainConfig struct {
	// Scale is the XMark document scale.
	Scale float64
	// Seed drives document generation.
	Seed int64
	// Iters is the number of insert+delete cycles measured per subtree
	// size.
	Iters int
	// StormRounds is the number of mutation rounds in the update storm.
	StormRounds int
}

// MaintainDefault is the committed-report configuration.
func MaintainDefault() MaintainConfig {
	return MaintainConfig{Scale: 0.5, Seed: 2008, Iters: 20, StormRounds: 40}
}

// MaintainQuick is a smoke-run configuration.
func MaintainQuick() MaintainConfig {
	return MaintainConfig{Scale: 0.1, Seed: 2008, Iters: 5, StormRounds: 10}
}

// maintainViews are the materialized views of the maintenance
// benchmarks: they cover the document regions the mutation specs touch
// (items, descriptions, mailboxes, people) plus bystander regions that
// should stay untouched.
func maintainViews() []string {
	return []string{
		"//item/location",
		"//item[location]/name",
		"//item/description//keyword",
		"//mail[from]/date",
		"//person/address/city",
		"//person[address]/name",
		"//open_auction/bidder/increase",
		"//closed_auction/price",
	}
}

// maintainSpec is one inserted-subtree shape.
type maintainSpec struct {
	Name   string
	Parent string // label of the insertion parent
	XML    string
}

func maintainSpecs() []maintainSpec {
	return []maintainSpec{
		{"leaf-1", "item", "<quantity/>"},
		{"mail-5", "item", "<mailbox><mail><from/><to/><date/></mail></mailbox>"},
		{"description-9", "item",
			"<description><parlist><listitem><text><bold/><keyword/></text></listitem>" +
				"<listitem><text><emph/></text></listitem></parlist></description>"},
		{"person-17", "people",
			"<person><name/><emailaddress/><phone/>" +
				"<address><street/><city/><country/><zipcode/></address>" +
				"<homepage/><creditcard/><profile><interest/><education/><age/></profile>" +
				"<watches><watch/></watches></person>"},
	}
}

// MaintainRow is one subtree-size comparison.
type MaintainRow struct {
	Name         string
	SubtreeNodes int
	// IncNsPerOp is the mean full InsertSubtree/DeleteSubtree call time
	// (structural edit + incremental maintenance of every view).
	IncNsPerOp int64
	// FullNsPerOp is the mean cost of rematerializing every view over
	// the mutated document — the non-incremental baseline.
	FullNsPerOp int64
	Speedup     float64
	// DirtyViews is the mean number of views a mutation actually
	// changed.
	DirtyViews float64
}

func newMaintainSystem(cfg MaintainConfig) (*xpathviews.System, error) {
	doc := xmark.Generate(xmark.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		return nil, err
	}
	for _, src := range maintainViews() {
		if _, err := sys.AddView(src, 0); err != nil {
			return nil, fmt.Errorf("view %s: %v", src, err)
		}
	}
	return sys, nil
}

// rematAll times the full-rematerialization baseline: one label-index
// build over the mutated document plus a from-scratch Materialize of
// every registered view.
func rematAll(sys *xpathviews.System) (int64, error) {
	t0 := time.Now()
	idx := engine.BuildLabelIndex(sys.Document())
	for _, v := range sys.Registry().Views() {
		if _, err := views.Materialize(v.ID, v.Pattern, sys.Document(), sys.Encoding(), idx, 0); err != nil {
			return 0, err
		}
	}
	return int64(time.Since(t0)), nil
}

// MaintainBench runs the incremental-vs-full comparison.
func MaintainBench(cfg MaintainConfig) ([]MaintainRow, error) {
	sys, err := newMaintainSystem(cfg)
	if err != nil {
		return nil, err
	}
	var rows []MaintainRow
	for _, spec := range maintainSpecs() {
		var parent *xmltree.Node
		sys.Document().Walk(func(n *xmltree.Node) bool {
			if n.Label == spec.Parent {
				parent = n
				return false
			}
			return true
		})
		if parent == nil {
			return nil, fmt.Errorf("no %q node at scale %.2f", spec.Parent, cfg.Scale)
		}
		pc := sys.Encoding().MustCode(parent)
		row := MaintainRow{Name: spec.Name}
		var incNs, fullNs int64
		dirty := 0
		for i := 0; i < cfg.Iters; i++ {
			ins, err := sys.InsertSubtree(pc, spec.XML)
			if err != nil {
				return nil, fmt.Errorf("%s: insert: %v", spec.Name, err)
			}
			row.SubtreeNodes = ins.NodesAdded
			incNs += ins.TotalNanos
			dirty += ins.DirtyViews
			full, err := rematAll(sys)
			if err != nil {
				return nil, err
			}
			fullNs += full
			del, err := sys.DeleteSubtree(ins.Code)
			if err != nil {
				return nil, fmt.Errorf("%s: delete: %v", spec.Name, err)
			}
			incNs += del.TotalNanos
			dirty += del.DirtyViews
			full, err = rematAll(sys)
			if err != nil {
				return nil, err
			}
			fullNs += full
		}
		ops := int64(2 * cfg.Iters)
		row.IncNsPerOp = incNs / ops
		row.FullNsPerOp = fullNs / ops
		row.Speedup = float64(row.FullNsPerOp) / float64(row.IncNsPerOp)
		row.DirtyViews = float64(dirty) / float64(ops)
		rows = append(rows, row)
	}
	return rows, nil
}

// StormRow is one invalidation policy's outcome under the update storm.
type StormRow struct {
	Mode    string // "scoped" or "global"
	Rounds  int
	Queries int // plan-cache-eligible query executions
	Hits    int
	HitRate float64
}

// stormQueries: the first query covers the view the storm dirties on
// every mutation; the rest cover untouched regions. Under scoped
// invalidation only the first should miss after each mutation.
func stormQueries() []string {
	return []string{
		"//item/location",
		"//person/address/city",
		"//mail[from]/date",
		"//closed_auction/price",
	}
}

// UpdateStorm alternates mutations with a fixed query workload and
// reports the plan-cache hit rate under the given invalidation policy.
func UpdateStorm(cfg MaintainConfig, scoped bool) (StormRow, error) {
	sys, err := newMaintainSystem(cfg)
	if err != nil {
		return StormRow{}, err
	}
	sys.SetScopedInvalidation(scoped)
	queries := stormQueries()
	var target *xmltree.Node
	sys.Document().Walk(func(n *xmltree.Node) bool {
		if n.Label == "item" {
			target = n
			return false
		}
		return true
	})
	if target == nil {
		return StormRow{}, fmt.Errorf("no item node at scale %.2f", cfg.Scale)
	}
	pc := sys.Encoding().MustCode(target)
	// Warm every plan.
	for _, q := range queries {
		if _, err := sys.Answer(q, xpathviews.HV); err != nil {
			return StormRow{}, fmt.Errorf("warm %s: %v", q, err)
		}
	}
	row := StormRow{Mode: "global", Rounds: cfg.StormRounds}
	if scoped {
		row.Mode = "scoped"
	}
	runQueries := func() error {
		for _, q := range queries {
			res, err := sys.Answer(q, xpathviews.HV)
			if err != nil {
				return fmt.Errorf("%s: %v", q, err)
			}
			row.Queries++
			if res.PlanCacheHit {
				row.Hits++
			}
		}
		return nil
	}
	for r := 0; r < cfg.StormRounds; r++ {
		// Each round is one insert and one delete, each changing the
		// //item/location view's fragments, with the query workload
		// replayed after each mutation.
		ins, err := sys.InsertSubtree(pc, "<location/>")
		if err != nil {
			return StormRow{}, err
		}
		if err := runQueries(); err != nil {
			return StormRow{}, err
		}
		if _, err := sys.DeleteSubtree(ins.Code); err != nil {
			return StormRow{}, err
		}
		if err := runQueries(); err != nil {
			return StormRow{}, err
		}
	}
	row.HitRate = float64(row.Hits) / float64(row.Queries)
	return row, nil
}

// MaintainReport runs both benchmarks and assembles the machine-
// readable report written to BENCH_maintain.json.
func MaintainReport(cfg MaintainConfig) (map[string]any, []MaintainRow, []StormRow, error) {
	rows, err := MaintainBench(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	scoped, err := UpdateStorm(cfg, true)
	if err != nil {
		return nil, nil, nil, err
	}
	global, err := UpdateStorm(cfg, false)
	if err != nil {
		return nil, nil, nil, err
	}
	sizes := map[string]any{}
	for _, r := range rows {
		sizes[r.Name] = map[string]any{
			"subtree_nodes":    r.SubtreeNodes,
			"inc_ns_per_op":    r.IncNsPerOp,
			"full_ns_per_op":   r.FullNsPerOp,
			"speedup":          r.Speedup,
			"mean_dirty_views": r.DirtyViews,
		}
	}
	report := map[string]any{
		"source": "TestMaintainBenchReport",
		"config": map[string]any{
			"scale": cfg.Scale, "seed": cfg.Seed,
			"iters": cfg.Iters, "storm_rounds": cfg.StormRounds,
			"views": maintainViews(),
		},
		"incremental_vs_full": sizes,
		"update_storm": map[string]any{
			"queries": stormQueries(),
			"scoped": map[string]any{
				"hits": scoped.Hits, "queries": scoped.Queries, "hit_rate": scoped.HitRate,
			},
			"global": map[string]any{
				"hits": global.Hits, "queries": global.Queries, "hit_rate": global.HitRate,
			},
		},
		"note": "inc_ns_per_op is the whole InsertSubtree/DeleteSubtree call (structural edit + " +
			"incremental maintenance of all views); full_ns_per_op rematerializes every view over " +
			"the mutated document, sharing one label-index build",
	}
	return report, rows, []StormRow{scoped, global}, nil
}
