package experiments_test

import (
	"strings"
	"testing"

	"xpathviews"
	"xpathviews/internal/experiments"
	"xpathviews/internal/xpath"
)

// TestQuickEnv runs the whole §VI pipeline on the Quick configuration:
// Table III queries must be positive, answerable by at most the stated
// number of views, and every strategy must return identical answers.
func TestQuickEnv(t *testing.T) {
	if testing.Short() {
		t.Skip("environment build is seconds-long")
	}
	env, err := experiments.NewEnv(experiments.Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range env.Queries {
		var canonical string
		var canonicalCount int
		for _, st := range []xpathviews.Strategy{xpathviews.BN, xpathviews.BF, xpathviews.MN, xpathviews.MV, xpathviews.HV} {
			res, err := env.Sys.Answer(qs.XPath, st)
			if err != nil {
				t.Fatalf("%s via %v: %v", qs.Name, st, err)
			}
			if len(res.Answers) == 0 {
				t.Fatalf("%s via %v returned no answers (must be positive)", qs.Name, st)
			}
			got := strings.Join(res.Codes(), ",")
			if canonical == "" {
				canonical, canonicalCount = got, len(res.Answers)
				continue
			}
			if got != canonical {
				t.Fatalf("%s: %v answers differ from BN (%d vs %d)", qs.Name, st, len(res.Answers), canonicalCount)
			}
			if st == xpathviews.MV && len(res.ViewsUsed) > qs.ViewsNeeded {
				t.Errorf("%s: minimum selection used %d views, Table III says %d suffice",
					qs.Name, len(res.ViewsUsed), qs.ViewsNeeded)
			}
		}
	}
}

// TestFigureRows sanity-checks the figure generators' outputs.
func TestFigureRows(t *testing.T) {
	if testing.Short() {
		t.Skip("environment build is seconds-long")
	}
	cfg := experiments.Quick()
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f8 := env.Fig8()
	if len(f8) != 4*5 {
		t.Fatalf("Fig8 rows = %d, want 20", len(f8))
	}
	for _, r := range f8 {
		if r.Err != "" {
			t.Errorf("Fig8 %s/%v failed: %s", r.Query, r.Strategy, r.Err)
		}
	}
	f9 := env.Fig9()
	if len(f9) != 4*3 {
		t.Fatalf("Fig9 rows = %d, want 12", len(f9))
	}
	for _, r := range f9 {
		if r.Strategy == xpathviews.MN && r.Homs != env.Sys.NumViews() {
			t.Errorf("Fig9 %s MN homs = %d, want %d", r.Query, r.Homs, env.Sys.NumViews())
		}
		if r.Strategy == xpathviews.HV && r.Homs >= env.Sys.NumViews()/2 {
			t.Errorf("Fig9 %s HV computed %d homs; the heuristic should be lazy", r.Query, r.Homs)
		}
	}

	fe := experiments.NewFilterEnv(cfg)
	f10 := fe.Fig10()
	for _, r := range f10 {
		if r.AvgUtility < 1.0 {
			t.Errorf("utility below 1 at %d views: %f (V_Q ⊆ V'' must hold)", r.NumViews, r.AvgUtility)
		}
		if r.AvgUtility > 3 {
			t.Errorf("average utility implausibly high at %d views: %f", r.NumViews, r.AvgUtility)
		}
	}
	f11 := fe.Fig11()
	last := f11[len(f11)-1]
	growth := float64(last.NumViews) / float64(f11[0].NumViews)
	if last.ScaleVsFirst >= growth {
		t.Errorf("no sub-linear size scaling: S_k/S_1 = %.2f with %gx views", last.ScaleVsFirst, growth)
	}
	f12 := fe.Fig12()
	if len(f12) != 4*len(cfg.FilterSizes) {
		t.Fatalf("Fig12 rows = %d", len(f12))
	}
}

// TestTableIIIDepths pins the structural constraints the paper states:
// max depth 4 overall and Q2 strictly the shallowest.
func TestTableIIIDepths(t *testing.T) {
	specs := experiments.TableIII()
	depths := make([]int, len(specs))
	for i, qs := range specs {
		depths[i] = xpath.MustParse(qs.XPath).Depth()
		if depths[i] > 4 {
			t.Errorf("%s deeper than max_depth=4: %d", qs.Name, depths[i])
		}
	}
	if depths[1] != 3 {
		t.Errorf("Q2 depth = %d, want 3", depths[1])
	}
	for i, d := range depths {
		if i != 1 && d <= depths[1] {
			t.Errorf("Q2 must be strictly shallowest; %s has depth %d", specs[i].Name, d)
		}
	}
	wantViews := []int{1, 2, 2, 3}
	for i, qs := range specs {
		if qs.ViewsNeeded != wantViews[i] {
			t.Errorf("%s ViewsNeeded = %d, want %d", qs.Name, qs.ViewsNeeded, wantViews[i])
		}
	}
}
