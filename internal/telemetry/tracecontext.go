package telemetry

// W3C Trace Context (traceparent) support: parsing and rendering the
// `traceparent` header so the daemon joins externally-initiated traces
// and stamps its own IDs on unpropagated requests.
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// ID generation uses crypto/rand with an atomic-counter fallback, so
// IDs stay unique even if the entropy source fails.

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// TraceContext is one parsed traceparent header.
type TraceContext struct {
	// TraceID is the 32-lowercase-hex trace identifier.
	TraceID string
	// ParentID is the 16-lowercase-hex id of the caller's span.
	ParentID string
	// Sampled reports the sampled flag (flags & 0x01).
	Sampled bool
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// version 00 (and unknown future versions with the 00 layout), rejects
// malformed lengths, non-hex digits and all-zero IDs.
func ParseTraceparent(s string) (TraceContext, bool) {
	var tc TraceContext
	// version(2) - traceid(32) - parentid(16) - flags(2) = 55 bytes.
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, false
	}
	ver, traceID, parentID, flags := s[0:2], s[3:35], s[36:52], s[53:55]
	if !isHexLower(ver) || !isHexLower(traceID) || !isHexLower(parentID) || !isHexLower(flags) {
		return tc, false
	}
	if ver == "ff" || allZero(traceID) || allZero(parentID) {
		return tc, false
	}
	tc.TraceID = traceID
	tc.ParentID = parentID
	tc.Sampled = flags[1] == '1' || flags[1] == '3' || flags[1] == '5' || flags[1] == '7' ||
		flags[1] == '9' || flags[1] == 'b' || flags[1] == 'd' || flags[1] == 'f'
	return tc, true
}

// FormatTraceparent renders a version-00 traceparent header with the
// sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// isHexLower reports that s is entirely lowercase hex digits.
func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// allZero reports that s is entirely '0'.
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// idFallback distinguishes generated IDs when the entropy source fails.
var idFallback atomic.Uint64

// randomHex returns n bytes of entropy as 2n lowercase hex digits,
// never all-zero.
func randomHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil || allZeroBytes(buf) {
		ctr := idFallback.Add(1)
		for i := 0; i < n && i < 8; i++ {
			buf[i] = byte(ctr >> (8 * i))
		}
		buf[n-1] |= 1
	}
	return hex.EncodeToString(buf)
}

func allZeroBytes(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// NewTraceID generates a 16-byte (32 hex) W3C trace ID.
func NewTraceID() string { return randomHex(16) }

// NewSpanID generates an 8-byte (16 hex) W3C span/parent ID.
func NewSpanID() string { return randomHex(8) }
