package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z").Observe(5)
	r.GaugeFunc("f", func() int64 { return 1 })
	if c.Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil registry metrics must stay zero")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry WriteText: %q, %v", b.String(), err)
	}
	var sl *SlowLog
	sl.SetThreshold(time.Second)
	sl.Record(SlowQuery{})
	if sl.Threshold() != 0 || sl.Snapshot() != nil {
		t.Fatal("nil slowlog must be inert")
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {1000, 0}, {1001, 1}, {2000, 1}, {2001, 2},
		{4000, 2}, {1 << 62, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	// 100 observations at ~10µs, 5 at ~1ms: p50 must sit in the 10µs
	// region, p99 in the 1ms region.
	for i := 0; i < 100; i++ {
		h.Observe(10_000)
	}
	for i := 0; i < 5; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	if s.Count != 105 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.SumNs != 100*10_000+5*1_000_000 {
		t.Fatalf("sum = %d", s.SumNs)
	}
	if s.P50Ns < 5_000 || s.P50Ns > 20_000 {
		t.Errorf("p50 = %dns, want ~10µs", s.P50Ns)
	}
	if s.P99Ns < 500_000 || s.P99Ns > 2_000_000 {
		t.Errorf("p99 = %dns, want ~1ms", s.P99Ns)
	}
	if s.P50Ns > s.P95Ns || s.P95Ns > s.P99Ns {
		t.Errorf("percentiles not monotone: %d %d %d", s.P50Ns, s.P95Ns, s.P99Ns)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(i) * 100)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_live").Set(7)
	r.GaugeFunc("c_dyn", func() int64 { return 42 })
	r.Histogram("lat_ns").Observe(5000)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"a_live 7\n", "b_total 2\n", "c_dyn 42\n", "lat_ns_count 1\n", "lat_ns_sum_ns 5000\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, out)
		}
	}
	// Sorted: a_live before b_total before c_dyn.
	if strings.Index(out, "a_live") > strings.Index(out, "b_total") ||
		strings.Index(out, "b_total") > strings.Index(out, "c_dyn") {
		t.Errorf("WriteText not sorted:\n%s", out)
	}
	var j strings.Builder
	if err := r.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), "\"b_total\": 2") {
		t.Errorf("WriteJSON missing counter:\n%s", j.String())
	}
}

// TestWriteTextDeterministic pins the /metrics exposition contract the
// serving daemon and golden tests rely on: repeated scrapes of the same
// registry state are byte-identical (map iteration order must not leak
// through), lines are fully sorted by exposed name (histogram expansion
// included), and metrics of different kinds sharing a name keep a stable
// relative order.
func TestWriteTextDeterministic(t *testing.T) {
	r := NewRegistry()
	// Enough names to make map-order leakage overwhelmingly visible,
	// including a histogram whose expanded rows interleave with plain
	// metrics, and a counter/gauge name collision.
	for i := 0; i < 40; i++ {
		r.Counter(fmt.Sprintf("m%02d_total", i)).Add(int64(i))
	}
	r.Histogram("m10_ns").Observe(3000) // expands between m10_total and m11_total
	r.Counter("dup").Inc()
	r.Gauge("dup").Set(9)
	r.GaugeFunc("m20_live", func() int64 { return 5 })

	var first strings.Builder
	if err := r.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if b.String() != first.String() {
			t.Fatalf("WriteText not deterministic:\n--- first ---\n%s--- run %d ---\n%s", first.String(), i, b.String())
		}
	}
	lines := strings.Split(strings.TrimSuffix(first.String(), "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		prev := strings.SplitN(lines[i-1], " ", 2)[0]
		cur := strings.SplitN(lines[i], " ", 2)[0]
		if prev > cur {
			t.Fatalf("WriteText lines not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
	if !strings.Contains(first.String(), "m10_ns_p50_ns") {
		t.Fatalf("histogram rows missing:\n%s", first.String())
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h").Observe(100)
	r.Reset()
	if r.Counter("c").Value() != 0 {
		t.Fatal("counter not reset")
	}
	if r.Histogram("h").Snapshot().Count != 0 {
		t.Fatal("histogram not reset")
	}
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace("answer")
	root := tr.Root()
	root.SetAttr("query", "//a/b")
	parse := root.Child("parse")
	parse.End()
	plan := root.Child("plan")
	vf := plan.Child("vfilter")
	vf.SetAttr("candidates", 2)
	vf.End()
	plan.SetAttr("cache", "miss")
	plan.End()
	root.Event("done")
	root.End()

	if got := tr.Find("vfilter"); got == nil {
		t.Fatal("Find(vfilter) = nil")
	} else if v, ok := got.Attr("candidates"); !ok || v != 2 {
		t.Fatalf("vfilter candidates attr = %v, %v", v, ok)
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "parse" || kids[1].Name() != "plan" {
		t.Fatalf("root children = %v", kids)
	}
	if root.Duration() <= 0 {
		t.Fatal("root duration not measured")
	}
	txt := tr.Text()
	for _, want := range []string{"answer", "├─ parse", "└─ plan", "   └─ vfilter", "cache=miss", "done"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text missing %q in:\n%s", want, txt)
		}
	}
	buf, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), "\"vfilter\"") {
		t.Errorf("JSON missing vfilter:\n%s", buf)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Root()
	sp = sp.Child("x") // still nil
	sp.SetAttr("k", 1)
	sp.Event("e")
	sp.Err(nil)
	sp.End()
	if sp != nil || tr.Find("x") != nil || tr.Text() != "" {
		t.Fatal("nil trace must be inert")
	}
	if _, err := tr.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceChildTimed(t *testing.T) {
	tr := NewTrace("root")
	start := time.Now()
	c := tr.Root().ChildTimed("refine", start, 123*time.Microsecond)
	if c.Duration() != 123*time.Microsecond {
		t.Fatalf("ChildTimed duration = %v", c.Duration())
	}
	if !strings.Contains(tr.Text(), "refine 123µs") {
		t.Fatalf("text:\n%s", tr.Text())
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(4)
	if l.Threshold() != 0 {
		t.Fatal("threshold must default to 0 (disabled)")
	}
	l.SetThreshold(10 * time.Millisecond)
	if l.Threshold() != 10*time.Millisecond {
		t.Fatal("threshold not set")
	}
	for i := 0; i < 6; i++ {
		l.Record(SlowQuery{Query: string(rune('a' + i))})
	}
	got := l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	// Oldest-first: entries c, d, e, f survive.
	want := []string{"c", "d", "e", "f"}
	for i, e := range got {
		if e.Query != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, e.Query, want[i])
		}
	}
	if l.Logged() != 6 {
		t.Fatalf("logged = %d, want 6", l.Logged())
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(SlowQuery{Query: "q"})
			}
		}()
	}
	wg.Wait()
	if l.Logged() != 800 {
		t.Fatalf("logged = %d", l.Logged())
	}
	if len(l.Snapshot()) != 8 {
		t.Fatalf("snapshot len = %d", len(l.Snapshot()))
	}
}
