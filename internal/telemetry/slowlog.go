package telemetry

// Slow-query log: a fixed-capacity ring buffer of the most recent
// queries whose total latency crossed a configurable threshold. The
// per-call cost while disabled (threshold 0) is one atomic load; the
// ring's mutex is taken only for queries that are already slow, so it
// never contends on the fast path.

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowQuery is one logged slow call, carrying the same stage accounting
// the Result exposes so a slow entry is diagnosable without re-running
// the query under a tracer.
type SlowQuery struct {
	// Time is when the call finished.
	Time time.Time `json:"time"`
	// Query is the query's source text (or the minimized pattern's
	// rendering when the call was pattern-based).
	Query string `json:"query"`
	// Tenant names the tenant whose system served the call ("" for
	// unlabeled library use). Stamped by the ring's label (SetLabel).
	Tenant string `json:"tenant,omitempty"`
	// TraceID is the W3C trace ID the call ran under ("" when the
	// request carried none), joining the entry to an exported trace.
	TraceID string `json:"trace_id,omitempty"`
	// Strategy names the answering strategy; Rung is set for resilient
	// calls.
	Strategy string `json:"strategy"`
	Rung     string `json:"rung,omitempty"`
	// Err is the failure, if the call failed.
	Err string `json:"err,omitempty"`
	// CacheHit reports that the call served from a cached plan.
	CacheHit bool `json:"cache_hit"`
	// Views lists the IDs of the materialized views the rewriting
	// joined (empty for non-view strategies and failed calls) — a slow
	// entry names the exact views whose fragments were on the floor.
	Views []int `json:"views,omitempty"`
	// Total and the per-stage durations mirror the Result's *Nanos
	// fields.
	Total   time.Duration `json:"total"`
	Parse   time.Duration `json:"parse"`
	Filter  time.Duration `json:"filter"`
	Select  time.Duration `json:"select"`
	Rewrite time.Duration `json:"rewrite"`
}

// SlowLog is the ring. The zero value is unusable; build with
// NewSlowLog. A nil *SlowLog is a no-op.
type SlowLog struct {
	threshold atomic.Int64 // ns; 0 = disabled
	logged    atomic.Int64 // total entries ever recorded
	label     atomic.Value // string: tenant stamped on every entry

	mu   sync.Mutex
	buf  []SlowQuery
	next int // ring write cursor
	full bool
}

// DefaultSlowLogCapacity is the ring size used by the serving layer.
const DefaultSlowLogCapacity = 128

// NewSlowLog builds a ring holding the last capacity entries
// (non-positive capacity picks DefaultSlowLogCapacity).
func NewSlowLog(capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogCapacity
	}
	return &SlowLog{buf: make([]SlowQuery, capacity)}
}

// SetThreshold arms the log: calls whose total latency is >= d get
// recorded. d <= 0 disables logging.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	l.threshold.Store(int64(d))
}

// Threshold returns the current threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.threshold.Load())
}

// SetLabel stamps every subsequently recorded entry with a tenant name
// (entries that already carry one keep it).
func (l *SlowLog) SetLabel(tenant string) {
	if l == nil {
		return
	}
	l.label.Store(tenant)
}

// Label returns the ring's tenant stamp ("" when unset).
func (l *SlowLog) Label() string {
	if l == nil {
		return ""
	}
	if v, ok := l.label.Load().(string); ok {
		return v
	}
	return ""
}

// Record appends one entry, overwriting the oldest when full. Callers
// check Threshold first; Record itself does not filter.
func (l *SlowLog) Record(e SlowQuery) {
	if l == nil {
		return
	}
	if e.Tenant == "" {
		if v, ok := l.label.Load().(string); ok {
			e.Tenant = v
		}
	}
	l.logged.Add(1)
	l.mu.Lock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Logged returns how many entries have ever been recorded (including
// ones the ring has since overwritten).
func (l *SlowLog) Logged() int64 {
	if l == nil {
		return 0
	}
	return l.logged.Load()
}

// Snapshot returns the retained entries, oldest first.
func (l *SlowLog) Snapshot() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		out := make([]SlowQuery, l.next)
		copy(out, l.buf[:l.next])
		return out
	}
	out := make([]SlowQuery, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}
