// Package telemetry is the serving pipeline's observability core: an
// always-cheap metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms with percentile snapshots), a per-query trace span
// tree, and a slow-query ring buffer.
//
// Design constraints, in order:
//
//  1. The disabled path must cost nothing. Every type in this package is
//     nil-safe — a nil *Counter, *Histogram, *Span or *Registry turns
//     every method into a no-op — so the serving layer can thread nil
//     through its hot path without branching on a config struct.
//  2. The enabled metrics path must be allocation-free. Counters, gauges
//     and histograms are fixed-size atomics; recording never takes a
//     lock or touches a map. Name→metric resolution happens once at
//     registration, not per observation.
//  3. Tracing may allocate (it builds a tree), because it is per-call
//     opt-in: a query runs with a span tree only when the caller hands
//     one in (Options.Trace, System.Explain).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value; 0 for a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: bucket i counts observations v (in
// nanoseconds) with v <= histBase<<i; the last bucket is the overflow.
// histBase = 1µs and 26 doubling buckets span 1µs … ~33.5s, which covers
// everything from a plan-cache hit to a pathological exact selection.
const (
	histBase    = 1000 // ns: first bucket upper bound (1µs)
	histBuckets = 27   // 26 doubling buckets + overflow
)

// Histogram is a fixed-bucket latency histogram over nanosecond
// observations. Recording is one atomic add plus two bookkeeping adds;
// there is no lock and no allocation. A nil *Histogram is a no-op.
//
// Each bucket can additionally hold one trace-ID exemplar (see
// ObserveExemplar): a concrete observation linking the bucket to an
// exported trace, so a p99 spike resolves to a real request.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64

	// exemplars[i] is bucket i's retained exemplar; exSeen[i] is the
	// per-bucket ordinal driving the sampling rule.
	exemplars [histBuckets]atomic.Pointer[Exemplar]
	exSeen    [histBuckets]atomic.Int64
}

// Exemplar links one histogram observation to the trace that produced
// it.
type Exemplar struct {
	// TraceID is the W3C trace ID of the request whose latency landed
	// in the bucket.
	TraceID string `json:"trace_id"`
	// ValueNs is the observed value.
	ValueNs int64 `json:"value_ns"`
}

// exemplarEvery is the steady-state exemplar sampling stride: a
// bucket's first observation is always retained, then every
// exemplarEvery-th replaces it, keeping exemplars fresh on hot buckets
// without allocating per observation.
const exemplarEvery = 64

// bucketIndex maps a nanosecond value onto its bucket.
func bucketIndex(ns int64) int {
	if ns <= histBase {
		return 0
	}
	// v <= histBase<<i  ⇔  ceil(v/histBase) <= 1<<i.
	q := uint64((ns + histBase - 1) / histBase)
	i := bits.Len64(q - 1)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBound returns bucket i's upper bound in nanoseconds (the
// overflow bucket reports twice the last finite bound).
func bucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return histBase << histBuckets
	}
	return histBase << i
}

// Observe records one duration in nanoseconds. Non-positive values are
// clamped into the first bucket (a stage can legitimately measure 0 on
// a coarse clock).
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// ObserveExemplar records one duration and, when traceID is non-empty,
// considers it as the owning bucket's exemplar under the sampling rule
// (first observation, then every exemplarEvery-th). The metric path is
// identical to Observe; only a sampled-in exemplar allocates.
func (h *Histogram) ObserveExemplar(ns int64, traceID string) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	i := bucketIndex(ns)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	if traceID == "" {
		return
	}
	if n := h.exSeen[i].Add(1); n == 1 || n%exemplarEvery == 0 {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, ValueNs: ns})
	}
}

// BucketExemplar is one bucket's retained exemplar with the bucket's
// upper bound and current count.
type BucketExemplar struct {
	BoundNs  int64    `json:"bound_ns"`
	Count    int64    `json:"count"`
	Exemplar Exemplar `json:"exemplar"`
}

// Exemplars returns the retained exemplars of every bucket that has
// one, in ascending bucket order. The last entry is the histogram's
// current tail (slowest) exemplar — the one a p99 investigation wants.
func (h *Histogram) Exemplars() []BucketExemplar {
	if h == nil {
		return nil
	}
	var out []BucketExemplar
	for i := 0; i < histBuckets; i++ {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, BucketExemplar{
				BoundNs:  bucketBound(i),
				Count:    h.buckets[i].Load(),
				Exemplar: *e,
			})
		}
	}
	return out
}

// TailExemplar returns the exemplar of the highest populated bucket
// (the slowest retained observation), or a zero Exemplar and false.
func (h *Histogram) TailExemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	for i := histBuckets - 1; i >= 0; i-- {
		if e := h.exemplars[i].Load(); e != nil {
			return *e, true
		}
	}
	return Exemplar{}, false
}

// HistSnapshot is a point-in-time read of a histogram. Percentiles are
// linearly interpolated inside the owning bucket, so they are upper-
// bound estimates with at most one bucket width of error.
type HistSnapshot struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// CountHistSnapshot is a point-in-time read of an unitless histogram
// (HistogramCounts): identical layout to HistSnapshot, rendered without
// the _ns unit suffixes.
type CountHistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Snapshot reads the histogram. Buckets are loaded individually, so a
// snapshot taken during concurrent writes is approximate (never torn
// per bucket, possibly off by in-flight observations across buckets).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	if total == 0 {
		return s
	}
	s.P50Ns = percentile(&counts, total, 0.50)
	s.P95Ns = percentile(&counts, total, 0.95)
	s.P99Ns = percentile(&counts, total, 0.99)
	return s
}

// percentile finds the bucket holding the p-quantile observation and
// interpolates linearly between the bucket's bounds.
func percentile(counts *[histBuckets]int64, total int64, p float64) int64 {
	rank := int64(p * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := int64(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			frac := float64(rank-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	return bucketBound(histBuckets - 1)
}

// Registry holds named metrics. Lookups (Counter, Gauge, Histogram) are
// get-or-create and intended for registration time — hot paths should
// resolve their metrics once and hold the pointers. A nil *Registry
// returns nil metrics, which are themselves no-ops, so "disabled" is
// just a nil registry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	gaugeFuncs map[string]func() int64
	// unitless marks histograms registered via HistogramCounts: their
	// exposition rows drop the _ns unit suffixes (the observations are
	// counts, not nanoseconds). Allocated lazily.
	unitless map[string]bool

	// Labeled families (see labels.go); allocated lazily so the zero
	// maps cost nothing for registries that never use labels.
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		hists:      map[string]*Histogram{},
		gaugeFuncs: map[string]func() int64{},
	}
}

// std is the package-level default registry; systems record here unless
// given their own.
var std = NewRegistry()

// Default returns the package-level default registry.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramCounts returns the named histogram, creating it on first
// use, and marks it unitless: the bucket layout is the same
// doubling-bucket scheme, but WriteText/WriteJSON render its rows as
// _count/_sum/_p50/_p95/_p99 — no _ns suffix — because observations are
// counts (fan-outs, hit tallies), not durations.
func (r *Registry) HistogramCounts(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	if r.unitless == nil {
		r.unitless = map[string]bool{}
	}
	r.unitless[name] = true
	return h
}

// GaugeFunc registers a callback evaluated at exposition time (WriteText
// / WriteJSON) — for values owned elsewhere, like a cache's entry count.
// Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Reset zeroes every registered metric (counters, gauges, histograms)
// and drops gauge funcs. Intended for tests.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
			h.exemplars[i].Store(nil)
			h.exSeen[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
	r.gaugeFuncs = map[string]func() int64{}
}

// snapshotLine is one exposition row.
type snapshotLine struct {
	name  string
	value any // int64 or HistSnapshot
}

// snapshot collects every metric under the lock, in deterministic
// order: kinds are gathered in a fixed sequence (counters, gauges, gauge
// funcs, histograms), each sorted by name, then stably sorted by name
// overall — so two metrics of different kinds sharing a name always
// appear in the same relative order, run after run. Histograms expand to
// one HistSnapshot value.
func (r *Registry) snapshot() []snapshotLine {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	lines := make([]snapshotLine, 0,
		len(r.counters)+len(r.gauges)+len(r.hists)+len(r.gaugeFuncs))
	for _, n := range sortedKeys(r.counters) {
		lines = append(lines, snapshotLine{n, r.counters[n].Value()})
	}
	for _, n := range sortedKeys(r.gauges) {
		lines = append(lines, snapshotLine{n, r.gauges[n].Value()})
	}
	for _, n := range sortedKeys(r.gaugeFuncs) {
		lines = append(lines, snapshotLine{n, r.gaugeFuncs[n]()})
	}
	for _, n := range sortedKeys(r.hists) {
		hs := r.hists[n].Snapshot()
		if r.unitless[n] {
			lines = append(lines, snapshotLine{n, CountHistSnapshot{
				Count: hs.Count, Sum: hs.SumNs, P50: hs.P50Ns, P95: hs.P95Ns, P99: hs.P99Ns}})
		} else {
			lines = append(lines, snapshotLine{n, hs})
		}
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	return lines
}

// sortedKeys returns m's keys in sorted order, lifting the snapshot out
// of map iteration order (which changes per run).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// WriteText writes every metric as expvar-style "name value" lines in
// deterministic, fully sorted order: histograms expand to _count/
// _sum_ns/_p50_ns/_p95_ns/_p99_ns rows *before* sorting, so the emitted
// lines are lexicographic by exposed name and a /metrics scrape (or a
// golden test) is byte-stable across runs for the same metric values.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.snapshot()
	rows := make([]snapshotLine, 0, len(snap))
	for _, l := range snap {
		switch v := l.value.(type) {
		case HistSnapshot:
			rows = append(rows,
				snapshotLine{l.name + "_count", v.Count},
				snapshotLine{l.name + "_sum_ns", v.SumNs},
				snapshotLine{l.name + "_p50_ns", v.P50Ns},
				snapshotLine{l.name + "_p95_ns", v.P95Ns},
				snapshotLine{l.name + "_p99_ns", v.P99Ns})
		case CountHistSnapshot:
			rows = append(rows,
				snapshotLine{l.name + "_count", v.Count},
				snapshotLine{l.name + "_sum", v.Sum},
				snapshotLine{l.name + "_p50", v.P50},
				snapshotLine{l.name + "_p95", v.P95},
				snapshotLine{l.name + "_p99", v.P99})
		default:
			rows = append(rows, l)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, l := range rows {
		if _, err := fmt.Fprintf(w, "%s %v\n", l.name, l.value); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes every metric as one JSON object keyed by name;
// histograms appear as {count, sum_ns, p50_ns, p95_ns, p99_ns}.
func (r *Registry) WriteJSON(w io.Writer) error {
	m := map[string]any{}
	for _, l := range r.snapshot() {
		m[l.name] = l.value
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
