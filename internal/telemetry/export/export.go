// Package export is the bounded asynchronous trace exporter: finished
// span trees are handed off on a fixed-capacity channel and written as
// JSONL (one {"trace_id", "root"} object per line) by a single
// background goroutine.
//
// Backpressure policy: the serving path NEVER blocks on the sink. When
// the queue is full — a slow disk, a wedged pipe — Export drops the
// trace and counts it; memory stays bounded by the queue capacity.
// Dropping is the correct failure mode for diagnostics: a trace is a
// sample, a stalled request is an outage.
package export

import (
	"bufio"
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"xpathviews/internal/telemetry"
)

// DefaultQueueDepth bounds the export queue when the caller passes a
// non-positive depth.
const DefaultQueueDepth = 256

// Exporter drains traces to a JSONL sink. Build with New; stop with
// Close. A nil *Exporter is a no-op (Export reports false).
type Exporter struct {
	ch     chan *telemetry.Trace
	done   chan struct{}
	w      *bufio.Writer
	c      io.Closer   // non-nil when the sink should be closed with us
	closed atomic.Bool // intake shut; the channel itself is never closed

	exported  atomic.Int64
	dropped   atomic.Int64
	writeErrs atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// New starts an exporter writing to w with the given queue depth
// (non-positive picks DefaultQueueDepth). If w is also an io.Closer it
// is closed by Close.
func New(w io.Writer, queueDepth int) *Exporter {
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	e := &Exporter{
		ch:   make(chan *telemetry.Trace, queueDepth),
		done: make(chan struct{}),
		w:    bufio.NewWriter(w),
	}
	if c, ok := w.(io.Closer); ok {
		e.c = c
	}
	go e.run()
	return e
}

// run is the single writer goroutine: encode, write, flush on drain. A
// nil trace is the close sentinel — everything enqueued before it has
// been written by the time run exits.
func (e *Exporter) run() {
	defer close(e.done)
	for t := range e.ch {
		if t == nil {
			break
		}
		line, err := t.ExportJSON()
		if err != nil {
			e.writeErrs.Add(1)
			continue
		}
		line = append(line, '\n')
		if _, err := e.w.Write(line); err != nil {
			e.writeErrs.Add(1)
			continue
		}
		e.exported.Add(1)
		// Flush whenever the queue is empty so a tail -f on the sink sees
		// traces promptly without paying a syscall per trace under load.
		if len(e.ch) == 0 {
			if err := e.w.Flush(); err != nil {
				e.writeErrs.Add(1)
			}
		}
	}
	if err := e.w.Flush(); err != nil {
		e.writeErrs.Add(1)
	}
}

// Export enqueues one trace without blocking. It reports false (and
// counts a drop) when the queue is full or the exporter is nil/closed.
func (e *Exporter) Export(t *telemetry.Trace) bool {
	if e == nil || t == nil {
		return false
	}
	if e.closed.Load() {
		e.dropped.Add(1)
		return false
	}
	select {
	case e.ch <- t:
		return true
	default:
		e.dropped.Add(1)
		return false
	}
}

// Close stops intake, drains the queue, flushes, and closes a closable
// sink. Idempotent; Export after Close drops.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		e.ch <- nil // sentinel: run drains everything enqueued before it
		<-e.done
		if e.c != nil {
			e.closeErr = e.c.Close()
		}
		if e.closeErr == nil && e.writeErrs.Load() > 0 {
			e.closeErr = errors.New("export: sink write errors (see WriteErrors)")
		}
	})
	return e.closeErr
}

// Exported returns how many traces were written to the sink.
func (e *Exporter) Exported() int64 {
	if e == nil {
		return 0
	}
	return e.exported.Load()
}

// Dropped returns how many traces were discarded because the queue was
// full (or the exporter closed).
func (e *Exporter) Dropped() int64 {
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// WriteErrors returns how many traces failed to encode or write.
func (e *Exporter) WriteErrors() int64 {
	if e == nil {
		return 0
	}
	return e.writeErrs.Load()
}

// QueueLen returns the current queue occupancy (for gauges).
func (e *Exporter) QueueLen() int64 {
	if e == nil {
		return 0
	}
	return int64(len(e.ch))
}
