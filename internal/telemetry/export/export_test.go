package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"xpathviews/internal/telemetry"
)

func mkTrace(id string) *telemetry.Trace {
	tr := telemetry.NewTrace("query")
	tr.SetID(id)
	sp := tr.Root().Child("plan")
	sp.SetAttr("cache", "hit")
	sp.End()
	tr.Root().End()
	return tr
}

func TestExportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := New(&buf, 8)
	if !e.Export(mkTrace("aaaa")) || !e.Export(mkTrace("bbbb")) {
		t.Fatal("Export rejected with a free queue")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var got struct {
		TraceID string `json:"trace_id"`
		Root    struct {
			Name     string            `json:"name"`
			Children []json.RawMessage `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if got.TraceID != "aaaa" || got.Root.Name != "query" || len(got.Root.Children) != 1 {
		t.Fatalf("line 0 = %+v", got)
	}
	if e.Exported() != 2 || e.Dropped() != 0 {
		t.Fatalf("exported=%d dropped=%d", e.Exported(), e.Dropped())
	}
	// Idempotent close; export after close drops.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Export(mkTrace("cccc")) || e.Dropped() != 1 {
		t.Fatal("Export after Close must drop")
	}
}

func TestNilExporter(t *testing.T) {
	var e *Exporter
	if e.Export(mkTrace("x")) {
		t.Fatal("nil exporter must report false")
	}
	if e.Close() != nil || e.Exported() != 0 || e.Dropped() != 0 || e.QueueLen() != 0 {
		t.Fatal("nil exporter accessors must be inert")
	}
}

// gatedWriter blocks every Write until the gate opens — a wedged sink.
type gatedWriter struct {
	gate chan struct{}
	buf  bytes.Buffer
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.gate
	return g.buf.Write(p)
}

// TestExportBackpressure wedges the sink and floods the queue: Export
// must stay non-blocking, memory must stay bounded by the queue depth
// (excess traces are dropped and counted), and once the sink recovers
// everything accepted must reach it.
func TestExportBackpressure(t *testing.T) {
	const depth, total = 4, 40
	gw := &gatedWriter{gate: make(chan struct{})}
	e := New(gw, depth)

	start := time.Now()
	accepted := 0
	for i := 0; i < total; i++ {
		if e.Export(mkTrace("t")) {
			accepted++
		}
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("Export stalled on a wedged sink: %v for %d calls", el, total)
	}
	// The queue (plus the one trace the writer goroutine may hold, plus
	// whatever it buffered before the first flush blocked) bounds
	// acceptance; the rest must be counted as drops, not queued.
	if accepted == total {
		t.Fatalf("all %d traces accepted; the queue is not bounded", total)
	}
	if got := e.Dropped(); got != int64(total-accepted) {
		t.Fatalf("dropped = %d, want %d", got, total-accepted)
	}
	if got := e.QueueLen(); got > depth {
		t.Fatalf("queue len = %d, want <= %d", got, depth)
	}

	close(gw.gate) // sink recovers
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e.Exported(); got != int64(accepted) {
		t.Fatalf("exported = %d, want %d (accepted)", got, accepted)
	}
	lines := strings.Split(strings.TrimSpace(gw.buf.String()), "\n")
	if len(lines) != accepted {
		t.Fatalf("sink lines = %d, want %d", len(lines), accepted)
	}
}
