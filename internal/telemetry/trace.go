package telemetry

// Per-query trace spans. A Trace owns one span tree covering a single
// serving-layer call; the serving layer opens a child span per pipeline
// stage (parse → plan{vfilter, select} → rewrite → collect) and
// annotates each with stage-specific attributes (candidate counts,
// worker counts, cache status, errors).
//
// Tracing is per-call opt-in and may allocate. All methods are nil-safe
// on both *Trace and *Span, so untraced calls pay only nil checks. A
// Trace must not be reused across calls.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Attr is one key=value span annotation.
type Attr struct {
	Key   string
	Value any
}

// Event is one timestamped point annotation inside a span.
type Event struct {
	// At is the offset from the span's start.
	At  time.Duration
	Msg string
}

// Trace is one call's span tree. Safe for concurrent span creation and
// annotation (a single mutex guards the whole tree — tracing is a
// diagnostic path, not a throughput path).
type Trace struct {
	mu   sync.Mutex
	id   string // W3C trace ID (32 lowercase hex); "" = unpropagated
	root *Span
}

// SetID attaches a W3C trace ID (see tracecontext.go). The ID travels
// with the exported span tree and joins the trace to metrics exemplars
// and slow-log entries.
func (t *Trace) SetID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the attached trace ID ("" for nil or unpropagated traces).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// NewTrace starts a trace whose root span has the given name.
func NewTrace(name string) *Trace {
	t := &Trace{}
	t.root = &Span{tr: t, name: name, start: time.Now()}
	return t
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Span is one timed node of the tree.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	events   []Event
	children []*Span
}

// Child opens a sub-span. Nil-safe: a nil receiver returns nil, so the
// untraced path composes freely.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// ChildTimed attaches an already-measured sub-span of the given
// duration — used for stages whose timing is reported by a callee
// (e.g. the rewrite pipeline's refine/join/extract split) rather than
// measured around a call. start positions it inside the parent.
func (s *Span) ChildTimed(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: start, dur: d, ended: true}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span; later Ends are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// Event records a point annotation at the current time offset.
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.events = append(s.events, Event{At: time.Since(s.start), Msg: msg})
	s.tr.mu.Unlock()
}

// Err records a non-nil error as both an "err" attribute and an event.
func (s *Span) Err(err error) {
	if s == nil || err == nil {
		return
	}
	msg := err.Error()
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: "err", Value: msg})
	s.events = append(s.events, Event{At: time.Since(s.start), Msg: "error: " + msg})
	s.tr.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's measured duration (time since start for a
// still-open span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Children returns a copy of the child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Attr returns the last value recorded under key.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value, true
		}
	}
	return nil, false
}

// Events returns a copy of the span's events.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Find returns the first span named name in depth-first order (the
// root included), or nil.
func (t *Trace) Find(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return findSpan(t.root, name)
}

func findSpan(s *Span, name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.children {
		if m := findSpan(c, name); m != nil {
			return m
		}
	}
	return nil
}

// WriteText renders the tree, one span per line:
//
//	answer 123µs query=//a/b strategy=HV
//	├─ parse 2µs
//	└─ plan 45µs cache=miss
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	writeSpan(&b, t.root, "", "")
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the tree to a string.
func (t *Trace) Text() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.WriteText(&b)
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(s.name)
	d := s.dur
	if !s.ended {
		d = time.Since(s.start)
	}
	fmt.Fprintf(b, " %v", d)
	for _, a := range s.attrs {
		fmt.Fprintf(b, " %s=%v", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, e := range s.events {
		fmt.Fprintf(b, "%s· @%v %s\n", childPrefix, e.At, e.Msg)
	}
	for i, c := range s.children {
		last := i == len(s.children)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		writeSpan(b, c, childPrefix+branch, childPrefix+cont)
	}
}

// spanJSON is the exported JSON shape of one span.
type spanJSON struct {
	Name     string         `json:"name"`
	DurNs    int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Events   []string       `json:"events,omitempty"`
	Children []spanJSON     `json:"children,omitempty"`
}

func spanToJSON(s *Span) spanJSON {
	out := spanJSON{Name: s.name, DurNs: int64(s.dur)}
	if !s.ended {
		out.DurNs = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, e := range s.events {
		out.Events = append(out.Events, fmt.Sprintf("@%v %s", e.At, e.Msg))
	}
	for _, c := range s.children {
		out.Children = append(out.Children, spanToJSON(c))
	}
	return out
}

// JSON renders the span tree as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.MarshalIndent(spanToJSON(t.root), "", "  ")
}

// exportJSON is the one-line export shape: the trace ID plus the span
// tree, compact, for JSONL sinks.
type exportJSON struct {
	TraceID string   `json:"trace_id,omitempty"`
	Root    spanJSON `json:"root"`
}

// ExportJSON renders the trace as one compact JSON object carrying the
// trace ID — the JSONL exporter's line format.
func (t *Trace) ExportJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.Marshal(exportJSON{TraceID: t.id, Root: spanToJSON(t.root)})
}
