package telemetry

// Labeled metric families. A family (CounterVec, GaugeVec,
// HistogramVec) owns one low-cardinality label dimension — tenant,
// rung, strategy, shed reason — and hands out ordinary *Counter /
// *Gauge / *Histogram children per label value. Children are plain
// registry metrics under a composite exposed name
// (`name{label="value"}`), so the existing deterministic WriteText /
// WriteJSON exposition, Reset and snapshotting all apply unchanged.
//
// Cost model: With(value) is one lock-free sync.Map load after a
// value's first use — zero allocations — so a serving path may resolve
// per-request labels inline. First use of a value takes the registry
// lock once to register the child. Hot paths that know their label up
// front (a tenant fixed at construction) should still pre-resolve and
// hold the child pointer, same as unlabeled metrics.
//
// Cardinality policy: label values must come from a small closed set
// (configured tenants, the fixed rung/strategy/reason enums). Families
// never evict; an unbounded value stream (query text, user IDs) would
// grow the registry without bound. Callers enforce this — the serving
// layer only labels by names it validated at config time.

import (
	"strings"
	"sync"
)

// WithLabel composes an exposed metric name with one more label:
//
//	WithLabel("xpv_answers_total", "tenant", "acme")
//	  = `xpv_answers_total{tenant="acme"}`
//	WithLabel(`xpv_rung_total{rung="HV"}`, "tenant", "acme")
//	  = `xpv_rung_total{rung="HV",tenant="acme"}`
//
// Labels are appended in composition order; compose in a fixed order
// for a deterministic exposition. Quotes and backslashes in the value
// are escaped.
func WithLabel(name, key, value string) string {
	var b strings.Builder
	b.Grow(len(name) + len(key) + len(value) + 8)
	if strings.HasSuffix(name, "}") {
		b.WriteString(name[:len(name)-1])
		b.WriteByte(',')
	} else {
		b.WriteString(name)
		b.WriteByte('{')
	}
	b.WriteString(key)
	b.WriteString(`="`)
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// vec is the shared family core: name+label key, the owning registry,
// and a lock-free child cache keyed by label value.
type vec struct {
	reg      *Registry
	name     string
	label    string
	children sync.Map // label value -> child metric
}

// load returns the cached child for value (nil, false when unseen).
func (v *vec) load(value string) (any, bool) { return v.children.Load(value) }

// childName is the composite exposed name for one label value.
func (v *vec) childName(value string) string { return WithLabel(v.name, v.label, value) }

// CounterVec is a counter family over one label dimension. A nil
// *CounterVec hands out nil (no-op) counters.
type CounterVec struct{ vec }

// CounterVec returns the named counter family, creating it on first
// use. The same (name, label) pair always yields the same family.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counterVecs == nil {
		r.counterVecs = map[string]*CounterVec{}
	}
	key := name + "\x00" + label
	v, ok := r.counterVecs[key]
	if !ok {
		v = &CounterVec{vec{reg: r, name: name, label: label}}
		r.counterVecs[key] = v
	}
	return v
}

// With returns the counter for one label value, registering it on
// first use. Subsequent calls are a single allocation-free map load.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	if c, ok := v.load(value); ok {
		return c.(*Counter)
	}
	c := v.reg.Counter(v.childName(value))
	actual, _ := v.children.LoadOrStore(value, c)
	return actual.(*Counter)
}

// GaugeVec is a gauge family over one label dimension. A nil *GaugeVec
// hands out nil (no-op) gauges.
type GaugeVec struct{ vec }

// GaugeVec returns the named gauge family, creating it on first use.
func (r *Registry) GaugeVec(name, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gaugeVecs == nil {
		r.gaugeVecs = map[string]*GaugeVec{}
	}
	key := name + "\x00" + label
	v, ok := r.gaugeVecs[key]
	if !ok {
		v = &GaugeVec{vec{reg: r, name: name, label: label}}
		r.gaugeVecs[key] = v
	}
	return v
}

// With returns the gauge for one label value, registering it on first
// use.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	if g, ok := v.load(value); ok {
		return g.(*Gauge)
	}
	g := v.reg.Gauge(v.childName(value))
	actual, _ := v.children.LoadOrStore(value, g)
	return actual.(*Gauge)
}

// HistogramVec is a histogram family over one label dimension. A nil
// *HistogramVec hands out nil (no-op) histograms.
type HistogramVec struct{ vec }

// HistogramVec returns the named histogram family, creating it on
// first use.
func (r *Registry) HistogramVec(name, label string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histVecs == nil {
		r.histVecs = map[string]*HistogramVec{}
	}
	key := name + "\x00" + label
	v, ok := r.histVecs[key]
	if !ok {
		v = &HistogramVec{vec{reg: r, name: name, label: label}}
		r.histVecs[key] = v
	}
	return v
}

// With returns the histogram for one label value, registering it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	if h, ok := v.load(value); ok {
		return h.(*Histogram)
	}
	h := v.reg.Histogram(v.childName(value))
	actual, _ := v.children.LoadOrStore(value, h)
	return actual.(*Histogram)
}
