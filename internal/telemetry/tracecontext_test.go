package telemetry

import (
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parentID = "00f067aa0ba902b7"
	tc, ok := ParseTraceparent("00-" + traceID + "-" + parentID + "-01")
	if !ok || tc.TraceID != traceID || tc.ParentID != parentID || !tc.Sampled {
		t.Fatalf("parse = %+v ok=%t", tc, ok)
	}
	tc, ok = ParseTraceparent("00-" + traceID + "-" + parentID + "-00")
	if !ok || tc.Sampled {
		t.Fatalf("unsampled flag: %+v ok=%t", tc, ok)
	}

	bad := []string{
		"",
		"00-" + traceID + "-" + parentID,         // truncated
		"00-" + traceID + "-" + parentID + "-1",  // short flags
		"00_" + traceID + "-" + parentID + "-01", // wrong separator
		"ff-" + traceID + "-" + parentID + "-01", // forbidden version
		"00-" + strings.ToUpper(traceID) + "-" + parentID + "-01", // uppercase hex
		"00-" + strings.Repeat("0", 32) + "-" + parentID + "-01",  // zero trace ID
		"00-" + traceID + "-" + strings.Repeat("0", 16) + "-01",   // zero parent ID
		"00-" + traceID[:31] + "g-" + parentID + "-01",            // non-hex digit
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	traceID, spanID := NewTraceID(), NewSpanID()
	if len(traceID) != 32 || !isHexLower(traceID) || allZero(traceID) {
		t.Fatalf("bad trace ID %q", traceID)
	}
	if len(spanID) != 16 || !isHexLower(spanID) || allZero(spanID) {
		t.Fatalf("bad span ID %q", spanID)
	}
	tc, ok := ParseTraceparent(FormatTraceparent(traceID, spanID))
	if !ok || tc.TraceID != traceID || tc.ParentID != spanID || !tc.Sampled {
		t.Fatalf("round trip = %+v ok=%t", tc, ok)
	}
	if NewTraceID() == traceID {
		t.Fatal("trace IDs must not repeat")
	}
}

func TestTraceIDJoinsExport(t *testing.T) {
	tr := NewTrace("query")
	tr.SetID("4bf92f3577b34da6a3ce929d0e0e4736")
	sp := tr.Root().Child("plan")
	sp.End()
	tr.Root().End()
	if got := tr.ID(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("ID = %q", got)
	}
	line, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736"`, `"name":"query"`, `"name":"plan"`} {
		if !strings.Contains(string(line), want) {
			t.Errorf("export missing %q: %s", want, line)
		}
	}
}
