package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestWithLabel(t *testing.T) {
	cases := []struct{ name, key, value, want string }{
		{"xpv_answers_total", "tenant", "acme", `xpv_answers_total{tenant="acme"}`},
		{`xpv_rung_total{rung="HV"}`, "tenant", "acme", `xpv_rung_total{rung="HV",tenant="acme"}`},
		{"m", "k", `a"b\c`, `m{k="a\"b\\c"}`},
	}
	for _, c := range cases {
		if got := WithLabel(c.name, c.key, c.value); got != c.want {
			t.Errorf("WithLabel(%q, %q, %q) = %q, want %q", c.name, c.key, c.value, got, c.want)
		}
	}
}

func TestVecChildrenAreRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("req_total", "tenant")
	cv.With("a").Inc()
	cv.With("a").Add(2)
	cv.With("b").Inc()
	if got := r.Counter(`req_total{tenant="a"}`).Value(); got != 3 {
		t.Fatalf("child a = %d, want 3", got)
	}
	if cv.With("a") != r.Counter(`req_total{tenant="a"}`) {
		t.Fatal("With must hand out the registry's own child metric")
	}
	if r.CounterVec("req_total", "tenant") != cv {
		t.Fatal("CounterVec is not get-or-create")
	}
	gv := r.GaugeVec("depth", "tenant")
	gv.With("a").Set(7)
	if got := r.Gauge(`depth{tenant="a"}`).Value(); got != 7 {
		t.Fatalf("gauge child = %d, want 7", got)
	}
	hv := r.HistogramVec("lat_ns", "tenant")
	hv.With("a").Observe(1000)
	if got := r.Histogram(`lat_ns{tenant="a"}`).Snapshot().Count; got != 1 {
		t.Fatalf("histogram child count = %d, want 1", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`req_total{tenant="a"} 3`, `req_total{tenant="b"} 1`,
		`depth{tenant="a"} 7`, `lat_ns{tenant="a"}_count 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestNilVecsAreNoOps(t *testing.T) {
	var r *Registry
	if r.CounterVec("c", "l") != nil || r.GaugeVec("g", "l") != nil || r.HistogramVec("h", "l") != nil {
		t.Fatal("nil registry must hand out nil families")
	}
	var cv *CounterVec
	cv.With("x").Inc()
	var gv *GaugeVec
	gv.With("x").Set(1)
	var hv *HistogramVec
	hv.With("x").Observe(1)
}

// TestVecHammer drives 64 goroutines through concurrent With() on a
// shared set of label values (run under -race in CI). Afterwards the
// per-label children must reconcile exactly with what was recorded.
func TestVecHammer(t *testing.T) {
	const (
		goroutines = 64
		perG       = 1000
	)
	r := NewRegistry()
	cv := r.CounterVec("hammer_total", "tenant")
	hv := r.HistogramVec("hammer_ns", "tenant")
	labels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l := labels[(g+i)%len(labels)]
				cv.With(l).Inc()
				hv.With(l).Observe(int64(i%100) * 1000)
			}
		}(g)
	}
	wg.Wait()
	var countSum, histSum int64
	for _, l := range labels {
		countSum += cv.With(l).Value()
		histSum += hv.With(l).Snapshot().Count
	}
	if want := int64(goroutines * perG); countSum != want {
		t.Fatalf("counter sum across labels = %d, want %d", countSum, want)
	}
	if want := int64(goroutines * perG); histSum != want {
		t.Fatalf("histogram count across labels = %d, want %d", histSum, want)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	h.ObserveExemplar(10_000, "aaaa")
	h.ObserveExemplar(10_000, "") // no trace: metric counted, exemplar unchanged
	h.ObserveExemplar(50_000_000, "bbbb")
	if got := h.Snapshot().Count; got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	ex, ok := h.TailExemplar()
	if !ok || ex.TraceID != "bbbb" || ex.ValueNs != 50_000_000 {
		t.Fatalf("tail exemplar = %+v ok=%t, want bbbb@50ms", ex, ok)
	}
	all := h.Exemplars()
	if len(all) != 2 {
		t.Fatalf("exemplar buckets = %d, want 2", len(all))
	}
	if all[0].Exemplar.TraceID != "aaaa" {
		t.Fatalf("low bucket exemplar = %+v", all[0])
	}
	// The first observation in a bucket is always sampled; the ones
	// after ride the 1-in-64 rule.
	for i := 0; i < 10; i++ {
		h.ObserveExemplar(10_000, "cccc")
	}
	ex2 := h.Exemplars()[0].Exemplar
	if ex2.TraceID != "aaaa" {
		t.Fatalf("exemplar resampled too eagerly: %+v", ex2)
	}
	r.Reset()
	if _, ok := h.TailExemplar(); ok {
		t.Fatal("Registry Reset must clear exemplars")
	}
}
