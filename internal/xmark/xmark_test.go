package xmark_test

import (
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

func TestGenerateShape(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.1, Seed: 1})
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if root.Label != "site" || len(root.Children) != 6 {
		t.Fatalf("root = %s with %d children", root.Label, len(root.Children))
	}
	// All six top-level sections present in order.
	want := []string{"regions", "categories", "catgraph", "people", "open_auctions", "closed_auctions"}
	for i, w := range want {
		if root.Children[i].Label != w {
			t.Fatalf("section %d = %s, want %s", i, root.Children[i].Label, w)
		}
	}
	// Key entity counts scale.
	idx := engine.BuildLabelIndex(doc)
	if idx.Count("item") != 200 || idx.Count("person") != 100 ||
		idx.Count("open_auction") != 120 || idx.Count("closed_auction") != 60 {
		t.Fatalf("entity counts off: items=%d people=%d oa=%d ca=%d",
			idx.Count("item"), idx.Count("person"), idx.Count("open_auction"), idx.Count("closed_auction"))
	}
}

func TestDeterministicAndScales(t *testing.T) {
	a := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 9})
	b := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 9})
	if a.Size() != b.Size() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Size(), b.Size())
	}
	big := xmark.Generate(xmark.Config{Scale: 0.2, Seed: 9})
	if big.Size() < 3*a.Size() {
		t.Fatalf("scale 4x grew only %d -> %d", a.Size(), big.Size())
	}
}

// TestSchemaCoversDocument: every parent→child edge in a generated
// document appears in Schema() — the workload generator depends on it.
func TestSchemaCoversDocument(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.1, Seed: 5})
	schema := xmark.Schema()
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Parent == nil {
			return true
		}
		ok := false
		for _, c := range schema[n.Parent.Label] {
			if c == n.Label {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("edge %s -> %s missing from Schema()", n.Parent.Label, n.Label)
		}
		return true
	})
}

// TestAttributesCoverDocument: same for attribute names.
func TestAttributesCoverDocument(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.1, Seed: 5})
	attrs := xmark.Attributes()
	doc.Walk(func(n *xmltree.Node) bool {
		for name := range n.Attributes {
			ok := false
			for _, a := range attrs[n.Label] {
				if a == name {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("attribute %s@%s missing from Attributes()", n.Label, name)
			}
		}
		return true
	})
}

// TestEncodable: XMark documents encode under extended Dewey and decode
// back (the whole pipeline depends on it).
func TestEncodable(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 13})
	enc, fst, err := dewey.EncodeTree(doc)
	if err != nil {
		t.Fatal(err)
	}
	n := doc.Nodes()[doc.Size()-1]
	code := enc.MustCode(n)
	path, err := fst.Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != n.Depth()+1 {
		t.Fatalf("decoded path length %d, want %d", len(path), n.Depth()+1)
	}
}

// TestTypicalQueriesPositive: the reconstructed Table III queries have
// non-empty results on a default-scale document.
func TestTypicalQueriesPositive(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.3, Seed: 2008})
	idx := engine.BuildLabelIndex(doc)
	for _, q := range []string{
		"//site//closed_auction[buyer]/annotation/happiness",
		"//person[address/city]/name",
		"//open_auctions/open_auction[interval/start]/bidder/increase",
		"//people/person[profile/age][watches]/address/city",
	} {
		if len(engine.AnswersFast(doc, idx, xpath.MustParse(q))) == 0 {
			t.Errorf("query %s is empty on the benchmark document", q)
		}
	}
}
