// Package xmark generates auction-site XML documents with the vocabulary
// and shape of the XMark benchmark (the paper's workload, §VI, used a
// 56.2 MB XMark document). The generator is deterministic for a given
// seed and scales linearly with the Scale factor, which is what the
// scaling experiments (Figures 10–12) sweep.
//
// This is a faithful stand-in, not a byte-level XMark clone: the element
// vocabulary, attribute names, nesting structure and approximate fan-outs
// follow the XMark DTD; text payloads are synthetic. The paper's
// experiments depend only on structure and relative sizes.
package xmark

import (
	"fmt"
	"math/rand"

	"xpathviews/internal/xmltree"
)

// Config controls generation.
type Config struct {
	// Scale 1.0 produces roughly 70k element nodes (about 4–5 MB of XML);
	// the paper's 56.2 MB document corresponds to Scale ≈ 12.
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
}

// regions of the XMark DTD.
var regionNames = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

// Generate builds a document.
func Generate(cfg Config) *xmltree.Tree {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &gen{r: r}
	nItems := scaled(cfg.Scale, 2000)
	nPeople := scaled(cfg.Scale, 1000)
	nOpen := scaled(cfg.Scale, 1200)
	nClosed := scaled(cfg.Scale, 600)
	nCats := scaled(cfg.Scale, 100)

	t := xmltree.New("site")
	site := t.Root()

	regions := t.AddChild(site, "regions")
	for ri, name := range regionNames {
		region := t.AddChild(regions, name)
		count := nItems / len(regionNames)
		if ri < nItems%len(regionNames) {
			count++
		}
		for i := 0; i < count; i++ {
			g.item(t, region, nCats)
		}
	}

	cats := t.AddChild(site, "categories")
	for i := 0; i < nCats; i++ {
		c := t.AddChild(cats, "category")
		c.SetAttr("id", fmt.Sprintf("category%d", i))
		t.AddChild(c, "name").Text = g.word()
		g.description(t, c)
	}

	graph := t.AddChild(site, "catgraph")
	for i := 0; i < nCats; i++ {
		e := t.AddChild(graph, "edge")
		e.SetAttr("from", fmt.Sprintf("category%d", g.r.Intn(nCats)))
		e.SetAttr("to", fmt.Sprintf("category%d", g.r.Intn(nCats)))
	}

	people := t.AddChild(site, "people")
	for i := 0; i < nPeople; i++ {
		g.person(t, people, i, nCats)
	}

	open := t.AddChild(site, "open_auctions")
	for i := 0; i < nOpen; i++ {
		g.openAuction(t, open, i, nItems, nPeople, nCats)
	}

	closed := t.AddChild(site, "closed_auctions")
	for i := 0; i < nClosed; i++ {
		g.closedAuction(t, closed, nItems, nPeople)
	}

	t.Renumber()
	return t
}

func scaled(scale float64, base int) int {
	n := int(scale * float64(base))
	if n < 1 {
		n = 1
	}
	return n
}

type gen struct {
	r      *rand.Rand
	itemID int
}

var words = []string{
	"gold", "silver", "amber", "quartz", "willow", "cedar", "harbor",
	"meadow", "summit", "valley", "ember", "frost", "gale", "ivory",
}

func (g *gen) word() string { return words[g.r.Intn(len(words))] }

func (g *gen) item(t *xmltree.Tree, region *xmltree.Node, nCats int) {
	item := t.AddChild(region, "item")
	item.SetAttr("id", fmt.Sprintf("item%d", g.itemID))
	g.itemID++
	if g.r.Intn(10) == 0 {
		item.SetAttr("featured", "yes")
	}
	t.AddChild(item, "location").Text = g.word()
	t.AddChild(item, "quantity").Text = fmt.Sprintf("%d", 1+g.r.Intn(5))
	t.AddChild(item, "name").Text = g.word()
	t.AddChild(item, "payment").Text = "Cash"
	g.description(t, item)
	t.AddChild(item, "shipping").Text = "Will ship internationally"
	for k := g.r.Intn(3); k >= 0; k-- {
		in := t.AddChild(item, "incategory")
		in.SetAttr("category", fmt.Sprintf("category%d", g.r.Intn(nCats)))
	}
	mailbox := t.AddChild(item, "mailbox")
	for k := g.r.Intn(3); k > 0; k-- {
		mail := t.AddChild(mailbox, "mail")
		t.AddChild(mail, "from").Text = g.word()
		t.AddChild(mail, "to").Text = g.word()
		t.AddChild(mail, "date").Text = g.date()
		g.text(t, mail)
	}
}

func (g *gen) description(t *xmltree.Tree, parent *xmltree.Node) {
	d := t.AddChild(parent, "description")
	if g.r.Intn(4) == 0 {
		pl := t.AddChild(d, "parlist")
		for k := 1 + g.r.Intn(2); k > 0; k-- {
			li := t.AddChild(pl, "listitem")
			g.text(t, li)
		}
		return
	}
	g.text(t, d)
}

func (g *gen) text(t *xmltree.Tree, parent *xmltree.Node) {
	tx := t.AddChild(parent, "text")
	tx.Text = g.word() + " " + g.word()
	switch g.r.Intn(5) {
	case 0:
		t.AddChild(tx, "bold").Text = g.word()
	case 1:
		t.AddChild(tx, "keyword").Text = g.word()
	case 2:
		t.AddChild(tx, "emph").Text = g.word()
	}
}

func (g *gen) date() string {
	return fmt.Sprintf("%02d/%02d/%d", 1+g.r.Intn(12), 1+g.r.Intn(28), 1998+g.r.Intn(5))
}

func (g *gen) person(t *xmltree.Tree, people *xmltree.Node, i, nCats int) {
	p := t.AddChild(people, "person")
	p.SetAttr("id", fmt.Sprintf("person%d", i))
	t.AddChild(p, "name").Text = g.word() + " " + g.word()
	t.AddChild(p, "emailaddress").Text = "mailto:" + g.word() + "@example.com"
	if g.r.Intn(2) == 0 {
		t.AddChild(p, "phone").Text = fmt.Sprintf("+1 (%d) %d", 100+g.r.Intn(900), g.r.Intn(10000000))
	}
	if g.r.Intn(4) < 3 {
		addr := t.AddChild(p, "address")
		t.AddChild(addr, "street").Text = fmt.Sprintf("%d %s St", 1+g.r.Intn(99), g.word())
		t.AddChild(addr, "city").Text = g.word()
		t.AddChild(addr, "country").Text = "United States"
		t.AddChild(addr, "zipcode").Text = fmt.Sprintf("%05d", g.r.Intn(100000))
	}
	if g.r.Intn(3) == 0 {
		t.AddChild(p, "homepage").Text = "http://example.com/~" + g.word()
	}
	if g.r.Intn(4) == 0 {
		t.AddChild(p, "creditcard").Text = fmt.Sprintf("%d %d %d %d", 1000+g.r.Intn(9000), 1000+g.r.Intn(9000), 1000+g.r.Intn(9000), 1000+g.r.Intn(9000))
	}
	if g.r.Intn(3) < 2 {
		prof := t.AddChild(p, "profile")
		prof.SetAttr("income", fmt.Sprintf("%d", 20000+g.r.Intn(80000)))
		for k := g.r.Intn(3); k > 0; k-- {
			in := t.AddChild(prof, "interest")
			in.SetAttr("category", fmt.Sprintf("category%d", g.r.Intn(nCats)))
		}
		if g.r.Intn(2) == 0 {
			t.AddChild(prof, "education").Text = "Graduate School"
		}
		if g.r.Intn(2) == 0 {
			t.AddChild(prof, "gender").Text = "male"
		}
		t.AddChild(prof, "business").Text = "Yes"
		if g.r.Intn(3) < 2 {
			t.AddChild(prof, "age").Text = fmt.Sprintf("%d", 18+g.r.Intn(50))
		}
	}
	if g.r.Intn(5) < 2 {
		w := t.AddChild(p, "watches")
		for k := 1 + g.r.Intn(2); k > 0; k-- {
			watch := t.AddChild(w, "watch")
			watch.SetAttr("open_auction", fmt.Sprintf("open_auction%d", g.r.Intn(100)))
		}
	}
}

func (g *gen) openAuction(t *xmltree.Tree, open *xmltree.Node, i, nItems, nPeople, nCats int) {
	oa := t.AddChild(open, "open_auction")
	oa.SetAttr("id", fmt.Sprintf("open_auction%d", i))
	t.AddChild(oa, "initial").Text = fmt.Sprintf("%d.%02d", 1+g.r.Intn(300), g.r.Intn(100))
	if g.r.Intn(2) == 0 {
		t.AddChild(oa, "reserve").Text = fmt.Sprintf("%d.00", 10+g.r.Intn(500))
	}
	for k := g.r.Intn(4); k > 0; k-- {
		b := t.AddChild(oa, "bidder")
		t.AddChild(b, "date").Text = g.date()
		t.AddChild(b, "time").Text = fmt.Sprintf("%02d:%02d:%02d", g.r.Intn(24), g.r.Intn(60), g.r.Intn(60))
		pr := t.AddChild(b, "personref")
		pr.SetAttr("person", fmt.Sprintf("person%d", g.r.Intn(nPeople)))
		t.AddChild(b, "increase").Text = fmt.Sprintf("%d.00", 1+g.r.Intn(20))
	}
	t.AddChild(oa, "current").Text = fmt.Sprintf("%d.00", 5+g.r.Intn(600))
	if g.r.Intn(5) == 0 {
		t.AddChild(oa, "privacy").Text = "Yes"
	}
	ir := t.AddChild(oa, "itemref")
	ir.SetAttr("item", fmt.Sprintf("item%d", g.r.Intn(nItems)))
	se := t.AddChild(oa, "seller")
	se.SetAttr("person", fmt.Sprintf("person%d", g.r.Intn(nPeople)))
	g.annotation(t, oa, nPeople)
	t.AddChild(oa, "quantity").Text = "1"
	t.AddChild(oa, "type").Text = "Regular"
	iv := t.AddChild(oa, "interval")
	t.AddChild(iv, "start").Text = g.date()
	t.AddChild(iv, "end").Text = g.date()
}

func (g *gen) annotation(t *xmltree.Tree, parent *xmltree.Node, nPeople int) {
	an := t.AddChild(parent, "annotation")
	au := t.AddChild(an, "author")
	au.SetAttr("person", fmt.Sprintf("person%d", g.r.Intn(nPeople)))
	g.description(t, an)
	t.AddChild(an, "happiness").Text = fmt.Sprintf("%d", 1+g.r.Intn(10))
}

func (g *gen) closedAuction(t *xmltree.Tree, closed *xmltree.Node, nItems, nPeople int) {
	ca := t.AddChild(closed, "closed_auction")
	se := t.AddChild(ca, "seller")
	se.SetAttr("person", fmt.Sprintf("person%d", g.r.Intn(nPeople)))
	bu := t.AddChild(ca, "buyer")
	bu.SetAttr("person", fmt.Sprintf("person%d", g.r.Intn(nPeople)))
	ir := t.AddChild(ca, "itemref")
	ir.SetAttr("item", fmt.Sprintf("item%d", g.r.Intn(nItems)))
	t.AddChild(ca, "price").Text = fmt.Sprintf("%d.00", 5+g.r.Intn(600))
	t.AddChild(ca, "date").Text = g.date()
	t.AddChild(ca, "quantity").Text = "1"
	t.AddChild(ca, "type").Text = "Regular"
	g.annotation(t, ca, nPeople)
}

// Schema returns the element vocabulary as a parent → children adjacency
// used by the workload generator's random walks. It mirrors what the
// generator above can emit.
func Schema() map[string][]string {
	return map[string][]string{
		"site":            {"regions", "categories", "catgraph", "people", "open_auctions", "closed_auctions"},
		"regions":         regionNames,
		"africa":          {"item"},
		"asia":            {"item"},
		"australia":       {"item"},
		"europe":          {"item"},
		"namerica":        {"item"},
		"samerica":        {"item"},
		"item":            {"location", "quantity", "name", "payment", "description", "shipping", "incategory", "mailbox"},
		"description":     {"text", "parlist"},
		"parlist":         {"listitem"},
		"listitem":        {"text"},
		"text":            {"bold", "keyword", "emph"},
		"mailbox":         {"mail"},
		"mail":            {"from", "to", "date", "text"},
		"categories":      {"category"},
		"category":        {"name", "description"},
		"catgraph":        {"edge"},
		"people":          {"person"},
		"person":          {"name", "emailaddress", "phone", "address", "homepage", "creditcard", "profile", "watches"},
		"address":         {"street", "city", "country", "zipcode"},
		"profile":         {"interest", "education", "gender", "business", "age"},
		"watches":         {"watch"},
		"open_auctions":   {"open_auction"},
		"open_auction":    {"initial", "reserve", "bidder", "current", "privacy", "itemref", "seller", "annotation", "quantity", "type", "interval"},
		"bidder":          {"date", "time", "personref", "increase"},
		"annotation":      {"author", "description", "happiness"},
		"interval":        {"start", "end"},
		"closed_auctions": {"closed_auction"},
		"closed_auction":  {"seller", "buyer", "itemref", "price", "date", "quantity", "type", "annotation"},
	}
}

// Attributes returns the attribute names each element may carry, for
// generating attribute predicates.
func Attributes() map[string][]string {
	return map[string][]string{
		"item":         {"id", "featured"},
		"person":       {"id"},
		"open_auction": {"id"},
		"category":     {"id"},
		"incategory":   {"category"},
		"interest":     {"category"},
		"itemref":      {"item"},
		"personref":    {"person"},
		"seller":       {"person"},
		"buyer":        {"person"},
		"author":       {"person"},
		"watch":        {"open_auction"},
		"edge":         {"from", "to"},
		"profile":      {"income"},
	}
}
