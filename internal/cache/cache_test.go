package cache_test

import (
	"strings"
	"sync"
	"testing"

	"xpathviews"
	"xpathviews/internal/cache"
	"xpathviews/internal/xmark"
)

func newCache(t *testing.T, budget int) *cache.Cache {
	t.Helper()
	doc := xmark.Generate(xmark.Config{Scale: 0.08, Seed: 31})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	return cache.New(sys, cache.Config{BudgetBytes: budget, PerViewLimit: xpathviews.DefaultFragmentLimit})
}

func TestMissThenHit(t *testing.T) {
	c := newCache(t, 4<<20)
	q := "//person[address]/name"
	first, hit, err := c.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first query cannot hit an empty cache")
	}
	second, hit, err := c.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("identical query must hit after admission")
	}
	if strings.Join(first.Codes(), ",") != strings.Join(second.Codes(), ",") {
		t.Fatal("hit answers differ from miss answers")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Admitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCrossQueryHit: a cached view answers a *different* but contained
// query — the semantic part of semantic caching.
func TestCrossQueryHit(t *testing.T) {
	c := newCache(t, 4<<20)
	if _, _, err := c.Answer("//person/address/city"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Answer("//person[address]/name"); err != nil {
		t.Fatal(err)
	}
	// Answerable by joining/refining the two cached views.
	res, hit, err := c.Answer("//person[address/city]/name")
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatalf("expected a multi-view cache hit, stats=%+v", c.Stats())
	}
	direct, err := c.System().Answer("//person[address/city]/name", xpathviews.BF)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Codes(), ",") != strings.Join(direct.Codes(), ",") {
		t.Fatal("cache answers differ from direct evaluation")
	}
}

func TestEviction(t *testing.T) {
	c := newCache(t, 2000) // tiny budget forces eviction
	queries := []string{
		"//person/address/city",
		"//open_auction/interval/start",
		"//closed_auction/price",
		"//person/profile/age",
	}
	for _, q := range queries {
		if _, _, err := c.Answer(q); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under a %dB budget: %+v", 2000, st)
	}
	if st.Bytes > 2000+xpathviews.DefaultFragmentLimit {
		t.Fatalf("budget wildly exceeded: %+v", st)
	}
	// The most recent query must still hit.
	if _, hit, err := c.Answer(queries[len(queries)-1]); err != nil || !hit {
		t.Fatalf("most recent admission evicted: hit=%v err=%v", hit, err)
	}
}

func TestEmptyResultNotCached(t *testing.T) {
	c := newCache(t, 4<<20)
	if _, _, err := c.Answer("//person/nonexistent"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Stats().Rejected != 1 {
		t.Fatalf("empty result must not be admitted: len=%d stats=%+v", c.Len(), c.Stats())
	}
}

func TestRemovedViewsNeverSelected(t *testing.T) {
	c := newCache(t, 1500)
	for i := 0; i < 6; i++ {
		for _, q := range []string{
			"//person/address/city", "//open_auction/interval/start",
			"//closed_auction/price", "//person/profile/age",
		} {
			res, _, err := c.Answer(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			// Sanity: answers always match direct evaluation even while
			// views churn in and out of the filter.
			direct, err := c.System().Answer(q, xpathviews.BF)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(res.Codes(), ",") != strings.Join(direct.Codes(), ",") {
				t.Fatalf("%s: cache answers drifted", q)
			}
		}
	}
}

// TestConcurrentAnswer hammers the cache from several goroutines while
// admissions and evictions churn the underlying view set. Run under
// -race this is the synchronization test for the cache bookkeeping.
func TestConcurrentAnswer(t *testing.T) {
	c := newCache(t, 3000) // small budget so eviction races with hits
	queries := []string{
		"//person/address/city",
		"//open_auction/interval/start",
		"//closed_auction/price",
		"//person/profile/age",
		"//person[address]/name",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := queries[(g+i)%len(queries)]
				if _, _, err := c.Answer(q); err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 80 {
		t.Fatalf("lost answers: stats=%+v", st)
	}
	if c.Len() > len(queries) {
		t.Fatalf("more cached views than distinct queries: %d", c.Len())
	}
}
