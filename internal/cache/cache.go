// Package cache implements a semantic view cache on top of the
// xpathviews system: answered queries are admitted as materialized views
// so later queries can be answered from them, and a byte budget is
// enforced by evicting the least-recently-used views. This is the
// scenario of Mandhani & Suciu (the paper's [19]) that motivates §VI's
// 128 KB per-view fragment cap, generalized to multiple-view answering:
// a query may hit by joining several cached views, not just by matching
// one.
package cache

import (
	"errors"
	"sync"

	"xpathviews"
)

// Config tunes the cache.
type Config struct {
	// BudgetBytes bounds the total materialized fragment bytes kept.
	BudgetBytes int
	// PerViewLimit caps each admitted view (the paper's 128 KB);
	// candidates over the cap are simply not admitted.
	PerViewLimit int
}

// DefaultConfig keeps 4 MB of fragments with the paper's per-view cap.
func DefaultConfig() Config {
	return Config{BudgetBytes: 4 << 20, PerViewLimit: xpathviews.DefaultFragmentLimit}
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits      int
	Misses    int
	Admitted  int
	Rejected  int // over the per-view cap or empty results
	Evictions int
	Bytes     int
}

// Cache wraps a System with admit-on-miss view caching. It is safe for
// concurrent Answer calls: queries run on the wrapped System's own
// read/write locking, while mu serializes the cache's bookkeeping (LRU
// order, byte accounting, stats) and admissions. mu is always acquired
// before the System's lock, never while holding it.
type Cache struct {
	sys *xpathviews.System
	cfg Config

	mu sync.Mutex
	// lru holds live view IDs ordered by recency (front = oldest).
	lru   []int
	bytes map[int]int
	stats Stats
}

// New wraps an existing system. Views already materialized on sys are
// outside the cache's budget accounting and are never evicted.
func New(sys *xpathviews.System, cfg Config) *Cache {
	return &Cache{sys: sys, cfg: cfg, bytes: make(map[int]int)}
}

// System exposes the wrapped system.
func (c *Cache) System() *xpathviews.System { return c.sys }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Answer answers the query from cached views when possible (HV
// strategy); on a miss it evaluates directly (BF), admits the query as a
// new view, and evicts LRU views until the budget holds again.
func (c *Cache) Answer(src string) (*xpathviews.Result, bool, error) {
	res, err := c.sys.Answer(src, xpathviews.HV)
	if err == nil {
		c.mu.Lock()
		c.stats.Hits++
		c.touch(res.ViewsUsed)
		c.mu.Unlock()
		return res, true, nil
	}
	if !errors.Is(err, xpathviews.ErrNotAnswerable) {
		return nil, false, err
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	res, err = c.sys.Answer(src, xpathviews.BF)
	if err != nil {
		return nil, false, err
	}
	c.admit(src, len(res.Answers))
	return res, false, nil
}

func (c *Cache) admit(src string, answers int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if answers == 0 {
		c.stats.Rejected++ // negative results are not worth caching here
		return
	}
	id, err := c.sys.AddView(src, c.cfg.PerViewLimit)
	if err != nil {
		c.stats.Rejected++
		return
	}
	v := c.sys.Registry().Get(id)
	c.stats.Admitted++
	c.bytes[id] = v.TotalBytes
	c.stats.Bytes += v.TotalBytes
	c.lru = append(c.lru, id)
	for c.stats.Bytes > c.cfg.BudgetBytes && len(c.lru) > 1 {
		victim := c.lru[0]
		if victim == id {
			break // never evict what we just admitted
		}
		c.lru = c.lru[1:]
		if c.sys.RemoveView(victim) {
			c.stats.Bytes -= c.bytes[victim]
			delete(c.bytes, victim)
			c.stats.Evictions++
		}
	}
}

// touch moves the used cached views to the recent end. Callers hold mu.
func (c *Cache) touch(ids []int) {
	for _, id := range ids {
		if _, cached := c.bytes[id]; !cached {
			continue
		}
		for i, v := range c.lru {
			if v == id {
				c.lru = append(append(c.lru[:i:i], c.lru[i+1:]...), id)
				break
			}
		}
	}
}

// Len returns the number of cache-managed views currently live.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bytes)
}
