package selection

import (
	"sort"

	"xpathviews/internal/budget"
	"xpathviews/internal/faults"
	"xpathviews/internal/pattern"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/views"
)

// fpCostBased is the chaos-test fault point for cost-based selection.
var fpCostBased = faults.New("selection.costbased")

// This file implements the cost model §IV-B mentions but omits "due to
// space limitation": selection that trades off the two factors the paper
// identifies — the number of views (join width) and the size of their
// materialized fragments (scan volume). The exact-minimum method
// optimizes only the first, the heuristic's length-descending lists only
// approximate the second; CostBased optimizes their weighted sum with
// the classical greedy weighted set-cover rule (pick the cover with the
// lowest cost per newly covered element), then prunes redundancy.

// CostParams weights the two factors. Cost(V) = ViewWeight +
// ByteWeight · TotalBytes(V).
type CostParams struct {
	ViewWeight float64
	ByteWeight float64
}

// DefaultCostParams makes one view "cost" about as much as 64 KB of
// fragments, so small extra views are preferred over large single ones
// but gratuitous joins still count.
func DefaultCostParams() CostParams {
	return CostParams{ViewWeight: 1, ByteWeight: 1.0 / (64 << 10)}
}

func (p CostParams) cost(v *views.View) float64 {
	return p.ViewWeight + p.ByteWeight*float64(v.TotalBytes)
}

// Cost exposes the per-view cost so serving layers can record the
// predicted cost of a selection next to its realized execution time
// (cost-model calibration).
func (p CostParams) Cost(v *views.View) float64 { return p.cost(v) }

// CostBased selects an answering view set greedily by cost per newly
// covered LF element, over VFILTER's candidates, computing homomorphisms
// lazily like Algorithm 2. It returns ErrNotAnswerable when no answering
// subset exists among the candidates.
func CostBased(q *pattern.Pattern, res *vfilter.Result, reg *views.Registry, params CostParams) (*Selection, error) {
	return CostBasedBudget(q, res, reg, params, nil)
}

// CostBasedBudget is CostBased under a cancellation/step budget: each
// lazily computed homomorphism charges Hom, each greedy round a step.
func CostBasedBudget(q *pattern.Pattern, res *vfilter.Result, reg *views.Registry, params CostParams, b *budget.B) (*Selection, error) {
	if err := fpCostBased.Fire(); err != nil {
		return nil, err
	}
	sel := &Selection{}

	// Candidate order: cheap views first so that lazily computed covers
	// are more likely to pay off early.
	seen := make(map[int]bool)
	var candIDs []int
	for _, list := range res.Lists {
		for _, le := range list {
			if !seen[le.View] {
				seen[le.View] = true
				candIDs = append(candIDs, le.View)
			}
		}
	}
	sort.Slice(candIDs, func(i, j int) bool {
		a, b := reg.Get(candIDs[i]), reg.Get(candIDs[j])
		return params.cost(a) < params.cost(b)
	})

	var berr error
	covers := make(map[int]*Cover, len(candIDs))
	coverOf := func(id int) *Cover {
		c, ok := covers[id]
		if !ok {
			if berr == nil {
				berr = b.Hom()
			}
			if berr != nil {
				return nil
			}
			sel.HomsComputed++
			c = ComputeCover(reg.Get(id), q)
			covers[id] = c
		}
		return c
	}

	need := make(map[*pattern.Node]bool)
	for _, l := range q.Leaves() {
		need[l] = true
	}
	delta := false
	var chosen []*Cover

	gain := func(c *Cover) int {
		if c == nil {
			return 0
		}
		g := 0
		for n := range c.Leaves {
			if need[n] {
				g++
			}
		}
		if !delta && c.Delta {
			g++
		}
		return g
	}

	for len(need) > 0 || !delta {
		if err := b.Step(len(candIDs) + 1); err != nil {
			return nil, err
		}
		best := -1
		bestScore := 0.0
		var bestCover *Cover
		for _, id := range candIDs {
			c := coverOf(id)
			if berr != nil {
				return nil, berr
			}
			g := gain(c)
			if g == 0 {
				continue
			}
			score := params.cost(reg.Get(id)) / float64(g)
			if best < 0 || score < bestScore {
				best, bestScore, bestCover = id, score, c
			}
		}
		if best < 0 {
			return nil, ErrNotAnswerable
		}
		chosen = append(chosen, bestCover)
		for n := range bestCover.Leaves {
			delete(need, n)
		}
		if bestCover.Delta {
			delta = true
		}
	}
	sel.Covers = removeRedundant(q, chosen)
	return sel, nil
}
