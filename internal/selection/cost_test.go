package selection_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/views"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

func TestCostBasedOnBook(t *testing.T) {
	reg, f := setupBook(t)
	q := xpath.MustParse(paperdata.QueryE)
	res := f.Filtering(q)
	sel, err := selection.CostBased(q, res, reg, selection.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if !selection.Answerable(q, sel.Covers) {
		t.Fatal("cost-based selection not answerable")
	}
	if len(sel.Covers) != 2 {
		t.Fatalf("cost-based picked %d views, want 2", len(sel.Covers))
	}
}

// TestCostBasedPrefersSmallFragments: with two interchangeable views, the
// one with smaller materialized fragments wins.
func TestCostBasedPrefersSmallFragments(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	f := vfilter.New()
	big, err := reg.Add(xpath.MustParse("//s[t]//p"), 0) // all 8 paragraphs
	if err != nil {
		t.Fatal(err)
	}
	f.AddView(big.ID, big.Pattern)
	small, err := reg.Add(xpath.MustParse("//s[t]/p"), 0) // same answers here, but compare bytes
	if err != nil {
		t.Fatal(err)
	}
	f.AddView(small.ID, small.Pattern)

	q := xpath.MustParse("//s[t]/p")
	res := f.Filtering(q)
	sel, err := selection.CostBased(q, res, reg, selection.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Covers) != 1 {
		t.Fatalf("selected %d views, want 1", len(sel.Covers))
	}
	picked := sel.Covers[0].View
	other := big
	if picked == big {
		other = small
	}
	if picked.TotalBytes > other.TotalBytes {
		t.Fatalf("cost-based picked the larger view (%d > %d bytes)", picked.TotalBytes, other.TotalBytes)
	}
}

// TestCostBasedEquivalence: cost-based selections rewrite to the same
// answers as direct evaluation.
func TestCostBasedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(509))
	labels := []string{"a", "b", "c", "d"}
	answered := 0
	for doc := 0; doc < 8; doc++ {
		tree := randomCostTree(r, 100, labels)
		enc, fst, err := dewey.EncodeTree(tree)
		if err != nil {
			t.Fatal(err)
		}
		reg := views.NewRegistry(tree, enc)
		f := vfilter.New()
		for len(reg.ViewList) < 20 {
			v, err := reg.Add(randomCostPattern(r, labels, 4), 0)
			if err != nil {
				t.Fatal(err)
			}
			f.AddView(v.ID, v.Pattern)
		}
		for qi := 0; qi < 25; qi++ {
			q := pattern.Minimize(randomCostPattern(r, labels, 5))
			res := f.Filtering(q)
			sel, err := selection.CostBased(q, res, reg, selection.DefaultCostParams())
			if err != nil {
				continue
			}
			answered++
			out, err := rewrite.Execute(q, sel, fst)
			if err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			direct := engine.Answers(tree, q)
			if len(out.Answers) != len(direct) {
				t.Fatalf("cost-based on %s: %d vs %d answers", q, len(out.Answers), len(direct))
			}
		}
	}
	if answered < 15 {
		t.Fatalf("only %d answerable cases", answered)
	}
}

func randomCostTree(r *rand.Rand, n int, labels []string) *xmltree.Tree {
	t := xmltree.New(labels[0])
	nodes := []*xmltree.Node{t.Root()}
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		nodes = append(nodes, t.AddChild(parent, labels[r.Intn(len(labels))]))
	}
	t.Renumber()
	return t
}

func randomCostPattern(r *rand.Rand, labels []string, maxNodes int) *pattern.Pattern {
	root := pattern.NewNode(labels[r.Intn(len(labels))], pattern.Descendant)
	nodes := []*pattern.Node{root}
	n := 1 + r.Intn(maxNodes)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		lb := labels[r.Intn(len(labels))]
		if r.Intn(7) == 0 {
			lb = pattern.Wildcard
		}
		nodes = append(nodes, parent.AddChild(lb, pattern.Axis(r.Intn(2))))
	}
	return &pattern.Pattern{Root: root, Ret: nodes[r.Intn(len(nodes))]}
}
