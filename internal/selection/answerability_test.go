package selection_test

import (
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/xpath"
)

// Tests pinning the answerability criterion's edge cases (§IV-A).

func bookRegistry(t *testing.T) *views.Registry {
	t.Helper()
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	return views.NewRegistry(tree, enc)
}

// TestNoDeltaNotAnswerable: covering every leaf without a Δ-view is not
// enough — the answer node must be extractable (criterion's condition 1).
func TestNoDeltaNotAnswerable(t *testing.T) {
	reg := bookRegistry(t)
	// Both views' answers land strictly inside predicate branches of Q.
	v1, err := reg.Add(xpath.MustParse("//s/t"), 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.Add(xpath.MustParse("//s/f//i"), 0)
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse("//s[f//i][t]/p")
	c1, c2 := selection.ComputeCover(v1, q), selection.ComputeCover(v2, q)
	if c1 == nil || c2 == nil {
		t.Fatal("homomorphisms must exist")
	}
	if c1.Delta || c2.Delta {
		t.Fatalf("neither view may provide Δ: %v %v", c1, c2)
	}
	if selection.Answerable(q, []*selection.Cover{c1, c2}) {
		t.Fatal("answerable without Δ")
	}
	if _, err := selection.Minimum(q, reg.ViewList); err == nil {
		t.Fatal("Minimum must fail without a Δ-capable view")
	}
}

// TestDeltaAloneNotEnough: a Δ-view that cannot certify a predicate leaf
// does not answer alone.
func TestDeltaAloneNotEnough(t *testing.T) {
	reg := bookRegistry(t)
	v, err := reg.Add(xpath.MustParse("//s/p"), 0)
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse("//s[f]/p")
	c := selection.ComputeCover(v, q)
	if c == nil || !c.Delta {
		t.Fatalf("cover = %v", c)
	}
	if selection.Answerable(q, []*selection.Cover{c}) {
		t.Fatalf("//s/p must not certify [f]: %v", c)
	}
}

// TestNilViewsSkipped: registries with removed views (nil slots) are
// handled by Minimum.
func TestNilViewsSkipped(t *testing.T) {
	reg := bookRegistry(t)
	if _, err := reg.Add(xpath.MustParse("//s/t"), 0); err != nil {
		t.Fatal(err)
	}
	keep, err := reg.Add(xpath.MustParse("//s[f//i][t]/p"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Remove(0) {
		t.Fatal("Remove failed")
	}
	if reg.Len() != 1 || len(reg.Views()) != 1 || reg.Views()[0] != keep {
		t.Fatalf("registry bookkeeping wrong after removal: len=%d", reg.Len())
	}
	q := xpath.MustParse("//s[f//i][t]/p")
	sel, err := selection.Minimum(q, reg.ViewList) // contains a nil slot
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Covers) != 1 || sel.Covers[0].View != keep {
		t.Fatalf("selection = %v", sel.Covers)
	}
}

// TestRemoveRedundantKeepsDelta: redundancy pruning never drops the only
// Δ-view.
func TestRemoveRedundantKeepsDelta(t *testing.T) {
	reg := bookRegistry(t)
	a, _ := reg.Add(xpath.MustParse("//s[t]/p"), 0)    // Δ + t + p
	b, _ := reg.Add(xpath.MustParse("//s[p]/f//i"), 0) // i (+ p via guarantee)
	q := xpath.MustParse("//s[f//i][t]/p")
	ca, cb := selection.ComputeCover(a, q), selection.ComputeCover(b, q)
	if ca == nil || cb == nil {
		t.Fatal("covers must exist")
	}
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	hasDelta := false
	for _, c := range sel.Covers {
		if c.Delta {
			hasDelta = true
		}
	}
	if !hasDelta {
		t.Fatal("selection lost its Δ-view")
	}
}
