// Package selection implements §IV: the leaf-cover LC(V,Q), the multiple
// view/query answerability criterion ⋃ LC(V,Q) = LF(Q), the exact
// minimum view-set selection, and the heuristic minimal selection of
// Algorithm 2 driven by VFilter's sorted lists.
//
// The paper's prose definition of leaf-cover condition 2 ("the predicates
// for n and its ancestors hold on V") is made precise here in a way that
// keeps the rewriting of §V equivalent (sound) — see DESIGN.md,
// "Reconstructed details". A leaf n of Q is covered by view V under a
// homomorphism h with x = h(RET(V)) when either
//
//	(a) n is a descendant-or-self of x — the predicate is checked inside
//	    V's materialized fragments by the compensating query; or
//	(b) n's anchor y (the deepest node on Q's root→x path that is an
//	    ancestor of n) has a spine preimage v_y in V (h(v_y) = y) that is
//	    connected to RET(V) by child-only edges, and V's subtree at v_y
//	    guarantees y's whole branch containing n (a homomorphism from
//	    that branch into V's subtree at v_y). The child-only tail makes
//	    the guarantee's anchor sit at a fixed ancestor of every fragment
//	    root, which the holistic join pins (Example 4.2's trap is what
//	    this rigidity rule prevents).
//
// Additionally a view can be a *strong* cover (the paper's condition 3,
// single-view answerability): a homomorphism from Q's upper pattern into
// V pinning the answer positions makes every fragment of V a direct
// witness for all of Q above x.
package selection

import (
	"fmt"
	"sort"

	"xpathviews/internal/budget"
	"xpathviews/internal/faults"
	"xpathviews/internal/pattern"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/views"
)

// Fault points at the selection stage boundaries (chaos tests).
var (
	fpMinimum   = faults.New("selection.minimum")
	fpHeuristic = faults.New("selection.heuristic")
)

// Pin records one rigid anchor produced by a mode-(b) cover: during the
// holistic join, query node Y must map to the K-th ancestor of the
// view's fragment root.
type Pin struct {
	Y *pattern.Node
	K int
}

// Cover is LC(V,Q) for one view under its best homomorphism.
type Cover struct {
	View *views.View
	Q    *pattern.Pattern
	// X is h(RET(V)): the query node the view's answers land on.
	X *pattern.Node
	// Delta reports Δ ∈ LC(V,Q): X is an ancestor-or-self of RET(Q).
	Delta bool
	// Leaves is the set of covered query leaves.
	Leaves map[*pattern.Node]bool
	// Pins are the rigid anchors backing mode-(b) coverage.
	Pins []Pin
	// Strong reports a single-view strong cover: every leaf of Q outside
	// X's subtree is guaranteed by V itself, pinned at the fragment root.
	Strong bool
}

// Size returns |LC(V,Q)| over the LF universe (leaves plus Δ).
func (c *Cover) Size() int {
	n := len(c.Leaves)
	if c.Delta {
		n++
	}
	return n
}

// String renders the cover like the paper's Equation (1), e.g. "{Δ, t, p}".
func (c *Cover) String() string {
	var parts []string
	if c.Delta {
		parts = append(parts, "Δ")
	}
	var labels []string
	for n := range c.Leaves {
		labels = append(labels, n.Label)
	}
	sort.Strings(labels)
	parts = append(parts, labels...)
	out := "{"
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out + "}"
}

// ComputeCover computes LC(V,Q), choosing the spine mapping (and hence
// the homomorphism) that maximizes coverage; Delta wins ties. Returns nil
// when no homomorphism from V to Q exists (LC = ∅, §IV-A).
func ComputeCover(v *views.View, q *pattern.Pattern) *Cover {
	h := pattern.NewHom(v.Pattern, q)
	if !h.Exists() {
		return nil
	}
	vSpine := v.Pattern.Spine()
	// rigidK[i] >= 0 when the spine tail from index i to RET(V) uses only
	// child edges; the value is the number of edges (the pin offset K).
	rigidK := make([]int, len(vSpine))
	rigidK[len(vSpine)-1] = 0
	for i := len(vSpine) - 2; i >= 0; i-- {
		if rigidK[i+1] >= 0 && vSpine[i+1].Axis == pattern.Child {
			rigidK[i] = rigidK[i+1] + 1
		} else {
			rigidK[i] = -1
		}
	}

	var best *Cover
	for _, m := range h.SpineMappings() {
		c := coverForMapping(v, q, vSpine, rigidK, m)
		if best == nil || better(c, best) {
			best = c
		}
	}
	if best != nil {
		// A strong cover is only usable when the view is also the
		// Δ-view: its guarantee pins Q's upper pattern at the view's own
		// fragment roots, so answers must be extracted from this view.
		best.Strong = best.Delta && strongCover(v, q, best.X)
		if best.Strong {
			// A strong cover guarantees everything above/off X; leaves
			// under X are covered by the compensating query.
			for _, n := range q.Leaves() {
				best.Leaves[n] = true
			}
			best.Pins = nil
		}
	}
	return best
}

func better(a, b *Cover) bool {
	if a.Size() != b.Size() {
		return a.Size() > b.Size()
	}
	if a.Delta != b.Delta {
		return a.Delta
	}
	// Prefer fewer pins (cheaper joins).
	return len(a.Pins) < len(b.Pins)
}

func coverForMapping(v *views.View, q *pattern.Pattern, vSpine []*pattern.Node, rigidK []int, m pattern.SpineMapping) *Cover {
	x := m.Ret()
	// Attribute predicates on internal root→x nodes cannot be checked on
	// Dewey codes (§V); they are usable only when the view's own spine
	// node carries the same predicates (so the view guarantees them). A
	// mapping violating this is unusable for joining.
	imgAt := make(map[*pattern.Node]int, len(m.Images))
	for i, img := range m.Images {
		imgAt[img] = i
	}
	for n := x.Parent; n != nil; n = n.Parent {
		if len(n.Attrs) == 0 {
			continue
		}
		i, mapped := imgAt[n]
		if !mapped || !pattern.AttrsImplied(n.Attrs, vSpine[i].Attrs) {
			return &Cover{View: v, Q: q, X: x, Leaves: map[*pattern.Node]bool{}}
		}
	}
	c := &Cover{
		View:   v,
		Q:      q,
		X:      x,
		Delta:  pattern.AncestorOrSelf(x, q.Ret),
		Leaves: make(map[*pattern.Node]bool),
	}
	// Mode (a): leaves inside X's subtree.
	for _, n := range q.Leaves() {
		if pattern.AncestorOrSelf(x, n) {
			c.Leaves[n] = true
		}
	}
	// Mode (b): rigid guarantees anchored on the root→x path.
	for y, i := range imgAt {
		if rigidK[i] < 0 {
			continue
		}
		vy := vSpine[i]
		for _, branch := range y.Children {
			if pattern.AncestorOrSelf(branch, x) {
				continue // the continuation toward x, not a predicate branch
			}
			if covered := branchGuaranteed(v.Pattern, vy, y, branch); covered {
				markLeaves(branch, c.Leaves)
				c.Pins = append(c.Pins, Pin{Y: y, K: rigidK[i]})
			}
		}
	}
	return c
}

// branchGuaranteed reports whether V's subtree at vy guarantees query
// node y's predicate branch: a homomorphism from (y + branch) into V
// mapping y to vy.
func branchGuaranteed(vPat *pattern.Pattern, vy *pattern.Node, y *pattern.Node, branch *pattern.Node) bool {
	// Build the probe pattern: a copy of y (label + attrs, no other
	// children) with the branch subtree underneath.
	probeRoot := pattern.NewNode(y.Label, pattern.Descendant)
	probeRoot.Attrs = append([]pattern.AttrPred(nil), y.Attrs...)
	attachCopy(probeRoot, branch)
	probe := &pattern.Pattern{Root: probeRoot, Ret: probeRoot}
	h := pattern.NewHom(probe, vPat)
	return h.CanMap(probeRoot, vy)
}

func attachCopy(parent *pattern.Node, n *pattern.Node) {
	c := parent.AddChild(n.Label, n.Axis)
	c.Attrs = append([]pattern.AttrPred(nil), n.Attrs...)
	for _, ch := range n.Children {
		attachCopy(c, ch)
	}
}

func markLeaves(n *pattern.Node, set map[*pattern.Node]bool) {
	if n.IsLeaf() {
		set[n] = true
		return
	}
	for _, c := range n.Children {
		markLeaves(c, set)
	}
}

// strongCover reports the paper's single-view answerability condition 3:
// a homomorphism from Q's upper pattern (Q minus the strict descendants
// of x) into V that maps the x position onto RET(V) and respects root
// axes. Every fragment of V then witnesses all of Q outside x's subtree.
func strongCover(v *views.View, q *pattern.Pattern, x *pattern.Node) bool {
	upper, _ := upperPattern(q, x)
	h := pattern.NewHom(upper, v.Pattern)
	for _, m := range h.SpineMappings() {
		if m.Ret() == v.Pattern.Ret {
			return true
		}
	}
	return false
}

// upperPattern clones q, drops the strict descendants of x, and sets the
// clone's answer node to x's copy (so its spine is root→x).
func upperPattern(q *pattern.Pattern, x *pattern.Node) (*pattern.Pattern, *pattern.Node) {
	var ux *pattern.Node
	var rec func(n *pattern.Node) *pattern.Node
	rec = func(n *pattern.Node) *pattern.Node {
		cp := pattern.NewNode(n.Label, n.Axis)
		cp.Attrs = append([]pattern.AttrPred(nil), n.Attrs...)
		if n == x {
			ux = cp
			return cp // children dropped
		}
		for _, ch := range n.Children {
			cc := rec(ch)
			cc.Parent = cp
			cp.Children = append(cp.Children, cc)
		}
		return cp
	}
	root := rec(q.Root)
	return &pattern.Pattern{Root: root, Ret: ux}, ux
}

// LF returns the universe LF(Q) = LEAF(Q) ∪ {Δ} as (leaves, hasDelta
// placeholder); Δ is tracked separately by the selection routines.
func LF(q *pattern.Pattern) []*pattern.Node { return q.Leaves() }

// Answerable reports whether the covers jointly answer Q: some cover has
// Δ and every leaf of Q is covered by some cover.
func Answerable(q *pattern.Pattern, covers []*Cover) bool {
	delta := false
	need := q.Leaves()
	covered := make(map[*pattern.Node]bool, len(need))
	for _, c := range covers {
		if c == nil {
			continue
		}
		if c.Delta {
			delta = true
		}
		for n := range c.Leaves {
			covered[n] = true
		}
	}
	if !delta {
		return false
	}
	for _, n := range need {
		if !covered[n] {
			return false
		}
	}
	return true
}

// ErrNotAnswerable reports that no subset of the candidate views answers
// the query.
var ErrNotAnswerable = fmt.Errorf("selection: query is not answerable by the view set")

// Selection is the outcome of a view-selection strategy.
type Selection struct {
	Covers []*Cover
	// HomsComputed counts homomorphism computations performed — the cost
	// driver Figures 8 and 9 attribute MN's slowness to.
	HomsComputed int
}

// Views returns the selected views.
func (s *Selection) Views() []*views.View {
	out := make([]*views.View, len(s.Covers))
	for i, c := range s.Covers {
		out[i] = c.View
	}
	return out
}

// TotalFragments sums the selected views' fragment counts — the number
// of independent work units §V's refinement scans. The rewriting uses it
// to size (or skip) its parallel fan-out.
func (s *Selection) TotalFragments() int {
	total := 0
	for _, c := range s.Covers {
		total += len(c.View.Fragments)
	}
	return total
}

// TotalFragmentBytes sums the selected views' materialized sizes — the
// quantity the heuristic method optimizes indirectly.
func (s *Selection) TotalFragmentBytes() int {
	total := 0
	for _, c := range s.Covers {
		total += c.View.TotalBytes
	}
	return total
}

// Minimum performs exact minimum selection over the given candidate
// views: the smallest set whose covers answer Q (§IV-B's "naive method",
// O(2^n) worst case, implemented as an element-driven set-cover search
// with size pruning).
func Minimum(q *pattern.Pattern, candidates []*views.View) (*Selection, error) {
	return MinimumBudget(q, candidates, nil)
}

// MinimumBudget is Minimum under a cancellation/step budget: every
// candidate homomorphism charges Hom, and every node of the subset-cover
// search charges a step, so adversarial view sets that force the O(2^n)
// worst case abort promptly instead of running away.
func MinimumBudget(q *pattern.Pattern, candidates []*views.View, b *budget.B) (*Selection, error) {
	if err := fpMinimum.Fire(); err != nil {
		return nil, err
	}
	sel := &Selection{}
	var covers []*Cover
	for _, v := range candidates {
		if v == nil {
			continue
		}
		if err := b.Hom(); err != nil {
			return nil, err
		}
		sel.HomsComputed++
		if c := ComputeCover(v, q); c != nil && c.Size() > 0 {
			covers = append(covers, c)
		}
	}
	best, err := minimumCover(q, covers, b)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNotAnswerable
	}
	sel.Covers = best
	return sel, nil
}

// minimumCover searches for a smallest answering subset of covers,
// charging one budget step per search node.
func minimumCover(q *pattern.Pattern, covers []*Cover, b *budget.B) ([]*Cover, error) {
	leaves := q.Leaves()
	var best []*Cover
	var berr error
	// Depth-first search on the first uncovered element (Δ first, then
	// leaves in preorder), pruning on the best size found so far.
	var dfs func(chosen []*Cover)
	dfs = func(chosen []*Cover) {
		if berr != nil {
			return
		}
		if berr = b.Step(1); berr != nil {
			return
		}
		if best != nil && len(chosen) >= len(best) {
			return
		}
		// find an uncovered element
		delta := false
		covered := make(map[*pattern.Node]bool)
		for _, c := range chosen {
			if c.Delta {
				delta = true
			}
			for n := range c.Leaves {
				covered[n] = true
			}
		}
		var candidates []*Cover
		if !delta {
			for _, c := range covers {
				if c.Delta {
					candidates = append(candidates, c)
				}
			}
		} else {
			var missing *pattern.Node
			for _, n := range leaves {
				if !covered[n] {
					missing = n
					break
				}
			}
			if missing == nil {
				cp := append([]*Cover(nil), chosen...)
				best = cp
				return
			}
			for _, c := range covers {
				if c.Leaves[missing] {
					candidates = append(candidates, c)
				}
			}
		}
		for _, c := range candidates {
			already := false
			for _, ch := range chosen {
				if ch == c {
					already = true
					break
				}
			}
			if already {
				continue
			}
			dfs(append(chosen, c))
		}
	}
	dfs(nil)
	if berr != nil {
		return nil, berr
	}
	return best, nil
}

// Heuristic implements Algorithm 2: greedy selection over VFilter's
// sorted lists, computing homomorphisms lazily, preferring views whose
// containing path pattern is longest (a proxy for smaller materialized
// fragments). The "random" leaf choice of line 3 is made deterministic
// (preorder) for reproducibility. The result is a minimal (not
// necessarily minimum) answering set.
func Heuristic(q *pattern.Pattern, res *vfilter.Result, reg *views.Registry) (*Selection, error) {
	return HeuristicBudget(q, res, reg, nil)
}

// HeuristicBudget is Heuristic under a cancellation/step budget: each
// lazily computed homomorphism charges Hom and each list probe a step.
func HeuristicBudget(q *pattern.Pattern, res *vfilter.Result, reg *views.Registry, b *budget.B) (*Selection, error) {
	if err := fpHeuristic.Fire(); err != nil {
		return nil, err
	}
	sel := &Selection{}
	leafPathIdx := leafPathIndexes(q, res.QueryPaths)
	uncovered := make(map[*pattern.Node]bool)
	for _, n := range q.Leaves() {
		uncovered[n] = true
	}
	delta := false
	coverByView := make(map[int]*Cover)
	var chosen []*Cover
	var berr error

	tryView := func(id int, want *pattern.Node, wantDelta bool) bool {
		if berr != nil {
			return false
		}
		if berr = b.Step(1); berr != nil {
			return false
		}
		c, seen := coverByView[id]
		if !seen {
			v := reg.Get(id)
			if v == nil {
				return false
			}
			if berr = b.Hom(); berr != nil {
				return false
			}
			sel.HomsComputed++
			c = ComputeCover(v, q)
			coverByView[id] = c
		}
		if c == nil {
			return false
		}
		if want != nil && !c.Leaves[want] {
			return false
		}
		if wantDelta && !c.Delta {
			return false
		}
		for _, ch := range chosen {
			if ch == c {
				return false
			}
		}
		chosen = append(chosen, c)
		for n := range c.Leaves {
			delete(uncovered, n)
		}
		if c.Delta {
			delta = true
		}
		return true
	}

	for _, leaf := range q.Leaves() {
		if !uncovered[leaf] {
			continue
		}
		pi, ok := leafPathIdx[leaf]
		if !ok {
			return nil, fmt.Errorf("selection: no path pattern for leaf %q", leaf.Label)
		}
		found := false
		for _, le := range res.Lists[pi] {
			if tryView(le.View, leaf, false) {
				found = true
				break
			}
		}
		if berr != nil {
			return nil, berr
		}
		if !found {
			return nil, ErrNotAnswerable // lines 15-18
		}
	}
	if !delta {
		// Cover Δ: try views from every list, longest first.
		var all []vfilter.ListEntry
		for _, l := range res.Lists {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Len != all[j].Len {
				return all[i].Len > all[j].Len
			}
			return all[i].View < all[j].View
		})
		for _, le := range all {
			if tryView(le.View, nil, true) {
				break
			}
		}
		if berr != nil {
			return nil, berr
		}
		if !delta {
			return nil, ErrNotAnswerable
		}
	}
	sel.Covers = removeRedundant(q, chosen)
	return sel, nil
}

// removeRedundant drops views whose contribution is subsumed by the rest
// (line 20 of Algorithm 2), keeping the answerability invariant.
func removeRedundant(q *pattern.Pattern, chosen []*Cover) []*Cover {
	out := append([]*Cover(nil), chosen...)
	for i := len(out) - 1; i >= 0; i-- {
		reduced := append(append([]*Cover(nil), out[:i]...), out[i+1:]...)
		if Answerable(q, reduced) {
			out = reduced
		}
	}
	return out
}

// leafPathIndexes maps each leaf of q to the index of its normalized
// root-to-leaf path within paths.
func leafPathIndexes(q *pattern.Pattern, paths []pattern.Path) map[*pattern.Node]int {
	keyIdx := make(map[string]int, len(paths))
	for i, p := range paths {
		keyIdx[p.Key()] = i
	}
	out := make(map[*pattern.Node]int)
	var steps []pattern.Step
	var rec func(n *pattern.Node)
	rec = func(n *pattern.Node) {
		steps = append(steps, pattern.Step{Axis: n.Axis, Label: n.Label})
		if n.IsLeaf() {
			norm := pattern.Normalize(pattern.Path{Steps: append([]pattern.Step(nil), steps...)})
			if i, ok := keyIdx[norm.Key()]; ok {
				out[n] = i
			}
		}
		for _, c := range n.Children {
			rec(c)
		}
		steps = steps[:len(steps)-1]
	}
	rec(q.Root)
	return out
}
