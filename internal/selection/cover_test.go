package selection_test

import (
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/views"
	"xpathviews/internal/xpath"
)

// setupBook materializes the Table I views over the reconstructed book
// tree and builds the VFilter.
func setupBook(t *testing.T) (*views.Registry, *vfilter.Filter) {
	t.Helper()
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	f := vfilter.New()
	for _, src := range paperdata.TableIViews() {
		v, err := reg.Add(xpath.MustParse(src), 0)
		if err != nil {
			t.Fatalf("materialize %s: %v", src, err)
		}
		f.AddView(v.ID, v.Pattern)
	}
	return reg, f
}

// TestExample43Covers reproduces the leaf-cover values of Example 4.3:
// LC(V4, Q_e) = {i, p} and LC(V1, Q_e) = {Δ, t, p}.
func TestExample43Covers(t *testing.T) {
	reg, _ := setupBook(t)
	q := xpath.MustParse(paperdata.QueryE)

	v1 := reg.Get(0) // //s[t]/p
	v4 := reg.Get(3) // //s[p]/f

	c1 := selection.ComputeCover(v1, q)
	if c1 == nil || c1.String() != "{Δ, p, t}" {
		t.Fatalf("LC(V1,Qe) = %v, want {Δ, p, t}", c1)
	}
	c4 := selection.ComputeCover(v4, q)
	if c4 == nil || c4.String() != "{i, p}" {
		t.Fatalf("LC(V4,Qe) = %v, want {i, p}", c4)
	}
	if c4.Delta {
		t.Fatal("LC(V4,Qe) must not contain Δ")
	}
}

// TestExample43Heuristic: Algorithm 2 returns {V1, V4} for Q_e.
func TestExample43Heuristic(t *testing.T) {
	reg, f := setupBook(t)
	q := xpath.MustParse(paperdata.QueryE)
	res := f.Filtering(q)
	sel, err := selection.Heuristic(q, res, reg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, c := range sel.Covers {
		got[c.View.ID] = true
	}
	if len(got) != 2 || !got[0] || !got[3] {
		t.Fatalf("heuristic selected %v, want {V1, V4}", got)
	}
	if !selection.Answerable(q, sel.Covers) {
		t.Fatal("selection not answerable")
	}
}

// TestMinimumSelection: the minimum set for Q_e is also two views.
func TestMinimumSelection(t *testing.T) {
	reg, _ := setupBook(t)
	q := xpath.MustParse(paperdata.QueryE)
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Covers) != 2 {
		t.Fatalf("minimum selection has %d views, want 2", len(sel.Covers))
	}
	if sel.HomsComputed != reg.Len() {
		t.Fatalf("minimum computed %d homs, want %d (one per view)", sel.HomsComputed, reg.Len())
	}
}

// TestSingleViewStrongCover: a view identical to the query answers it
// alone (condition 3), even with descendant edges on the spine.
func TestSingleViewStrongCover(t *testing.T) {
	reg, _ := setupBook(t)
	q := xpath.MustParse("//s[t]/p")
	c := selection.ComputeCover(reg.Get(0), q) // V1 = //s[t]/p
	if c == nil || !c.Strong || !c.Delta {
		t.Fatalf("identical view is not a strong cover: %+v", c)
	}
	if !selection.Answerable(q, []*selection.Cover{c}) {
		t.Fatal("strong cover alone should answer")
	}
}

// TestCorrelationTrap is Example 4.2's unsound combination, transplanted:
// Q needs two predicates on the SAME branching node; two views each
// guaranteeing one of them through descendant edges must NOT jointly
// answer. (V covers via mode (b) only with a child-only tail.)
func TestCorrelationTrap(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	reg := views.NewRegistry(tree, enc)
	// Views with // spine tails: guarantees are not rigidly anchored.
	vA, err := reg.Add(xpath.MustParse("//s[t]//p"), 0)
	if err != nil {
		t.Fatal(err)
	}
	vB, err := reg.Add(xpath.MustParse("//s[f]//p"), 0)
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse("//s[t][f]//p")
	cA := selection.ComputeCover(vA, q)
	cB := selection.ComputeCover(vB, q)
	if cA == nil || cB == nil {
		t.Fatal("expected homomorphisms to exist")
	}
	// Each cover may contain Δ and p, but neither may claim the sibling
	// predicate leaf of the other through a non-rigid anchor.
	if cA.Leaves[findLeaf(t, q, "f")] {
		t.Fatalf("LC(vA) = %v wrongly covers f through a //-tail", cA)
	}
	if cB.Leaves[findLeaf(t, q, "t")] {
		t.Fatalf("LC(vB) = %v wrongly covers t through a //-tail", cB)
	}
}

func findLeaf(t *testing.T, q *pattern.Pattern, label string) *pattern.Node {
	t.Helper()
	for _, l := range q.Leaves() {
		if l.Label == label {
			return l
		}
	}
	t.Fatalf("no leaf %q", label)
	return nil
}
