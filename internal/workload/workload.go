// Package workload generates random XPath queries in the style of the
// YFilter query generator the paper used (§VI), with the same knobs:
// maximum depth, wildcard probability, descendant-edge probability, the
// number of (attribute) predicates and the number of nested paths
// (structural branch predicates). Queries are random walks over a schema
// graph — here the XMark vocabulary — and a helper retains only positive
// queries (non-empty result on a document), as the paper did.
package workload

import (
	"math/rand"
	"sort"

	"xpathviews/internal/engine"
	"xpathviews/internal/pattern"
	"xpathviews/internal/xmltree"
)

// Params mirrors the paper's generator parameters (§VI-A sets
// max_depth=4, prob_wild=prob_edge=0.2, num_pred=1, num_nestedpath=1;
// §VI-B uses num_nestedpath=2 and no attribute predicates).
type Params struct {
	MaxDepth      int     // maximum number of steps on the main path
	ProbWild      float64 // probability a step's label becomes '*'
	ProbDesc      float64 // probability a step's axis becomes '//'
	NumPred       int     // attribute predicates per query (upper bound)
	NumNestedPath int     // structural branch predicates per query (upper bound)
}

// Generator produces random queries over a schema.
type Generator struct {
	r      *rand.Rand
	schema map[string][]string
	attrs  map[string][]string
	labels []string // labels that have schema children, sorted for determinism
	params Params
}

// New creates a generator over the given schema adjacency (parent label →
// child labels) and attribute table.
func New(seed int64, schema map[string][]string, attrs map[string][]string, p Params) *Generator {
	g := &Generator{
		r:      rand.New(rand.NewSource(seed)),
		schema: schema,
		attrs:  attrs,
		params: p,
	}
	for l := range schema {
		g.labels = append(g.labels, l)
	}
	sort.Strings(g.labels)
	return g
}

// Query generates one random query pattern. The walk starts at a random
// schema label and descends through schema edges; wildcards and
// descendant axes are injected per the probabilities. Branch predicates
// (nested paths) are short walks hanging off random main-path nodes, and
// attribute predicates are drawn from the attribute table.
func (g *Generator) Query() *pattern.Pattern {
	depth := 2 + g.r.Intn(g.params.MaxDepth-1) // 2..MaxDepth steps
	if g.params.MaxDepth < 2 {
		depth = 1
	}
	startLabel := g.labels[g.r.Intn(len(g.labels))]
	root := pattern.NewNode(g.stepLabel(startLabel), pattern.Descendant)
	schemaLabel := startLabel
	cur := root
	var mainPath []*pattern.Node
	var mainLabels []string
	mainPath = append(mainPath, cur)
	mainLabels = append(mainLabels, schemaLabel)
	for i := 1; i < depth; i++ {
		children := g.schema[schemaLabel]
		if len(children) == 0 {
			break
		}
		next := children[g.r.Intn(len(children))]
		ax := pattern.Child
		if g.r.Float64() < g.params.ProbDesc {
			ax = pattern.Descendant
		}
		cur = cur.AddChild(g.stepLabel(next), ax)
		schemaLabel = next
		mainPath = append(mainPath, cur)
		mainLabels = append(mainLabels, schemaLabel)
	}
	// Nested path predicates.
	for k := 0; k < g.params.NumNestedPath; k++ {
		if g.r.Intn(2) == 0 && k > 0 {
			continue // "up to" semantics beyond the first
		}
		at := g.r.Intn(len(mainPath))
		g.attachBranch(mainPath[at], mainLabels[at], 1+g.r.Intn(2))
	}
	// Attribute predicates.
	for k := 0; k < g.params.NumPred; k++ {
		at := g.r.Intn(len(mainPath))
		owner := mainPath[at]
		names := g.attrs[mainLabels[at]]
		if len(names) == 0 || owner.Label == pattern.Wildcard {
			continue
		}
		owner.Attrs = append(owner.Attrs, pattern.AttrPred{Name: names[g.r.Intn(len(names))], Op: pattern.AttrExists})
	}
	return &pattern.Pattern{Root: root, Ret: cur}
}

func (g *Generator) attachBranch(owner *pattern.Node, ownerLabel string, steps int) {
	schemaLabel := ownerLabel
	cur := owner
	for i := 0; i < steps; i++ {
		children := g.schema[schemaLabel]
		if len(children) == 0 {
			return
		}
		next := children[g.r.Intn(len(children))]
		ax := pattern.Child
		if g.r.Float64() < g.params.ProbDesc {
			ax = pattern.Descendant
		}
		cur = cur.AddChild(g.stepLabel(next), ax)
		schemaLabel = next
	}
}

func (g *Generator) stepLabel(l string) string {
	if g.r.Float64() < g.params.ProbWild {
		return pattern.Wildcard
	}
	return l
}

// Positive generates queries until n of them are positive (non-empty
// result) on doc, mirroring the paper's "we wrote a program to find
// positive queries". maxTries bounds the search; fewer than n queries may
// be returned if the bound is hit.
func (g *Generator) Positive(doc *xmltree.Tree, n, maxTries int) []*pattern.Pattern {
	var out []*pattern.Pattern
	for tries := 0; len(out) < n && tries < maxTries; tries++ {
		q := g.Query()
		if len(engine.Answers(doc, q)) > 0 {
			out = append(out, q)
		}
	}
	return out
}
