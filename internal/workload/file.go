package workload

// Workload files are the advisor's interchange format: one query per
// line, optionally preceded by an observed frequency and a tab. Lines
// render with Entry.String and parse back with ParseEntry, so a file
// written by Write round-trips through Read.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry is one workload line: an XPath query with an observed frequency.
type Entry struct {
	Freq  int
	Query string
}

// String renders the entry as a workload-file line: "freq<TAB>query".
func (e Entry) String() string {
	f := e.Freq
	if f < 1 {
		f = 1
	}
	return fmt.Sprintf("%d\t%s", f, e.Query)
}

// ParseEntry parses one workload-file line. A bare query line means
// frequency 1; "freq<TAB>query" carries an explicit count. Blank lines
// and '#' comments yield ok=false.
func ParseEntry(line string) (e Entry, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Entry{}, false, nil
	}
	if f, q, found := strings.Cut(line, "\t"); found {
		n, perr := strconv.Atoi(strings.TrimSpace(f))
		if perr != nil || n < 1 {
			return Entry{}, false, fmt.Errorf("workload: bad frequency %q", f)
		}
		return Entry{Freq: n, Query: strings.TrimSpace(q)}, true, nil
	}
	return Entry{Freq: 1, Query: line}, true, nil
}

// Write emits the entries as a workload file.
func Write(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a workload file, merging repeated queries by summing their
// frequencies (first-seen order is preserved).
func Read(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Entry
	at := make(map[string]int)
	for sc.Scan() {
		e, ok, err := ParseEntry(sc.Text())
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if i, seen := at[e.Query]; seen {
			out[i].Freq += e.Freq
			continue
		}
		at[e.Query] = len(out)
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	return out, nil
}
