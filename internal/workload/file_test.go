package workload_test

import (
	"strings"
	"testing"

	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
)

func TestEntryRoundTrip(t *testing.T) {
	in := []workload.Entry{
		{Freq: 40, Query: "//open_auction[bidder]/seller"},
		{Freq: 1, Query: "//person[address]/name"},
		{Freq: 7, Query: "//item[.//keyword]/name"},
	}
	var buf strings.Builder
	if err := workload.Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := workload.Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip changed entry count: %d → %d", len(in), len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d changed: %+v → %+v", i, in[i], out[i])
		}
	}
}

func TestParseEntryForms(t *testing.T) {
	cases := []struct {
		line string
		want workload.Entry
		ok   bool
		err  bool
	}{
		{"//a/b", workload.Entry{Freq: 1, Query: "//a/b"}, true, false},
		{"12\t//a/b", workload.Entry{Freq: 12, Query: "//a/b"}, true, false},
		{"  3\t //a ", workload.Entry{Freq: 3, Query: "//a"}, true, false},
		{"", workload.Entry{}, false, false},
		{"   ", workload.Entry{}, false, false},
		{"# comment", workload.Entry{}, false, false},
		{"x\t//a", workload.Entry{}, false, true},
		{"0\t//a", workload.Entry{}, false, true},
	}
	for _, tc := range cases {
		e, ok, err := workload.ParseEntry(tc.line)
		if (err != nil) != tc.err || ok != tc.ok {
			t.Fatalf("ParseEntry(%q) = ok=%v err=%v, want ok=%v err=%v", tc.line, ok, err, tc.ok, tc.err)
		}
		if ok && e != tc.want {
			t.Fatalf("ParseEntry(%q) = %+v, want %+v", tc.line, e, tc.want)
		}
	}
}

func TestReadMergesDuplicates(t *testing.T) {
	src := "2\t//a/b\n# interleaved comment\n//a/b\n5\t//c\n"
	out, err := workload.Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d entries, want 2 (duplicates merged)", len(out))
	}
	if out[0] != (workload.Entry{Freq: 3, Query: "//a/b"}) {
		t.Fatalf("merged entry = %+v", out[0])
	}
	if out[1] != (workload.Entry{Freq: 5, Query: "//c"}) {
		t.Fatalf("second entry = %+v", out[1])
	}
}

// TestGeneratedQueriesRoundTrip checks that generator output survives a
// workload file round trip verbatim — the property the advisor CLI
// depends on.
func TestGeneratedQueriesRoundTrip(t *testing.T) {
	g := workload.New(21, xmark.Schema(), xmark.Attributes(), params())
	var entries []workload.Entry
	for i := 0; i < 100; i++ {
		entries = append(entries, workload.Entry{Freq: i%5 + 1, Query: g.Query().String()})
	}
	var buf strings.Builder
	if err := workload.Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	out, err := workload.Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate generated queries merge, so compare via maps.
	want := make(map[string]int)
	for _, e := range entries {
		want[e.Query] += e.Freq
	}
	got := make(map[string]int)
	for _, e := range out {
		got[e.Query] += e.Freq
	}
	if len(got) != len(want) {
		t.Fatalf("distinct queries changed: %d → %d", len(want), len(got))
	}
	for q, f := range want {
		if got[q] != f {
			t.Fatalf("query %q freq %d → %d", q, f, got[q])
		}
	}
}
