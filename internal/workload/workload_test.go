package workload_test

import (
	"testing"
	"time"

	"xpathviews/internal/engine"
	"xpathviews/internal/pattern"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
)

func params() workload.Params {
	return workload.Params{MaxDepth: 4, ProbWild: 0.2, ProbDesc: 0.2, NumPred: 1, NumNestedPath: 1}
}

func TestQueryShape(t *testing.T) {
	g := workload.New(1, xmark.Schema(), xmark.Attributes(), params())
	sawWild, sawDesc, sawBranch, sawAttr := false, false, false, false
	for i := 0; i < 500; i++ {
		q := g.Query()
		if err := q.Validate(); err != nil {
			t.Fatalf("generated invalid pattern: %v", err)
		}
		if d := q.Depth(); d > 4+2 { // main path ≤ 4 steps; branches add ≤ 2
			t.Fatalf("query too deep: %s (depth %d)", q, d)
		}
		q.Walk(func(n *pattern.Node) bool {
			if n.Label == pattern.Wildcard {
				sawWild = true
			}
			if n.Axis == pattern.Descendant && n.Parent != nil {
				sawDesc = true
			}
			if len(n.Attrs) > 0 {
				sawAttr = true
			}
			return true
		})
		if len(q.Leaves()) > 1 {
			sawBranch = true
		}
	}
	if !sawWild || !sawDesc || !sawBranch || !sawAttr {
		t.Fatalf("generator never produced some feature: wild=%v desc=%v branch=%v attr=%v",
			sawWild, sawDesc, sawBranch, sawAttr)
	}
}

func TestDeterminism(t *testing.T) {
	a := workload.New(7, xmark.Schema(), xmark.Attributes(), params())
	b := workload.New(7, xmark.Schema(), xmark.Attributes(), params())
	for i := 0; i < 50; i++ {
		if a.Query().String() != b.Query().String() {
			t.Fatal("same seed produced different queries")
		}
	}
	c := workload.New(8, xmark.Schema(), xmark.Attributes(), params())
	same := 0
	for i := 0; i < 50; i++ {
		if a.Query().String() == c.Query().String() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestPositive(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 3})
	g := workload.New(9, xmark.Schema(), xmark.Attributes(), params())
	qs := g.Positive(doc, 20, 4000)
	if len(qs) < 10 {
		t.Fatalf("found only %d positive queries", len(qs))
	}
	for _, q := range qs {
		if len(engine.Answers(doc, q)) == 0 {
			t.Fatalf("Positive returned an empty-result query: %s", q)
		}
	}
}

// TestPositiveRespectsMaxTries runs Positive against a document no
// XMark-schema query can match: it must give up after maxTries instead
// of spinning, and return whatever it found (nothing).
func TestPositiveRespectsMaxTries(t *testing.T) {
	doc, err := xmltree.ParseString("<nothing_in_the_schema/>")
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(13, xmark.Schema(), xmark.Attributes(), params())
	done := make(chan []*pattern.Pattern, 1)
	go func() { done <- g.Positive(doc, 5, 500) }()
	select {
	case qs := <-done:
		if len(qs) != 0 {
			t.Fatalf("Positive found %d matches on an unmatchable document", len(qs))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Positive did not return within 30s — maxTries not respected")
	}
}

func TestNoAttrParams(t *testing.T) {
	p := params()
	p.NumPred = 0
	g := workload.New(11, xmark.Schema(), xmark.Attributes(), p)
	for i := 0; i < 200; i++ {
		q := g.Query()
		q.Walk(func(n *pattern.Node) bool {
			if len(n.Attrs) > 0 {
				t.Fatalf("NumPred=0 produced attribute predicate in %s", q)
			}
			return true
		})
	}
}
