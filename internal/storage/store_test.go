package storage_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xpathviews/internal/storage"
)

func openTemp(t *testing.T) (*storage.Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.db")
	s, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()

	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("empty store returned a value")
	}
	if err := s.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get([]byte("k"))
	if !ok || string(v) != "v2" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("deleted key still present")
	}
	if err := s.Delete([]byte("missing")); err != nil {
		t.Fatal("deleting a missing key must be a no-op")
	}
}

func TestReopenRecovers(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key%02d", i)), bytes.Repeat([]byte{byte(i)}, i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete([]byte("key07"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 49 {
		t.Fatalf("recovered %d keys, want 49", s2.Len())
	}
	v, ok := s2.Get([]byte("key10"))
	if !ok || len(v) != 10 || v[0] != 10 {
		t.Fatalf("recovered value wrong: %v %v", v, ok)
	}
	if _, ok := s2.Get([]byte("key07")); ok {
		t.Fatal("deleted key resurrected")
	}
}

func TestTornTailTruncated(t *testing.T) {
	s, path := openTemp(t)
	s.Put([]byte("alpha"), []byte("1"))
	s.Put([]byte("beta"), []byte("2"))
	s.Close()

	// Simulate a crash mid-append: chop bytes off the tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := storage.Open(path)
	if err != nil {
		t.Fatalf("torn tail must not fail Open: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get([]byte("alpha")); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := s2.Get([]byte("beta")); ok {
		t.Fatal("torn record must be dropped")
	}
	// The store must be writable again after truncation.
	if err := s2.Put([]byte("gamma"), []byte("3")); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptChecksumStopsReplay(t *testing.T) {
	s, path := openTemp(t)
	s.Put([]byte("alpha"), []byte("11111111"))
	s.Put([]byte("beta"), []byte("22222222"))
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's value.
	data[len(data)-6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get([]byte("alpha")); !ok {
		t.Fatal("record before corruption lost")
	}
	if _, ok := s2.Get([]byte("beta")); ok {
		t.Fatal("corrupt record must not replay")
	}
}

func TestNotAStoreFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.db")
	if err := os.WriteFile(path, []byte("whatever"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.Open(path); err == nil {
		t.Fatal("Open accepted a non-store file")
	}
}

func TestCompactShrinksAndPreserves(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	for i := 0; i < 20; i++ {
		s.Put([]byte("same"), bytes.Repeat([]byte("x"), 100))
	}
	s.Put([]byte("other"), []byte("y"))
	before := s.Size()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Size() >= before {
		t.Fatalf("compact did not shrink: %d -> %d", before, s.Size())
	}
	v, ok := s.Get([]byte("same"))
	if !ok || len(v) != 100 {
		t.Fatal("compact lost data")
	}
	if _, ok := s.Get([]byte("other")); !ok {
		t.Fatal("compact lost a key")
	}
	// Still writable.
	if err := s.Put([]byte("after"), []byte("z")); err != nil {
		t.Fatal(err)
	}
}

func TestKeysSortedAndLiveBytes(t *testing.T) {
	s := storage.OpenMemory()
	s.Put([]byte("b"), []byte("2"))
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("c"), []byte("3"))
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
	if s.LiveBytes() != 6 {
		t.Fatalf("LiveBytes = %d", s.LiveBytes())
	}
	if s.Size() <= 0 {
		t.Fatal("memory store must account size")
	}
	if err := s.Compact(); err != nil {
		t.Fatal("memory compact must be a no-op")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := storage.OpenMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := []byte(fmt.Sprintf("g%d-%d", g, i%10))
				s.Put(key, []byte{byte(i)})
				s.Get(key)
				if i%3 == 0 {
					s.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPartialAppendRecovered simulates a crash that left a partially
// written record at the tail — both a torn header and a full header with
// a torn body — and checks that reopening replays every complete record,
// drops the partial one, and leaves the store writable and durable
// across a further clean reopen.
func TestPartialAppendRecovered(t *testing.T) {
	cases := []struct {
		name string
		tail func() []byte
	}{
		{"partial header", func() []byte {
			// Only the op byte and half the key-length field landed.
			return []byte{0, 0x05, 0x00}
		}},
		{"partial body", func() []byte {
			// Complete header promising key "delta" value "4444", but the
			// crash cut the write after three key bytes.
			tail := []byte{0}
			tail = append(tail, 5, 0, 0, 0) // keyLen = 5
			tail = append(tail, 4, 0, 0, 0) // valLen = 4
			tail = append(tail, 'd', 'e', 'l')
			return tail
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, path := openTemp(t)
			s.Put([]byte("alpha"), []byte("1"))
			s.Put([]byte("beta"), []byte("2"))
			s.Put([]byte("gamma"), []byte("3"))
			s.Close()

			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail()); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s2, err := storage.Open(path)
			if err != nil {
				t.Fatalf("partial append must not fail Open: %v", err)
			}
			for _, k := range []string{"alpha", "beta", "gamma"} {
				if _, ok := s2.Get([]byte(k)); !ok {
					t.Fatalf("complete record %q lost", k)
				}
			}
			if _, ok := s2.Get([]byte("delta")); ok {
				t.Fatal("partial record must not replay")
			}
			if s2.Len() != 3 {
				t.Fatalf("recovered %d keys, want 3", s2.Len())
			}
			// Writable after recovery, and the new write must survive a
			// clean reopen (i.e. recovery really truncated the junk tail).
			if err := s2.Put([]byte("delta"), []byte("4")); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := storage.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if s3.Len() != 4 {
				t.Fatalf("after recovery+write reopen has %d keys, want 4", s3.Len())
			}
			if v, ok := s3.Get([]byte("delta")); !ok || string(v) != "4" {
				t.Fatalf("post-recovery write lost: %q %v", v, ok)
			}
		})
	}
}

func TestAutoCompact(t *testing.T) {
	s, path := openTemp(t)
	s.SetAutoCompact(0.5, 2048)

	// Overwrite one key repeatedly: garbage accumulates until the ratio
	// trips, then the log must shrink back to roughly the live set.
	val := bytes.Repeat([]byte("v"), 256)
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte("hot"), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put([]byte("cold"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	final := s.Size()
	// 200 overwrites of a 256-byte value append ~54 KB; compaction must
	// have kept the file well under that.
	if final > 8<<10 {
		t.Fatalf("auto-compaction did not shrink the log: final size %d", final)
	}
	// Above the min size the ratio must be back under the threshold
	// (below it, small logs are allowed to carry garbage by design).
	if g := s.GarbageBytes(); final >= 2048 && float64(g) > 0.5*float64(final) {
		t.Fatalf("garbage ratio still above threshold after compaction: %d of %d", g, final)
	}

	// The compacted log must replay cleanly with the live data intact.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := storage.Open(path)
	if err != nil {
		t.Fatalf("reopen after auto-compact: %v", err)
	}
	defer s2.Close()
	if v, ok := s2.Get([]byte("hot")); !ok || !bytes.Equal(v, val) {
		t.Fatalf("hot key lost after compaction+replay: ok=%v len=%d", ok, len(v))
	}
	if v, ok := s2.Get([]byte("cold")); !ok || string(v) != "x" {
		t.Fatalf("cold key lost after compaction+replay: %q %v", v, ok)
	}
	if s2.Len() != 2 {
		t.Fatalf("replay found %d keys, want 2", s2.Len())
	}

	// Deletes count as garbage too and must also trigger compaction.
	s2.SetAutoCompact(0.25, 1024)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("tmp%03d", i))
		if err := s2.Put(k, bytes.Repeat([]byte("d"), 64)); err != nil {
			t.Fatal(err)
		}
		if err := s2.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if sz := s2.Size(); sz > 8<<10 {
		t.Fatalf("delete churn not compacted: size %d", sz)
	}
	if s2.Len() != 2 {
		t.Fatalf("churn damaged live keys: %d, want 2", s2.Len())
	}
}

func TestAutoCompactDisabledByDefault(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte("k"), bytes.Repeat([]byte("v"), 128)); err != nil {
			t.Fatal(err)
		}
	}
	// Without SetAutoCompact the log must keep every version (seed
	// behaviour: append-only until an explicit Compact).
	if sz := s.Size(); sz < 50*128 {
		t.Fatalf("log unexpectedly compacted without opt-in: size %d", sz)
	}
	if g := s.GarbageBytes(); g <= 0 {
		t.Fatalf("GarbageBytes = %d, want positive after overwrites", g)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if g := s.GarbageBytes(); g != 0 {
		t.Fatalf("GarbageBytes = %d after explicit Compact, want 0", g)
	}
}
