package storage_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xpathviews/internal/storage"
)

func openTemp(t *testing.T) (*storage.Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.db")
	s, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()

	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("empty store returned a value")
	}
	if err := s.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get([]byte("k"))
	if !ok || string(v) != "v2" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("deleted key still present")
	}
	if err := s.Delete([]byte("missing")); err != nil {
		t.Fatal("deleting a missing key must be a no-op")
	}
}

func TestReopenRecovers(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key%02d", i)), bytes.Repeat([]byte{byte(i)}, i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete([]byte("key07"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 49 {
		t.Fatalf("recovered %d keys, want 49", s2.Len())
	}
	v, ok := s2.Get([]byte("key10"))
	if !ok || len(v) != 10 || v[0] != 10 {
		t.Fatalf("recovered value wrong: %v %v", v, ok)
	}
	if _, ok := s2.Get([]byte("key07")); ok {
		t.Fatal("deleted key resurrected")
	}
}

func TestTornTailTruncated(t *testing.T) {
	s, path := openTemp(t)
	s.Put([]byte("alpha"), []byte("1"))
	s.Put([]byte("beta"), []byte("2"))
	s.Close()

	// Simulate a crash mid-append: chop bytes off the tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := storage.Open(path)
	if err != nil {
		t.Fatalf("torn tail must not fail Open: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get([]byte("alpha")); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := s2.Get([]byte("beta")); ok {
		t.Fatal("torn record must be dropped")
	}
	// The store must be writable again after truncation.
	if err := s2.Put([]byte("gamma"), []byte("3")); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptChecksumStopsReplay(t *testing.T) {
	s, path := openTemp(t)
	s.Put([]byte("alpha"), []byte("11111111"))
	s.Put([]byte("beta"), []byte("22222222"))
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's value.
	data[len(data)-6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get([]byte("alpha")); !ok {
		t.Fatal("record before corruption lost")
	}
	if _, ok := s2.Get([]byte("beta")); ok {
		t.Fatal("corrupt record must not replay")
	}
}

func TestNotAStoreFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.db")
	if err := os.WriteFile(path, []byte("whatever"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.Open(path); err == nil {
		t.Fatal("Open accepted a non-store file")
	}
}

func TestCompactShrinksAndPreserves(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	for i := 0; i < 20; i++ {
		s.Put([]byte("same"), bytes.Repeat([]byte("x"), 100))
	}
	s.Put([]byte("other"), []byte("y"))
	before := s.Size()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Size() >= before {
		t.Fatalf("compact did not shrink: %d -> %d", before, s.Size())
	}
	v, ok := s.Get([]byte("same"))
	if !ok || len(v) != 100 {
		t.Fatal("compact lost data")
	}
	if _, ok := s.Get([]byte("other")); !ok {
		t.Fatal("compact lost a key")
	}
	// Still writable.
	if err := s.Put([]byte("after"), []byte("z")); err != nil {
		t.Fatal(err)
	}
}

func TestKeysSortedAndLiveBytes(t *testing.T) {
	s := storage.OpenMemory()
	s.Put([]byte("b"), []byte("2"))
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("c"), []byte("3"))
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
	if s.LiveBytes() != 6 {
		t.Fatalf("LiveBytes = %d", s.LiveBytes())
	}
	if s.Size() <= 0 {
		t.Fatal("memory store must account size")
	}
	if err := s.Compact(); err != nil {
		t.Fatal("memory compact must be a no-op")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := storage.OpenMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := []byte(fmt.Sprintf("g%d-%d", g, i%10))
				s.Put(key, []byte{byte(i)})
				s.Get(key)
				if i%3 == 0 {
					s.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPartialAppendRecovered simulates a crash that left a partially
// written record at the tail — both a torn header and a full header with
// a torn body — and checks that reopening replays every complete record,
// drops the partial one, and leaves the store writable and durable
// across a further clean reopen.
func TestPartialAppendRecovered(t *testing.T) {
	cases := []struct {
		name string
		tail func() []byte
	}{
		{"partial header", func() []byte {
			// Only the op byte and half the key-length field landed.
			return []byte{0, 0x05, 0x00}
		}},
		{"partial body", func() []byte {
			// Complete header promising key "delta" value "4444", but the
			// crash cut the write after three key bytes.
			tail := []byte{0}
			tail = append(tail, 5, 0, 0, 0) // keyLen = 5
			tail = append(tail, 4, 0, 0, 0) // valLen = 4
			tail = append(tail, 'd', 'e', 'l')
			return tail
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, path := openTemp(t)
			s.Put([]byte("alpha"), []byte("1"))
			s.Put([]byte("beta"), []byte("2"))
			s.Put([]byte("gamma"), []byte("3"))
			s.Close()

			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail()); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s2, err := storage.Open(path)
			if err != nil {
				t.Fatalf("partial append must not fail Open: %v", err)
			}
			for _, k := range []string{"alpha", "beta", "gamma"} {
				if _, ok := s2.Get([]byte(k)); !ok {
					t.Fatalf("complete record %q lost", k)
				}
			}
			if _, ok := s2.Get([]byte("delta")); ok {
				t.Fatal("partial record must not replay")
			}
			if s2.Len() != 3 {
				t.Fatalf("recovered %d keys, want 3", s2.Len())
			}
			// Writable after recovery, and the new write must survive a
			// clean reopen (i.e. recovery really truncated the junk tail).
			if err := s2.Put([]byte("delta"), []byte("4")); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := storage.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if s3.Len() != 4 {
				t.Fatalf("after recovery+write reopen has %d keys, want 4", s3.Len())
			}
			if v, ok := s3.Get([]byte("delta")); !ok || string(v) != "4" {
				t.Fatalf("post-recovery write lost: %q %v", v, ok)
			}
		})
	}
}
