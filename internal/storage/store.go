// Package storage is a small embedded key-value store standing in for the
// Berkeley DB / Berkeley DB XML pair the paper's experiments used as byte
// containers for the VFilter automaton and the materialized XML fragments
// (§VI). It is an append-only log with an in-memory index:
//
//   - Put/Get/Delete over []byte keys and values;
//   - crash-safe reads: every record carries a length header and a
//     checksum, and Open truncates a torn tail instead of failing;
//   - Compact rewrites the log dropping stale versions, either on demand
//     or automatically when the garbage ratio crosses a configured
//     threshold (SetAutoCompact);
//   - Size reports stored bytes — the measurement behind Figure 11.
//
// The store is safe for concurrent use.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// magic begins every log file.
var magic = [4]byte{'x', 'p', 'v', '1'}

const (
	opPut    = byte(1)
	opDelete = byte(2)
)

// Store is an open key-value store.
type Store struct {
	mu   sync.RWMutex
	path string
	f    *os.File
	// index maps key → (offset, length) of the live value in the log;
	// values are also cached in memory (the working sets here are small:
	// automata and capped fragments).
	mem  map[string][]byte
	size int64
	// liveSize is the on-disk size (headers included) the live records
	// would occupy alone; size-len(magic)-liveSize is the garbage the log
	// carries in stale versions and delete markers.
	liveSize int64
	// autoRatio > 0 arms auto-compaction: Put/Delete trigger a compaction
	// once the garbage ratio crosses it and the log is at least autoMin
	// bytes.
	autoRatio float64
	autoMin   int64
}

// Open opens or creates the store at path. A corrupt or torn tail is
// truncated; fully corrupt files yield an error.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	s := &Store{path: path, f: f, mem: make(map[string][]byte)}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenMemory creates a purely in-memory store (no file); Close and
// Compact are no-ops. Used by tests and benchmarks that only need Size
// accounting.
func OpenMemory() *Store {
	return &Store{mem: make(map[string][]byte)}
}

func (s *Store) replay() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("storage: stat: %w", err)
	}
	if info.Size() == 0 {
		if _, err := s.f.Write(magic[:]); err != nil {
			return fmt.Errorf("storage: write magic: %w", err)
		}
		s.size = int64(len(magic))
		return nil
	}
	var hdr [4]byte
	if _, err := io.ReadFull(s.f, hdr[:]); err != nil || hdr != magic {
		return fmt.Errorf("storage: %s is not a store file", s.path)
	}
	off := int64(len(magic))
	buf := make([]byte, 0, 4096)
	for {
		rec, n, err := readRecord(s.f, &buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			// torn or corrupt tail: truncate and continue from here
			if terr := s.f.Truncate(off); terr != nil {
				return fmt.Errorf("storage: truncate torn tail: %w", terr)
			}
			break
		}
		off += int64(n)
		switch rec.op {
		case opPut:
			if old, ok := s.mem[string(rec.key)]; ok {
				s.liveSize -= recordSize(len(rec.key), len(old))
			}
			s.liveSize += recordSize(len(rec.key), len(rec.val))
			s.mem[string(rec.key)] = append([]byte(nil), rec.val...)
		case opDelete:
			if old, ok := s.mem[string(rec.key)]; ok {
				s.liveSize -= recordSize(len(rec.key), len(old))
			}
			delete(s.mem, string(rec.key))
		}
	}
	s.size = off
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("storage: seek: %w", err)
	}
	return nil
}

type record struct {
	op  byte
	key []byte
	val []byte
}

// record layout: op(1) keyLen(4) valLen(4) key val crc32(4 over all prior
// bytes of the record).
func readRecord(r io.Reader, scratch *[]byte) (record, int, error) {
	var fixed [9]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return record{}, 0, fmt.Errorf("storage: torn header")
		}
		return record{}, 0, err
	}
	op := fixed[0]
	kl := binary.LittleEndian.Uint32(fixed[1:5])
	vl := binary.LittleEndian.Uint32(fixed[5:9])
	if kl > 1<<28 || vl > 1<<30 {
		return record{}, 0, fmt.Errorf("storage: implausible record size")
	}
	need := int(kl) + int(vl) + 4
	if cap(*scratch) < need {
		*scratch = make([]byte, need)
	}
	body := (*scratch)[:need]
	if _, err := io.ReadFull(r, body); err != nil {
		return record{}, 0, fmt.Errorf("storage: torn body: %w", err)
	}
	sum := crc32.NewIEEE()
	sum.Write(fixed[:])
	sum.Write(body[:kl+vl])
	if binary.LittleEndian.Uint32(body[kl+vl:]) != sum.Sum32() {
		return record{}, 0, fmt.Errorf("storage: checksum mismatch")
	}
	return record{op: op, key: body[:kl], val: body[kl : kl+vl]}, 9 + need, nil
}

// recordSize is the on-disk footprint of one record: fixed header (9),
// key, value, checksum (4).
func recordSize(klen, vlen int) int64 { return int64(9 + klen + vlen + 4) }

func writeRecord(w io.Writer, op byte, key, val []byte) (int, error) {
	var fixed [9]byte
	fixed[0] = op
	binary.LittleEndian.PutUint32(fixed[1:5], uint32(len(key)))
	binary.LittleEndian.PutUint32(fixed[5:9], uint32(len(val)))
	sum := crc32.NewIEEE()
	sum.Write(fixed[:])
	sum.Write(key)
	sum.Write(val)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum.Sum32())
	n := 0
	for _, b := range [][]byte{fixed[:], key, val, crc[:]} {
		m, err := w.Write(b)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Put stores value under key, overwriting any previous version.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		n, err := writeRecord(s.f, opPut, key, value)
		s.size += int64(n)
		if err != nil {
			return fmt.Errorf("storage: put: %w", err)
		}
	} else {
		s.size += recordSize(len(key), len(value))
	}
	if old, ok := s.mem[string(key)]; ok {
		s.liveSize -= recordSize(len(key), len(old))
	}
	s.liveSize += recordSize(len(key), len(value))
	s.mem[string(key)] = append([]byte(nil), value...)
	return s.maybeCompactLocked()
}

// Get returns the value stored under key; ok reports presence. The
// returned slice must not be modified.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.mem[string(key)]
	return v, ok
}

// Delete removes key; deleting a missing key is a no-op.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mem[string(key)]; !ok {
		return nil
	}
	if s.f != nil {
		n, err := writeRecord(s.f, opDelete, key, nil)
		s.size += int64(n)
		if err != nil {
			return fmt.Errorf("storage: delete: %w", err)
		}
	}
	s.liveSize -= recordSize(len(key), len(s.mem[string(key)]))
	delete(s.mem, string(key))
	return s.maybeCompactLocked()
}

// Keys returns all live keys, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.mem))
	for k := range s.mem {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Size returns the store's on-disk (or accounted, for memory stores)
// byte size including headers — the Figure 11 measurement.
func (s *Store) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// LiveBytes returns the total size of live keys and values, excluding
// log overhead and stale versions.
func (s *Store) LiveBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for k, v := range s.mem {
		n += int64(len(k) + len(v))
	}
	return n
}

// GarbageBytes returns the log bytes occupied by stale versions and
// delete markers — what a Compact would reclaim.
func (s *Store) GarbageBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.garbageLocked()
}

func (s *Store) garbageLocked() int64 {
	g := s.size - int64(len(magic)) - s.liveSize
	if g < 0 {
		g = 0
	}
	return g
}

// SetAutoCompact arms (or, with ratio <= 0, disarms) automatic
// compaction: after a Put or Delete, when the log is at least minBytes
// long and garbage makes up more than ratio of it, the log is compacted
// in place. minBytes <= 0 defaults to 4096, so small hot stores are not
// rewritten on every overwrite.
func (s *Store) SetAutoCompact(ratio float64, minBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if minBytes <= 0 {
		minBytes = 4096
	}
	s.autoRatio = ratio
	s.autoMin = minBytes
}

// maybeCompactLocked runs a compaction when the auto-compact threshold
// is crossed. Caller holds s.mu.
func (s *Store) maybeCompactLocked() error {
	if s.autoRatio <= 0 || s.f == nil || s.size < s.autoMin {
		return nil
	}
	if float64(s.garbageLocked()) <= s.autoRatio*float64(s.size) {
		return nil
	}
	if err := s.compactLocked(); err != nil {
		return fmt.Errorf("storage: auto-compact: %w", err)
	}
	return nil
}

// Compact rewrites the log keeping only live records.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked is Compact's body; caller holds s.mu.
func (s *Store) compactLocked() error {
	if s.f == nil {
		return nil
	}
	tmp := s.path + ".compact"
	out, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	size := int64(0)
	if _, err := out.Write(magic[:]); err != nil {
		out.Close()
		return fmt.Errorf("storage: compact: %w", err)
	}
	size += int64(len(magic))
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n, err := writeRecord(out, opPut, []byte(k), s.mem[k])
		if err != nil {
			out.Close()
			return fmt.Errorf("storage: compact: %w", err)
		}
		size += int64(n)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return fmt.Errorf("storage: compact: %w", err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact reopen: %w", err)
	}
	s.f = f
	s.size = size
	s.liveSize = size - int64(len(magic))
	return nil
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close releases the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
