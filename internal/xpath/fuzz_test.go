package xpath_test

import (
	"testing"

	"xpathviews/internal/xpath"
)

// FuzzParse checks that the parser never panics and that accepted inputs
// survive a String→Parse round trip. The seed corpus runs in normal
// `go test`; `go test -fuzz=FuzzParse ./internal/xpath` explores further.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"/a", "//a//b", "//s[f//i][t]/p", "//a[*//t]//p", "//item[@id=1]/name",
		"//a[@x<'v']", "//*[b][c]/d", "/a[b[c]/d]//e", "//a[.//b]",
		"//a[", "///", "//@", "a/b", "//a]b", "//a[@x!'3']", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := xpath.Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted %q but produced invalid pattern: %v", src, err)
		}
		s := p.String()
		back, err := xpath.Parse(s)
		if err != nil {
			t.Fatalf("accepted %q but String() = %q does not re-parse: %v", src, s, err)
		}
		if !p.Equal(back) {
			t.Fatalf("round trip changed pattern: %q → %q", src, s)
		}
	})
}
