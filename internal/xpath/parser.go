// Package xpath parses the XPath fragment studied in the paper — child
// axis '/', descendant axis '//', wildcard '*', branches '[...]' — plus
// the attribute comparison predicates of §V, into tree patterns
// (pattern.Pattern). The answer node is the last step of the main path.
//
// Grammar (no whitespace sensitivity):
//
//	query     := axis step (axis step)*
//	axis      := "/" | "//"
//	step      := nametest pred*
//	nametest  := NAME | "*"
//	pred      := "[" (attrPred | relPath) "]"
//	attrPred  := "@" NAME (op literal)?
//	op        := "=" | "!=" | "<" | "<=" | ">" | ">="
//	literal   := NUMBER | "'" chars "'" | '"' chars '"'
//	relPath   := ("." axis step | step) (axis step)*
//
// A relative path's first step defaults to the child axis ("[t]" means
// "has a child t"); "[.//i]" means "has a descendant i".
package xpath

import (
	"fmt"
	"strings"

	"xpathviews/internal/pattern"
)

// Parse parses an absolute XPath query into a tree pattern.
func Parse(input string) (*pattern.Pattern, error) {
	p := &parser{src: input}
	pat, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("xpath: parse %q: %w", input, err)
	}
	if err := pat.Validate(); err != nil {
		return nil, fmt.Errorf("xpath: parse %q: %w", input, err)
	}
	return pat, nil
}

// MustParse is Parse for known-good inputs; it panics on error.
func MustParse(input string) *pattern.Pattern {
	pat, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return pat
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// axis consumes "/" or "//" and reports which; ok is false when the next
// character is not a slash.
func (p *parser) axis() (pattern.Axis, bool) {
	p.skipSpace()
	if p.eof() || p.src[p.pos] != '/' {
		return pattern.Child, false
	}
	p.pos++
	if !p.eof() && p.src[p.pos] == '/' {
		p.pos++
		return pattern.Descendant, true
	}
	return pattern.Child, true
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *parser) name() (string, error) {
	p.skipSpace()
	if !p.eof() && p.src[p.pos] == '*' {
		p.pos++
		return pattern.Wildcard, nil
	}
	// A leading '.' would be ambiguous with the current-node marker when
	// the name is printed back inside a predicate; dots are only allowed
	// inside names.
	if !p.eof() && p.src[p.pos] == '.' {
		return "", fmt.Errorf("name cannot start with '.' at offset %d", p.pos)
	}
	start := p.pos
	for !p.eof() && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected name at offset %d", p.pos)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseQuery() (*pattern.Pattern, error) {
	ax, ok := p.axis()
	if !ok {
		return nil, fmt.Errorf("query must be absolute (start with / or //)")
	}
	root, err := p.parseStepInto(nil, ax)
	if err != nil {
		return nil, err
	}
	cur := root
	for {
		ax, ok := p.axis()
		if !ok {
			break
		}
		cur, err = p.parseStepInto(cur, ax)
		if err != nil {
			return nil, err
		}
	}
	p.skipSpace()
	if !p.eof() {
		return nil, fmt.Errorf("trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return &pattern.Pattern{Root: root, Ret: cur}, nil
}

// parseStepInto parses one step and attaches it under parent (nil for the
// root), returning the new node.
func (p *parser) parseStepInto(parent *pattern.Node, ax pattern.Axis) (*pattern.Node, error) {
	label, err := p.name()
	if err != nil {
		return nil, err
	}
	var n *pattern.Node
	if parent == nil {
		n = pattern.NewNode(label, ax)
	} else {
		n = parent.AddChild(label, ax)
	}
	for {
		p.skipSpace()
		if p.peek() != '[' {
			return n, nil
		}
		p.pos++ // consume '['
		if err := p.parsePredicate(n); err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ']' {
			return nil, fmt.Errorf("expected ] at offset %d", p.pos)
		}
		p.pos++
	}
}

func (p *parser) parsePredicate(owner *pattern.Node) error {
	p.skipSpace()
	if p.peek() == '@' {
		return p.parseAttrPred(owner)
	}
	// Relative path predicate. Determine the first axis.
	ax := pattern.Child
	if p.peek() == '.' {
		p.pos++
		a, ok := p.axis()
		if !ok {
			return fmt.Errorf("expected axis after '.' at offset %d", p.pos)
		}
		ax = a
	} else if p.peek() == '/' {
		// allow [//x] as a (nonstandard but unambiguous) descendant form
		a, _ := p.axis()
		ax = a
	}
	cur, err := p.parseStepInto(owner, ax)
	if err != nil {
		return err
	}
	for {
		a, ok := p.axis()
		if !ok {
			return nil
		}
		cur, err = p.parseStepInto(cur, a)
		if err != nil {
			return err
		}
	}
}

func (p *parser) parseAttrPred(owner *pattern.Node) error {
	p.pos++ // consume '@'
	name, err := p.name()
	if err != nil {
		return err
	}
	if name == pattern.Wildcard {
		return fmt.Errorf("attribute name cannot be a wildcard")
	}
	p.skipSpace()
	op := pattern.AttrExists
	switch p.peek() {
	case '=':
		p.pos++
		op = pattern.AttrEq
	case '!':
		p.pos++
		if p.peek() != '=' {
			return fmt.Errorf("expected '=' after '!' at offset %d", p.pos)
		}
		p.pos++
		op = pattern.AttrNe
	case '<':
		p.pos++
		op = pattern.AttrLt
		if p.peek() == '=' {
			p.pos++
			op = pattern.AttrLe
		}
	case '>':
		p.pos++
		op = pattern.AttrGt
		if p.peek() == '=' {
			p.pos++
			op = pattern.AttrGe
		}
	}
	if op == pattern.AttrExists {
		owner.Attrs = append(owner.Attrs, pattern.AttrPred{Name: name, Op: op})
		return nil
	}
	val, err := p.literal()
	if err != nil {
		return err
	}
	owner.Attrs = append(owner.Attrs, pattern.AttrPred{Name: name, Op: op, Value: val})
	return nil
}

func (p *parser) literal() (string, error) {
	p.skipSpace()
	if p.eof() {
		return "", fmt.Errorf("expected literal at end of input")
	}
	switch q := p.peek(); q {
	case '\'', '"':
		p.pos++
		end := strings.IndexByte(p.src[p.pos:], q)
		if end < 0 {
			return "", fmt.Errorf("unterminated string literal at offset %d", p.pos)
		}
		v := p.src[p.pos : p.pos+end]
		p.pos += end + 1
		return v, nil
	default:
		start := p.pos
		if p.peek() == '-' {
			p.pos++
		}
		for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == start || (p.src[start] == '-' && p.pos == start+1) {
			return "", fmt.Errorf("expected literal at offset %d", start)
		}
		return p.src[start:p.pos], nil
	}
}
