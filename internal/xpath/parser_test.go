package xpath_test

import (
	"math/rand"
	"strings"
	"testing"

	"xpathviews/internal/pattern"
	"xpathviews/internal/xpath"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in       string
		size     int
		ret      string
		rendered string // "" → same as in
	}{
		{"/a", 1, "a", ""},
		{"//a", 1, "a", ""},
		{"//a/b", 2, "b", ""},
		{"//a//b", 2, "b", ""},
		{"//a/*/b", 3, "b", ""},
		{"//s[t]/p", 3, "p", ""},
		{"//s[f//i][t]/p", 5, "p", ""},
		{"//s[.//i]//p", 3, "p", ""},
		{"//a[b/c][d]", 4, "a", ""},
		{"//a[b[c]/d]", 4, "a", ""},
		{"//item[@featured]", 1, "item", ""},
		{"//item[@quantity=1]/name", 2, "name", ""},
		{"//item[@price<100][@price>=10]", 1, "item", ""},
		{"//a[b][c]", 3, "a", ""},
		{"//a[ b ]/ c", 3, "c", "//a[b]/c"},
		{"//a[x='hello world']", 1, "a", "//a[x[@w='1']]"}, // placeholder replaced below
	}
	for _, c := range cases {
		if strings.Contains(c.in, "hello") {
			continue // covered by TestParseAttrLiterals
		}
		p, err := xpath.Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if p.Size() != c.size {
			t.Errorf("Parse(%q).Size() = %d, want %d", c.in, p.Size(), c.size)
		}
		if p.Ret.Label != c.ret {
			t.Errorf("Parse(%q).Ret = %q, want %q", c.in, p.Ret.Label, c.ret)
		}
		want := c.rendered
		if want == "" {
			want = c.in
		}
		if got := p.String(); got != want {
			// String uses canonical predicate ordering; re-parse must be Equal
			back, err := xpath.Parse(got)
			if err != nil {
				t.Errorf("re-parse of String(%q)=%q failed: %v", c.in, got, err)
				continue
			}
			if !p.Equal(back) {
				t.Errorf("Parse(%q).String() = %q re-parses to a different pattern", c.in, got)
			}
		}
	}
}

func TestParseAttrLiterals(t *testing.T) {
	p, err := xpath.Parse(`//person[@id='p42']/name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Root.Attrs) != 1 || p.Root.Attrs[0].Value != "p42" || p.Root.Attrs[0].Op != pattern.AttrEq {
		t.Fatalf("attrs = %+v", p.Root.Attrs)
	}
	p2, err := xpath.Parse(`//item[@price!=7]["x"]`)
	if err == nil {
		_ = p2 // a bare string predicate is not in the fragment; accept either behaviour
	}
	for _, src := range []string{
		`//a[@x<5]`, `//a[@x<=5]`, `//a[@x>5]`, `//a[@x>=5]`, `//a[@x=-3]`, `//a[@x="q"]`,
	} {
		if _, err := xpath.Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "a/b", "//", "/a[", "/a]", "/a[b", "/a[]", "/a[@]", "/a[@x=]",
		"/a[@x!]", "/a[@*]", "/a//", "/a[.b]", "/a[@x='unterminated]",
		"/a b", "/a[b]c",
	} {
		if _, err := xpath.Parse(bad); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	labels := []string{"a", "b", "c", "dd"}
	for i := 0; i < 300; i++ {
		p := randomPattern(r, labels)
		s := p.String()
		back, err := xpath.Parse(s)
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", s, err)
		}
		if !p.Equal(back) {
			t.Fatalf("round trip changed pattern: %q vs %q", s, back.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	xpath.MustParse("not-absolute")
}

func randomPattern(r *rand.Rand, labels []string) *pattern.Pattern {
	root := pattern.NewNode(labels[r.Intn(len(labels))], pattern.Axis(r.Intn(2)))
	nodes := []*pattern.Node{root}
	n := 1 + r.Intn(7)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		lb := labels[r.Intn(len(labels))]
		if r.Intn(6) == 0 {
			lb = pattern.Wildcard
		}
		c := parent.AddChild(lb, pattern.Axis(r.Intn(2)))
		if r.Intn(8) == 0 {
			c.Attrs = append(c.Attrs, pattern.AttrPred{Name: "k", Op: pattern.AttrLt, Value: "9"})
		}
		nodes = append(nodes, c)
	}
	return &pattern.Pattern{Root: root, Ret: nodes[r.Intn(len(nodes))]}
}
