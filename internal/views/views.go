// Package views defines materialized XPath views: a view is a tree
// pattern whose answer-node subtrees ("fragments") are pre-computed and
// stored together with the extended Dewey code of each fragment root.
// Per XPath semantics only the answer node's fragments are materialized —
// the fact that drives the whole paper (§I: a[./b/d]/c cannot be answered
// from a[./b]/c's fragments).
package views

import (
	"fmt"
	"sort"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/pattern"
	"xpathviews/internal/xmltree"
)

// DefaultFragmentLimit is the paper's per-view cap on materialized
// fragment bytes (§VI: 128 KB, following Mandhani & Suciu).
const DefaultFragmentLimit = 128 << 10

// Fragment is one materialized answer subtree.
type Fragment struct {
	// Tree is the standalone copy of the answer node's subtree.
	Tree *xmltree.Tree
	// Code is the extended Dewey code of the fragment root in the base
	// document; the root's label-path is recoverable from it via the FST
	// without touching base data.
	Code dewey.Code
	// NodeCodes holds the base-document code of every fragment node,
	// aligned with Tree.Nodes() (preorder). Extraction uses it to report
	// answers by their global codes.
	NodeCodes []dewey.Code
	// Bytes is the serialized size of the fragment.
	Bytes int
}

// View is a materialized view.
type View struct {
	// ID is the registry-assigned identifier, aligned with VFilter IDs.
	ID int
	// Pattern is the view definition.
	Pattern *pattern.Pattern
	// Fragments are the materialized answers in document order.
	Fragments []Fragment
	// TotalBytes is the sum of fragment sizes.
	TotalBytes int
	// Gen is the view's content generation: incremental maintenance bumps
	// it whenever a mutation actually changes this view's fragment store,
	// so scoped plan invalidation can tell dirty views from clean ones.
	// It is written under the owning System's write lock.
	Gen uint64
}

// Materialize evaluates v's pattern over the base document and stores its
// fragments. enc must be an encoding of t. When limit > 0 and the total
// serialized size exceeds it, Materialize returns ErrTooLarge. idx may be
// nil, in which case one is built for this call.
func Materialize(id int, p *pattern.Pattern, t *xmltree.Tree, enc *dewey.Encoding, idx *engine.LabelIndex, limit int) (*View, error) {
	if idx == nil {
		idx = engine.BuildLabelIndex(t)
	}
	answers := engine.AnswersFast(t, idx, p)
	v := &View{ID: id, Pattern: p, Fragments: make([]Fragment, 0, len(answers))}
	for _, a := range answers {
		frag, err := BuildFragment(enc, a)
		if err != nil {
			return nil, fmt.Errorf("views: %w", err)
		}
		v.Fragments = append(v.Fragments, frag)
		v.TotalBytes += frag.Bytes
		if limit > 0 && v.TotalBytes > limit {
			return nil, fmt.Errorf("views: view %d: %w (%d bytes > %d)", id, ErrTooLarge, v.TotalBytes, limit)
		}
	}
	sort.Slice(v.Fragments, func(i, j int) bool {
		return dewey.Compare(v.Fragments[i].Code, v.Fragments[j].Code) < 0
	})
	return v, nil
}

// BuildFragment materializes one answer node of the base document as a
// standalone fragment: a deep copy of its subtree plus the preorder-
// aligned base-document codes of every fragment node.
func BuildFragment(enc *dewey.Encoding, a *xmltree.Node) (Fragment, error) {
	code, ok := enc.CodeOf(a)
	if !ok {
		return Fragment{}, fmt.Errorf("answer node %q has no dewey code", a.Label)
	}
	sub := xmltree.FromRoot(a.CopySubtree())
	size := xmltree.SerializedSize(sub.Root())
	// CopySubtree preserves preorder, so the original subtree's node
	// codes align index-for-index with sub.Nodes().
	var codes []dewey.Code
	var collect func(n *xmltree.Node)
	collect = func(n *xmltree.Node) {
		c, _ := enc.CodeOf(n)
		codes = append(codes, c)
		for _, ch := range n.Children {
			collect(ch)
		}
	}
	collect(a)
	return Fragment{Tree: sub, Code: code.Clone(), NodeCodes: codes, Bytes: size}, nil
}

// PrefixRange returns the half-open index range [lo, hi) of v.Fragments
// whose codes have prefix p — the fragments rooted in the subtree p
// encodes. Fragments are sorted by code (document order with ancestors
// first), so the range is contiguous and found by binary search.
func (v *View) PrefixRange(p dewey.Code) (lo, hi int) {
	lo = sort.Search(len(v.Fragments), func(i int) bool {
		return dewey.Compare(v.Fragments[i].Code, p) >= 0
	})
	hi = lo
	for hi < len(v.Fragments) && dewey.IsPrefix(p, v.Fragments[hi].Code) {
		hi++
	}
	return lo, hi
}

// FindCode returns the index of the fragment rooted exactly at code c,
// or -1.
func (v *View) FindCode(c dewey.Code) int {
	i := sort.Search(len(v.Fragments), func(i int) bool {
		return dewey.Compare(v.Fragments[i].Code, c) >= 0
	})
	if i < len(v.Fragments) && dewey.Compare(v.Fragments[i].Code, c) == 0 {
		return i
	}
	return -1
}

// ReplaceRange splices frags (already in document order) over
// v.Fragments[lo:hi], keeping TotalBytes consistent.
func (v *View) ReplaceRange(lo, hi int, frags []Fragment) {
	for _, f := range v.Fragments[lo:hi] {
		v.TotalBytes -= f.Bytes
	}
	for _, f := range frags {
		v.TotalBytes += f.Bytes
	}
	out := make([]Fragment, 0, len(v.Fragments)-(hi-lo)+len(frags))
	out = append(out, v.Fragments[:lo]...)
	out = append(out, frags...)
	out = append(out, v.Fragments[hi:]...)
	v.Fragments = out
}

// ErrTooLarge reports that a view's fragments exceed the configured cap.
var ErrTooLarge = fmt.Errorf("materialized fragments exceed the size limit")

// IsEmpty reports whether the view materialized no fragments.
func (v *View) IsEmpty() bool { return len(v.Fragments) == 0 }

// Registry holds the materialized view set V = {V1..Vn} over one
// document.
type Registry struct {
	Doc      *xmltree.Tree
	Enc      *dewey.Encoding
	Index    *engine.LabelIndex
	ViewList []*View
	byID     map[int]*View
}

// NewRegistry creates an empty registry over an encoded document.
func NewRegistry(doc *xmltree.Tree, enc *dewey.Encoding) *Registry {
	return &Registry{Doc: doc, Enc: enc, Index: engine.BuildLabelIndex(doc), byID: make(map[int]*View)}
}

// Add materializes a view pattern and registers it under the next free ID.
// Patterns are minimized first (§II assumes minimized patterns).
func (r *Registry) Add(p *pattern.Pattern, limit int) (*View, error) {
	id := len(r.ViewList)
	v, err := Materialize(id, pattern.Minimize(p), r.Doc, r.Enc, r.Index, limit)
	if err != nil {
		return nil, err
	}
	r.ViewList = append(r.ViewList, v)
	r.byID[id] = v
	return v, nil
}

// Get returns the view with the given ID, or nil.
func (r *Registry) Get(id int) *View { return r.byID[id] }

// Len returns the number of live (non-removed) views.
func (r *Registry) Len() int { return len(r.byID) }

// Remove drops a view from the registry. IDs are never reused; the
// ViewList slot is nilled out so existing indices stay valid. Returns
// false for unknown or already-removed IDs.
func (r *Registry) Remove(id int) bool {
	v, ok := r.byID[id]
	if !ok {
		return false
	}
	delete(r.byID, id)
	if id >= 0 && id < len(r.ViewList) && r.ViewList[id] == v {
		r.ViewList[id] = nil
	}
	return true
}

// Views returns the live views in ID order.
func (r *Registry) Views() []*View {
	out := make([]*View, 0, len(r.byID))
	for _, v := range r.ViewList {
		if v != nil && r.byID[v.ID] == v {
			out = append(out, v)
		}
	}
	return out
}

// TotalBytes sums the live views' materialized sizes.
func (r *Registry) TotalBytes() int {
	total := 0
	for _, v := range r.Views() {
		total += v.TotalBytes
	}
	return total
}
