package views_test

import (
	"errors"
	"strings"
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/views"
	"xpathviews/internal/xpath"
)

func registry(t *testing.T) *views.Registry {
	t.Helper()
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	return views.NewRegistry(tree, enc)
}

// TestMaterializePaperFragments pins §V's fragment sets: V1 = //s[t]/p has
// eight p fragments, V2 = //s[p]/f has {f1, f2, f3} with the exact codes.
func TestMaterializePaperFragments(t *testing.T) {
	reg := registry(t)
	v1, err := reg.Add(xpath.MustParse(paperdata.ViewV1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Fragments) != 8 {
		t.Fatalf("V1 fragments = %d, want 8", len(v1.Fragments))
	}
	v2, err := reg.Add(xpath.MustParse(paperdata.ViewV2), 0)
	if err != nil {
		t.Fatal(err)
	}
	var codes []string
	for _, f := range v2.Fragments {
		codes = append(codes, f.Code.String())
	}
	want := "0.5.7 0.5.10.7 0.8.6.3" // f2, f3, f1 in document order
	if strings.Join(codes, " ") != want {
		t.Fatalf("V2 fragment codes = %v, want %s", codes, want)
	}
}

func TestFragmentTreesAreCopies(t *testing.T) {
	reg := registry(t)
	v, err := reg.Add(xpath.MustParse("//s[p]/f"), 0)
	if err != nil {
		t.Fatal(err)
	}
	f := v.Fragments[0]
	// The fragment root must carry the f subtree (f with child i).
	if f.Tree.Root().Label != "f" || len(f.Tree.Root().Children) != 1 {
		t.Fatalf("fragment shape wrong: %s", f.Tree.Root())
	}
	// Mutating the fragment must not touch the base document.
	f.Tree.Root().Children[0].Label = "mutated"
	for _, n := range reg.Doc.Nodes() {
		if n.Label == "mutated" {
			t.Fatal("fragment aliases the base document")
		}
	}
}

func TestNodeCodesAlignment(t *testing.T) {
	reg := registry(t)
	v, err := reg.Add(xpath.MustParse("//s[p]/f"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range v.Fragments {
		nodes := f.Tree.Nodes()
		if len(nodes) != len(f.NodeCodes) {
			t.Fatalf("NodeCodes misaligned: %d nodes vs %d codes", len(nodes), len(f.NodeCodes))
		}
		// The root's code must equal the fragment code; children's codes
		// must extend it.
		if f.NodeCodes[0].String() != f.Code.String() {
			t.Fatalf("root code %s != fragment code %s", f.NodeCodes[0], f.Code)
		}
		for i := 1; i < len(nodes); i++ {
			if !dewey.IsAncestor(f.Code, f.NodeCodes[i]) {
				t.Fatalf("node %d code %s not under fragment root %s", i, f.NodeCodes[i], f.Code)
			}
		}
	}
}

func TestSizeLimit(t *testing.T) {
	reg := registry(t)
	// A tiny limit rejects any view with fragments.
	_, err := reg.Add(xpath.MustParse("//s"), 10)
	if err == nil || !errors.Is(err, views.ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
	// Unlimited works.
	v, err := reg.Add(xpath.MustParse("//s"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.TotalBytes <= 0 {
		t.Fatal("TotalBytes not accounted")
	}
}

func TestEmptyView(t *testing.T) {
	reg := registry(t)
	v, err := reg.Add(xpath.MustParse("//nosuchlabel"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsEmpty() {
		t.Fatal("expected empty view")
	}
}

func TestRegistryIDs(t *testing.T) {
	reg := registry(t)
	a, _ := reg.Add(xpath.MustParse("//s"), 0)
	b, _ := reg.Add(xpath.MustParse("//p"), 0)
	if a.ID != 0 || b.ID != 1 || reg.Len() != 2 {
		t.Fatalf("IDs: %d %d len %d", a.ID, b.ID, reg.Len())
	}
	if reg.Get(0) != a || reg.Get(1) != b || reg.Get(99) != nil {
		t.Fatal("Get wrong")
	}
}

// TestMinimizationApplied: registering //s[p][p]/f stores a minimized
// pattern equivalent to //s[p]/f.
func TestMinimizationApplied(t *testing.T) {
	reg := registry(t)
	v, err := reg.Add(xpath.MustParse("//s[p][p]/f"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pattern.Size() != 3 {
		t.Fatalf("pattern not minimized: %s (%d nodes)", v.Pattern, v.Pattern.Size())
	}
}
