// Package dewey implements the extended Dewey encoding of Lu et al. (cited
// as [22] in the paper) together with the finite state transducer (FST)
// that decodes a code back into its root-to-node label-path.
//
// Extended Dewey assigns each node a vector of integers, one per ancestor
// step. Unlike plain Dewey, the component for a node is chosen so that
// `component mod m` identifies the node's label among the m distinct child
// labels of its parent's label. Consequently a code alone — plus the FST,
// which is tiny — reveals the node's entire label-path, which is what lets
// the paper's rewriting join view fragments "without accessing the base
// data" (§II, §V).
package dewey

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xpathviews/internal/xmltree"
)

// Code is an extended Dewey code: the root's component is always 0 and the
// code of a node extends its parent's code by one component.
type Code []uint32

// Clone returns an independent copy of c.
func (c Code) Clone() Code {
	out := make(Code, len(c))
	copy(out, c)
	return out
}

// String renders the code in dotted form, e.g. "0.8.6".
func (c Code) String() string {
	if len(c) == 0 {
		return ""
	}
	buf := make([]byte, 0, 4*len(c))
	for i, v := range c {
		if i > 0 {
			buf = append(buf, '.')
		}
		buf = strconv.AppendUint(buf, uint64(v), 10)
	}
	return string(buf)
}

// ParseCode parses the dotted form produced by String.
func ParseCode(s string) (Code, error) {
	if s == "" {
		return nil, fmt.Errorf("dewey: empty code")
	}
	parts := strings.Split(s, ".")
	c := make(Code, len(parts))
	for i, p := range parts {
		var v uint32
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil {
			return nil, fmt.Errorf("dewey: bad component %q in %q", p, s)
		}
		c[i] = v
	}
	return c, nil
}

// Compare orders codes in document order: component-wise numeric, with a
// prefix (ancestor) sorting before its extensions.
func Compare(a, b Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// IsPrefix reports whether a is a (non-strict) prefix of b, i.e. a encodes
// an ancestor-or-self of b's node.
func IsPrefix(a, b Code) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsAncestor reports whether a encodes a proper ancestor of b's node.
func IsAncestor(a, b Code) bool { return len(a) < len(b) && IsPrefix(a, b) }

// IsParent reports whether a encodes the parent of b's node.
func IsParent(a, b Code) bool { return len(a)+1 == len(b) && IsPrefix(a, b) }

// CommonPrefixLen returns the number of leading components a and b
// share. The virtual-tree build uses it to pop its rightmost-path stack
// in one O(min depth) scan per merged code instead of re-checking
// IsPrefix against every popped level.
func CommonPrefixLen(a, b Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// CommonPrefix returns the longest common prefix of a and b, i.e. the code
// of the lowest common ancestor.
func CommonPrefix(a, b Code) Code {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// FST is the finite state transducer of the encoding. State identity is an
// element label; for each label it stores the sorted alphabet of child
// labels observed under elements with that label. Decoding a component x in
// state l yields the child alphabet entry at index x mod m.
type FST struct {
	root     string
	children map[string][]string // label → sorted distinct child labels
	index    map[string]map[string]int
}

// BuildFST scans a tree and constructs its FST.
func BuildFST(t *xmltree.Tree) *FST {
	f := &FST{
		root:     t.Root().Label,
		children: make(map[string][]string),
		index:    make(map[string]map[string]int),
	}
	sets := make(map[string]map[string]struct{})
	t.Walk(func(n *xmltree.Node) bool {
		s, ok := sets[n.Label]
		if !ok {
			s = make(map[string]struct{})
			sets[n.Label] = s
		}
		for _, c := range n.Children {
			s[c.Label] = struct{}{}
		}
		return true
	})
	for label, set := range sets {
		alpha := make([]string, 0, len(set))
		for l := range set {
			alpha = append(alpha, l)
		}
		sort.Strings(alpha)
		f.children[label] = alpha
		idx := make(map[string]int, len(alpha))
		for i, l := range alpha {
			idx[l] = i
		}
		f.index[label] = idx
	}
	return f
}

// BuildFSTFromSchema constructs an FST from an explicit schema: for each
// parent label, its child alphabet in the order given. The order determines
// the modulus classes and therefore the exact numeric codes; the paper's
// book example relies on a fixed order (t, a, s under b; t, p, s, f under
// s).
func BuildFSTFromSchema(rootLabel string, childAlphabets map[string][]string) *FST {
	f := &FST{
		root:     rootLabel,
		children: make(map[string][]string, len(childAlphabets)),
		index:    make(map[string]map[string]int, len(childAlphabets)),
	}
	for label, alpha := range childAlphabets {
		cp := make([]string, len(alpha))
		copy(cp, alpha)
		f.children[label] = cp
		idx := make(map[string]int, len(cp))
		for i, l := range cp {
			idx[l] = i
		}
		f.index[label] = idx
	}
	return f
}

// RootLabel returns the label of the document root the FST was built from.
func (f *FST) RootLabel() string { return f.root }

// ChildAlphabet returns the ordered child alphabet of the given label; the
// returned slice must not be modified.
func (f *FST) ChildAlphabet(label string) []string { return f.children[label] }

// ChildIndex returns childLabel's position in parentLabel's child
// alphabet together with the alphabet size m. ok is false when the FST
// has never seen childLabel under parentLabel — the schema constraint
// incremental inserts must respect, because growing an alphabet would
// change m and silently re-label every existing code.
func (f *FST) ChildIndex(parentLabel, childLabel string) (idx, m int, ok bool) {
	alpha := f.index[parentLabel]
	m = len(f.children[parentLabel])
	idx, ok = alpha[childLabel]
	return idx, m, ok
}

// Decode converts a code into its label-path. The first component must be
// 0 (the root). Decode fails if the code is inconsistent with the FST.
func (f *FST) Decode(c Code) ([]string, error) {
	if len(c) == 0 {
		return nil, fmt.Errorf("dewey: decode empty code")
	}
	if c[0] != 0 {
		return nil, fmt.Errorf("dewey: code %s does not start at the root", c)
	}
	path := make([]string, 0, len(c))
	label := f.root
	path = append(path, label)
	for _, comp := range c[1:] {
		alpha := f.children[label]
		m := len(alpha)
		if m == 0 {
			return nil, fmt.Errorf("dewey: label %q has no children in FST, cannot decode %s", label, c)
		}
		label = alpha[int(comp)%m]
		path = append(path, label)
	}
	return path, nil
}

// DecodeAppend appends the label-path of c to buf and returns the
// extended slice. It lets hot paths decode thousands of codes into one
// shared slab instead of allocating per call.
func (f *FST) DecodeAppend(c Code, buf []string) ([]string, error) {
	if len(c) == 0 {
		return buf, fmt.Errorf("dewey: decode empty code")
	}
	if c[0] != 0 {
		return buf, fmt.Errorf("dewey: code %s does not start at the root", c)
	}
	label := f.root
	buf = append(buf, label)
	for _, comp := range c[1:] {
		alpha := f.children[label]
		m := len(alpha)
		if m == 0 {
			return buf, fmt.Errorf("dewey: label %q has no children in FST, cannot decode %s", label, c)
		}
		label = alpha[int(comp)%m]
		buf = append(buf, label)
	}
	return buf, nil
}

// DecodeString is Decode joined with "/" — handy for tests and debugging.
func (f *FST) DecodeString(c Code) (string, error) {
	p, err := f.Decode(c)
	if err != nil {
		return "", err
	}
	return strings.Join(p, "/"), nil
}

// Encoding maps every node of a tree to its extended Dewey code.
type Encoding struct {
	fst   *FST
	codes map[*xmltree.Node]Code
}

// Encode assigns extended Dewey codes to every node of t under the given
// FST. For the i-th labelled child class of size m, each child receives the
// smallest component greater than its preceding sibling's component that is
// congruent to its label's index modulo m.
func Encode(t *xmltree.Tree, f *FST) (*Encoding, error) {
	e := &Encoding{fst: f, codes: make(map[*xmltree.Node]Code, t.Size())}
	root := t.Root()
	if root.Label != f.root {
		return nil, fmt.Errorf("dewey: tree root %q does not match FST root %q", root.Label, f.root)
	}
	e.codes[root] = Code{0}
	var walk func(n *xmltree.Node) error
	walk = func(n *xmltree.Node) error {
		alpha := f.index[n.Label]
		m := len(alpha)
		if len(n.Children) > 0 && m == 0 {
			return fmt.Errorf("dewey: FST has no child alphabet for %q", n.Label)
		}
		parent := e.codes[n]
		next := uint32(0)
		for _, c := range n.Children {
			i, ok := alpha[c.Label]
			if !ok {
				return fmt.Errorf("dewey: label %q not in child alphabet of %q", c.Label, n.Label)
			}
			comp := next
			if r := comp % uint32(m); r != uint32(i) {
				d := (uint32(i) - r + uint32(m)) % uint32(m)
				comp += d
			}
			code := make(Code, len(parent)+1)
			copy(code, parent)
			code[len(parent)] = comp
			e.codes[c] = code
			next = comp + 1
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return e, nil
}

// EncodeTree builds the FST from the tree itself and encodes it.
func EncodeTree(t *xmltree.Tree) (*Encoding, *FST, error) {
	f := BuildFST(t)
	e, err := Encode(t, f)
	if err != nil {
		return nil, nil, err
	}
	return e, f, nil
}

// CodeOf returns the code of n; ok is false when n was not part of the
// encoded tree.
func (e *Encoding) CodeOf(n *xmltree.Node) (Code, bool) {
	c, ok := e.codes[n]
	return c, ok
}

// MustCode is CodeOf for nodes known to be in the tree; it panics otherwise.
func (e *Encoding) MustCode(n *xmltree.Node) Code {
	c, ok := e.codes[n]
	if !ok {
		panic(fmt.Sprintf("dewey: node %q has no code", n.Label))
	}
	return c
}

// Assign records code c for node n. Incremental maintenance uses it to
// extend the encoding over inserted nodes without re-encoding the tree.
func (e *Encoding) Assign(n *xmltree.Node, c Code) { e.codes[n] = c }

// Forget drops n's code after the node leaves the tree.
func (e *Encoding) Forget(n *xmltree.Node) { delete(e.codes, n) }

// Len reports the number of coded nodes.
func (e *Encoding) Len() int { return len(e.codes) }

// FST returns the transducer the encoding was built with.
func (e *Encoding) FST() *FST { return e.fst }
