package dewey_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xpathviews/internal/dewey"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/xmltree"
)

// TestPaperExample21 checks Example 2.1: 0.8.6 decodes to b/s/s under the
// Figure 3 FST.
func TestPaperExample21(t *testing.T) {
	fst := paperdata.BookFST()
	code, err := dewey.ParseCode("0.8.6")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fst.DecodeString(code)
	if err != nil {
		t.Fatal(err)
	}
	if got != "b/s/s" {
		t.Fatalf("decode 0.8.6 = %q, want b/s/s", got)
	}
}

// TestBookTreeCodes verifies every concrete code the paper's prose cites.
func TestBookTreeCodes(t *testing.T) {
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{ // code → label path
		"0.8.6":     "b/s/s", // s3
		"0.8.6.0":   "b/s/s/t",
		"0.8.6.1":   "b/s/s/p", // p3
		"0.8.6.3":   "b/s/s/f", // f1
		"0.8.1":     "b/s/p",   // p1
		"0.8":       "b/s",     // s2
		"0.8.6.3.0": "b/s/s/f/i",
	}
	found := make(map[string]string)
	tree.Walk(func(n *xmltree.Node) bool {
		c := enc.MustCode(n)
		found[c.String()] = strings.Join(n.LabelPath(), "/")
		return true
	})
	for code, path := range want {
		got, ok := found[code]
		if !ok {
			t.Errorf("code %s not assigned to any node", code)
			continue
		}
		if got != path {
			t.Errorf("code %s on node with path %s, want %s", code, got, path)
		}
	}
}

// TestDecodeMatchesLabelPath is the core round-trip property: for every
// node, decoding its code through the FST yields exactly its label-path.
func TestDecodeMatchesLabelPath(t *testing.T) {
	trees := []*xmltree.Tree{paperdata.BookTree(), randomTree(rand.New(rand.NewSource(7)), 400, 5)}
	for _, tree := range trees {
		enc, fst, err := dewey.EncodeTree(tree)
		if err != nil {
			t.Fatal(err)
		}
		tree.Walk(func(n *xmltree.Node) bool {
			code := enc.MustCode(n)
			got, err := fst.Decode(code)
			if err != nil {
				t.Fatalf("decode %s: %v", code, err)
			}
			want := n.LabelPath()
			if strings.Join(got, "/") != strings.Join(want, "/") {
				t.Fatalf("decode %s = %v, want %v", code, got, want)
			}
			return true
		})
	}
}

// TestCodesUniqueAndOrdered: codes are unique and Compare agrees with
// document order.
func TestCodesUniqueAndOrdered(t *testing.T) {
	tree := randomTree(rand.New(rand.NewSource(11)), 300, 4)
	enc, _, err := dewey.EncodeTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	nodes := tree.Nodes()
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			ci, cj := enc.MustCode(nodes[i]), enc.MustCode(nodes[j])
			if dewey.Compare(ci, cj) >= 0 {
				t.Fatalf("codes %s (ord %d) and %s (ord %d) not in document order", ci, i, cj, j)
			}
		}
	}
}

// TestPrefixIsAncestor: IsPrefix ⇔ ancestor-or-self; IsParent ⇔ parent.
func TestPrefixIsAncestor(t *testing.T) {
	tree := randomTree(rand.New(rand.NewSource(13)), 200, 4)
	enc, _, err := dewey.EncodeTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	nodes := tree.Nodes()
	for _, a := range nodes {
		for _, b := range nodes {
			ca, cb := enc.MustCode(a), enc.MustCode(b)
			wantPrefix := a == b || a.IsAncestorOf(b)
			if got := dewey.IsPrefix(ca, cb); got != wantPrefix {
				t.Fatalf("IsPrefix(%s,%s)=%v want %v", ca, cb, got, wantPrefix)
			}
			wantParent := b.Parent == a
			if got := dewey.IsParent(ca, cb); got != wantParent {
				t.Fatalf("IsParent(%s,%s)=%v want %v", ca, cb, got, wantParent)
			}
		}
	}
}

// TestCommonPrefixIsLCA.
func TestCommonPrefixIsLCA(t *testing.T) {
	tree := paperdata.BookTree()
	enc, _, err := dewey.EncodeTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	nodes := tree.Nodes()
	lca := func(a, b *xmltree.Node) *xmltree.Node {
		anc := make(map[*xmltree.Node]bool)
		for n := a; n != nil; n = n.Parent {
			anc[n] = true
		}
		for n := b; n != nil; n = n.Parent {
			if anc[n] {
				return n
			}
		}
		return nil
	}
	for _, a := range nodes {
		for _, b := range nodes {
			got := dewey.CommonPrefix(enc.MustCode(a), enc.MustCode(b))
			want := enc.MustCode(lca(a, b))
			if got.String() != want.String() {
				t.Fatalf("CommonPrefix(%v,%v)=%s want %s", a.Label, b.Label, got, want)
			}
		}
	}
}

// TestParseCodeRoundTrip via testing/quick.
func TestParseCodeRoundTrip(t *testing.T) {
	f := func(parts []uint32) bool {
		if len(parts) == 0 {
			return true
		}
		c := dewey.Code(parts)
		back, err := dewey.ParseCode(c.String())
		if err != nil {
			return false
		}
		return dewey.Compare(c, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCodeErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "1..2", "1.x", "."} {
		if _, err := dewey.ParseCode(bad); err == nil {
			t.Errorf("ParseCode(%q) unexpectedly succeeded", bad)
		}
	}
}

// TestEncodeRejectsForeignFST: encoding fails when a label is missing
// from the FST schema.
func TestEncodeRejectsForeignFST(t *testing.T) {
	tree := xmltree.New("a")
	tree.AddChild(tree.Root(), "zzz")
	tree.Renumber()
	fst := dewey.BuildFSTFromSchema("a", map[string][]string{"a": {"b"}})
	if _, err := dewey.Encode(tree, fst); err == nil {
		t.Fatal("Encode with incomplete FST should fail")
	}
	fst2 := dewey.BuildFSTFromSchema("b", map[string][]string{})
	if _, err := dewey.Encode(tree, fst2); err == nil {
		t.Fatal("Encode with wrong root should fail")
	}
}

// randomTree builds a random labelled tree for property tests.
func randomTree(r *rand.Rand, n int, labels int) *xmltree.Tree {
	alpha := make([]string, labels)
	for i := range alpha {
		alpha[i] = string(rune('a' + i))
	}
	t := xmltree.New(alpha[0])
	nodes := []*xmltree.Node{t.Root()}
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		c := t.AddChild(parent, alpha[r.Intn(labels)])
		nodes = append(nodes, c)
	}
	t.Renumber()
	return t
}
