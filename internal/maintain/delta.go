package maintain

// Delta application: incrementally maintain one view after a subtree
// mutation. The caller (the owning System, under its write lock) has
// already applied the structural change to the document, encoding and
// label index; this file updates the view's fragment store to match.

import (
	"fmt"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/pattern"
	"xpathviews/internal/views"
	"xpathviews/internal/xmltree"
)

// DeltaStats reports what one view's maintenance pass did.
type DeltaStats struct {
	// Added/Removed count fragments whose roots entered/left the view;
	// Refreshed counts fragments whose membership held but whose copied
	// content contained the mutation point and was re-copied.
	Added, Removed, Refreshed int
	// Changed reports that the fragment store was modified at all — the
	// signal that bumps the view's generation.
	Changed bool
	// Scanned reports that the pattern was re-evaluated over the dirty
	// scope (false when the label prefilter proved membership could not
	// change).
	Scanned bool
}

// ApplyDelta maintains v after a mutation rooted at mutCode. scope is
// v's dirty root (an ancestor-or-self of the mutation root, computed
// via DirtyDepth) resolved in the post-mutation document; it is nil
// exactly when the dirty root was the deleted subtree itself, in which
// case the scope's prefix range simply empties. mutLabels is the label
// set of the mutated subtree, used to skip re-evaluation for views whose
// patterns cannot touch it.
func ApplyDelta(v *views.View, doc *xmltree.Tree, enc *dewey.Encoding, scope *xmltree.Node, scopeCode, mutCode dewey.Code, mutLabels map[string]struct{}) (DeltaStats, error) {
	var st DeltaStats

	if !patternTouches(v.Pattern, mutLabels) {
		// Membership cannot change: every witness a membership flip needs
		// would carry a label from the mutated subtree. Only fragments
		// whose copied content contains the mutation point (roots at
		// proper-ancestor-or-self codes of mutCode) need a re-copy.
		if err := refreshAncestors(v, doc, enc, mutCode, len(mutCode), &st); err != nil {
			return st, err
		}
		st.Changed = st.Refreshed > 0
		return st, nil
	}
	st.Scanned = true

	// Re-evaluate the pattern inside the dirty scope against the full
	// document and splice the result over the scope's prefix range.
	lo, hi := v.PrefixRange(scopeCode)
	var answers []*xmltree.Node
	if scope != nil {
		answers = engine.AnswersWithin(doc, v.Pattern, scope)
	}
	fresh := make([]views.Fragment, 0, len(answers))
	for _, a := range answers {
		f, err := views.BuildFragment(enc, a)
		if err != nil {
			return st, fmt.Errorf("maintain: view %d: %w", v.ID, err)
		}
		fresh = append(fresh, f)
	}

	// Merge-diff old range vs fresh (both code-sorted) to see whether the
	// splice changes anything: differing codes always do; equal codes only
	// when the fragment's subtree contains or is contained in the mutated
	// one (its copied content changed).
	old := v.Fragments[lo:hi]
	i, j := 0, 0
	changed := false
	for i < len(old) && j < len(fresh) {
		switch c := dewey.Compare(old[i].Code, fresh[j].Code); {
		case c < 0:
			st.Removed++
			changed = true
			i++
		case c > 0:
			st.Added++
			changed = true
			j++
		default:
			if dewey.IsPrefix(old[i].Code, mutCode) || dewey.IsPrefix(mutCode, old[i].Code) {
				st.Refreshed++
				changed = true
			}
			i++
			j++
		}
	}
	st.Removed += len(old) - i
	st.Added += len(fresh) - j
	if st.Added > 0 || st.Removed > 0 {
		changed = true
	}
	if changed {
		v.ReplaceRange(lo, hi, fresh)
	}
	st.Changed = changed

	// Fragments rooted above the splice range that contain the mutation
	// point: membership unchanged, content re-copied. The scope root and
	// everything below it were already rebuilt by the splice.
	if err := refreshAncestors(v, doc, enc, mutCode, len(scopeCode)-1, &st); err != nil {
		return st, err
	}
	st.Changed = st.Changed || st.Refreshed > 0
	return st, nil
}

// refreshAncestors re-copies every fragment rooted at a prefix of
// mutCode shorter than limit components — the fragments whose stored
// subtree copies contain the mutation point but whose membership is
// untouched. For deletes the deepest prefix (the deleted root itself,
// when limit permits) can no longer resolve; by the prefilter/splice
// arguments no fragment can be rooted there, so resolution failure for
// an existing fragment is reported as corruption.
func refreshAncestors(v *views.View, doc *xmltree.Tree, enc *dewey.Encoding, mutCode dewey.Code, limit int, st *DeltaStats) error {
	for l := 1; l <= limit && l <= len(mutCode); l++ {
		prefix := mutCode[:l]
		i := v.FindCode(prefix)
		if i < 0 {
			continue
		}
		n, ok := ResolveCode(doc, enc, prefix)
		if !ok {
			return fmt.Errorf("maintain: view %d: fragment root %s no longer resolves", v.ID, prefix)
		}
		f, err := views.BuildFragment(enc, n)
		if err != nil {
			return fmt.Errorf("maintain: view %d: %w", v.ID, err)
		}
		v.TotalBytes += f.Bytes - v.Fragments[i].Bytes
		v.Fragments[i] = f
		st.Refreshed++
	}
	return nil
}

// patternTouches reports whether any node of p could image a node of
// the mutated subtree: a wildcard matches anything, otherwise some
// pattern label must occur among the subtree's labels.
func patternTouches(p *pattern.Pattern, mutLabels map[string]struct{}) bool {
	touched := false
	p.Walk(func(n *pattern.Node) bool {
		if n.Label == pattern.Wildcard {
			touched = true
			return false
		}
		if _, ok := mutLabels[n.Label]; ok {
			touched = true
			return false
		}
		return true
	})
	return touched
}

// SubtreeLabels collects the label set of the subtree rooted at n.
func SubtreeLabels(n *xmltree.Node) map[string]struct{} {
	out := make(map[string]struct{})
	var walk func(m *xmltree.Node)
	walk = func(m *xmltree.Node) {
		out[m.Label] = struct{}{}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}
