package maintain

// Gap allocation of extended Dewey codes: a new child's component is the
// smallest value in its label's residue class (component mod m = label
// index, the invariant decoding relies on) not used by a live sibling.
// Two properties matter:
//
//   - Stability: allocation never renumbers existing siblings, so every
//     code handed out earlier — including codes stored inside view
//     fragments and WAL records — stays valid forever.
//
//   - Determinism: the chosen component depends only on the live sibling
//     codes, so replaying a WAL against the original document reproduces
//     bit-identical codes.
//
// Deleted components become gaps that the next same-label insert refills,
// so an adversarial insert/delete loop at one parent reuses components
// instead of growing them without bound.

import (
	"fmt"

	"xpathviews/internal/dewey"
	"xpathviews/internal/xmltree"
)

// ChildCode allocates the code for a new child with the given label
// under parent (which must be coded). It does not assign the code.
func ChildCode(enc *dewey.Encoding, parent *xmltree.Node, label string) (dewey.Code, error) {
	fst := enc.FST()
	idx, m, ok := fst.ChildIndex(parent.Label, label)
	if !ok {
		return nil, fmt.Errorf("%w: %q under %q", ErrSchema, label, parent.Label)
	}
	pc, ok := enc.CodeOf(parent)
	if !ok {
		return nil, fmt.Errorf("maintain: parent %q has no code", parent.Label)
	}
	used := make(map[uint32]bool, len(parent.Children))
	for _, c := range parent.Children {
		if cc, ok := enc.CodeOf(c); ok && len(cc) == len(pc)+1 {
			used[cc[len(pc)]] = true
		}
	}
	comp := uint32(idx)
	for used[comp] {
		comp += uint32(m)
	}
	code := make(dewey.Code, len(pc)+1)
	copy(code, pc)
	code[len(pc)] = comp
	return code, nil
}

// ValidateSubtree checks that every edge of the subtree rooted at sub is
// representable under the FST when grafted under a parent labeled
// parentLabel. Called before any state mutates, so a schema-violating
// insert is rejected with zero side effects.
func ValidateSubtree(fst *dewey.FST, parentLabel string, sub *xmltree.Node) error {
	if _, _, ok := fst.ChildIndex(parentLabel, sub.Label); !ok {
		return fmt.Errorf("%w: %q under %q", ErrSchema, sub.Label, parentLabel)
	}
	var walk func(n *xmltree.Node) error
	walk = func(n *xmltree.Node) error {
		for _, c := range n.Children {
			if _, _, ok := fst.ChildIndex(n.Label, c.Label); !ok {
				return fmt.Errorf("%w: %q under %q", ErrSchema, c.Label, n.Label)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(sub)
}

// ChildPos returns the sibling index at which a new child carrying last
// component comp belongs under parent, so that the children array stays
// sorted by component — the invariant that keeps document order and code
// order identical under gap allocation.
func ChildPos(enc *dewey.Encoding, parent *xmltree.Node, comp uint32) int {
	pos := 0
	for _, c := range parent.Children {
		if cc, ok := enc.CodeOf(c); ok && cc[len(cc)-1] < comp {
			pos++
		}
	}
	return pos
}

// EncodeSubtree assigns codes to every node of the freshly grafted
// subtree rooted at sub (sub.Parent must already be coded) and returns
// the number of nodes coded. The root is gap-allocated among its
// pre-existing siblings (ChildCode); its descendants — whole fresh
// sibling groups with no survivors to dodge — are assigned monotonically
// in child order, the same discipline the initial document encoding
// uses, so sibling order and component order agree inside the subtree
// too. The caller should have validated the subtree first; errors here
// indicate a bug, not bad input.
func EncodeSubtree(enc *dewey.Encoding, sub *xmltree.Node) (int, error) {
	fst := enc.FST()
	n := 0
	var walk func(node *xmltree.Node) error
	walk = func(node *xmltree.Node) error {
		pc := enc.MustCode(node)
		next := uint32(0)
		for _, c := range node.Children {
			idx, m, ok := fst.ChildIndex(node.Label, c.Label)
			if !ok {
				return fmt.Errorf("%w: %q under %q", ErrSchema, c.Label, node.Label)
			}
			// Smallest comp >= next with comp ≡ idx (mod m).
			comp := next + (uint32(idx)+uint32(m)-next%uint32(m))%uint32(m)
			code := make(dewey.Code, len(pc)+1)
			copy(code, pc)
			code[len(pc)] = comp
			enc.Assign(c, code)
			n++
			next = comp + 1
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	code, err := ChildCode(enc, sub.Parent, sub.Label)
	if err != nil {
		return n, err
	}
	enc.Assign(sub, code)
	n++
	if err := walk(sub); err != nil {
		return n, err
	}
	return n, nil
}

// ForgetSubtree drops the codes of every node in the subtree rooted at
// n, turning their components back into allocatable gaps.
func ForgetSubtree(enc *dewey.Encoding, n *xmltree.Node) int {
	count := 0
	var walk func(m *xmltree.Node)
	walk = func(m *xmltree.Node) {
		enc.Forget(m)
		count++
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return count
}

// ResolveCode walks from the document root to the live node carrying
// code, matching one component per level. Codes of siblings share their
// parent prefix and differ in the last component, so each level costs
// one scan of the children — no reverse map is maintained.
func ResolveCode(t *xmltree.Tree, enc *dewey.Encoding, code dewey.Code) (*xmltree.Node, bool) {
	if len(code) == 0 {
		return nil, false
	}
	n := t.Root()
	rc, ok := enc.CodeOf(n)
	if !ok || rc[0] != code[0] {
		return nil, false
	}
	for depth := 1; depth < len(code); depth++ {
		var next *xmltree.Node
		for _, c := range n.Children {
			if cc, ok := enc.CodeOf(c); ok && len(cc) == depth+1 && cc[depth] == code[depth] {
				next = c
				break
			}
		}
		if next == nil {
			return nil, false
		}
		n = next
	}
	return n, true
}
