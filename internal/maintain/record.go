package maintain

// WAL records: mutations ride the append-only log of internal/storage,
// whose CRC-framed records and torn-tail truncation on Open give crash
// recovery for free. Each mutation is one Put under a monotonically
// increasing, zero-padded key, so storage.Keys (sorted) returns records
// in application order and a partially appended final record is dropped
// by the store before replay ever sees it.

import (
	"encoding/binary"
	"fmt"

	"xpathviews/internal/dewey"
)

// Op tags one WAL record.
type Op byte

const (
	// OpInsert records InsertSubtree(Code=parent, XML=subtree).
	OpInsert Op = 'I'
	// OpDelete records DeleteSubtree(Code).
	OpDelete Op = 'D'
)

// Record is one logged mutation. For OpInsert, Code addresses the parent
// and XML is the inserted subtree's serialization; for OpDelete, Code
// addresses the deleted subtree root and XML is empty.
type Record struct {
	Op   Op
	Code dewey.Code
	XML  string
}

// KeyPrefix namespaces mutation records inside a shared store.
const KeyPrefix = "m!"

// Key renders the storage key for sequence number seq. Zero-padded
// decimal keeps lexicographic and numeric order identical.
func Key(seq uint64) string { return fmt.Sprintf("%s%016d", KeyPrefix, seq) }

// ParseKey extracts the sequence number from a mutation key.
func ParseKey(key string) (uint64, bool) {
	if len(key) != len(KeyPrefix)+16 || key[:len(KeyPrefix)] != KeyPrefix {
		return 0, false
	}
	var seq uint64
	for _, c := range key[len(KeyPrefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// Encode serializes the record: op byte, uvarint code length, the code's
// dotted form, then the XML payload (to the end of the value).
func (r Record) Encode() []byte {
	code := r.Code.String()
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(code)+len(r.XML))
	buf = append(buf, byte(r.Op))
	buf = binary.AppendUvarint(buf, uint64(len(code)))
	buf = append(buf, code...)
	buf = append(buf, r.XML...)
	return buf
}

// DecodeRecord parses an encoded record.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < 2 {
		return Record{}, fmt.Errorf("maintain: record too short (%d bytes)", len(b))
	}
	op := Op(b[0])
	if op != OpInsert && op != OpDelete {
		return Record{}, fmt.Errorf("maintain: unknown record op %q", b[0])
	}
	n, w := binary.Uvarint(b[1:])
	if w <= 0 || uint64(len(b)-1-w) < n {
		return Record{}, fmt.Errorf("maintain: corrupt record length")
	}
	rest := b[1+w:]
	code, err := dewey.ParseCode(string(rest[:n]))
	if err != nil {
		return Record{}, fmt.Errorf("maintain: record code: %w", err)
	}
	return Record{Op: op, Code: code, XML: string(rest[n:])}, nil
}
