// Package maintain implements incremental maintenance of materialized
// XPath views under subtree mutations (insert/delete), exploiting the
// paper's extended Dewey encoding (§III): a subtree is exactly a code
// prefix range, so the fragments a mutation can affect are found by
// intersecting that range with each view's code-sorted fragment store,
// and the view pattern is re-evaluated only over the affected subtree.
//
// Three ideas carry the subsystem:
//
//   - Gap allocation (alloc.go): an inserted child takes the smallest
//     unused component in its label's residue class, so existing codes
//     never shift and the allocation is a pure function of the live
//     sibling set — which is what makes WAL replay reproduce identical
//     codes.
//
//   - Dirty-root detection (dirty.go): for downward patterns, an answer
//     outside the mutated subtree can only change when some
//     predicate-bearing spine node images a proper ancestor of the
//     mutation root. The highest such ancestor bounds the re-evaluation
//     scope; by default the scope is the mutation root itself.
//
//   - Delta application (delta.go): re-evaluate the pattern inside the
//     dirty scope (engine.AnswersWithin), splice the result over the
//     scope's prefix range, and refresh ancestor fragments whose copied
//     content contains the mutation point.
//
// The package is storage- and lock-agnostic: the owning System drives it
// under its write lock and appends the WAL records (record.go) to
// internal/storage.
package maintain

import (
	"errors"

	"xpathviews/internal/faults"
)

// ErrSchema reports an insert whose labels are not in the FST's child
// alphabets. Growing an alphabet would change the modulus and silently
// re-label every existing code, so such inserts are rejected outright.
var ErrSchema = errors.New("maintain: label outside the FST child alphabet")

// ErrNoSuchNode reports a mutation addressed at a code that resolves to
// no live node.
var ErrNoSuchNode = errors.New("maintain: no node with that code")

// FaultApply is the chaos-injection point for mutations. The owning
// System fires it before any state changes, so an injected error or
// panic always leaves document, encoding, indexes and views consistent.
var FaultApply = faults.New("maintain.apply")
