package maintain

// Dirty-root detection: how far above the mutation root must a view be
// re-evaluated?
//
// Patterns here are downward-only ({/, //, *, []}), so an answer f's
// spine embedding is a descending chain of images ending at f. If any
// image lies inside the mutated subtree T(R), the whole tail of the
// chain — including f — lies inside T(R). Therefore an answer OUTSIDE
// T(R) can only change membership when a spine node's *predicate*
// witness moves in or out of T(R); the predicate is evaluated under the
// spine node's image w, so T(w) must intersect T(R), i.e. w is a proper
// ancestor of R (w inside T(R) again forces f inside T(R), and
// attributes of surviving nodes never change under subtree mutations).
// Such changed answers live anywhere under w.
//
// DirtyDepth computes the highest ancestor w any predicate-bearing
// spine node could structurally image (labels and axes only — ignoring
// predicates is a sound over-approximation), and returns its depth; the
// mutation root's own depth when no lift is possible. Re-evaluating the
// view inside the subtree at that depth therefore covers every possible
// membership change.

import "xpathviews/internal/pattern"

// DirtyDepth returns the depth (0 = document root) of the dirty root
// for pattern p and a mutation whose root has the given root-to-self
// label path. The result is always in [0, len(path)-1].
func DirtyDepth(p *pattern.Pattern, path []string) int {
	spine := p.Spine()
	k := len(path) - 1
	best := k
	// prev[i] = "spine[0..j-1] can embed along path[0..i] with path[i]
	// the image of spine[j-1]".
	prev := make([]bool, k+1)
	cur := make([]bool, k+1)
	for j, pn := range spine {
		anyPrev := false // OR of prev[0..i-1], maintained incrementally
		for i := 0; i <= k; i++ {
			ok := pn.Label == pattern.Wildcard || pn.Label == path[i]
			if ok {
				switch {
				case j == 0:
					// The pattern root hangs off the virtual document root:
					// Child axis images only the real root (depth 0).
					ok = pn.Axis == pattern.Descendant || i == 0
				case pn.Axis == pattern.Child:
					ok = i > 0 && prev[i-1]
				default:
					ok = anyPrev
				}
			}
			cur[i] = ok
			if i < k && prev[i] {
				anyPrev = true
			}
		}
		if bearsPredicate(pn, spine, j) {
			for i := 0; i < best; i++ {
				if cur[i] {
					best = i
					break
				}
			}
			if best == 0 {
				return 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// bearsPredicate reports whether spine[j] constrains its image's subtree
// beyond the spine continuation: any off-spine child branch is an
// existential predicate whose witness may sit in the mutated subtree
// while the image sits above it.
func bearsPredicate(pn *pattern.Node, spine []*pattern.Node, j int) bool {
	for _, c := range pn.Children {
		if j+1 < len(spine) && c == spine[j+1] {
			continue
		}
		return true
	}
	return false
}
