package maintain_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/dewey"
	"xpathviews/internal/maintain"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

func bookFixture(t *testing.T) (*xmltree.Tree, *dewey.Encoding) {
	t.Helper()
	tree := paperdata.BookTree()
	enc, err := dewey.Encode(tree, paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	return tree, enc
}

// TestChildCodeFillsGaps: the book root's sections sit at components 5
// and 8 (residue 2 mod 3); the first free residue-2 component is 2, so a
// new section must land there instead of growing past 8.
func TestChildCodeFillsGaps(t *testing.T) {
	tree, enc := bookFixture(t)
	code, err := maintain.ChildCode(enc, tree.Root(), paperdata.Section)
	if err != nil {
		t.Fatal(err)
	}
	if got := code.String(); got != "0.2" {
		t.Fatalf("new section code = %s, want 0.2 (first gap in residue class)", got)
	}
	// A new author: residue 1 mod 3, components 1 and 4 taken, next is 7.
	code, err = maintain.ChildCode(enc, tree.Root(), paperdata.Author)
	if err != nil {
		t.Fatal(err)
	}
	if got := code.String(); got != "0.7" {
		t.Fatalf("new author code = %s, want 0.7", got)
	}
}

// TestChildCodeSchemaError: a label outside the parent's child alphabet
// is rejected with ErrSchema before anything mutates.
func TestChildCodeSchemaError(t *testing.T) {
	tree, enc := bookFixture(t)
	if _, err := maintain.ChildCode(enc, tree.Root(), paperdata.Image); err == nil {
		t.Fatal("expected ErrSchema for image under book")
	}
	sub, err := xmltree.ParseString("<s><t/><zzz/></s>")
	if err != nil {
		t.Fatal(err)
	}
	if err := maintain.ValidateSubtree(enc.FST(), paperdata.Book, sub.Root()); err == nil {
		t.Fatal("expected ErrSchema for unknown label inside subtree")
	}
	if err := maintain.ValidateSubtree(enc.FST(), paperdata.Paragraph, tree.Root()); err == nil {
		t.Fatal("expected ErrSchema for book under paragraph")
	}
}

// TestGapReuseAdversarial: the always-insert-then-delete loop at one
// parent must reuse the same component forever, not march toward
// overflow.
func TestGapReuseAdversarial(t *testing.T) {
	tree, enc := bookFixture(t)
	s2 := tree.Root().Children[4] // section s2 at 0.8
	var first dewey.Code
	for i := 0; i < 100; i++ {
		n := tree.AddChild(s2, paperdata.Paragraph)
		code, err := maintain.ChildCode(enc, s2, paperdata.Paragraph)
		if err != nil {
			t.Fatal(err)
		}
		enc.Assign(n, code)
		if i == 0 {
			first = code.Clone()
		} else if dewey.Compare(code, first) != 0 {
			t.Fatalf("iteration %d allocated %s, want stable reuse of %s", i, code, first)
		}
		enc.Forget(n)
		if err := tree.Detach(n); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGapAllocProperty drives a long random interleaving of inserts and
// deletes and checks the allocator's contract after every step batch:
// pre-existing codes never change, codes stay unique, the prefix
// relation mirrors ancestry exactly, and every code still decodes to its
// node's label path under the FST.
func TestGapAllocProperty(t *testing.T) {
	tree, enc := bookFixture(t)
	fst := enc.FST()
	rng := rand.New(rand.NewSource(42))

	// Snapshot the seed document's codes: stability means these strings
	// never change, no matter what the mutation stream does.
	original := map[*xmltree.Node]string{}
	tree.Walk(func(n *xmltree.Node) bool {
		original[n] = enc.MustCode(n).String()
		return true
	})

	var inserted []*xmltree.Node
	for step := 0; step < 600; step++ {
		if rng.Intn(3) > 0 || len(inserted) == 0 {
			// Insert a leaf with a schema-valid label under a random
			// coded node that admits children.
			var parents []*xmltree.Node
			tree.Walk(func(n *xmltree.Node) bool {
				if len(fst.ChildAlphabet(n.Label)) > 0 {
					parents = append(parents, n)
				}
				return true
			})
			p := parents[rng.Intn(len(parents))]
			alpha := fst.ChildAlphabet(p.Label)
			label := alpha[rng.Intn(len(alpha))]
			code, err := maintain.ChildCode(enc, p, label)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			n := tree.AddChild(p, label)
			enc.Assign(n, code)
			inserted = append(inserted, n)
		} else {
			// Delete a random inserted node that is still a leaf (an
			// inserted node may have gained children since).
			i := rng.Intn(len(inserted))
			n := inserted[i]
			if len(n.Children) > 0 {
				continue
			}
			enc.Forget(n)
			if err := tree.Detach(n); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			inserted = append(inserted, nil)
			inserted[i] = inserted[len(inserted)-2]
			inserted = inserted[:len(inserted)-2]
		}

		if step%100 != 99 {
			continue
		}
		// Invariant 1: seed codes untouched.
		for n, want := range original {
			if got := enc.MustCode(n).String(); got != want {
				t.Fatalf("step %d: pre-existing code mutated: %s -> %s", step, want, got)
			}
		}
		// Invariant 2+3+4: uniqueness, FST-decodability, prefix ⟺ ancestry.
		nodes := tree.Nodes()
		codes := make(map[string]bool, len(nodes))
		for _, n := range nodes {
			c := enc.MustCode(n)
			s := c.String()
			if codes[s] {
				t.Fatalf("step %d: duplicate code %s", step, s)
			}
			codes[s] = true
			path, err := fst.Decode(c)
			if err != nil {
				t.Fatalf("step %d: code %s undecodable: %v", step, s, err)
			}
			lp := n.LabelPath()
			if len(path) != len(lp) {
				t.Fatalf("step %d: code %s decodes to %v, node path %v", step, s, path, lp)
			}
			for i := range path {
				if path[i] != lp[i] {
					t.Fatalf("step %d: code %s decodes to %v, node path %v", step, s, path, lp)
				}
			}
		}
		for _, a := range nodes {
			for _, b := range nodes {
				ca, cb := enc.MustCode(a), enc.MustCode(b)
				if got, want := dewey.IsAncestor(ca, cb), a.IsAncestorOf(b); got != want {
					t.Fatalf("step %d: IsAncestor(%s,%s)=%v but tree ancestry=%v", step, ca, cb, got, want)
				}
			}
		}
	}
}

// TestResolveCode walks allocated codes back to their nodes and rejects
// codes with no live owner.
func TestResolveCode(t *testing.T) {
	tree, enc := bookFixture(t)
	tree.Walk(func(n *xmltree.Node) bool {
		got, ok := maintain.ResolveCode(tree, enc, enc.MustCode(n))
		if !ok || got != n {
			t.Fatalf("ResolveCode(%s) = %v, %v; want the owning node", enc.MustCode(n), got, ok)
		}
		return true
	})
	if _, ok := maintain.ResolveCode(tree, enc, dewey.Code{0, 2}); ok {
		t.Fatal("ResolveCode resolved a gap component")
	}
	if _, ok := maintain.ResolveCode(tree, enc, nil); ok {
		t.Fatal("ResolveCode resolved the empty code")
	}
}

// TestDirtyDepth pins the lift decisions on the paper's views: patterns
// without predicates never lift above the mutation root, predicate-
// bearing spine nodes lift exactly to the highest ancestor they can
// structurally image.
func TestDirtyDepth(t *testing.T) {
	cases := []struct {
		query string
		path  []string
		want  int
	}{
		// No predicates: the mutation root itself is the dirty root.
		{"//s/p", []string{"b", "s", "p"}, 2},
		{"//s//p", []string{"b", "s", "s", "p"}, 3},
		// V1 = //s[t]/p: s can image the depth-1 section above a
		// mutated paragraph, so the dirty root lifts to depth 1.
		{"//s[t]/p", []string{"b", "s", "p"}, 1},
		// Nested sections: s images every ancestor section; the
		// highest is depth 1.
		{"//s[t]/p", []string{"b", "s", "s", "p"}, 1},
		// Predicate on the document root's child: lifts all the way to
		// depth 0.
		{"/b[t]//p", []string{"b", "s", "s", "p"}, 0},
		// Label mismatch: f cannot image any ancestor of a paragraph
		// mutation, so no lift happens.
		{"//f[i]", []string{"b", "s", "p"}, 2},
		// Wildcard spine node images anything.
		{"//*[t]/p", []string{"b", "s", "p"}, 0},
		// Child-axis root: /s cannot image the b root and no ancestor
		// matches, so no lift.
		{"/s[t]/p", []string{"b", "s", "p"}, 2},
	}
	for _, tc := range cases {
		p, err := xpath.Parse(tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		if got := maintain.DirtyDepth(p, tc.path); got != tc.want {
			t.Errorf("DirtyDepth(%s, %v) = %d, want %d", tc.query, tc.path, got, tc.want)
		}
	}
}

// TestRecordRoundTrip: WAL records encode/decode losslessly, and the key
// codec keeps numeric and lexicographic order aligned.
func TestRecordRoundTrip(t *testing.T) {
	recs := []maintain.Record{
		{Op: maintain.OpInsert, Code: dewey.Code{0, 8}, XML: "<p/>"},
		{Op: maintain.OpInsert, Code: dewey.Code{0, 5, 7}, XML: "<i/><!-- x -->"},
		{Op: maintain.OpDelete, Code: dewey.Code{0, 8, 6, 3, 0}},
		{Op: maintain.OpDelete, Code: dewey.Code{0}},
	}
	for _, r := range recs {
		got, err := maintain.DecodeRecord(r.Encode())
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if got.Op != r.Op || got.XML != r.XML || dewey.Compare(got.Code, r.Code) != 0 {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
	}
	for _, bad := range [][]byte{nil, {'I'}, {'X', 0}, {'I', 200, 'a'}} {
		if _, err := maintain.DecodeRecord(bad); err == nil {
			t.Fatalf("DecodeRecord(%v) accepted garbage", bad)
		}
	}

	prev := ""
	for _, seq := range []uint64{0, 1, 9, 10, 99, 1000000, 1<<40 - 1} {
		k := maintain.Key(seq)
		if k <= prev {
			t.Fatalf("keys out of order: %q after %q", k, prev)
		}
		prev = k
		got, ok := maintain.ParseKey(k)
		if !ok || got != seq {
			t.Fatalf("ParseKey(%q) = %d, %v; want %d", k, got, ok, seq)
		}
	}
	for _, bad := range []string{"", "m!", "m!123", "x!0000000000000001", "m!00000000000000ab"} {
		if _, ok := maintain.ParseKey(bad); ok {
			t.Fatalf("ParseKey(%q) accepted garbage", bad)
		}
	}
}
