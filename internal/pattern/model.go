// Package pattern implements the tree-pattern model of the paper's
// Section II for the XPath fragment {/, //, *, []}, together with the
// pattern-level algorithms the system is built on: decomposition into
// root-to-leaf path patterns (§III-A), normalization (§III-C), the
// string form STR(P) consumed by the VFilter NFA (§III-B), homomorphism
// and containment checking (§II), an exact canonical-model containment
// test used by the test-suite, and tree-pattern minimization.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Wildcard is the label that matches any element label.
const Wildcard = "*"

// Axis is the edge type connecting a pattern node to its parent (or, for
// the root, to the virtual document root).
type Axis uint8

const (
	// Child is the '/' axis: exactly one tree edge.
	Child Axis = iota
	// Descendant is the '//' axis: one or more tree edges.
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// AttrOp is a comparison operator in an attribute predicate (§V,
// "Handling comparison predicates").
type AttrOp uint8

const (
	AttrExists AttrOp = iota
	AttrEq
	AttrNe
	AttrLt
	AttrLe
	AttrGt
	AttrGe
)

var attrOpNames = [...]string{"", "=", "!=", "<", "<=", ">", ">="}

func (o AttrOp) String() string { return attrOpNames[o] }

// AttrPred is a predicate over an attribute of a pattern node, e.g.
// [@category] or [@price<100].
type AttrPred struct {
	Name  string
	Op    AttrOp
	Value string
}

func (p AttrPred) String() string {
	if p.Op == AttrExists {
		return "@" + p.Name
	}
	v := p.Value
	if _, ok := parseInt(v); !ok {
		// Non-numeric literals must be quoted to re-parse; pick the
		// quote character the value does not contain.
		if strings.ContainsRune(v, '\'') {
			v = `"` + v + `"`
		} else {
			v = "'" + v + "'"
		}
	}
	return "@" + p.Name + p.Op.String() + v
}

// Node is a tree-pattern node.
type Node struct {
	// Label is an element label or Wildcard.
	Label string
	// Axis relates this node to its parent (the virtual document root for
	// the pattern root).
	Axis     Axis
	Parent   *Node
	Children []*Node
	// Attrs are attribute predicates attached to this node.
	Attrs []AttrPred
}

// Pattern is a tree pattern: a rooted unordered tree of Nodes with a
// designated answer node RET(P).
type Pattern struct {
	Root *Node
	// Ret is the answer node; it must be a node of the tree.
	Ret *Node
}

// NewNode allocates a pattern node.
func NewNode(label string, axis Axis) *Node { return &Node{Label: label, Axis: axis} }

// AddChild links child under n and returns it.
func (n *Node) AddChild(label string, axis Axis) *Node {
	c := &Node{Label: label, Axis: axis, Parent: n}
	n.Children = append(n.Children, c)
	return c
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Size returns the number of nodes in p.
func (p *Pattern) Size() int {
	count := 0
	p.Walk(func(*Node) bool { count++; return true })
	return count
}

// Walk visits the pattern's nodes preorder; fn returning false aborts.
func (p *Pattern) Walk(fn func(n *Node) bool) {
	var rec func(n *Node) bool
	rec = func(n *Node) bool {
		if !fn(n) {
			return false
		}
		for _, c := range n.Children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(p.Root)
}

// Nodes returns all nodes in preorder.
func (p *Pattern) Nodes() []*Node {
	var out []*Node
	p.Walk(func(n *Node) bool { out = append(out, n); return true })
	return out
}

// Leaves returns the leaf nodes of p in preorder. (LEAF(Q) in §IV-A.)
func (p *Pattern) Leaves() []*Node {
	var out []*Node
	p.Walk(func(n *Node) bool {
		if n.IsLeaf() {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Spine returns the path of nodes from the root to the answer node,
// inclusive.
func (p *Pattern) Spine() []*Node {
	var rev []*Node
	for n := p.Ret; n != nil; n = n.Parent {
		rev = append(rev, n)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// OnSpine reports whether n lies on the root-to-answer path.
func (p *Pattern) OnSpine(n *Node) bool {
	for m := p.Ret; m != nil; m = m.Parent {
		if m == n {
			return true
		}
	}
	return false
}

// IsPath reports whether p is a path pattern (no branches).
func (p *Pattern) IsPath() bool {
	for n := p.Root; ; n = n.Children[0] {
		switch len(n.Children) {
		case 0:
			return true
		case 1:
		default:
			return false
		}
	}
}

// Depth returns the number of labelled steps on the longest root-to-leaf
// path (the paper's max_depth knob counts steps, i.e. nodes).
func (p *Pattern) Depth() int {
	var rec func(n *Node) int
	rec = func(n *Node) int {
		best := 0
		for _, c := range n.Children {
			if d := rec(c); d > best {
				best = d
			}
		}
		return best + 1
	}
	return rec(p.Root)
}

// AncestorOrSelf reports whether a is an ancestor of b or b itself,
// within the same pattern.
func AncestorOrSelf(a, b *Node) bool {
	for n := b; n != nil; n = n.Parent {
		if n == a {
			return true
		}
	}
	return false
}

// Clone deep-copies the pattern, preserving the answer-node designation.
func (p *Pattern) Clone() *Pattern {
	var ret *Node
	var rec func(n *Node) *Node
	rec = func(n *Node) *Node {
		cp := &Node{Label: n.Label, Axis: n.Axis}
		if len(n.Attrs) > 0 {
			cp.Attrs = append([]AttrPred(nil), n.Attrs...)
		}
		for _, c := range n.Children {
			cc := rec(c)
			cc.Parent = cp
			cp.Children = append(cp.Children, cc)
		}
		if n == p.Ret {
			ret = cp
		}
		return cp
	}
	root := rec(p.Root)
	if ret == nil {
		ret = root
	}
	return &Pattern{Root: root, Ret: ret}
}

// SubtreeAt returns a new Pattern whose root is a copy of the subtree at
// n. The answer node is p.Ret's copy when p.Ret lies in the subtree, the
// new root otherwise. The new root keeps n's axis.
func (p *Pattern) SubtreeAt(n *Node) *Pattern {
	sub := &Pattern{Root: n, Ret: n}
	if AncestorOrSelf(n, p.Ret) {
		sub.Ret = p.Ret
	}
	return sub.Clone()
}

// Validate checks structural invariants: mutual parent/child links, the
// answer node belonging to the tree, and non-empty labels.
func (p *Pattern) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("pattern: nil root")
	}
	foundRet := false
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if n.Label == "" {
			return fmt.Errorf("pattern: empty label")
		}
		if n == p.Ret {
			foundRet = true
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("pattern: node %q has a child %q with a broken parent link", n.Label, c.Label)
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if p.Root.Parent != nil {
		return fmt.Errorf("pattern: root has a parent")
	}
	if err := rec(p.Root); err != nil {
		return err
	}
	if p.Ret == nil || !foundRet {
		return fmt.Errorf("pattern: answer node not in tree")
	}
	return nil
}

// String renders the pattern in XPath syntax. Branches are emitted in a
// canonical (sorted) order so that equal patterns render identically; the
// answer-node position is the main path, predicates are bracketed.
func (p *Pattern) String() string {
	var b strings.Builder
	spine := p.Spine()
	onSpine := make(map[*Node]bool, len(spine))
	for _, n := range spine {
		onSpine[n] = true
	}
	for i, n := range spine {
		b.WriteString(n.Axis.String())
		b.WriteString(n.Label)
		for _, a := range n.Attrs {
			b.WriteString("[")
			b.WriteString(a.String())
			b.WriteString("]")
		}
		preds := make([]string, 0, len(n.Children))
		for _, c := range n.Children {
			if onSpine[c] && i+1 < len(spine) && spine[i+1] == c {
				continue
			}
			preds = append(preds, predString(c))
		}
		sort.Strings(preds)
		for _, s := range preds {
			b.WriteString("[")
			b.WriteString(s)
			b.WriteString("]")
		}
	}
	return b.String()
}

// predString renders a predicate subtree in relative XPath form: the
// top step of a predicate uses "." for a child axis (implicitly) and
// ".//" for a descendant axis.
func predString(n *Node) string {
	var b strings.Builder
	writePredNode(&b, n, true)
	return b.String()
}

func writePredNode(b *strings.Builder, n *Node, first bool) {
	if first {
		if n.Axis == Descendant {
			b.WriteString(".//")
		}
	} else {
		b.WriteString(n.Axis.String())
	}
	b.WriteString(n.Label)
	for _, a := range n.Attrs {
		b.WriteString("[")
		b.WriteString(a.String())
		b.WriteString("]")
	}
	if len(n.Children) == 0 {
		return
	}
	// The first child continues the path, other children become nested
	// predicates; render in sorted order via collected strings.
	parts := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		var cb strings.Builder
		writePredNode(&cb, c, false)
		parts = append(parts, cb.String())
	}
	sort.Strings(parts)
	// Longest part continues the path for readability; the rest bracket.
	main := 0
	for i, s := range parts {
		if len(s) > len(parts[main]) {
			main = i
		}
	}
	for i, s := range parts {
		if i == main {
			continue
		}
		b.WriteString("[")
		if strings.HasPrefix(s, "/") && !strings.HasPrefix(s, "//") {
			s = s[1:]
		} else if strings.HasPrefix(s, "//") {
			s = "." + s
		}
		b.WriteString(s)
		b.WriteString("]")
	}
	s := parts[main]
	b.WriteString(s)
}

// Equal reports whether p and q are identical as unordered trees with the
// same answer-node position. It is a syntactic check (up to sibling
// order), not semantic equivalence; use Equivalent for the latter.
func (p *Pattern) Equal(q *Pattern) bool {
	return nodeEqual(p.Root, q.Root, p.Ret, q.Ret)
}

func nodeEqual(a, b *Node, retA, retB *Node) bool {
	if a.Label != b.Label || a.Axis != b.Axis || len(a.Children) != len(b.Children) {
		return false
	}
	if (a == retA) != (b == retB) {
		return false
	}
	if !attrsEqual(a.Attrs, b.Attrs) {
		return false
	}
	// Unordered children: try to match them one-to-one (sizes are tiny).
	used := make([]bool, len(b.Children))
	for _, ca := range a.Children {
		ok := false
		for i, cb := range b.Children {
			if used[i] {
				continue
			}
			if nodeEqual(ca, cb, retA, retB) {
				used[i] = true
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func attrsEqual(a, b []AttrPred) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, x := range a {
		ok := false
		for i, y := range b {
			if !used[i] && x == y {
				used[i] = true
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
