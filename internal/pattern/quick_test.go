package pattern_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xpathviews/internal/pattern"
	"xpathviews/internal/xpath"
)

// quickPath derives a random path from quick's raw values, so shrinking
// and reproduction work through testing/quick's machinery.
func quickPath(seed int64, steps int) pattern.Path {
	r := rand.New(rand.NewSource(seed))
	n := 1 + (steps%5+5)%5
	return randomPath(r, n)
}

// TestQuickNormalizeIdempotent: N(N(P)) = N(P).
func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(seed int64, steps int) bool {
		p := quickPath(seed, steps)
		n1 := pattern.Normalize(p)
		n2 := pattern.Normalize(n1)
		return n1.Key() == n2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNormalizePreservesShape: normalization never changes labels,
// step count, or the number of descendant edges beyond collapsing runs.
func TestQuickNormalizeShape(t *testing.T) {
	f := func(seed int64, steps int) bool {
		p := quickPath(seed, steps)
		n := pattern.Normalize(p)
		if len(n.Steps) != len(p.Steps) {
			return false
		}
		for i := range n.Steps {
			if n.Steps[i].Label != p.Steps[i].Label {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickContainsReflexiveTransitive: containment by homomorphism is
// reflexive, and transitive on witnessed pairs.
func TestQuickContainsReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPattern(r, 6)
		return pattern.Contains(p, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickContainsTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	found := 0
	for i := 0; i < 3000 && found < 40; i++ {
		a := randomPattern(r, 3)
		b := randomPattern(r, 4)
		c := randomPattern(r, 5)
		// a ⊒ b and b ⊒ c must imply a ⊒ c.
		if pattern.Contains(a, b) && pattern.Contains(b, c) {
			found++
			if !pattern.Contains(a, c) {
				t.Fatalf("transitivity violated: %s ⊒ %s ⊒ %s", a, b, c)
			}
		}
	}
	if found == 0 {
		t.Fatal("no chains found; vacuous")
	}
}

// TestQuickDecomposeCoversLeaves: |D(Q)| ≤ #leaves and every leaf's path
// is represented.
func TestQuickDecomposeCoversLeaves(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPattern(r, 7)
		d := pattern.Decompose(p)
		return len(d) > 0 && len(d) <= len(p.Leaves())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinimizeSound: Minimize output is equivalent (checked exactly)
// and never larger.
func TestQuickMinimizeSound(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	for i := 0; i < 80; i++ {
		p := randomPattern(r, 5)
		m := pattern.Minimize(p)
		if m.Size() > p.Size() {
			t.Fatalf("Minimize grew %s to %s", p, m)
		}
		if !pattern.EquivalentExact(p, m) {
			t.Fatalf("Minimize changed semantics: %s vs %s", p, m)
		}
	}
}

// TestQuickCloneIndependent: mutating a clone never affects the original.
func TestQuickCloneIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPattern(r, 6)
		before := p.String()
		c := p.Clone()
		c.Root.Label = "zz"
		if len(c.Root.Children) > 0 {
			c.Root.Children[0].Axis = pattern.Descendant
		}
		return p.String() == before && c.Ret != p.Ret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParseRoundTripStable: String → Parse → String is a fixpoint.
func TestQuickParseRoundTripStable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPattern(r, 6)
		s1 := p.String()
		back, err := xpath.Parse(s1)
		if err != nil {
			return false
		}
		return back.String() == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
