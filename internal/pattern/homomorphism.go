package pattern

// This file implements homomorphisms between tree patterns (§II). A
// homomorphism h from pattern P to pattern Q witnesses Q ⊑ P: it maps
// P's nodes to Q's nodes such that
//
//   - labels agree, or the P-node is a wildcard;
//   - a '/'-edge of P maps to a '/'-edge of Q;
//   - a '//'-edge of P maps to a downward path of one or more edges in Q;
//   - every attribute predicate of a P-node appears (syntactically) on
//     its image (§V's "exactly the same" rule);
//   - P's root maps to Q's root when P is rooted with '/', and to any
//     node of Q otherwise (both patterns hang off a virtual document
//     root; a '//'-rooted P may map anywhere below it, but only if the
//     target is reachable — Q's own root axis already allows depth).
//
// Checking existence is the classic O(|P|·|Q|·depth) dynamic program.

// Hom holds a homomorphism existence table between a source pattern P and
// a target pattern Q.
type Hom struct {
	P, Q *Pattern

	pNodes []*Node
	qNodes []*Node
	pIdx   map[*Node]int
	qIdx   map[*Node]int

	// can[i][j] reports whether the subtree of P rooted at pNodes[i] can
	// be mapped with h(pNodes[i]) = qNodes[j].
	can [][]bool
}

// NewHom computes the homomorphism table from P to Q.
func NewHom(p, q *Pattern) *Hom {
	h := &Hom{
		P: p, Q: q,
		pNodes: p.Nodes(), qNodes: q.Nodes(),
	}
	h.pIdx = make(map[*Node]int, len(h.pNodes))
	for i, n := range h.pNodes {
		h.pIdx[n] = i
	}
	h.qIdx = make(map[*Node]int, len(h.qNodes))
	for j, n := range h.qNodes {
		h.qIdx[n] = j
	}
	h.can = make([][]bool, len(h.pNodes))
	for i := range h.can {
		h.can[i] = make([]bool, len(h.qNodes))
	}
	// P.Nodes() is preorder, so children come after parents; fill the
	// table bottom-up by iterating P's nodes in reverse.
	for i := len(h.pNodes) - 1; i >= 0; i-- {
		pn := h.pNodes[i]
		for j, qn := range h.qNodes {
			h.can[i][j] = h.nodeMaps(pn, qn)
		}
	}
	return h
}

// nodeMaps computes can(pn, qn) assuming children of pn already have
// their rows filled.
func (h *Hom) nodeMaps(pn, qn *Node) bool {
	if !labelCompat(pn.Label, qn.Label) {
		return false
	}
	if !attrsImplied(pn.Attrs, qn.Attrs) {
		return false
	}
	for _, pc := range pn.Children {
		pi := h.pIdx[pc]
		ok := false
		if pc.Axis == Child {
			for _, qc := range qn.Children {
				if qc.Axis == Child && h.can[pi][h.qIdx[qc]] {
					ok = true
					break
				}
			}
		} else {
			// Descendant: any node strictly below qn.
			ok = h.existsBelow(pi, qn)
		}
		if !ok {
			return false
		}
	}
	return true
}

// existsBelow reports whether some proper descendant qd of qn has
// can[pi][qd].
func (h *Hom) existsBelow(pi int, qn *Node) bool {
	for _, qc := range qn.Children {
		if h.can[pi][h.qIdx[qc]] || h.existsBelow(pi, qc) {
			return true
		}
	}
	return false
}

// labelCompat implements the homomorphism label rule: the source label
// must equal the target label or be the wildcard.
func labelCompat(src, dst string) bool {
	return src == Wildcard || src == dst
}

// AttrsImplied reports whether every attribute predicate of src is
// present (syntactically) in dst — the §V rule for attribute predicates.
func AttrsImplied(src, dst []AttrPred) bool { return attrsImplied(src, dst) }

// attrsImplied reports whether every attribute predicate of the source
// node is present on the target node.
func attrsImplied(src, dst []AttrPred) bool {
	for _, a := range src {
		found := false
		for _, b := range dst {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Exists reports whether a homomorphism from P to Q exists at all,
// respecting root axes. This is the PTIME (sound, generally incomplete)
// containment check Q ⊑ P used throughout the system.
func (h *Hom) Exists() bool {
	pRoot := 0
	if h.P.Root.Axis == Child {
		// P's root must map to Q's root, which must itself sit directly
		// under the document root.
		return h.Q.Root.Axis == Child && h.can[pRoot][0]
	}
	for j := range h.qNodes {
		if h.can[pRoot][j] {
			return true
		}
	}
	return false
}

// RootTargets returns the Q-nodes that P's root may map to under some
// homomorphism, respecting the root-axis rule.
func (h *Hom) RootTargets() []*Node {
	var out []*Node
	if h.P.Root.Axis == Child {
		if h.Q.Root.Axis == Child && h.can[0][0] {
			out = append(out, h.Q.Root)
		}
		return out
	}
	for j, qn := range h.qNodes {
		if h.can[0][j] {
			out = append(out, qn)
		}
	}
	return out
}

// CanMap reports whether the subtree of P at pn can map with image qn.
func (h *Hom) CanMap(pn, qn *Node) bool {
	return h.can[h.pIdx[pn]][h.qIdx[qn]]
}

// Contains reports whether pattern v contains pattern q (q ⊑ v) according
// to the homomorphism test. Sound always; complete when v is a path
// pattern (Theorem 3.1).
func Contains(v, q *Pattern) bool {
	return NewHom(v, q).Exists()
}

// PathContains reports whether path pattern vp contains path pattern qp
// (qp ⊑ vp). Complete per Theorem 3.1.
func PathContains(vp, qp Path) bool {
	return Contains(vp.Pattern(), qp.Pattern())
}

// SpineMapping is an assignment of the spine of P (root → RET(P)) to a
// descending chain of nodes in Q, forming part of a full homomorphism:
// off-spine subtrees of each spine node are guaranteed mappable below the
// assigned image.
type SpineMapping struct {
	// Images[i] is the Q-node assigned to the i-th spine node of P.
	Images []*Node
}

// Ret returns the image of RET(P), the last spine assignment.
func (m SpineMapping) Ret() *Node { return m.Images[len(m.Images)-1] }

// SpineMappings enumerates every way the spine of P can be embedded in Q
// as part of a complete homomorphism. The number of homomorphisms can be
// exponential, but spine mappings are at most |spine(P)| choices over
// |Q| nodes each and are enumerated without duplication.
func (h *Hom) SpineMappings() []SpineMapping {
	spine := h.P.Spine()
	spineSet := make(map[*Node]bool, len(spine))
	for _, n := range spine {
		spineSet[n] = true
	}

	// ok(i, qn): spine[i] maps to qn: can-compatible ignoring the spine
	// child (which is assigned explicitly) but requiring off-spine
	// children mappable.
	ok := func(i int, qn *Node) bool {
		pn := spine[i]
		if !labelCompat(pn.Label, qn.Label) || !attrsImplied(pn.Attrs, qn.Attrs) {
			return false
		}
		for _, pc := range pn.Children {
			if i+1 < len(spine) && pc == spine[i+1] {
				continue
			}
			pi := h.pIdx[pc]
			found := false
			if pc.Axis == Child {
				for _, qc := range qn.Children {
					if qc.Axis == Child && h.can[pi][h.qIdx[qc]] {
						found = true
						break
					}
				}
			} else {
				found = h.existsBelow(pi, qn)
			}
			if !found {
				return false
			}
		}
		return true
	}

	var out []SpineMapping
	var images []*Node
	var rec func(i int, from *Node)
	assign := func(i int, qn *Node) {
		images = append(images, qn)
		if i == len(spine)-1 {
			cp := append([]*Node(nil), images...)
			out = append(out, SpineMapping{Images: cp})
		} else {
			rec(i+1, qn)
		}
		images = images[:len(images)-1]
	}
	// rec assigns spine[i] to a node reachable from `from` per spine[i]'s
	// axis; from == nil means the virtual document root.
	rec = func(i int, from *Node) {
		pn := spine[i]
		if from == nil {
			if pn.Axis == Child {
				if h.Q.Root.Axis == Child && ok(i, h.Q.Root) {
					assign(i, h.Q.Root)
				}
				return
			}
			for _, qn := range h.qNodes {
				if ok(i, qn) {
					assign(i, qn)
				}
			}
			return
		}
		if pn.Axis == Child {
			for _, qc := range from.Children {
				if qc.Axis == Child && ok(i, qc) {
					assign(i, qc)
				}
			}
			return
		}
		var below func(q *Node)
		below = func(q *Node) {
			for _, qc := range q.Children {
				if ok(i, qc) {
					assign(i, qc)
				}
				below(qc)
			}
		}
		below(from)
	}
	rec(0, nil)
	return out
}
