package pattern

import (
	"xpathviews/internal/xmltree"
)

// This file implements the exact (coNP) containment test via canonical
// models, in the style of Miklau & Suciu (the paper's [14]/[15]). It is
// exponential and exists to validate the PTIME homomorphism test in the
// test-suite, exactly as the paper positions it ("it is rare to find where
// containment holds but no homomorphism exists", §IV).

// zLabel is a label outside every document alphabet, used for wildcard
// instantiation and //-edge extension in canonical models.
const zLabel = "\x00z"

// canonicalModels enumerates the canonical data trees of p: wildcards
// become z-nodes and every //-edge is expanded into a chain of 0..ext
// intermediate z-nodes.
func canonicalModels(p *Pattern, ext int, yield func(*xmltree.Tree) bool) {
	// Collect descendant edges: every node with Axis == Descendant
	// (including the root, whose //-axis hangs it below a virtual root —
	// for boolean evaluation we root models at a synthetic document node).
	nodes := p.Nodes()
	var descIdx []int
	for i, n := range nodes {
		if n.Axis == Descendant {
			descIdx = append(descIdx, i)
		}
	}
	ext++ // chain lengths 1..ext+1 edges → 0..ext intermediates
	choice := make([]int, len(descIdx))
	chainLen := make(map[*Node]int, len(descIdx))
	for {
		for k, idx := range descIdx {
			chainLen[nodes[idx]] = choice[k]
		}
		t := buildCanonical(p, chainLen)
		if !yield(t) {
			return
		}
		// next choice vector
		k := 0
		for k < len(choice) {
			choice[k]++
			if choice[k] < ext {
				break
			}
			choice[k] = 0
			k++
		}
		if k == len(choice) {
			return
		}
	}
}

// buildCanonical instantiates p as a data tree: a synthetic root labelled
// zLabel stands in for the document root so that root axes are modelled
// uniformly.
func buildCanonical(p *Pattern, chainLen map[*Node]int) *xmltree.Tree {
	t := xmltree.New(zLabel)
	var build func(pn *Node, parent *xmltree.Node)
	build = func(pn *Node, parent *xmltree.Node) {
		anchor := parent
		if pn.Axis == Descendant {
			for i := 0; i < chainLen[pn]; i++ {
				anchor = t.AddChild(anchor, zLabel)
			}
		}
		label := pn.Label
		if label == Wildcard {
			label = zLabel
		}
		dn := t.AddChild(anchor, label)
		for _, a := range pn.Attrs {
			if a.Op == AttrExists || a.Op == AttrEq {
				dn.SetAttr(a.Name, a.Value)
			}
		}
		for _, c := range pn.Children {
			build(c, dn)
		}
	}
	build(p.Root, t.Root())
	t.Renumber()
	return t
}

// evalBool reports whether pattern p has an embedding in t, where t's root
// is a synthetic document node (patterns anchor below it). This is a
// reference implementation used for canonical-model checking; the query
// engine has its own evaluators.
func evalBool(p *Pattern, t *xmltree.Tree) bool {
	// memoized "subtree of p at pn embeds at data node dn"
	type key struct {
		pn *Node
		dn *xmltree.Node
	}
	memo := make(map[key]int8)
	var embeds func(pn *Node, dn *xmltree.Node) bool
	var embedsBelow func(pn *Node, dn *xmltree.Node) bool
	embeds = func(pn *Node, dn *xmltree.Node) bool {
		k := key{pn, dn}
		if v, ok := memo[k]; ok {
			return v == 1
		}
		memo[k] = 0
		ok := pn.Label == Wildcard || pn.Label == dn.Label
		if ok {
			for _, a := range pn.Attrs {
				if !evalAttrOnNode(a, dn) {
					ok = false
					break
				}
			}
		}
		if ok {
			for _, pc := range pn.Children {
				var found bool
				if pc.Axis == Child {
					for _, dc := range dn.Children {
						if embeds(pc, dc) {
							found = true
							break
						}
					}
				} else {
					found = embedsBelow(pc, dn)
				}
				if !found {
					ok = false
					break
				}
			}
		}
		if ok {
			memo[k] = 1
		}
		return ok
	}
	embedsBelow = func(pn *Node, dn *xmltree.Node) bool {
		for _, dc := range dn.Children {
			if embeds(pn, dc) || embedsBelow(pn, dc) {
				return true
			}
		}
		return false
	}
	root := t.Root()
	if p.Root.Axis == Child {
		for _, dc := range root.Children {
			if embeds(p.Root, dc) {
				return true
			}
		}
		return false
	}
	return embedsBelow(p.Root, root)
}

// evalAttrOnNode evaluates one attribute predicate on a data node.
func evalAttrOnNode(a AttrPred, dn *xmltree.Node) bool {
	v, ok := dn.Attr(a.Name)
	if !ok {
		return false
	}
	return CompareAttr(a.Op, v, a.Value)
}

// CompareAttr applies op to a data value and a predicate constant,
// numerically when both sides parse as integers, lexicographically
// otherwise.
func CompareAttr(op AttrOp, dataVal, predVal string) bool {
	if op == AttrExists {
		return true
	}
	ai, aok := parseInt(dataVal)
	bi, bok := parseInt(predVal)
	var cmp int
	if aok && bok {
		switch {
		case ai < bi:
			cmp = -1
		case ai > bi:
			cmp = 1
		}
	} else {
		switch {
		case dataVal < predVal:
			cmp = -1
		case dataVal > predVal:
			cmp = 1
		}
	}
	switch op {
	case AttrEq:
		return cmp == 0
	case AttrNe:
		return cmp != 0
	case AttrLt:
		return cmp < 0
	case AttrLe:
		return cmp <= 0
	case AttrGt:
		return cmp > 0
	case AttrGe:
		return cmp >= 0
	}
	return false
}

func parseInt(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' {
		neg = true
		i = 1
		if len(s) == 1 {
			return 0, false
		}
	}
	var v int64
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		v = v*10 + int64(s[i]-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// ContainsExact decides p ⊑ q exactly by checking q on every canonical
// model of p, with //-extensions up to |q|+1 intermediate nodes (a safe
// bound for the fragment). Exponential in the number of //-edges of p —
// test-suite use only.
func ContainsExact(p, q *Pattern) bool {
	ext := q.Size() + 1
	contained := true
	canonicalModels(p, ext, func(t *xmltree.Tree) bool {
		if !evalBool(q, t) {
			contained = false
			return false
		}
		return true
	})
	return contained
}

// EquivalentExact decides p ≡ q exactly (test-suite use only).
func EquivalentExact(p, q *Pattern) bool {
	return ContainsExact(p, q) && ContainsExact(q, p)
}

// Minimize returns an equivalent pattern with redundant predicate
// branches removed (§II, citing [24]). A branch not containing the answer
// node is removed when a homomorphism shows the reduced pattern is still
// contained in the original (the reverse containment is trivial, so the
// two are equivalent). Homomorphism incompleteness can only leave a
// pattern slightly larger than optimal, never change its semantics.
func Minimize(p *Pattern) *Pattern {
	cur := p.Clone()
	for {
		removed := false
		var try func(n *Node) bool
		try = func(n *Node) bool {
			for i, c := range n.Children {
				if AncestorOrSelf(c, cur.Ret) {
					if try(c) {
						return true
					}
					continue
				}
				// Candidate: drop child i and test equivalence.
				reduced := cur.Clone()
				// locate the corresponding node in the clone by path
				rn := findTwin(cur.Root, reduced.Root, n)
				rc := rn.Children[i]
				rn.Children = append(rn.Children[:i:i], rn.Children[i+1:]...)
				_ = rc
				if Contains(cur, reduced) {
					cur = reduced
					return true
				}
				if try(c) {
					return true
				}
			}
			return false
		}
		removed = try(cur.Root)
		if !removed {
			return cur
		}
	}
}

// findTwin locates in cloneRoot the node occupying the same tree position
// as target occupies under origRoot.
func findTwin(origRoot, cloneRoot, target *Node) *Node {
	// compute child-index path from origRoot to target
	var idxPath []int
	for n := target; n != origRoot; n = n.Parent {
		p := n.Parent
		for i, c := range p.Children {
			if c == n {
				idxPath = append(idxPath, i)
				break
			}
		}
	}
	cur := cloneRoot
	for i := len(idxPath) - 1; i >= 0; i-- {
		cur = cur.Children[idxPath[i]]
	}
	return cur
}
