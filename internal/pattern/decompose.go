package pattern

import (
	"sort"
	"strings"
)

// A Path is a path pattern: a branch-free pattern represented as a list of
// steps. It is the currency of the VFilter: views and queries are
// decomposed into Paths (§III-A), normalized (§III-C), and turned into
// strings over the filter's alphabet (§III-B).
type Path struct {
	Steps []Step
}

// Step is one location step of a path pattern.
type Step struct {
	Axis  Axis
	Label string // element label or Wildcard
}

// Len returns the number of labels in the path — the quantity "l" stored
// in the sorted lists LIST(Pi) of Algorithm 1.
func (p Path) Len() int { return len(p.Steps) }

// String renders the path in XPath syntax, e.g. "//s/*//t".
func (p Path) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteString(s.Axis.String())
		b.WriteString(s.Label)
	}
	return b.String()
}

// Key returns a map key identifying the path exactly.
func (p Path) Key() string { return p.String() }

// Clone returns an independent copy.
func (p Path) Clone() Path {
	return Path{Steps: append([]Step(nil), p.Steps...)}
}

// Decompose returns D(P): the set of distinct root-to-leaf path patterns
// of p, in first-occurrence order (§III-A). Attribute predicates are not
// part of path decomposition — the paper's VFilter is structural only
// (§VI-B "we do not generate attribute predicates ... since we aim at
// verifying the efficiency of VFILTER for structural filtering").
func Decompose(p *Pattern) []Path {
	var out []Path
	seen := make(map[string]struct{})
	var steps []Step
	var rec func(n *Node)
	rec = func(n *Node) {
		steps = append(steps, Step{Axis: n.Axis, Label: n.Label})
		if n.IsLeaf() {
			path := Path{Steps: append([]Step(nil), steps...)}
			if k := path.Key(); k != "" {
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					out = append(out, path)
				}
			}
		}
		for _, c := range n.Children {
			rec(c)
		}
		steps = steps[:len(steps)-1]
	}
	rec(p.Root)
	return out
}

// DecomposeNormalized returns the normalized decomposition of p with
// duplicates (after normalization) removed. This is what both VFilter
// construction and query-side filtering consume.
func DecomposeNormalized(p *Pattern) []Path {
	raw := Decompose(p)
	var out []Path
	seen := make(map[string]struct{})
	for _, path := range raw {
		n := Normalize(path)
		if k := n.Key(); k != "" {
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, n)
			}
		}
	}
	return out
}

// PathAttrs is a normalized path pattern together with the distinct
// attribute-predicate names its nodes carry — the information the
// attribute-pruning VFILTER extension (§VII future work) indexes.
type PathAttrs struct {
	Path Path
	// Attrs holds sorted, distinct attribute names appearing on the
	// path's nodes.
	Attrs []string
}

// DecomposeNormalizedWithAttrs is DecomposeNormalized plus, per surviving
// path, the attribute names along it. When two root-to-leaf paths
// normalize identically their attribute sets are intersected — the right
// semantics for the *view* side of attribute pruning: a view path may
// only demand names that every occurrence carries. The query side uses
// DecomposeNormalizedWithAttrsUnion.
func DecomposeNormalizedWithAttrs(p *Pattern) []PathAttrs {
	return decomposeAttrs(p, intersectSorted)
}

// DecomposeNormalizedWithAttrsUnion unions attribute names of identically
// normalizing paths — the query side of attribute pruning, where any
// occurrence satisfying a requirement suffices (over-approximation keeps
// the filter free of false negatives).
func DecomposeNormalizedWithAttrsUnion(p *Pattern) []PathAttrs {
	return decomposeAttrs(p, unionSorted)
}

func decomposeAttrs(p *Pattern, combine func(a, b []string) []string) []PathAttrs {
	var out []PathAttrs
	index := make(map[string]int)
	var steps []Step
	var names []string
	var rec func(n *Node)
	rec = func(n *Node) {
		steps = append(steps, Step{Axis: n.Axis, Label: n.Label})
		mark := len(names)
		for _, a := range n.Attrs {
			names = append(names, a.Name)
		}
		if n.IsLeaf() {
			norm := Normalize(Path{Steps: append([]Step(nil), steps...)})
			key := norm.Key()
			attrs := sortedDistinct(names)
			if i, dup := index[key]; dup {
				out[i].Attrs = combine(out[i].Attrs, attrs)
			} else {
				index[key] = len(out)
				out = append(out, PathAttrs{Path: norm, Attrs: attrs})
			}
		}
		for _, c := range n.Children {
			rec(c)
		}
		steps = steps[:len(steps)-1]
		names = names[:mark]
	}
	rec(p.Root)
	return out
}

func sortedDistinct(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	cp := append([]string(nil), in...)
	sort.Strings(cp)
	out := cp[:1]
	for _, s := range cp[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

func unionSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// SubsetSorted reports whether every element of sub (sorted) appears in
// super (sorted).
func SubsetSorted(sub, super []string) bool {
	j := 0
	for _, s := range sub {
		for j < len(super) && super[j] < s {
			j++
		}
		if j >= len(super) || super[j] != s {
			return false
		}
	}
	return true
}

// Normalize returns N(P) (§III-C): within every maximal run of wildcard
// steps (a subsequence l0 α1 * α2 * ... αn * αn+1 ln+1 where only
// wildcards appear between the anchor labels), if any of the run's edges
// is a descendant edge, the run is rewritten so that the descendant edge
// comes first and all remaining edges are child edges. Runs touching the
// ends of the path (leading or trailing wildcards) are treated the same
// way, anchored at the virtual root or at the leaf.
//
// The rewrite preserves equivalence: both forms say "at least n+1 edges,
// at least one of them unconstrained in length", with the same wildcard
// count. Proposition 3.2: equivalent path patterns normalize identically.
func Normalize(p Path) Path {
	steps := append([]Step(nil), p.Steps...)
	i := 0
	for i < len(steps) {
		if steps[i].Label != Wildcard {
			i++
			continue
		}
		// [i, j) is a maximal run of wildcard steps.
		j := i
		for j < len(steps) && steps[j].Label == Wildcard {
			j++
		}
		// The run's edges are the axes of steps i..j-1 (edges entering
		// each wildcard) plus, if a labelled step follows, the axis of
		// step j (the edge leaving the run).
		hasDesc := false
		for k := i; k < j; k++ {
			if steps[k].Axis == Descendant {
				hasDesc = true
			}
		}
		if j < len(steps) && steps[j].Axis == Descendant {
			hasDesc = true
		}
		if hasDesc {
			steps[i].Axis = Descendant
			for k := i + 1; k < j; k++ {
				steps[k].Axis = Child
			}
			if j < len(steps) {
				steps[j].Axis = Child
			}
		}
		i = j + 1
	}
	return Path{Steps: steps}
}

// The VFilter alphabet (§III-B): element labels, the wildcard symbol, and
// the descendant-axis marker. The paper prints the marker as a special
// character; we use "^".
const (
	// SymWildcard is the input symbol for a wildcard step label.
	SymWildcard = Wildcard
	// SymDescend is the input symbol marking a descendant axis.
	SymDescend = "^"
)

// Str converts a (normalized) path pattern into the VFilter input string
// STR(P): each step contributes the descendant marker when its axis is
// '//' followed by its label symbol (§III-B). The result is a slice of
// symbols rather than a concatenated string so that multi-character
// element labels stay unambiguous.
func Str(p Path) []string {
	out := make([]string, 0, 2*len(p.Steps))
	for _, s := range p.Steps {
		if s.Axis == Descendant {
			out = append(out, SymDescend)
		}
		out = append(out, s.Label)
	}
	return out
}

// PathPattern converts a Path into an equivalent branch-free Pattern whose
// answer node is the final step.
func (p Path) Pattern() *Pattern {
	if len(p.Steps) == 0 {
		return nil
	}
	root := NewNode(p.Steps[0].Label, p.Steps[0].Axis)
	cur := root
	for _, s := range p.Steps[1:] {
		cur = cur.AddChild(s.Label, s.Axis)
	}
	return &Pattern{Root: root, Ret: cur}
}

// PathOf converts a branch-free pattern into a Path; ok is false when pat
// has branches.
func PathOf(pat *Pattern) (Path, bool) {
	var steps []Step
	for n := pat.Root; ; n = n.Children[0] {
		steps = append(steps, Step{Axis: n.Axis, Label: n.Label})
		if len(n.Children) == 0 {
			return Path{Steps: steps}, true
		}
		if len(n.Children) > 1 {
			return Path{}, false
		}
	}
}
