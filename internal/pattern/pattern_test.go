package pattern_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/pattern"
	"xpathviews/internal/xpath"
)

func mp(t *testing.T, s string) *pattern.Pattern {
	t.Helper()
	p, err := xpath.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return p
}

func TestDecompose(t *testing.T) {
	cases := []struct {
		q    string
		want []string
	}{
		{"//s[t]/p", []string{"//s/t", "//s/p"}},
		{"//s[f//i][t]/p", []string{"//s/f//i", "//s/t", "//s/p"}},
		{"//a", []string{"//a"}},
		{"/a[b][b]/c", []string{"/a/b", "/a/c"}},         // duplicate path removed
		{"//b[*//f]//t", []string{"//b/*//f", "//b//t"}}, // wildcard branch
		{"//s[a][.//i]//p", []string{"//s/a", "//s//i", "//s//p"}},
	}
	for _, c := range cases {
		got := pattern.Decompose(mp(t, c.q))
		if len(got) != len(c.want) {
			t.Errorf("Decompose(%s) = %v, want %v", c.q, got, c.want)
			continue
		}
		for i := range got {
			if got[i].String() != c.want[i] {
				t.Errorf("Decompose(%s)[%d] = %s, want %s", c.q, i, got[i], c.want[i])
			}
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"//s/*//t", "//s//*/t"}, // Example 3.2/3.3: push // to the front
		{"//s//*/t", "//s//*/t"}, // already normalized
		{"//s/*/t", "//s/*/t"},   // no descendant edge in the run: unchanged
		{"//a/*//*//b", "//a//*/*/b"},
		{"//a//*//*//b", "//a//*/*/b"},
		{"/*//a", "//*/a"},       // leading run anchored at the root
		{"//a/*//*", "//a//*/*"}, // trailing run
		{"//a/b//c", "//a/b//c"}, // no wildcards: unchanged
		{"/a/b/c", "/a/b/c"},
	}
	for _, c := range cases {
		p, ok := pattern.PathOf(mp(t, c.in))
		if !ok {
			t.Fatalf("%s is not a path", c.in)
		}
		got := pattern.Normalize(p).String()
		if got != c.want {
			t.Errorf("Normalize(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestNormalizePreservesEquivalence: N(P) ≡ P under the exact
// canonical-model containment check.
func TestNormalizePreservesEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 120; i++ {
		p := randomPath(r, 1+r.Intn(5))
		n := pattern.Normalize(p)
		if !pattern.EquivalentExact(p.Pattern(), n.Pattern()) {
			t.Fatalf("Normalize(%s) = %s is not equivalent", p, n)
		}
	}
}

// TestNormalizeCanonical — Proposition 3.2: equivalent path patterns
// normalize to identical strings. We generate a path, scramble the
// descendant-edge position within each wildcard run (an equivalence-
// preserving rewrite), and check the normal forms collide.
func TestNormalizeCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 150; i++ {
		p := randomPath(r, 2+r.Intn(4))
		q := scrambleRuns(r, p)
		if !pattern.EquivalentExact(p.Pattern(), q.Pattern()) {
			continue // scramble changed semantics (shouldn't happen) — skip
		}
		np, nq := pattern.Normalize(p), pattern.Normalize(q)
		if np.Key() != nq.Key() {
			t.Fatalf("equivalent paths %s and %s normalize differently: %s vs %s", p, q, np, nq)
		}
	}
}

func TestHomomorphismContainment(t *testing.T) {
	cases := []struct {
		v, q string
		want bool // q ⊑ v
	}{
		{"//s[t]/p", "//s[f//i][t]/p", true}, // the running example
		{"//s[p]/f", "//s[p]/f//i", true},    // boolean containment: extra predicates only strengthen q
		{"//a/b", "//a/b/c", true},
		{"//b/c", "//b/c", true},
		{"//b//c", "//b/c", true},
		{"//b/c", "//b//c", false},
		{"//*", "//a", true},
		{"//a", "//*", false},
		{"/a/b", "/a/b", true},
		{"/a/b", "//a/b", false}, // //a/b may match deeper
		{"//a/b", "/a/b", true},
		{"//a[b][c]", "//a[b/d][c]", true},
		{"//a[b/d]", "//a[b][c]", false},
	}
	for _, c := range cases {
		v, q := mp(t, c.v), mp(t, c.q)
		if got := pattern.Contains(v, q); got != c.want {
			t.Errorf("Contains(%s, %s) = %v, want %v", c.v, c.q, got, c.want)
		}
	}
}

// TestHomomorphismSoundness: if a homomorphism exists (q ⊑ v reported),
// the exact canonical-model check must agree.
func TestHomomorphismSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	checked := 0
	for i := 0; i < 250; i++ {
		v := randomPattern(r, 4)
		q := randomPattern(r, 5)
		if pattern.Contains(v, q) {
			checked++
			if !pattern.ContainsExact(q, v) {
				t.Fatalf("homomorphism claims %s ⊑ %s but canonical models disagree", q, v)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no containments generated; test is vacuous")
	}
}

// TestPathContainmentCompleteness — Theorem 3.1: for path-pattern
// containers the homomorphism test is complete, so it must agree with the
// canonical-model test in both directions. The classic caveat applies:
// completeness needs a wildcard-free container (e.g. //a//b ⊑ //a/* holds
// with no homomorphism), so the generator keeps vp wildcard-free.
func TestPathContainmentCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	agree := 0
	for i := 0; i < 200; i++ {
		vp := randomPath(r, 1+r.Intn(4))
		for k := range vp.Steps {
			if vp.Steps[k].Label == pattern.Wildcard {
				vp.Steps[k].Label = testLabels[r.Intn(len(testLabels))]
			}
		}
		qp := randomPath(r, 1+r.Intn(5))
		hom := pattern.PathContains(vp, qp)
		exact := pattern.ContainsExact(qp.Pattern(), vp.Pattern())
		if hom != exact {
			t.Fatalf("path containment mismatch for %s ⊑ %s: hom=%v exact=%v", qp, vp, hom, exact)
		}
		if hom {
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("no positive containments; vacuous")
	}
}

func TestMinimize(t *testing.T) {
	cases := []struct {
		in   string
		size int // node count after minimization
	}{
		{"//a[b][b]/c", 3},    // duplicate predicate
		{"//a[b]/c", 3},       // already minimal
		{"//a[.//b][b]/c", 3}, // .//b subsumed by b
		{"//a[*][b]/c", 3},    // * subsumed by b
	}
	for _, c := range cases {
		got := pattern.Minimize(mp(t, c.in))
		if got.Size() != c.size {
			t.Errorf("Minimize(%s) has %d nodes (%s), want %d", c.in, got.Size(), got, c.size)
		}
		if !pattern.EquivalentExact(got, mp(t, c.in)) {
			t.Errorf("Minimize(%s) = %s is not equivalent", c.in, got)
		}
	}
}

func TestMinimizePreservesAnswer(t *testing.T) {
	p := pattern.Minimize(mp(t, "//a[b][b]/c[d][d]"))
	if p.Ret.Label != "c" {
		t.Fatalf("answer node label = %q, want c", p.Ret.Label)
	}
}

func TestSpineAndLeaves(t *testing.T) {
	q := mp(t, "//s[f//i][t]/p")
	spine := q.Spine()
	if len(spine) != 2 || spine[0].Label != "s" || spine[1].Label != "p" {
		t.Fatalf("spine = %v", spine)
	}
	leaves := q.Leaves()
	labels := map[string]bool{}
	for _, l := range leaves {
		labels[l.Label] = true
	}
	if len(leaves) != 3 || !labels["i"] || !labels["t"] || !labels["p"] {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestStr(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"//s/p", []string{"^", "s", "p"}},
		{"/b/s", []string{"b", "s"}},
		{"//s/*//t", []string{"^", "s", "*", "^", "t"}},
		{"//s//i", []string{"^", "s", "^", "i"}},
	}
	for _, c := range cases {
		p, _ := pattern.PathOf(mp(t, c.in))
		got := pattern.Str(p)
		if len(got) != len(c.want) {
			t.Errorf("Str(%s) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Str(%s) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

// --- random pattern generators ------------------------------------------

var testLabels = []string{"a", "b", "c", "d"}

func randomPath(r *rand.Rand, steps int) pattern.Path {
	var p pattern.Path
	for i := 0; i < steps; i++ {
		ax := pattern.Child
		if r.Intn(3) == 0 {
			ax = pattern.Descendant
		}
		lb := testLabels[r.Intn(len(testLabels))]
		if r.Intn(4) == 0 {
			lb = pattern.Wildcard
		}
		p.Steps = append(p.Steps, pattern.Step{Axis: ax, Label: lb})
	}
	// Avoid an all-wildcard path ending: keep the leaf labelled half the
	// time to diversify.
	if p.Steps[len(p.Steps)-1].Label == pattern.Wildcard && r.Intn(2) == 0 {
		p.Steps[len(p.Steps)-1].Label = testLabels[r.Intn(len(testLabels))]
	}
	return p
}

// scrambleRuns moves the descendant edge within each wildcard run to a
// random position (the equivalence the paper exploits in §III-C).
func scrambleRuns(r *rand.Rand, p pattern.Path) pattern.Path {
	steps := append([]pattern.Step(nil), p.Steps...)
	i := 0
	for i < len(steps) {
		if steps[i].Label != pattern.Wildcard {
			i++
			continue
		}
		j := i
		for j < len(steps) && steps[j].Label == pattern.Wildcard {
			j++
		}
		// edges at positions i..j (j only if within range)
		hi := j
		if hi >= len(steps) {
			hi = len(steps) - 1
		}
		hasDesc := false
		for k := i; k <= hi; k++ {
			if steps[k].Axis == pattern.Descendant {
				hasDesc = true
			}
		}
		if hasDesc {
			for k := i; k <= hi; k++ {
				steps[k].Axis = pattern.Child
			}
			pick := i + r.Intn(hi-i+1)
			steps[pick].Axis = pattern.Descendant
		}
		i = j + 1
	}
	return pattern.Path{Steps: steps}
}

func randomPattern(r *rand.Rand, maxNodes int) *pattern.Pattern {
	root := pattern.NewNode(testLabels[r.Intn(len(testLabels))], pattern.Axis(r.Intn(2)))
	nodes := []*pattern.Node{root}
	n := 1 + r.Intn(maxNodes)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		lb := testLabels[r.Intn(len(testLabels))]
		if r.Intn(5) == 0 {
			lb = pattern.Wildcard
		}
		c := parent.AddChild(lb, pattern.Axis(r.Intn(2)))
		nodes = append(nodes, c)
	}
	return &pattern.Pattern{Root: root, Ret: nodes[r.Intn(len(nodes))]}
}
