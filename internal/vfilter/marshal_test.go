package vfilter_test

import (
	"testing"

	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/storage"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// TestMarshalRoundTrip: a filter serialized and reloaded must make the
// same filtering decisions.
func TestMarshalRoundTrip(t *testing.T) {
	f := vfilter.New()
	for i, src := range paperdata.TableIViews() {
		f.AddView(i+1, xpath.MustParse(src))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := vfilter.UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumStates() != f.NumStates() || back.NumViews() != f.NumViews() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumStates(), back.NumViews(), f.NumStates(), f.NumViews())
	}
	q := xpath.MustParse(paperdata.QueryE)
	a := f.Filtering(q)
	b := back.Filtering(q)
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("candidates differ: %v vs %v", a.Candidates, b.Candidates)
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			t.Fatalf("candidates differ: %v vs %v", a.Candidates, b.Candidates)
		}
	}
}

// TestMarshalLargeRoundTrip exercises the codec on a generated view set.
func TestMarshalLargeRoundTrip(t *testing.T) {
	gen := workload.New(3, xmark.Schema(), xmark.Attributes(), workload.Params{
		MaxDepth: 4, ProbWild: 0.2, ProbDesc: 0.2, NumNestedPath: 2,
	})
	f := vfilter.New()
	var queries []*pattern.Pattern
	for i := 0; i < 400; i++ {
		v := gen.Query()
		f.AddView(i, v)
		if i%10 == 0 {
			queries = append(queries, gen.Query())
		}
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := vfilter.UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		a, b := f.Filtering(q), back.Filtering(q)
		if len(a.Candidates) != len(b.Candidates) {
			t.Fatalf("filtering diverged after round trip on %s", q)
		}
	}
	if f.StoredSize() != len(data) {
		t.Fatalf("StoredSize %d != marshalled length %d", f.StoredSize(), len(data))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	f := vfilter.New()
	f.AddView(0, xpath.MustParse("//a/b"))
	data, _ := f.MarshalBinary()
	for _, bad := range [][]byte{
		nil,
		{1, 2, 3},
		data[:len(data)-2],         // truncated
		append([]byte{9}, data...), // wrong version prefix
	} {
		if _, err := vfilter.UnmarshalBinary(bad); err == nil {
			t.Errorf("UnmarshalBinary accepted corrupt input of %d bytes", len(bad))
		}
	}
}

// TestPersistence stores and reloads the automaton through the KV store,
// as the paper did with Berkeley DB.
func TestPersistence(t *testing.T) {
	f := vfilter.New()
	for i, src := range paperdata.TableIViews() {
		f.AddView(i+1, xpath.MustParse(src))
	}
	st := storage.OpenMemory()
	if err := f.PersistTo(st); err != nil {
		t.Fatal(err)
	}
	back, err := vfilter.LoadFrom(st)
	if err != nil {
		t.Fatal(err)
	}
	res := back.Filtering(xpath.MustParse(paperdata.QueryE))
	if len(res.Candidates) != 2 {
		t.Fatalf("reloaded filter candidates = %v", res.Candidates)
	}
	empty := storage.OpenMemory()
	if _, err := vfilter.LoadFrom(empty); err == nil {
		t.Fatal("LoadFrom empty store must fail")
	}
}
