package vfilter

import "xpathviews/internal/pattern"

// Attribute pruning implements the extension §VII sketches as future work
// ("we plan to incorporate attributes into VFILTER to gain further
// pruning power"): each view path pattern records the attribute names its
// nodes demand, and an acceptance only counts when those names all appear
// on the accepted query path. The condition is necessary for containment
// — a homomorphism maps every view node (with its attribute predicates,
// which must appear verbatim on the image, §V) onto a node of the
// accepted query path — so pruning adds no false negatives.
//
// Enable it with EnableAttributePruning before the first AddView.

// EnableAttributePruning turns the extension on. It must be called while
// the filter is still empty; enabling it later would leave earlier views
// without recorded attribute requirements.
func (f *Filter) EnableAttributePruning() {
	if len(f.viewIDs) != 0 {
		panic("vfilter: EnableAttributePruning after AddView")
	}
	f.attrPruning = true
}

// AttrPruningEnabled reports whether the extension is active.
func (f *Filter) AttrPruningEnabled() bool { return f.attrPruning }

// addViewAttrs inserts a view recording per-path attribute requirements.
func (f *Filter) addViewAttrs(id int, v *pattern.Pattern) {
	paths := pattern.DecomposeNormalizedWithAttrs(v)
	f.numPaths[id] = len(paths)
	f.viewIDs = append(f.viewIDs, id)
	for i, pa := range paths {
		f.insertPath(Entry{View: id, PathIdx: i, PathLen: pa.Path.Len(), Attrs: pa.Attrs}, pa.Path)
	}
}
