// Package vfilter implements VFILTER (§III): an NFA over the decomposed,
// normalized root-to-leaf path patterns of a view set. Reading the string
// form STR(P) of a query path pattern P leads to the accepting states of
// exactly those view path patterns that contain P; a view survives
// filtering iff each of its path patterns contains some path pattern of
// the query (Proposition 3.1).
//
// The filter admits false positives but — thanks to normalization
// (§III-C) — no false negatives.
//
// Construction uses the four basic fragments of Figure 5, sharing common
// prefixes in a trie so that the automaton stays compact as the view set
// grows (the effect Figure 11 measures):
//
//	/l  : s ──l──▶ t
//	/*  : s ──any node symbol──▶ t
//	//l : s ──l──▶ t   and   s ──any──▶ u ⟲any, u ──l──▶ t
//	//* : s ──node──▶ t  and  s ──any──▶ u ⟲any, u ──node──▶ t
//
// where "any" ranges over the whole alphabet (labels, the wildcard symbol
// and the descendant marker '^') and "node" over everything except '^'.
// The skip state u realizes the paper's self-loop without ε-transitions.
package vfilter

import (
	"sort"

	"xpathviews/internal/budget"
	"xpathviews/internal/faults"
	"xpathviews/internal/pattern"
)

// fpFiltering is the chaos-test fault point at the filtering stage.
var fpFiltering = faults.New("vfilter.filtering")

// Entry identifies one view path pattern stored at an accepting state.
type Entry struct {
	// View is the caller-assigned view identifier.
	View int
	// PathIdx is the index of this path within the view's normalized
	// decomposition.
	PathIdx int
	// PathLen is the number of labels of the view path — the "l" of the
	// sorted lists in Algorithm 1.
	PathLen int
	// Attrs holds the sorted attribute names this view path requires on
	// an accepted query path (attribute-pruning extension; nil when the
	// extension is off).
	Attrs []string
}

type state struct {
	// byLabel holds arcs taken on one exact symbol.
	byLabel map[string][]int32
	// anyNode holds arcs taken on any symbol except the descendant
	// marker (wildcard steps).
	anyNode []int32
	// anySym holds arcs taken on any symbol including the descendant
	// marker (the skip arcs of '//' fragments).
	anySym []int32
	// accepts lists the view path patterns this state accepts.
	accepts []Entry

	// trie links for prefix sharing during construction:
	// next[stepKey] = end state of the fragment for that step.
	next map[stepKey]int32
	// loopOf[stepKey] = skip state of the '//' fragment for that step.
	loopOf map[stepKey]int32
}

type stepKey struct {
	axis  pattern.Axis
	label string
}

// Filter is the VFILTER automaton plus its per-view bookkeeping.
type Filter struct {
	states []*state
	start  int32

	// numPaths[viewID] = |D(V)| after normalization and deduplication.
	numPaths map[int]int
	// viewIDs in insertion order, for deterministic candidate output.
	viewIDs []int

	// gapBinding extends the paper's automaton: while reading a
	// descendant marker '^', view wildcard steps may bind to the
	// anonymous nodes the gap implies (an ε-closure over wildcard arcs).
	// Without it the filter has rare false negatives that normalization
	// alone cannot remove — e.g. //a/d//e//c ⊑ //a//*/e holds (by case
	// analysis over where e's parent sits) yet no single homomorphism,
	// and hence no plain NFA run, witnesses it. Gap binding restores the
	// no-false-negative guarantee at the cost of a few extra false
	// positives, which answerability checking removes anyway.
	gapBinding bool

	// attrPruning enables the §VII attribute-pruning extension (see
	// attrs.go).
	attrPruning bool

	transitions int
}

// New creates an empty filter with gap binding enabled (safe mode).
func New() *Filter {
	f := NewExact()
	f.gapBinding = true
	return f
}

// NewExact creates an empty filter implementing the paper's automaton
// exactly (no gap binding). Used to reproduce Examples 3.2/3.3 and by the
// normalization ablation.
func NewExact() *Filter {
	f := &Filter{numPaths: make(map[int]int)}
	f.start = f.newState()
	return f
}

func (f *Filter) newState() int32 {
	f.states = append(f.states, &state{})
	return int32(len(f.states) - 1)
}

// NumStates returns the number of NFA states.
func (f *Filter) NumStates() int { return len(f.states) }

// NumTransitions returns the number of stored arcs (skip self-loops count
// once).
func (f *Filter) NumTransitions() int { return f.transitions }

// NumViews returns the number of views added.
func (f *Filter) NumViews() int { return len(f.viewIDs) }

// AddView decomposes, normalizes and inserts a view's path patterns.
// View IDs must be unique; re-adding an ID panics.
func (f *Filter) AddView(id int, v *pattern.Pattern) {
	if _, dup := f.numPaths[id]; dup {
		panic("vfilter: duplicate view id")
	}
	if f.attrPruning {
		f.addViewAttrs(id, v)
		return
	}
	paths := pattern.DecomposeNormalized(v)
	f.numPaths[id] = len(paths)
	f.viewIDs = append(f.viewIDs, id)
	for i, p := range paths {
		f.insertPath(Entry{View: id, PathIdx: i, PathLen: p.Len()}, p)
	}
}

// insertPath threads one normalized path pattern through the trie,
// creating fragments as needed, and marks the final state accepting.
func (f *Filter) insertPath(e Entry, p pattern.Path) {
	cur := f.start
	for _, s := range p.Steps {
		key := stepKey{axis: s.Axis, label: s.Label}
		st := f.states[cur]
		if st.next == nil {
			st.next = make(map[stepKey]int32, 1)
		}
		if nxt, ok := st.next[key]; ok {
			cur = nxt
			continue
		}
		end := f.newState()
		st = f.states[cur] // newState may have grown the slice
		switch {
		case s.Axis == pattern.Child && s.Label != pattern.Wildcard:
			f.addLabelArc(cur, s.Label, end)
		case s.Axis == pattern.Child && s.Label == pattern.Wildcard:
			f.states[cur].anyNode = append(f.states[cur].anyNode, end)
			f.transitions++
		default: // Descendant
			loop := f.newState()
			st = f.states[cur]
			if st.loopOf == nil {
				st.loopOf = make(map[stepKey]int32, 1)
			}
			st.loopOf[key] = loop
			// entering and staying in the skip state
			f.states[cur].anySym = append(f.states[cur].anySym, loop)
			f.states[loop].anySym = append(f.states[loop].anySym, loop)
			f.transitions += 2
			if s.Label != pattern.Wildcard {
				f.addLabelArc(cur, s.Label, end)
				f.addLabelArc(loop, s.Label, end)
			} else {
				f.states[cur].anyNode = append(f.states[cur].anyNode, end)
				f.states[loop].anyNode = append(f.states[loop].anyNode, end)
				f.transitions += 2
			}
		}
		f.states[cur].next[key] = end
		cur = end
	}
	f.states[cur].accepts = append(f.states[cur].accepts, e)
}

func (f *Filter) addLabelArc(from int32, label string, to int32) {
	st := f.states[from]
	if st.byLabel == nil {
		st.byLabel = make(map[string][]int32, 1)
	}
	st.byLabel[label] = append(st.byLabel[label], to)
	f.transitions++
}

// Read runs the automaton over the symbols of one query path pattern
// string and returns the entries of all accepting states reached after
// any prefix of the input. Prefix ("sticky") acceptance realizes the
// paper's self-loop on accepting states — a view path pattern contains
// every query path that extends one of its matches — without adding the
// loop to trie states shared with longer view paths (which would create
// avoidable false positives). The input must come from pattern.Str on a
// normalized path.
func (f *Filter) Read(symbols []string) []Entry {
	var out []Entry
	seen := make(map[int32]struct{}, 4)
	collect := func(set []int32) {
		for _, si := range set {
			if len(f.states[si].accepts) == 0 {
				continue
			}
			if _, dup := seen[si]; dup {
				continue
			}
			seen[si] = struct{}{}
			out = append(out, f.states[si].accepts...)
		}
	}
	cur := []int32{f.start}
	next := make([]int32, 0, 8)
	mark := make(map[int32]struct{}, 16)
	for _, sym := range symbols {
		next = next[:0]
		for k := range mark {
			delete(mark, k)
		}
		add := func(s int32) {
			if _, dup := mark[s]; !dup {
				mark[s] = struct{}{}
				next = append(next, s)
			}
		}
		for _, si := range cur {
			st := f.states[si]
			for _, t := range st.byLabel[sym] {
				add(t)
			}
			if sym != pattern.SymDescend {
				for _, t := range st.anyNode {
					add(t)
				}
			}
			for _, t := range st.anySym {
				add(t)
			}
		}
		if sym == pattern.SymDescend && f.gapBinding {
			// Close over wildcard arcs: anonymous gap nodes may stand in
			// for view '*' steps. Seeds are the states already reached
			// via one gap move plus the current states' wildcard arcs.
			for _, si := range cur {
				for _, t := range f.states[si].anyNode {
					add(t)
				}
			}
			for i := 0; i < len(next); i++ { // next grows during the loop
				st := f.states[next[i]]
				for _, t := range st.anyNode {
					add(t)
				}
				for _, t := range st.anySym {
					add(t)
				}
			}
		}
		cur, next = next, cur
		if len(cur) == 0 {
			break
		}
		collect(cur)
	}
	return out
}

// ListEntry is one element of the sorted list LIST(Pi) that Algorithm 1
// maintains for a query path pattern: a view and the largest length of a
// view path pattern of that view containing Pi.
type ListEntry struct {
	View int
	Len  int
}

// Result is the output of Algorithm 1 for one query.
type Result struct {
	// Candidates holds the surviving view IDs, in view insertion order.
	Candidates []int
	// QueryPaths holds the normalized, deduplicated path decomposition of
	// the query, in first-occurrence order.
	QueryPaths []pattern.Path
	// Lists[i] is LIST(QueryPaths[i]): candidate views containing the
	// path, sorted by Len descending (ties: smaller view ID first).
	Lists [][]ListEntry
}

// Filtering runs Algorithm 1 (ViewFiltering) for query q: it decomposes
// and normalizes q, reads each path through the automaton, counts for
// every view the number of distinct view path patterns that accepted at
// least one query path, and outputs views whose every path pattern
// accepted (NUM(V) = |D(V)|).
//
// Deviating from the paper's literal pseudo-code, acceptance is counted
// per distinct view path pattern (a bitset per view) rather than per
// acceptance event; double-counting events could otherwise filter views
// that must be kept. See DESIGN.md.
func (f *Filter) Filtering(q *pattern.Pattern) *Result {
	res, err := f.FilteringBudget(q, nil)
	if err != nil {
		// Only an armed fault point can fail an unbudgeted run; degrade to
		// "no candidates" so legacy callers keep a non-nil result.
		return &Result{}
	}
	return res
}

// FilteringBudget is Filtering under a cancellation/step budget: each
// query path charges steps proportional to its automaton run. A nil
// budget never aborts on its own, but the stage fault point may.
func (f *Filter) FilteringBudget(q *pattern.Pattern, b *budget.B) (*Result, error) {
	if err := fpFiltering.Fire(); err != nil {
		return nil, err
	}
	var queryAttrs [][]string
	var res *Result
	if f.attrPruning {
		pas := pattern.DecomposeNormalizedWithAttrsUnion(q)
		paths := make([]pattern.Path, len(pas))
		queryAttrs = make([][]string, len(pas))
		for i, pa := range pas {
			paths[i] = pa.Path
			queryAttrs[i] = pa.Attrs
		}
		res = &Result{QueryPaths: paths}
	} else {
		res = &Result{QueryPaths: pattern.DecomposeNormalized(q)}
	}
	seen := make(map[int]map[int]struct{})           // view → set of path indices
	best := make([]map[int]int, len(res.QueryPaths)) // per query path: view → max len
	for i, qp := range res.QueryPaths {
		if err := b.Step(qp.Len() + 1); err != nil {
			return nil, err
		}
		entries := f.Read(pattern.Str(qp))
		if err := b.Step(len(entries)); err != nil {
			return nil, err
		}
		best[i] = make(map[int]int)
		for _, e := range entries {
			if f.attrPruning && !pattern.SubsetSorted(e.Attrs, queryAttrs[i]) {
				continue
			}
			s, ok := seen[e.View]
			if !ok {
				s = make(map[int]struct{}, 2)
				seen[e.View] = s
			}
			s[e.PathIdx] = struct{}{}
			if e.PathLen > best[i][e.View] {
				best[i][e.View] = e.PathLen
			}
		}
	}
	surviving := make(map[int]bool, len(seen))
	for _, id := range f.viewIDs {
		if s := seen[id]; s != nil && len(s) == f.numPaths[id] {
			surviving[id] = true
			res.Candidates = append(res.Candidates, id)
		}
	}
	res.Lists = make([][]ListEntry, len(res.QueryPaths))
	for i := range res.QueryPaths {
		list := make([]ListEntry, 0, len(best[i]))
		for v, l := range best[i] {
			if surviving[v] { // lines 22-26: drop filtered views
				list = append(list, ListEntry{View: v, Len: l})
			}
		}
		sort.Slice(list, func(a, b int) bool {
			if list[a].Len != list[b].Len {
				return list[a].Len > list[b].Len
			}
			return list[a].View < list[b].View
		})
		res.Lists[i] = list
	}
	return res, nil
}
