package vfilter

// RemoveView retracts a view from the filter: its accept entries are
// dropped (so it can never again appear as a candidate) and its
// bookkeeping is deleted. Trie states stay in place — the paper notes
// NFA insertion/deletion is cheap precisely because shared states need
// no restructuring; states that no longer accept anything are harmless
// and are reclaimed when the owner rebuilds the filter (see the System
// facade's CompactFilter). Removing an unknown ID is a no-op and
// reported as false.
func (f *Filter) RemoveView(id int) bool {
	if _, ok := f.numPaths[id]; !ok {
		return false
	}
	delete(f.numPaths, id)
	for i, v := range f.viewIDs {
		if v == id {
			f.viewIDs = append(f.viewIDs[:i], f.viewIDs[i+1:]...)
			break
		}
	}
	for _, st := range f.states {
		if len(st.accepts) == 0 {
			continue
		}
		kept := st.accepts[:0]
		for _, e := range st.accepts {
			if e.View != id {
				kept = append(kept, e)
			}
		}
		st.accepts = kept
	}
	return true
}
