package vfilter_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/pattern"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/xpath"
)

// TestAttrPruningBasics: views demanding attributes the query lacks are
// pruned; views demanding a subset survive.
func TestAttrPruningBasics(t *testing.T) {
	f := vfilter.New()
	f.EnableAttributePruning()
	f.AddView(1, xpath.MustParse("//item[@id]/name"))
	f.AddView(2, xpath.MustParse("//item/name"))
	f.AddView(3, xpath.MustParse("//item[@id][@featured]/name"))

	res := f.Filtering(xpath.MustParse("//item[@id]/name"))
	got := map[int]bool{}
	for _, id := range res.Candidates {
		got[id] = true
	}
	// View 3 demands @featured, which the query cannot supply.
	if !got[1] || !got[2] || got[3] {
		t.Fatalf("candidates = %v, want {1,2}", res.Candidates)
	}

	// Without attribute pruning all three survive (structural only).
	plain := vfilter.New()
	plain.AddView(1, xpath.MustParse("//item[@id]/name"))
	plain.AddView(2, xpath.MustParse("//item/name"))
	plain.AddView(3, xpath.MustParse("//item[@id][@featured]/name"))
	res2 := plain.Filtering(xpath.MustParse("//item[@id]/name"))
	if len(res2.Candidates) != 3 {
		t.Fatalf("structural filter candidates = %v, want all 3", res2.Candidates)
	}
}

// TestAttrPruningNoFalseNegatives: pruning must never drop a view with a
// homomorphism to the query.
func TestAttrPruningNoFalseNegatives(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	labels := []string{"a", "b", "c"}
	attrs := []string{"x", "y", "z"}
	for trial := 0; trial < 50; trial++ {
		f := vfilter.New()
		f.EnableAttributePruning()
		var pats []*pattern.Pattern
		for id := 0; id < 30; id++ {
			v := randomAttrPattern(r, labels, attrs, 5)
			pats = append(pats, v)
			f.AddView(id, v)
		}
		for qi := 0; qi < 10; qi++ {
			q := randomAttrPattern(r, labels, attrs, 6)
			res := f.Filtering(q)
			cand := make(map[int]bool, len(res.Candidates))
			for _, id := range res.Candidates {
				cand[id] = true
			}
			for id, v := range pats {
				if pattern.Contains(v, q) && !cand[id] {
					t.Fatalf("attr pruning false negative: %s contains %s", v, q)
				}
			}
		}
	}
}

// TestAttrPruningIncreasesPrecision: on an attribute-heavy workload the
// pruned candidate sets are no larger, and strictly smaller somewhere.
func TestAttrPruningIncreasesPrecision(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	labels := []string{"a", "b"}
	attrs := []string{"x", "y", "z"}
	plain := vfilter.New()
	pruned := vfilter.New()
	pruned.EnableAttributePruning()
	for id := 0; id < 60; id++ {
		v := randomAttrPattern(r, labels, attrs, 4)
		plain.AddView(id, v)
		pruned.AddView(id, v)
	}
	strictly := false
	for qi := 0; qi < 40; qi++ {
		q := randomAttrPattern(r, labels, attrs, 5)
		a := plain.Filtering(q)
		b := pruned.Filtering(q)
		if len(b.Candidates) > len(a.Candidates) {
			t.Fatalf("pruning increased candidates on %s", q)
		}
		if len(b.Candidates) < len(a.Candidates) {
			strictly = true
		}
	}
	if !strictly {
		t.Fatal("pruning never removed a candidate; test workload too weak")
	}
}

func TestEnableAfterAddPanics(t *testing.T) {
	f := vfilter.New()
	f.AddView(0, xpath.MustParse("//a"))
	defer func() {
		if recover() == nil {
			t.Fatal("EnableAttributePruning after AddView must panic")
		}
	}()
	f.EnableAttributePruning()
}

func randomAttrPattern(r *rand.Rand, labels, attrs []string, maxNodes int) *pattern.Pattern {
	root := pattern.NewNode(labels[r.Intn(len(labels))], pattern.Descendant)
	nodes := []*pattern.Node{root}
	n := 1 + r.Intn(maxNodes)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		c := parent.AddChild(labels[r.Intn(len(labels))], pattern.Axis(r.Intn(2)))
		nodes = append(nodes, c)
	}
	for _, node := range nodes {
		if r.Intn(3) == 0 {
			node.Attrs = append(node.Attrs, pattern.AttrPred{Name: attrs[r.Intn(len(attrs))], Op: pattern.AttrExists})
		}
	}
	return &pattern.Pattern{Root: root, Ret: nodes[r.Intn(len(nodes))]}
}
