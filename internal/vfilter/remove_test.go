package vfilter_test

import (
	"testing"

	"xpathviews/internal/paperdata"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/xpath"
)

func TestRemoveView(t *testing.T) {
	f := vfilter.New()
	for i, src := range paperdata.TableIViews() {
		f.AddView(i+1, xpath.MustParse(src))
	}
	q := xpath.MustParse(paperdata.QueryE)
	before := f.Filtering(q)
	if len(before.Candidates) != 2 {
		t.Fatalf("candidates before = %v", before.Candidates)
	}

	if !f.RemoveView(4) {
		t.Fatal("RemoveView(4) = false")
	}
	if f.RemoveView(4) {
		t.Fatal("double remove must be false")
	}
	if f.NumViews() != 3 {
		t.Fatalf("NumViews = %d, want 3", f.NumViews())
	}
	after := f.Filtering(q)
	if len(after.Candidates) != 1 || after.Candidates[0] != 1 {
		t.Fatalf("candidates after removing V4 = %v, want [1]", after.Candidates)
	}
	// The removed view must also vanish from the sorted lists.
	for i, list := range after.Lists {
		for _, le := range list {
			if le.View == 4 {
				t.Fatalf("removed view still in LIST(%s)", after.QueryPaths[i])
			}
		}
	}
	// Re-adding under a fresh ID restores filtering.
	f.AddView(9, xpath.MustParse(paperdata.TableIViews()[3]))
	again := f.Filtering(q)
	if len(again.Candidates) != 2 {
		t.Fatalf("candidates after re-add = %v", again.Candidates)
	}
}

func TestRemoveUnknownView(t *testing.T) {
	f := vfilter.New()
	if f.RemoveView(42) {
		t.Fatal("removing from an empty filter must be false")
	}
}
