package vfilter

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"xpathviews/internal/storage"
)

// This file serializes the automaton so it can live in the key-value
// store, mirroring the paper's use of Berkeley DB to hold VFILTER, and so
// its stored size can be measured (Figure 11).

const marshalVersion = 2

// MarshalBinary encodes the full automaton: states, arcs, accept entries
// and per-view path counts.
func (f *Filter) MarshalBinary() ([]byte, error) {
	var b bytes.Buffer
	w := func(v any) {
		switch x := v.(type) {
		case uint32:
			var tmp [4]byte
			binary.LittleEndian.PutUint32(tmp[:], x)
			b.Write(tmp[:])
		case string:
			var tmp [4]byte
			binary.LittleEndian.PutUint32(tmp[:], uint32(len(x)))
			b.Write(tmp[:])
			b.WriteString(x)
		default:
			panic("vfilter: marshal: unsupported type")
		}
	}
	w(uint32(marshalVersion))
	w(uint32(len(f.states)))
	w(uint32(f.start))
	for _, st := range f.states {
		labels := make([]string, 0, len(st.byLabel))
		for l := range st.byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		w(uint32(len(labels)))
		for _, l := range labels {
			w(l)
			arcs := st.byLabel[l]
			w(uint32(len(arcs)))
			for _, a := range arcs {
				w(uint32(a))
			}
		}
		w(uint32(len(st.anyNode)))
		for _, a := range st.anyNode {
			w(uint32(a))
		}
		w(uint32(len(st.anySym)))
		for _, a := range st.anySym {
			w(uint32(a))
		}
		w(uint32(len(st.accepts)))
		for _, e := range st.accepts {
			w(uint32(e.View))
			w(uint32(e.PathIdx))
			w(uint32(e.PathLen))
			w(uint32(len(e.Attrs)))
			for _, a := range e.Attrs {
				w(a)
			}
		}
	}
	w(uint32(len(f.viewIDs)))
	for _, id := range f.viewIDs {
		w(uint32(id))
		w(uint32(f.numPaths[id]))
	}
	var gb uint32
	if f.gapBinding {
		gb = 1
	}
	if f.attrPruning {
		gb |= 2
	}
	w(gb)
	w(uint32(f.transitions))
	return b.Bytes(), nil
}

// UnmarshalBinary decodes an automaton produced by MarshalBinary.
func UnmarshalBinary(data []byte) (*Filter, error) {
	r := bytes.NewReader(data)
	rd32 := func() (uint32, error) {
		var tmp [4]byte
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(tmp[:]), nil
	}
	rdStr := func() (string, error) {
		n, err := rd32()
		if err != nil {
			return "", err
		}
		if int(n) > r.Len() {
			return "", fmt.Errorf("vfilter: unmarshal: string length %d exceeds input", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	fail := func(err error) (*Filter, error) {
		return nil, fmt.Errorf("vfilter: unmarshal: %w", err)
	}
	ver, err := rd32()
	if err != nil {
		return fail(err)
	}
	if ver != marshalVersion {
		return nil, fmt.Errorf("vfilter: unmarshal: unsupported version %d", ver)
	}
	nStates, err := rd32()
	if err != nil {
		return fail(err)
	}
	start, err := rd32()
	if err != nil {
		return fail(err)
	}
	f := &Filter{numPaths: make(map[int]int), start: int32(start)}
	f.states = make([]*state, nStates)
	for i := range f.states {
		st := &state{}
		f.states[i] = st
		nl, err := rd32()
		if err != nil {
			return fail(err)
		}
		if nl > 0 {
			st.byLabel = make(map[string][]int32, nl)
		}
		for j := uint32(0); j < nl; j++ {
			l, err := rdStr()
			if err != nil {
				return fail(err)
			}
			na, err := rd32()
			if err != nil {
				return fail(err)
			}
			arcs := make([]int32, na)
			for k := range arcs {
				a, err := rd32()
				if err != nil {
					return fail(err)
				}
				arcs[k] = int32(a)
			}
			st.byLabel[l] = arcs
		}
		for _, dst := range []*[]int32{&st.anyNode, &st.anySym} {
			n, err := rd32()
			if err != nil {
				return fail(err)
			}
			*dst = make([]int32, n)
			for k := range *dst {
				a, err := rd32()
				if err != nil {
					return fail(err)
				}
				(*dst)[k] = int32(a)
			}
		}
		na, err := rd32()
		if err != nil {
			return fail(err)
		}
		st.accepts = make([]Entry, na)
		for k := range st.accepts {
			v, err := rd32()
			if err != nil {
				return fail(err)
			}
			pi, err := rd32()
			if err != nil {
				return fail(err)
			}
			pl, err := rd32()
			if err != nil {
				return fail(err)
			}
			na2, err := rd32()
			if err != nil {
				return fail(err)
			}
			var eattrs []string
			for x := uint32(0); x < na2; x++ {
				a, err := rdStr()
				if err != nil {
					return fail(err)
				}
				eattrs = append(eattrs, a)
			}
			st.accepts[k] = Entry{View: int(v), PathIdx: int(pi), PathLen: int(pl), Attrs: eattrs}
		}
	}
	nv, err := rd32()
	if err != nil {
		return fail(err)
	}
	for i := uint32(0); i < nv; i++ {
		id, err := rd32()
		if err != nil {
			return fail(err)
		}
		np, err := rd32()
		if err != nil {
			return fail(err)
		}
		f.viewIDs = append(f.viewIDs, int(id))
		f.numPaths[int(id)] = int(np)
	}
	gb, err := rd32()
	if err != nil {
		return fail(err)
	}
	f.gapBinding = gb&1 != 0
	f.attrPruning = gb&2 != 0
	tr, err := rd32()
	if err != nil {
		return fail(err)
	}
	f.transitions = int(tr)
	return f, nil
}

// filterKey is the store key VFILTER lives under.
var filterKey = []byte("vfilter/automaton")

// PersistTo writes the automaton into the store.
func (f *Filter) PersistTo(s *storage.Store) error {
	data, err := f.MarshalBinary()
	if err != nil {
		return err
	}
	return s.Put(filterKey, data)
}

// LoadFrom reads an automaton previously persisted with PersistTo.
func LoadFrom(s *storage.Store) (*Filter, error) {
	data, ok := s.Get(filterKey)
	if !ok {
		return nil, fmt.Errorf("vfilter: no automaton in store")
	}
	return UnmarshalBinary(data)
}

// StoredSize reports the automaton's serialized size in bytes — the S_i
// of Figure 11.
func (f *Filter) StoredSize() int {
	data, err := f.MarshalBinary()
	if err != nil {
		return 0
	}
	return len(data)
}
