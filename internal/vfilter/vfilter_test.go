package vfilter_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/xpath"
)

// buildTableI constructs the VFilter over the reconstructed Table I view
// set (view IDs 1..4 to mirror the paper's naming).
func buildTableI(t *testing.T) *vfilter.Filter {
	t.Helper()
	f := vfilter.New()
	for i, src := range paperdata.TableIViews() {
		f.AddView(i+1, xpath.MustParse(src))
	}
	return f
}

// TestTableI_II checks the decomposition behind Table II: the distinct
// normalized path patterns of V1..V4.
func TestTableI_II(t *testing.T) {
	want := map[string][]string{
		"//s[t]/p":        {"//s/t", "//s/p"},
		"//s[a][.//i]//p": {"//s/a", "//s//i", "//s//p"},
		"//s[*//t]//p":    {"//s//*/t", "//s//p"}, // s/*//t normalizes to s//*/t (Example 3.3)
		"//s[p]/f":        {"//s/p", "//s/f"},
	}
	for src, paths := range want {
		got := pattern.DecomposeNormalized(xpath.MustParse(src))
		if len(got) != len(paths) {
			t.Errorf("D(%s) = %v, want %v", src, got, paths)
			continue
		}
		for i := range got {
			if got[i].String() != paths[i] {
				t.Errorf("D(%s)[%d] = %s, want %s", src, i, got[i], paths[i])
			}
		}
	}
}

// TestExample34 replays Example 3.4: filtering Q_e = //s[f//i][t]/p over
// Table I must keep exactly {V1, V4} and produce the paper's sorted
// lists: {(V4,2)} for s/f//i, {(V1,2)} for s/t, {(V1,2),(V4,2)} for s/p.
func TestExample34(t *testing.T) {
	f := buildTableI(t)
	res := f.Filtering(xpath.MustParse(paperdata.QueryE))

	if len(res.Candidates) != 2 || res.Candidates[0] != 1 || res.Candidates[1] != 4 {
		t.Fatalf("candidates = %v, want [1 4]", res.Candidates)
	}
	if len(res.QueryPaths) != 3 {
		t.Fatalf("query paths = %v", res.QueryPaths)
	}
	wantPaths := []string{"//s/f//i", "//s/t", "//s/p"}
	wantLists := [][]vfilter.ListEntry{
		{{View: 4, Len: 2}},
		{{View: 1, Len: 2}},
		{{View: 1, Len: 2}, {View: 4, Len: 2}},
	}
	for i, wp := range wantPaths {
		if res.QueryPaths[i].String() != wp {
			t.Errorf("query path %d = %s, want %s", i, res.QueryPaths[i], wp)
		}
		if len(res.Lists[i]) != len(wantLists[i]) {
			t.Errorf("LIST(%s) = %v, want %v", wp, res.Lists[i], wantLists[i])
			continue
		}
		for j := range wantLists[i] {
			if res.Lists[i][j] != wantLists[i][j] {
				t.Errorf("LIST(%s)[%d] = %v, want %v", wp, j, res.Lists[i][j], wantLists[i][j])
			}
		}
	}
}

// TestExample32_33 replays Examples 3.2/3.3 on the paper-exact automaton
// (no gap binding): the un-normalized s/*//t is rejected, its
// normalization s//*/t is accepted at V3's path pattern. This is the
// false-negative demonstration that motivates §III-C.
func TestExample32_33(t *testing.T) {
	f := vfilter.NewExact()
	for i, src := range paperdata.TableIViews() {
		f.AddView(i+1, xpath.MustParse(src))
	}
	raw, _ := pattern.PathOf(xpath.MustParse("//s/*//t"))
	if got := f.Read(pattern.Str(raw)); len(got) != 0 {
		t.Fatalf("un-normalized path accepted: %v (false negatives analysis relies on rejection)", got)
	}
	norm := pattern.Normalize(raw)
	got := f.Read(pattern.Str(norm))
	if len(got) != 1 || got[0].View != 3 {
		t.Fatalf("normalized path acceptance = %v, want V3", got)
	}
}

// TestNoFalseNegatives is the filter's headline guarantee: any view with
// a homomorphism to the query survives filtering.
func TestNoFalseNegatives(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	labels := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 60; trial++ {
		f := vfilter.New()
		var pats []*pattern.Pattern
		for id := 0; id < 40; id++ {
			v := randomPattern(r, labels, 5)
			pats = append(pats, v)
			f.AddView(id, v)
		}
		for qi := 0; qi < 10; qi++ {
			q := randomPattern(r, labels, 6)
			res := f.Filtering(q)
			candidate := make(map[int]bool, len(res.Candidates))
			for _, id := range res.Candidates {
				candidate[id] = true
			}
			for id, v := range pats {
				if pattern.Contains(v, q) && !candidate[id] {
					t.Fatalf("false negative: view %s contains query %s but was filtered", v, q)
				}
			}
		}
	}
}

// TestFilterPrecision sanity-checks that filtering is not vacuous: on the
// Table I workload it removes at least one non-containing view.
func TestFilterPrecision(t *testing.T) {
	f := buildTableI(t)
	res := f.Filtering(xpath.MustParse(paperdata.QueryE))
	if len(res.Candidates) == f.NumViews() {
		t.Fatal("filter kept every view; no pruning happened")
	}
}

// TestPrefixSharing: inserting many views with shared prefixes must
// create far fewer states than inserting them into isolated automata
// (the Figure 11 effect).
func TestPrefixSharing(t *testing.T) {
	shared := vfilter.New()
	total := 0
	queries := []string{
		"//a/b/c", "//a/b/d", "//a/b//e", "//a/b/c/d", "//a/b/c//e",
	}
	for i, s := range queries {
		shared.AddView(i, xpath.MustParse(s))
		solo := vfilter.New()
		solo.AddView(0, xpath.MustParse(s))
		total += solo.NumStates() - 1 // don't double-count the start state
	}
	if shared.NumStates() >= total+1 {
		t.Fatalf("no prefix sharing: shared=%d vs sum=%d", shared.NumStates(), total+1)
	}
}

// TestDuplicateViewPanics documents the ID contract.
func TestDuplicateViewPanics(t *testing.T) {
	f := vfilter.New()
	f.AddView(1, xpath.MustParse("//a"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddView did not panic")
		}
	}()
	f.AddView(1, xpath.MustParse("//b"))
}

// TestWildcardSemantics pins the alphabet rules: a view wildcard accepts
// any label; a query wildcard is only accepted by view wildcards.
func TestWildcardSemantics(t *testing.T) {
	f := vfilter.New()
	f.AddView(1, xpath.MustParse("//a/*")) // paths: a/*
	f.AddView(2, xpath.MustParse("//a/b"))

	read := func(src string) map[int]bool {
		p, _ := pattern.PathOf(xpath.MustParse(src))
		out := map[int]bool{}
		for _, e := range f.Read(pattern.Str(pattern.Normalize(p))) {
			out[e.View] = true
		}
		return out
	}
	if got := read("//a/b"); !got[1] || !got[2] {
		t.Fatalf("//a/b acceptance = %v, want both", got)
	}
	if got := read("//a/*"); !got[1] || got[2] {
		t.Fatalf("//a/* acceptance = %v, want view 1 only", got)
	}
	// //a//b ⊑ //a/* holds (a has some child whenever it has a
	// descendant); gap binding catches this homomorphism-free
	// containment. //a//b ⊄ //a/b.
	if got := read("//a//b"); !got[1] || got[2] {
		t.Fatalf("//a//b acceptance = %v, want view 1 only", got)
	}
}

func randomPattern(r *rand.Rand, labels []string, maxNodes int) *pattern.Pattern {
	root := pattern.NewNode(labels[r.Intn(len(labels))], pattern.Descendant)
	nodes := []*pattern.Node{root}
	n := 1 + r.Intn(maxNodes)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		lb := labels[r.Intn(len(labels))]
		if r.Intn(6) == 0 {
			lb = pattern.Wildcard
		}
		nodes = append(nodes, parent.AddChild(lb, pattern.Axis(r.Intn(2))))
	}
	return &pattern.Pattern{Root: root, Ret: nodes[r.Intn(len(nodes))]}
}
