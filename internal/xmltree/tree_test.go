package xmltree_test

import (
	"strings"
	"testing"
	"testing/quick"

	"xpathviews/internal/xmltree"
)

func TestBuildAndWalk(t *testing.T) {
	tr := xmltree.New("a")
	b := tr.AddChild(tr.Root(), "b")
	tr.AddChild(b, "c")
	tr.AddChild(tr.Root(), "d")
	tr.Renumber()

	if tr.Size() != 4 {
		t.Fatalf("size = %d, want 4", tr.Size())
	}
	var order []string
	tr.Walk(func(n *xmltree.Node) bool {
		order = append(order, n.Label)
		return true
	})
	if strings.Join(order, "") != "abcd" {
		t.Fatalf("preorder = %v", order)
	}
	if got := tr.Root().String(); got != "a(b(c),d)" {
		t.Fatalf("String = %q", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := xmltree.New("a")
	tr.AddChild(tr.Root(), "b")
	tr.AddChild(tr.Root(), "c")
	tr.Renumber()
	count := 0
	tr.Walk(func(n *xmltree.Node) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("visited %d nodes, want 2", count)
	}
}

func TestAncestryHelpers(t *testing.T) {
	tr := xmltree.New("a")
	b := tr.AddChild(tr.Root(), "b")
	c := tr.AddChild(b, "c")
	tr.Renumber()
	if !tr.Root().IsAncestorOf(c) || !b.IsAncestorOf(c) || c.IsAncestorOf(b) {
		t.Fatal("ancestry relations wrong")
	}
	if c.Depth() != 2 || tr.Root().Depth() != 0 {
		t.Fatal("depth wrong")
	}
	if got := strings.Join(c.LabelPath(), "/"); got != "a/b/c" {
		t.Fatalf("LabelPath = %s", got)
	}
	if b.SubtreeSize() != 2 {
		t.Fatalf("SubtreeSize = %d", b.SubtreeSize())
	}
}

func TestCopySubtree(t *testing.T) {
	tr := xmltree.New("a")
	b := tr.AddChild(tr.Root(), "b")
	b.SetAttr("k", "v")
	b.Text = "hello"
	tr.AddChild(b, "c")
	tr.Renumber()

	cp := b.CopySubtree()
	if cp.Parent != nil {
		t.Fatal("copy root must be detached")
	}
	if v, _ := cp.Attr("k"); v != "v" || cp.Text != "hello" || len(cp.Children) != 1 {
		t.Fatal("copy lost data")
	}
	cp.Children[0].Label = "changed"
	if b.Children[0].Label != "c" {
		t.Fatal("copy aliases the original")
	}
}

func TestParseSerializeRoundTrip(t *testing.T) {
	src := `<site><people><person id="p1"><name>Ann</name></person></people><regions/></site>`
	tr, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 5 {
		t.Fatalf("size = %d, want 5", tr.Size())
	}
	out, err := xmltree.MarshalString(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	back, err := xmltree.ParseString(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if back.Size() != tr.Size() {
		t.Fatalf("round trip changed size: %d vs %d", back.Size(), tr.Size())
	}
	person := back.Nodes()[2]
	if person.Label != "person" {
		t.Fatalf("node order changed: %v", person.Label)
	}
	if v, ok := person.Attr("id"); !ok || v != "p1" {
		t.Fatal("attribute lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "<a>", "<a></b>", "</a>", "<a></a><b></b>", "text only",
	} {
		if _, err := xmltree.ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestSerializedSizeTracksEncoder(t *testing.T) {
	src := `<a k="v"><b>text</b><c/><c x="1">more</c></a>`
	tr, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	est := xmltree.SerializedSize(tr.Root())
	exact := xmltree.EncodedSize(tr.Root())
	if est <= 0 || exact <= 0 {
		t.Fatal("sizes must be positive")
	}
	ratio := float64(est) / float64(exact)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("estimate %d too far from exact %d", est, exact)
	}
}

func TestAlphabetAndStats(t *testing.T) {
	tr := xmltree.New("a")
	tr.AddChild(tr.Root(), "b")
	tr.AddChild(tr.Root(), "b")
	c := tr.AddChild(tr.Root(), "c")
	tr.AddChild(c, "d")
	tr.Renumber()
	alpha := tr.Alphabet()
	if strings.Join(alpha, "") != "abcd" {
		t.Fatalf("alphabet = %v", alpha)
	}
	st := tr.Stats()
	if st.Nodes != 5 || st.MaxDepth != 2 || st.Labels != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQuickTextRoundTrip(t *testing.T) {
	// Character data with XML-significant characters must survive
	// serialization.
	f := func(text string) bool {
		tr := xmltree.New("a")
		tr.Root().Text = strings.ToValidUTF8(strings.Map(dropControl, text), "")
		tr.Renumber()
		out, err := xmltree.MarshalString(tr.Root())
		if err != nil {
			return false
		}
		back, err := xmltree.ParseString(out)
		if err != nil {
			return false
		}
		return back.Root().Text == strings.TrimSpace(tr.Root().Text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func dropControl(r rune) rune {
	if r < 0x20 && r != '\t' {
		return -1
	}
	return r
}

func TestValidateDetectsBrokenLinks(t *testing.T) {
	tr := xmltree.New("a")
	b := tr.AddChild(tr.Root(), "b")
	b.Parent = nil // corrupt
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate missed a broken parent link")
	}
}
