package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and builds a Tree. Only element
// structure, attributes and character data are kept; comments, processing
// instructions and namespaces prefixes are discarded (labels use the local
// name, matching the paper's single-alphabet model).
func Parse(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			n := &Node{Label: el.Name.Local}
			for _, a := range el.Attr {
				n.SetAttr(a.Name.Local, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple document roots (%q, %q)", root.Label, n.Label)
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				n.Parent = p
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", el.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				if s := strings.TrimSpace(string(el)); s != "" {
					top := stack[len(stack)-1]
					top.Text += s
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: %d unterminated element(s)", len(stack))
	}
	t := FromRoot(root)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) (*Tree, error) { return Parse(strings.NewReader(s)) }

// WriteXML serializes the subtree rooted at n as XML to w. Attributes are
// emitted in sorted order for determinism.
func WriteXML(w io.Writer, n *Node) error {
	enc := xml.NewEncoder(w)
	if err := encodeNode(enc, n); err != nil {
		return fmt.Errorf("xmltree: serialize: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return fmt.Errorf("xmltree: serialize: %w", err)
	}
	return nil
}

func encodeNode(enc *xml.Encoder, n *Node) error {
	start := xml.StartElement{Name: xml.Name{Local: n.Label}}
	if len(n.Attributes) > 0 {
		names := make([]string, 0, len(n.Attributes))
		for k := range n.Attributes {
			names = append(names, k)
		}
		// insertion sort: attribute maps are tiny
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
		for _, k := range names {
			start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: k}, Value: n.Attributes[k]})
		}
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if n.Text != "" {
		if err := enc.EncodeToken(xml.CharData(n.Text)); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := encodeNode(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(xml.EndElement{Name: start.Name})
}

// MarshalString renders the subtree rooted at n as an XML string.
func MarshalString(n *Node) (string, error) {
	var b strings.Builder
	if err := WriteXML(&b, n); err != nil {
		return "", err
	}
	return b.String(), nil
}

// SerializedSize returns the number of bytes the subtree rooted at n
// occupies when serialized as XML, computed analytically (tags,
// attributes, text) without running the encoder. It is used to enforce
// the paper's per-view materialized-fragment size limit (128 KB in §VI);
// EncodedSize is the exact encoder-backed variant.
func SerializedSize(n *Node) int {
	// <label a="v">text</label> → 2*len(label) + 5 + Σ(len(k)+len(v)+4) + len(text)
	size := 2*len(n.Label) + 5 + len(n.Text)
	for k, v := range n.Attributes {
		size += len(k) + len(v) + 4
	}
	for _, c := range n.Children {
		size += SerializedSize(c)
	}
	return size
}

// EncodedSize returns the exact size WriteXML would produce.
func EncodedSize(n *Node) int {
	var c countingWriter
	if err := WriteXML(&c, n); err != nil {
		return 0
	}
	return int(c)
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
