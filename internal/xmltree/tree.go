// Package xmltree provides the XML data model used throughout the library:
// an unordered, labelled tree in the sense of the paper's Section II.
//
// Nodes carry an element label over a finite alphabet, an optional set of
// attributes, and optional text content. Sibling order is preserved for
// serialization and for assigning extended Dewey codes deterministically,
// but none of the algorithms depend on it: queries treat the tree as
// unordered.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a single element node in an XML tree.
type Node struct {
	// Label is the element name, drawn from the document's finite alphabet.
	Label string
	// Attributes holds attribute name → value pairs; nil when absent.
	Attributes map[string]string
	// Text is the concatenated character data directly under this element.
	Text string

	// Parent is nil for the root.
	Parent   *Node
	Children []*Node

	// ord is the node's position in document (pre) order, assigned by
	// Tree.renumber. It doubles as a cheap node identity.
	ord int
}

// Tree is a rooted XML tree.
type Tree struct {
	root  *Node
	size  int
	byOrd []*Node // document-order index; byOrd[i].ord == i
}

// New creates a tree with a fresh root carrying the given label.
func New(rootLabel string) *Tree {
	t := &Tree{root: &Node{Label: rootLabel}}
	t.renumber()
	return t
}

// FromRoot adopts an existing node structure as a tree. The caller must not
// modify the structure except through Tree methods afterwards.
func FromRoot(root *Node) *Tree {
	if root == nil {
		panic("xmltree: FromRoot with nil root")
	}
	t := &Tree{root: root}
	t.renumber()
	return t
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Size returns the number of element nodes in the tree.
func (t *Tree) Size() int { return t.size }

// NodeAt returns the node with the given document-order ordinal,
// or nil when out of range.
func (t *Tree) NodeAt(ord int) *Node {
	if ord < 0 || ord >= len(t.byOrd) {
		return nil
	}
	return t.byOrd[ord]
}

// AddChild appends a new child with the given label under parent and
// returns it. The tree is renumbered lazily: callers that add many nodes
// should finish with Renumber; all read-side methods renumber on demand.
func (t *Tree) AddChild(parent *Node, label string) *Node {
	if parent == nil {
		panic("xmltree: AddChild with nil parent")
	}
	n := &Node{Label: label, Parent: parent}
	parent.Children = append(parent.Children, n)
	t.byOrd = nil // invalidate
	return n
}

// Graft adopts sub — a parentless node structure, e.g. a parsed
// document's root — as a new child of parent and renumbers eagerly, so
// concurrent readers never race on a lazy renumber afterwards.
func (t *Tree) Graft(parent, sub *Node) {
	if parent == nil || sub == nil {
		panic("xmltree: Graft with nil node")
	}
	if sub.Parent != nil {
		panic("xmltree: Graft of an attached subtree")
	}
	sub.Parent = parent
	parent.Children = append(parent.Children, sub)
	t.renumber()
}

// GraftAt is Graft at an explicit sibling position: sub becomes
// parent.Children[i], shifting later siblings right. Callers that keep
// an external sibling order (the Dewey code order of the maintenance
// layer) use it to splice a node where that order dictates.
func (t *Tree) GraftAt(parent, sub *Node, i int) {
	if parent == nil || sub == nil {
		panic("xmltree: GraftAt with nil node")
	}
	if sub.Parent != nil {
		panic("xmltree: GraftAt of an attached subtree")
	}
	if i < 0 || i > len(parent.Children) {
		panic("xmltree: GraftAt position out of range")
	}
	sub.Parent = parent
	parent.Children = append(parent.Children, nil)
	copy(parent.Children[i+1:], parent.Children[i:])
	parent.Children[i] = sub
	t.renumber()
}

// Detach removes the subtree rooted at n from the tree and renumbers
// eagerly. The detached structure keeps its internal links but loses its
// Parent. Detaching the root is an error.
func (t *Tree) Detach(n *Node) error {
	if n == t.root {
		return fmt.Errorf("xmltree: cannot detach the root")
	}
	p := n.Parent
	if p == nil {
		return fmt.Errorf("xmltree: node %q is not attached", n.Label)
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			n.Parent = nil
			t.renumber()
			return nil
		}
	}
	return fmt.Errorf("xmltree: node %q missing from its parent's children", n.Label)
}

// Renumber recomputes document order after structural edits.
func (t *Tree) Renumber() { t.renumber() }

func (t *Tree) renumber() {
	t.byOrd = t.byOrd[:0]
	var walk func(n *Node)
	walk = func(n *Node) {
		n.ord = len(t.byOrd)
		t.byOrd = append(t.byOrd, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
	t.size = len(t.byOrd)
}

func (t *Tree) ensureNumbered() {
	if t.byOrd == nil || len(t.byOrd) != t.size || (len(t.byOrd) > 0 && t.byOrd[0] != t.root) {
		t.renumber()
	}
}

// Ord returns n's document-order ordinal within t.
func (t *Tree) Ord(n *Node) int {
	t.ensureNumbered()
	return n.ord
}

// Walk visits every node in document order. Returning false from fn stops
// the walk early.
func (t *Tree) Walk(fn func(n *Node) bool) {
	t.ensureNumbered()
	for _, n := range t.byOrd {
		if !fn(n) {
			return
		}
	}
}

// Nodes returns all nodes in document order. The slice is shared with the
// tree and must not be mutated.
func (t *Tree) Nodes() []*Node {
	t.ensureNumbered()
	return t.byOrd
}

// Depth returns the number of edges from the root to n (root depth is 0).
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// IsAncestorOf reports whether n is a proper ancestor of m.
func (n *Node) IsAncestorOf(m *Node) bool {
	for p := m.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// LabelPath returns the sequence of labels from the root down to n,
// inclusive.
func (n *Node) LabelPath() []string {
	depth := n.Depth()
	path := make([]string, depth+1)
	for m := n; m != nil; m = m.Parent {
		path[depth] = m.Label
		depth--
	}
	return path
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	v, ok := n.Attributes[name]
	return v, ok
}

// SetAttr sets an attribute on n, allocating the map on first use.
func (n *Node) SetAttr(name, value string) {
	if n.Attributes == nil {
		n.Attributes = make(map[string]string, 2)
	}
	n.Attributes[name] = value
}

// SubtreeSize returns the number of nodes in the subtree rooted at n,
// including n.
func (n *Node) SubtreeSize() int {
	s := 1
	for _, c := range n.Children {
		s += c.SubtreeSize()
	}
	return s
}

// CopySubtree returns a deep copy of the subtree rooted at n. The copy's
// root has a nil Parent.
func (n *Node) CopySubtree() *Node {
	cp := &Node{Label: n.Label, Text: n.Text}
	if n.Attributes != nil {
		cp.Attributes = make(map[string]string, len(n.Attributes))
		for k, v := range n.Attributes {
			cp.Attributes[k] = v
		}
	}
	cp.Children = make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		cc := c.CopySubtree()
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}

// Alphabet returns the sorted set of distinct element labels in the tree.
func (t *Tree) Alphabet() []string {
	seen := make(map[string]struct{})
	t.Walk(func(n *Node) bool {
		seen[n.Label] = struct{}{}
		return true
	})
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Stats summarises a tree for reporting.
type Stats struct {
	Nodes    int
	MaxDepth int
	Labels   int
}

// Stats computes summary statistics in one pass.
func (t *Tree) Stats() Stats {
	s := Stats{Nodes: t.Size(), Labels: len(t.Alphabet())}
	t.Walk(func(n *Node) bool {
		if d := n.Depth(); d > s.MaxDepth {
			s.MaxDepth = d
		}
		return true
	})
	return s
}

// String renders a compact single-line form of the subtree rooted at n,
// useful in tests and error messages: label(child, child, ...).
func (n *Node) String() string {
	var b strings.Builder
	n.writeCompact(&b)
	return b.String()
}

func (n *Node) writeCompact(b *strings.Builder) {
	b.WriteString(n.Label)
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.writeCompact(b)
	}
	b.WriteByte(')')
}

// Validate checks structural invariants: parent/child links are mutual and
// the tree is acyclic. It is used by tests and by the XML parser.
func (t *Tree) Validate() error {
	seen := make(map[*Node]bool)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if seen[n] {
			return fmt.Errorf("xmltree: node %q reachable twice (cycle or DAG)", n.Label)
		}
		seen[n] = true
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("xmltree: child %q of %q has wrong parent link", c.Label, n.Label)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if t.root.Parent != nil {
		return fmt.Errorf("xmltree: root %q has non-nil parent", t.root.Label)
	}
	return walk(t.root)
}
