// Package budget provides cooperative cancellation and resource budgets
// for the answering pipeline. A *B is threaded through the traversal and
// enumeration loops of engine, vfilter, selection and rewrite; each loop
// reports progress via Step (cheap work units) or Hom (homomorphism
// computations, the cost driver of §IV) and aborts with a typed error
// when the caller's context is done or a budget is exhausted.
//
// A nil *B is valid everywhere and means "unlimited, uncancellable" —
// legacy entry points pass nil so the hot paths stay check-free.
//
// Charging is atomic: one budget may be shared by the parallel rewrite's
// worker goroutines (per-view refinement, per-fragment extraction) and
// the configured caps stay exact — every unit is debited exactly once,
// and the first debit that crosses zero reports exhaustion.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrBudget reports that a configured resource budget ran out before the
// call completed. Use errors.Is: both step and homomorphism exhaustion
// match it.
var ErrBudget = errors.New("budget exceeded")

// ErrSteps and ErrHoms identify which budget ran out; both wrap
// ErrBudget.
var (
	ErrSteps = fmt.Errorf("step %w", ErrBudget)
	ErrHoms  = fmt.Errorf("homomorphism %w", ErrBudget)
)

// checkInterval is how many steps pass between context polls. Steps are
// cheap (a pointer chase or two), so polling every 256 keeps expired
// contexts returning within microseconds without measurable overhead.
const checkInterval = 256

// B tracks one call's remaining budgets. It is safe for concurrent use:
// the rewrite stage shares one B across its worker pool.
type B struct {
	ctx        context.Context
	stepBound  bool
	homBound   bool
	track      bool
	steps      atomic.Int64
	homs       atomic.Int64
	sinceCheck atomic.Int64
	usedSteps  atomic.Int64
	usedHoms   atomic.Int64
}

// New builds a budget over ctx. maxSteps caps cheap work units, maxHoms
// caps homomorphism computations; zero or negative means unlimited. A nil
// ctx means context.Background().
func New(ctx context.Context, maxSteps, maxHoms int64) *B {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &B{ctx: ctx}
	if maxSteps > 0 {
		b.stepBound = true
		b.steps.Store(maxSteps)
	}
	if maxHoms > 0 {
		b.homBound = true
		b.homs.Store(maxHoms)
	}
	return b
}

// EnableTracking turns on spend accounting: Step and Hom additionally
// accumulate how much was consumed, readable via Spent. Off by default
// so the untraced hot path pays only a predictable-false branch; must
// be called before the budget is shared with worker goroutines.
func (b *B) EnableTracking() {
	if b != nil {
		b.track = true
	}
}

// Spent returns the work consumed so far. Zero until EnableTracking is
// called; safe to read while workers are still charging.
func (b *B) Spent() (steps, homs int64) {
	if b == nil {
		return 0, 0
	}
	return b.usedSteps.Load(), b.usedHoms.Load()
}

// Step consumes n work units, returning ErrSteps when the step budget is
// exhausted and the context's error when it is done. It polls the context
// only every checkInterval units.
func (b *B) Step(n int) error {
	if b == nil {
		return nil
	}
	if b.track {
		b.usedSteps.Add(int64(n))
	}
	if b.stepBound && b.steps.Add(-int64(n)) < 0 {
		return ErrSteps
	}
	if b.sinceCheck.Add(int64(n)) >= checkInterval {
		b.sinceCheck.Store(0)
		if err := b.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// refund returns n unused, previously charged steps to the budget. Only
// shards call it (on Close), undoing the tail of their last prepaid
// chunk so the configured cap stays exact across a fan-out.
func (b *B) refund(n int64) {
	if b == nil || n <= 0 {
		return
	}
	if b.track {
		b.usedSteps.Add(-n)
	}
	if b.stepBound {
		b.steps.Add(n)
	}
}

// Hom consumes one homomorphism computation. Homomorphisms are chunky
// enough that the context is polled on every call.
func (b *B) Hom() error {
	if b == nil {
		return nil
	}
	if b.track {
		b.usedHoms.Add(1)
	}
	if err := b.ctx.Err(); err != nil {
		return err
	}
	if b.homBound && b.homs.Add(-1) < 0 {
		return ErrHoms
	}
	return nil
}

// CtxErr polls only the caller's context, never the budgets. The serving
// pipeline calls it at stage seams (parse→filter→select→refine→join→
// extract→collect) so a disconnected caller cancels the call promptly
// even when no work unit is charged between stages. Budget exhaustion is
// deliberately not reported here: a call that consumed exactly its step
// budget inside a stage must still complete.
func (b *B) CtxErr() error {
	if b == nil {
		return nil
	}
	return b.ctx.Err()
}

// Err polls the context and the budgets without consuming anything.
func (b *B) Err() error {
	if b == nil {
		return nil
	}
	if err := b.ctx.Err(); err != nil {
		return err
	}
	if b.stepBound && b.steps.Load() <= 0 {
		return ErrSteps
	}
	if b.homBound && b.homs.Load() <= 0 {
		return ErrHoms
	}
	return nil
}
