package budget

// Stepper is the charging surface the work loops actually need: both the
// shared *B and a per-worker *Shard satisfy it, so a kernel can be
// written once and run either under the global budget (sequential path)
// or under a worker-local shard (parallel path). A nil *B or *Shard is a
// valid, never-aborting Stepper.
type Stepper interface {
	Step(n int) error
}

// shardChunk is the default prepay granularity of a Shard: small enough
// that a shard never strands more than a few dozen steps from sibling
// workers, large enough that the shared atomic is touched ~two orders of
// magnitude less often than a per-step charge would.
const shardChunk = 64

// Shard is a worker-local slice of a shared budget. Instead of debiting
// the shared atomic counters on every Step — which serializes a worker
// pool on one cache line — a shard prepays chunkSize steps from the
// parent at a time and serves Step calls from its local balance. Close
// refunds the unused remainder, so the parent's accounting is exact once
// all shards of a fan-out have closed; mid-flight the parent may appear
// up to workers×chunk steps poorer than true consumption, which only
// ever makes exhaustion fire marginally early, never late.
//
// A Shard belongs to one goroutine and is not safe for concurrent use;
// the parent *B it draws from is.
type Shard struct {
	parent *B
	avail  int64
	chunk  int64
}

// NewShard carves a worker-local shard off parent with the default chunk
// size. A nil parent yields a never-aborting shard.
func NewShard(parent *B) *Shard { return NewShardChunk(parent, shardChunk) }

// NewShardChunk is NewShard with an explicit prepay chunk (tests shrink
// it to force frequent parent traffic). chunk < 1 falls back to the
// default.
func NewShardChunk(parent *B, chunk int64) *Shard {
	if chunk < 1 {
		chunk = shardChunk
	}
	return &Shard{parent: parent, chunk: chunk}
}

// Step consumes n work units from the shard, drawing further chunks from
// the parent as the local balance runs dry. The parent's context is
// polled by the parent's own Step on every chunk draw, so cancellation
// latency is bounded by the chunk size.
func (s *Shard) Step(n int) error {
	if s == nil || s.parent == nil {
		return nil
	}
	for int64(n) > s.avail {
		draw := s.chunk
		if int64(n)-s.avail > draw {
			draw = int64(n) - s.avail
		}
		if err := s.parent.Step(int(draw)); err != nil {
			return err
		}
		s.avail += draw
	}
	s.avail -= int64(n)
	return nil
}

// Close refunds the shard's unused prepaid steps to the parent. Call it
// when the worker's slice of the fan-out is done (success or failure);
// after Close the shard must not be used again.
func (s *Shard) Close() {
	if s == nil || s.parent == nil {
		return
	}
	if s.avail > 0 {
		s.parent.refund(s.avail)
		s.avail = 0
	}
}
