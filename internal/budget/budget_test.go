package budget_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"xpathviews/internal/budget"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *budget.B
	for i := 0; i < 10000; i++ {
		if err := b.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Hom(); err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStepBudget(t *testing.T) {
	b := budget.New(context.Background(), 10, 0)
	for i := 0; i < 10; i++ {
		if err := b.Step(1); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	err := b.Step(1)
	if !errors.Is(err, budget.ErrBudget) || !errors.Is(err, budget.ErrSteps) {
		t.Fatalf("exhausted step budget returned %v", err)
	}
	if err := b.Err(); !errors.Is(err, budget.ErrBudget) {
		t.Fatalf("Err after exhaustion = %v", err)
	}
}

func TestHomBudget(t *testing.T) {
	b := budget.New(context.Background(), 0, 2)
	if err := b.Hom(); err != nil {
		t.Fatal(err)
	}
	if err := b.Hom(); err != nil {
		t.Fatal(err)
	}
	if err := b.Hom(); !errors.Is(err, budget.ErrHoms) {
		t.Fatalf("exhausted hom budget returned %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := budget.New(ctx, 0, 0)
	cancel()
	// Steps poll the context periodically: within one check interval the
	// cancellation must surface.
	var err error
	for i := 0; i < 1024 && err == nil; i++ {
		err = b.Step(1)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context not observed: %v", err)
	}
	if err := b.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v", err)
	}
	if err := b.Hom(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Hom = %v", err)
	}
}

func TestBigStepExhaustsAtOnce(t *testing.T) {
	b := budget.New(context.Background(), 100, 0)
	if err := b.Step(1000); !errors.Is(err, budget.ErrSteps) {
		t.Fatalf("oversized step returned %v", err)
	}
}

// TestConcurrentStepExactness shares one budget across goroutines (as the
// parallel rewrite does) and verifies the cap is exact: the number of
// successful unit debits equals the configured budget.
func TestConcurrentStepExactness(t *testing.T) {
	const cap = 10_000
	b := budget.New(context.Background(), cap, cap)
	var ok, okHoms atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cap; i++ {
				if b.Step(1) == nil {
					ok.Add(1)
				}
				if b.Hom() == nil {
					okHoms.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := ok.Load(); got != cap {
		t.Fatalf("successful steps = %d, want exactly %d", got, cap)
	}
	if got := okHoms.Load(); got != cap {
		t.Fatalf("successful homs = %d, want exactly %d", got, cap)
	}
}
