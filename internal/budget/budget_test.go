package budget_test

import (
	"context"
	"errors"
	"testing"

	"xpathviews/internal/budget"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *budget.B
	for i := 0; i < 10000; i++ {
		if err := b.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Hom(); err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStepBudget(t *testing.T) {
	b := budget.New(context.Background(), 10, 0)
	for i := 0; i < 10; i++ {
		if err := b.Step(1); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	err := b.Step(1)
	if !errors.Is(err, budget.ErrBudget) || !errors.Is(err, budget.ErrSteps) {
		t.Fatalf("exhausted step budget returned %v", err)
	}
	if err := b.Err(); !errors.Is(err, budget.ErrBudget) {
		t.Fatalf("Err after exhaustion = %v", err)
	}
}

func TestHomBudget(t *testing.T) {
	b := budget.New(context.Background(), 0, 2)
	if err := b.Hom(); err != nil {
		t.Fatal(err)
	}
	if err := b.Hom(); err != nil {
		t.Fatal(err)
	}
	if err := b.Hom(); !errors.Is(err, budget.ErrHoms) {
		t.Fatalf("exhausted hom budget returned %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := budget.New(ctx, 0, 0)
	cancel()
	// Steps poll the context periodically: within one check interval the
	// cancellation must surface.
	var err error
	for i := 0; i < 1024 && err == nil; i++ {
		err = b.Step(1)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context not observed: %v", err)
	}
	if err := b.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v", err)
	}
	if err := b.Hom(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Hom = %v", err)
	}
}

func TestBigStepExhaustsAtOnce(t *testing.T) {
	b := budget.New(context.Background(), 100, 0)
	if err := b.Step(1000); !errors.Is(err, budget.ErrSteps) {
		t.Fatalf("oversized step returned %v", err)
	}
}
