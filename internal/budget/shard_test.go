package budget

import (
	"errors"
	"sync"
	"testing"
)

// TestShardExactAccounting: shards draw from the parent in chunks but
// Close refunds the unused balance, so as long as the budget is not
// exhausted the parent's spend is exactly the work performed,
// independent of how it was sharded.
func TestShardExactAccounting(t *testing.T) {
	b := New(nil, 1000, 0)
	b.EnableTracking()
	sh := NewShard(b)
	for i := 0; i < 70; i++ { // crosses one chunk boundary
		if err := sh.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	sh.Close()
	if steps, _ := b.Spent(); steps != 70 {
		t.Fatalf("parent charged %d steps after shard close, want 70", steps)
	}
	if err := b.Step(930); err != nil {
		t.Fatalf("remaining budget rejected: %v", err)
	}
	if err := b.Step(1); err == nil {
		t.Fatal("budget exceeded its limit after shard refund")
	}
}

// TestShardExhaustion: a shard surfaces the parent's exhaustion as
// ErrBudget; the chunked prepay may make it fire early, but by less than
// one chunk — never late.
func TestShardExhaustion(t *testing.T) {
	b := New(nil, 100, 0)
	sh := NewShard(b)
	defer sh.Close()
	n := 0
	var err error
	for ; n < 1000; n++ {
		if err = sh.Step(1); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("shard never hit the parent's 100-step limit")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("shard surfaced %v, want ErrBudget", err)
	}
	if n > 100 || n <= 100-shardChunk {
		t.Fatalf("shard admitted %d steps of a 100-step budget (chunk %d)", n, shardChunk)
	}
}

// TestShardSmallChunkExact: with chunk 1 the prepay never overshoots, so
// a shard admits exactly the configured cap.
func TestShardSmallChunkExact(t *testing.T) {
	b := New(nil, 100, 0)
	sh := NewShardChunk(b, 1)
	defer sh.Close()
	n := 0
	for ; n < 1000; n++ {
		if sh.Step(1) != nil {
			break
		}
	}
	if n != 100 {
		t.Fatalf("chunk-1 shard admitted %d steps of a 100-step budget", n)
	}
}

// TestShardConcurrent: many shards hammering one parent never admit more
// than the global cap, and chunking strands less than one chunk per
// worker.
func TestShardConcurrent(t *testing.T) {
	const (
		limit   = 10_000
		workers = 8
	)
	b := New(nil, limit, 0)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := NewShard(b)
			defer sh.Close()
			var n int64
			for sh.Step(3) == nil {
				n += 3
			}
			mu.Lock()
			admitted += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if admitted > limit {
		t.Fatalf("shards admitted %d steps of a %d-step budget", admitted, limit)
	}
	if admitted < limit-workers*shardChunk {
		t.Fatalf("shards stranded too much: admitted %d of %d with %d workers (chunk %d)",
			admitted, limit, workers, shardChunk)
	}
}

// TestNilShardParent: a shard over a nil budget never aborts and Close
// is a no-op — the sequential join path passes nil budgets freely.
func TestNilShardParent(t *testing.T) {
	sh := NewShard(nil)
	for i := 0; i < 10_000; i++ {
		if err := sh.Step(7); err != nil {
			t.Fatalf("nil-parent shard aborted: %v", err)
		}
	}
	sh.Close()
	var nilSh *Shard
	if err := nilSh.Step(1); err != nil {
		t.Fatalf("nil *Shard aborted: %v", err)
	}
	nilSh.Close()
}
