package server

// Graceful-drain test, run under -race in CI: a saturated server
// receives a real SIGTERM and must (1) flip readiness while the
// listener is still accepting — so load balancers observe the drain
// before connections start failing, (2) complete or cleanly reject
// every in-flight request — no connection dropped mid-flight, and
// (3) leak no goroutines.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"xpathviews/internal/paperdata"
	"xpathviews/internal/telemetry"
)

func TestSIGTERMDrain(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	var drainLog strings.Builder
	reg := telemetry.NewRegistry()
	srv := newBookServer(t, Config{
		MaxInFlight:        2,
		QueueDepth:         2,
		QueueWait:          20 * time.Millisecond,
		SlowQueryThreshold: time.Nanosecond, // retain everything for the flush check
		Metrics:            reg,
		DrainLog:           &drainLog,
	}, TenantConfig{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}

	// Saturating load: more workers than capacity+queue, looping until
	// the listener goes away. Every response must be a clean HTTP status;
	// transport-level errors are legal only after drain begins.
	var (
		drainBegun   atomic.Bool
		served       atomic.Int64
		shed         atomic.Int64
		dropped      atomic.Int64 // transport error before drain — must stay 0
		postShutdown atomic.Int64
	)
	const workers = 8
	var wg sync.WaitGroup
	body := fmt.Sprintf(`{"query": %q}`, paperdata.QueryE)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					if drainBegun.Load() {
						postShutdown.Add(1)
						return
					}
					dropped.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					served.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	// Let the load establish itself.
	deadline := time.Now().Add(2 * time.Second)
	for served.Load()+shed.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Deliver a real SIGTERM to this process, received the way the
	// daemon's main receives it.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	defer signal.Stop(sigc)
	drainBegun.Store(true)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sigc:
	case <-time.After(2 * time.Second):
		t.Fatal("SIGTERM not delivered")
	}

	// Ordering check: flip readiness first, and verify /readyz reports
	// draining over the STILL-OPEN listener before it closes.
	srv.BeginDrain()
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz after BeginDrain: listener already closed: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after BeginDrain = %d, want 503", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx, hs); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("http.Server.Serve did not return after Shutdown")
	}

	if n := dropped.Load(); n != 0 {
		t.Fatalf("%d requests dropped at the transport before drain began", n)
	}
	if served.Load() == 0 {
		t.Fatal("no request was served before drain")
	}
	if n := srv.InFlight(); n != 0 {
		t.Fatalf("%d queries still in flight after drain", n)
	}
	if !srv.Draining() || srv.Ready() {
		t.Fatal("server not in drained state")
	}

	// The flush landed: slow-query entries plus a final metrics snapshot.
	flush := drainLog.String()
	if !strings.Contains(flush, "drain flush") || !strings.Contains(flush, "xpvd_requests_total") {
		t.Fatalf("drain flush missing content:\n%s", flush)
	}
	if !strings.Contains(flush, "slow tenant=default") {
		t.Fatalf("drain flush lacks slow-query entries:\n%s", flush)
	}

	// Goroutine-leak check: workers, server loops and keep-alive conns
	// must all unwind.
	client.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after drain\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainDeadline exercises the unhappy path: a query still in flight
// when the drain context expires must surface as a drain error, not a
// hang.
func TestDrainDeadline(t *testing.T) {
	srv := newBookServer(t, Config{MaxInFlight: 1}, TenantConfig{})
	release, _, err := srv.adm.acquire(context.Background(), srv.Tenant(DefaultTenant))
	if err != nil {
		t.Fatal(err)
	}
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = srv.Drain(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with a stuck query = %v, want deadline error", err)
	}
	release()
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := srv.Drain(ctx2); err != nil {
		t.Fatalf("Drain after release = %v", err)
	}
}
