package server

// GET /statusz: the operator's one-page view of serving health — uptime,
// admission state, trace-export counters, and each tenant's SLO burn
// rates with its p99 latency exemplar (a trace ID that resolves to an
// exported span tree, so "why is p99 high" is one grep away).
//
// Renders deterministic text by default (the golden test pins the bytes
// under an injected clock on a quiet server), JSON with ?format=json,
// and appends a runtime/metrics scrape with ?runtime=1 — opt-in because
// runtime numbers are nondeterministic by nature.

import (
	"fmt"
	"net/http"
	"runtime/metrics"
	"sort"
	"strings"

	"xpathviews/internal/telemetry"
)

// statuszTenant is one tenant's row of the report.
type statuszTenant struct {
	Name     string `json:"name"`
	InFlight int64  `json:"inflight"`
	Views    int    `json:"views"`
	// The tenant's resolved objectives.
	Availability       float64 `json:"slo_availability"`
	LatencyObjective   float64 `json:"slo_latency_objective"`
	LatencyThresholdMS int64   `json:"slo_latency_threshold_ms"`
	// SLO is the live burn-rate verdict.
	SLO SLOStatus `json:"slo"`
	// P99Exemplar is the trace ID last sampled in the tenant's highest
	// populated latency bucket (absent until traffic lands there).
	P99Exemplar *telemetry.Exemplar `json:"p99_exemplar,omitempty"`
	// View-observatory summary: workload-drift distance (ppm of total
	// variation) and cumulative threshold crossings, the global
	// cost-model calibration error, and one compact row per view. GET
	// /v1/views serves the full report.
	DriftArmed     bool          `json:"drift_armed"`
	DriftPPM       int64         `json:"drift_ppm"`
	DriftEvents    int64         `json:"drift_events"`
	CalibrationErr float64       `json:"calibration_err"`
	ViewStats      []statuszView `json:"view_stats,omitempty"`
}

// statuszView is one view's compact observatory row.
type statuszView struct {
	ID             int     `json:"id"`
	Hits           int64   `json:"hits"`
	Bytes          int     `json:"bytes"`
	BenefitPerKB   float64 `json:"benefit_per_kb"`
	NetBenefitKB   float64 `json:"net_benefit_per_kb"`
	CalibrationErr float64 `json:"calibration_err"`
	LastSpliceSize int64   `json:"last_splice_size"`
}

// statuszTrace reports the exporter's counters.
type statuszTrace struct {
	Exported int64 `json:"exported"`
	Dropped  int64 `json:"dropped"`
	QueueLen int64 `json:"queue_len"`
}

// statuszReport is the full /statusz JSON shape.
type statuszReport struct {
	UptimeS        int64           `json:"uptime_s"`
	Ready          bool            `json:"ready"`
	Draining       bool            `json:"draining"`
	InFlight       int64           `json:"inflight"`
	QueueWaiting   int64           `json:"queue_waiting"`
	BurningTenants int64           `json:"burning_tenants"`
	PressureForced bool            `json:"pressure_forced"`
	Trace          *statuszTrace   `json:"trace,omitempty"`
	Tenants        []statuszTenant `json:"tenants"`
	Runtime        []runtimeSample `json:"runtime,omitempty"`
}

// runtimeSample is one runtime/metrics reading.
type runtimeSample struct {
	Name  string `json:"name"`
	Value any    `json:"value"`
}

// runtimeSamples scrapes a fixed, ordered set of runtime/metrics
// readings — enough to answer "is it the GC or the scheduler" without
// attaching a profiler.
func runtimeSamples() []runtimeSample {
	names := []string{
		"/gc/cycles/total:gc-cycles",
		"/gc/heap/allocs:bytes",
		"/gc/heap/goal:bytes",
		"/memory/classes/heap/objects:bytes",
		"/memory/classes/total:bytes",
		"/sched/goroutines:goroutines",
	}
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	metrics.Read(samples)
	out := make([]runtimeSample, 0, len(samples))
	for _, sm := range samples {
		var v any
		switch sm.Value.Kind() {
		case metrics.KindUint64:
			v = sm.Value.Uint64()
		case metrics.KindFloat64:
			v = sm.Value.Float64()
		default:
			continue // histogram-kind samples have no scalar rendering here
		}
		out = append(out, runtimeSample{Name: sm.Name, Value: v})
	}
	return out
}

// statusz assembles the report. Tenants are sorted by name so both
// renderings are deterministic.
func (s *Server) statusz(withRuntime bool) statuszReport {
	rep := statuszReport{
		UptimeS:        int64(s.clock().Sub(s.start).Seconds()),
		Ready:          s.Ready(),
		Draining:       s.Draining(),
		InFlight:       s.adm.inflight(),
		QueueWaiting:   s.adm.waiting.Load(),
		BurningTenants: s.burningTenants.Load(),
		PressureForced: s.adm.forcePressured.Load(),
		Tenants:        make([]statuszTenant, 0, len(s.tenants)),
	}
	if s.exporter != nil {
		rep.Trace = &statuszTrace{
			Exported: s.exporter.Exported(),
			Dropped:  s.exporter.Dropped(),
			QueueLen: s.exporter.QueueLen(),
		}
	}
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := s.tenants[n]
		cfg := t.slo.Config()
		row := statuszTenant{
			Name:               n,
			InFlight:           t.InFlight(),
			Views:              t.sys.NumViews(),
			Availability:       cfg.Availability,
			LatencyObjective:   cfg.LatencyObjective,
			LatencyThresholdMS: cfg.LatencyThreshold.Milliseconds(),
			SLO:                t.slo.Status(),
		}
		if ex, ok := t.reqNs.TailExemplar(); ok {
			e := ex
			row.P99Exemplar = &e
		}
		vs := t.sys.ViewStatsReport()
		row.DriftArmed = vs.DriftArmed
		row.DriftPPM = vs.DriftPPM
		row.DriftEvents = vs.DriftEvents
		row.CalibrationErr = vs.CalibrationErr
		for _, v := range vs.Views {
			row.ViewStats = append(row.ViewStats, statuszView{
				ID:             v.ID,
				Hits:           v.Hits,
				Bytes:          v.Bytes,
				BenefitPerKB:   v.BenefitPerKB,
				NetBenefitKB:   v.NetBenefitPerKB,
				CalibrationErr: v.CalibrationErr,
				LastSpliceSize: v.LastSpliceSize,
			})
		}
		rep.Tenants = append(rep.Tenants, row)
	}
	if withRuntime {
		rep.Runtime = runtimeSamples()
	}
	return rep
}

// writeStatuszText renders the deterministic text form.
func writeStatuszText(b *strings.Builder, rep statuszReport) {
	fmt.Fprintf(b, "xpvserved statusz\n")
	fmt.Fprintf(b, "uptime_s: %d\n", rep.UptimeS)
	fmt.Fprintf(b, "ready: %t\n", rep.Ready)
	fmt.Fprintf(b, "draining: %t\n", rep.Draining)
	fmt.Fprintf(b, "inflight: %d\n", rep.InFlight)
	fmt.Fprintf(b, "queue_waiting: %d\n", rep.QueueWaiting)
	fmt.Fprintf(b, "burning_tenants: %d\n", rep.BurningTenants)
	fmt.Fprintf(b, "pressure_forced: %t\n", rep.PressureForced)
	if rep.Trace != nil {
		fmt.Fprintf(b, "trace_exported: %d\n", rep.Trace.Exported)
		fmt.Fprintf(b, "trace_dropped: %d\n", rep.Trace.Dropped)
		fmt.Fprintf(b, "trace_queue_len: %d\n", rep.Trace.QueueLen)
	}
	for _, t := range rep.Tenants {
		fmt.Fprintf(b, "\ntenant %s\n", t.Name)
		fmt.Fprintf(b, "  inflight: %d\n", t.InFlight)
		fmt.Fprintf(b, "  views: %d\n", t.Views)
		fmt.Fprintf(b, "  slo: availability=%.3f latency_objective=%.3f latency_threshold_ms=%d\n",
			t.Availability, t.LatencyObjective, t.LatencyThresholdMS)
		fmt.Fprintf(b, "  requests_long_window: %d\n", t.SLO.Requests)
		fmt.Fprintf(b, "  availability_burn: short=%.2f long=%.2f\n",
			t.SLO.AvailabilityShortBurn, t.SLO.AvailabilityLongBurn)
		fmt.Fprintf(b, "  latency_burn: short=%.2f long=%.2f\n",
			t.SLO.LatencyShortBurn, t.SLO.LatencyLongBurn)
		fmt.Fprintf(b, "  burning: %t\n", t.SLO.Burning)
		if t.P99Exemplar != nil {
			fmt.Fprintf(b, "  p99_exemplar: trace_id=%s value_ns=%d\n",
				t.P99Exemplar.TraceID, t.P99Exemplar.ValueNs)
		}
		fmt.Fprintf(b, "  drift: armed=%t ppm=%d events=%d\n",
			t.DriftArmed, t.DriftPPM, t.DriftEvents)
		fmt.Fprintf(b, "  calibration_err: %.3f\n", t.CalibrationErr)
		for _, v := range t.ViewStats {
			fmt.Fprintf(b, "  view %d: hits=%d bytes=%d benefit_kb=%.2f net_kb=%.2f cal_err=%.3f last_splice=%d\n",
				v.ID, v.Hits, v.Bytes, v.BenefitPerKB, v.NetBenefitKB, v.CalibrationErr, v.LastSpliceSize)
		}
	}
	for _, sm := range rep.Runtime {
		fmt.Fprintf(b, "\nruntime %s: %v", sm.Name, sm.Value)
	}
	if len(rep.Runtime) > 0 {
		b.WriteByte('\n')
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	rep := s.statusz(r.URL.Query().Get("runtime") == "1")
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, rep)
		return
	}
	var b strings.Builder
	writeStatuszText(&b, rep)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
