package server

// POST /v1/update — the serving surface of the incremental maintenance
// subsystem. A mutation is a tenant request like any other: it resolves
// the tenant, passes admission (so an update storm is subject to the
// same quotas and shedding as a query storm), and runs serialized
// against that tenant's in-flight queries by the System's RWMutex. The
// response reports what maintenance did: how many views were checked,
// how many were dirtied, and the fragment-level delta.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"xpathviews"
	"xpathviews/internal/dewey"
)

// updateRequest is the POST /v1/update body.
type updateRequest struct {
	Tenant string `json:"tenant,omitempty"`
	// Op is "insert" or "delete".
	Op string `json:"op"`
	// ParentCode addresses an insert's parent node (dotted extended
	// Dewey code, e.g. "0.8").
	ParentCode string `json:"parent_code,omitempty"`
	// XML is the inserted subtree's serialization (insert only).
	XML string `json:"xml,omitempty"`
	// Code addresses a delete's subtree root.
	Code string `json:"code,omitempty"`
}

// updateResponse reports one applied mutation.
type updateResponse struct {
	Tenant  string `json:"tenant"`
	TraceID string `json:"trace_id,omitempty"`
	Op      string `json:"op"`
	// Code is the inserted subtree root's newly allocated code, or the
	// deleted subtree root's code.
	Code               string `json:"code"`
	NodesAdded         int    `json:"nodes_added,omitempty"`
	NodesRemoved       int    `json:"nodes_removed,omitempty"`
	ViewsChecked       int    `json:"views_checked"`
	DirtyViews         int    `json:"dirty_views"`
	FragmentsAdded     int    `json:"fragments_added,omitempty"`
	FragmentsRemoved   int    `json:"fragments_removed,omitempty"`
	FragmentsRefreshed int    `json:"fragments_refreshed,omitempty"`
	WALSeq             uint64 `json:"wal_seq,omitempty"`
	ElapsedNS          int64  `json:"elapsed_ns"`
}

// updateStatus maps a mutation failure onto an HTTP status: bad
// addressing is the client's 404, a schema violation its 422, a
// contained pipeline failure our 500, anything else (unparseable XML,
// deleting the root) a 400.
func updateStatus(err error) int {
	switch {
	case errors.Is(err, xpathviews.ErrNoSuchNode):
		return http.StatusNotFound
	case errors.Is(err, xpathviews.ErrSchema):
		return http.StatusUnprocessableEntity
	case errors.Is(err, xpathviews.ErrInternal):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.met.requests.Inc()
	traceID, tr := s.traceFor(w, r)
	defer s.exportTrace(tr)
	var req updateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(&req); err != nil {
		tr.Root().Err(err)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	t := s.tenantFor(req.Tenant, r)
	if t == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", req.Tenant))
		return
	}
	t.reqs.Inc()
	tr.Root().SetAttr("tenant", t.cfg.Name)
	tr.Root().SetAttr("op", req.Op)

	release, _, err := s.adm.acquire(r.Context(), t)
	if err != nil {
		tr.Root().Err(err)
		s.shedResponse(w, t, err)
		return
	}
	defer release()

	opts := xpathviews.MutateOptions{Trace: tr, TraceID: traceID}
	var res *xpathviews.MaintainResult
	switch req.Op {
	case "insert":
		if req.ParentCode == "" || req.XML == "" {
			s.writeError(w, http.StatusBadRequest,
				errors.New(`insert needs "parent_code" and "xml"`))
			return
		}
		pc, perr := dewey.ParseCode(req.ParentCode)
		if perr != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("parent_code: %w", perr))
			return
		}
		res, err = t.sys.InsertSubtreeOpts(pc, req.XML, opts)
	case "delete":
		if req.Code == "" {
			s.writeError(w, http.StatusBadRequest, errors.New(`delete needs "code"`))
			return
		}
		c, perr := dewey.ParseCode(req.Code)
		if perr != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("code: %w", perr))
			return
		}
		res, err = t.sys.DeleteSubtreeOpts(c, opts)
	default:
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf(`unknown op %q (want "insert" or "delete")`, req.Op))
		return
	}

	el := time.Since(t0)
	s.met.reqNs.Observe(int64(el))
	t.reqNs.ObserveExemplar(int64(el), traceID)
	if err != nil {
		tr.Root().Err(err)
		s.met.updateErrs.Inc()
		status := updateStatus(err)
		s.recordSLO(t, status >= 500, el)
		s.writeError(w, status, err)
		return
	}
	s.met.updates.Inc()
	s.recordSLO(t, false, el)
	s.countResponse(http.StatusOK)
	writeJSON(w, http.StatusOK, updateResponse{
		Tenant:             t.cfg.Name,
		TraceID:            traceID,
		Op:                 res.Op,
		Code:               res.Code.String(),
		NodesAdded:         res.NodesAdded,
		NodesRemoved:       res.NodesRemoved,
		ViewsChecked:       res.ViewsChecked,
		DirtyViews:         res.DirtyViews,
		FragmentsAdded:     res.FragmentsAdded,
		FragmentsRemoved:   res.FragmentsRemoved,
		FragmentsRefreshed: res.FragmentsRefreshed,
		WALSeq:             res.WALSeq,
		ElapsedNS:          int64(el),
	})
}
