package server

// Load-test harness for the daemon, writing BENCH_server.json (the
// machine-readable serving report, same pattern as BENCH_serving.json).
// Run via `make bench-server` or XPV_BENCH_SERVER=1 go test -run
// TestServerBenchReport ./internal/server.
//
// Three phases:
//
//	sustained — steady load within capacity: throughput and latency
//	            percentiles for healthy serving;
//	overload  — capacity mostly held, heuristic selection faulted: the
//	            daemon must keep answering on degraded rungs (rung > 0)
//	            and shed the overflow with clean statuses;
//	drain     — SIGTERM under load: every in-flight request completes or
//	            is cleanly rejected, zero dropped at the transport.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"xpathviews/internal/faults"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/telemetry"
)

type serverBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"go_max_procs"`

	Sustained struct {
		Seconds  float64 `json:"seconds"`
		Requests int     `json:"requests"`
		QPS      float64 `json:"qps"`
		P50NS    int64   `json:"p50_ns"`
		P95NS    int64   `json:"p95_ns"`
		P99NS    int64   `json:"p99_ns"`
	} `json:"sustained"`

	Overload struct {
		Requests         int            `json:"requests"`
		Served           int            `json:"served"`
		Shed             int            `json:"shed"`
		ShedRate         float64        `json:"shed_rate"`
		ServedByPressure map[string]int `json:"served_by_pressure"`
		ServedByRung     map[string]int `json:"served_by_rung"`
		ShedByStatus     map[string]int `json:"shed_by_status"`
		DegradedServed   int            `json:"degraded_served"`
	} `json:"overload"`

	Drain struct {
		InFlightAtSIGTERM int   `json:"inflight_at_sigterm"`
		CompletedAfter    int   `json:"completed_after_drain_began"`
		DroppedInFlight   int   `json:"dropped_in_flight"`
		DrainNS           int64 `json:"drain_ns"`
	} `json:"drain"`
}

func percentile(sorted []time.Duration, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return int64(sorted[i])
}

func benchListener(t *testing.T, srv *Server) (string, *http.Server, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), hs, func() { _ = hs.Close() }
}

func TestServerBenchReport(t *testing.T) {
	if os.Getenv("XPV_BENCH_SERVER") == "" {
		t.Skip("set XPV_BENCH_SERVER=1 (or run `make bench-server`) to measure and rewrite BENCH_server.json")
	}
	var rep serverBenchReport
	rep.GeneratedBy = "XPV_BENCH_SERVER=1 go test -run TestServerBenchReport ./internal/server"
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	client := &http.Client{Timeout: 10 * time.Second}
	body := fmt.Sprintf(`{"query": %q}`, paperdata.QueryE)

	// --- Phase 1: sustained load within capacity.
	{
		srv := newBookServer(t, Config{MaxInFlight: 2 * runtime.GOMAXPROCS(0), Metrics: telemetry.NewRegistry()},
			TenantConfig{})
		base, _, stop := benchListener(t, srv)
		const workers = 4
		duration := 500 * time.Millisecond
		var mu sync.Mutex
		var lats []time.Duration
		var wg sync.WaitGroup
		t0 := time.Now()
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Since(t0) < duration {
					q0 := time.Now()
					resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("sustained: status %d", resp.StatusCode)
						return
					}
					mu.Lock()
					lats = append(lats, time.Since(q0))
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(t0)
		stop()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.Sustained.Seconds = elapsed.Seconds()
		rep.Sustained.Requests = len(lats)
		rep.Sustained.QPS = float64(len(lats)) / elapsed.Seconds()
		rep.Sustained.P50NS = percentile(lats, 0.50)
		rep.Sustained.P95NS = percentile(lats, 0.95)
		rep.Sustained.P99NS = percentile(lats, 0.99)
	}

	// --- Phase 2: overload with the heuristic-selection rung faulted.
	{
		defer faults.DisarmAll()
		views := append(paperdata.TableIViews(), paperdata.QueryE)
		srv := newBookServer(t,
			Config{MaxInFlight: 4, PressuredFrac: 0.5, QueueDepth: 2, QueueWait: 2 * time.Millisecond,
				Metrics: telemetry.NewRegistry()},
			TenantConfig{Views: views})
		// Hold 3 of 4 slots: every admitted request grades Pressured.
		var releases []func()
		for i := 0; i < 3; i++ {
			release, _, err := srv.adm.acquire(context.Background(), srv.Tenant(DefaultTenant))
			if err != nil {
				t.Fatal(err)
			}
			releases = append(releases, release)
		}
		faults.Arm("selection.heuristic", faults.Error)
		base, _, stop := benchListener(t, srv)
		const workers = 6
		duration := 400 * time.Millisecond
		var mu sync.Mutex
		rep.Overload.ServedByPressure = map[string]int{}
		rep.Overload.ServedByRung = map[string]int{}
		rep.Overload.ShedByStatus = map[string]int{}
		var wg sync.WaitGroup
		t0 := time.Now()
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Since(t0) < duration {
					resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					mu.Lock()
					rep.Overload.Requests++
					switch resp.StatusCode {
					case http.StatusOK:
						var qr queryResponse
						if err := json.Unmarshal(raw, &qr); err != nil {
							t.Error(err)
						}
						rep.Overload.Served++
						rep.Overload.ServedByPressure[qr.Pressure]++
						rep.Overload.ServedByRung[qr.Rung]++
						if qr.Degraded {
							rep.Overload.DegradedServed++
						}
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
						rep.Overload.Shed++
						rep.Overload.ShedByStatus[fmt.Sprint(resp.StatusCode)]++
					default:
						t.Errorf("overload: status %d body %s", resp.StatusCode, raw)
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		// Second window: hold the last slot too — full saturation, every
		// request sheds with a clean 503 + Retry-After.
		release, _, err := srv.adm.acquire(context.Background(), srv.Tenant(DefaultTenant))
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, release)
		for i := 0; i < 50; i++ {
			resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rep.Overload.Requests++
			if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("saturated window: status %d", resp.StatusCode)
			}
			rep.Overload.Shed++
			rep.Overload.ShedByStatus[fmt.Sprint(resp.StatusCode)]++
		}
		stop()
		faults.DisarmAll()
		for _, release := range releases {
			release()
		}
		if rep.Overload.Requests > 0 {
			rep.Overload.ShedRate = float64(rep.Overload.Shed) / float64(rep.Overload.Requests)
		}
		if rep.Overload.Served == 0 {
			t.Fatal("overload phase served nothing")
		}
		degradedRungs := 0
		for rung, n := range rep.Overload.ServedByRung {
			if rung != "HV" {
				degradedRungs += n
			}
		}
		if degradedRungs == 0 {
			t.Fatalf("overload served no degraded-rung answers: %v", rep.Overload.ServedByRung)
		}
	}

	// --- Phase 3: SIGTERM drain under load.
	{
		srv := newBookServer(t, Config{MaxInFlight: 2, QueueDepth: 2, QueueWait: 20 * time.Millisecond,
			Metrics: telemetry.NewRegistry()}, TenantConfig{})
		base, hs, _ := benchListener(t, srv)
		var (
			drainBegun     atomic.Bool
			dropped        atomic.Int64
			completedAfter atomic.Int64
		)
		const workers = 6
		var wg sync.WaitGroup
		started := make(chan struct{})
		var startOnce sync.Once
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader(body))
					if err != nil {
						if !drainBegun.Load() {
							dropped.Add(1)
						}
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					startOnce.Do(func() { close(started) })
					if drainBegun.Load() {
						completedAfter.Add(1)
					}
				}
			}()
		}
		<-started
		time.Sleep(20 * time.Millisecond) // load established

		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM)
		defer signal.Stop(sigc)
		drainBegun.Store(true)
		rep.Drain.InFlightAtSIGTERM = int(srv.InFlight())
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		<-sigc
		d0 := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx, hs); err != nil {
			t.Fatalf("drain: %v", err)
		}
		rep.Drain.DrainNS = int64(time.Since(d0))
		wg.Wait()
		rep.Drain.CompletedAfter = int(completedAfter.Load())
		rep.Drain.DroppedInFlight = int(dropped.Load())
		if rep.Drain.DroppedInFlight != 0 {
			t.Fatalf("%d in-flight requests dropped during drain", rep.Drain.DroppedInFlight)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_server.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_server.json:\n%s", data)
}
