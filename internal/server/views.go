package server

// GET /v1/views: the view observatory's per-tenant report — one row per
// materialized view (hits, bytes resident, benefit-per-KB gross and net
// of maintenance, calibration error, last dirty-splice size) plus the
// tenant's global calibration and workload-drift state. This is the
// machine-readable face of the same accounting /statusz summarizes;
// xpvquery -viewstats and xpvadvise -viewstats render the library-level
// equivalent for embedders.

import (
	"fmt"
	"net/http"
)

// viewsResponse wraps a tenant's observatory summary with its name, so
// a dashboard polling several tenants can file the payload unambiguously.
type viewsResponse struct {
	Tenant string `json:"tenant"`
	// Summary is xpathviews.ViewStatsSummary: global calibration + drift
	// state and one ViewStatReport per registered view.
	Summary any `json:"summary"`
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("tenant")
	t := s.tenantFor(name, r)
	if t == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", name))
		return
	}
	s.countResponse(http.StatusOK)
	writeJSON(w, http.StatusOK, viewsResponse{Tenant: t.Name(), Summary: t.sys.ViewStatsReport()})
}
