// Package server is the serving daemon's control plane: multi-tenant
// admission control, overload shedding mapped onto the resilient rung
// chain, answer-level singleflight coalescing, and graceful drain. The
// HTTP surface (cmd/xpvserved) is a thin shell over this package so the
// robustness machinery is testable without sockets.
//
// Request lifecycle:
//
//	resolve tenant → admission (tenant cap, process semaphore + bounded
//	queue) → pressure grade → options (rung chain + budgets per grade) →
//	singleflight coalesce → AnswerResilient / AnswerContext → respond.
//
// Drain lifecycle (SIGTERM):
//
//	readiness flips (readyz → 503) → admission closes (new queries shed
//	with 503 + Retry-After) → listener closes, in-flight requests finish
//	under the drain deadline → slow-query log and final metrics flush.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"xpathviews"
	"xpathviews/internal/plancache"
	"xpathviews/internal/telemetry"
	"xpathviews/internal/telemetry/export"
)

// Config tunes the daemon-wide robustness envelope. Zero values pick
// production-ish defaults.
type Config struct {
	// MaxInFlight caps process-wide concurrent queries (default
	// 4×GOMAXPROCS).
	MaxInFlight int
	// QueueDepth is how many requests may wait for a slot beyond
	// MaxInFlight before hard shedding (default MaxInFlight).
	QueueDepth int
	// QueueWait bounds a queued request's wait before it is shed with
	// Retry-After (default 100ms).
	QueueWait time.Duration
	// PressuredFrac is the occupancy fraction above which admitted
	// requests are served through the cheap rung chain (default 0.75).
	PressuredFrac float64
	// DrainTimeout bounds graceful shutdown (default 10s); used by
	// callers that pass no context deadline to Shutdown.
	DrainTimeout time.Duration
	// SlowQueryThreshold arms every tenant's slow-query log (0 = off).
	SlowQueryThreshold time.Duration
	// Metrics is the registry all serving and daemon metrics land in
	// (nil = the process default registry).
	Metrics *xpathviews.MetricsRegistry
	// DrainLog, when non-nil, receives the drain flush: retained slow
	// queries and a final metrics snapshot.
	DrainLog io.Writer
	// TraceExporter, when non-nil, receives every request's span tree
	// (bounded queue, drop-counting — see internal/telemetry/export).
	// The server owns it from here: Shutdown drains and closes it.
	TraceExporter *export.Exporter
	// SLO tunes the per-tenant burn-rate watchdog (zero value = the
	// defaults documented on SLOConfig). Per-tenant objectives may be
	// overridden in TenantConfig.
	SLO SLOConfig
	// Clock overrides time.Now for the SLO windows and /statusz uptime.
	// Tests inject a fixed clock for deterministic output.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// serverMetrics are the daemon's pre-resolved instruments.
type serverMetrics struct {
	requests   *telemetry.Counter // xpvd_requests_total
	respOK     *telemetry.Counter // xpvd_responses_ok_total
	respClient *telemetry.Counter // xpvd_responses_client_error_total
	respServer *telemetry.Counter // xpvd_responses_server_error_total

	shed             map[string]*telemetry.Counter // xpvd_shed_total{reason=...}
	servedByPressure [2]*telemetry.Counter         // xpvd_served_total{pressure=...}
	coalesced        *telemetry.Counter            // xpvd_coalesced_answers_total
	batchQueries     *telemetry.Counter            // xpvd_batch_queries_total
	updates          *telemetry.Counter            // xpvd_updates_total
	updateErrs       *telemetry.Counter            // xpvd_update_errors_total

	drains      *telemetry.Counter // xpvd_drains_total
	drainLastNs *telemetry.Gauge   // xpvd_drain_last_ns

	sloTrips *telemetry.Counter // xpvd_slo_watchdog_trips_total

	reqNs *telemetry.Histogram // xpvd_request_ns
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{
		requests:     reg.Counter("xpvd_requests_total"),
		respOK:       reg.Counter("xpvd_responses_ok_total"),
		respClient:   reg.Counter("xpvd_responses_client_error_total"),
		respServer:   reg.Counter("xpvd_responses_server_error_total"),
		coalesced:    reg.Counter("xpvd_coalesced_answers_total"),
		batchQueries: reg.Counter("xpvd_batch_queries_total"),
		updates:      reg.Counter("xpvd_updates_total"),
		updateErrs:   reg.Counter("xpvd_update_errors_total"),
		drains:       reg.Counter("xpvd_drains_total"),
		drainLastNs:  reg.Gauge("xpvd_drain_last_ns"),
		sloTrips:     reg.Counter("xpvd_slo_watchdog_trips_total"),
		reqNs:        reg.Histogram("xpvd_request_ns"),
		shed:         map[string]*telemetry.Counter{},
	}
	for _, reason := range []string{ShedTenantLimit, ShedQueueFull, ShedQueueTimeout, ShedDraining} {
		m.shed[reason] = reg.Counter(fmt.Sprintf("xpvd_shed_total{reason=%q}", reason))
	}
	m.servedByPressure[Healthy] = reg.Counter(`xpvd_served_total{pressure="healthy"}`)
	m.servedByPressure[Pressured] = reg.Counter(`xpvd_served_total{pressure="pressured"}`)
	return m
}

// Server is the daemon core. Build with New, expose with Handler, stop
// with Shutdown.
type Server struct {
	cfg     Config
	adm     *admission
	tenants map[string]*Tenant
	flights plancache.Group
	met     *serverMetrics
	reg     *telemetry.Registry
	ready   atomic.Bool
	handler http.Handler

	clock    func() time.Time
	start    time.Time
	exporter *export.Exporter
	sloCfg   SLOConfig

	// burningTenants counts tenants whose SLO watchdog currently burns;
	// any > 0 forces Pressured grading at admission.
	burningTenants atomic.Int64
}

// New assembles a server over the given tenants. Tenant names must be
// unique; a tenant named DefaultTenant handles requests that name no
// tenant. Every tenant's System is pointed at the server's metrics
// registry and slow-query threshold.
func New(cfg Config, tenants []*Tenant) (*Server, error) {
	if len(tenants) == 0 {
		return nil, errors.New("server: no tenants configured")
	}
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = xpathviews.DefaultMetricsRegistry()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.QueueWait, cfg.PressuredFrac),
		tenants:  make(map[string]*Tenant, len(tenants)),
		met:      newServerMetrics(reg),
		reg:      reg,
		clock:    clock,
		start:    clock(),
		exporter: cfg.TraceExporter,
		sloCfg:   cfg.SLO.withDefaults(),
	}
	s.adm.queueWaitNs = reg.Histogram("xpvd_queue_wait_ns")
	tenantQueueWait := reg.HistogramVec("xpvd_queue_wait_ns", "tenant")
	tenantReqNs := reg.HistogramVec("xpvd_tenant_request_ns", "tenant")
	for _, t := range tenants {
		if _, dup := s.tenants[t.cfg.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", t.cfg.Name)
		}
		s.tenants[t.cfg.Name] = t
		// Every xpv_* metric the tenant's private System records is
		// labeled with the tenant, so the shared exposition is sliceable
		// by who caused what.
		t.sys.SetMetricsTenant(reg, t.cfg.Name)
		if cfg.SlowQueryThreshold > 0 {
			t.sys.SetSlowQueryThreshold(cfg.SlowQueryThreshold)
		}
		t.reqs = reg.Counter(fmt.Sprintf("xpvd_tenant_requests_total{tenant=%q}", t.cfg.Name))
		t.shed = reg.Counter(fmt.Sprintf("xpvd_tenant_shed_total{tenant=%q}", t.cfg.Name))
		t.shedBy = reg.CounterVec(telemetry.WithLabel("xpvd_shed_total", "tenant", t.cfg.Name), "reason")
		t.queueWaitNs = tenantQueueWait.With(t.cfg.Name)
		t.reqNs = tenantReqNs.With(t.cfg.Name)
		sloCfg := s.sloCfg
		if t.cfg.SLOAvailability > 0 {
			sloCfg.Availability = t.cfg.SLOAvailability
		}
		if t.cfg.SLOLatencyMS > 0 {
			sloCfg.LatencyThreshold = time.Duration(t.cfg.SLOLatencyMS) * time.Millisecond
		}
		t.slo = newSLOTracker(sloCfg, clock)
		tt := t
		reg.GaugeFunc(fmt.Sprintf("xpvd_tenant_inflight{tenant=%q}", t.cfg.Name), tt.InFlight)
		reg.GaugeFunc(fmt.Sprintf("xpvd_tenant_slo_burning{tenant=%q}", t.cfg.Name),
			func() int64 {
				if tt.burning.Load() {
					return 1
				}
				return 0
			})
		reg.GaugeFunc(fmt.Sprintf("xpvd_tenant_views{tenant=%q}", t.cfg.Name),
			func() int64 { return int64(tt.sys.NumViews()) })
		reg.GaugeFunc(fmt.Sprintf("xpvd_tenant_view_bytes{tenant=%q}", t.cfg.Name),
			func() int64 { return int64(tt.sys.Registry().TotalBytes()) })
		reg.GaugeFunc(fmt.Sprintf("xpvd_tenant_plancache_len{tenant=%q}", t.cfg.Name),
			func() int64 { return int64(tt.sys.PlanCacheLen()) })
	}
	reg.GaugeFunc("xpvd_inflight", s.adm.inflight)
	reg.GaugeFunc("xpvd_queue_waiting", s.adm.waiting.Load)
	reg.GaugeFunc("xpvd_ready", func() int64 {
		if s.Ready() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("xpvd_draining", func() int64 {
		if s.adm.draining.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("xpvd_slo_burning_tenants", s.burningTenants.Load)
	reg.GaugeFunc("xpvd_pressure_forced", func() int64 {
		if s.adm.forcePressured.Load() {
			return 1
		}
		return 0
	})
	if s.exporter != nil {
		reg.GaugeFunc("xpvd_trace_exported_total", s.exporter.Exported)
		reg.GaugeFunc("xpvd_trace_dropped_total", s.exporter.Dropped)
		reg.GaugeFunc("xpvd_trace_queue_len", s.exporter.QueueLen)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /v1/views", s.handleViews)
	s.handler = mux
	s.ready.Store(true)
	return s, nil
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.handler }

// Ready reports whether the daemon accepts traffic (false once drain
// begins).
func (s *Server) Ready() bool { return s.ready.Load() && !s.adm.draining.Load() }

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.adm.draining.Load() }

// InFlight is the current process-wide admitted-query count.
func (s *Server) InFlight() int64 { return s.adm.inflight() }

// Tenant returns a configured tenant by name (nil if unknown).
func (s *Server) Tenant(name string) *Tenant { return s.tenants[name] }

// tenantFor resolves the request's tenant: the JSON/query-string name,
// then the X-Xpv-Tenant header, then DefaultTenant.
func (s *Server) tenantFor(name string, r *http.Request) *Tenant {
	if name == "" {
		name = r.Header.Get("X-Xpv-Tenant")
	}
	if name == "" {
		name = DefaultTenant
	}
	return s.tenants[name]
}

// ---------------------------------------------------------------------
// /v1/query

// queryRequest is the POST /v1/query body. Exactly one of Query (single)
// or Queries (batch) must be set.
type queryRequest struct {
	Tenant  string   `json:"tenant,omitempty"`
	Query   string   `json:"query,omitempty"`
	Queries []string `json:"queries,omitempty"`
	// Strategy: "resilient" (default — the degradation chain), or one of
	// BN | BF | MN | MV | HV | CV for a fixed strategy.
	Strategy   string `json:"strategy,omitempty"`
	MaxAnswers int    `json:"max_answers,omitempty"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
	IncludeXML bool   `json:"include_xml,omitempty"`
}

// queryResponse is one query's outcome (one element of a batch, or the
// whole body for a single query).
type queryResponse struct {
	Query           string   `json:"query"`
	TraceID         string   `json:"trace_id,omitempty"`
	Status          int      `json:"status"`
	Rung            string   `json:"rung,omitempty"`
	Pressure        string   `json:"pressure"`
	Degraded        bool     `json:"degraded,omitempty"`
	DegradedReasons []string `json:"degraded_reasons,omitempty"`
	Coalesced       bool     `json:"coalesced,omitempty"`
	Truncated       bool     `json:"truncated,omitempty"`
	PlanCacheHit    bool     `json:"plan_cache_hit,omitempty"`
	Answers         []string `json:"answers"`
	XML             []string `json:"xml,omitempty"`
	ElapsedNS       int64    `json:"elapsed_ns"`
	Error           string   `json:"error,omitempty"`
}

type batchResponse struct {
	Tenant  string          `json:"tenant"`
	TraceID string          `json:"trace_id,omitempty"`
	Results []queryResponse `json:"results"`
}

type errorResponse struct {
	Error      string `json:"error"`
	RetryAfter int64  `json:"retry_after_ms,omitempty"`
}

// traceFor joins or starts the request's W3C trace context: a valid
// incoming traceparent header is continued (same trace ID, new span),
// anything else gets a fresh ID. The response always carries a
// traceparent header so callers can find the exported span tree.
func (s *Server) traceFor(w http.ResponseWriter, r *http.Request) (traceID string, tr *telemetry.Trace) {
	if tc, ok := telemetry.ParseTraceparent(r.Header.Get("traceparent")); ok {
		traceID = tc.TraceID
	} else {
		traceID = telemetry.NewTraceID()
	}
	w.Header().Set("Traceparent", telemetry.FormatTraceparent(traceID, telemetry.NewSpanID()))
	if s.exporter != nil {
		tr = telemetry.NewTrace("query")
		tr.SetID(traceID)
	}
	return traceID, tr
}

// exportTrace closes the root span and hands the tree to the exporter
// (non-blocking; a full queue counts a drop).
func (s *Server) exportTrace(tr *telemetry.Trace) {
	if tr == nil {
		return
	}
	tr.Root().End()
	s.exporter.Export(tr)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.met.requests.Inc()
	traceID, tr := s.traceFor(w, r)
	defer s.exportTrace(tr)
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		tr.Root().Err(err)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if (req.Query == "") == (len(req.Queries) == 0) {
		s.writeError(w, http.StatusBadRequest,
			errors.New(`exactly one of "query" or "queries" must be set`))
		return
	}
	t := s.tenantFor(req.Tenant, r)
	if t == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", req.Tenant))
		return
	}
	t.reqs.Inc()
	tr.Root().SetAttr("tenant", t.cfg.Name)

	release, pr, err := s.adm.acquire(r.Context(), t)
	if err != nil {
		tr.Root().Err(err)
		s.shedResponse(w, t, err)
		return
	}
	defer release()
	tr.Root().SetAttr("pressure", pr.String())

	opts := optionsFor(t, pr, req.MaxAnswers, time.Duration(req.TimeoutMS)*time.Millisecond)
	opts.Trace = tr
	opts.TraceID = traceID
	if req.Query != "" {
		qr := s.answerOne(r.Context(), t, req.Query, req.Strategy, pr, opts, req.IncludeXML)
		qr.TraceID = traceID
		if qr.Coalesced {
			tr.Root().SetAttr("coalesced", true)
		}
		el := time.Since(t0)
		s.met.reqNs.Observe(int64(el))
		t.reqNs.ObserveExemplar(int64(el), traceID)
		s.recordSLO(t, qr.Status >= 500, el)
		s.countResponse(qr.Status)
		writeJSON(w, qr.Status, qr)
		return
	}
	// Batch: the whole batch runs under one admission slot (one client,
	// one unit of concurrency) — items run sequentially and coalesce with
	// other clients' identical in-flight queries through the singleflight.
	out := batchResponse{Tenant: t.cfg.Name, TraceID: traceID,
		Results: make([]queryResponse, 0, len(req.Queries))}
	failed := false
	for _, q := range req.Queries {
		s.met.batchQueries.Inc()
		qr := s.answerOne(r.Context(), t, q, req.Strategy, pr, opts, req.IncludeXML)
		failed = failed || qr.Status >= 500
		out.Results = append(out.Results, qr)
	}
	el := time.Since(t0)
	s.met.reqNs.Observe(int64(el))
	t.reqNs.ObserveExemplar(int64(el), traceID)
	s.recordSLO(t, failed, el)
	s.countResponse(http.StatusOK)
	writeJSON(w, http.StatusOK, out)
}

// recordSLO folds one request outcome into the tenant's burn-rate
// watchdog and edge-detects verdict flips: the first burning tenant
// forces Pressured grading at admission (pre-emptive shedding), the
// last recovery releases it.
func (s *Server) recordSLO(t *Tenant, availErr bool, latency time.Duration) {
	st := t.slo.Record(availErr, latency)
	if t.burning.Swap(st.Burning) == st.Burning {
		return
	}
	var n int64
	if st.Burning {
		n = s.burningTenants.Add(1)
		s.met.sloTrips.Inc()
	} else {
		n = s.burningTenants.Add(-1)
	}
	s.adm.forcePressured.Store(n > 0)
}

// coalesceKey keys the answer-level singleflight: same tenant, same
// strategy, same normalized spelling, same result-shaping options →
// same in-flight execution.
func coalesceKey(tenant, strat string, pr Pressure, maxAnswers int, src string) string {
	return tenant + "\x00" + strat + "\x00" + pr.String() + "\x00" +
		strconv.Itoa(maxAnswers) + "\x00" + xpathviews.NormalizeQuery(src)
}

// answerOne serves one query for an admitted request, coalescing
// identical in-flight executions. The shared *Result is immutable once
// returned; responses only read it.
func (s *Server) answerOne(ctx context.Context, t *Tenant, src, strat string, pr Pressure, opts xpathviews.Options, includeXML bool) queryResponse {
	t0 := time.Now()
	qr := queryResponse{Query: src, Pressure: pr.String()}
	run := func() (any, error) {
		if strat == "" || strat == "resilient" {
			return t.sys.AnswerResilient(ctx, src, opts)
		}
		st, ok := parseStrategy(strat)
		if !ok {
			return nil, &badStrategyError{strat}
		}
		o := opts
		o.Strategy = st
		return t.sys.AnswerContext(ctx, src, o)
	}
	key := coalesceKey(t.cfg.Name, strat, pr, opts.MaxAnswers, src)
	v, err, shared := s.flights.Do(key, run)
	if shared && err != nil {
		// The leader failed on *its* context, budget, or pressure grade;
		// that verdict is not ours. Run solo.
		v, err = run()
		shared = false
	}
	if err != nil {
		qr.Status, qr.Error = statusForError(err), err.Error()
		qr.Answers = []string{}
		qr.ElapsedNS = int64(time.Since(t0))
		return qr
	}
	res := v.(*xpathviews.Result)
	if shared {
		s.met.coalesced.Inc()
		qr.Coalesced = true
	}
	s.met.servedByPressure[pr].Inc()
	qr.Status = http.StatusOK
	qr.Rung = res.Rung
	if qr.Rung == "" {
		qr.Rung = res.Strategy.String()
	}
	qr.Degraded = res.Degraded
	qr.DegradedReasons = res.DegradedReasons
	qr.Truncated = res.Truncated
	qr.PlanCacheHit = res.PlanCacheHit
	qr.Answers = res.Codes()
	if includeXML {
		qr.XML = make([]string, 0, len(res.Answers))
		for _, a := range res.Answers {
			x, merr := xpathviews.MarshalAnswer(a)
			if merr != nil {
				x = ""
			}
			qr.XML = append(qr.XML, x)
		}
	}
	qr.ElapsedNS = int64(time.Since(t0))
	return qr
}

type badStrategyError struct{ name string }

func (e *badStrategyError) Error() string {
	return fmt.Sprintf("unknown strategy %q (want resilient, BN, BF, MN, MV, HV or CV)", e.name)
}

func parseStrategy(name string) (xpathviews.Strategy, bool) {
	for _, st := range []xpathviews.Strategy{xpathviews.BN, xpathviews.BF, xpathviews.MN,
		xpathviews.MV, xpathviews.HV, xpathviews.CV} {
		if st.String() == name {
			return st, true
		}
	}
	return 0, false
}

// statusForError maps a pipeline failure onto an HTTP status.
func statusForError(err error) int {
	var bad *badStrategyError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest
	case errors.Is(err, xpathviews.ErrNotAnswerable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log's benefit.
		return http.StatusServiceUnavailable
	case errors.Is(err, xpathviews.ErrBudgetExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// shedResponse renders an admission rejection: 429 for tenant-scoped
// quota, 503 for process saturation or drain, both with Retry-After.
// The shed is charged to the tenant's reason-labeled counter and SLO:
// process-scope sheds are availability misses the tenant did not cause;
// a tenant tripping its own quota is not.
func (s *Server) shedResponse(w http.ResponseWriter, t *Tenant, err error) {
	var shed *ShedError
	if !errors.As(err, &shed) {
		// The caller's context died while queued — not a server failure.
		s.recordSLO(t, false, -1)
		s.countResponse(http.StatusServiceUnavailable)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	s.met.shed[shed.Reason].Inc()
	t.shedBy.With(shed.Reason).Inc()
	s.recordSLO(t, shed.Scope == "process", -1)
	status := http.StatusServiceUnavailable
	if shed.Scope == "tenant" {
		status = http.StatusTooManyRequests
	}
	secs := int64(shed.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.countResponse(status)
	writeJSON(w, status, errorResponse{Error: shed.Error(), RetryAfter: shed.RetryAfter.Milliseconds()})
}

func (s *Server) countResponse(status int) {
	switch {
	case status < 400:
		s.met.respOK.Inc()
	case status < 500:
		s.met.respClient.Inc()
	default:
		s.met.respServer.Inc()
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.countResponse(status)
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ---------------------------------------------------------------------
// /v1/explain

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("query")
	if q == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("missing query parameter"))
		return
	}
	t := s.tenantFor(r.URL.Query().Get("tenant"), r)
	if t == nil {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown tenant %q", r.URL.Query().Get("tenant")))
		return
	}
	strat := xpathviews.HV
	if name := r.URL.Query().Get("strategy"); name != "" {
		st, ok := parseStrategy(name)
		if !ok {
			s.writeError(w, http.StatusBadRequest, &badStrategyError{name})
			return
		}
		strat = st
	}
	// Explain runs the full pipeline — it is admitted like a query so a
	// debugging stampede cannot starve serving.
	release, pr, err := s.adm.acquire(r.Context(), t)
	if err != nil {
		s.shedResponse(w, t, err)
		return
	}
	defer release()
	opts := optionsFor(t, pr, 0, 0)
	opts.Strategy = strat
	ex, err := t.sys.ExplainContext(r.Context(), q, opts)
	if err != nil {
		s.writeError(w, statusForError(err), err)
		return
	}
	s.countResponse(http.StatusOK)
	writeJSON(w, http.StatusOK, ex)
}

// ---------------------------------------------------------------------
// /metrics, /healthz, /readyz

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.reg.WriteText(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Ready() {
		fmt.Fprintln(w, "ready")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "draining")
}

// ---------------------------------------------------------------------
// Drain

// BeginDrain flips readiness and closes admission: /readyz answers 503
// (so load balancers stop routing here) and every new query is shed with
// 503 + Retry-After. In-flight queries are unaffected. Idempotent.
func (s *Server) BeginDrain() {
	if s.adm.draining.CompareAndSwap(false, true) {
		s.met.drains.Inc()
	}
	s.ready.Store(false)
}

// Drain blocks until every admitted query has finished, or ctx expires —
// in which case it reports how much work was abandoned.
func (s *Server) Drain(ctx context.Context) error {
	for !s.adm.idle() {
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain deadline passed with %d queries in flight: %w",
				s.adm.inflight(), ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Shutdown is the SIGTERM path: readiness flips first, then admission
// closes, then hs's listener closes and in-flight requests finish under
// ctx's deadline (use Config.DrainTimeout if the caller has no better
// bound), and finally the slow-query log and a metrics snapshot are
// flushed to Config.DrainLog. hs must be serving s.Handler(). The
// ordering guarantees a request admitted before drain began always
// completes or is cleanly rejected — never dropped mid-flight.
func (s *Server) Shutdown(ctx context.Context, hs *http.Server) error {
	t0 := time.Now()
	s.BeginDrain()
	err := hs.Shutdown(ctx) // closes listener, then waits for active conns
	if derr := s.Drain(ctx); err == nil {
		err = derr
	}
	s.met.drainLastNs.Set(int64(time.Since(t0)))
	s.flushDrainLog(err)
	// The exporter drains last so every span from in-flight requests
	// reaches the sink before it closes.
	if s.exporter != nil {
		if cerr := s.exporter.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// flushDrainLog writes the final observability snapshot: per-tenant slow
// queries (oldest first) and the full metrics exposition.
func (s *Server) flushDrainLog(drainErr error) {
	w := s.cfg.DrainLog
	if w == nil {
		return
	}
	fmt.Fprintf(w, "=== xpvserved drain flush (err=%v) ===\n", drainErr)
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, sq := range s.tenants[n].sys.SlowQueries() {
			fmt.Fprintf(w, "slow tenant=%s query=%q strategy=%s total=%v rung=%s err=%q\n",
				n, sq.Query, sq.Strategy, sq.Total, sq.Rung, sq.Err)
		}
	}
	_ = s.reg.WriteText(w)
}
