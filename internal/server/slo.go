package server

// SLO watchdog: a rolling multi-window burn-rate tracker per tenant.
//
// Two objectives are tracked against every tenant's traffic:
//
//   - availability: the fraction of requests that do not fail
//     server-side (5xx responses and process-scope sheds are misses;
//     a tenant tripping its own 429 quota is not);
//   - latency: the fraction of *served* requests finishing under the
//     tenant's latency threshold.
//
// For each objective the tracker maintains error rates over a short
// and a long window (per-second ring buckets) and reports them as burn
// rates: observed miss rate divided by the objective's error budget
// (1 - objective). Burn 1.0 = exactly spending the budget; burn N =
// exhausting it N times too fast. The watchdog trips only when BOTH
// windows burn past the threshold — the long window proves the burn is
// sustained, the short window proves it is still happening — the
// standard multi-window, multi-burn-rate alerting shape. A tripped
// tenant flips the admission controller to Pressured grading
// (forcePressured), so sustained burn pre-emptively sheds load onto
// the cheap rung chain before saturation does it the hard way.
//
// The clock is injected so tests (and the /statusz golden) are
// deterministic.

import (
	"sync"
	"time"
)

// SLOConfig tunes the per-tenant burn-rate watchdog. Zero values pick
// the defaults noted per field.
type SLOConfig struct {
	// Availability is the availability objective (default 0.99: at most
	// 1% of requests may fail server-side).
	Availability float64
	// LatencyObjective is the fraction of served requests that must
	// finish under LatencyThreshold (default 0.95).
	LatencyObjective float64
	// LatencyThreshold bounds a "fast" request (default 250ms).
	LatencyThreshold time.Duration
	// ShortWindow and LongWindow are the two burn windows (defaults 1m
	// and 5m). LongWindow also sizes the per-second ring.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// BurnThreshold is the burn rate both windows must exceed for the
	// watchdog to trip (default 2.0).
	BurnThreshold float64
	// MinSamples is the minimum short-window request count before the
	// watchdog may trip, so a single early failure cannot flip an idle
	// tenant (default 10).
	MinSamples int64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = 0.99
	}
	if c.LatencyObjective <= 0 || c.LatencyObjective >= 1 {
		c.LatencyObjective = 0.95
	}
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 250 * time.Millisecond
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = time.Minute
	}
	if c.LongWindow <= c.ShortWindow {
		c.LongWindow = 5 * time.Minute
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 2.0
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	return c
}

// sloBucket is one second of outcomes.
type sloBucket struct {
	sec      int64 // unix second this bucket covers
	total    int64 // admitted-or-shed requests
	errs     int64 // availability misses (5xx, process sheds)
	latTotal int64 // served requests with a measured latency
	latSlow  int64 // served requests over the latency threshold
}

// SLOStatus is one tracker's point-in-time verdict.
type SLOStatus struct {
	// Requests is the long-window request count.
	Requests int64 `json:"requests"`
	// Burn rates per objective and window (0 when the window is empty).
	AvailabilityShortBurn float64 `json:"availability_short_burn"`
	AvailabilityLongBurn  float64 `json:"availability_long_burn"`
	LatencyShortBurn      float64 `json:"latency_short_burn"`
	LatencyLongBurn       float64 `json:"latency_long_burn"`
	// Burning reports the watchdog verdict: some objective burns past
	// the threshold on both windows, with enough short-window samples.
	Burning bool `json:"burning"`
}

// sloTracker is one tenant's (or the process's) rolling window state.
type sloTracker struct {
	cfg   SLOConfig
	clock func() time.Time

	mu      sync.Mutex
	buckets []sloBucket // ring of LongWindow seconds, indexed by sec % len
}

func newSLOTracker(cfg SLOConfig, clock func() time.Time) *sloTracker {
	cfg = cfg.withDefaults()
	if clock == nil {
		clock = time.Now
	}
	return &sloTracker{
		cfg:     cfg,
		clock:   clock,
		buckets: make([]sloBucket, int(cfg.LongWindow/time.Second)),
	}
}

// bucketFor returns the live bucket for sec, recycling a stale slot.
// Caller holds mu.
func (t *sloTracker) bucketFor(sec int64) *sloBucket {
	b := &t.buckets[sec%int64(len(t.buckets))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	return b
}

// Record notes one request outcome and returns the refreshed verdict.
// availErr marks an availability miss; latency is the served latency
// (negative = not served, e.g. a shed — excluded from the latency
// objective's denominator).
func (t *sloTracker) Record(availErr bool, latency time.Duration) SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	now := t.clock()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bucketFor(now.Unix())
	b.total++
	if availErr {
		b.errs++
	}
	if latency >= 0 {
		b.latTotal++
		if latency > t.cfg.LatencyThreshold {
			b.latSlow++
		}
	}
	return t.statusLocked(now)
}

// Config returns the tracker's resolved (defaulted, per-tenant
// overridden) configuration.
func (t *sloTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}.withDefaults()
	}
	return t.cfg
}

// Status returns the current verdict without recording anything.
func (t *sloTracker) Status() SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	now := t.clock()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.statusLocked(now)
}

// statusLocked scans the ring once, accumulating both windows.
func (t *sloTracker) statusLocked(now time.Time) SLOStatus {
	sec := now.Unix()
	shortFrom := sec - int64(t.cfg.ShortWindow/time.Second) + 1
	longFrom := sec - int64(len(t.buckets)) + 1
	var short, long sloBucket
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.sec < longFrom || b.sec > sec || b.total+b.latTotal == 0 {
			continue
		}
		long.total += b.total
		long.errs += b.errs
		long.latTotal += b.latTotal
		long.latSlow += b.latSlow
		if b.sec >= shortFrom {
			short.total += b.total
			short.errs += b.errs
			short.latTotal += b.latTotal
			short.latSlow += b.latSlow
		}
	}
	burn := func(bad, total int64, objective float64) float64 {
		if total == 0 {
			return 0
		}
		return (float64(bad) / float64(total)) / (1 - objective)
	}
	st := SLOStatus{
		Requests:              long.total,
		AvailabilityShortBurn: burn(short.errs, short.total, t.cfg.Availability),
		AvailabilityLongBurn:  burn(long.errs, long.total, t.cfg.Availability),
		LatencyShortBurn:      burn(short.latSlow, short.latTotal, t.cfg.LatencyObjective),
		LatencyLongBurn:       burn(long.latSlow, long.latTotal, t.cfg.LatencyObjective),
	}
	if short.total >= t.cfg.MinSamples || short.latTotal >= t.cfg.MinSamples {
		th := t.cfg.BurnThreshold
		st.Burning = (st.AvailabilityShortBurn >= th && st.AvailabilityLongBurn >= th) ||
			(st.LatencyShortBurn >= th && st.LatencyLongBurn >= th)
	}
	return st
}
