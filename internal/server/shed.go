package server

// Load shedding: the pressure level graded at admission maps onto how a
// query is answered. The mapping degrades cost, never soundness —
// pressured answers are still correct answers, they just skip the
// expensive exact machinery:
//
//	healthy   → the full AnswerResilient chain (HV → MV → contained → BN)
//	            under the tenant's full budgets;
//	pressured → the cheap chain (HV → contained → BN): the exact minimum
//	            selection rung (MV, worst-case exponential) is dropped,
//	            and step/hom budgets are halved so a pathological query
//	            cannot occupy a scarce slot for long;
//	saturated → never reaches here: admission fast-fails with 503.

import (
	"time"

	"xpathviews"
)

// pressuredBudgetDiv is how much of the tenant's step/hom budget a
// pressured call keeps (1/2).
const pressuredBudgetDiv = 2

// PressuredFallback is the rung chain served under pressure: the
// heuristic selection still gets first shot (it is cheap and equivalent
// when it works), then the sound-but-partial contained rewriting, then
// direct navigational evaluation. The exact minimum rung is skipped.
func PressuredFallback() []xpathviews.Rung {
	return []xpathviews.Rung{xpathviews.RungHV, xpathviews.RungContained, xpathviews.RungBN}
}

// optionsFor assembles one call's serving options from the tenant's
// quotas, the request's own knobs, and the admission pressure grade.
func optionsFor(t *Tenant, pr Pressure, maxAnswers int, reqTimeout time.Duration) xpathviews.Options {
	opts := xpathviews.Options{
		MaxSteps:   t.cfg.MaxSteps,
		MaxHoms:    t.cfg.MaxHoms,
		Timeout:    t.cfg.timeout(),
		MaxAnswers: maxAnswers,
	}
	if reqTimeout > 0 && (opts.Timeout == 0 || reqTimeout < opts.Timeout) {
		opts.Timeout = reqTimeout
	}
	if pr >= Pressured {
		opts.Fallback = PressuredFallback()
		if opts.MaxSteps > 0 {
			opts.MaxSteps /= pressuredBudgetDiv
		}
		if opts.MaxHoms > 0 {
			opts.MaxHoms /= pressuredBudgetDiv
		}
	}
	return opts
}
