package server

// Observability tests: trace propagation through /v1/query to the JSONL
// exporter, the /statusz page (byte-deterministic under an injected
// clock), the SLO watchdog's pressure coupling, and queue-wait
// accounting for timed-out requests.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xpathviews/internal/paperdata"
	"xpathviews/internal/telemetry"
	"xpathviews/internal/telemetry/export"
)

// fakeClock is a hand-advanced clock for deterministic SLO windows.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestTraceRoundTrip(t *testing.T) {
	var sink bytes.Buffer
	exp := export.New(&sink, 64)
	srv := newBookServer(t, Config{TraceExporter: exp}, TenantConfig{})

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req := httptest.NewRequest("POST", "/v1/query",
		strings.NewReader(fmt.Sprintf(`{"query": %q}`, paperdata.QueryE)))
	req.Header.Set("traceparent", parent)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body.String())
	}
	var qr queryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("response trace_id = %q, want the propagated ID", qr.TraceID)
	}
	tc, ok := telemetry.ParseTraceparent(rr.Header().Get("Traceparent"))
	if !ok || tc.TraceID != qr.TraceID {
		t.Fatalf("response traceparent %q does not continue the caller's trace",
			rr.Header().Get("Traceparent"))
	}

	// A request with no (or a malformed) traceparent gets a fresh ID.
	rr2, qr2 := postQuery(t, srv.Handler(), fmt.Sprintf(`{"query": %q}`, paperdata.QueryE))
	if qr2.TraceID == "" || qr2.TraceID == qr.TraceID {
		t.Fatalf("fresh trace_id = %q", qr2.TraceID)
	}
	if _, ok := telemetry.ParseTraceparent(rr2.Header().Get("Traceparent")); !ok {
		t.Fatalf("fresh response traceparent %q invalid", rr2.Header().Get("Traceparent"))
	}

	// The tenant's latency histogram retained a trace-ID exemplar.
	ten := srv.Tenant(DefaultTenant)
	if ex, ok := ten.reqNs.TailExemplar(); !ok || ex.TraceID == "" {
		t.Fatalf("tenant latency exemplar = %+v ok=%t", ex, ok)
	}

	// Shutdown drains the exporter; every response's trace ID must
	// resolve to an exported span tree with pipeline children.
	if err := srv.Shutdown(context.Background(), &http.Server{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("exported %d traces, want 2:\n%s", len(lines), sink.String())
	}
	for _, id := range []string{qr.TraceID, qr2.TraceID} {
		found := false
		for _, line := range lines {
			var tr struct {
				TraceID string `json:"trace_id"`
				Root    struct {
					Name     string            `json:"name"`
					Children []json.RawMessage `json:"children"`
				} `json:"root"`
			}
			if err := json.Unmarshal([]byte(line), &tr); err != nil {
				t.Fatalf("bad export line %q: %v", line, err)
			}
			if tr.TraceID == id {
				found = true
				if tr.Root.Name != "query" || len(tr.Root.Children) == 0 {
					t.Fatalf("span tree for %s = root %q with %d children",
						id, tr.Root.Name, len(tr.Root.Children))
				}
			}
		}
		if !found {
			t.Fatalf("trace %s not exported:\n%s", id, sink.String())
		}
	}
}

func TestStatuszGolden(t *testing.T) {
	clock := newFakeClock()
	var sink bytes.Buffer
	exp := export.New(&sink, 8)
	defer exp.Close()

	doc := paperdata.BookTree()
	acme, err := NewTenant(TenantConfig{Name: "acme", Views: []string{"//s/p"}}, doc)
	if err != nil {
		t.Fatal(err)
	}
	zeta, err := NewTenant(TenantConfig{Name: "zeta", SLOAvailability: 0.999, SLOLatencyMS: 100}, doc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Metrics:       telemetry.NewRegistry(),
		TraceExporter: exp,
		Clock:         clock.Now,
	}, []*Tenant{acme, zeta})
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("GET", "/statusz", nil)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	want := `xpvserved statusz
uptime_s: 0
ready: true
draining: false
inflight: 0
queue_waiting: 0
burning_tenants: 0
pressure_forced: false
trace_exported: 0
trace_dropped: 0
trace_queue_len: 0

tenant acme
  inflight: 0
  views: 1
  slo: availability=0.990 latency_objective=0.950 latency_threshold_ms=250
  requests_long_window: 0
  availability_burn: short=0.00 long=0.00
  latency_burn: short=0.00 long=0.00
  burning: false
  drift: armed=false ppm=0 events=0
  calibration_err: 0.000
  view 0: hits=0 bytes=56 benefit_kb=0.00 net_kb=0.00 cal_err=0.000 last_splice=0

tenant zeta
  inflight: 0
  views: 0
  slo: availability=0.999 latency_objective=0.950 latency_threshold_ms=100
  requests_long_window: 0
  availability_burn: short=0.00 long=0.00
  latency_burn: short=0.00 long=0.00
  burning: false
  drift: armed=false ppm=0 events=0
  calibration_err: 0.000
`
	if got := rr.Body.String(); got != want {
		t.Fatalf("statusz text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Same clock, same server: the bytes must not move between reads.
	rr2 := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr2, httptest.NewRequest("GET", "/statusz", nil))
	if rr2.Body.String() != want {
		t.Fatal("statusz text is not deterministic across reads")
	}

	// JSON form carries the same report, tenants sorted.
	rrj := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rrj, httptest.NewRequest("GET", "/statusz?format=json", nil))
	var rep statuszReport
	if err := json.Unmarshal(rrj.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.UptimeS != 0 || !rep.Ready || len(rep.Tenants) != 2 ||
		rep.Tenants[0].Name != "acme" || rep.Tenants[1].Name != "zeta" {
		t.Fatalf("statusz json = %+v", rep)
	}
	if rep.Trace == nil || rep.Trace.Exported != 0 {
		t.Fatalf("statusz json trace = %+v", rep.Trace)
	}
	if rep.Tenants[1].Availability != 0.999 || rep.Tenants[1].LatencyThresholdMS != 100 {
		t.Fatalf("per-tenant SLO overrides not reported: %+v", rep.Tenants[1])
	}

	// The runtime scrape is opt-in and nondeterministic; just check it
	// appears on request and not otherwise.
	rrr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rrr, httptest.NewRequest("GET", "/statusz?runtime=1", nil))
	if !strings.Contains(rrr.Body.String(), "runtime /sched/goroutines:goroutines:") {
		t.Fatalf("runtime section missing:\n%s", rrr.Body.String())
	}

	// Uptime follows the injected clock.
	clock.Advance(90 * time.Second)
	rru := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rru, httptest.NewRequest("GET", "/statusz", nil))
	if !strings.Contains(rru.Body.String(), "uptime_s: 90\n") {
		t.Fatalf("uptime not clock-driven:\n%s", rru.Body.String())
	}
}

// TestSLOWatchdogFlipsPressure drives a sustained synthetic burn
// through the watchdog and asserts the admission coupling: burning
// forces Pressured grading, recovery releases it.
func TestSLOWatchdogFlipsPressure(t *testing.T) {
	clock := newFakeClock()
	srv := newBookServer(t, Config{
		Clock: clock.Now,
		SLO: SLOConfig{
			Availability:  0.9, // error budget 10%: all-errors = burn 10
			ShortWindow:   2 * time.Second,
			LongWindow:    10 * time.Second,
			BurnThreshold: 2,
			MinSamples:    4,
		},
	}, TenantConfig{})
	ten := srv.Tenant(DefaultTenant)

	// Sustained burn: errors across two seconds, enough short-window
	// samples in each.
	for i := 0; i < 3; i++ {
		srv.recordSLO(ten, true, -1)
	}
	clock.Advance(time.Second)
	for i := 0; i < 3; i++ {
		srv.recordSLO(ten, true, -1)
	}
	if !ten.burning.Load() {
		t.Fatalf("watchdog did not trip: %+v", ten.SLOStatus())
	}
	if srv.burningTenants.Load() != 1 || !srv.adm.forcePressured.Load() {
		t.Fatal("burning tenant must force Pressured admission")
	}
	if srv.met.sloTrips.Value() != 1 {
		t.Fatalf("slo trips = %d, want 1", srv.met.sloTrips.Value())
	}

	// A request on an otherwise idle server is now served degraded.
	rr, qr := postQuery(t, srv.Handler(), fmt.Sprintf(`{"query": %q}`, paperdata.QueryE))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if qr.Pressure != "pressured" {
		t.Fatalf("pressure = %q, want pressured while the watchdog burns", qr.Pressure)
	}
	if !strings.Contains(srv.statusz(false).Tenants[0].Name, DefaultTenant) {
		t.Fatal("statusz must report the tenant")
	}

	// Recovery: the burn windows age out, a clean request flips the
	// verdict back and releases the admission override.
	clock.Advance(30 * time.Second)
	srv.recordSLO(ten, false, time.Millisecond)
	if ten.burning.Load() || srv.burningTenants.Load() != 0 || srv.adm.forcePressured.Load() {
		t.Fatal("watchdog did not recover after the windows aged out")
	}
	_, qr2 := postQuery(t, srv.Handler(), fmt.Sprintf(`{"query": %q}`, paperdata.QueryE))
	if qr2.Pressure != "healthy" {
		t.Fatalf("pressure = %q, want healthy after recovery", qr2.Pressure)
	}
}

// TestQueueTimeoutRecordsWait: a request shed by queue timeout must
// still contribute its wait to the histograms and the Retry-After
// heuristic (satellite of the admission instrumentation).
func TestQueueTimeoutRecordsWait(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := newAdmission(1, 1, 20*time.Millisecond, 0.75)
	a.queueWaitNs = reg.Histogram("xpvd_queue_wait_ns")
	ten := &Tenant{cfg: TenantConfig{Name: "x"}}
	ten.queueWaitNs = reg.Histogram(`xpvd_queue_wait_ns{tenant="x"}`)
	ten.slo = newSLOTracker(SLOConfig{}, nil)

	release, _, err := a.acquire(context.Background(), ten)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	_, _, err = a.acquire(context.Background(), ten)
	shed, ok := err.(*ShedError)
	if !ok || shed.Reason != ShedQueueTimeout {
		t.Fatalf("err = %v, want queue timeout", err)
	}
	if got := a.queueWaitNs.Snapshot().Count; got != 1 {
		t.Fatalf("process queue-wait observations = %d, want 1 (timed-out wait)", got)
	}
	if got := ten.queueWaitNs.Snapshot().Count; got != 1 {
		t.Fatalf("tenant queue-wait observations = %d, want 1", got)
	}
	if a.waitEWMA.Load() <= 0 {
		t.Fatal("timed-out wait must feed the EWMA")
	}
	if ra := a.retryAfter(); ra <= a.queueWait {
		t.Fatalf("retryAfter = %v, want > nominal %v under congestion", ra, a.queueWait)
	}
	if shed.RetryAfter <= a.queueWait {
		t.Fatalf("shed Retry-After = %v did not grow with observed waits", shed.RetryAfter)
	}
}
