package server

// Tests for POST /v1/update: the full mutation round-trip over HTTP, the
// error taxonomy, quota/drain behavior, and the update metrics.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"xpathviews"
	"xpathviews/internal/xmltree"
)

func postUpdate(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, updateResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/update", strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var ur updateResponse
	if rr.Code == http.StatusOK {
		if err := json.Unmarshal(rr.Body.Bytes(), &ur); err != nil {
			t.Fatalf("bad response body %q: %v", rr.Body.String(), err)
		}
	}
	return rr, ur
}

func bnCodes(t *testing.T, sys *xpathviews.System, q string) []string {
	t.Helper()
	res, err := sys.Answer(q, xpathviews.BN)
	if err != nil {
		t.Fatal(err)
	}
	return res.Codes()
}

// TestUpdateRoundTrip: insert over HTTP, the query surface sees the new
// node, delete it, the query surface confirms removal.
func TestUpdateRoundTrip(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	h := srv.Handler()
	sys := srv.Tenant(DefaultTenant).System()
	var sec *xmltree.Node
	sys.Document().Walk(func(n *xmltree.Node) bool {
		if n.Label == "s" {
			sec = n
			return false
		}
		return true
	})
	parent := sys.Encoding().MustCode(sec).String()
	before := bnCodes(t, sys, "//s/p")

	rr, ur := postUpdate(t, h,
		fmt.Sprintf(`{"op":"insert","parent_code":%q,"xml":"<p/>"}`, parent))
	if rr.Code != http.StatusOK {
		t.Fatalf("insert: status %d body %s", rr.Code, rr.Body.String())
	}
	if ur.Op != "insert" || ur.Code == "" || ur.NodesAdded != 1 {
		t.Fatalf("insert response: %+v", ur)
	}
	if ur.ViewsChecked != sys.NumViews() {
		t.Fatalf("checked %d views, registry has %d", ur.ViewsChecked, sys.NumViews())
	}
	if ur.DirtyViews == 0 || ur.FragmentsAdded == 0 {
		t.Fatalf("inserting a paragraph under a titled section dirtied nothing: %+v", ur)
	}
	after := bnCodes(t, sys, "//s/p")
	if !slices.Contains(after, ur.Code) || len(after) != len(before)+1 {
		t.Fatalf("query does not see the inserted node %s: before %v after %v", ur.Code, before, after)
	}

	rr, ur = postUpdate(t, h, fmt.Sprintf(`{"op":"delete","code":%q}`, ur.Code))
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d body %s", rr.Code, rr.Body.String())
	}
	if ur.Op != "delete" || ur.NodesRemoved != 1 || ur.FragmentsRemoved == 0 {
		t.Fatalf("delete response: %+v", ur)
	}
	if got := bnCodes(t, sys, "//s/p"); !slices.Equal(got, before) {
		t.Fatalf("delete did not restore the answer set: before %v after %v", before, got)
	}

	if v := srv.met.updates.Value(); v != 2 {
		t.Fatalf("xpvd_updates_total = %d, want 2", v)
	}
	if v := srv.met.updateErrs.Value(); v != 0 {
		t.Fatalf("xpvd_update_errors_total = %d, want 0", v)
	}
}

// TestUpdateErrorTaxonomy pins the HTTP status for each failure class.
func TestUpdateErrorTaxonomy(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	h := srv.Handler()
	rootCode := srv.Tenant(DefaultTenant).System().Encoding().
		MustCode(srv.Tenant(DefaultTenant).System().Document().Root()).String()
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown op", `{"op":"upsert"}`, http.StatusBadRequest},
		{"insert missing fields", `{"op":"insert"}`, http.StatusBadRequest},
		{"delete missing code", `{"op":"delete"}`, http.StatusBadRequest},
		{"bad code syntax", `{"op":"delete","code":"zap"}`, http.StatusBadRequest},
		{"unknown tenant", `{"op":"insert","tenant":"ghost","parent_code":"0","xml":"<s/>"}`, http.StatusNotFound},
		{"no such parent", `{"op":"insert","parent_code":"0.999","xml":"<p/>"}`, http.StatusNotFound},
		{"no such delete target", `{"op":"delete","code":"0.999"}`, http.StatusNotFound},
		{"schema violation", fmt.Sprintf(`{"op":"insert","parent_code":%q,"xml":"<zebra/>"}`, rootCode), http.StatusUnprocessableEntity},
		{"unparseable xml", fmt.Sprintf(`{"op":"insert","parent_code":%q,"xml":"<s>"}`, rootCode), http.StatusBadRequest},
		{"delete root", fmt.Sprintf(`{"op":"delete","code":%q}`, rootCode), http.StatusBadRequest},
	}
	for _, tc := range cases {
		rr, _ := postUpdate(t, h, tc.body)
		if rr.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, rr.Code, tc.want, rr.Body.String())
		}
	}
	// The document survived every rejected mutation intact.
	if err := srv.Tenant(DefaultTenant).System().Document().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateDraining: a draining server sheds mutations exactly like
// queries.
func TestUpdateDraining(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	srv.BeginDrain()
	rr, _ := postUpdate(t, srv.Handler(), `{"op":"insert","parent_code":"0","xml":"<a/>"}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining update: status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("draining update: no Retry-After header")
	}
}
