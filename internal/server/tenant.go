package server

// Tenancy: each tenant owns its own view registry (a private
// xpathviews.System over the shared document) plus the quotas the
// admission controller enforces — maximum in-flight requests, per-call
// step/homomorphism budgets, a per-call timeout, and a byte budget that
// caps how much fragment storage the tenant's materialized views may
// occupy. The byte budget is checked at admission time (before a view
// materializes, and before ApplyAdvice runs), per Chebotko & Fu's
// observation that view-storage cost must be bounded up front, not
// discovered at OOM time.

import (
	"fmt"
	"sync/atomic"
	"time"

	"xpathviews"
	"xpathviews/internal/telemetry"
	"xpathviews/internal/xmltree"
)

// DefaultTenant is the tenant name used when a request names none.
const DefaultTenant = "default"

// TenantConfig declares one tenant's view set and quotas. The zero value
// of every quota means "no limit".
type TenantConfig struct {
	// Name identifies the tenant in requests (JSON "tenant" field or the
	// X-Xpv-Tenant header) and in metric labels.
	Name string `json:"name"`
	// Views are materialized at tenant construction, in order, under
	// FragmentLimit and MaxViewBytes.
	Views []string `json:"views,omitempty"`
	// FragmentLimit caps one view's materialized bytes (0 = the paper's
	// 128 KB default).
	FragmentLimit int `json:"fragment_limit,omitempty"`
	// MaxViewBytes caps the tenant's *total* materialized bytes across
	// all views — the byte budget AddView and ApplyAdvice are admitted
	// against (0 = unlimited).
	MaxViewBytes int `json:"max_view_bytes,omitempty"`
	// MaxInFlight caps the tenant's concurrent queries; excess requests
	// are rejected with 429 + Retry-After (0 = only the process cap).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxSteps / MaxHoms are the per-call pipeline budgets (see
	// xpathviews.Options); 0 = unlimited.
	MaxSteps int64 `json:"max_steps,omitempty"`
	MaxHoms  int   `json:"max_homs,omitempty"`
	// TimeoutMS bounds each call with a deadline, in milliseconds
	// (0 = none). A request's own timeout_ms may only shorten it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// SLOAvailability overrides the server's availability objective for
	// this tenant, e.g. 0.999 (0 = the server default, see
	// Config.SLO.Availability).
	SLOAvailability float64 `json:"slo_availability,omitempty"`
	// SLOLatencyMS overrides the latency threshold (ms) a served request
	// must beat to count toward the latency objective (0 = the server
	// default).
	SLOLatencyMS int64 `json:"slo_latency_ms,omitempty"`
}

// timeout returns the configured per-call deadline as a duration.
func (c TenantConfig) timeout() time.Duration {
	return time.Duration(c.TimeoutMS) * time.Millisecond
}

// Tenant is one tenant's serving state: its private view registry and
// the live counters admission reads.
type Tenant struct {
	cfg TenantConfig
	sys *xpathviews.System

	inflight atomic.Int64

	// Pre-resolved per-tenant instruments (nil-safe when metrics off).
	reqs        *telemetry.Counter    // xpvd_tenant_requests_total{tenant=...}
	shed        *telemetry.Counter    // xpvd_tenant_shed_total{tenant=...}
	shedBy      *telemetry.CounterVec // xpvd_shed_total{tenant=...} × reason
	queueWaitNs *telemetry.Histogram  // xpvd_queue_wait_ns{tenant=...}
	reqNs       *telemetry.Histogram  // xpvd_tenant_request_ns{tenant=...} (exemplared)

	// slo is the tenant's burn-rate watchdog (see slo.go); burning
	// mirrors its last verdict so state flips are edge-detected.
	slo     *sloTracker
	burning atomic.Bool
}

// SLOStatus returns the tenant's current burn-rate verdict.
func (t *Tenant) SLOStatus() SLOStatus { return t.slo.Status() }

// NewTenant builds a tenant over doc: a fresh System (own view registry,
// own plan cache) with the configured views materialized under the
// tenant's byte budget. Metrics and the slow-query log are wired by
// Server construction, not here.
func NewTenant(cfg TenantConfig, doc *xmltree.Tree) (*Tenant, error) {
	if cfg.Name == "" {
		cfg.Name = DefaultTenant
	}
	sys, err := xpathviews.Open(doc)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", cfg.Name, err)
	}
	t := &Tenant{cfg: cfg, sys: sys}
	for _, v := range cfg.Views {
		if err := t.AddView(v); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.cfg.Name }

// System exposes the tenant's private serving system.
func (t *Tenant) System() *xpathviews.System { return t.sys }

// InFlight returns the tenant's current concurrent-query count.
func (t *Tenant) InFlight() int64 { return t.inflight.Load() }

// fragmentLimit resolves the per-view byte cap.
func (t *Tenant) fragmentLimit() int {
	if t.cfg.FragmentLimit > 0 {
		return t.cfg.FragmentLimit
	}
	return xpathviews.DefaultFragmentLimit
}

// AddView materializes one view for the tenant, enforcing MaxViewBytes:
// a view whose addition would push the tenant's total materialized bytes
// over budget is rolled back and rejected.
func (t *Tenant) AddView(src string) error {
	id, err := t.sys.AddView(src, t.fragmentLimit())
	if err != nil {
		return fmt.Errorf("server: tenant %q view %q: %w", t.cfg.Name, src, err)
	}
	if b := t.cfg.MaxViewBytes; b > 0 {
		if got := t.sys.Registry().TotalBytes(); got > b {
			t.sys.RemoveView(id)
			return fmt.Errorf("server: tenant %q view %q: view byte budget exceeded (%d > %d)",
				t.cfg.Name, src, got, b)
		}
	}
	return nil
}

// ApplyAdvice materializes an advisor's view set for the tenant under
// the same byte budget AddView enforces: the advice is admitted only if
// the projected bytes fit, and rolled back entirely if materialization
// lands over budget anyway (projection is an estimate).
func (t *Tenant) ApplyAdvice(adv *xpathviews.Advice) ([]int, error) {
	ids, err := t.sys.ApplyAdvice(adv)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", t.cfg.Name, err)
	}
	if b := t.cfg.MaxViewBytes; b > 0 {
		if got := t.sys.Registry().TotalBytes(); got > b {
			for _, id := range ids {
				t.sys.RemoveView(id)
			}
			return nil, fmt.Errorf("server: tenant %q: advice exceeds view byte budget (%d > %d)",
				t.cfg.Name, got, b)
		}
	}
	return ids, nil
}
