package server

// Chaos under pressure: fault injection (internal/faults) combined with
// admission-level overload. The daemon must degrade through the
// pressured rung chain in order — HV → contained → BN — as each rung's
// machinery is broken, keep answering the whole time, recover to the
// healthy path once faults clear, and expose every shed in telemetry.

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"xpathviews/internal/faults"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/telemetry"
)

// pressuredServer returns a server plus a release function such that the
// next admitted request grades Pressured (3 of 4 slots held).
func pressuredServer(t *testing.T, reg *telemetry.Registry) (*Server, func()) {
	t.Helper()
	// Table I plus a view identical to the running example: the contained
	// rung needs a view whose answers are contained in the query's, which
	// none of the four paper views provides for Q_e on its own.
	views := append(paperdata.TableIViews(), paperdata.QueryE)
	srv := newBookServer(t, Config{MaxInFlight: 4, PressuredFrac: 0.5, Metrics: reg},
		TenantConfig{Views: views})
	var releases []func()
	for i := 0; i < 3; i++ {
		release, _, err := srv.adm.acquire(context.Background(), srv.Tenant(DefaultTenant))
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, release)
	}
	return srv, func() {
		for _, r := range releases {
			r()
		}
	}
}

func TestChaosDegradesThroughRungsInOrder(t *testing.T) {
	defer faults.DisarmAll()
	reg := telemetry.NewRegistry()
	srv, relieve := pressuredServer(t, reg)
	body := fmt.Sprintf(`{"query": %q}`, paperdata.QueryE)

	ask := func(wantRung string, wantDegraded bool) {
		t.Helper()
		// Invalidate the plan cache (any view mutation bumps the plan
		// generation) so each ask exercises the full pipeline rather than
		// replaying the plan cached before the fault was armed.
		sys := srv.Tenant(DefaultTenant).System()
		id, err := sys.AddView("//s/f", 0)
		if err != nil {
			t.Fatal(err)
		}
		sys.RemoveView(id)
		rr, qr := postQuery(t, srv.Handler(), body)
		if rr.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", rr.Code, rr.Body.String())
		}
		if len(qr.Answers) == 0 {
			t.Fatalf("rung %s served no answers", qr.Rung)
		}
		if qr.Rung != wantRung {
			t.Fatalf("rung = %q (reasons %v), want %q", qr.Rung, qr.DegradedReasons, wantRung)
		}
		if qr.Degraded != wantDegraded {
			t.Fatalf("degraded = %v (rung %s, reasons %v), want %v",
				qr.Degraded, qr.Rung, qr.DegradedReasons, wantDegraded)
		}
	}

	// Pressured but fault-free: the cheap chain's first rung answers.
	ask("HV", false)

	// Break heuristic selection → the chain falls to contained rewriting.
	faults.Arm("selection.heuristic", faults.Error)
	ask("contained", true)

	// Break contained rewriting too → down to direct navigation. The
	// pressured chain never tries the exact-minimum rung (MV): it was
	// shed from the chain, not merely skipped.
	faults.Arm("rewrite.contained", faults.Error)
	ask("BN", true)

	// Panics degrade the same way errors do.
	faults.DisarmAll()
	faults.Arm("selection.heuristic", faults.Panic)
	ask("contained", true)

	// Faults clear while still pressured: back to the top of the chain.
	faults.DisarmAll()
	ask("HV", false)

	// Pressure clears: healthy serving, full chain, same answer.
	relieve()
	rr, qr := postQuery(t, srv.Handler(), body)
	if rr.Code != http.StatusOK || qr.Pressure != "healthy" || qr.Rung != "HV" {
		t.Fatalf("recovery: status %d pressure %q rung %q", rr.Code, qr.Pressure, qr.Rung)
	}
}

func TestChaosOverloadShedCountersVisible(t *testing.T) {
	defer faults.DisarmAll()
	reg := telemetry.NewRegistry()
	srv := newBookServer(t, Config{MaxInFlight: 1, QueueDepth: -1, Metrics: reg},
		TenantConfig{MaxInFlight: 2})
	faults.Arm("selection.heuristic", faults.Error)

	// Saturate the process slot, then overload from both scopes.
	release, _, err := srv.adm.acquire(context.Background(), srv.Tenant(DefaultTenant))
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := postQuery(t, srv.Handler(), `{"query": "//s/p"}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("process overload: status = %d, want 503", rr.Code)
	}
	// Second tenant slot is free but the process is full — still 503; the
	// tenant cap itself trips only when the tenant limit is the binding one.
	release()
	rel1, _, err := srv.adm.acquire(context.Background(), srv.Tenant(DefaultTenant))
	if err != nil {
		t.Fatal(err)
	}
	rel2v := srv.Tenant(DefaultTenant).inflight.Add(1) // simulate a second tenant-held slot
	_ = rel2v
	rr, _ = postQuery(t, srv.Handler(), `{"query": "//s/p"}`)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("tenant overload: status = %d, want 429", rr.Code)
	}
	srv.Tenant(DefaultTenant).inflight.Add(-1)
	rel1()

	// Recovery: the same query answers (degraded by the armed fault).
	rr, qr := postQuery(t, srv.Handler(), fmt.Sprintf(`{"query": %q}`, paperdata.QueryE))
	if rr.Code != http.StatusOK || !qr.Degraded {
		t.Fatalf("recovery under faults: status %d degraded %v rung %s", rr.Code, qr.Degraded, qr.Rung)
	}

	// Every shed and degradation is visible in the exposition.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`xpvd_shed_total{reason="queue_full"} 1`,
		`xpvd_shed_total{reason="tenant_limit"} 1`,
		`xpvd_tenant_shed_total{tenant="default"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
}
