package server

// White-box tests for the daemon core: tenancy and quotas, admission
// control, pressure-mapped shedding, answer coalescing, the HTTP
// surface, and the error taxonomy. Saturation is created by holding
// admission slots directly (not by racing slow queries), so every
// assertion is deterministic.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xpathviews"
	"xpathviews/internal/advisor"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/telemetry"
)

// newBookServer builds a server over the paper's running example with
// the Table I views on the default tenant.
func newBookServer(t *testing.T, cfg Config, tcfg TenantConfig) *Server {
	t.Helper()
	if tcfg.Name == "" {
		tcfg.Name = DefaultTenant
	}
	if tcfg.Views == nil {
		tcfg.Views = paperdata.TableIViews()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	ten, err := NewTenant(tcfg, paperdata.BookTree())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg, []*Tenant{ten})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func postQuery(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, queryResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/query", strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var qr queryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &qr); err != nil && rr.Code == http.StatusOK {
		t.Fatalf("bad response body %q: %v", rr.Body.String(), err)
	}
	return rr, qr
}

func TestQuerySingle(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	rr, qr := postQuery(t, srv.Handler(), fmt.Sprintf(`{"query": %q}`, paperdata.QueryE))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body.String())
	}
	if len(qr.Answers) == 0 {
		t.Fatal("no answers for the running example")
	}
	if qr.Rung != "HV" {
		t.Fatalf("rung = %q, want HV on a healthy server with Table I views", qr.Rung)
	}
	if qr.Pressure != "healthy" {
		t.Fatalf("pressure = %q, want healthy", qr.Pressure)
	}
	if qr.Degraded {
		t.Fatalf("degraded = true on a healthy server: %v", qr.DegradedReasons)
	}
}

func TestQueryFixedStrategyAndXML(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	body := fmt.Sprintf(`{"query": %q, "strategy": "BN", "include_xml": true}`, paperdata.QueryE)
	rr, qr := postQuery(t, srv.Handler(), body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body.String())
	}
	if qr.Rung != "BN" {
		t.Fatalf("rung = %q, want BN for a fixed strategy", qr.Rung)
	}
	if len(qr.XML) != len(qr.Answers) || len(qr.XML) == 0 {
		t.Fatalf("xml = %d entries for %d answers", len(qr.XML), len(qr.Answers))
	}
	if !strings.Contains(qr.XML[0], "<p") {
		t.Fatalf("xml[0] = %q, want a <p> subtree", qr.XML[0])
	}
}

func TestQueryBatch(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	body := fmt.Sprintf(`{"queries": [%q, "//s/p", "//zzz"]}`, paperdata.QueryE)
	req := httptest.NewRequest("POST", "/v1/query", strings.NewReader(body))
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body.String())
	}
	var br batchResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	if br.Tenant != DefaultTenant || len(br.Results) != 3 {
		t.Fatalf("batch = tenant %q, %d results", br.Tenant, len(br.Results))
	}
	if br.Results[0].Status != http.StatusOK || len(br.Results[0].Answers) == 0 {
		t.Fatalf("batch[0] = %+v", br.Results[0])
	}
	// //zzz matches nothing but is still answerable: empty result, 200.
	if br.Results[2].Status != http.StatusOK || len(br.Results[2].Answers) != 0 {
		t.Fatalf("batch[2] = %+v", br.Results[2])
	}
}

func TestQueryErrors(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"bad json", `{"query": `, http.StatusBadRequest},
		{"no query", `{}`, http.StatusBadRequest},
		{"both forms", `{"query": "//a", "queries": ["//b"]}`, http.StatusBadRequest},
		{"unknown tenant", `{"query": "//a", "tenant": "nobody"}`, http.StatusNotFound},
		{"bad strategy", `{"query": "//a", "strategy": "XX"}`, http.StatusBadRequest},
		{"unparsable query", `{"query": "//["}`, http.StatusInternalServerError},
	} {
		rr, _ := postQuery(t, srv.Handler(), tc.body)
		if rr.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, rr.Code, tc.want, rr.Body.String())
		}
	}
}

func TestTenantHeaderResolution(t *testing.T) {
	reg := telemetry.NewRegistry()
	doc := paperdata.BookTree()
	ta, _ := NewTenant(TenantConfig{Name: "alpha", Views: paperdata.TableIViews()}, doc)
	tb, _ := NewTenant(TenantConfig{Name: "beta"}, doc)
	srv, err := New(Config{Metrics: reg}, []*Tenant{ta, tb})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/query",
		strings.NewReader(fmt.Sprintf(`{"query": %q}`, paperdata.QueryE)))
	req.Header.Set("X-Xpv-Tenant", "beta")
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	var qr queryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	// beta has no views: resilient serving still answers, off the views.
	if rr.Code != http.StatusOK || len(qr.Answers) == 0 {
		t.Fatalf("status = %d, %d answers", rr.Code, len(qr.Answers))
	}
	if qr.Rung == "HV" && !qr.Degraded {
		t.Fatalf("viewless tenant answered rung %q undegraded", qr.Rung)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `xpvd_tenant_requests_total{tenant="beta"} 1`) {
		t.Fatalf("no per-tenant request counter in exposition:\n%s", sb.String())
	}
}

func TestTenantInFlightCap(t *testing.T) {
	srv := newBookServer(t, Config{MaxInFlight: 8}, TenantConfig{MaxInFlight: 1})
	ten := srv.Tenant(DefaultTenant)
	// Occupy the tenant's single slot directly.
	release, _, err := srv.adm.acquire(context.Background(), ten)
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := postQuery(t, srv.Handler(), `{"query": "//s/p"}`)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release()
	rr, _ = postQuery(t, srv.Handler(), `{"query": "//s/p"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", rr.Code)
	}
}

func TestProcessSaturationShedsWith503(t *testing.T) {
	srv := newBookServer(t, Config{MaxInFlight: 1, QueueDepth: -1, QueueWait: 5 * time.Millisecond},
		TenantConfig{})
	// QueueDepth -1 normalizes to 0: no queue, immediate shed at capacity.
	ten := srv.Tenant(DefaultTenant)
	release, _, err := srv.adm.acquire(context.Background(), ten)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rr, _ := postQuery(t, srv.Handler(), `{"query": "//s/p"}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("shed body = %q (%v)", rr.Body.String(), err)
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	srv := newBookServer(t, Config{MaxInFlight: 1, QueueDepth: 4, QueueWait: 5 * time.Millisecond},
		TenantConfig{})
	ten := srv.Tenant(DefaultTenant)
	release, _, err := srv.adm.acquire(context.Background(), ten)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	rr, _ := postQuery(t, srv.Handler(), `{"query": "//s/p"}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 after queue timeout", rr.Code)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("shed before the queue wait elapsed")
	}
}

func TestPressuredRequestsServeCheapChain(t *testing.T) {
	srv := newBookServer(t, Config{MaxInFlight: 4, PressuredFrac: 0.5}, TenantConfig{})
	ten := srv.Tenant(DefaultTenant)
	// Hold 3 of 4 slots: occupancy 3 > pressuredAt 2, next admit grades
	// Pressured.
	var releases []func()
	for i := 0; i < 3; i++ {
		release, _, err := srv.adm.acquire(context.Background(), ten)
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, release)
	}
	rr, qr := postQuery(t, srv.Handler(), fmt.Sprintf(`{"query": %q}`, paperdata.QueryE))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body.String())
	}
	if qr.Pressure != "pressured" {
		t.Fatalf("pressure = %q, want pressured at occupancy 3/4", qr.Pressure)
	}
	// The cheap chain still answers off the views here (HV is its first
	// rung), but the response records the degraded serving mode.
	if len(qr.Answers) == 0 {
		t.Fatal("pressured request lost its answers")
	}
	for _, release := range releases {
		release()
	}
	rr, qr = postQuery(t, srv.Handler(), fmt.Sprintf(`{"query": %q}`, paperdata.QueryE))
	if qr.Pressure != "healthy" || rr.Code != http.StatusOK {
		t.Fatalf("after release: pressure = %q, status = %d", qr.Pressure, rr.Code)
	}
}

func TestOptionsForPressureHalvesBudgets(t *testing.T) {
	ten, err := NewTenant(TenantConfig{Name: "q", MaxSteps: 1000, MaxHoms: 40, TimeoutMS: 200},
		paperdata.BookTree())
	if err != nil {
		t.Fatal(err)
	}
	healthy := optionsFor(ten, Healthy, 7, 0)
	if healthy.MaxSteps != 1000 || healthy.MaxHoms != 40 || healthy.Fallback != nil ||
		healthy.MaxAnswers != 7 || healthy.Timeout != 200*time.Millisecond {
		t.Fatalf("healthy opts = %+v", healthy)
	}
	pressured := optionsFor(ten, Pressured, 0, 50*time.Millisecond)
	if pressured.MaxSteps != 500 || pressured.MaxHoms != 20 {
		t.Fatalf("pressured budgets = %d steps, %d homs; want halved", pressured.MaxSteps, pressured.MaxHoms)
	}
	if pressured.Timeout != 50*time.Millisecond {
		t.Fatalf("request timeout %v did not shorten tenant timeout", pressured.Timeout)
	}
	want := PressuredFallback()
	if len(pressured.Fallback) != len(want) {
		t.Fatalf("pressured fallback = %v", pressured.Fallback)
	}
	for i := range want {
		if pressured.Fallback[i] != want[i] {
			t.Fatalf("pressured fallback = %v, want %v", pressured.Fallback, want)
		}
	}
}

func TestCoalescing(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := newBookServer(t, Config{MaxInFlight: 32, Metrics: reg}, TenantConfig{})
	// Fire identical queries concurrently; the singleflight must collapse
	// at least some of them onto one execution. Disable the plan cache?
	// No — coalescing is observable via the response flag regardless.
	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	coalesced, ok := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr, qr := postQuery(t, srv.Handler(), fmt.Sprintf(`{"query": %q}`, paperdata.QueryE))
			mu.Lock()
			defer mu.Unlock()
			if rr.Code == http.StatusOK && len(qr.Answers) > 0 {
				ok++
			}
			if qr.Coalesced {
				coalesced++
			}
		}()
	}
	wg.Wait()
	if ok != n {
		t.Fatalf("%d/%d concurrent identical queries succeeded", ok, n)
	}
	// Coalescing is timing-dependent; assert the mechanism directly too.
	var g = &srv.flights
	var hits int
	var wg2 sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			v, err, shared := g.Do("k", func() (any, error) {
				<-gate
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
			mu.Lock()
			if shared {
				hits++
			}
			mu.Unlock()
		}()
	}
	time.Sleep(10 * time.Millisecond) // let all four join the flight
	close(gate)
	wg2.Wait()
	if hits == 0 {
		t.Fatal("no Do call reported a shared result")
	}
	_ = coalesced // informational; the direct Group assertion is the guarantee
}

func TestViewByteBudget(t *testing.T) {
	ten, err := NewTenant(TenantConfig{Name: "tiny", MaxViewBytes: 1}, paperdata.BookTree())
	if err != nil {
		t.Fatal(err)
	}
	if err := ten.AddView("//s/p"); err == nil {
		t.Fatal("AddView over a 1-byte budget succeeded")
	}
	if n := ten.System().NumViews(); n != 0 {
		t.Fatalf("rejected view left %d views behind", n)
	}
	adv := &xpathviews.Advice{Views: []advisor.AdvisedView{{XPath: "//s/p"}, {XPath: "//s/t"}}}
	if _, err := ten.ApplyAdvice(adv); err == nil {
		t.Fatal("ApplyAdvice over a 1-byte budget succeeded")
	}
	if n := ten.System().NumViews(); n != 0 {
		t.Fatalf("rejected advice left %d views behind", n)
	}
	// A sane budget admits the same advice.
	roomy, err := NewTenant(TenantConfig{Name: "roomy", MaxViewBytes: 1 << 20}, paperdata.BookTree())
	if err != nil {
		t.Fatal(err)
	}
	ids, err := roomy.ApplyAdvice(adv)
	if err != nil || len(ids) != 2 {
		t.Fatalf("ApplyAdvice = %v, %v", ids, err)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	req := httptest.NewRequest("GET", "/v1/explain?query="+
		strings.ReplaceAll(paperdata.QueryE, "/", "%2F"), nil)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body.String())
	}
	var ex map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if _, ok := ex["query"]; !ok {
		t.Fatalf("explanation lacks query field: %v", ex)
	}

	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/explain", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("missing query: status = %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/explain?query=//a&strategy=XX", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad strategy: status = %d", rr.Code)
	}
}

func TestMetricsEndpointDeterministic(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	postQuery(t, srv.Handler(), fmt.Sprintf(`{"query": %q}`, paperdata.QueryE))
	get := func() string {
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("metrics status = %d", rr.Code)
		}
		return rr.Body.String()
	}
	a := get()
	for _, want := range []string{"xpvd_requests_total 1", "xpvd_inflight 0",
		"xpvd_ready 1", `xpvd_served_total{pressure="healthy"} 1`} {
		if !strings.Contains(a, want) {
			t.Errorf("exposition lacks %q:\n%s", want, a)
		}
	}
	for i := 0; i < 5; i++ {
		if b := get(); b != a {
			t.Fatalf("exposition not deterministic:\n--- a\n%s\n--- b\n%s", a, b)
		}
	}
}

func TestHealthAndReadiness(t *testing.T) {
	srv := newBookServer(t, Config{}, TenantConfig{})
	get := func(path string) int {
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr.Code
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz = %d", c)
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("readyz = %d", c)
	}
	srv.BeginDrain()
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (liveness)", c)
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", c)
	}
	rr, _ := postQuery(t, srv.Handler(), `{"query": "//s/p"}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("query during drain = %d, want 503", rr.Code)
	}
}
