package server

// Admission control: every query passes through here before any pipeline
// work runs. Two limits compose — a per-tenant in-flight cap (cheap
// atomic, rejects with 429 so one tenant cannot starve the rest) and a
// process-wide concurrency semaphore with a bounded wait queue (rejects
// with 503 + Retry-After once the queue is full or the wait deadline
// passes). The controller also grades the process's pressure level at
// admit time; the shedding policy (shed.go) maps that level onto the
// AnswerResilient rung chain.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"xpathviews/internal/telemetry"
)

// Pressure is the process load level graded at admission time.
type Pressure int32

const (
	// Healthy: occupancy below the pressured threshold — serve the full
	// pipeline (default fallback chain, full budgets).
	Healthy Pressure = iota
	// Pressured: occupancy above the threshold or requests queueing —
	// serve through the cheaper rung chain with reduced budgets.
	Pressured
	// Saturated: the request was not admitted at all (queue full, wait
	// deadline passed, or draining) — fast-fail with 503.
	Saturated
)

var pressureNames = [...]string{"healthy", "pressured", "saturated"}

func (p Pressure) String() string {
	if int(p) < len(pressureNames) {
		return pressureNames[p]
	}
	return fmt.Sprintf("Pressure(%d)", int(p))
}

// Shed reasons, used as metric labels and ShedError.Reason values.
const (
	ShedTenantLimit  = "tenant_limit"
	ShedQueueFull    = "queue_full"
	ShedQueueTimeout = "queue_timeout"
	ShedDraining     = "draining"
)

// ShedError reports a request rejected by admission control. Scope
// "tenant" maps to HTTP 429 (the caller exceeded its own quota), scope
// "process" to 503 (the whole daemon is saturated or draining); both
// carry a Retry-After hint.
type ShedError struct {
	Reason     string // ShedTenantLimit | ShedQueueFull | ShedQueueTimeout | ShedDraining
	Scope      string // "tenant" | "process"
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("server: request shed (%s, retry after %v)", e.Reason, e.RetryAfter)
}

// admission is the process-wide controller.
type admission struct {
	sem         chan struct{} // buffered to capacity; len() is the occupancy
	capacity    int
	queueDepth  int64         // waiters allowed beyond capacity
	queueWait   time.Duration // max time a queued request waits
	pressuredAt int64         // occupancy above which admits grade Pressured
	waiting     atomic.Int64
	draining    atomic.Bool

	// forcePressured, when set by the SLO watchdog, grades every admit
	// Pressured regardless of occupancy — sustained burn pre-emptively
	// sheds onto the cheap rung chain.
	forcePressured atomic.Bool

	// waitEWMA smooths observed queue waits (ns) — granted and timed-out
	// alike — and feeds the Retry-After heuristic: a congested queue
	// tells callers to back off for longer than the nominal queue wait.
	waitEWMA atomic.Int64

	queueWaitNs *telemetry.Histogram // xpvd_queue_wait_ns (nil-safe)
}

func newAdmission(capacity int, queueDepth int, queueWait time.Duration, pressuredFrac float64) *admission {
	if capacity < 1 {
		capacity = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if queueWait <= 0 {
		queueWait = 100 * time.Millisecond
	}
	if pressuredFrac <= 0 || pressuredFrac > 1 {
		pressuredFrac = 0.75
	}
	at := int64(pressuredFrac * float64(capacity))
	if at < 1 {
		at = 1
	}
	if at >= int64(capacity) {
		at = int64(capacity) - 1 // full occupancy always grades Pressured
	}
	return &admission{
		sem:         make(chan struct{}, capacity),
		capacity:    capacity,
		queueDepth:  int64(queueDepth),
		queueWait:   queueWait,
		pressuredAt: at,
	}
}

// noteWait folds one observed queue wait — granted or timed out — into
// the smoothed estimate (EWMA, α = 1/4).
func (a *admission) noteWait(w time.Duration) {
	for {
		old := a.waitEWMA.Load()
		next := old + (int64(w)-old)/4
		if a.waitEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter suggests how long a shed caller should back off: the
// nominal queue wait plus the smoothed wait actually being observed, so
// the hint grows with congestion instead of lying about it. The HTTP
// header renders at a second's granularity; the JSON body carries the
// full value.
func (a *admission) retryAfter() time.Duration {
	ra := a.queueWait
	if w := time.Duration(a.waitEWMA.Load()); w > 0 {
		ra += w
	}
	return ra
}

// acquire admits one request for tenant t, blocking in the bounded queue
// when the process is at capacity. On success it returns the release
// function and the pressure grade the request should be served under; on
// rejection it returns a *ShedError (or the context's error if the
// caller vanished while queued).
func (a *admission) acquire(ctx context.Context, t *Tenant) (release func(), pr Pressure, err error) {
	if a.draining.Load() {
		return nil, Saturated, &ShedError{Reason: ShedDraining, Scope: "process", RetryAfter: a.retryAfter()}
	}
	// Per-tenant cap first: it is the cheap check, and a tenant over its
	// own quota must not occupy a process slot or queue position.
	if max := int64(t.cfg.MaxInFlight); max > 0 {
		if t.inflight.Add(1) > max {
			t.inflight.Add(-1)
			t.shed.Inc()
			return nil, Saturated, &ShedError{Reason: ShedTenantLimit, Scope: "tenant", RetryAfter: a.retryAfter()}
		}
	} else {
		t.inflight.Add(1)
	}
	releaseTenant := func() { t.inflight.Add(-1) }

	queued := false
	select {
	case a.sem <- struct{}{}:
	default:
		// At capacity: queue if there is room, shed otherwise.
		if a.waiting.Add(1) > a.queueDepth {
			a.waiting.Add(-1)
			releaseTenant()
			return nil, Saturated, &ShedError{Reason: ShedQueueFull, Scope: "process", RetryAfter: a.retryAfter()}
		}
		queued = true
		t0 := time.Now()
		timer := time.NewTimer(a.queueWait)
		// The wait between enqueue and outcome is recorded on EVERY exit —
		// grant, timeout, caller gone — so the wait histograms and the
		// Retry-After heuristic see the congestion that shed requests
		// experienced, not just the waits that ended happily.
		recordWait := func() {
			w := time.Since(t0)
			a.noteWait(w)
			a.queueWaitNs.Observe(int64(w))
			t.queueWaitNs.Observe(int64(w))
		}
		select {
		case a.sem <- struct{}{}:
			timer.Stop()
			a.waiting.Add(-1)
			recordWait()
		case <-timer.C:
			a.waiting.Add(-1)
			recordWait()
			releaseTenant()
			return nil, Saturated, &ShedError{Reason: ShedQueueTimeout, Scope: "process", RetryAfter: a.retryAfter()}
		case <-ctx.Done():
			timer.Stop()
			a.waiting.Add(-1)
			recordWait()
			releaseTenant()
			return nil, Saturated, ctx.Err()
		}
	}
	// Drain may have begun while this request queued; admitted-but-
	// draining work is handed back so the drain deadline stays honest.
	if a.draining.Load() {
		<-a.sem
		releaseTenant()
		return nil, Saturated, &ShedError{Reason: ShedDraining, Scope: "process", RetryAfter: a.retryAfter()}
	}
	pr = Healthy
	if queued || int64(len(a.sem)) > a.pressuredAt || a.waiting.Load() > 0 ||
		a.forcePressured.Load() {
		pr = Pressured
	}
	return func() { <-a.sem; releaseTenant() }, pr, nil
}

// inflight is the current process-wide occupancy.
func (a *admission) inflight() int64 { return int64(len(a.sem)) }

// idle reports that no request is running or queued.
func (a *admission) idle() bool { return len(a.sem) == 0 && a.waiting.Load() == 0 }

// beginDrain makes every subsequent acquire fail with ShedDraining.
func (a *admission) beginDrain() { a.draining.Store(true) }
