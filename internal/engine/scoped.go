package engine

// Scoped evaluation for incremental view maintenance: AnswersWithin
// re-evaluates a pattern only over the candidates inside one subtree,
// matching them navigationally against the full document. The maintain
// subsystem picks the scope (the "dirty root") so that every answer
// whose membership a mutation can change lies inside it; this evaluator
// then recomputes exactly that slice of the answer set.

import (
	"xpathviews/internal/pattern"
	"xpathviews/internal/xmltree"
)

// AnswersWithin returns, in document order, the answers of q that lie in
// the subtree rooted at scope (inclusive). Matching is against the whole
// document — ancestors above scope participate in spine embedding and
// predicate checks as usual — only the candidate set is restricted.
func AnswersWithin(t *xmltree.Tree, q *pattern.Pattern, scope *xmltree.Node) []*xmltree.Node {
	spine := q.Spine()
	last := len(spine) - 1
	root := t.Root()

	// memo caches spine-embedding verdicts per (step, node): "can
	// spine[0..step] embed along dn's ancestor path with dn as the image
	// of spine[step], all predicates satisfied". Candidates in a subtree
	// share ancestors, so memoization keeps the walk near-linear.
	type key struct {
		step int
		n    *xmltree.Node
	}
	memo := make(map[key]bool)
	var up func(step int, dn *xmltree.Node) bool
	up = func(step int, dn *xmltree.Node) bool {
		k := key{step, dn}
		if v, ok := memo[k]; ok {
			return v
		}
		ok := matchNodeNav(spine[step], dn, spine, step)
		if ok {
			if step == 0 {
				// The virtual document root has the real root as its only
				// child: a Child-axis pattern root images the document root
				// alone, a Descendant-axis root images any node.
				ok = spine[0].Axis == pattern.Descendant || dn == root
			} else if spine[step].Axis == pattern.Child {
				ok = dn.Parent != nil && up(step-1, dn.Parent)
			} else {
				ok = false
				for a := dn.Parent; a != nil; a = a.Parent {
					if up(step-1, a) {
						ok = true
						break
					}
				}
			}
		}
		memo[k] = ok
		return ok
	}

	var out []*xmltree.Node
	var walk func(dn *xmltree.Node)
	walk = func(dn *xmltree.Node) {
		if up(last, dn) {
			out = append(out, dn)
		}
		for _, c := range dn.Children {
			walk(c)
		}
	}
	walk(scope)
	return out
}
