package engine_test

import (
	"math/rand"
	"testing"

	"xpathviews/internal/engine"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

func bookTree(t *testing.T) *xmltree.Tree {
	t.Helper()
	return paperdata.BookTree()
}

func TestAnswersOnBook(t *testing.T) {
	tree := bookTree(t)
	cases := []struct {
		q    string
		want int
	}{
		{"//s", 5},
		{"//s/p", 8},
		{"//s[t]/p", 8},
		{"//s[f//i][t]/p", 5}, // Example 5.1's result set
		{"//s[p]/f", 3},
		{"/b/s", 2},
		{"//s//s/t", 3},
		{"//*/f", 3},
		{"//b", 1}, // the root itself sits at depth 1 below the virtual root
		{"/b", 1},
		{"//f/i", 3},
		{"//s[x]", 0},
	}
	for _, c := range cases {
		q := xpath.MustParse(c.q)
		got := engine.Answers(tree, q)
		if len(got) != c.want {
			t.Errorf("Answers(%s) = %d nodes, want %d", c.q, len(got), c.want)
		}
	}
}

func TestBNAndBFAndFastAgree(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	labels := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 25; trial++ {
		tree := randomTree(r, 80+r.Intn(150), labels)
		idx := engine.BuildLabelIndex(tree)
		bn := engine.NewBN(tree)
		bf := engine.NewBF(tree)
		for qi := 0; qi < 25; qi++ {
			q := randomPattern(r, labels, 6)
			ref := engine.Answers(tree, q)
			fast := engine.AnswersFast(tree, idx, q)
			nav := bn.Eval(q)
			full := bf.Eval(q)
			if !sameNodes(tree, ref, fast) {
				t.Fatalf("AnswersFast disagrees on %s: %d vs %d", q, len(fast), len(ref))
			}
			if !sameNodes(tree, ref, nav) {
				t.Fatalf("BN disagrees on %s: %d vs %d", q, len(nav), len(ref))
			}
			if !sameNodes(tree, ref, full) {
				t.Fatalf("BF disagrees on %s: %d vs %d", q, len(full), len(ref))
			}
		}
	}
}

func TestMatchesAtRoot(t *testing.T) {
	tree, err := xmltree.ParseString(`<s><t/><p><f/></p></s>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		want bool
	}{
		{"//s[t]", true},
		{"//s[t][p/f]", true},
		{"//s[x]", false},
		{"//s//f", true},
		{"//t", false}, // pinned root has label s
		{"//*[t]", true},
	}
	for _, c := range cases {
		if got := engine.MatchesAtRoot(tree, xpath.MustParse(c.q)); got != c.want {
			t.Errorf("MatchesAtRoot(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestAnswersAtRoot(t *testing.T) {
	tree, err := xmltree.ParseString(`<s><p/><s><p/><p/></s></s>`)
	if err != nil {
		t.Fatal(err)
	}
	got := engine.AnswersAtRoot(tree, xpath.MustParse("//s//p"))
	if len(got) != 3 {
		t.Fatalf("AnswersAtRoot(//s//p) = %d, want 3", len(got))
	}
	got = engine.AnswersAtRoot(tree, xpath.MustParse("//s/p"))
	if len(got) != 1 {
		t.Fatalf("AnswersAtRoot(//s/p) = %d, want 1 (root-pinned)", len(got))
	}
}

func TestAttrPredicates(t *testing.T) {
	tree, err := xmltree.ParseString(`<r><x id="1" price="20"/><x id="2" price="5"/><x price="100"/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		want int
	}{
		{"//x[@id]", 2},
		{"//x[@price<50]", 2},
		{"//x[@price>=20]", 2},
		{"//x[@id=2]", 1},
		{"//x[@id!=2]", 1},
		{"//x[@missing]", 0},
	}
	for _, c := range cases {
		got := engine.Answers(tree, xpath.MustParse(c.q))
		if len(got) != c.want {
			t.Errorf("%s: got %d, want %d", c.q, len(got), c.want)
		}
	}
}

func TestBFPathIndexShortcut(t *testing.T) {
	tree := bookTree(t)
	bf := engine.NewBF(tree)
	if bf.IndexBytes() <= 0 {
		t.Fatal("index accounting must be positive")
	}
	got := bf.Eval(xpath.MustParse("/b/s/s/p"))
	want := engine.Answers(tree, xpath.MustParse("/b/s/s/p"))
	if len(got) != len(want) {
		t.Fatalf("path-index shortcut disagrees: %d vs %d", len(got), len(want))
	}
	if len(got) == 0 {
		t.Fatal("expected some /b/s/s/p answers")
	}
}

func sameNodes(tr *xmltree.Tree, a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, n := range a {
		seen[tr.Ord(n)] = true
	}
	for _, n := range b {
		if !seen[tr.Ord(n)] {
			return false
		}
	}
	return true
}

func randomTree(r *rand.Rand, n int, labels []string) *xmltree.Tree {
	t := xmltree.New(labels[0])
	nodes := []*xmltree.Node{t.Root()}
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		c := t.AddChild(parent, labels[r.Intn(len(labels))])
		if r.Intn(10) == 0 {
			c.SetAttr("id", labels[r.Intn(len(labels))])
		}
		nodes = append(nodes, c)
	}
	t.Renumber()
	return t
}

func randomPattern(r *rand.Rand, labels []string, maxNodes int) *pattern.Pattern {
	root := pattern.NewNode(labels[r.Intn(len(labels))], pattern.Axis(r.Intn(2)))
	nodes := []*pattern.Node{root}
	n := 1 + r.Intn(maxNodes)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		lb := labels[r.Intn(len(labels))]
		if r.Intn(6) == 0 {
			lb = pattern.Wildcard
		}
		nodes = append(nodes, parent.AddChild(lb, pattern.Axis(r.Intn(2))))
	}
	return &pattern.Pattern{Root: root, Ret: nodes[r.Intn(len(nodes))]}
}
