package engine

import (
	"xpathviews/internal/pattern"
	"xpathviews/internal/xmltree"
)

// MatchesAtRoot reports whether q embeds in t with q's root pinned to t's
// root node (root axes are ignored: the caller asserts the anchoring).
// This is how compensating queries are evaluated against materialized
// fragments, whose root is by construction the node the view's answer
// node matched. Fragments are small, so this is a direct navigational
// check rather than the DP matcher.
func MatchesAtRoot(t *xmltree.Tree, q *pattern.Pattern) bool {
	return matchesPinned(q.Root, t.Root())
}

func matchesPinned(pn *pattern.Node, dn *xmltree.Node) bool {
	if pn.Label != pattern.Wildcard && pn.Label != dn.Label {
		return false
	}
	for _, a := range pn.Attrs {
		v, ok := dn.Attr(a.Name)
		if !ok || !pattern.CompareAttr(a.Op, v, a.Value) {
			return false
		}
	}
	for _, pc := range pn.Children {
		if !existsUnder(pc, dn, matchesPinned) {
			return false
		}
	}
	return true
}

// AnswersAtRoot returns the images of q's answer node over embeddings of
// q in t with q's root pinned to t's root, in document order. It powers
// final result extraction from the Δ-view's fragments (§V). Fragments
// are small, so it navigates directly rather than building DP tables.
func AnswersAtRoot(t *xmltree.Tree, q *pattern.Pattern) []*xmltree.Node {
	spine := q.Spine()
	seen := make(map[*xmltree.Node]bool)
	var out []*xmltree.Node
	var down func(step int, dn *xmltree.Node)
	down = func(step int, dn *xmltree.Node) {
		pn := spine[step]
		if !matchNodeNav(pn, dn, spine, step) {
			return
		}
		if step == len(spine)-1 {
			if !seen[dn] {
				seen[dn] = true
				out = append(out, dn)
			}
			return
		}
		next := spine[step+1]
		if next.Axis == pattern.Child {
			for _, c := range dn.Children {
				down(step+1, c)
			}
			return
		}
		var rec func(d *xmltree.Node)
		rec = func(d *xmltree.Node) {
			for _, c := range d.Children {
				down(step+1, c)
				rec(c)
			}
		}
		rec(dn)
	}
	down(0, t.Root())
	SortNodes(t, out)
	return out
}
