package engine

import (
	"xpathviews/internal/budget"
	"xpathviews/internal/pattern"
	"xpathviews/internal/xmltree"
)

// AnswersFast evaluates q using structural joins over the label index:
// candidate lists per pattern node come from the index, child/descendant
// conditions propagate by marking parents/ancestor chains (amortized
// linear), and a top-down pass extracts the answer set. It touches only
// candidate nodes plus their ancestor chains — the behaviour a "full
// index" buys (§VI's BF) — and is the evaluator behind both BF and view
// materialization.
//
// Semantically identical to Answers (property-tested).
func AnswersFast(t *xmltree.Tree, idx *LabelIndex, q *pattern.Pattern) []*xmltree.Node {
	out, _ := AnswersFastBudget(t, idx, q, nil)
	return out
}

// AnswersFastBudget is AnswersFast under a cancellation/step budget: each
// bottom-up candidate row and each top-down propagation charges steps
// proportional to the nodes it touches. A nil budget never aborts.
func AnswersFastBudget(t *xmltree.Tree, idx *LabelIndex, q *pattern.Pattern, b *budget.B) ([]*xmltree.Node, error) {
	n := t.Size()
	qNodes := q.Nodes()
	qIdx := make(map[*pattern.Node]int, len(qNodes))
	for i, pn := range qNodes {
		qIdx[pn] = i
	}
	// sets[i] = candidate data nodes where the subtree of pattern node i
	// embeds rooted at the node.
	sets := make([][]*xmltree.Node, len(qNodes))
	// satisfied[i][ord] marks nodes meeting the child-condition of
	// pattern node i (filled while processing i, consumed by its parent).
	satisfied := make([][]bool, len(qNodes))

	for i := len(qNodes) - 1; i >= 0; i-- {
		pn := qNodes[i]
		var candidates []*xmltree.Node
		if pn.Label == pattern.Wildcard {
			candidates = t.Nodes()
		} else {
			candidates = idx.Nodes(pn.Label)
		}
		if err := b.Step(len(candidates) + 1); err != nil {
			return nil, err
		}
		var out []*xmltree.Node
	cand:
		for _, dn := range candidates {
			for _, a := range pn.Attrs {
				v, ok := dn.Attr(a.Name)
				if !ok || !pattern.CompareAttr(a.Op, v, a.Value) {
					continue cand
				}
			}
			for _, pc := range pn.Children {
				if s := satisfied[qIdx[pc]]; s == nil || !s[t.Ord(dn)] {
					continue cand
				}
			}
			out = append(out, dn)
		}
		sets[i] = out
		// Propagate to the parent's condition row.
		if i == 0 {
			break
		}
		row := make([]bool, n)
		if pn.Axis == pattern.Child {
			for _, dn := range out {
				if dn.Parent != nil {
					row[t.Ord(dn.Parent)] = true
				}
			}
		} else {
			for _, dn := range out {
				for a := dn.Parent; a != nil; a = a.Parent {
					ord := t.Ord(a)
					if row[ord] {
						break // this chain is already marked above
					}
					row[ord] = true
				}
			}
		}
		satisfied[i] = row
	}

	// Top-down: keep only candidates reachable under the root-axis rule
	// and their parents' reachable sets, along the spine only — answers
	// are what we need.
	spine := q.Spine()
	reach := make([]bool, n)
	for _, dn := range sets[0] {
		if q.Root.Axis == pattern.Child && dn.Parent != nil {
			continue
		}
		reach[t.Ord(dn)] = true
	}
	for si := 1; si < len(spine); si++ {
		pn := spine[si]
		i := qIdx[pn]
		if err := b.Step(len(sets[i]) + 1); err != nil {
			return nil, err
		}
		next := make([]bool, n)
		if pn.Axis == pattern.Child {
			for _, dn := range sets[i] {
				if dn.Parent != nil && reach[t.Ord(dn.Parent)] {
					next[t.Ord(dn)] = true
				}
			}
		} else {
			// memo: 0 unknown, 1 under-reached, 2 not
			memo := make([]int8, n)
			var under func(dn *xmltree.Node) bool
			under = func(dn *xmltree.Node) bool {
				if dn == nil {
					return false
				}
				ord := t.Ord(dn)
				if memo[ord] != 0 {
					return memo[ord] == 1
				}
				ok := reach[ord] || under(dn.Parent)
				if ok {
					memo[ord] = 1
				} else {
					memo[ord] = 2
				}
				return ok
			}
			for _, dn := range sets[i] {
				if under(dn.Parent) {
					next[t.Ord(dn)] = true
				}
			}
		}
		reach = next
	}
	retSet := sets[qIdx[q.Ret]]
	var answers []*xmltree.Node
	for _, dn := range retSet {
		if reach[t.Ord(dn)] {
			answers = append(answers, dn)
		}
	}
	SortNodes(t, answers)
	return answers, nil
}
