package engine

import (
	"xpathviews/internal/budget"
	"xpathviews/internal/faults"
	"xpathviews/internal/pattern"
	"xpathviews/internal/xmltree"
)

// Fault points at the baseline-evaluator stage boundaries (chaos tests).
var (
	fpBN = faults.New("engine.bn")
	fpBF = faults.New("engine.bf")
)

// This file implements the two direct-evaluation baselines of §VI.
//
// BN — "executing queries directly on the XML database with basic node
// index support" — is a navigational evaluator: it walks the tree top
// down, re-scanning subtrees for every descendant step. Its only index is
// the label→nodes list, used to seed descendant steps at the root.
//
// BF — "full index support to accelerate query performance" — combines
// the label index with a root-label-path index (every distinct root-to-
// node label-path, pre-materialized) and falls back to the linear-time
// matcher for patterns the path index cannot answer alone. The paper
// observes BF's index is ~4× the size of BN's (635 MB vs 150 MB for a
// 56 MB document); IndexBytes reports an equivalent accounting here.

// BN is the navigational baseline evaluator.
type BN struct {
	t *xmltree.Tree
}

// NewBN prepares a BN evaluator for t.
func NewBN(t *xmltree.Tree) *BN { return &BN{t: t} }

// Eval returns the answers of q on the document, in document order.
func (e *BN) Eval(q *pattern.Pattern) []*xmltree.Node {
	out, _ := e.EvalBudget(q, nil)
	return out
}

// EvalBudget is Eval under a cancellation/step budget: the navigational
// walk charges one step per visited candidate node and aborts with the
// budget's error. A nil budget never aborts.
func (e *BN) EvalBudget(q *pattern.Pattern, b *budget.B) ([]*xmltree.Node, error) {
	if err := fpBN.Fire(); err != nil {
		return nil, err
	}
	// Navigational: maintain the set of data nodes matched by the
	// current pattern node, found by walking, then check predicates by
	// recursive exploration. Deliberately index-free.
	seen := make(map[*xmltree.Node]bool)
	var out []*xmltree.Node
	var berr error
	spine := q.Spine()
	var walk func(step int, from *xmltree.Node, self bool)
	walk = func(step int, from *xmltree.Node, self bool) {
		pn := spine[step]
		var try func(dn *xmltree.Node)
		try = func(dn *xmltree.Node) {
			if berr != nil {
				return
			}
			if berr = b.Step(1); berr != nil {
				return
			}
			if matchNodeNav(pn, dn, spine, step) {
				if step == len(spine)-1 {
					if !seen[dn] {
						seen[dn] = true
						out = append(out, dn)
					}
				} else {
					walk(step+1, dn, false)
				}
			}
		}
		if pn.Axis == pattern.Child {
			if self {
				try(from)
			} else {
				for _, c := range from.Children {
					try(c)
				}
			}
		} else {
			var rec func(dn *xmltree.Node)
			rec = func(dn *xmltree.Node) {
				for _, c := range dn.Children {
					if berr != nil {
						return
					}
					try(c)
					rec(c)
				}
			}
			if self {
				try(from)
			}
			rec(from)
		}
	}
	// The virtual document root: treat the real root as the only child.
	virtual := &xmltree.Node{Children: []*xmltree.Node{e.t.Root()}}
	walk(0, virtual, false)
	if berr != nil {
		return nil, berr
	}
	SortNodes(e.t, out)
	return out, nil
}

// matchNodeNav checks label, attributes and all off-spine predicate
// branches of spine[step] at dn, navigationally.
func matchNodeNav(pn *pattern.Node, dn *xmltree.Node, spine []*pattern.Node, step int) bool {
	if pn.Label != pattern.Wildcard && pn.Label != dn.Label {
		return false
	}
	for _, a := range pn.Attrs {
		v, ok := dn.Attr(a.Name)
		if !ok || !pattern.CompareAttr(a.Op, v, a.Value) {
			return false
		}
	}
	for _, pc := range pn.Children {
		if step+1 < len(spine) && pc == spine[step+1] {
			continue // the spine continuation is handled by the walk
		}
		if !existsEmbedNav(pc, dn) {
			return false
		}
	}
	return true
}

// existsEmbedNav checks a predicate branch by exhaustive navigation.
func existsEmbedNav(pn *pattern.Node, dn *xmltree.Node) bool {
	var matches func(pn *pattern.Node, dn *xmltree.Node) bool
	matches = func(pn *pattern.Node, dn *xmltree.Node) bool {
		if pn.Label != pattern.Wildcard && pn.Label != dn.Label {
			return false
		}
		for _, a := range pn.Attrs {
			v, ok := dn.Attr(a.Name)
			if !ok || !pattern.CompareAttr(a.Op, v, a.Value) {
				return false
			}
		}
		for _, pc := range pn.Children {
			if !existsUnder(pc, dn, matches) {
				return false
			}
		}
		return true
	}
	return existsUnder(pn, dn, matches)
}

func existsUnder(pn *pattern.Node, dn *xmltree.Node, matches func(*pattern.Node, *xmltree.Node) bool) bool {
	if pn.Axis == pattern.Child {
		for _, c := range dn.Children {
			if matches(pn, c) {
				return true
			}
		}
		return false
	}
	var rec func(d *xmltree.Node) bool
	rec = func(d *xmltree.Node) bool {
		for _, c := range d.Children {
			if matches(pn, c) || rec(c) {
				return true
			}
		}
		return false
	}
	return rec(dn)
}

// BF is the fully indexed baseline evaluator.
type BF struct {
	t     *xmltree.Tree
	label *LabelIndex
	// paths maps a root label-path (joined with '/') to its nodes in
	// document order.
	paths map[string][]*xmltree.Node
	bytes int
}

// NewBF builds all BF indexes for t.
func NewBF(t *xmltree.Tree) *BF {
	e := &BF{t: t, label: BuildLabelIndex(t), paths: make(map[string][]*xmltree.Node)}
	var path []byte
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		mark := len(path)
		if len(path) > 0 {
			path = append(path, '/')
		}
		path = append(path, n.Label...)
		key := string(path)
		e.paths[key] = append(e.paths[key], n)
		for _, c := range n.Children {
			walk(c)
		}
		path = path[:mark]
	}
	walk(t.Root())
	for k, v := range e.paths {
		e.bytes += len(k) + 8*len(v)
	}
	for k, v := range e.label.byLabel {
		e.bytes += len(k) + 8*len(v)
	}
	return e
}

// IndexBytes reports an accounting of the index footprint, the analogue
// of the paper's 635 MB full-index figure.
func (e *BF) IndexBytes() int { return e.bytes }

// Eval answers q. Branch-free, wildcard-free, child-only patterns are
// answered straight from the path index; everything else uses the
// linear-time matcher seeded by the label index.
func (e *BF) Eval(q *pattern.Pattern) []*xmltree.Node {
	out, _ := e.EvalBudget(q, nil)
	return out
}

// EvalBudget is Eval under a cancellation/step budget. Pure path-index
// lookups are charged one step; structural-join evaluation is budgeted
// inside AnswersFastBudget.
func (e *BF) EvalBudget(q *pattern.Pattern, b *budget.B) ([]*xmltree.Node, error) {
	if err := fpBF.Fire(); err != nil {
		return nil, err
	}
	if err := b.Step(1); err != nil {
		return nil, err
	}
	if p, ok := pattern.PathOf(q); ok && q.Root.Axis == pattern.Child && q.Ret.IsLeaf() {
		pure := true
		var key []byte
		for i, s := range p.Steps {
			if s.Axis != pattern.Child || s.Label == pattern.Wildcard {
				pure = false
				break
			}
			if i > 0 {
				key = append(key, '/')
			}
			key = append(key, s.Label...)
		}
		for n := q.Root; pure && n != nil; {
			if len(n.Attrs) > 0 {
				pure = false
				break
			}
			if len(n.Children) == 0 {
				break
			}
			n = n.Children[0]
		}
		if pure {
			return e.paths[string(key)], nil
		}
	}
	// Quick reject: a required label that does not occur at all.
	reject := false
	q.Walk(func(n *pattern.Node) bool {
		if n.Label != pattern.Wildcard && e.label.Count(n.Label) == 0 {
			reject = true
			return false
		}
		return true
	})
	if reject {
		return nil, nil
	}
	return AnswersFastBudget(e.t, e.label, q, b)
}
