// Package engine evaluates tree patterns over XML trees. It provides the
// two direct-evaluation baselines of the paper's §VI — BN ("basic node
// index") and BF ("full index") — plus the shared embedding matcher that
// view materialization, fragment refinement and the test-suite's ground
// truth are built on.
package engine

import (
	"sort"

	"xpathviews/internal/pattern"
	"xpathviews/internal/xmltree"
)

// Answers computes the set of data nodes that are images of q's answer
// node under some embedding of q in t, in document order. It is the
// reference evaluator: a two-pass dynamic program, O(|q|·|t|) time.
func Answers(t *xmltree.Tree, q *pattern.Pattern) []*xmltree.Node {
	m := newMatcher(t, q)
	return m.answers()
}

// Matches reports whether q has at least one embedding in t.
func Matches(t *xmltree.Tree, q *pattern.Pattern) bool {
	m := newMatcher(t, q)
	return m.matches()
}

// matcher runs the embed DP between one pattern and one tree.
type matcher struct {
	t      *xmltree.Tree
	q      *pattern.Pattern
	qNodes []*pattern.Node
	qIdx   map[*pattern.Node]int
	nodes  []*xmltree.Node // document order; index = ord

	// feas[i] is the bottom-up feasibility row of pattern node i:
	// feas[i][ord] reports that the pattern subtree at i embeds with
	// image nodes[ord].
	feas [][]bool
	// below[i][ord] reports that feas[i] holds at some proper descendant
	// of nodes[ord].
	below [][]bool
}

func newMatcher(t *xmltree.Tree, q *pattern.Pattern) *matcher {
	m := &matcher{t: t, q: q, qNodes: q.Nodes(), nodes: t.Nodes()}
	m.qIdx = make(map[*pattern.Node]int, len(m.qNodes))
	for i, n := range m.qNodes {
		m.qIdx[n] = i
	}
	n := len(m.nodes)
	m.feas = make([][]bool, len(m.qNodes))
	m.below = make([][]bool, len(m.qNodes))
	for i := range m.feas {
		m.feas[i] = make([]bool, n)
		m.below[i] = make([]bool, n)
	}
	// Pattern nodes in reverse preorder → children before parents.
	for i := len(m.qNodes) - 1; i >= 0; i-- {
		m.fillFeas(i)
	}
	return m
}

func (m *matcher) fillFeas(i int) {
	pn := m.qNodes[i]
	row := m.feas[i]
	for ord := len(m.nodes) - 1; ord >= 0; ord-- {
		dn := m.nodes[ord]
		row[ord] = m.nodeFeasible(pn, dn)
	}
	// below row: post-order aggregation (children have larger ords but
	// below depends on children's feas+below; compute via recursion over
	// tree structure instead).
	bel := m.below[i]
	var agg func(dn *xmltree.Node) bool
	agg = func(dn *xmltree.Node) bool {
		any := false
		for _, c := range dn.Children {
			cAny := agg(c)
			if row[m.t.Ord(c)] || cAny {
				any = true
			}
		}
		bel[m.t.Ord(dn)] = any
		return any || row[m.t.Ord(dn)]
	}
	agg(m.t.Root())
}

func (m *matcher) nodeFeasible(pn *pattern.Node, dn *xmltree.Node) bool {
	if pn.Label != pattern.Wildcard && pn.Label != dn.Label {
		return false
	}
	for _, a := range pn.Attrs {
		v, ok := dn.Attr(a.Name)
		if !ok || !pattern.CompareAttr(a.Op, v, a.Value) {
			return false
		}
	}
	for _, pc := range pn.Children {
		ci := m.qIdx[pc]
		ok := false
		if pc.Axis == pattern.Child {
			for _, dc := range dn.Children {
				if m.feas[ci][m.t.Ord(dc)] {
					ok = true
					break
				}
			}
		} else {
			ok = m.below[ci][m.t.Ord(dn)]
		}
		if !ok {
			return false
		}
	}
	return true
}

func (m *matcher) matches() bool {
	rootRow := m.feas[0]
	if m.q.Root.Axis == pattern.Child {
		return rootRow[0]
	}
	for _, v := range rootRow {
		if v {
			return true
		}
	}
	return false
}

// answers runs the top-down pass: reach[i][ord] reports that pattern node
// i can take image nodes[ord] in some complete embedding.
func (m *matcher) answers() []*xmltree.Node {
	n := len(m.nodes)
	reach := make([][]bool, len(m.qNodes))
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	if m.q.Root.Axis == pattern.Child {
		if m.feas[0][0] {
			reach[0][0] = true
		}
	} else {
		copy(reach[0], m.feas[0])
	}
	// preorder: parents before children
	for i, pn := range m.qNodes {
		if i == 0 {
			continue
		}
		pi := m.qIdx[pn.Parent]
		if pn.Axis == pattern.Child {
			for ord, ok := range reach[pi] {
				if !ok {
					continue
				}
				for _, dc := range m.nodes[ord].Children {
					co := m.t.Ord(dc)
					if m.feas[i][co] {
						reach[i][co] = true
					}
				}
			}
		} else {
			// descendant: propagate down the tree
			var push func(dn *xmltree.Node, underReached bool)
			push = func(dn *xmltree.Node, underReached bool) {
				ord := m.t.Ord(dn)
				if underReached && m.feas[i][ord] {
					reach[i][ord] = true
				}
				next := underReached || reach[pi][ord]
				for _, c := range dn.Children {
					push(c, next)
				}
			}
			push(m.t.Root(), false)
		}
	}
	retRow := reach[m.qIdx[m.q.Ret]]
	var out []*xmltree.Node
	for ord, ok := range retRow {
		if ok {
			out = append(out, m.nodes[ord])
		}
	}
	return out
}

// LabelIndex maps each label to its nodes in document order — the paper's
// "basic node index".
type LabelIndex struct {
	byLabel map[string][]*xmltree.Node
}

// BuildLabelIndex scans the tree once.
func BuildLabelIndex(t *xmltree.Tree) *LabelIndex {
	idx := &LabelIndex{byLabel: make(map[string][]*xmltree.Node)}
	t.Walk(func(n *xmltree.Node) bool {
		idx.byLabel[n.Label] = append(idx.byLabel[n.Label], n)
		return true
	})
	return idx
}

// Nodes returns the document-ordered node list for a label.
func (ix *LabelIndex) Nodes(label string) []*xmltree.Node { return ix.byLabel[label] }

// AddSubtree registers every node of the subtree rooted at n (which must
// already be attached to t and renumbered) and restores document order
// for the touched labels only — incremental maintenance instead of a
// full rebuild.
func (ix *LabelIndex) AddSubtree(t *xmltree.Tree, n *xmltree.Node) {
	touched := make(map[string]struct{})
	var walk func(m *xmltree.Node)
	walk = func(m *xmltree.Node) {
		ix.byLabel[m.Label] = append(ix.byLabel[m.Label], m)
		touched[m.Label] = struct{}{}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	for label := range touched {
		SortNodes(t, ix.byLabel[label])
	}
}

// RemoveSubtree unregisters every node of the subtree rooted at n.
// Relative order of the survivors is preserved, so no re-sort is needed.
func (ix *LabelIndex) RemoveSubtree(n *xmltree.Node) {
	dead := make(map[*xmltree.Node]struct{})
	touched := make(map[string]struct{})
	var walk func(m *xmltree.Node)
	walk = func(m *xmltree.Node) {
		dead[m] = struct{}{}
		touched[m.Label] = struct{}{}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	for label := range touched {
		nodes := ix.byLabel[label]
		kept := nodes[:0]
		for _, m := range nodes {
			if _, gone := dead[m]; !gone {
				kept = append(kept, m)
			}
		}
		for i := len(kept); i < len(nodes); i++ {
			nodes[i] = nil
		}
		if len(kept) == 0 {
			delete(ix.byLabel, label)
		} else {
			ix.byLabel[label] = kept
		}
	}
}

// Count returns the number of nodes with the given label.
func (ix *LabelIndex) Count(label string) int { return len(ix.byLabel[label]) }

// SortNodes orders nodes by document order in place.
func SortNodes(t *xmltree.Tree, nodes []*xmltree.Node) {
	sort.Slice(nodes, func(i, j int) bool { return t.Ord(nodes[i]) < t.Ord(nodes[j]) })
}
