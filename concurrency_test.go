package xpathviews_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"xpathviews"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// TestConcurrentAnswerAndMutate is the acceptance race test: eight
// goroutines answering while others add, remove and compact views. Every
// answer must either succeed or fail ErrNotAnswerable (the view it
// wanted was removed mid-flight) — and under -race the locking must hold.
func TestConcurrentAnswerAndMutate(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.06, Seed: 51})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	views := []string{
		"//person/address/city",
		"//open_auction/interval/start",
		"//closed_auction/price",
		"//person/profile/age",
		"//person[address]/name",
	}
	for _, v := range views {
		if _, err := sys.AddView(v, xpathviews.DefaultFragmentLimit); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"//person/address/city",
		"//person[address/city]/name",
		"//closed_auction/price",
		"//person/profile/age",
	}

	var wg sync.WaitGroup
	// 8 answering goroutines across the serving entry points.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(g+i)%len(queries)]
				var err error
				switch g % 3 {
				case 0:
					_, err = sys.Answer(q, xpathviews.HV)
				case 1:
					_, err = sys.AnswerContext(context.Background(), q,
						xpathviews.Options{Strategy: xpathviews.MV, MaxSteps: 1 << 20})
				default:
					_, err = sys.AnswerResilient(context.Background(), q, xpathviews.Options{})
				}
				if err != nil && !errors.Is(err, xpathviews.ErrNotAnswerable) &&
					!errors.Is(err, xpathviews.ErrBudgetExceeded) {
					t.Errorf("answer %s: %v", q, err)
					return
				}
			}
		}(g)
	}
	// Mutators: churn a view in and out, and compact the filter.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			id, err := sys.AddView("//open_auction/bidder/increase", 0)
			if err != nil {
				t.Errorf("AddView: %v", err)
				return
			}
			sys.RemoveView(id)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			sys.CompactFilter()
			sys.NumViews()
		}
	}()
	wg.Wait()

	// The system must still answer correctly after the churn.
	base, err := sys.Answer(queries[0], xpathviews.BF)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Answer(queries[0], xpathviews.HV)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Codes(), ",") != strings.Join(base.Codes(), ",") {
		t.Fatal("answers drifted after concurrent churn")
	}
}

// TestConcurrentAnswerPlanCache hammers AnswerContext from 64 goroutines
// on a mixed hit/miss workload: hot queries repeat (plan-cache hits),
// cold ones rotate through unanswerable spellings (misses and cached
// negatives), and a mutator churns the view set so generations bump and
// cached plans invalidate mid-flight. Under -race this exercises the
// sharded cache, singleflight coalescing and the parallel rewrite
// together.
func TestConcurrentAnswerPlanCache(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.06, Seed: 53})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{
		"//person/address/city",
		"//open_auction/interval/start",
		"//closed_auction/price",
		"//person/profile/age",
		"//person[address]/name",
	} {
		if _, err := sys.AddView(v, xpathviews.DefaultFragmentLimit); err != nil {
			t.Fatal(err)
		}
	}
	hot := []string{
		"//person/address/city",
		"//person[address/city]/name",
		"//closed_auction/price",
		"//person/profile/age",
	}
	cold := []string{
		"//item/location",
		"//open_auction/bidder/date",
		"//person/phone",
		"//category/name",
	}

	var answerers sync.WaitGroup
	for g := 0; g < 64; g++ {
		answerers.Add(1)
		go func(g int) {
			defer answerers.Done()
			for i := 0; i < 20; i++ {
				q := hot[(g+i)%len(hot)]
				if i%5 == 4 { // every fifth call is a cold (unanswerable) query
					q = cold[(g+i)%len(cold)]
				}
				strat := xpathviews.MV
				if g%2 == 1 {
					strat = xpathviews.HV
				}
				_, err := sys.AnswerContext(context.Background(), q,
					xpathviews.Options{Strategy: strat, MaxSteps: 1 << 20})
				if err != nil && !errors.Is(err, xpathviews.ErrNotAnswerable) &&
					!errors.Is(err, xpathviews.ErrBudgetExceeded) {
					t.Errorf("answer %s: %v", q, err)
					return
				}
			}
		}(g)
	}
	// Mutator: bump the plan generation for as long as the hammering
	// lasts, so cached plans go stale while other goroutines serve from
	// them.
	stormDone := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		for {
			select {
			case <-stormDone:
				return
			default:
			}
			id, err := sys.AddView("//open_auction/bidder/increase", 0)
			if err != nil {
				t.Errorf("AddView: %v", err)
				return
			}
			sys.RemoveView(id)
		}
	}()
	answerers.Wait()
	close(stormDone)
	mutator.Wait()

	st := sys.PlanCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("workload was not mixed hit/miss: %+v", st)
	}
	// Deterministic invalidation check: one more generation bump, then a
	// warm query must notice its plan is stale.
	id, err := sys.AddView("//open_auction/bidder/increase", 0)
	if err != nil {
		t.Fatal(err)
	}
	sys.RemoveView(id)
	if _, err := sys.AnswerContext(context.Background(), hot[0],
		xpathviews.Options{Strategy: xpathviews.MV}); err != nil {
		t.Fatal(err)
	}
	if st2 := sys.PlanCacheStats(); st2.Invalidations <= st.Invalidations {
		t.Fatalf("generation bump invalidated nothing: %+v -> %+v", st, st2)
	}
	// Correctness after the storm.
	for _, q := range hot {
		base, err := sys.Answer(q, xpathviews.BF)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Answer(q, xpathviews.HV)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(res.Codes(), ",") != strings.Join(base.Codes(), ",") {
			t.Fatalf("%s: answers drifted after concurrent hammer", q)
		}
	}
}

// TestCompactFilterEquivalence: after an add/remove sequence leaves
// tombstones in the VFILTER NFA, compaction must not change any query's
// candidate set.
func TestCompactFilterEquivalence(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 52})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	keep := []string{
		"//person/address/city",
		"//person[address]/name",
		"//closed_auction/price",
	}
	for _, v := range keep {
		if _, err := sys.AddView(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	var doomed []int
	for _, v := range []string{
		"//open_auction/bidder/increase",
		"//open_auction/bidder[date]/increase",
		"//person/profile[interest]/age",
		"//item/location",
		"//open_auction/interval/start",
		"//person/name",
	} {
		id, err := sys.AddView(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		doomed = append(doomed, id)
	}
	for _, id := range doomed {
		if !sys.RemoveView(id) {
			t.Fatalf("RemoveView(%d) failed", id)
		}
	}

	queries := []string{
		"//person/address/city",
		"//person[address/city]/name",
		"//closed_auction/price",
		"//open_auction/bidder/increase",
		"//person/profile/age",
	}
	before := make([][]int, len(queries))
	for i, src := range queries {
		q, err := xpath.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = sys.Filtering(q).Candidates
	}

	sys.CompactFilter()

	for i, src := range queries {
		q, err := xpath.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		after := sys.Filtering(q).Candidates
		if fmt.Sprint(after) != fmt.Sprint(before[i]) {
			t.Errorf("%s: candidates changed across compaction: %v -> %v", src, before[i], after)
		}
	}

	// Answers unchanged too.
	for _, src := range queries[:3] {
		base, err := sys.Answer(src, xpathviews.BF)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Answer(src, xpathviews.HV)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(res.Codes(), ",") != strings.Join(base.Codes(), ",") {
			t.Fatalf("%s: answers drifted after compaction", src)
		}
	}
}
