package xpathviews_test

import (
	"fmt"
	"log"

	"xpathviews"
)

// The library's basic flow: open a document, materialize views, answer a
// query from the views and compare with direct evaluation.
func Example() {
	sys, err := xpathviews.OpenXMLString(
		`<lib><book genre="f"><title>A</title><author>X</author></book>` +
			`<book><title>B</title></book></lib>`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddView("//book[author]/title", xpathviews.DefaultFragmentLimit); err != nil {
		log.Fatal(err)
	}

	res, err := sys.Answer("//lib/book[author]/title", xpathviews.HV)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Answers {
		xml, _ := xpathviews.MarshalAnswer(a)
		fmt.Printf("%s %s\n", a.Code, xml)
	}
	// Output:
	// 0.0.1 <title>A</title>
}

// Contained rewriting returns a sound subset of answers when no
// equivalent rewriting exists — here the only view is more restrictive
// than the query.
func ExampleSystem_AnswerContained() {
	sys, err := xpathviews.OpenXMLString(
		`<lib><book><title>A</title><author>X</author></book>` +
			`<book><title>B</title></book></lib>`)
	if err != nil {
		log.Fatal(err)
	}
	// The view demands an author; the query does not.
	if _, err := sys.AddView("//book[author]/title", 0); err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Answer("//book/title", xpathviews.HV); err != nil {
		fmt.Println("equivalent rewriting:", err)
	}
	res, complete, err := sys.AnswerContained("//book/title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contained: %d answer(s), complete=%v\n", len(res.Answers), complete)
	// Output:
	// equivalent rewriting: selection: query is not answerable by the view set
	// contained: 1 answer(s), complete=false
}

// Strategies can be compared on the same system; all equivalent
// strategies return the same answers.
func ExampleStrategy() {
	sys, _ := xpathviews.OpenXMLString(`<a><b><c/></b><b/></a>`)
	sys.AddView("//a/b[c]", 0)
	for _, st := range []xpathviews.Strategy{xpathviews.BN, xpathviews.BF, xpathviews.HV} {
		res, err := sys.Answer("//a/b[c]", st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(st, res.Codes())
	}
	// Output:
	// BN [0.0]
	// BF [0.0]
	// HV [0.0]
}
