package xpathviews

// This file is the view-observatory facade: accessors for the always-on
// viewstats.Store the serving pipeline feeds (see serving.go and
// mutate.go), the design-workload hook that arms the drift detector,
// and the merged report — live attribution counters joined with the
// registry's static per-view facts (pattern, bytes, fragment count,
// content generation) — that xpvserved's GET /v1/views, /statusz, and
// the CLI -viewstats flags all render from.

import (
	"xpathviews/internal/advisor"
	"xpathviews/internal/viewstats"
)

// ViewStatsStore re-exports the observatory's accounting store.
type ViewStatsStore = viewstats.Store

// NewViewStats builds an empty observatory store; see viewstats.New.
var NewViewStats = viewstats.New

// ViewStats returns the system's observatory store (created at Open;
// nil after SetViewStats(nil)).
func (s *System) ViewStats() *ViewStatsStore { return s.vstats.Load() }

// SetViewStats attaches (or, with nil, detaches) the observatory store.
// Detaching reduces the serving path to one atomic load per call — the
// overhead guard measures the attribution path against this baseline.
func (s *System) SetViewStats(st *ViewStatsStore) { s.vstats.Store(st) }

// SetDesignWorkload arms the workload-drift detector with the workload
// the current view set was designed for: recent traffic is compared
// against this distribution and xpv_workload_drift reports the distance.
// Advise calls this automatically; call it directly when the view set
// was built from a workload file. Empty stats disarm the detector.
func (s *System) SetDesignWorkload(stats []advisor.QueryStat) {
	vs := s.vstats.Load()
	if vs == nil {
		return
	}
	hashes := make([]uint64, len(stats))
	weights := make([]int64, len(stats))
	for i, st := range stats {
		hashes[i] = viewstats.HashQuery(st.Query)
		weights[i] = int64(st.Freq())
	}
	vs.Drift.SetDesign(hashes, weights)
}

// ViewStatReport is one view's observatory row: live attribution and
// upkeep counters merged with the registry's static facts.
type ViewStatReport struct {
	ID        int    `json:"id"`
	XPath     string `json:"xpath"`
	Fragments int    `json:"fragments"`
	Bytes     int    `json:"bytes"`
	Gen       uint64 `json:"gen"`

	// Serving-side attribution.
	Hits           int64   `json:"hits"`
	FragsScanned   int64   `json:"frags_scanned"`
	FragsKept      int64   `json:"frags_kept"`
	CalibrationErr float64 `json:"calibration_err"`
	CalibrationObs int64   `json:"calibration_obs"`

	// Maintenance-side upkeep.
	MaintPasses     int64   `json:"maint_passes"`
	SpliceAdded     int64   `json:"splice_added"`
	SpliceRemoved   int64   `json:"splice_removed"`
	SpliceRefreshed int64   `json:"splice_refreshed"`
	LastSpliceSize  int64   `json:"last_splice_size"`
	IncrementalFrac float64 `json:"incremental_frac"`

	// BenefitPerKB is hits per KiB resident — the bytes-resident vs.
	// benefit ratio selection optimizes blind; NetBenefitPerKB deducts
	// the view's cumulative splice volume, so a hot view that churns
	// under every mutation ranks below an equally hot stable one.
	BenefitPerKB    float64 `json:"benefit_per_kb"`
	NetBenefitPerKB float64 `json:"net_benefit_per_kb"`
}

// ViewStatsSummary is the full observatory report: global calibration
// and drift state plus one row per registered view (view-ID order).
type ViewStatsSummary struct {
	Queries        int64   `json:"queries"`
	ScaleNsPerCost float64 `json:"scale_ns_per_cost"`
	CalibrationErr float64 `json:"calibration_err"`
	CalibrationObs int64   `json:"calibration_obs"`

	DriftArmed        bool  `json:"drift_armed"`
	DriftPPM          int64 `json:"drift_ppm"`
	DriftThresholdPPM int64 `json:"drift_threshold_ppm"`
	DriftEvents       int64 `json:"drift_events"`
	DriftRecentN      int64 `json:"drift_recent_n"`

	Views []ViewStatReport `json:"views"`
}

// ViewStatsReport snapshots the observatory, joining live counters with
// the registry under the read lock. Returns an empty summary when the
// store is detached.
func (s *System) ViewStatsReport() *ViewStatsSummary {
	sum := &ViewStatsSummary{}
	vs := s.vstats.Load()
	if vs == nil {
		return sum
	}
	sum.Queries = vs.Queries()
	sum.ScaleNsPerCost = vs.ScaleNsPerCost()
	sum.CalibrationErr, sum.CalibrationObs = vs.CalibrationError()
	sum.DriftArmed = vs.Drift.Armed()
	sum.DriftPPM = vs.Drift.LastPPM()
	sum.DriftThresholdPPM = vs.Drift.ThresholdPPM()
	sum.DriftEvents = vs.Drift.Events()
	sum.DriftRecentN = vs.Drift.RecentN()

	s.mu.RLock()
	defer s.mu.RUnlock()
	vws := s.registry.Views()
	sum.Views = make([]ViewStatReport, 0, len(vws))
	for _, v := range vws {
		st := vs.Stat(v.ID)
		r := ViewStatReport{
			ID:              v.ID,
			XPath:           v.Pattern.String(),
			Fragments:       len(v.Fragments),
			Bytes:           v.TotalBytes,
			Gen:             v.Gen,
			Hits:            st.Hits,
			FragsScanned:    st.FragsScanned,
			FragsKept:       st.FragsKept,
			CalibrationErr:  st.CalibrationErr,
			CalibrationObs:  st.CalibrationObs,
			MaintPasses:     st.MaintPasses,
			SpliceAdded:     st.SpliceAdded,
			SpliceRemoved:   st.SpliceRemoved,
			SpliceRefreshed: st.SpliceRefreshed,
			LastSpliceSize:  st.LastSpliceSize,
			IncrementalFrac: st.IncrementalFrac(),
		}
		kb := float64(v.TotalBytes) / 1024
		if kb > 0 {
			r.BenefitPerKB = float64(st.Hits) / kb
			r.NetBenefitPerKB = (float64(st.Hits) - float64(st.SpliceTotal())) / kb
		}
		sum.Views = append(sum.Views, r)
	}
	return sum
}
