package xpathviews_test

import (
	"math/rand"
	"strings"
	"testing"

	"xpathviews"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
)

func TestFacadeEndToEnd(t *testing.T) {
	sys, err := xpathviews.OpenWithFST(paperdata.BookTree(), paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range paperdata.TableIViews() {
		if _, err := sys.AddView(src, xpathviews.DefaultFragmentLimit); err != nil {
			t.Fatal(err)
		}
	}
	if sys.NumViews() != 4 {
		t.Fatalf("NumViews = %d", sys.NumViews())
	}

	var results []*xpathviews.Result
	for _, strat := range []xpathviews.Strategy{xpathviews.BN, xpathviews.BF, xpathviews.MN, xpathviews.MV, xpathviews.HV} {
		res, err := sys.Answer(paperdata.QueryE, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		results = append(results, res)
	}
	want := strings.Join(results[0].Codes(), ",")
	if want == "" {
		t.Fatal("no answers")
	}
	for _, res := range results[1:] {
		if got := strings.Join(res.Codes(), ","); got != want {
			t.Fatalf("%v answers %s, want %s", res.Strategy, got, want)
		}
	}
	// View strategies must report the selected views and filter stats.
	hv := results[4]
	if len(hv.ViewsUsed) != 2 || hv.CandidatesAfterFilter != 2 {
		t.Fatalf("HV metadata: views=%v candidates=%d", hv.ViewsUsed, hv.CandidatesAfterFilter)
	}
	mn := results[2]
	if mn.HomsComputed != 4 {
		t.Fatalf("MN must compute one homomorphism per view, got %d", mn.HomsComputed)
	}
}

func TestFacadeErrors(t *testing.T) {
	sys, err := xpathviews.OpenXMLString("<a><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Answer("not-a-query", xpathviews.BN); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := sys.AddView("also bad", 0); err == nil {
		t.Fatal("bad view accepted")
	}
	if _, err := sys.Answer("//b", xpathviews.HV); err == nil {
		t.Fatal("HV with no views must fail as not answerable")
	}
	if _, err := xpathviews.OpenXMLString("<a><b></a>"); err == nil {
		t.Fatal("malformed XML accepted")
	}
}

func TestMarshalAnswer(t *testing.T) {
	sys, _ := xpathviews.OpenXMLString("<a><b>txt</b></a>")
	res, err := sys.Answer("//b", xpathviews.BN)
	if err != nil || len(res.Answers) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	xml, err := xpathviews.MarshalAnswer(res.Answers[0])
	if err != nil || xml != "<b>txt</b>" {
		t.Fatalf("MarshalAnswer = %q, %v", xml, err)
	}
}

// TestStrategiesAgreeOnXMark is the facade-level differential test on a
// realistic document and generated views.
func TestStrategiesAgreeOnXMark(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.06, Seed: 77})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.New(78, xmark.Schema(), xmark.Attributes(), workload.Params{
		MaxDepth: 4, ProbWild: 0.2, ProbDesc: 0.2, NumPred: 1, NumNestedPath: 1,
	})
	for _, q := range gen.Positive(doc, 80, 4000) {
		if _, err := sys.AddViewPattern(q, xpathviews.DefaultFragmentLimit); err != nil {
			continue
		}
	}
	r := rand.New(rand.NewSource(79))
	_ = r
	answered := 0
	for i := 0; i < 60; i++ {
		q := gen.Query()
		base, err := sys.AnswerPattern(q, xpathviews.BF)
		if err != nil {
			t.Fatal(err)
		}
		want := strings.Join(base.Codes(), ",")
		for _, strat := range []xpathviews.Strategy{xpathviews.MN, xpathviews.MV, xpathviews.HV, xpathviews.CV} {
			res, err := sys.AnswerPattern(q, strat)
			if err != nil {
				continue // not answerable by the views — fine
			}
			answered++
			if got := strings.Join(res.Codes(), ","); got != want {
				t.Fatalf("%v on %s: %s != %s", strat, q, got, want)
			}
		}
	}
	if answered < 10 {
		t.Fatalf("only %d answered cases; differential test too weak", answered)
	}
}

func TestOpenRejectsNilishDocs(t *testing.T) {
	tr := xmltree.New("only")
	sys, err := xpathviews.Open(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Answer("/only", xpathviews.BN)
	if err != nil || len(res.Answers) != 1 {
		t.Fatalf("single-node doc: %v %v", res, err)
	}
}

// TestFacadeExtensions covers the two §VII extensions through the facade.
func TestFacadeExtensions(t *testing.T) {
	sys, err := xpathviews.OpenWithFST(paperdata.BookTree(), paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableAttributePruning()
	for _, src := range paperdata.TableIViews() {
		if _, err := sys.AddView(src, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Equivalent strategies still work with pruning enabled.
	res, err := sys.Answer(paperdata.QueryE, xpathviews.HV)
	if err != nil || len(res.Answers) != 5 {
		t.Fatalf("HV with attribute pruning: %v, %v", res, err)
	}

	// Contained rewriting: the exact view makes it complete.
	got, complete, err := sys.AnswerContained("//s[t]/p")
	if err != nil {
		t.Fatal(err)
	}
	if !complete || len(got.Answers) != 8 {
		t.Fatalf("contained: complete=%v answers=%d, want complete with 8", complete, len(got.Answers))
	}
	// A query no view certifies: empty but no error.
	got, complete, err = sys.AnswerContained("//s/f/i")
	if err != nil {
		t.Fatal(err)
	}
	if complete || len(got.Answers) != 0 {
		t.Fatalf("uncertifiable query: complete=%v answers=%d", complete, len(got.Answers))
	}
}
