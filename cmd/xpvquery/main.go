// Command xpvquery evaluates one XPath query against an XML document,
// directly or through materialized views.
//
// Usage:
//
//	xpvquery -doc site.xml '//person[address]/name'
//	xpvquery -doc site.xml -view '//person/address/city' -view '//person[address]/name' \
//	         -strategy HV '//person[address/city]/name'
//
// Output: one line per answer with its extended Dewey code and the
// serialized answer subtree (truncated).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"xpathviews"
)

type viewList []string

func (v *viewList) String() string     { return strings.Join(*v, "; ") }
func (v *viewList) Set(s string) error { *v = append(*v, s); return nil }

func main() {
	docPath := flag.String("doc", "", "XML document to query (required)")
	strategy := flag.String("strategy", "BF", "BN | BF | MN | MV | HV | CV")
	limit := flag.Int("limit", xpathviews.DefaultFragmentLimit, "per-view fragment byte cap (0 = unlimited)")
	maxShow := flag.Int("n", 20, "maximum answers to print (0 = all)")
	timeout := flag.Duration("timeout", 0, "per-query deadline, e.g. 500ms (0 = none)")
	maxAnswers := flag.Int("max-answers", 0, "truncate the result to this many answers (0 = all)")
	resilient := flag.Bool("resilient", false, "answer via the fallback chain (HV -> MV -> contained -> BN), degrading instead of failing")
	var viewSrcs viewList
	flag.Var(&viewSrcs, "view", "materialize this view (repeatable)")
	flag.Parse()

	if *docPath == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	sys, err := xpathviews.OpenXML(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	for _, v := range viewSrcs {
		if _, err := sys.AddView(v, *limit); err != nil {
			fatal(fmt.Errorf("view %s: %w", v, err))
		}
	}

	var strat xpathviews.Strategy
	switch strings.ToUpper(*strategy) {
	case "BN":
		strat = xpathviews.BN
	case "BF":
		strat = xpathviews.BF
	case "MN":
		strat = xpathviews.MN
	case "MV":
		strat = xpathviews.MV
	case "HV":
		strat = xpathviews.HV
	case "CV":
		strat = xpathviews.CV
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	opts := xpathviews.Options{
		Strategy:   strat,
		Timeout:    *timeout,
		MaxAnswers: *maxAnswers,
	}
	var res *xpathviews.Result
	if *resilient {
		res, err = sys.AnswerResilient(context.Background(), flag.Arg(0), opts)
	} else {
		res, err = sys.AnswerContext(context.Background(), flag.Arg(0), opts)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d answer(s) via %v", len(res.Answers), res.Strategy)
	if res.Rung != "" {
		fmt.Printf(" (rung %s)", res.Rung)
	}
	if len(res.ViewsUsed) > 0 {
		fmt.Printf(" using views %v (candidates after filter: %d)", res.ViewsUsed, res.CandidatesAfterFilter)
	}
	if res.Partial {
		fmt.Print(" [partial: contained rewriting]")
	}
	if res.Truncated {
		fmt.Print(" [truncated]")
	}
	fmt.Println()
	if res.Degraded {
		fmt.Printf("degraded: %s\n", strings.Join(res.DegradedReasons, "; "))
	}
	for i, a := range res.Answers {
		if *maxShow > 0 && i >= *maxShow {
			fmt.Printf("... and %d more\n", len(res.Answers)-i)
			break
		}
		xml, err := xpathviews.MarshalAnswer(a)
		if err != nil {
			xml = "<?>"
		}
		if len(xml) > 120 {
			xml = xml[:117] + "..."
		}
		fmt.Printf("%-16s %s\n", a.Code, xml)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpvquery:", err)
	os.Exit(1)
}
