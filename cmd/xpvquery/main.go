// Command xpvquery evaluates one XPath query against an XML document,
// directly or through materialized views.
//
// Usage:
//
//	xpvquery -doc site.xml '//person[address]/name'
//	xpvquery -doc site.xml -view '//person/address/city' -view '//person[address]/name' \
//	         -strategy HV '//person[address/city]/name'
//
// Output: one line per answer with its extended Dewey code and the
// serialized answer subtree (truncated).
//
// Observability: -explain prints the query plan (surviving and selected
// views, plan-cache status, per-stage timings and the span tree)
// instead of answers; -explain-json emits the same as JSON. -slowlog
// arms the slow-query log at a threshold and prints retained entries
// after the run; -metrics dumps the metrics exposition; -viewstats
// dumps the view-observatory report (per-view hit attribution and
// benefit-per-KB, cost-model calibration, workload-drift state).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xpathviews"
)

type viewList []string

func (v *viewList) String() string     { return strings.Join(*v, "; ") }
func (v *viewList) Set(s string) error { *v = append(*v, s); return nil }

func main() {
	docPath := flag.String("doc", "", "XML document to query (required)")
	strategy := flag.String("strategy", "BF", "BN | BF | MN | MV | HV | CV")
	limit := flag.Int("limit", xpathviews.DefaultFragmentLimit, "per-view fragment byte cap (0 = unlimited)")
	maxShow := flag.Int("n", 20, "maximum answers to print (0 = all)")
	timeout := flag.Duration("timeout", 0, "per-query deadline, e.g. 500ms (0 = none)")
	maxAnswers := flag.Int("max-answers", 0, "truncate the result to this many answers (0 = all)")
	resilient := flag.Bool("resilient", false, "answer via the fallback chain (HV -> MV -> contained -> BN), degrading instead of failing")
	explain := flag.Bool("explain", false, "print the query plan (views, covers, cache status, stage timings) instead of answers")
	explainJSON := flag.Bool("explain-json", false, "like -explain, but emit JSON")
	slowlog := flag.Duration("slowlog", 0, "arm the slow-query log at this threshold, e.g. 1ms, and print entries after the run (0 = off)")
	metrics := flag.Bool("metrics", false, "dump the metrics text exposition after the run")
	viewstats := flag.Bool("viewstats", false, "dump the view-observatory report (per-view attribution, cost calibration, workload drift) as JSON after the run")
	traceparent := flag.String("traceparent", "", `join this W3C traceparent header ("new" = start a fresh trace); the trace ID lands in latency exemplars and slow-log entries, and the propagated header is printed`)
	var viewSrcs viewList
	flag.Var(&viewSrcs, "view", "materialize this view (repeatable)")
	flag.Parse()

	if *docPath == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	sys, err := xpathviews.OpenXML(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	for _, v := range viewSrcs {
		if _, err := sys.AddView(v, *limit); err != nil {
			fatal(fmt.Errorf("view %s: %w", v, err))
		}
	}

	var strat xpathviews.Strategy
	switch strings.ToUpper(*strategy) {
	case "BN":
		strat = xpathviews.BN
	case "BF":
		strat = xpathviews.BF
	case "MN":
		strat = xpathviews.MN
	case "MV":
		strat = xpathviews.MV
	case "HV":
		strat = xpathviews.HV
	case "CV":
		strat = xpathviews.CV
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	opts := xpathviews.Options{
		Strategy:   strat,
		Timeout:    *timeout,
		MaxAnswers: *maxAnswers,
	}
	if *traceparent != "" {
		var traceID string
		if tc, ok := xpathviews.ParseTraceparent(*traceparent); ok {
			traceID = tc.TraceID
		} else if *traceparent == "new" {
			traceID = xpathviews.NewTraceID()
		} else {
			fatal(fmt.Errorf(`invalid traceparent %q (want a W3C header value or "new")`, *traceparent))
		}
		opts.TraceID = traceID
		fmt.Printf("traceparent: %s\n", xpathviews.FormatTraceparent(traceID, xpathviews.NewSpanID()))
	}
	if *slowlog > 0 {
		sys.SetSlowQueryThreshold(*slowlog)
	}
	if *explain || *explainJSON {
		ex, err := sys.ExplainContext(context.Background(), flag.Arg(0), opts)
		if err != nil {
			fatal(err)
		}
		if *explainJSON {
			buf, err := ex.JSON()
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(buf))
		} else {
			fmt.Print(ex.Text())
		}
		dumpObs(sys, *slowlog, *metrics, *viewstats)
		return
	}
	var res *xpathviews.Result
	if *resilient {
		res, err = sys.AnswerResilient(context.Background(), flag.Arg(0), opts)
	} else {
		res, err = sys.AnswerContext(context.Background(), flag.Arg(0), opts)
	}
	if err != nil {
		dumpObs(sys, *slowlog, *metrics, *viewstats)
		fatal(err)
	}
	fmt.Printf("%d answer(s) via %v", len(res.Answers), res.Strategy)
	if res.Rung != "" {
		fmt.Printf(" (rung %s)", res.Rung)
	}
	if len(res.ViewsUsed) > 0 {
		fmt.Printf(" using views %v (candidates after filter: %d)", res.ViewsUsed, res.CandidatesAfterFilter)
	}
	if res.Partial {
		fmt.Print(" [partial: contained rewriting]")
	}
	if res.Truncated {
		fmt.Print(" [truncated]")
	}
	fmt.Println()
	if res.Degraded {
		fmt.Printf("degraded: %s\n", strings.Join(res.DegradedReasons, "; "))
	}
	for i, a := range res.Answers {
		if *maxShow > 0 && i >= *maxShow {
			fmt.Printf("... and %d more\n", len(res.Answers)-i)
			break
		}
		xml, err := xpathviews.MarshalAnswer(a)
		if err != nil {
			xml = "<?>"
		}
		if len(xml) > 120 {
			xml = xml[:117] + "..."
		}
		fmt.Printf("%-16s %s\n", a.Code, xml)
	}
	dumpObs(sys, *slowlog, *metrics, *viewstats)
}

// dumpObs prints the armed observability artifacts after the run: the
// slow-query log (when -slowlog armed it) and the metrics exposition
// (when -metrics asked for it).
func dumpObs(sys *xpathviews.System, slowlog time.Duration, metrics, viewstats bool) {
	if slowlog > 0 {
		entries := sys.SlowQueries()
		fmt.Printf("\nslow queries (>= %v): %d\n", slowlog, len(entries))
		for _, e := range entries {
			fmt.Printf("  %v  %s  strategy=%s total=%v parse=%v filter=%v select=%v rewrite=%v cache_hit=%t",
				e.Time.Format("15:04:05.000"), e.Query, e.Strategy,
				e.Total, e.Parse, e.Filter, e.Select, e.Rewrite, e.CacheHit)
			if len(e.Views) > 0 {
				fmt.Printf(" views=%v", e.Views)
			}
			if e.TraceID != "" {
				fmt.Printf(" trace_id=%s", e.TraceID)
			}
			fmt.Println()
		}
	}
	if metrics {
		fmt.Println("\nmetrics:")
		if err := sys.DumpMetrics(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "xpvquery: dump metrics:", err)
		}
	}
	if viewstats {
		fmt.Println("\nview stats:")
		buf, err := json.MarshalIndent(sys.ViewStatsReport(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpvquery: view stats:", err)
			return
		}
		fmt.Println(string(buf))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpvquery:", err)
	os.Exit(1)
}
