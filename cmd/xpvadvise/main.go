// Command xpvadvise replays a recorded workload and advises which views
// to materialize under a space budget.
//
// Usage:
//
//	xpvgen -queries 500 -positive -scale 0.2 > workload.txt
//	xpvadvise -workload workload.txt -scale 0.2 -budget 262144
//	xpvadvise -workload workload.txt -doc site.xml -budget 262144 -compare -apply
//
// The workload file holds one query per line, optionally prefixed with
// "freq<TAB>" (see internal/workload). -compare also evaluates the
// naive baseline (materialize the most frequent queries verbatim at the
// same budget); -apply materializes the advice and reports the fraction
// of workload traffic actually answered from views (HV, then MV).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"xpathviews"
	"xpathviews/internal/advisor"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

func main() {
	wlPath := flag.String("workload", "", "workload file (required): one query per line, optional 'freq<TAB>' prefix")
	docPath := flag.String("doc", "", "XML document to advise over (default: generate an XMark document)")
	scale := flag.Float64("scale", 0.2, "generated document scale (ignored with -doc)")
	seed := flag.Int64("seed", 2008, "generated document seed (ignored with -doc)")
	budget := flag.Int("budget", 256<<10, "byte budget for the materialized set")
	perView := flag.Int("per-view", 0, "per-view byte cap (0 = the budget)")
	maxCand := flag.Int("max-candidates", 0, "candidate pool cap (0 = default)")
	exact := flag.Int("exact", 0, "use the exact selector when the pool is at most this large (0 = greedy only)")
	compare := flag.Bool("compare", false, "also evaluate the naive top-k baseline at the same budget")
	apply := flag.Bool("apply", false, "apply the advice and report the realized view-answered fraction")
	asJSON := flag.Bool("json", false, "emit the advice as JSON")
	viewstats := flag.Bool("viewstats", false, "with -apply, dump the view-observatory report (per-view attribution, calibration, drift) as JSON after the replay")
	flag.Parse()

	if *wlPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*wlPath, *docPath, *scale, *seed, *budget, *perView, *maxCand, *exact, *compare, *apply, *asJSON, *viewstats); err != nil {
		fmt.Fprintln(os.Stderr, "xpvadvise:", err)
		os.Exit(1)
	}
}

func run(wlPath, docPath string, scale float64, seed int64, budget, perView, maxCand, exact int, compare, apply, asJSON, viewstats bool) error {
	f, err := os.Open(wlPath)
	if err != nil {
		return err
	}
	entries, err := workload.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("workload %s is empty", wlPath)
	}
	stats := advisor.StatsFromEntries(entries)

	var sys *xpathviews.System
	if docPath != "" {
		df, err := os.Open(docPath)
		if err != nil {
			return err
		}
		sys, err = xpathviews.OpenXML(df)
		df.Close()
		if err != nil {
			return err
		}
	} else {
		sys, err = xpathviews.Open(xmark.Generate(xmark.Config{Scale: scale, Seed: seed}))
		if err != nil {
			return err
		}
	}

	adv, err := sys.Advise(stats, xpathviews.AdviceOptions{
		ByteBudget:     budget,
		PerViewLimit:   perView,
		MaxCandidates:  maxCand,
		ExactThreshold: exact,
	})
	if err != nil {
		return err
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(adv); err != nil {
			return err
		}
	} else {
		fmt.Printf("workload: %d distinct queries, %d total calls\n", len(entries), totalFreq(entries))
		fmt.Printf("candidates: %d generated, %d tried, %d kept\n",
			adv.CandidatesGenerated, adv.CandidatesTried, adv.CandidatesKept)
		selector := "greedy"
		if adv.Exact {
			selector = "exact"
		}
		fmt.Printf("advised set (%s): %d views, %d / %d bytes\n", selector, len(adv.Views), adv.TotalBytes, adv.ByteBudget)
		for _, v := range adv.Views {
			fmt.Printf("  %8d B  %3d frag  %-14s %s\n", v.Bytes, v.Fragments, v.Source, v.XPath)
		}
		fmt.Printf("predicted coverage: %.1f%% of traffic (%d/%d queries, %d/%d calls)\n",
			100*adv.Predicted.WeightedFraction,
			adv.Predicted.QueriesAnswerable, adv.Predicted.Queries,
			adv.Predicted.FreqAnswerable, adv.Predicted.TotalFreq)
	}

	if compare {
		naive, naiveBytes := advisor.NaiveTopK(sys.Document(), sys.Encoding(), nil, stats, budget)
		cov := advisor.Evaluate(naive, stats)
		fmt.Printf("naive top-k baseline: %d views, %d bytes, %.1f%% of traffic (%d/%d calls)\n",
			len(naive), naiveBytes, 100*cov.WeightedFraction, cov.FreqAnswerable, cov.TotalFreq)
	}

	if apply {
		ids, err := sys.ApplyAdvice(adv)
		if err != nil {
			return err
		}
		fmt.Printf("applied: %d views materialized (ids %v)\n", len(ids), ids)
		answered, total := 0, 0
		for _, e := range entries {
			q, err := xpath.Parse(e.Query)
			if err != nil {
				continue
			}
			total += e.Freq
			if _, err := sys.AnswerPattern(q, xpathviews.HV); err == nil {
				answered += e.Freq
			} else if errors.Is(err, xpathviews.ErrNotAnswerable) {
				if _, err := sys.AnswerPattern(q, xpathviews.MV); err == nil {
					answered += e.Freq
				}
			}
		}
		if total > 0 {
			fmt.Printf("realized: %.1f%% of traffic answered from views (%d/%d calls)\n",
				100*float64(answered)/float64(total), answered, total)
		}
		if viewstats {
			// The replay above exercised exactly the design workload
			// Advise armed the drift detector with, so the report shows
			// the attribution the advised set earns on its own traffic.
			fmt.Println("view stats:")
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(sys.ViewStatsReport()); err != nil {
				return err
			}
		}
	}
	return nil
}

func totalFreq(entries []workload.Entry) int {
	n := 0
	for _, e := range entries {
		n += e.Freq
	}
	return n
}
