// Command xpvgen generates the experiment inputs: XMark-like documents
// and YFilter-style query/view workloads.
//
// Usage:
//
//	xpvgen -doc -scale 0.5 -seed 1 > site.xml
//	xpvgen -queries 1000 -maxdepth 4 -wild 0.2 -desc 0.2 -pred 1 -nested 1
//	xpvgen -queries 100 -positive -scale 0.1   # only queries with answers
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
)

func main() {
	doc := flag.Bool("doc", false, "emit an XMark-like XML document to stdout")
	queries := flag.Int("queries", 0, "emit N generated XPath queries, one per line")
	positive := flag.Bool("positive", false, "with -queries: keep only queries with non-empty results on a generated document")
	scale := flag.Float64("scale", 0.5, "document scale factor (1.0 ≈ 70k nodes)")
	seed := flag.Int64("seed", 2008, "generator seed")
	maxdepth := flag.Int("maxdepth", 4, "max_depth")
	wild := flag.Float64("wild", 0.2, "prob_wild")
	desc := flag.Float64("desc", 0.2, "prob_edge (descendant-axis probability)")
	pred := flag.Int("pred", 1, "num_pred (attribute predicates)")
	nested := flag.Int("nested", 1, "num_nestedpath (branch predicates)")
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	switch {
	case *doc:
		tree := xmark.Generate(xmark.Config{Scale: *scale, Seed: *seed})
		fmt.Fprintln(os.Stderr, "nodes:", tree.Size())
		if err := xmltree.WriteXML(out, tree.Root()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	case *queries > 0:
		gen := workload.New(*seed, xmark.Schema(), xmark.Attributes(), workload.Params{
			MaxDepth: *maxdepth, ProbWild: *wild, ProbDesc: *desc,
			NumPred: *pred, NumNestedPath: *nested,
		})
		if *positive {
			tree := xmark.Generate(xmark.Config{Scale: *scale, Seed: *seed})
			for _, q := range gen.Positive(tree, *queries, *queries*60) {
				fmt.Fprintln(out, q)
			}
		} else {
			for i := 0; i < *queries; i++ {
				fmt.Fprintln(out, gen.Query())
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
