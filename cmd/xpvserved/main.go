// Command xpvserved serves XPath-over-materialized-views as an
// HTTP/JSON daemon with per-tenant view registries and quotas,
// admission control, overload load-shedding onto the resilient rung
// chain, answer-level request coalescing, and graceful drain on
// SIGTERM.
//
// Usage:
//
//	xpvserved -doc site.xml -view '//person/address/city' -addr :8080
//	xpvserved -xmark 0.1 -tenants tenants.json
//
// Endpoints:
//
//	POST /v1/query    {"query": "...", ...} or {"queries": ["...", ...]}
//	POST /v1/update   {"op":"insert","parent_code":"0.8","xml":"<p/>"} or {"op":"delete","code":"0.8.9"}
//	GET  /v1/explain  ?query=...&tenant=...&strategy=HV
//	GET  /metrics     deterministic text exposition
//	GET  /statusz     per-tenant SLO burn rates + p99 exemplars (?format=json, ?runtime=1)
//	GET  /healthz     liveness (always 200 while the process runs)
//	GET  /readyz      readiness (503 once drain begins)
//
// Observability: every /v1/query response carries a W3C traceparent
// header (joining the caller's trace when one is propagated);
// -trace-export appends each request's span tree as one JSON line to a
// file, and -pprof serves net/http/pprof on a separate listener so
// profiling traffic never competes with serving admission.
//
// On SIGTERM/SIGINT the daemon stops accepting work (readiness flips
// first so load balancers can react), finishes every in-flight query
// under -drain-timeout, then flushes the slow-query log and a final
// metrics snapshot to stderr and drains the trace exporter.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xpathviews/internal/server"
	"xpathviews/internal/telemetry/export"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
)

type viewList []string

func (v *viewList) String() string     { return strings.Join(*v, "; ") }
func (v *viewList) Set(s string) error { *v = append(*v, s); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	docPath := flag.String("doc", "", "XML document to serve (mutually exclusive with -xmark)")
	xmarkScale := flag.Float64("xmark", 0, "serve a synthetic XMark-style document at this scale instead of -doc")
	seed := flag.Int64("seed", 1, "synthetic document seed")
	tenantsPath := flag.String("tenants", "", "JSON tenant config file ([{name, views, max_in_flight, ...}, ...]); omitted = a single default tenant")
	maxInflight := flag.Int("max-inflight", 0, "process-wide concurrent query cap (0 = 4x GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue depth beyond the cap (0 = the cap)")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "max time a queued request waits before shedding")
	pressuredFrac := flag.Float64("pressured-frac", 0.75, "occupancy fraction above which queries are served degraded")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline on SIGTERM")
	slowlog := flag.Duration("slowlog", 100*time.Millisecond, "slow-query log threshold (0 = off)")
	maxInflightTenant := flag.Int("tenant-max-inflight", 0, "default tenant's concurrent-query cap (0 = unlimited)")
	limit := flag.Int("limit", 0, "default tenant's per-view fragment byte cap (0 = library default)")
	traceExport := flag.String("trace-export", "", `append each request's span tree as JSONL to this file ("-" = stdout, empty = off)`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate listen address (empty = off)")
	sloAvailability := flag.Float64("slo-availability", 0, "default availability objective, e.g. 0.99 (0 = the server default)")
	sloLatency := flag.Duration("slo-latency", 0, "default latency threshold for the SLO watchdog, e.g. 250ms (0 = the server default)")
	var views viewList
	flag.Var(&views, "view", "materialize this view for the default tenant (repeatable)")
	flag.Parse()

	doc, err := loadDoc(*docPath, *xmarkScale, *seed)
	if err != nil {
		log.Fatalf("xpvserved: %v", err)
	}

	cfgs := []server.TenantConfig{{
		Name:          server.DefaultTenant,
		Views:         views,
		FragmentLimit: *limit,
		MaxInFlight:   *maxInflightTenant,
	}}
	if *tenantsPath != "" {
		data, err := os.ReadFile(*tenantsPath)
		if err != nil {
			log.Fatalf("xpvserved: %v", err)
		}
		cfgs = nil
		if err := json.Unmarshal(data, &cfgs); err != nil {
			log.Fatalf("xpvserved: parse %s: %v", *tenantsPath, err)
		}
	}
	tenants := make([]*server.Tenant, 0, len(cfgs))
	for _, cfg := range cfgs {
		t, err := server.NewTenant(cfg, doc)
		if err != nil {
			log.Fatalf("xpvserved: %v", err)
		}
		tenants = append(tenants, t)
		log.Printf("tenant %q: %d views materialized", t.Name(), t.System().NumViews())
	}

	var exp *export.Exporter
	if *traceExport != "" {
		var w io.Writer = os.Stdout
		if *traceExport != "-" {
			f, err := os.OpenFile(*traceExport, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("xpvserved: trace export: %v", err)
			}
			w = f
		}
		exp = export.New(w, export.DefaultQueueDepth)
		log.Printf("xpvserved: exporting traces to %s", *traceExport)
	}

	srv, err := server.New(server.Config{
		MaxInFlight:        *maxInflight,
		QueueDepth:         *queueDepth,
		QueueWait:          *queueWait,
		PressuredFrac:      *pressuredFrac,
		DrainTimeout:       *drainTimeout,
		SlowQueryThreshold: *slowlog,
		DrainLog:           os.Stderr,
		TraceExporter:      exp,
		SLO: server.SLOConfig{
			Availability:     *sloAvailability,
			LatencyThreshold: *sloLatency,
		},
	}, tenants)
	if err != nil {
		log.Fatalf("xpvserved: %v", err)
	}

	if *pprofAddr != "" {
		// pprof rides its own mux on its own listener: profiling traffic
		// never touches serving admission, and the endpoints stay off the
		// public address entirely unless asked for.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("xpvserved: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("xpvserved: pprof: %v", err)
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("xpvserved listening on %s (%d tenants)", *addr, len(tenants))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("xpvserved: %v received, draining (deadline %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx, hs); err != nil {
			log.Printf("xpvserved: drain: %v", err)
			os.Exit(1)
		}
		log.Printf("xpvserved: drained cleanly")
	case err := <-errc:
		log.Fatalf("xpvserved: serve: %v", err)
	}
}

// loadDoc resolves the served document: a file, or a synthetic XMark
// tree, defaulting to a small synthetic one so the daemon runs with no
// arguments.
func loadDoc(path string, scale float64, seed int64) (*xmltree.Tree, error) {
	if path != "" && scale > 0 {
		return nil, fmt.Errorf("-doc and -xmark are mutually exclusive")
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return xmltree.Parse(f)
	}
	if scale <= 0 {
		scale = 0.05
	}
	return xmark.Generate(xmark.Config{Scale: scale, Seed: seed}), nil
}
