package main

// Join-kernel driver (-join): runs the rewrite stage in a tight loop on
// the serving benchmark fixture (8-view person query over XMark) and
// prints the per-stage split, sequential versus the prefix-partitioned
// parallel join. Combine with -cpuprofile to capture the join path for
// `go tool pprof` — the loop spends most of its samples in the
// loser-tree merge build and the per-fragment embeds.

import (
	"fmt"
	"io"
	"time"

	"xpathviews/internal/dewey"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

var joinViews = []string{
	"//person/name",
	"//person/emailaddress",
	"//person/phone",
	"//person/address/city",
	"//person/homepage",
	"//person/creditcard",
	"//person/profile/age",
	"//person/watches/watch",
}

const joinQuery = "//person[emailaddress][phone][address/city][homepage][creditcard][profile/age][watches/watch]/name"

func runJoin(w io.Writer, quick bool) error {
	scale, iters := 1.0, 200
	if quick {
		scale, iters = 0.3, 50
	}
	fmt.Fprintf(w, "join kernel: XMark scale=%.1f, %d views, %d iterations per mode\n",
		scale, len(joinViews), iters)
	doc := xmark.Generate(xmark.Config{Scale: scale, Seed: 2008})
	enc, fst, err := dewey.EncodeTree(doc)
	if err != nil {
		return err
	}
	reg := views.NewRegistry(doc, enc)
	for _, v := range joinViews {
		if _, err := reg.Add(xpath.MustParse(v), 0); err != nil {
			return err
		}
	}
	q := pattern.Minimize(xpath.MustParse(joinQuery))
	sel, err := selection.Minimum(q, reg.ViewList)
	if err != nil {
		return err
	}
	jp, err := rewrite.PlanJoin(q, sel.Covers)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %8s\n",
		"mode", "total/op", "refine", "join", "build", "extract", "workers")
	for _, mode := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par-2", 2}, {"par-4", 4}} {
		var refine, join, build, extract int64
		joinWorkers := 1
		start := time.Now()
		for i := 0; i < iters; i++ {
			r, err := rewrite.ExecuteOptions(q, sel, fst, nil,
				rewrite.Options{MaxWorkers: mode.workers, Plan: jp})
			if err != nil {
				return err
			}
			refine += r.RefineNanos
			join += r.JoinNanos
			build += r.JoinBuildNanos
			extract += r.ExtractNanos
			if r.JoinWorkers > joinWorkers {
				joinWorkers = r.JoinWorkers
			}
		}
		n := int64(iters)
		fmt.Fprintf(w, "%-12s %10v %10v %10v %10v %10v %8d\n",
			mode.name,
			time.Since(start)/time.Duration(n),
			time.Duration(refine/n), time.Duration(join/n),
			time.Duration(build/n), time.Duration(extract/n),
			joinWorkers)
	}
	fmt.Fprintln(w, "note: on a single-core host the parallel modes measure fan-out overhead, not speedup")
	return nil
}
