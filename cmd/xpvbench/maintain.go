package main

// View-maintenance benchmark (-maintain): runs the same harness as
// TestMaintainBenchReport (internal/experiments) and prints its two
// tables — incremental maintenance vs full rematerialization across
// inserted-subtree sizes, and the plan-cache hit rate under an update
// storm with scoped vs global invalidation. Unlike `make bench-maintain`
// this does not rewrite BENCH_maintain.json; it is the interactive view.

import (
	"fmt"
	"io"
	"text/tabwriter"

	"xpathviews/internal/experiments"
)

func runMaintain(out io.Writer, quick bool) error {
	cfg := experiments.MaintainDefault()
	if quick {
		cfg = experiments.MaintainQuick()
	}
	fmt.Fprintf(out, "maintenance benchmark: scale=%.2f iters=%d storm_rounds=%d\n\n",
		cfg.Scale, cfg.Iters, cfg.StormRounds)

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	rows, err := experiments.MaintainBench(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== incremental maintenance vs full rematerialization ==")
	fmt.Fprintln(w, "subtree\tnodes\tincremental\tfull remat\tspeedup\tdirty views/op")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d ns/op\t%d ns/op\t%.1fx\t%.1f\n",
			r.Name, r.SubtreeNodes, r.IncNsPerOp, r.FullNsPerOp, r.Speedup, r.DirtyViews)
	}
	fmt.Fprintln(w)
	w.Flush()

	fmt.Fprintln(w, "== update storm: plan-cache hit rate by invalidation policy ==")
	fmt.Fprintln(w, "policy\trounds\tqueries\thits\thit rate")
	for _, scoped := range []bool{true, false} {
		row, err := experiments.UpdateStorm(cfg, scoped)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2f\n",
			row.Mode, row.Rounds, row.Queries, row.Hits, row.HitRate)
	}
	return w.Flush()
}
