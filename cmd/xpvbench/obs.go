package main

// Telemetry-overhead benchmark (-obs): measures the serving hot path
// (plan-cache hit, same fixture as BenchmarkAnswerPlanCache) in three
// configurations — metrics disabled, metrics enabled (the default), and
// fully traced — and writes BENCH_obs.json. The headline numbers are
// the metrics overhead (must stay in the noise: atomics and a few
// time.Now calls) and the tracing overhead (allocates by design, paid
// only by explained/traced calls).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"xpathviews"
	"xpathviews/internal/telemetry/export"
	"xpathviews/internal/xmark"
)

// obsViews and obsQuery mirror the serving benchmark fixture: a
// 16-view set and a 4-view query on an XMark document.
var obsViews = []string{
	"//person/name",
	"//person/emailaddress",
	"//person/phone",
	"//person/address/city",
	"//person/homepage",
	"//person/creditcard",
	"//person/profile/age",
	"//person/watches/watch",
	"//person//name",
	"//person//city",
	"//person//age",
	"//person//phone",
	"//person//emailaddress",
	"//person//homepage",
	"//person//creditcard",
	"//person//watch",
}

const obsQuery = "//person[address/city][profile/age][phone]/name"

// bestOf2 damps scheduler/GC noise.
func bestOf2(f func(b *testing.B)) testing.BenchmarkResult {
	r1 := testing.Benchmark(f)
	r2 := testing.Benchmark(f)
	if r2.NsPerOp() < r1.NsPerOp() {
		return r2
	}
	return r1
}

func runObs(w io.Writer, quick bool) error {
	scale := 0.05
	if quick {
		scale = 0.02
	}
	doc := xmark.Generate(xmark.Config{Scale: scale, Seed: 2008})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		return err
	}
	for _, v := range obsViews {
		if _, err := sys.AddView(v, 0); err != nil {
			return fmt.Errorf("view %s: %w", v, err)
		}
	}
	ctx := context.Background()
	opts := xpathviews.Options{Strategy: xpathviews.MV}
	if _, err := sys.AnswerContext(ctx, obsQuery, opts); err != nil {
		return err // warm the plan cache: every measured op is a hit
	}
	answer := func(b *testing.B, opts xpathviews.Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.AnswerContext(ctx, obsQuery, opts); err != nil {
				b.Fatal(err)
			}
		}
	}

	sys.SetMetricsRegistry(nil)
	disabled := bestOf2(func(b *testing.B) { answer(b, opts) })

	sys.SetMetricsRegistry(xpathviews.NewMetricsRegistry())
	enabled := bestOf2(func(b *testing.B) { answer(b, opts) })

	// Tenant-labeled metrics: names resolved once at SetMetricsTenant,
	// recording must match the unlabeled path (same atomics).
	sys.SetMetricsTenant(xpathviews.NewMetricsRegistry(), "bench")
	labeled := bestOf2(func(b *testing.B) { answer(b, opts) })
	sys.SetMetricsRegistry(xpathviews.NewMetricsRegistry())

	traced := bestOf2(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Trace = xpathviews.NewTrace()
			if _, err := sys.AnswerContext(ctx, obsQuery, o); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Fully exported: span tree built per call, trace ID threaded for
	// exemplars, tree handed to the async JSONL exporter. The queue is
	// sized to the run and drained outside the timer so the measured
	// delta is what the serving path actually pays synchronously (the ID
	// stamp and a non-blocking channel send); the deferred encode cost
	// is the writer goroutine's, off the request path.
	exported := bestOf2(func(b *testing.B) {
		b.ReportAllocs()
		exp := export.New(io.Discard, b.N+1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Trace = xpathviews.NewTrace()
			o.TraceID = "4bf92f3577b34da6a3ce929d0e0e4736"
			o.Trace.SetID(o.TraceID)
			if _, err := sys.AnswerContext(ctx, obsQuery, o); err != nil {
				b.Fatal(err)
			}
			exp.Export(o.Trace)
		}
		b.StopTimer()
		if exp.Dropped() > 0 {
			b.Fatalf("exporter dropped %d traces with a run-sized queue", exp.Dropped())
		}
		if err := exp.Close(); err != nil {
			b.Fatal(err)
		}
	})

	// Synchronous hand-off cost only: same traced call, the trace handed
	// to an exporter that accepts nothing (intake closed), so the delta
	// over `traced` is exactly the ID stamp plus the non-blocking
	// Export call — the part a request actually waits on. The JSONL
	// encode above is the writer goroutine's CPU, which overlaps serving
	// on a multi-core host but serializes into `exported` here.
	expClosed := export.New(io.Discard, 1)
	if err := expClosed.Close(); err != nil {
		return err
	}
	sendOnly := bestOf2(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Trace = xpathviews.NewTrace()
			o.TraceID = "4bf92f3577b34da6a3ce929d0e0e4736"
			o.Trace.SetID(o.TraceID)
			if _, err := sys.AnswerContext(ctx, obsQuery, o); err != nil {
				b.Fatal(err)
			}
			expClosed.Export(o.Trace)
		}
	})

	pct := func(base, with testing.BenchmarkResult) float64 {
		return 100 * (float64(with.NsPerOp()) - float64(base.NsPerOp())) / float64(base.NsPerOp())
	}
	fmt.Fprintf(w, "== telemetry overhead on the plan-cache hit path (scale %.2f) ==\n", scale)
	fmt.Fprintf(w, "metrics off:  %v/op, %d allocs/op\n", disabled.NsPerOp(), disabled.AllocsPerOp())
	fmt.Fprintf(w, "metrics on:   %v/op, %d allocs/op (%+.1f%%)\n",
		enabled.NsPerOp(), enabled.AllocsPerOp(), pct(disabled, enabled))
	fmt.Fprintf(w, "labeled:      %v/op, %d allocs/op (%+.1f%%)\n",
		labeled.NsPerOp(), labeled.AllocsPerOp(), pct(disabled, labeled))
	fmt.Fprintf(w, "traced:       %v/op, %d allocs/op (%+.1f%%)\n",
		traced.NsPerOp(), traced.AllocsPerOp(), pct(disabled, traced))
	fmt.Fprintf(w, "exported:     %v/op, %d allocs/op (%+.1f%%)\n",
		exported.NsPerOp(), exported.AllocsPerOp(), pct(disabled, exported))
	fmt.Fprintf(w, "export sync:  %v/op, %d allocs/op (%+.1f%% over traced)\n",
		sendOnly.NsPerOp(), sendOnly.AllocsPerOp(), pct(traced, sendOnly))

	report := map[string]any{
		"source": "xpvbench -obs",
		"query":  obsQuery,
		"scale":  scale,
		"disabled": map[string]any{
			"ns_per_op": disabled.NsPerOp(), "allocs_per_op": disabled.AllocsPerOp(),
			"bytes_per_op": disabled.AllocedBytesPerOp(),
		},
		"enabled": map[string]any{
			"ns_per_op": enabled.NsPerOp(), "allocs_per_op": enabled.AllocsPerOp(),
			"bytes_per_op": enabled.AllocedBytesPerOp(),
		},
		"labeled": map[string]any{
			"ns_per_op": labeled.NsPerOp(), "allocs_per_op": labeled.AllocsPerOp(),
			"bytes_per_op": labeled.AllocedBytesPerOp(),
		},
		"traced": map[string]any{
			"ns_per_op": traced.NsPerOp(), "allocs_per_op": traced.AllocsPerOp(),
			"bytes_per_op": traced.AllocedBytesPerOp(),
		},
		"exported": map[string]any{
			"ns_per_op": exported.NsPerOp(), "allocs_per_op": exported.AllocsPerOp(),
			"bytes_per_op": exported.AllocedBytesPerOp(),
		},
		"export_sync": map[string]any{
			"ns_per_op": sendOnly.NsPerOp(), "allocs_per_op": sendOnly.AllocsPerOp(),
			"bytes_per_op": sendOnly.AllocedBytesPerOp(),
		},
		"metrics_overhead_pct":     pct(disabled, enabled),
		"labeled_overhead_pct":     pct(disabled, labeled),
		"trace_overhead_pct":       pct(disabled, traced),
		"export_overhead_pct":      pct(traced, exported),
		"export_sync_overhead_pct": pct(traced, sendOnly),
		"extra_allocs_metrics":     enabled.AllocsPerOp() - disabled.AllocsPerOp(),
		"extra_allocs_labeled":     labeled.AllocsPerOp() - enabled.AllocsPerOp(),
		"extra_allocs_traced":      traced.AllocsPerOp() - disabled.AllocsPerOp(),
		"gomaxprocs":               runtime.GOMAXPROCS(0),
		"note": "hot path with a warm plan cache; metrics (labeled or not) are atomics + " +
			"time.Now, tracing allocates its span tree by design, export adds the " +
			"trace-ID stamp and one non-blocking channel send (JSONL encode is async)",
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_obs.json")
	return nil
}
