// Command xpvbench regenerates the tables and figures of the paper's
// evaluation section (§VI) and prints them as text rows.
//
// Usage:
//
//	xpvbench [-quick] [-table3] [-fig8] [-fig9] [-fig10] [-fig11] [-fig12]
//	         [-obs] [-maintain] [-join] [-cpuprofile out.prof] [-memprofile out.prof]
//
// With no figure flags, everything runs. -quick shrinks the workload for
// a fast smoke run. -obs runs the telemetry-overhead benchmark instead
// (hot serving path with metrics off / on / traced) and writes
// BENCH_obs.json. -maintain runs the view-maintenance benchmark instead
// (incremental vs full rematerialization across inserted-subtree sizes,
// plus the scoped-vs-global plan-invalidation update storm). -join runs
// the join-kernel driver instead (per-stage split, sequential vs
// prefix-partitioned parallel join) — combine with -cpuprofile to
// capture the join path. -cpuprofile/-memprofile write pprof profiles
// of the run for digging into the serving hot path (`go tool pprof`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"xpathviews/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use the small configuration")
	t3 := flag.Bool("table3", false, "print Table III (test queries)")
	f8 := flag.Bool("fig8", false, "run Figure 8 (query processing time)")
	f9 := flag.Bool("fig9", false, "run Figure 9 (lookup time)")
	f10 := flag.Bool("fig10", false, "run Figure 10 (utility)")
	f11 := flag.Bool("fig11", false, "run Figure 11 (VFilter size scaling)")
	f12 := flag.Bool("fig12", false, "run Figure 12 (filtering time)")
	obs := flag.Bool("obs", false, "run the telemetry-overhead benchmark and write BENCH_obs.json")
	maintain := flag.Bool("maintain", false, "run the view-maintenance benchmark (incremental vs full remat, update storm)")
	join := flag.Bool("join", false, "run the join-kernel driver (stage split, seq vs prefix-partitioned parallel join)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *obs {
		if err := runObs(os.Stdout, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *maintain {
		if err := runMaintain(os.Stdout, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *join {
		if err := runJoin(os.Stdout, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	all := !(*t3 || *f8 || *f9 || *f10 || *f11 || *f12)
	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	if all || *t3 {
		fmt.Fprintln(w, "== Table III: test queries (reconstructed; see DESIGN.md) ==")
		for _, q := range experiments.TableIII() {
			fmt.Fprintf(w, "%s\t%s\tanswerable by %d view(s)\n", q.Name, q.XPath, q.ViewsNeeded)
		}
		fmt.Fprintln(w)
	}

	var env *experiments.Env
	needEnv := all || *f8 || *f9
	if needEnv {
		fmt.Fprintf(w, "building environment: scale=%.2f views=%d cap=%dKB ...\n",
			cfg.Scale, cfg.NumViews, cfg.FragmentLimit>>10)
		w.Flush()
		var err error
		env, err = experiments.NewEnv(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "document: %d nodes; views: %d (+%d skipped over cap)\n\n",
			env.DocNodes, env.Sys.NumViews(), env.SkippedViews)
	}

	if all || *f8 {
		fmt.Fprintln(w, "== Figure 8: query processing time (log-y in the paper) ==")
		fmt.Fprintln(w, "query\tstrategy\ttime\tanswers\tviews\tnote")
		for _, r := range env.Fig8() {
			fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%d\t%s\n",
				r.Query, r.Strategy, r.Elapsed, r.Answers, r.Views, r.Err)
		}
		fmt.Fprintln(w)
	}
	if all || *f9 {
		fmt.Fprintln(w, "== Figure 9: lookup (selection) time ==")
		fmt.Fprintln(w, "query\tstrategy\ttime\tviews\thoms\tnote")
		for _, r := range env.Fig9() {
			fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%d\t%s\n",
				r.Query, r.Strategy, r.Elapsed, r.Views, r.Homs, r.Err)
		}
		fmt.Fprintln(w)
	}

	if all || *f10 || *f11 || *f12 {
		fmt.Fprintln(w, "building filter environment (view sets V1..Vk) ...")
		w.Flush()
		fe := experiments.NewFilterEnv(cfg)
		if all || *f10 {
			fmt.Fprintln(w, "== Figure 10: utility U(Q) = |V''|/|V_Q| ==")
			fmt.Fprintln(w, "views\tavg utility\tmax utility\tmax |V''|")
			for _, r := range fe.Fig10() {
				fmt.Fprintf(w, "%d\t%.3f\t%.2f\t%d\n", r.NumViews, r.AvgUtility, r.MaxUtility, r.MaxCandSet)
			}
			fmt.Fprintln(w)
		}
		if all || *f11 {
			fmt.Fprintln(w, "== Figure 11: VFilter size scaling ==")
			fmt.Fprintln(w, "views\tstates\tbytes\tS_i/S_1")
			for _, r := range fe.Fig11() {
				fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\n", r.NumViews, r.States, r.Bytes, r.ScaleVsFirst)
			}
			fmt.Fprintln(w)
		}
		if all || *f12 {
			fmt.Fprintln(w, "== Figure 12: filtering time vs number of views ==")
			fmt.Fprintln(w, "query\tviews\ttime")
			for _, r := range fe.Fig12() {
				fmt.Fprintf(w, "%s\t%d\t%v\n", r.Query, r.NumViews, r.Elapsed)
			}
			fmt.Fprintln(w)
		}
	}
}
