// Filtering demonstrates VFILTER at scale: thousands of views share an
// automaton whose size grows sub-linearly (the Figure 11 effect), queries
// filter in microseconds (Figure 12), and the candidate sets stay tight
// relative to true homomorphism containment (the Figure 10 utility).
package main

import (
	"fmt"
	"log"
	"time"

	"xpathviews/internal/pattern"
	"xpathviews/internal/storage"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
)

func main() {
	gen := workload.New(7, xmark.Schema(), xmark.Attributes(), workload.Params{
		MaxDepth: 4, ProbWild: 0.2, ProbDesc: 0.2, NumNestedPath: 2,
	})

	sizes := []int{1000, 2000, 4000, 8000}
	var viewSet []*pattern.Pattern
	for len(viewSet) < sizes[len(sizes)-1] {
		viewSet = append(viewSet, gen.Query())
	}
	queries := make([]*pattern.Pattern, 50)
	for i := range queries {
		queries[i] = gen.Query()
	}

	var base int
	for _, n := range sizes {
		f := vfilter.New()
		for id := 0; id < n; id++ {
			f.AddView(id, viewSet[id])
		}
		stored := f.StoredSize()
		if base == 0 {
			base = stored
		}

		// Persist the automaton, as the paper did with Berkeley DB.
		st := storage.OpenMemory()
		if err := f.PersistTo(st); err != nil {
			log.Fatal(err)
		}

		// Filtering time and utility.
		var elapsed time.Duration
		var totalCand, totalContain int
		for _, q := range queries {
			t0 := time.Now()
			res := f.Filtering(q)
			elapsed += time.Since(t0)
			totalCand += len(res.Candidates)
			for id := 0; id < n; id++ {
				if pattern.Contains(viewSet[id], q) {
					totalContain++
				}
			}
		}
		util := float64(totalCand) / float64(max(totalContain, 1))
		fmt.Printf("views=%-5d states=%-6d stored=%7dB (S/S1=%.2f) filter=%8v/query candidates/query=%.1f utility≈%.2f\n",
			n, f.NumStates(), stored, float64(stored)/float64(base),
			elapsed/time.Duration(len(queries)), float64(totalCand)/float64(len(queries)), util)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
