// Quickstart: materialize two views over a small document and answer a
// query from the views alone, comparing with direct evaluation.
package main

import (
	"fmt"
	"log"

	"xpathviews"
)

const doc = `
<library>
  <shelf>
    <book genre="fiction"><title>Voyage</title><author>Reed</author></book>
    <book genre="essay"><title>Forms</title><author>Ash</author></book>
  </shelf>
  <shelf>
    <book genre="fiction"><title>Tides</title><author>Brook</author><award>Prize</award></book>
  </shelf>
</library>`

func main() {
	sys, err := xpathviews.OpenXMLString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// Two materialized views: titles of books, and books that have
	// authors.
	for _, v := range []string{"//book[author]/title", "//shelf/book[award]"} {
		id, err := sys.AddView(v, xpathviews.DefaultFragmentLimit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("materialized V%d = %s (%d fragments)\n",
			id, v, len(sys.Registry().Get(id).Fragments))
	}

	// The query asks for titles of award-winning books: answerable by
	// joining the two views on their common book parent.
	query := "//shelf/book[author][award]/title"

	direct, err := sys.Answer(query, xpathviews.BF)
	if err != nil {
		log.Fatal(err)
	}
	viaViews, err := sys.Answer(query, xpathviews.HV)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nquery: %s\n", query)
	fmt.Printf("direct (BF):    %v\n", direct.Codes())
	fmt.Printf("views  (HV):    %v  using views %v\n", viaViews.Codes(), viaViews.ViewsUsed)
	for _, a := range viaViews.Answers {
		xml, _ := xpathviews.MarshalAnswer(a)
		fmt.Printf("  %s => %s\n", a.Code, xml)
	}
	if len(direct.Answers) != len(viaViews.Answers) {
		log.Fatal("rewriting is not equivalent!")
	}
	fmt.Println("\nrewriting is equivalent to direct evaluation ✓")
}
