// Bookstore replays the paper's running example end to end on the
// reconstructed Figure 2 book tree: Table I/II decomposition, Example 3.4
// filtering, Example 4.3 leaf-covers and heuristic selection, and the
// Example 5.1 rewriting that answers Q_e = //s[f//i][t]/p from the
// fragments of V1 = //s[t]/p and V4 = //s[p]/f.
package main

import (
	"fmt"
	"log"

	"xpathviews"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/pattern"
	"xpathviews/internal/selection"
	"xpathviews/internal/xpath"
)

func main() {
	tree := paperdata.BookTree()
	// The paper's concrete codes (0.8.6 = b/s/s, ...) depend on the
	// Figure 3 child-alphabet order, so pass that FST explicitly.
	sys, err := xpathviews.OpenWithFST(tree, paperdata.BookFST())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table I views and their decompositions (Table II):")
	for i, src := range paperdata.TableIViews() {
		id, err := sys.AddView(src, 0)
		if err != nil {
			log.Fatal(err)
		}
		paths := pattern.DecomposeNormalized(xpath.MustParse(src))
		fmt.Printf("  V%d = %-18s D(V%d) = %v\n", i+1, src, i+1, paths)
		_ = id
	}

	q := xpath.MustParse(paperdata.QueryE)
	fmt.Printf("\nquery Q_e = %s\n", paperdata.QueryE)

	fres := sys.Filtering(q)
	fmt.Printf("\nVFILTER (Example 3.4): candidates = %v (view IDs are zero-based: 0=V1, 3=V4)\n", fres.Candidates)
	for i, qp := range fres.QueryPaths {
		fmt.Printf("  LIST(%s) = %v\n", qp, fres.Lists[i])
	}

	fmt.Println("\nleaf-covers (Example 4.3):")
	for _, id := range fres.Candidates {
		v := sys.Registry().Get(id)
		c := selection.ComputeCover(v, q)
		fmt.Printf("  LC(V%d, Q_e) = %s\n", id+1, c)
	}

	res, err := sys.Answer(paperdata.QueryE, xpathviews.HV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheuristic selection picked views %v; rewriting answers (Example 5.1):\n", res.ViewsUsed)
	for _, a := range res.Answers {
		fmt.Printf("  %s\n", a.Code)
	}

	direct, err := sys.Answer(paperdata.QueryE, xpathviews.BN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndirect evaluation agrees: %v\n", len(direct.Answers) == len(res.Answers))
}
