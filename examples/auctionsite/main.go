// Auctionsite runs the paper's evaluation scenario in miniature: an
// XMark-like auction document, a workload of generated positive views
// under the 128 KB fragment cap, and a set of analytic queries answered
// via minimum and heuristic multiple-view selection.
package main

import (
	"fmt"
	"log"
	"time"

	"xpathviews"
	"xpathviews/internal/views"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
)

func main() {
	doc := xmark.Generate(xmark.Config{Scale: 0.15, Seed: 2008})
	fmt.Printf("generated auction site: %d nodes, depth %d\n", doc.Size(), doc.Stats().MaxDepth)

	sys, err := xpathviews.Open(doc)
	if err != nil {
		log.Fatal(err)
	}

	// Materialize generated positive views (the paper used 1000; keep
	// this example snappy with 120).
	gen := workload.New(42, xmark.Schema(), xmark.Attributes(), workload.Params{
		MaxDepth: 4, ProbWild: 0.2, ProbDesc: 0.2, NumPred: 1, NumNestedPath: 1,
	})
	kept, skipped := 0, 0
	for _, q := range gen.Positive(doc, 120, 5000) {
		if _, err := sys.AddViewPattern(q, views.DefaultFragmentLimit); err != nil {
			skipped++ // over the 128 KB cap
			continue
		}
		kept++
	}
	// A few hand views that make the demo queries answerable.
	for _, v := range []string{
		"//open_auction/bidder",
		"//open_auction/interval/start",
		"//person/address/city",
		"//person/profile/age",
	} {
		if _, err := sys.AddView(v, 0); err != nil {
			log.Fatal(err)
		}
		kept++
	}
	fmt.Printf("materialized %d views (%d skipped over the %dKB cap)\n\n",
		kept, skipped, views.DefaultFragmentLimit>>10)

	queries := []string{
		"//open_auction[interval/start]/bidder/personref",
		"//person[profile/age]/address/city",
		"//open_auction[bidder]/interval/start",
	}
	for _, q := range queries {
		fmt.Printf("query %s\n", q)
		for _, strat := range []xpathviews.Strategy{xpathviews.BF, xpathviews.MV, xpathviews.HV} {
			t0 := time.Now()
			res, err := sys.Answer(q, strat)
			el := time.Since(t0)
			if err != nil {
				fmt.Printf("  %-2v: %v\n", strat, err)
				continue
			}
			extra := ""
			if strat != xpathviews.BF {
				extra = fmt.Sprintf("  views=%v candidates=%d homs=%d",
					res.ViewsUsed, res.CandidatesAfterFilter, res.HomsComputed)
			}
			fmt.Printf("  %-2v: %4d answers in %8v%s\n", strat, len(res.Answers), el, extra)
		}
		fmt.Println()
	}
}
