package xpathviews_test

// Telemetry overhead regression guard: the serving hot path (plan-cache
// hit) must cost at most one extra allocation per call with metrics
// disabled versus the instrumented default, and enabling the default
// metrics must itself be allocation-free (atomics only).

import (
	"context"
	"testing"

	"xpathviews"
	"xpathviews/internal/advisor"
	"xpathviews/internal/paperdata"
)

// hitPathAllocBudget is the PR-3 baseline for BenchmarkAnswerPlanCache
// (76 allocs/op, BENCH_serving.json) plus the one allocation the
// telemetry layer is allowed to add.
const hitPathAllocBudget = 77

func TestTelemetryOverheadAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	sys, _ := obsSystem(t)
	ctx := context.Background()
	opts := xpathviews.Options{Strategy: xpathviews.HV}
	call := func() {
		if _, err := sys.AnswerContext(ctx, paperdata.QueryE, opts); err != nil {
			t.Fatal(err)
		}
	}
	call() // warm the plan cache

	sys.SetMetricsRegistry(nil)
	disabled := testing.AllocsPerRun(200, call)

	sys.SetMetricsRegistry(xpathviews.NewMetricsRegistry())
	enabled := testing.AllocsPerRun(200, call)

	// Tenant-labeled metrics resolve names once at SetMetricsTenant;
	// recording through the labeled bundle must cost exactly what the
	// unlabeled bundle costs.
	sys.SetMetricsTenant(xpathviews.NewMetricsRegistry(), "acme")
	labeled := testing.AllocsPerRun(200, call)

	if enabled > disabled+1 {
		t.Fatalf("metrics add %.1f allocs/op (disabled %.1f, enabled %.1f); budget is 1",
			enabled-disabled, disabled, enabled)
	}
	if labeled > enabled {
		t.Fatalf("tenant-labeled metrics add %.1f allocs/op over unlabeled (%.1f vs %.1f); budget is 0",
			labeled-enabled, labeled, enabled)
	}
	if disabled > hitPathAllocBudget {
		t.Fatalf("telemetry-disabled hit path allocates %.1f/op, budget %d",
			disabled, hitPathAllocBudget)
	}

	// The view observatory's attribution path — per-view hit counters,
	// the calibration EWMA CAS loops, and the armed drift sketch — must
	// add zero allocations over a detached store.
	sys.SetViewStats(nil)
	statsOff := testing.AllocsPerRun(200, call)
	sys.SetViewStats(xpathviews.NewViewStats())
	sys.SetDesignWorkload([]advisor.QueryStat{{Query: paperdata.QueryE}})
	call() // grow the per-view slots once; steady state allocates nothing
	statsOn := testing.AllocsPerRun(200, call)
	if statsOn > statsOff {
		t.Fatalf("view-stats attribution adds %.1f allocs/op (off %.1f, on %.1f); budget is 0",
			statsOn-statsOff, statsOff, statsOn)
	}
}
