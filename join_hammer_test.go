package xpathviews_test

// The join-kernel race hammer: 64 goroutines mixing answering (which
// runs the prefix-partitioned parallel join whenever enough Δ-fragments
// survive refinement) with document mutations under scoped plan
// invalidation (mutate.go). The interesting interleavings are a join
// reading the shared virtual-tree arena while maintenance rewrites
// fragment stores and bumps view generations, and pooled joiner scratch
// migrating between goroutines. Run with -race; the final differential
// check catches lost updates the detector cannot.

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"

	"xpathviews"
	"xpathviews/internal/dewey"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xmltree"
)

func TestJoinMutationHammer(t *testing.T) {
	// The parallel join engages at ≥128 Δ-fragments and GOMAXPROCS>1;
	// force the latter so a single-core CI host still exercises the
	// concurrent kernel (goroutines interleave via the scheduler).
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	doc := xmark.Generate(xmark.Config{Scale: 0.15, Seed: 73}) // 150 persons
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetScopedInvalidation(true)
	viewIDs := []int{}
	for _, v := range []string{
		"//person/name",
		"//person[address]/name",
		"//person/address/city",
		"//person/profile/age",
		"//closed_auction/price",
	} {
		id, err := sys.AddView(v, xpathviews.DefaultFragmentLimit)
		if err != nil {
			t.Fatal(err)
		}
		viewIDs = append(viewIDs, id)
	}
	queries := []string{
		"//person/name",
		"//person[address/city]/name",
		"//person/address/city",
		"//person[name]/profile/age",
		"//closed_auction/price",
	}

	// Writers each own one person subtree; codes resolved up front.
	var persons []*xmltree.Node
	sys.Document().Walk(func(n *xmltree.Node) bool {
		if n.Label == "person" {
			persons = append(persons, n)
		}
		return true
	})
	const readers, writers, observers = 48, 12, 4 // 64 goroutines
	if len(persons) < writers {
		t.Fatalf("document too small: %d persons for %d writers", len(persons), writers)
	}
	parentCodes := make([]dewey.Code, writers)
	for i := range parentCodes {
		parentCodes[i] = sys.Encoding().MustCode(persons[i])
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			strats := []xpathviews.Strategy{xpathviews.HV, xpathviews.MV}
			for i := 0; i < 8; i++ {
				q := queries[(r+i)%len(queries)]
				res, err := sys.Answer(q, strats[(r+i)%len(strats)])
				if err != nil {
					if errors.Is(err, xpathviews.ErrNotAnswerable) {
						continue // a mutation invalidated the covering view mid-flight
					}
					t.Errorf("reader %d: %s: %v", r, q, err)
					return
				}
				for _, a := range res.Answers {
					if a.Node == nil || len(a.Code) == 0 {
						t.Errorf("reader %d: %s: torn answer %+v", r, q, a)
						return
					}
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := sys.InsertSubtree(parentCodes[w], "<watches><watch/></watches>")
				if err != nil {
					t.Errorf("writer %d insert: %v", w, err)
					return
				}
				if _, err := sys.DeleteSubtree(res.Code); err != nil {
					t.Errorf("writer %d delete %s: %v", w, res.Code, err)
					return
				}
			}
		}(w)
	}
	for o := 0; o < observers; o++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := make(map[int]uint64)
			for i := 0; i < 200; i++ {
				for _, id := range viewIDs {
					g, ok := sys.ViewGeneration(id)
					if !ok {
						t.Errorf("view %d vanished", id)
						return
					}
					if g < last[id] {
						t.Errorf("view %d generation went backwards: %d -> %d", id, last[id], g)
						return
					}
					last[id] = g
				}
				sys.PlanCacheStats()
			}
		}()
	}
	wg.Wait()

	// Every writer reverted its insert, so view answers must agree with
	// a from-scratch evaluation of the (net-unchanged) document.
	for _, q := range queries {
		base, err := sys.Answer(q, xpathviews.BF)
		if err != nil {
			t.Fatalf("%s baseline: %v", q, err)
		}
		res, err := sys.Answer(q, xpathviews.HV)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if strings.Join(res.Codes(), ",") != strings.Join(base.Codes(), ",") {
			t.Fatalf("%s: answers drifted after hammer:\n got %v\nwant %v", q, res.Codes(), base.Codes())
		}
	}
}
