package xpathviews

// This file is the plan explainer: Explain answers a query with tracing
// and plan capture on, then renders where the call went — which views
// survived VFILTER, which were selected and what they cover, whether
// the plan cache served it, and how long each stage took — as text or
// JSON. It is the human-facing face of the telemetry in observe.go: the
// same callObs hooks that feed spans also feed the explainSink.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// explainSink accumulates plan detail during one explained call. It is
// filled under s.mu (read) by fillExplainPlan and finishCall; the call
// is synchronous, so no locking is needed.
type explainSink struct {
	havePlan    bool
	planCache   string // hit | miss | bypass
	negative    bool
	candidates  int
	allViews    bool
	surviving   []ExplainView
	selected    []ExplainCover
	filterNanos int64
	selectNanos int64
	selHoms     int
	steps, homs int64
}

// fillExplainPlan snapshots a plan into the call's explain sink, if
// any. Called under s.mu (read) so the registry lookups are safe.
func (co callObs) fillExplainPlan(s *System, pl *queryPlan, hit, useCache bool) {
	ex := co.ex
	if ex == nil {
		return
	}
	ex.havePlan = true
	ex.planCache = cacheLabel(hit, useCache)
	ex.negative = pl.err != nil
	ex.candidates = pl.info.cand
	ex.allViews = pl.info.allViews
	ex.filterNanos = pl.info.filterNanos
	ex.selectNanos = pl.info.selectNanos
	ex.surviving = ex.surviving[:0]
	if pl.info.allViews {
		for _, v := range s.registry.Views() {
			ex.surviving = append(ex.surviving, ExplainView{
				ID: v.ID, XPath: v.Pattern.String(), Fragments: len(v.Fragments)})
		}
	} else {
		for _, id := range pl.info.candIDs {
			if v := s.registry.Get(id); v != nil {
				ex.surviving = append(ex.surviving, ExplainView{
					ID: v.ID, XPath: v.Pattern.String(), Fragments: len(v.Fragments)})
			}
		}
	}
	ex.selected = ex.selected[:0]
	if pl.sel != nil {
		ex.selHoms = pl.sel.HomsComputed
		for _, c := range pl.sel.Covers {
			ec := ExplainCover{
				ID:     c.View.ID,
				XPath:  c.View.Pattern.String(),
				Cover:  c.String(),
				Strong: c.Strong,
			}
			if c.X != nil {
				ec.LandsOn = c.X.Label
			}
			ex.selected = append(ex.selected, ec)
		}
	}
}

// ExplainView is one view that survived filtering.
type ExplainView struct {
	ID        int    `json:"id"`
	XPath     string `json:"xpath"`
	Fragments int    `json:"fragments"`
}

// ExplainCover is one selected view with its leaf cover (§IV).
type ExplainCover struct {
	ID    int    `json:"id"`
	XPath string `json:"xpath"`
	// LandsOn is the query node the view's answers land on (h(RET(V))).
	LandsOn string `json:"lands_on,omitempty"`
	// Cover renders the leaf cover like the paper's Equation (1),
	// e.g. "{Δ, t}".
	Cover string `json:"cover,omitempty"`
	// Strong marks a single-view strong cover (no join needed).
	Strong bool `json:"strong,omitempty"`
}

// ExplainStage is one pipeline stage's wall time.
type ExplainStage struct {
	Name  string `json:"name"`
	Nanos int64  `json:"ns"`
}

// Explanation is the rendered plan of one answered query.
type Explanation struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
	// Error is set when the call failed in an explainable way (not
	// answerable, budget exhausted, contained internal error).
	Error   string `json:"error,omitempty"`
	Answers int    `json:"answers"`
	// PlanCache is "hit", "miss" or "bypass"; empty for the direct
	// strategies (BN/BF), which have no plan.
	PlanCache string `json:"plan_cache,omitempty"`
	// Negative reports the plan is a cached not-answerable verdict.
	Negative bool `json:"negative_plan,omitempty"`
	// AllViews reports selection considered every view (MN: no
	// filtering ran).
	AllViews bool `json:"all_views,omitempty"`
	// Candidates is |V'|, the post-filter candidate count.
	Candidates int            `json:"candidates_after_filter,omitempty"`
	Surviving  []ExplainView  `json:"surviving_views,omitempty"`
	Selected   []ExplainCover `json:"selected_views,omitempty"`
	// Homs counts homomorphism computations during selection.
	Homs int `json:"homs_computed,omitempty"`
	// Stages lists per-stage wall time. On a plan-cache hit, filter and
	// select show what the cached plan originally cost to compute.
	Stages []ExplainStage `json:"stages"`
	// BudgetSteps/BudgetHoms are the work units actually spent.
	BudgetSteps int64 `json:"budget_steps_spent"`
	BudgetHoms  int64 `json:"budget_homs_spent"`
	TotalNanos  int64 `json:"total_ns"`
	// Trace is the rendered span tree (text exposition only).
	Trace string `json:"-"`
}

// Explain answers src under strat with tracing on and reports the plan:
// surviving views, selected covers, cache status, per-stage timings and
// budget spend. It is AnswerContext plus capture — the query is really
// answered (and the plan cache really consulted), so explaining a hot
// query shows the hit path.
func (s *System) Explain(src string, strat Strategy) (*Explanation, error) {
	return s.ExplainContext(context.Background(), src, Options{Strategy: strat})
}

// ExplainContext is Explain with a caller context and full Options.
// Explainable failures (ErrNotAnswerable, ErrBudgetExceeded,
// ErrInternal) still return an Explanation with Error set; parse errors
// and cancellation return the error alone.
func (s *System) ExplainContext(ctx context.Context, src string, opts Options) (*Explanation, error) {
	opts.Trace = NewTrace()
	sink := &explainSink{}
	opts.explain = sink
	res, err := s.AnswerContext(ctx, src, opts)
	if err != nil && !errors.Is(err, ErrNotAnswerable) &&
		!errors.Is(err, ErrBudgetExceeded) && !errors.Is(err, ErrInternal) {
		return nil, err
	}
	ex := &Explanation{
		Query:       src,
		Strategy:    opts.Strategy.String(),
		Negative:    sink.negative,
		AllViews:    sink.allViews,
		Surviving:   sink.surviving,
		Selected:    sink.selected,
		Homs:        sink.selHoms,
		BudgetSteps: sink.steps,
		BudgetHoms:  sink.homs,
		Trace:       opts.Trace.Text(),
	}
	if sink.havePlan {
		ex.PlanCache = sink.planCache
		ex.Candidates = sink.candidates
	}
	if err != nil {
		ex.Error = err.Error()
	}
	if res != nil {
		ex.Answers = len(res.Answers)
		ex.TotalNanos = res.TotalNanos
		ex.Stages = append(ex.Stages, ExplainStage{"parse", res.ParseNanos})
		if sink.havePlan {
			ex.Stages = append(ex.Stages,
				ExplainStage{"filter", sink.filterNanos},
				ExplainStage{"select", sink.selectNanos},
				ExplainStage{"refine", res.RefineNanos},
				ExplainStage{"join", res.JoinNanos},
				ExplainStage{"extract", res.ExtractNanos})
		}
	}
	return ex, nil
}

// JSON renders the explanation as indented JSON.
func (e *Explanation) JSON() ([]byte, error) { return json.MarshalIndent(e, "", "  ") }

// Text renders the explanation as an aligned, human-readable report.
func (e *Explanation) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query:    %s\n", e.Query)
	fmt.Fprintf(&b, "strategy: %s\n", e.Strategy)
	if e.Error != "" {
		fmt.Fprintf(&b, "error:    %s\n", e.Error)
	}
	if e.PlanCache != "" {
		fmt.Fprintf(&b, "plan:     cache %s", e.PlanCache)
		if e.Negative {
			b.WriteString(" (cached not-answerable)")
		}
		b.WriteByte('\n')
		if e.AllViews {
			fmt.Fprintf(&b, "views:    all %d considered (MN: no filtering)\n", len(e.Surviving))
		} else {
			fmt.Fprintf(&b, "views:    %d survived filtering\n", len(e.Surviving))
		}
		for _, v := range e.Surviving {
			fmt.Fprintf(&b, "  v%d: %s (%d fragments)\n", v.ID, v.XPath, v.Fragments)
		}
		fmt.Fprintf(&b, "selected: %d views, %d homomorphisms\n", len(e.Selected), e.Homs)
		for _, c := range e.Selected {
			fmt.Fprintf(&b, "  v%d: %s — lands on %s, covers %s", c.ID, c.XPath, c.LandsOn, c.Cover)
			if c.Strong {
				b.WriteString(" (strong)")
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "answers:  %d\n", e.Answers)
	if len(e.Stages) > 0 {
		b.WriteString("stages:\n")
		for _, st := range e.Stages {
			fmt.Fprintf(&b, "  %-8s %v\n", st.Name, time.Duration(st.Nanos))
		}
		fmt.Fprintf(&b, "  %-8s %v\n", "total", time.Duration(e.TotalNanos))
	}
	fmt.Fprintf(&b, "budget:   %d steps, %d homs\n", e.BudgetSteps, e.BudgetHoms)
	if e.Trace != "" {
		b.WriteString("trace:\n")
		for _, line := range strings.Split(strings.TrimRight(e.Trace, "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
