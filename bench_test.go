// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI), plus ablations for the design choices DESIGN.md calls
// out. Each BenchmarkFigN corresponds to the same-numbered figure; the
// xpvbench command prints the full paper-style rows at paper scale, while
// these benches run a mid-sized configuration suitable for `go test
// -bench`. See EXPERIMENTS.md for measured-vs-paper shapes.
package xpathviews_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"xpathviews"
	"xpathviews/internal/advisor"
	"xpathviews/internal/dewey"
	"xpathviews/internal/experiments"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/vfilter"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// benchConfig sits between Quick (unit tests) and Default (paper scale).
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.Scale = 0.5
	cfg.NumViews = 400
	cfg.FilterSizes = []int{500, 1000, 2000, 4000}
	cfg.UtilityQueries = 60
	return cfg
}

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error

	feOnce sync.Once
	feVal  *experiments.FilterEnv
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv(benchConfig()) })
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

func benchFilterEnv(b *testing.B) *experiments.FilterEnv {
	b.Helper()
	feOnce.Do(func() { feVal = experiments.NewFilterEnv(benchConfig()) })
	return feVal
}

// BenchmarkTable3Workload answers the reconstructed Table III queries
// via the heuristic strategy — the paper's headline workload.
func BenchmarkTable3Workload(b *testing.B) {
	env := benchEnv(b)
	for _, qs := range experiments.TableIII() {
		q := xpath.MustParse(qs.XPath)
		b.Run(qs.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := env.Sys.AnswerPattern(q, xpathviews.HV)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Answers) == 0 {
					b.Fatal("empty result; query must be positive")
				}
			}
		})
	}
}

// BenchmarkFig8 measures query processing time per strategy (Figure 8).
func BenchmarkFig8(b *testing.B) {
	env := benchEnv(b)
	strategies := []xpathviews.Strategy{xpathviews.BN, xpathviews.BF, xpathviews.MN, xpathviews.MV, xpathviews.HV}
	for _, qs := range experiments.TableIII() {
		q := xpath.MustParse(qs.XPath)
		for _, st := range strategies {
			b.Run(fmt.Sprintf("%s/%v", qs.Name, st), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.Sys.AnswerPattern(q, st); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9 measures lookup (selection-only) time (Figure 9).
func BenchmarkFig9(b *testing.B) {
	env := benchEnv(b)
	for _, qs := range experiments.TableIII() {
		q := pattern.Minimize(xpath.MustParse(qs.XPath))
		for _, st := range []xpathviews.Strategy{xpathviews.MN, xpathviews.MV, xpathviews.HV} {
			b.Run(fmt.Sprintf("%s/%v", qs.Name, st), func(b *testing.B) {
				homs := 0
				for i := 0; i < b.N; i++ {
					sel, _, err := env.Sys.Select(q, st)
					if err != nil {
						b.Fatal(err)
					}
					homs = sel.HomsComputed
				}
				b.ReportMetric(float64(homs), "homs")
			})
		}
	}
}

// BenchmarkFig10 reports the utility U(Q) = |V”|/|V_Q| per view-set size
// (Figure 10). Time measures the filtering side; avg/max utility are
// reported as metrics.
func BenchmarkFig10(b *testing.B) {
	fe := benchFilterEnv(b)
	rows := fe.Fig10()
	for i, n := range fe.Sizes {
		f := fe.Filters[i]
		row := rows[i]
		b.Run(fmt.Sprintf("views=%d", n), func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				for _, q := range fe.TestQueries {
					f.Filtering(q)
				}
			}
			b.ReportMetric(row.AvgUtility, "avg-utility")
			b.ReportMetric(row.MaxUtility, "max-utility")
			b.ReportMetric(float64(row.MaxCandSet), "max-candidates")
		})
	}
}

// BenchmarkFig11 measures automaton construction and reports stored size
// scaling (Figure 11).
func BenchmarkFig11(b *testing.B) {
	fe := benchFilterEnv(b)
	base := 0
	for _, n := range fe.Sizes {
		b.Run(fmt.Sprintf("views=%d", n), func(b *testing.B) {
			var f *vfilter.Filter
			for i := 0; i < b.N; i++ {
				f = vfilter.New()
				for id := 0; id < n; id++ {
					f.AddView(id, fe.Views[id])
				}
			}
			bytes := f.StoredSize()
			if base == 0 {
				base = bytes
			}
			b.ReportMetric(float64(bytes), "stored-bytes")
			b.ReportMetric(float64(f.NumStates()), "states")
			b.ReportMetric(float64(bytes)/float64(base), "S_i/S_1")
		})
	}
}

// BenchmarkFig12 measures filtering time of Q1..Q4 against automata of
// increasing size (Figure 12).
func BenchmarkFig12(b *testing.B) {
	fe := benchFilterEnv(b)
	for _, qs := range experiments.TableIII() {
		q := xpath.MustParse(qs.XPath)
		for i, n := range fe.Sizes {
			f := fe.Filters[i]
			b.Run(fmt.Sprintf("%s/views=%d", qs.Name, n), func(b *testing.B) {
				for it := 0; it < b.N; it++ {
					f.Filtering(q)
				}
			})
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationJoin compares the holistic virtual-tree join against
// the naive cross-product join on a two-view query.
func BenchmarkAblationJoin(b *testing.B) {
	env := benchEnv(b)
	qs := experiments.TableIII()[2] // Q3: two views
	q := pattern.Minimize(xpath.MustParse(qs.XPath))
	sel, _, err := env.Sys.Select(q, xpathviews.HV)
	if err != nil {
		b.Fatal(err)
	}
	fst := env.Sys.FST()
	b.Run("holistic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.Execute(q, sel, fst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.ExecuteNaive(q, sel, fst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNormalization measures the false-negative rate of the
// paper-exact automaton with and without path normalization (§III-C), and
// of the gap-binding extension, against homomorphism ground truth.
func BenchmarkAblationNormalization(b *testing.B) {
	fe := benchFilterEnv(b)
	n := fe.Sizes[0]
	queries := fe.TestQueries

	variants := []struct {
		name string
		mk   func() *vfilter.Filter
	}{
		{"exact-normalized", vfilter.NewExact},
		{"gap-binding", vfilter.New},
	}
	for _, v := range variants {
		f := v.mk()
		for id := 0; id < n; id++ {
			f.AddView(id, fe.Views[id])
		}
		b.Run(v.name, func(b *testing.B) {
			falseNeg := 0
			for it := 0; it < b.N; it++ {
				falseNeg = 0
				for _, q := range queries {
					res := f.Filtering(q)
					cand := make(map[int]bool, len(res.Candidates))
					for _, id := range res.Candidates {
						cand[id] = true
					}
					for id := 0; id < n; id++ {
						if pattern.Contains(fe.Views[id], q) && !cand[id] {
							falseNeg++
						}
					}
				}
			}
			b.ReportMetric(float64(falseNeg), "false-negatives")
		})
	}
}

// BenchmarkAblationPrefixSharing reports the automaton size with trie
// sharing versus the sum of isolated per-view automata.
func BenchmarkAblationPrefixSharing(b *testing.B) {
	fe := benchFilterEnv(b)
	n := fe.Sizes[0]
	b.Run("shared", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			f := vfilter.New()
			for id := 0; id < n; id++ {
				f.AddView(id, fe.Views[id])
			}
			states = f.NumStates()
		}
		b.ReportMetric(float64(states), "states")
	})
	b.Run("isolated-sum", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			states = 0
			for id := 0; id < n; id++ {
				f := vfilter.New()
				f.AddView(id, fe.Views[id])
				states += f.NumStates() - 1
			}
		}
		b.ReportMetric(float64(states), "states")
	})
}

// BenchmarkAblationSelection compares minimum vs heuristic selection:
// time plus the total materialized bytes the rewriting must scan (the
// quantity the heuristic optimizes, §IV-B).
func BenchmarkAblationSelection(b *testing.B) {
	env := benchEnv(b)
	for _, qs := range experiments.TableIII() {
		q := pattern.Minimize(xpath.MustParse(qs.XPath))
		for _, st := range []xpathviews.Strategy{xpathviews.MV, xpathviews.HV, xpathviews.CV} {
			b.Run(fmt.Sprintf("%s/%v", qs.Name, st), func(b *testing.B) {
				bytes := 0
				for i := 0; i < b.N; i++ {
					sel, _, err := env.Sys.Select(q, st)
					if err != nil {
						b.Fatal(err)
					}
					bytes = sel.TotalFragmentBytes()
				}
				b.ReportMetric(float64(bytes), "fragment-bytes")
			})
		}
	}
}

// --- Advisor -------------------------------------------------------------

// BenchmarkAdvise runs the full advisor pipeline (candidate generation,
// trial materialization, greedy selection) over a 1000-call workload of
// ~100 distinct positive XMark queries.
func BenchmarkAdvise(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Scale: 0.1, Seed: 2008})
	enc, _, err := dewey.EncodeTree(doc)
	if err != nil {
		b.Fatal(err)
	}
	g := workload.New(2008, xmark.Schema(), xmark.Attributes(),
		workload.Params{MaxDepth: 4, ProbWild: 0.2, ProbDesc: 0.2, NumPred: 1, NumNestedPath: 1})
	positives := g.Positive(doc, 100, 30000)
	entries := make([]workload.Entry, len(positives))
	total := 0
	for i, q := range positives {
		f := 200 / (i + 1) // Zipf-ish, ~1000 calls over 100 distinct queries
		if f < 1 {
			f = 1
		}
		total += f
		entries[i] = workload.Entry{Freq: f, Query: q.String()}
	}
	stats := advisor.StatsFromEntries(entries)
	b.Logf("workload: %d distinct queries, %d calls", len(entries), total)
	b.ResetTimer()
	var adv *advisor.Advice
	for i := 0; i < b.N; i++ {
		adv, err = advisor.Advise(doc, enc, nil, stats, advisor.Options{ByteBudget: 256 << 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(adv.Views)), "views")
	b.ReportMetric(100*adv.Predicted.WeightedFraction, "coverage-%")
}

// BenchmarkRecorderOverhead measures the serving hot path without a
// recorder, with a recorder attached but sampling disabled (the
// acceptance criterion: one atomic load), and with full sampling.
func BenchmarkRecorderOverhead(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Scale: 0.06, Seed: 41})
	q := xpath.MustParse("//person/name")
	ctx := context.Background()
	opts := xpathviews.Options{Strategy: xpathviews.HV}
	newSys := func() *xpathviews.System {
		sys, err := xpathviews.Open(doc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.AddView("//person/name", 0); err != nil {
			b.Fatal(err)
		}
		return sys
	}
	run := func(b *testing.B, sys *xpathviews.System) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.AnswerPatternContext(ctx, q, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("no-recorder", func(b *testing.B) {
		run(b, newSys())
	})
	b.Run("recorder-disabled", func(b *testing.B) {
		sys := newSys()
		rec, err := xpathviews.NewRecorder(nil)
		if err != nil {
			b.Fatal(err)
		}
		sys.SetRecorder(rec) // sampling stays 0: one atomic load per call
		run(b, sys)
	})
	b.Run("recorder-sampling", func(b *testing.B) {
		sys := newSys()
		rec, err := xpathviews.NewRecorder(nil)
		if err != nil {
			b.Fatal(err)
		}
		rec.SetSampling(1)
		sys.SetRecorder(rec)
		run(b, sys)
	})
}

// BenchmarkDeweyDecode measures the FST decode hot path used by both the
// rewriting join and BF.
func BenchmarkDeweyDecode(b *testing.B) {
	env := benchEnv(b)
	enc := env.Sys.Encoding()
	fst := env.Sys.FST()
	nodes := env.Sys.Document().Nodes()
	codes := make([]dewey.Code, 0, 1000)
	for i := 0; i < len(nodes) && len(codes) < 1000; i += 97 {
		codes = append(codes, enc.MustCode(nodes[i]))
	}
	b.ResetTimer()
	var buf []string
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for _, c := range codes {
			buf, _ = fst.DecodeAppend(c, buf)
		}
	}
}
