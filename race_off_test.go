//go:build !race

package xpathviews_test

const raceEnabled = false
