package xpathviews

// This file is the hardened serving layer: context-aware answering with
// per-call deadlines and resource budgets, panic containment, and
// graceful degradation through a configurable fallback chain. The batch
// entry points (Answer, AnswerPattern, Select) are thin wrappers over
// these with a background context and no budgets.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"xpathviews/internal/budget"
	"xpathviews/internal/faults"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

// ErrBudgetExceeded re-exports the pipeline's budget exhaustion error:
// AnswerContext returns an error matching it (errors.Is) when MaxSteps
// or MaxHoms ran out before the query completed.
var ErrBudgetExceeded = budget.ErrBudget

// ErrInternal marks a contained pipeline failure: an injected fault or a
// recovered panic inside one of the answering stages. The concrete error
// is an *InternalError carrying the stage name.
var ErrInternal = errors.New("xpathviews: internal error")

// InternalError is a contained failure of one pipeline stage.
type InternalError struct {
	// Stage is the pipeline stage that failed, e.g. "rewrite.join".
	Stage string
	// Cause is the underlying error; recovered panics are wrapped in an
	// error describing the panic value.
	Cause error
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("xpathviews: internal error at %s: %v", e.Stage, e.Cause)
}

// Unwrap makes the error match both ErrInternal and its cause chain.
func (e *InternalError) Unwrap() []error { return []error{ErrInternal, e.Cause} }

// Options tunes one serving-layer call. The zero value means strategy BN
// with no limits.
type Options struct {
	// Strategy selects how AnswerContext answers (ignored by
	// AnswerResilient, which tries the Fallback chain instead).
	Strategy Strategy
	// Timeout, when positive, bounds the call with a derived deadline on
	// top of the caller's context.
	Timeout time.Duration
	// MaxAnswers truncates the answer list (0 = unlimited); Result.
	// Truncated reports when it bit.
	MaxAnswers int
	// MaxHoms caps homomorphism computations during selection — the cost
	// driver of §IV (0 = unlimited).
	MaxHoms int
	// MaxSteps caps cheap pipeline work units: traversal node visits,
	// subset-enumeration search nodes, fragments scanned/joined
	// (0 = unlimited). Exhaustion yields ErrBudgetExceeded.
	MaxSteps int64
	// Fallback overrides AnswerResilient's rung chain; nil means
	// DefaultFallback().
	Fallback []Rung
	// NoPlanCache bypasses the query-plan cache (see plan.go): the call
	// neither reads cached plans nor writes new ones. Use it for
	// one-shot queries that should not displace the hot set, or to
	// measure the uncached pipeline.
	NoPlanCache bool
	// Trace, when non-nil, collects this call's span tree: one span per
	// pipeline stage (parse, plan/vfilter/select, rewrite with
	// refine/join/extract children, collect) with stage attributes.
	// Tracing allocates — leave nil on the hot path. Build with
	// NewTrace().
	Trace *Trace
	// Metrics overrides the metrics registry for this call only; nil
	// uses the system's registry (see SetMetricsRegistry).
	Metrics *MetricsRegistry
	// TraceID carries the call's W3C trace ID (32 lowercase hex) without
	// requiring a full span tree: it joins the call to latency-histogram
	// exemplars and slow-query log entries. When empty, Trace.ID() is
	// consulted. Costs nothing beyond the copy — no allocation.
	TraceID string
	// explain, when non-nil, collects plan detail (surviving views,
	// selected covers, cache status) for System.Explain.
	explain *explainSink
}

// budget builds the call's budget over ctx.
func (o Options) budget(ctx context.Context) *budget.B {
	return budget.New(ctx, o.MaxSteps, int64(o.MaxHoms))
}

// Rung is one step of AnswerResilient's fallback chain.
type Rung int

const (
	// RungHV answers with heuristic selection over filtered candidates.
	RungHV Rung = iota
	// RungMV answers with exact minimum selection over filtered
	// candidates.
	RungMV
	// RungCV answers with cost-based selection over filtered candidates.
	RungCV
	// RungMN answers with exact minimum selection without filtering.
	RungMN
	// RungContained answers with a contained (sound, possibly partial)
	// rewriting; it degrades completeness, never soundness.
	RungContained
	// RungBN evaluates directly on the document, navigationally.
	RungBN
	// RungBF evaluates directly with full index support.
	RungBF
)

var rungNames = [...]string{"HV", "MV", "CV", "MN", "contained", "BN", "BF"}

func (r Rung) String() string {
	if int(r) < len(rungNames) {
		return rungNames[r]
	}
	return fmt.Sprintf("Rung(%d)", int(r))
}

// DefaultFallback is AnswerResilient's chain when Options.Fallback is
// nil: cheapest equivalent rewriting first, then exact selection, then a
// sound-but-partial rewriting, then direct evaluation as the rung of
// last resort.
func DefaultFallback() []Rung { return []Rung{RungHV, RungMV, RungContained, RungBN} }

// runStage executes one pipeline stage with panic containment: a panic
// or an injected fault surfaces as an *InternalError naming the stage;
// budget and answerability errors pass through untouched.
func runStage[T any](stage string, f func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			out = zero
			err = &InternalError{Stage: stage, Cause: fmt.Errorf("panic: %v", r)}
		}
	}()
	out, err = f()
	if err != nil && errors.Is(err, faults.ErrInjected) {
		err = &InternalError{Stage: stage, Cause: err}
	}
	return out, err
}

// AnswerContext evaluates the query under the chosen strategy with
// cancellation and resource budgets. It returns promptly once ctx is
// done (context.Canceled / context.DeadlineExceeded) or a budget runs
// out (ErrBudgetExceeded), even mid-way through the exponential exact
// selection. Pipeline panics and injected faults come back as
// ErrInternal, never as a crash.
func (s *System) AnswerContext(ctx context.Context, src string, opts Options) (*Result, error) {
	co, t0 := s.startObs(opts)
	if cachePlans(opts) {
		return s.answerSrcCached(ctx, src, opts, co, t0)
	}
	sp := co.child("parse")
	pt := time.Now()
	q, err := xpath.Parse(src)
	parseNanos := int64(time.Since(pt))
	if err != nil {
		sp.Err(err)
		sp.End()
		co.abandon(err)
		return nil, err
	}
	sp.End()
	return s.answerPatternObs(ctx, q, opts, co, t0, parseNanos, src)
}

// answerSrcCached is AnswerContext's plan-cached path: the raw source
// spelling is itself a cache key (aliasing the canonical pattern key),
// so a textual repeat skips parsing, minimization, filtering and
// selection — only §V's rewriting runs.
func (s *System) answerSrcCached(ctx context.Context, src string, opts Options, co callObs, t0 time.Time) (*Result, error) {
	ctx, cancel, err := servingContext(ctx, opts)
	if err != nil {
		co.abandon(err)
		return nil, err
	}
	defer cancel()
	b := opts.budget(ctx)
	co.track(b)
	var parseNanos int64
	s.mu.RLock()
	defer s.mu.RUnlock()
	srcKey := planKey(opts.Strategy, normalizeQuery(src))
	pl, hit := s.lookupPlan(srcKey)
	if hit {
		co.countPlan(true)
		if co.sp != nil || co.ex != nil {
			psp := co.child("plan")
			annotatePlanSpan(psp, pl, "hit")
			co.fillExplainPlan(s, pl, true, true)
		}
	} else {
		sp := co.child("parse")
		pt := time.Now()
		q, err := xpath.Parse(src)
		if err != nil {
			sp.Err(err)
			sp.End()
			co.abandon(err)
			return nil, err
		}
		qm := pattern.Minimize(q)
		parseNanos = int64(time.Since(pt))
		sp.End()
		// Seam check: parse → plan.
		if err := b.CtxErr(); err != nil {
			co.abandon(err)
			return nil, err
		}
		psp := co.child("plan")
		pl, hit, err = s.planLocked(qm, opts.Strategy, b, true, co.withSpan(psp))
		if err != nil {
			if psp != nil {
				psp.Err(err)
				psp.End()
			}
			s.observe(qm, false, err)
			s.finishCall(co, b, t0, src, nil, opts.Strategy.String(), nil, err)
			return nil, err
		}
		annotatePlanSpan(psp, pl, cacheLabel(hit, true))
		co.fillExplainPlan(s, pl, hit, true)
		s.putPlanAlias(srcKey, pl)
	}
	res, err := s.answerPlanLocked(pl, opts.Strategy, b, co)
	s.observe(pl.q, err == nil, err)
	if err != nil {
		s.finishCall(co, b, t0, src, pl.q, opts.Strategy.String(), nil, err)
		return nil, err
	}
	res.PlanCacheHit = hit
	res.ParseNanos = parseNanos
	if !hit {
		res.FilterNanos = pl.info.filterNanos
		res.SelectNanos = pl.info.selectNanos
	}
	truncate(res, opts.MaxAnswers)
	s.finishCall(co, b, t0, src, pl.q, opts.Strategy.String(), res, nil)
	return res, nil
}

// AnswerPatternContext is AnswerContext for already-parsed queries.
func (s *System) AnswerPatternContext(ctx context.Context, q *pattern.Pattern, opts Options) (*Result, error) {
	co, t0 := s.startObs(opts)
	return s.answerPatternObs(ctx, q, opts, co, t0, 0, "")
}

// answerPatternObs is the shared pattern-entry tail: minimize, answer
// under the read lock, close out observation. parseNanos carries the
// caller's parse cost when the query arrived as text.
func (s *System) answerPatternObs(ctx context.Context, q *pattern.Pattern, opts Options, co callObs, t0 time.Time, parseNanos int64, src string) (*Result, error) {
	ctx, cancel, err := servingContext(ctx, opts)
	if err != nil {
		co.abandon(err)
		return nil, err
	}
	defer cancel()
	b := opts.budget(ctx)
	co.track(b)
	nsp := co.child("normalize")
	nt := time.Now()
	qm := pattern.Minimize(q)
	parseNanos += int64(time.Since(nt))
	nsp.End()
	// Seam check: parse/normalize → filter.
	if err := b.CtxErr(); err != nil {
		co.abandon(err)
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, err := s.answerLocked(qm, opts.Strategy, b, !opts.NoPlanCache, co)
	s.observe(qm, err == nil && isViewStrategy(opts.Strategy), err)
	if err != nil {
		s.finishCall(co, b, t0, src, qm, opts.Strategy.String(), nil, err)
		return nil, err
	}
	res.ParseNanos = parseNanos
	truncate(res, opts.MaxAnswers)
	s.finishCall(co, b, t0, src, qm, opts.Strategy.String(), res, nil)
	return res, nil
}

// isViewStrategy reports whether the strategy answers from materialized
// views (as opposed to direct evaluation on the document).
func isViewStrategy(s Strategy) bool {
	switch s {
	case MN, MV, HV, CV:
		return true
	}
	return false
}

// SelectContext runs view selection only, with cancellation and budgets.
// Strategy comes from the strat argument; opts contributes Timeout,
// MaxSteps and MaxHoms.
func (s *System) SelectContext(ctx context.Context, q *pattern.Pattern, strat Strategy, opts Options) (*selection.Selection, int, error) {
	co, _ := s.startObs(opts)
	ctx, cancel, err := servingContext(ctx, opts)
	if err != nil {
		co.abandon(err)
		return nil, 0, err
	}
	defer cancel()
	b := opts.budget(ctx)
	co.track(b)
	s.mu.RLock()
	defer s.mu.RUnlock()
	sel, info, err := s.selectLocked(pattern.Minimize(q), strat, b, co)
	if co.sp != nil {
		co.sp.Err(err)
		co.sp.End()
	}
	return sel, info.cand, err
}

// AnswerResilient serves the query through a fallback chain (default
// HV → MV → contained → BN), degrading on ErrNotAnswerable, budget
// exhaustion and contained internal failures. The returned Result
// records which rung answered (Rung) and why earlier rungs were skipped
// (DegradedReasons). Context cancellation aborts the whole chain — a
// caller that went away is not served a degraded answer.
func (s *System) AnswerResilient(ctx context.Context, src string, opts Options) (*Result, error) {
	q, err := xpath.Parse(src)
	if err != nil {
		return nil, err
	}
	return s.AnswerPatternResilient(ctx, q, opts)
}

// AnswerPatternResilient is AnswerResilient for already-parsed queries.
func (s *System) AnswerPatternResilient(ctx context.Context, q *pattern.Pattern, opts Options) (*Result, error) {
	co, t0 := s.startObs(opts)
	ctx, cancel, err := servingContext(ctx, opts)
	if err != nil {
		co.abandon(err)
		return nil, err
	}
	defer cancel()
	chain := opts.Fallback
	if len(chain) == 0 {
		chain = DefaultFallback()
	}
	q = pattern.Minimize(q)
	var reasons []string
	var lastErr error
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rung := range chain {
		if err := ctx.Err(); err != nil {
			co.abandon(err)
			return nil, err
		}
		// Each rung gets a fresh step/hom budget; the deadline is shared.
		b := opts.budget(ctx)
		co.track(b)
		var rsp *Span
		if co.sp != nil {
			rsp = co.sp.Child("rung:" + rung.String())
		}
		res, err := s.answerRungLocked(q, rung, b, !opts.NoPlanCache, co.withSpan(rsp))
		if err == nil {
			rsp.End()
			res.Rung = rung.String()
			res.Degraded = len(reasons) > 0
			res.DegradedReasons = reasons
			truncate(res, opts.MaxAnswers)
			s.observe(q, viewRung(rung), nil)
			if co.m != nil && int(rung) < len(co.m.rungServed) {
				co.m.rungServed[rung].Inc()
			}
			s.finishCall(co, b, t0, "", q, "resilient", res, nil)
			return res, nil
		}
		if rsp != nil {
			rsp.Err(err)
			rsp.End()
		}
		if !degradable(err) {
			s.finishCall(co, b, t0, "", q, "resilient", nil, err)
			return nil, err
		}
		if co.m != nil {
			co.m.rungFallbacks.Inc()
		}
		lastErr = err
		reasons = append(reasons, fmt.Sprintf("%s: %v", rung, err))
	}
	if lastErr == nil {
		lastErr = ErrNotAnswerable // empty chain cannot happen, but be safe
	}
	s.observe(q, false, lastErr)
	err = fmt.Errorf("xpathviews: all fallback rungs failed (%s): %w",
		strings.Join(reasons, "; "), lastErr)
	s.finishCall(co, nil, t0, "", q, "resilient", nil, err)
	return nil, err
}

// viewRung reports whether a fallback rung answers from materialized
// views (equivalent rewriting), as opposed to direct or contained
// evaluation.
func viewRung(r Rung) bool {
	switch r {
	case RungHV, RungMV, RungCV, RungMN:
		return true
	}
	return false
}

// answerRungLocked answers one fallback rung under s.mu (read).
func (s *System) answerRungLocked(q *pattern.Pattern, rung Rung, b *budget.B, useCache bool, co callObs) (*Result, error) {
	switch rung {
	case RungHV:
		return s.answerLocked(q, HV, b, useCache, co)
	case RungMV:
		return s.answerLocked(q, MV, b, useCache, co)
	case RungCV:
		return s.answerLocked(q, CV, b, useCache, co)
	case RungMN:
		return s.answerLocked(q, MN, b, useCache, co)
	case RungBN:
		return s.answerLocked(q, BN, b, useCache, co)
	case RungBF:
		return s.answerLocked(q, BF, b, useCache, co)
	case RungContained:
		res, err := s.containedLocked(q, b, co)
		if err != nil {
			return nil, err
		}
		if len(res.Answers) == 0 && res.Partial {
			// An empty uncertified result carries no information — let the
			// next rung (typically direct evaluation) produce real answers.
			return nil, ErrNotAnswerable
		}
		return res, nil
	default:
		return nil, fmt.Errorf("xpathviews: unknown fallback rung %v", rung)
	}
}

// answerLocked evaluates q under s.mu (read) with panic containment per
// stage. q must already be minimized. useCache routes view strategies
// through the plan cache (see plan.go).
func (s *System) answerLocked(q *pattern.Pattern, strat Strategy, b *budget.B, useCache bool, co callObs) (*Result, error) {
	res := &Result{Strategy: strat}
	switch strat {
	case BN:
		sp := co.child("eval")
		nodes, err := runStage("engine.bn", func() ([]*xmltree.Node, error) {
			return s.bn.EvalBudget(q, b)
		})
		if err != nil {
			sp.Err(err)
			sp.End()
			return nil, err
		}
		if sp != nil {
			sp.SetAttr("engine", "bn")
			sp.SetAttr("nodes", len(nodes))
			sp.End()
		}
		// Seam check: eval → collect.
		if err := b.CtxErr(); err != nil {
			return nil, err
		}
		if err := s.collectDoc(res, nodes); err != nil {
			return nil, err
		}
		return res, nil
	case BF:
		bf := s.lazyBF()
		sp := co.child("eval")
		nodes, err := runStage("engine.bf", func() ([]*xmltree.Node, error) {
			return bf.EvalBudget(q, b)
		})
		if err != nil {
			sp.Err(err)
			sp.End()
			return nil, err
		}
		if sp != nil {
			sp.SetAttr("engine", "bf")
			sp.SetAttr("nodes", len(nodes))
			sp.End()
		}
		// Seam check: eval → collect.
		if err := b.CtxErr(); err != nil {
			return nil, err
		}
		if err := s.collectDoc(res, nodes); err != nil {
			return nil, err
		}
		return res, nil
	case MN, MV, HV, CV:
		psp := co.child("plan")
		pl, hit, err := s.planLocked(q, strat, b, useCache, co.withSpan(psp))
		if err != nil {
			if psp != nil {
				psp.Err(err)
				psp.End()
			}
			return nil, err
		}
		annotatePlanSpan(psp, pl, cacheLabel(hit, useCache))
		co.fillExplainPlan(s, pl, hit, useCache)
		res, err := s.answerPlanLocked(pl, strat, b, co)
		if err != nil {
			return nil, err
		}
		res.PlanCacheHit = hit
		if !hit {
			res.FilterNanos = pl.info.filterNanos
			res.SelectNanos = pl.info.selectNanos
		}
		return res, nil
	default:
		return nil, fmt.Errorf("xpathviews: unknown strategy %v", strat)
	}
}

// answerPlanLocked runs §V's rewriting — the only per-call, data-
// dependent stage — for a (possibly cached) plan under s.mu (read). A
// plan carrying a cached negative outcome returns it immediately.
func (s *System) answerPlanLocked(pl *queryPlan, strat Strategy, b *budget.B, co callObs) (*Result, error) {
	// Feed the drift detector before the negative-plan check:
	// unanswerable traffic is exactly the drift the design workload did
	// not predict, so it must shape the recent sketch too. The hash was
	// computed at plan time; disarmed detectors return after one load.
	vs := s.vstats.Load()
	if vs != nil {
		if checked, ppm, crossed := vs.Drift.Observe(pl.patHash); checked && co.m != nil {
			co.m.driftGauge.Set(ppm)
			if crossed {
				co.m.driftEvents.Inc()
			}
		}
	}
	if pl.err != nil {
		if co.m != nil {
			co.m.planNegative.Inc()
		}
		return nil, pl.err
	}
	// Seam check: the plan stage (or a cache hit) just completed; a caller
	// that disconnected during it should not pay for the rewriting.
	if err := b.CtxErr(); err != nil {
		return nil, err
	}
	res := &Result{Strategy: strat, CandidatesAfterFilter: pl.info.cand, HomsComputed: pl.sel.HomsComputed}
	for _, c := range pl.sel.Covers {
		res.ViewsUsed = append(res.ViewsUsed, c.View.ID)
	}
	rsp := co.child("rewrite")
	rstart := time.Now()
	out, err := runStage("rewrite", func() (*rewrite.Result, error) {
		return rewrite.ExecuteOptions(pl.q, pl.sel, s.fst, b, rewrite.Options{Plan: pl.join})
	})
	if err != nil {
		rsp.Err(err)
		rsp.End()
		return nil, err
	}
	res.RefineNanos = out.RefineNanos
	res.JoinNanos = out.JoinNanos
	res.ExtractNanos = out.ExtractNanos
	res.JoinPartitions = out.JoinPartitions
	res.GallopHits = out.GallopHits
	// Attribute the answered call to its contributing views and fold the
	// predicted §IV-B cost against the realized rewrite time into the
	// calibration model. All counters are atomics over pre-grown slots —
	// no allocation on the steady-state path.
	if vs != nil {
		rel := vs.RecordQuery(pl.predCost, out.RefineNanos+out.JoinNanos+out.ExtractNanos)
		if rel >= 0 && co.m != nil {
			co.m.calErr.Observe(int64(rel * 1e6))
		}
		for i, c := range pl.sel.Covers {
			var scanned, kept int64
			if i < rewrite.AttrMaxViews {
				scanned = int64(out.ViewScanned[i])
				kept = int64(out.ViewKept[i])
			}
			vs.RecordViewHit(c.View.ID, scanned, kept, rel)
		}
	}
	if co.m != nil && out.JoinPartitions > 0 {
		co.m.joinsTotal.Inc()
		co.m.joinPartsTotal.Add(int64(out.JoinPartitions))
		co.m.joinPartsHist.Observe(int64(out.JoinPartitions))
		co.m.joinGallopTotal.Add(out.GallopHits)
		co.m.joinGallopHist.Observe(out.GallopHits)
	}
	if rsp != nil {
		t := rstart
		ref := rsp.ChildTimed("refine", t, time.Duration(out.RefineNanos))
		ref.SetAttr("workers", out.RefineWorkers)
		t = t.Add(time.Duration(out.RefineNanos))
		if out.JoinNanos > 0 {
			jn := rsp.ChildTimed("join", t, time.Duration(out.JoinNanos))
			jn.SetAttr("fragments_joined", out.FragmentsJoined)
			jn.SetAttr("workers", out.JoinWorkers)
			t = t.Add(time.Duration(out.JoinNanos))
		}
		ext := rsp.ChildTimed("extract", t, time.Duration(out.ExtractNanos))
		ext.SetAttr("workers", out.ExtractWorkers)
		rsp.SetAttr("views", len(pl.sel.Covers))
		rsp.SetAttr("fragments_scanned", out.FragmentsScanned)
		rsp.End()
	}
	// Seam check: rewrite → collect.
	if err := b.CtxErr(); err != nil {
		return nil, err
	}
	csp := co.child("collect")
	for _, a := range out.Answers {
		res.Answers = append(res.Answers, Answer{Code: a.Code, Node: a.Node})
	}
	if csp != nil {
		csp.SetAttr("answers", len(res.Answers))
		csp.End()
	}
	return res, nil
}

// servingContext applies Options.Timeout and rejects already-done
// contexts up front, so even a query whose selection would be
// exponential returns immediately.
func servingContext(ctx context.Context, opts Options) (context.Context, context.CancelFunc, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if opts.Timeout > 0 {
		ctx, cancel := context.WithTimeout(ctx, opts.Timeout)
		return ctx, cancel, nil
	}
	return ctx, func() {}, nil
}

// degradable reports whether a rung failure should fall through to the
// next rung rather than abort the chain. Cancellation and deadline
// expiry are not degradable: the caller is gone.
func degradable(err error) bool {
	return errors.Is(err, ErrNotAnswerable) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrInternal)
}

// truncate enforces Options.MaxAnswers on a successful result.
func truncate(res *Result, max int) {
	if max > 0 && len(res.Answers) > max {
		res.Answers = res.Answers[:max]
		res.Truncated = true
	}
}
