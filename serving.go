package xpathviews

// This file is the hardened serving layer: context-aware answering with
// per-call deadlines and resource budgets, panic containment, and
// graceful degradation through a configurable fallback chain. The batch
// entry points (Answer, AnswerPattern, Select) are thin wrappers over
// these with a background context and no budgets.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"xpathviews/internal/budget"
	"xpathviews/internal/faults"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/xmltree"
	"xpathviews/internal/xpath"
)

// ErrBudgetExceeded re-exports the pipeline's budget exhaustion error:
// AnswerContext returns an error matching it (errors.Is) when MaxSteps
// or MaxHoms ran out before the query completed.
var ErrBudgetExceeded = budget.ErrBudget

// ErrInternal marks a contained pipeline failure: an injected fault or a
// recovered panic inside one of the answering stages. The concrete error
// is an *InternalError carrying the stage name.
var ErrInternal = errors.New("xpathviews: internal error")

// InternalError is a contained failure of one pipeline stage.
type InternalError struct {
	// Stage is the pipeline stage that failed, e.g. "rewrite.join".
	Stage string
	// Cause is the underlying error; recovered panics are wrapped in an
	// error describing the panic value.
	Cause error
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("xpathviews: internal error at %s: %v", e.Stage, e.Cause)
}

// Unwrap makes the error match both ErrInternal and its cause chain.
func (e *InternalError) Unwrap() []error { return []error{ErrInternal, e.Cause} }

// Options tunes one serving-layer call. The zero value means strategy BN
// with no limits.
type Options struct {
	// Strategy selects how AnswerContext answers (ignored by
	// AnswerResilient, which tries the Fallback chain instead).
	Strategy Strategy
	// Timeout, when positive, bounds the call with a derived deadline on
	// top of the caller's context.
	Timeout time.Duration
	// MaxAnswers truncates the answer list (0 = unlimited); Result.
	// Truncated reports when it bit.
	MaxAnswers int
	// MaxHoms caps homomorphism computations during selection — the cost
	// driver of §IV (0 = unlimited).
	MaxHoms int
	// MaxSteps caps cheap pipeline work units: traversal node visits,
	// subset-enumeration search nodes, fragments scanned/joined
	// (0 = unlimited). Exhaustion yields ErrBudgetExceeded.
	MaxSteps int64
	// Fallback overrides AnswerResilient's rung chain; nil means
	// DefaultFallback().
	Fallback []Rung
	// NoPlanCache bypasses the query-plan cache (see plan.go): the call
	// neither reads cached plans nor writes new ones. Use it for
	// one-shot queries that should not displace the hot set, or to
	// measure the uncached pipeline.
	NoPlanCache bool
}

// budget builds the call's budget over ctx.
func (o Options) budget(ctx context.Context) *budget.B {
	return budget.New(ctx, o.MaxSteps, int64(o.MaxHoms))
}

// Rung is one step of AnswerResilient's fallback chain.
type Rung int

const (
	// RungHV answers with heuristic selection over filtered candidates.
	RungHV Rung = iota
	// RungMV answers with exact minimum selection over filtered
	// candidates.
	RungMV
	// RungCV answers with cost-based selection over filtered candidates.
	RungCV
	// RungMN answers with exact minimum selection without filtering.
	RungMN
	// RungContained answers with a contained (sound, possibly partial)
	// rewriting; it degrades completeness, never soundness.
	RungContained
	// RungBN evaluates directly on the document, navigationally.
	RungBN
	// RungBF evaluates directly with full index support.
	RungBF
)

var rungNames = [...]string{"HV", "MV", "CV", "MN", "contained", "BN", "BF"}

func (r Rung) String() string {
	if int(r) < len(rungNames) {
		return rungNames[r]
	}
	return fmt.Sprintf("Rung(%d)", int(r))
}

// DefaultFallback is AnswerResilient's chain when Options.Fallback is
// nil: cheapest equivalent rewriting first, then exact selection, then a
// sound-but-partial rewriting, then direct evaluation as the rung of
// last resort.
func DefaultFallback() []Rung { return []Rung{RungHV, RungMV, RungContained, RungBN} }

// runStage executes one pipeline stage with panic containment: a panic
// or an injected fault surfaces as an *InternalError naming the stage;
// budget and answerability errors pass through untouched.
func runStage[T any](stage string, f func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			out = zero
			err = &InternalError{Stage: stage, Cause: fmt.Errorf("panic: %v", r)}
		}
	}()
	out, err = f()
	if err != nil && errors.Is(err, faults.ErrInjected) {
		err = &InternalError{Stage: stage, Cause: err}
	}
	return out, err
}

// AnswerContext evaluates the query under the chosen strategy with
// cancellation and resource budgets. It returns promptly once ctx is
// done (context.Canceled / context.DeadlineExceeded) or a budget runs
// out (ErrBudgetExceeded), even mid-way through the exponential exact
// selection. Pipeline panics and injected faults come back as
// ErrInternal, never as a crash.
func (s *System) AnswerContext(ctx context.Context, src string, opts Options) (*Result, error) {
	if cachePlans(opts) {
		return s.answerSrcCached(ctx, src, opts)
	}
	q, err := xpath.Parse(src)
	if err != nil {
		return nil, err
	}
	return s.AnswerPatternContext(ctx, q, opts)
}

// answerSrcCached is AnswerContext's plan-cached path: the raw source
// spelling is itself a cache key (aliasing the canonical pattern key),
// so a textual repeat skips parsing, minimization, filtering and
// selection — only §V's rewriting runs.
func (s *System) answerSrcCached(ctx context.Context, src string, opts Options) (*Result, error) {
	ctx, cancel, err := servingContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer cancel()
	b := opts.budget(ctx)
	s.mu.RLock()
	defer s.mu.RUnlock()
	srcKey := planKey(opts.Strategy, normalizeQuery(src))
	pl, ok := s.lookupPlan(srcKey)
	if !ok {
		q, err := xpath.Parse(src)
		if err != nil {
			return nil, err
		}
		qm := pattern.Minimize(q)
		pl, err = s.planLocked(qm, opts.Strategy, b, true)
		if err != nil {
			s.observe(qm, false, err)
			return nil, err
		}
		s.putPlanAlias(srcKey, pl)
	}
	res, err := s.answerPlanLocked(pl, opts.Strategy, b)
	s.observe(pl.q, err == nil, err)
	if err != nil {
		return nil, err
	}
	truncate(res, opts.MaxAnswers)
	return res, nil
}

// AnswerPatternContext is AnswerContext for already-parsed queries.
func (s *System) AnswerPatternContext(ctx context.Context, q *pattern.Pattern, opts Options) (*Result, error) {
	ctx, cancel, err := servingContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer cancel()
	b := opts.budget(ctx)
	qm := pattern.Minimize(q)
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, err := s.answerLocked(qm, opts.Strategy, b, !opts.NoPlanCache)
	s.observe(qm, err == nil && isViewStrategy(opts.Strategy), err)
	if err != nil {
		return nil, err
	}
	truncate(res, opts.MaxAnswers)
	return res, nil
}

// isViewStrategy reports whether the strategy answers from materialized
// views (as opposed to direct evaluation on the document).
func isViewStrategy(s Strategy) bool {
	switch s {
	case MN, MV, HV, CV:
		return true
	}
	return false
}

// SelectContext runs view selection only, with cancellation and budgets.
// Strategy comes from the strat argument; opts contributes Timeout,
// MaxSteps and MaxHoms.
func (s *System) SelectContext(ctx context.Context, q *pattern.Pattern, strat Strategy, opts Options) (*selection.Selection, int, error) {
	ctx, cancel, err := servingContext(ctx, opts)
	if err != nil {
		return nil, 0, err
	}
	defer cancel()
	b := opts.budget(ctx)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.selectLocked(pattern.Minimize(q), strat, b)
}

// AnswerResilient serves the query through a fallback chain (default
// HV → MV → contained → BN), degrading on ErrNotAnswerable, budget
// exhaustion and contained internal failures. The returned Result
// records which rung answered (Rung) and why earlier rungs were skipped
// (DegradedReasons). Context cancellation aborts the whole chain — a
// caller that went away is not served a degraded answer.
func (s *System) AnswerResilient(ctx context.Context, src string, opts Options) (*Result, error) {
	q, err := xpath.Parse(src)
	if err != nil {
		return nil, err
	}
	return s.AnswerPatternResilient(ctx, q, opts)
}

// AnswerPatternResilient is AnswerResilient for already-parsed queries.
func (s *System) AnswerPatternResilient(ctx context.Context, q *pattern.Pattern, opts Options) (*Result, error) {
	ctx, cancel, err := servingContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer cancel()
	chain := opts.Fallback
	if len(chain) == 0 {
		chain = DefaultFallback()
	}
	q = pattern.Minimize(q)
	var reasons []string
	var lastErr error
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rung := range chain {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Each rung gets a fresh step/hom budget; the deadline is shared.
		res, err := s.answerRungLocked(q, rung, opts.budget(ctx), !opts.NoPlanCache)
		if err == nil {
			res.Rung = rung.String()
			res.Degraded = len(reasons) > 0
			res.DegradedReasons = reasons
			truncate(res, opts.MaxAnswers)
			s.observe(q, viewRung(rung), nil)
			return res, nil
		}
		if !degradable(err) {
			return nil, err
		}
		lastErr = err
		reasons = append(reasons, fmt.Sprintf("%s: %v", rung, err))
	}
	if lastErr == nil {
		lastErr = ErrNotAnswerable // empty chain cannot happen, but be safe
	}
	s.observe(q, false, lastErr)
	return nil, fmt.Errorf("xpathviews: all fallback rungs failed (%s): %w",
		strings.Join(reasons, "; "), lastErr)
}

// viewRung reports whether a fallback rung answers from materialized
// views (equivalent rewriting), as opposed to direct or contained
// evaluation.
func viewRung(r Rung) bool {
	switch r {
	case RungHV, RungMV, RungCV, RungMN:
		return true
	}
	return false
}

// answerRungLocked answers one fallback rung under s.mu (read).
func (s *System) answerRungLocked(q *pattern.Pattern, rung Rung, b *budget.B, useCache bool) (*Result, error) {
	switch rung {
	case RungHV:
		return s.answerLocked(q, HV, b, useCache)
	case RungMV:
		return s.answerLocked(q, MV, b, useCache)
	case RungCV:
		return s.answerLocked(q, CV, b, useCache)
	case RungMN:
		return s.answerLocked(q, MN, b, useCache)
	case RungBN:
		return s.answerLocked(q, BN, b, useCache)
	case RungBF:
		return s.answerLocked(q, BF, b, useCache)
	case RungContained:
		res, err := s.containedLocked(q, b)
		if err != nil {
			return nil, err
		}
		if len(res.Answers) == 0 && res.Partial {
			// An empty uncertified result carries no information — let the
			// next rung (typically direct evaluation) produce real answers.
			return nil, ErrNotAnswerable
		}
		return res, nil
	default:
		return nil, fmt.Errorf("xpathviews: unknown fallback rung %v", rung)
	}
}

// answerLocked evaluates q under s.mu (read) with panic containment per
// stage. q must already be minimized. useCache routes view strategies
// through the plan cache (see plan.go).
func (s *System) answerLocked(q *pattern.Pattern, strat Strategy, b *budget.B, useCache bool) (*Result, error) {
	res := &Result{Strategy: strat}
	switch strat {
	case BN:
		nodes, err := runStage("engine.bn", func() ([]*xmltree.Node, error) {
			return s.bn.EvalBudget(q, b)
		})
		if err != nil {
			return nil, err
		}
		if err := s.collectDoc(res, nodes); err != nil {
			return nil, err
		}
		return res, nil
	case BF:
		bf := s.lazyBF()
		nodes, err := runStage("engine.bf", func() ([]*xmltree.Node, error) {
			return bf.EvalBudget(q, b)
		})
		if err != nil {
			return nil, err
		}
		if err := s.collectDoc(res, nodes); err != nil {
			return nil, err
		}
		return res, nil
	case MN, MV, HV, CV:
		pl, err := s.planLocked(q, strat, b, useCache)
		if err != nil {
			return nil, err
		}
		return s.answerPlanLocked(pl, strat, b)
	default:
		return nil, fmt.Errorf("xpathviews: unknown strategy %v", strat)
	}
}

// answerPlanLocked runs §V's rewriting — the only per-call, data-
// dependent stage — for a (possibly cached) plan under s.mu (read). A
// plan carrying a cached negative outcome returns it immediately.
func (s *System) answerPlanLocked(pl *queryPlan, strat Strategy, b *budget.B) (*Result, error) {
	if pl.err != nil {
		return nil, pl.err
	}
	res := &Result{Strategy: strat, CandidatesAfterFilter: pl.cand, HomsComputed: pl.sel.HomsComputed}
	for _, c := range pl.sel.Covers {
		res.ViewsUsed = append(res.ViewsUsed, c.View.ID)
	}
	out, err := runStage("rewrite", func() (*rewrite.Result, error) {
		return rewrite.ExecuteBudget(pl.q, pl.sel, s.fst, b)
	})
	if err != nil {
		return nil, err
	}
	for _, a := range out.Answers {
		res.Answers = append(res.Answers, Answer{Code: a.Code, Node: a.Node})
	}
	return res, nil
}

// servingContext applies Options.Timeout and rejects already-done
// contexts up front, so even a query whose selection would be
// exponential returns immediately.
func servingContext(ctx context.Context, opts Options) (context.Context, context.CancelFunc, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if opts.Timeout > 0 {
		ctx, cancel := context.WithTimeout(ctx, opts.Timeout)
		return ctx, cancel, nil
	}
	return ctx, func() {}, nil
}

// degradable reports whether a rung failure should fall through to the
// next rung rather than abort the chain. Cancellation and deadline
// expiry are not degradable: the caller is gone.
func degradable(err error) bool {
	return errors.Is(err, ErrNotAnswerable) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrInternal)
}

// truncate enforces Options.MaxAnswers on a successful result.
func truncate(res *Result, max int) {
	if max > 0 && len(res.Answers) > max {
		res.Answers = res.Answers[:max]
		res.Truncated = true
	}
}
