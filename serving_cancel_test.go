package xpathviews_test

// Tests for the stage-seam cancellation checks: a context that dies
// between any two pipeline stages (parse → filter → select → refine →
// join → extract → collect) must abort the call with the context's error
// before the next stage starts, so a disconnected HTTP client cancels
// server-side work promptly.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"xpathviews"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/xmark"
)

// flipCtx is a context whose Err flips to context.Canceled after a fixed
// number of polls. It makes seam coverage deterministic: by sweeping the
// flip point across every poll a full pipeline run performs, the
// cancellation lands between each consecutive pair of checks — including
// exactly at every stage seam.
type flipCtx struct {
	polls atomic.Int64
	after int64
}

func (c *flipCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *flipCtx) Done() <-chan struct{}       { return nil }
func (c *flipCtx) Value(any) any               { return nil }
func (c *flipCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCancellationObservedAtEverySeam sweeps a poll-counting context's
// flip point across an entire HV pipeline run on the paper's running
// example. Every call must finish (no hangs) with either a clean success
// or context.Canceled — never a partial result after the flip.
func TestCancellationObservedAtEverySeam(t *testing.T) {
	sys, err := xpathviews.OpenWithFST(paperdata.BookTree(), paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range paperdata.TableIViews() {
		if _, err := sys.AddView(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Count how many context polls one full uncached run performs.
	probe := &flipCtx{after: 1 << 30}
	if _, err := sys.AnswerContext(probe, paperdata.QueryE,
		xpathviews.Options{Strategy: xpathviews.HV, NoPlanCache: true}); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	total := probe.polls.Load()
	if total < 3 {
		t.Fatalf("probe run polled the context only %d times; seam checks missing", total)
	}

	canceled := 0
	for after := int64(0); after < total; after++ {
		ctx := &flipCtx{after: after}
		res, err := sys.AnswerContext(ctx, paperdata.QueryE,
			xpathviews.Options{Strategy: xpathviews.HV, NoPlanCache: true})
		switch {
		case err == nil:
			// The flip landed after the last poll of a (shorter) aborted-
			// free run; a complete result is fine.
			if len(res.Answers) == 0 {
				t.Fatalf("after=%d: success with no answers", after)
			}
		case errors.Is(err, context.Canceled):
			canceled++
		default:
			t.Fatalf("after=%d: err = %v, want context.Canceled or success", after, err)
		}
	}
	if canceled == 0 {
		t.Fatal("no flip point produced a cancellation")
	}
}

// TestCancellationLatency is the wall-clock acceptance check: canceling
// the context while a large-document query runs must return well within
// the cooperative polling bound, not after the query finishes.
func TestCancellationLatency(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.06, Seed: 41})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = sys.AnswerContext(ctx, "//*", xpathviews.Options{Strategy: xpathviews.BN})
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (or a fast success)", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v to be observed, want prompt return", elapsed)
	}
}
