module xpathviews

go 1.22
