package xpathviews_test

// Maintenance benchmark report. Gated behind XPV_BENCH_MAINTAIN because
// it runs minutes of repeated mutation + full-rematerialization cycles;
// `make bench-maintain` sets the gate and regenerates BENCH_maintain.json.
//
// Beyond producing the report, this asserts the two claims the subsystem
// is sold on: incremental maintenance beats rematerializing every view
// by >= 5x for small-subtree mutations, and scoped (per-view generation)
// plan invalidation keeps a strictly higher plan-cache hit rate than the
// global-bump policy under an update storm.

import (
	"encoding/json"
	"os"
	"testing"

	"xpathviews/internal/experiments"
)

func TestMaintainBenchReport(t *testing.T) {
	if os.Getenv("XPV_BENCH_MAINTAIN") == "" {
		t.Skip("set XPV_BENCH_MAINTAIN=1 (or run `make bench-maintain`) to run the maintenance benchmark and write BENCH_maintain.json")
	}
	cfg := experiments.MaintainDefault()
	report, rows, storm, err := experiments.MaintainReport(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range rows {
		t.Logf("%-14s %2d nodes: inc %9d ns/op, full %11d ns/op, speedup %6.1fx (%.1f dirty views/op)",
			r.Name, r.SubtreeNodes, r.IncNsPerOp, r.FullNsPerOp, r.Speedup, r.DirtyViews)
		if r.Speedup <= 1 {
			t.Errorf("%s: incremental maintenance slower than full rematerialization (%.2fx)", r.Name, r.Speedup)
		}
	}
	// The headline claim: small-subtree mutations must not pay anything
	// near the full-rematerialization cost.
	small := rows[0]
	if small.Speedup < 5 {
		t.Errorf("small-subtree speedup %.1fx, want >= 5x", small.Speedup)
	}

	scoped, global := storm[0], storm[1]
	t.Logf("update storm: scoped %d/%d hits (%.2f), global %d/%d hits (%.2f)",
		scoped.Hits, scoped.Queries, scoped.HitRate, global.Hits, global.Queries, global.HitRate)
	if scoped.HitRate <= global.HitRate {
		t.Errorf("scoped invalidation hit rate %.3f not above global %.3f", scoped.HitRate, global.HitRate)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_maintain.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_maintain.json")
}
