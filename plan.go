package xpathviews

// This file is the serving layer's query-plan cache: the expensive
// query-dependent but data-independent work — parsing, VFILTER filtering
// (§III) and view selection (§IV) — is memoized per normalized query
// string and strategy, so a repetitive workload (the premise of Mandhani
// & Suciu's cached-view scenario, the paper's [19]) pays for each plan
// once. The rewriting of §V still executes per call: it is the only
// stage whose output depends on which fragments join today.
//
// Plans are invalidated lazily at two granularities. View-SET changes
// (AddView, RemoveView, CompactFilter, EnableAttributePruning, and
// ApplyAdvice through AddView) bump a global generation counter on
// System: a plan written under an older generation is recomputed on its
// next touch, so a cached selection can never serve a dropped view.
// Document MUTATIONS (InsertSubtree/DeleteSubtree, see mutate.go) are
// scoped: each plan records the (view, generation) pairs its selection
// covers, maintenance bumps only the generations of views whose
// fragments actually changed, and a validator callback run inside the
// cache drops exactly the plans that touch a dirty view — the rest of
// the cache survives the update storm. A thundering herd on a cold key
// coalesces onto one computation (singleflight).

import (
	"errors"
	"strings"

	"xpathviews/internal/budget"
	"xpathviews/internal/pattern"
	"xpathviews/internal/plancache"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/viewstats"
)

// PlanCacheStats re-exports the plan cache's effectiveness counters:
// Hits, Misses, Evictions, and Invalidations (entries dropped because
// the view set changed under them).
type PlanCacheStats = plancache.Stats

// PlanCacheStats returns a snapshot of the plan cache counters.
func (s *System) PlanCacheStats() PlanCacheStats { return s.plans.Stats() }

// PlanCacheLen returns the number of live cached plans (stale entries
// included until their next touch).
func (s *System) PlanCacheLen() int { return s.plans.Len() }

// queryPlan is one memoized plan: everything AnswerContext computes
// before touching fragment data. It is immutable once cached — the
// minimized pattern and the selection are shared read-only by every
// query that hits it.
type queryPlan struct {
	// q is the minimized pattern the selection was computed against;
	// rewriting must run with exactly this pattern (the selection's
	// covers point into its nodes).
	q *pattern.Pattern
	// sel is the chosen selection; nil when err is set.
	sel *selection.Selection
	// join is the data-independent holistic-join skeleton (Δ-view
	// choice, upper twig, resolved pins) for (q, sel), computed once at
	// plan time so cache hits skip the rebuild inside the rewrite. Nil
	// when err is set; rewrite recomputes on the fly if absent.
	join *rewrite.JoinPlan
	// info records how the plan was computed (candidate set, stage
	// timings) for Result accounting and Explain.
	info planInfo
	// err caches a negative outcome (ErrNotAnswerable): repeated
	// unanswerable queries — the common case in a fallback chain — skip
	// filtering and selection too.
	err error
	// predCost is the §IV-B predicted cost of the selection (sum of
	// selection.DefaultCostParams().Cost over the chosen views),
	// captured at plan time so serving can calibrate the cost model
	// against realized execution time without touching the registry.
	// Zero for negative plans.
	predCost float64
	// patHash is the pattern-sketch hash of the minimized query
	// (viewstats.HashQuery over q.String()), feeding the workload-drift
	// detector on every touch of this plan — including negative plans:
	// unanswerable traffic is drift too.
	patHash uint64
	// covers records the views the selection uses and their content
	// generations at plan time; planValidLocked compares them against the
	// live registry so document mutations only evict the plans they
	// dirtied. Negative plans cover nothing: answerability is
	// pattern-level and survives content changes.
	covers []planCover
}

// planCover is one (view, generation) dependency of a cached plan.
type planCover struct {
	id  int
	v   *views.View
	gen uint64
}

// planInfo is the observable by-product of computing a plan: the
// filtering outcome and the per-stage wall time. Stored with the plan
// so a later Explain of a cache hit can still show the surviving view
// set and what the plan cost to build.
type planInfo struct {
	// cand is |V'| after filtering (the registry size for MN).
	cand int
	// candIDs are the surviving view IDs after VFILTER (nil for MN).
	candIDs []int
	// allViews marks MN: no filtering ran, every view was considered.
	allViews bool
	// filterNanos/selectNanos are the plan-computation stage times.
	filterNanos int64
	selectNanos int64
}

// cacheLabel names the plan-cache outcome for spans and Explain.
func cacheLabel(hit, useCache bool) string {
	switch {
	case !useCache:
		return "bypass"
	case hit:
		return "hit"
	default:
		return "miss"
	}
}

// cachePlans reports whether this call's options route through the plan
// cache: only view strategies have a plan worth memoizing, and
// NoPlanCache opts out.
func cachePlans(o Options) bool { return !o.NoPlanCache && isViewStrategy(o.Strategy) }

// planKey builds the cache key for a normalized query under a strategy.
func planKey(strat Strategy, normalized string) string {
	return strat.String() + "\x00" + normalized
}

// NormalizeQuery canonicalizes the textual spelling of a query exactly
// the way the plan cache keys plans. Exported so serving layers (the
// xpvserved daemon) can key answer-level singleflight coalescing on the
// same spelling classes the plan cache uses: two requests whose queries
// normalize identically share one pipeline execution.
func NormalizeQuery(src string) string { return normalizeQuery(src) }

// normalizeQuery canonicalizes the textual spelling of a query for use
// as a cache key: whitespace outside quoted attribute literals is
// dropped, so "//a / b" and "//a/b" share a plan. Distinct-but-
// equivalent spellings that survive normalization simply occupy their
// own alias entries pointing at independently computed (identical)
// plans.
func normalizeQuery(src string) string {
	if !strings.ContainsAny(src, " \t\n\r") {
		return src
	}
	var b strings.Builder
	b.Grow(len(src))
	var quote byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			b.WriteByte(c)
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
			b.WriteByte(c)
		case ' ', '\t', '\n', '\r':
			// skip
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// bumpPlanGen invalidates every cached plan lazily. Callers hold the
// write lock (mu), so no reader observes the new view set under an old
// generation.
func (s *System) bumpPlanGen() { s.planGen.Add(1) }

// planLocked returns the plan for the minimized pattern q under strat,
// consulting the cache when useCache is set, and reports whether it was
// served from the cache. Called under s.mu (read): the generation cannot
// change while we hold it, so a plan computed here is valid for this
// call even if it is evicted concurrently.
//
// Exactly one of the hit/miss counters on co's registry is incremented
// per call that obtains a plan through the cache; bypasses count
// separately. The returned plan may carry a cached negative outcome in
// pl.err; transient failures (budget exhaustion, cancellation, contained
// internal errors) are returned as err and never cached.
func (s *System) planLocked(q *pattern.Pattern, strat Strategy, b *budget.B, useCache bool, co callObs) (*queryPlan, bool, error) {
	if !useCache {
		if co.m != nil {
			co.m.planBypass.Inc()
		}
		pl, err := s.computePlanLocked(q, strat, b, co)
		return pl, false, err
	}
	gen := s.planGen.Load()
	key := planKey(strat, q.String())
	computed := false
	v, err, shared := s.plans.GetOrComputeValidated(key, gen, s.planValidator(), func() (any, error) {
		computed = true
		return s.computePlanLocked(q, strat, b, co)
	})
	if err != nil {
		if shared {
			// The in-flight leader failed on *its* budget or context;
			// that verdict is not ours. Compute under our own budget,
			// uncached.
			pl, cerr := s.computePlanLocked(q, strat, b, co)
			if cerr == nil {
				co.countPlan(false)
			}
			return pl, false, cerr
		}
		return nil, false, err
	}
	co.countPlan(!computed)
	return v.(*queryPlan), !computed, nil
}

// computePlanLocked runs filtering + selection and wraps the outcome as
// a plan. Only the two cacheable outcomes return a non-nil plan: a
// successful selection, or a definite ErrNotAnswerable.
func (s *System) computePlanLocked(q *pattern.Pattern, strat Strategy, b *budget.B, co callObs) (*queryPlan, error) {
	sel, info, err := s.selectLocked(q, strat, b, co)
	patHash := viewstats.HashQuery(q.String())
	if err != nil {
		if errors.Is(err, ErrNotAnswerable) {
			return &queryPlan{q: q, info: info, err: err, patHash: patHash}, nil
		}
		return nil, err
	}
	pl := &queryPlan{q: q, sel: sel, info: info, patHash: patHash}
	costParams := selection.DefaultCostParams()
	for _, c := range sel.Covers {
		pl.predCost += costParams.Cost(c.View)
	}
	// A selection that passed Answerable always has a Δ-view, so this
	// only fails on malformed hand-built selections; the rewrite stage
	// re-derives (and re-rejects) in that case.
	if jp, jerr := rewrite.PlanJoin(q, sel.Covers); jerr == nil {
		pl.join = jp
	}
	for _, c := range sel.Covers {
		pl.covers = append(pl.covers, planCover{id: c.View.ID, v: c.View, gen: c.View.Gen})
	}
	return pl, nil
}

// planValidator returns the cache validator for scoped invalidation: a
// plan is live while every covered view is still registered as the same
// object at the same content generation. Runs under the shard lock with
// s.mu already held (read or write), which is the established lock
// order; registry and generations only change under s.mu (write), so the
// read here is stable.
func (s *System) planValidator() func(any) bool {
	return func(v any) bool {
		pl, ok := v.(*queryPlan)
		if !ok {
			return false
		}
		for _, c := range pl.covers {
			if s.registry.Get(c.id) != c.v || c.v.Gen != c.gen {
				return false
			}
		}
		return true
	}
}

// putPlanAlias stores pl under an additional key (the raw source
// spelling), so the next AnswerContext with the same text skips parsing
// too. Called under s.mu (read).
func (s *System) putPlanAlias(key string, pl *queryPlan) {
	s.plans.Put(key, s.planGen.Load(), pl)
}

// lookupPlan fetches a plan by key under the current generation and the
// scoped-invalidation validator. Called under s.mu (read).
func (s *System) lookupPlan(key string) (*queryPlan, bool) {
	v, ok := s.plans.GetValidated(key, s.planGen.Load(), s.planValidator())
	if !ok {
		return nil, false
	}
	return v.(*queryPlan), true
}
