package xpathviews_test

// End-to-end coverage for the view observatory (viewstats_report.go):
// per-view utility attribution on the paper's running example,
// maintenance feeding the upkeep side, slow-log view attribution, the
// metrics exposition of the calibration/drift/join-kernel instruments,
// and the workload-drift detector tripping on a shifted XMark workload
// while steady traffic stays quiet. TestViewStatsBenchReport (gated on
// XPV_BENCH_VIEWS, run via `make bench-views`) writes BENCH_views.json.

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"xpathviews"
	"xpathviews/internal/advisor"
	"xpathviews/internal/dewey"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
)

// paperObservatory builds the paper's book system with the Table I
// views and a quiet metrics registry.
func paperObservatory(t testing.TB) *xpathviews.System {
	t.Helper()
	sys, err := xpathviews.OpenWithFST(paperdata.BookTree(), paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range paperdata.TableIViews() {
		if _, err := sys.AddView(src, xpathviews.DefaultFragmentLimit); err != nil {
			t.Fatal(err)
		}
	}
	sys.SetMetricsRegistry(xpathviews.NewMetricsRegistry())
	return sys
}

func viewRow(t *testing.T, rep *xpathviews.ViewStatsSummary, id int) xpathviews.ViewStatReport {
	t.Helper()
	for _, v := range rep.Views {
		if v.ID == id {
			return v
		}
	}
	t.Fatalf("view %d missing from report (%d rows)", id, len(rep.Views))
	return xpathviews.ViewStatReport{}
}

func TestViewStatsAttribution(t *testing.T) {
	sys := paperObservatory(t)
	const calls = 5
	var res *xpathviews.Result
	for i := 0; i < calls; i++ {
		var err error
		res, err = sys.Answer(paperdata.QueryE, xpathviews.HV)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(res.ViewsUsed) != 2 {
		t.Fatalf("paper example should join 2 views, got %v", res.ViewsUsed)
	}
	rep := sys.ViewStatsReport()
	if rep.Queries != calls {
		t.Fatalf("queries = %d, want %d", rep.Queries, calls)
	}
	used := make(map[int]bool)
	for _, id := range res.ViewsUsed {
		used[id] = true
		row := viewRow(t, rep, id)
		if row.Hits != calls {
			t.Fatalf("view %d hits = %d, want %d", id, row.Hits, calls)
		}
		if row.FragsScanned <= 0 || row.FragsKept <= 0 {
			t.Fatalf("view %d volumes: scanned=%d kept=%d", id, row.FragsScanned, row.FragsKept)
		}
		if row.Bytes <= 0 || row.BenefitPerKB <= 0 {
			t.Fatalf("view %d benefit: bytes=%d benefit/KB=%v", id, row.Bytes, row.BenefitPerKB)
		}
		if row.XPath == "" {
			t.Fatalf("view %d has no pattern rendering", id)
		}
	}
	// Bystander views take no hits.
	for _, v := range rep.Views {
		if !used[v.ID] && v.Hits != 0 {
			t.Fatalf("unused view %d has %d hits", v.ID, v.Hits)
		}
	}
	// The first call seeds the cost-model scale; the rest calibrate.
	if rep.ScaleNsPerCost <= 0 {
		t.Fatalf("scale = %v, want > 0", rep.ScaleNsPerCost)
	}
	if rep.CalibrationObs != calls-1 {
		t.Fatalf("calibration obs = %d, want %d", rep.CalibrationObs, calls-1)
	}
	if rep.CalibrationErr < 0 {
		t.Fatalf("calibration err = %v", rep.CalibrationErr)
	}
	// Join-kernel internals surface on the Result too.
	if res.JoinPartitions < 1 {
		t.Fatalf("JoinPartitions = %d, want >= 1 for a 2-view join", res.JoinPartitions)
	}
}

func TestViewStatsDetached(t *testing.T) {
	sys := paperObservatory(t)
	sys.SetViewStats(nil)
	if _, err := sys.Answer(paperdata.QueryE, xpathviews.HV); err != nil {
		t.Fatal(err)
	}
	rep := sys.ViewStatsReport()
	if rep.Queries != 0 || len(rep.Views) != 0 {
		t.Fatalf("detached store must report empty, got %+v", rep)
	}
	// Reattaching resumes accounting.
	sys.SetViewStats(xpathviews.NewViewStats())
	if _, err := sys.Answer(paperdata.QueryE, xpathviews.HV); err != nil {
		t.Fatal(err)
	}
	if rep := sys.ViewStatsReport(); rep.Queries != 1 {
		t.Fatalf("reattached queries = %d, want 1", rep.Queries)
	}
}

func TestViewStatsMaintainFeeds(t *testing.T) {
	sys := paperObservatory(t)
	mres, err := sys.InsertSubtree(dewey.Code{0, 8}, "<s><t/><p/><f><i/></f></s>")
	if err != nil {
		t.Fatal(err)
	}
	if mres.DirtyViews == 0 {
		t.Fatal("insert dirtied no views; fixture no longer exercises maintenance")
	}
	rep := sys.ViewStatsReport()
	var passes, lastSplice int64
	for _, v := range rep.Views {
		passes += v.MaintPasses
		if v.LastSpliceSize > lastSplice {
			lastSplice = v.LastSpliceSize
		}
		if v.MaintPasses > 0 && v.IncrementalFrac <= 0 {
			t.Fatalf("maintained view %d reports zero incremental fraction: %+v", v.ID, v)
		}
	}
	if passes != int64(mres.DirtyViews) {
		t.Fatalf("maintenance passes = %d, want one per dirty view (%d)", passes, mres.DirtyViews)
	}
	if lastSplice <= 0 {
		t.Fatal("no view recorded a dirty-splice size")
	}
}

func TestSlowLogRecordsViews(t *testing.T) {
	sys := paperObservatory(t)
	sys.SetSlowQueryThreshold(time.Nanosecond)
	res, err := sys.Answer(paperdata.QueryE, xpathviews.HV)
	if err != nil {
		t.Fatal(err)
	}
	entries := sys.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("1ns threshold recorded nothing")
	}
	e := entries[len(entries)-1]
	if e.Strategy != "HV" {
		t.Fatalf("slow entry strategy = %q", e.Strategy)
	}
	if len(e.Views) != len(res.ViewsUsed) {
		t.Fatalf("slow entry views = %v, result used %v", e.Views, res.ViewsUsed)
	}
	for i, id := range res.ViewsUsed {
		if e.Views[i] != id {
			t.Fatalf("slow entry views = %v, result used %v", e.Views, res.ViewsUsed)
		}
	}
}

func TestViewStatsMetricsExposition(t *testing.T) {
	sys := paperObservatory(t)
	for i := 0; i < 3; i++ {
		if _, err := sys.Answer(paperdata.QueryE, xpathviews.HV); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := sys.DumpMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, name := range []string{
		"xpv_workload_drift ",
		"xpv_workload_drift_events_total ",
		"xpv_joins_total ",
		"xpv_join_partitions_total ",
		"xpv_join_gallop_hits_total ",
		"xpv_join_partition_fanout_count ",
		"xpv_join_partition_fanout_p99 ",
		"xpv_join_gallop_hits_count ",
		"xpv_cost_calibration_err_ppm_count ",
		"xpv_cost_calibration_err_ppm_p50 ",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %q", name)
		}
	}
	// The unitless histograms must not carry the _ns latency suffixes.
	if strings.Contains(text, "xpv_join_partition_fanout_p50_ns") {
		t.Error("count-valued histogram rendered with _ns suffix")
	}
	// 3 joined calls, each over >= 1 partition.
	var joins int64
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, "xpv_joins_total "); ok {
			if _, err := json.Number(v).Int64(); err != nil {
				t.Fatalf("bad xpv_joins_total line %q", line)
			}
			n, _ := json.Number(v).Int64()
			joins = n
		}
	}
	if joins != 3 {
		t.Fatalf("xpv_joins_total = %d, want 3", joins)
	}
}

// driftFixture advises an XMark system on a two-query design workload
// (which arms the detector), applies the advice, and pins the
// detector's decay clock so the test is deterministic.
func driftFixture(t testing.TB) (*xpathviews.System, []advisor.QueryStat) {
	t.Helper()
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 42})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMetricsRegistry(xpathviews.NewMetricsRegistry())
	stats := advisor.StatsFromEntries([]workload.Entry{
		{Freq: 5, Query: "//person/name"},
		{Freq: 3, Query: "//open_auction[bidder]/seller"},
	})
	adv, err := sys.Advise(stats, xpathviews.AdviceOptions{ByteBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.ViewStatsReport().DriftArmed {
		t.Fatal("Advise must arm the drift detector")
	}
	if _, err := sys.ApplyAdvice(adv); err != nil {
		t.Fatal(err)
	}
	fixed := time.Unix(1_200_000_000, 0)
	sys.ViewStats().Drift.SetClock(func() time.Time { return fixed })
	return sys, stats
}

// replayMix serves the design workload in its recorded proportions for
// `rounds` full passes, ignoring per-call errors (drift observes
// unanswerable traffic too).
func replayMix(sys *xpathviews.System, stats []advisor.QueryStat, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, st := range stats {
			for i := 0; i < st.Freq(); i++ {
				sys.Answer(st.Query, xpathviews.HV)
			}
		}
	}
}

func TestWorkloadDriftSteadyAndShifted(t *testing.T) {
	// Steady: live traffic replays the design mix exactly — the distance
	// stays at zero and no threshold event fires.
	sys, stats := driftFixture(t)
	replayMix(sys, stats, 32) // 256 calls >= several check cadences
	rep := sys.ViewStatsReport()
	if rep.DriftRecentN == 0 {
		t.Fatal("steady replay reached the detector not at all")
	}
	if rep.DriftEvents != 0 {
		t.Fatalf("steady traffic fired %d drift events (ppm=%d)", rep.DriftEvents, rep.DriftPPM)
	}
	if rep.DriftPPM >= rep.DriftThresholdPPM {
		t.Fatalf("steady traffic measured %d ppm, threshold %d", rep.DriftPPM, rep.DriftThresholdPPM)
	}

	// Shifted: a pattern the design never predicted dominates. The
	// distance crosses the threshold and the event counter moves.
	sys2, _ := driftFixture(t)
	for i := 0; i < 256; i++ {
		sys2.Answer("//item/name", xpathviews.HV) // unanswerable is fine: still traffic
	}
	rep2 := sys2.ViewStatsReport()
	if rep2.DriftEvents < 1 {
		t.Fatalf("shifted workload fired no drift event (ppm=%d, threshold=%d, recent=%d)",
			rep2.DriftPPM, rep2.DriftThresholdPPM, rep2.DriftRecentN)
	}
	if rep2.DriftPPM < rep2.DriftThresholdPPM {
		t.Fatalf("shifted workload ppm = %d below threshold %d", rep2.DriftPPM, rep2.DriftThresholdPPM)
	}
	// The gauge and event counter surface in the exposition.
	var b strings.Builder
	if err := sys2.DumpMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "xpv_workload_drift_events_total 1") {
		t.Error("drift event not visible in the metrics exposition")
	}
}

// viewsBenchReport is the BENCH_views.json shape.
type viewsBenchReport struct {
	GeneratedBy  string `json:"generated_by"`
	PaperExample struct {
		Queries        int64                       `json:"queries"`
		ScaleNsPerCost float64                     `json:"scale_ns_per_cost"`
		CalibrationErr float64                     `json:"calibration_err"`
		CalibrationObs int64                       `json:"calibration_obs"`
		Views          []xpathviews.ViewStatReport `json:"views"`
	} `json:"paper_example"`
	DriftDemo struct {
		ThresholdPPM  int64 `json:"threshold_ppm"`
		SteadyPPM     int64 `json:"steady_ppm"`
		SteadyEvents  int64 `json:"steady_events"`
		ShiftedPPM    int64 `json:"shifted_ppm"`
		ShiftedEvents int64 `json:"shifted_events"`
	} `json:"drift_demo"`
}

func TestViewStatsBenchReport(t *testing.T) {
	if os.Getenv("XPV_BENCH_VIEWS") == "" {
		t.Skip("set XPV_BENCH_VIEWS=1 (or run `make bench-views`) to write BENCH_views.json")
	}
	var rep viewsBenchReport
	rep.GeneratedBy = "TestViewStatsBenchReport"

	// Per-view attribution + calibration on the paper's running example.
	sys := paperObservatory(t)
	for i := 0; i < 200; i++ {
		if _, err := sys.Answer(paperdata.QueryE, xpathviews.HV); err != nil {
			t.Fatal(err)
		}
	}
	s := sys.ViewStatsReport()
	rep.PaperExample.Queries = s.Queries
	rep.PaperExample.ScaleNsPerCost = s.ScaleNsPerCost
	rep.PaperExample.CalibrationErr = s.CalibrationErr
	rep.PaperExample.CalibrationObs = s.CalibrationObs
	rep.PaperExample.Views = s.Views
	if s.CalibrationObs < 100 || s.ScaleNsPerCost <= 0 {
		t.Fatalf("calibration did not converge: %+v", s)
	}

	// Drift demo: steady replay stays quiet, a shifted workload trips.
	steadySys, stats := driftFixture(t)
	replayMix(steadySys, stats, 32)
	steady := steadySys.ViewStatsReport()
	shiftSys, _ := driftFixture(t)
	for i := 0; i < 256; i++ {
		shiftSys.Answer("//item/name", xpathviews.HV)
	}
	shifted := shiftSys.ViewStatsReport()
	rep.DriftDemo.ThresholdPPM = steady.DriftThresholdPPM
	rep.DriftDemo.SteadyPPM = steady.DriftPPM
	rep.DriftDemo.SteadyEvents = steady.DriftEvents
	rep.DriftDemo.ShiftedPPM = shifted.DriftPPM
	rep.DriftDemo.ShiftedEvents = shifted.DriftEvents
	if steady.DriftEvents != 0 {
		t.Fatalf("steady replay fired %d events", steady.DriftEvents)
	}
	if shifted.DriftEvents < 1 {
		t.Fatalf("shifted workload fired no event (ppm=%d)", shifted.DriftPPM)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_views.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_views.json")
}
