package xpathviews

// Document mutation + incremental view maintenance: the public face of
// internal/maintain. InsertSubtree and DeleteSubtree mutate the document
// under the write lock — serialized against in-flight queries by the
// same RWMutex the view-set mutations use — and maintain every
// materialized view incrementally:
//
//  1. The structural change is validated (schema, addressing) before any
//     state mutates, so a failed mutation has no side effects; the chaos
//     point maintain.apply fires at the same boundary.
//  2. Inserted nodes get gap-allocated extended Dewey codes: existing
//     codes never shift, and allocation is deterministic from live state
//     so WAL replay reproduces identical codes.
//  3. Per view, the dirty root (maintain.DirtyDepth) bounds where
//     answers can change; the pattern is re-evaluated only inside that
//     subtree and the result spliced over the matching code-prefix range
//     of the fragment store, preserving document order.
//  4. Plan invalidation is scoped: a maintenance pass that changes a
//     view's fragments bumps that view's generation, and cached plans
//     record the (view, generation) pairs they cover — only plans
//     touching a dirty view are dropped (see plan.go). A global
//     generation bump per mutation is available for comparison via
//     SetScopedInvalidation(false).
//  5. With a WAL attached (AttachWAL), each applied mutation appends one
//     CRC-framed record to the store; a torn final append is truncated
//     by storage.Open before replay sees it.

import (
	"fmt"
	"sync"
	"time"

	"xpathviews/internal/dewey"
	"xpathviews/internal/engine"
	"xpathviews/internal/maintain"
	"xpathviews/internal/storage"
	"xpathviews/internal/xmltree"
)

// ErrSchema re-exports the maintenance layer's schema violation: an
// inserted label outside its parent's FST child alphabet.
var ErrSchema = maintain.ErrSchema

// ErrNoSuchNode re-exports the maintenance layer's addressing failure:
// a mutation's code resolves to no live node.
var ErrNoSuchNode = maintain.ErrNoSuchNode

// MutateOptions carries the optional observability hooks of a mutation
// call, mirroring the tracing/metrics subset of Options.
type MutateOptions struct {
	// Trace records the mutation's span tree (stages: apply, maintain,
	// wal) when non-nil.
	Trace *Trace
	// TraceID propagates a W3C trace ID into metrics exemplars and the
	// slow log.
	TraceID string
	// Metrics overrides the system's metrics registry for this call.
	Metrics *MetricsRegistry
}

// MaintainResult reports what one mutation did.
type MaintainResult struct {
	// Op is "insert" or "delete".
	Op string
	// Code is the inserted subtree root's newly allocated code, or the
	// deleted subtree root's code.
	Code dewey.Code
	// NodesAdded/NodesRemoved count document nodes.
	NodesAdded, NodesRemoved int
	// ViewsChecked counts live views inspected; DirtyViews those whose
	// fragment stores actually changed.
	ViewsChecked, DirtyViews int
	// FragmentsAdded/FragmentsRemoved count membership changes across all
	// views; FragmentsRefreshed counts fragments re-copied because their
	// content contained the mutation point.
	FragmentsAdded, FragmentsRemoved, FragmentsRefreshed int
	// WALSeq is the sequence number of the logged record (0 = no WAL).
	WALSeq uint64
	// TotalNanos is the whole call's wall time.
	TotalNanos int64
}

// InsertSubtree parses xml as a subtree and grafts it under the node
// addressed by parentCode, assigning stable codes to the new nodes and
// incrementally maintaining every materialized view. Every label of the
// inserted subtree must already be in the FST's child alphabets
// (maintain.ErrSchema otherwise): growing an alphabet would change the
// modulus and re-label existing codes.
func (s *System) InsertSubtree(parentCode dewey.Code, xml string) (*MaintainResult, error) {
	return s.InsertSubtreeOpts(parentCode, xml, MutateOptions{})
}

// InsertSubtreeOpts is InsertSubtree with observability options.
func (s *System) InsertSubtreeOpts(parentCode dewey.Code, xml string, opts MutateOptions) (*MaintainResult, error) {
	co, t0 := s.startMutObs(opts)
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.insertLocked(parentCode, xml, co, true)
	s.finishMaintain(co, t0, "insert", parentCode, res, err)
	return res, err
}

// DeleteSubtree detaches the subtree rooted at the node addressed by
// code and incrementally maintains every materialized view. The freed
// code components become gaps the next insert under the same parent may
// reuse. Deleting the document root is an error.
func (s *System) DeleteSubtree(code dewey.Code) (*MaintainResult, error) {
	return s.DeleteSubtreeOpts(code, MutateOptions{})
}

// DeleteSubtreeOpts is DeleteSubtree with observability options.
func (s *System) DeleteSubtreeOpts(code dewey.Code, opts MutateOptions) (*MaintainResult, error) {
	co, t0 := s.startMutObs(opts)
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.deleteLocked(code, co, true)
	s.finishMaintain(co, t0, "delete", code, res, err)
	return res, err
}

// ViewGeneration returns the named view's content generation — bumped
// whenever incremental maintenance changes its fragments (scoped
// invalidation mode only). ok is false for unknown IDs.
func (s *System) ViewGeneration(id int) (gen uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.registry.Get(id)
	if v == nil {
		return 0, false
	}
	return v.Gen, true
}

// SetScopedInvalidation toggles between scoped plan invalidation (true,
// the default: only plans covering a dirtied view are dropped) and the
// coarse global-generation bump per mutation (false). Switching modes
// invalidates every cached plan.
func (s *System) SetScopedInvalidation(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scopedInval = on
	s.bumpPlanGen()
}

// ScopedInvalidation reports the current invalidation mode.
func (s *System) ScopedInvalidation() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scopedInval
}

// AttachWAL attaches an append-only mutation log. Any mutation records
// already in the store — from a previous process over the same original
// document — are replayed first, in sequence order; the store's own
// torn-tail truncation has already dropped a partially appended final
// record by the time Open returned. Subsequent mutations append one
// record each. Returns the number of replayed mutations.
//
// Durability boundary: a mutation is applied in memory first and logged
// on success, so a crash between the two loses at most that mutation;
// the log never gets ahead of applied state, which is what keeps replay
// deterministic.
func (s *System) AttachWAL(st *storage.Store) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return 0, fmt.Errorf("xpathviews: a WAL is already attached")
	}
	replayed := 0
	var maxSeq uint64
	for _, k := range st.Keys() { // sorted; zero-padded keys sort by seq
		seq, ok := maintain.ParseKey(k)
		if !ok {
			continue
		}
		val, ok := st.Get([]byte(k))
		if !ok {
			continue
		}
		rec, err := maintain.DecodeRecord(val)
		if err != nil {
			return replayed, fmt.Errorf("xpathviews: wal %s: %w", k, err)
		}
		switch rec.Op {
		case maintain.OpInsert:
			_, err = s.insertLocked(rec.Code, rec.XML, callObs{}, false)
		case maintain.OpDelete:
			_, err = s.deleteLocked(rec.Code, callObs{}, false)
		}
		if err != nil {
			return replayed, fmt.Errorf("xpathviews: wal replay %s: %w", k, err)
		}
		replayed++
		maxSeq = seq
	}
	s.wal = st
	if maxSeq > s.walSeq {
		s.walSeq = maxSeq
	}
	return replayed, nil
}

// DetachWAL stops logging mutations and returns the previously attached
// store (nil when none was).
func (s *System) DetachWAL() *storage.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.wal
	s.wal = nil
	return st
}

// insertLocked applies one insert under the write lock, optionally
// logging it. Panics and injected faults inside the apply are contained
// as *InternalError; the fault point fires before any state changes.
func (s *System) insertLocked(parentCode dewey.Code, xml string, co callObs, logWAL bool) (*MaintainResult, error) {
	res := &MaintainResult{Op: "insert"}
	sp := co.child("apply")
	_, err := runStage("maintain.apply", func() (struct{}, error) {
		return struct{}{}, s.applyInsertLocked(parentCode, xml, res, co)
	})
	if sp != nil {
		sp.SetAttr("op", "insert")
		sp.SetAttr("nodes", res.NodesAdded)
		sp.Err(err)
		sp.End()
	}
	if err != nil {
		return nil, err
	}
	if logWAL {
		if werr := s.logMutation(maintain.Record{Op: maintain.OpInsert, Code: parentCode, XML: xml}, res, co); werr != nil {
			return res, werr
		}
	}
	return res, nil
}

// deleteLocked applies one delete under the write lock, optionally
// logging it.
func (s *System) deleteLocked(code dewey.Code, co callObs, logWAL bool) (*MaintainResult, error) {
	res := &MaintainResult{Op: "delete"}
	sp := co.child("apply")
	_, err := runStage("maintain.apply", func() (struct{}, error) {
		return struct{}{}, s.applyDeleteLocked(code, res, co)
	})
	if sp != nil {
		sp.SetAttr("op", "delete")
		sp.SetAttr("nodes", res.NodesRemoved)
		sp.Err(err)
		sp.End()
	}
	if err != nil {
		return nil, err
	}
	if logWAL {
		if werr := s.logMutation(maintain.Record{Op: maintain.OpDelete, Code: code}, res, co); werr != nil {
			return res, werr
		}
	}
	return res, nil
}

// logMutation appends one record to the attached WAL (a no-op without
// one). The mutation is already applied; a log failure is returned so
// the caller knows durability lapsed, but the in-memory state stands.
func (s *System) logMutation(rec maintain.Record, res *MaintainResult, co callObs) error {
	if s.wal == nil {
		return nil
	}
	sp := co.child("wal")
	s.walSeq++
	err := s.wal.Put([]byte(maintain.Key(s.walSeq)), rec.Encode())
	if err == nil {
		res.WALSeq = s.walSeq
	}
	if sp != nil {
		sp.SetAttr("seq", res.WALSeq)
		sp.Err(err)
		sp.End()
	}
	if err != nil {
		return fmt.Errorf("xpathviews: wal append: %w", err)
	}
	return nil
}

// applyInsertLocked does the structural insert: validate, graft, encode,
// index, then maintain views. Validation precedes every state change.
func (s *System) applyInsertLocked(parentCode dewey.Code, xml string, res *MaintainResult, co callObs) error {
	if err := maintain.FaultApply.Fire(); err != nil {
		return err
	}
	parent, ok := maintain.ResolveCode(s.doc, s.enc, parentCode)
	if !ok {
		return fmt.Errorf("%w: parent %s", maintain.ErrNoSuchNode, parentCode)
	}
	sub, err := xmltree.ParseString(xml)
	if err != nil {
		return fmt.Errorf("xpathviews: insert: %w", err)
	}
	subRoot := sub.Root()
	if err := maintain.ValidateSubtree(s.fst, parent.Label, subRoot); err != nil {
		return err
	}
	// The root's component decides the document position: the children
	// array stays sorted by component, so document order and code order
	// remain the same relation after any mutation sequence.
	probe, err := maintain.ChildCode(s.enc, parent, subRoot.Label)
	if err != nil {
		return err
	}
	pos := maintain.ChildPos(s.enc, parent, probe[len(probe)-1])
	// Point of no return: everything below is infallible by construction
	// (EncodeSubtree cannot fail on a validated subtree).
	s.doc.GraftAt(parent, subRoot, pos)
	added, err := maintain.EncodeSubtree(s.enc, subRoot)
	if err != nil {
		return fmt.Errorf("xpathviews: insert: %w", err)
	}
	rootCode := s.enc.MustCode(subRoot)
	s.registry.Index.AddSubtree(s.doc, subRoot)
	s.resetEvalLocked()
	res.Code = rootCode.Clone()
	res.NodesAdded = added
	return s.maintainViewsLocked(rootCode, subRoot.LabelPath(), maintain.SubtreeLabels(subRoot), res, co)
}

// applyDeleteLocked does the structural delete: resolve, detach,
// unindex, forget codes, then maintain views.
func (s *System) applyDeleteLocked(code dewey.Code, res *MaintainResult, co callObs) error {
	if err := maintain.FaultApply.Fire(); err != nil {
		return err
	}
	n, ok := maintain.ResolveCode(s.doc, s.enc, code)
	if !ok {
		return fmt.Errorf("%w: %s", maintain.ErrNoSuchNode, code)
	}
	if n == s.doc.Root() {
		return fmt.Errorf("xpathviews: cannot delete the document root")
	}
	// The label path and subtree labels must be captured before the node
	// detaches; the dirty-root computation needs the pre-mutation chain.
	path := n.LabelPath()
	mutLabels := maintain.SubtreeLabels(n)
	removed := n.SubtreeSize()
	if err := s.doc.Detach(n); err != nil {
		return fmt.Errorf("xpathviews: delete: %w", err)
	}
	s.registry.Index.RemoveSubtree(n)
	maintain.ForgetSubtree(s.enc, n)
	s.resetEvalLocked()
	res.Code = code.Clone()
	res.NodesRemoved = removed
	return s.maintainViewsLocked(code, path, mutLabels, res, co)
}

// maintainViewsLocked runs the per-view delta pass for a mutation rooted
// at mutCode (path is the mutation root's pre-mutation label path) and
// applies the configured plan-invalidation policy.
func (s *System) maintainViewsLocked(mutCode dewey.Code, path []string, mutLabels map[string]struct{}, res *MaintainResult, co callObs) error {
	sp := co.child("maintain")
	// Views sharing a dirty depth share the resolved scope node; a nil
	// scope (the deleted root itself) is cached too.
	scopeCache := make(map[int]*xmltree.Node)
	vstats := s.vstats.Load()
	for _, v := range s.registry.Views() {
		res.ViewsChecked++
		depth := maintain.DirtyDepth(v.Pattern, path)
		scopeCode := mutCode[:depth+1]
		scope, cached := scopeCache[depth]
		if !cached {
			scope, _ = maintain.ResolveCode(s.doc, s.enc, scopeCode)
			scopeCache[depth] = scope
		}
		st, err := maintain.ApplyDelta(v, s.doc, s.enc, scope, scopeCode, mutCode, mutLabels)
		if err != nil {
			if sp != nil {
				sp.Err(err)
				sp.End()
			}
			return err
		}
		res.FragmentsAdded += st.Added
		res.FragmentsRemoved += st.Removed
		res.FragmentsRefreshed += st.Refreshed
		if st.Changed {
			res.DirtyViews++
			if s.scopedInval {
				v.Gen++
			}
			// Feed the observatory's upkeep side: the dirty-splice
			// composition, against the fragment count a full
			// rematerialization would have recopied — so the per-view
			// benefit report can net out maintenance cost.
			vstats.RecordMaintain(v.ID,
				int64(st.Added), int64(st.Removed), int64(st.Refreshed),
				int64(len(v.Fragments)))
		}
	}
	if !s.scopedInval {
		// Coarse mode: every mutation drops the whole plan cache, like a
		// view-set change would.
		s.bumpPlanGen()
	}
	if sp != nil {
		sp.SetAttr("views", res.ViewsChecked)
		sp.SetAttr("dirty_views", res.DirtyViews)
		sp.SetAttr("fragments_added", res.FragmentsAdded)
		sp.SetAttr("fragments_removed", res.FragmentsRemoved)
		sp.SetAttr("fragments_refreshed", res.FragmentsRefreshed)
		sp.End()
	}
	return nil
}

// resetEvalLocked refreshes evaluator state that depends on document
// structure: BN just wraps the live tree, BF holds a path index and is
// rebuilt lazily on its next use. Swapping the Once is safe because no
// reader can be inside lazyBF while the write lock is held.
func (s *System) resetEvalLocked() {
	s.bn = engine.NewBN(s.doc)
	s.bf = nil
	s.bfOnce = &sync.Once{}
}

// startMutObs resolves a mutation call's observation state.
func (s *System) startMutObs(opts MutateOptions) (callObs, time.Time) {
	co := callObs{sp: opts.Trace.Root(), traceID: opts.TraceID}
	if co.traceID == "" {
		co.traceID = opts.Trace.ID()
	}
	if opts.Metrics != nil {
		co.m = metricsFor(opts.Metrics)
	} else {
		co.m = s.obsPtr.Load()
	}
	return co, time.Now()
}

// finishMaintain closes out one mutation call: counters, latency
// histogram (exemplared when a trace ID is present), root span, and the
// slow log (strategy "maintain:<op>", query = the addressed code).
func (s *System) finishMaintain(co callObs, t0 time.Time, op string, code dewey.Code, res *MaintainResult, err error) {
	total := time.Since(t0)
	if res != nil {
		res.TotalNanos = int64(total)
	}
	if co.sp != nil {
		co.sp.SetAttr("op", op)
		if res != nil {
			co.sp.SetAttr("dirty_views", res.DirtyViews)
		}
		co.sp.Err(err)
		co.sp.End()
	}
	if m := co.m; m != nil {
		m.maintains.Inc()
		m.latMaintain.ObserveExemplar(int64(total), co.traceID)
		if err != nil {
			m.maintainErrs.Inc()
		}
		if res != nil {
			m.maintainDirty.Add(int64(res.DirtyViews))
			m.maintainFragsAdd.Add(int64(res.FragmentsAdded))
			m.maintainFragsDel.Add(int64(res.FragmentsRemoved))
		}
	}
	if th := s.slow.Threshold(); th > 0 && total >= th {
		if co.m != nil {
			co.m.slowQueries.Inc()
		}
		e := SlowQuery{
			Time:     time.Now(),
			Strategy: "maintain:" + op,
			Total:    total,
			TraceID:  co.traceID,
			Query:    code.String(),
		}
		if err != nil {
			e.Err = err.Error()
		}
		s.slow.Record(e)
	}
}
