package xpathviews_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"xpathviews"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// exponentialSystem builds a document and a pairwise view set that makes
// the exact Minimum selection's subset enumeration combinatorial: the
// query has ten leaves and every view covers only a small slice of them,
// so set cover has to search.
func exponentialSystem(t *testing.T) (*xpathviews.System, string) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 3; i++ {
		sb.WriteString("<a>")
		for j := 0; j < 10; j++ {
			fmt.Fprintf(&sb, "<l%d/>", j)
		}
		sb.WriteString("</a>")
	}
	sb.WriteString("</r>")
	sys, err := xpathviews.OpenXMLString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sys.AddView(fmt.Sprintf("//a/l%d", i), 0); err != nil {
			t.Fatal(err)
		}
		for j := i + 1; j < 10; j++ {
			if _, err := sys.AddView(fmt.Sprintf("//a[l%d][l%d]", i, j), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := "//a[l0][l1][l2][l3][l4][l5][l6][l7][l8]/l9"
	return sys, q
}

// TestExpiredContextReturnsFast is the acceptance criterion: an already-
// expired context must come back well under 100ms even when the view set
// would make exact selection exponential.
func TestExpiredContextReturnsFast(t *testing.T) {
	sys, q := exponentialSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := sys.AnswerContext(ctx, q, xpathviews.Options{Strategy: xpathviews.MV})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("expired context took %v, want <100ms", elapsed)
	}

	// Same for an expired deadline.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	time.Sleep(time.Millisecond)
	start = time.Now()
	_, err = sys.AnswerContext(dctx, q, xpathviews.Options{Strategy: xpathviews.MV})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("expired deadline not rejected promptly")
	}
}

// TestTimeoutCancelsMidTraversal arms Options.Timeout with a deadline
// that expires before the document walk can finish; the cooperative
// budget checks must observe it.
func TestTimeoutCancelsMidTraversal(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.06, Seed: 41})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.AnswerContext(context.Background(), "//*",
		xpathviews.Options{Strategy: xpathviews.BN, Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestMaxStepsBudget(t *testing.T) {
	sys, q := exponentialSystem(t)
	// One step cannot even pay for filtering, let alone enumeration.
	_, err := sys.AnswerContext(context.Background(), q,
		xpathviews.Options{Strategy: xpathviews.MV, MaxSteps: 1})
	if !errors.Is(err, xpathviews.ErrBudgetExceeded) {
		t.Fatalf("MV err = %v, want ErrBudgetExceeded", err)
	}
	// Direct evaluation is budgeted too.
	_, err = sys.AnswerContext(context.Background(), "//a",
		xpathviews.Options{Strategy: xpathviews.BN, MaxSteps: 1})
	if !errors.Is(err, xpathviews.ErrBudgetExceeded) {
		t.Fatalf("BN err = %v, want ErrBudgetExceeded", err)
	}
	// A generous budget changes nothing about the answer.
	res, err := sys.AnswerContext(context.Background(), q,
		xpathviews.Options{Strategy: xpathviews.MV, MaxSteps: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sys.Answer(q, xpathviews.BF)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Codes(), ",") != strings.Join(base.Codes(), ",") {
		t.Fatal("budgeted answers differ from unbudgeted")
	}
}

func TestMaxHomsBudget(t *testing.T) {
	sys, q := exponentialSystem(t)
	// MN computes a homomorphism per candidate view (55 of them); one is
	// not enough.
	_, err := sys.AnswerContext(context.Background(), q,
		xpathviews.Options{Strategy: xpathviews.MN, MaxHoms: 1})
	if !errors.Is(err, xpathviews.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// SelectContext is budgeted the same way.
	qp, err := xpath.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sys.SelectContext(context.Background(), qp, xpathviews.MN,
		xpathviews.Options{MaxHoms: 1})
	if !errors.Is(err, xpathviews.ErrBudgetExceeded) {
		t.Fatalf("SelectContext err = %v, want ErrBudgetExceeded", err)
	}
}

func TestMaxAnswersTruncates(t *testing.T) {
	sys, err := xpathviews.OpenXMLString("<r><b/><b/><b/><b/><b/></r>")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.AnswerContext(context.Background(), "//b",
		xpathviews.Options{Strategy: xpathviews.BF, MaxAnswers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 || !res.Truncated {
		t.Fatalf("answers=%d truncated=%v, want 3/true", len(res.Answers), res.Truncated)
	}
	res, err = sys.AnswerContext(context.Background(), "//b",
		xpathviews.Options{Strategy: xpathviews.BF, MaxAnswers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 5 || res.Truncated {
		t.Fatalf("answers=%d truncated=%v, want 5/false", len(res.Answers), res.Truncated)
	}
}

// TestResilientDegradesToBN: with no views at all, the default chain
// falls all the way to direct evaluation and records every skipped rung.
func TestResilientDegradesToBN(t *testing.T) {
	sys, err := xpathviews.OpenXMLString("<a><b>x</b><b>y</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.AnswerResilient(context.Background(), "//b", xpathviews.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "BN" {
		t.Fatalf("Rung = %q, want BN", res.Rung)
	}
	if !res.Degraded || len(res.DegradedReasons) != 3 {
		t.Fatalf("Degraded=%v reasons=%v, want 3 skipped rungs", res.Degraded, res.DegradedReasons)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
}

// TestResilientFirstRungWins: with views answering the query, HV answers
// directly and nothing degrades.
func TestResilientFirstRungWins(t *testing.T) {
	sys, err := xpathviews.OpenWithFST(paperdata.BookTree(), paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range paperdata.TableIViews() {
		if _, err := sys.AddView(src, xpathviews.DefaultFragmentLimit); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sys.AnswerResilient(context.Background(), paperdata.QueryE, xpathviews.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "HV" || res.Degraded || len(res.DegradedReasons) != 0 {
		t.Fatalf("rung=%q degraded=%v reasons=%v", res.Rung, res.Degraded, res.DegradedReasons)
	}
	base, err := sys.Answer(paperdata.QueryE, xpathviews.BF)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Codes(), ",") != strings.Join(base.Codes(), ",") {
		t.Fatal("resilient answers differ from direct evaluation")
	}
}

// TestResilientContainedRung: a custom chain can stop at the contained
// rung when a view certifies the answers.
func TestResilientContainedRung(t *testing.T) {
	sys, err := xpathviews.OpenXMLString("<a><b>x</b><c/><b>y</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddView("//b", 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.AnswerResilient(context.Background(), "//b",
		xpathviews.Options{Fallback: []xpathviews.Rung{xpathviews.RungContained}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "contained" || len(res.Answers) != 2 || res.Partial {
		t.Fatalf("rung=%q answers=%d partial=%v", res.Rung, len(res.Answers), res.Partial)
	}
}

// TestResilientCancelAborts: cancellation is not degradable — the chain
// stops instead of serving a degraded answer to a caller that left.
func TestResilientCancelAborts(t *testing.T) {
	sys, err := xpathviews.OpenXMLString("<a><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.AnswerResilient(ctx, "//b", xpathviews.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestResilientAllRungsFail: when every rung fails the chain reports all
// reasons and the final error still matches the last failure.
func TestResilientAllRungsFail(t *testing.T) {
	sys, err := xpathviews.OpenXMLString("<a><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.AnswerResilient(context.Background(), "//b",
		xpathviews.Options{Fallback: []xpathviews.Rung{xpathviews.RungHV, xpathviews.RungMV}})
	if err == nil {
		t.Fatal("no views: a views-only chain must fail")
	}
	if !errors.Is(err, xpathviews.ErrNotAnswerable) {
		t.Fatalf("err = %v, want ErrNotAnswerable in the chain", err)
	}
	if !strings.Contains(err.Error(), "HV") || !strings.Contains(err.Error(), "MV") {
		t.Fatalf("error does not name the failed rungs: %v", err)
	}
}
