// Serving hot-path benchmarks for the plan cache and the parallel
// rewrite, plus the writer for BENCH_serving.json (the machine-readable
// speedup report, same pattern as BENCH_advisor.json). Run via `make
// bench` or `go test -bench 'AnswerPlanCache|AnswerParallel' -benchmem .`.
package xpathviews_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"xpathviews"
	"xpathviews/internal/dewey"
	"xpathviews/internal/pattern"
	"xpathviews/internal/rewrite"
	"xpathviews/internal/selection"
	"xpathviews/internal/views"
	"xpathviews/internal/xmark"
	"xpathviews/internal/xpath"
)

// servingViews is the materialized set for the serving benchmarks: the
// eight person-leaf views a predicate-heavy query selects from, plus
// descendant-axis variants that widen the candidate set the planner must
// weigh (more homomorphisms per miss, same rewrite per hit).
var servingViews = []string{
	"//person/name",
	"//person/emailaddress",
	"//person/phone",
	"//person/address/city",
	"//person/homepage",
	"//person/creditcard",
	"//person/profile/age",
	"//person/watches/watch",
	"//person//name",
	"//person//city",
	"//person//age",
	"//person//phone",
	"//person//emailaddress",
	"//person//homepage",
	"//person//creditcard",
	"//person//watch",
}

// servingQueries maps selection width (number of chosen views) to a
// query whose leaf cover needs exactly that many.
var servingQueries = map[int]string{
	1: "//person/name",
	4: "//person[address/city][profile/age][phone]/name",
	8: "//person[emailaddress][phone][address/city][homepage][creditcard][profile/age][watches/watch]/name",
}

func servingBenchSystem(tb testing.TB, scale float64, seed int64) *xpathviews.System {
	tb.Helper()
	doc := xmark.Generate(xmark.Config{Scale: scale, Seed: seed})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		tb.Fatal(err)
	}
	for _, v := range servingViews {
		if _, err := sys.AddView(v, 0); err != nil {
			tb.Fatal(err)
		}
	}
	return sys
}

// BenchmarkAnswerPlanCache contrasts the serving hot path with a warm
// plan cache (hit: rewrite only) against the uncached pipeline (miss:
// parse + filter + selection + rewrite). Run with -benchmem: the hit
// path's allocs/op must sit below the miss path's.
func BenchmarkAnswerPlanCache(b *testing.B) {
	sys := servingBenchSystem(b, 0.05, 2008)
	ctx := context.Background()
	q := servingQueries[4]
	run := func(b *testing.B, opts xpathviews.Options) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := sys.AnswerContext(ctx, q, opts)
			if err != nil {
				b.Fatal(err)
			}
			_ = res
		}
	}
	b.Run("hit", func(b *testing.B) {
		opts := xpathviews.Options{Strategy: xpathviews.MV}
		if _, err := sys.AnswerContext(ctx, q, opts); err != nil { // warm the plan
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		run(b, opts)
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		run(b, xpathviews.Options{Strategy: xpathviews.MV, NoPlanCache: true})
	})
}

// parallelBenchEnv builds the registry-level fixture for the rewrite
// benchmarks: the selection must be computed against the exact pattern
// object handed to rewrite.ExecuteOptions (covers reference its nodes),
// so this bypasses System.Select, which re-minimizes internally.
type parallelBenchEnv struct {
	fst *dewey.FST
	reg *views.Registry
}

func newParallelBenchEnv(tb testing.TB, scale float64, seed int64) *parallelBenchEnv {
	tb.Helper()
	doc := xmark.Generate(xmark.Config{Scale: scale, Seed: seed})
	enc, fst, err := dewey.EncodeTree(doc)
	if err != nil {
		tb.Fatal(err)
	}
	reg := views.NewRegistry(doc, enc)
	for _, v := range servingViews {
		if _, err := reg.Add(xpath.MustParse(v), 0); err != nil {
			tb.Fatal(err)
		}
	}
	return &parallelBenchEnv{fst: fst, reg: reg}
}

func (e *parallelBenchEnv) selectionFor(tb testing.TB, nv int) (*pattern.Pattern, *selection.Selection) {
	tb.Helper()
	q := pattern.Minimize(xpath.MustParse(servingQueries[nv]))
	sel, err := selection.Minimum(q, e.reg.ViewList)
	if err != nil {
		tb.Fatal(err)
	}
	if len(sel.Covers) != nv {
		tb.Fatalf("query for %d views selected %d covers", nv, len(sel.Covers))
	}
	return q, sel
}

// BenchmarkAnswerParallel measures the rewrite stage alone — sequential
// (MaxWorkers 1) versus parallel (MaxWorkers 0 = GOMAXPROCS) — across
// selection widths of 1, 4 and 8 views.
func BenchmarkAnswerParallel(b *testing.B) {
	env := newParallelBenchEnv(b, 1.0, 2008)
	fst := env.fst
	for _, nv := range []int{1, 4, 8} {
		q, sel := env.selectionFor(b, nv)
		for _, mode := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			b.Run(sprintfViews(nv, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := rewrite.ExecuteOptions(q, sel, fst, nil,
						rewrite.Options{MaxWorkers: mode.workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func sprintfViews(nv int, mode string) string {
	return "views=" + string(rune('0'+nv)) + "/" + mode
}

// TestServingBenchReport measures the two headline ratios — cache-hit
// speedup over the uncached pipeline, and parallel-rewrite speedup over
// sequential at 4 and 8 views — and writes BENCH_serving.json. Log-only
// on the ratios themselves (machine load varies); the structural
// invariant it does assert is that the hit path allocates less than the
// miss path.
func TestServingBenchReport(t *testing.T) {
	if os.Getenv("XPV_BENCH_REPORT") == "" {
		// Opt-in (make bench sets it): a plain or -race `go test ./...`
		// must not overwrite the committed report with numbers taken
		// under instrumentation or load.
		t.Skip("set XPV_BENCH_REPORT=1 (or run `make bench`) to measure and rewrite BENCH_serving.json")
	}
	// Best-of-two damps scheduler/GC noise (single-core hosts especially).
	bench := func(f func(b *testing.B)) testing.BenchmarkResult {
		r1 := testing.Benchmark(f)
		r2 := testing.Benchmark(f)
		if r2.NsPerOp() < r1.NsPerOp() {
			return r2
		}
		return r1
	}
	sys := servingBenchSystem(t, 0.05, 2008)
	ctx := context.Background()
	q := servingQueries[4]
	hitOpts := xpathviews.Options{Strategy: xpathviews.MV}
	if _, err := sys.AnswerContext(ctx, q, hitOpts); err != nil {
		t.Fatal(err)
	}
	hit := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.AnswerContext(ctx, q, hitOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	missOpts := xpathviews.Options{Strategy: xpathviews.MV, NoPlanCache: true}
	miss := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.AnswerContext(ctx, q, missOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	if hit.AllocsPerOp() >= miss.AllocsPerOp() {
		t.Errorf("hit path allocates %d/op, miss path %d/op; want hit < miss",
			hit.AllocsPerOp(), miss.AllocsPerOp())
	}

	env := newParallelBenchEnv(t, 1.0, 2008)
	fst := env.fst
	parallel := map[string]any{}
	for _, nv := range []int{4, 8} {
		qp, sel := env.selectionFor(t, nv)
		seq := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.ExecuteOptions(qp, sel, fst, nil, rewrite.Options{MaxWorkers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		par := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.ExecuteOptions(qp, sel, fst, nil, rewrite.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		measured := float64(seq.NsPerOp()) / float64(par.NsPerOp())

		// Stage split from a sequential run. Refinement, extraction and
		// the join's per-fragment embeds all fan out; the sequential
		// remainder is the virtual-tree merge build (JoinBuildNanos). On a
		// single-core host measured wall-clock speedup is necessarily ~1x,
		// so the report also carries the Amdahl projection the measured
		// split implies for a host with enough cores to feed min(4, views)
		// workers.
		var refine, join, joinBuild, extract int64
		for i := 0; i < 20; i++ {
			r, err := rewrite.ExecuteOptions(qp, sel, fst, nil, rewrite.Options{MaxWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			refine += r.RefineNanos
			join += r.JoinNanos
			joinBuild += r.JoinBuildNanos
			extract += r.ExtractNanos
		}
		// Join kernel alone, sequential vs an explicit 4-worker pool over
		// prefix partitions (MaxWorkers overrides GOMAXPROCS, so the
		// parallel kernel engages even on a single-core host — measuring
		// its overhead there, its speedup on real cores).
		var joinPar int64
		joinWorkers := 0
		for i := 0; i < 20; i++ {
			r, err := rewrite.ExecuteOptions(qp, sel, fst, nil, rewrite.Options{MaxWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			joinPar += r.JoinNanos
			if r.JoinWorkers > joinWorkers {
				joinWorkers = r.JoinWorkers
			}
		}
		total := refine + join + extract
		frac := float64(refine+extract+(join-joinBuild)) / float64(total)
		workers := 4
		if nv < workers {
			workers = nv
		}
		projected := 1 / ((1 - frac) + frac/float64(workers))
		joinFrac := float64(join-joinBuild) / float64(join)
		joinProjected := 1 / ((1 - joinFrac) + joinFrac/float64(workers))
		t.Logf("parallel rewrite at %d views: seq %v/op, par %v/op, measured %.2fx on %d core(s); "+
			"parallelizable fraction %.2f -> projected %.2fx at %d workers; "+
			"join seq %dns par %dns (%d workers), join fraction %.2f -> projected %.2fx",
			nv, seq.NsPerOp(), par.NsPerOp(), measured, runtime.GOMAXPROCS(0), frac, projected, workers,
			join/20, joinPar/20, joinWorkers, joinFrac, joinProjected)
		parallel[sprintfViews(nv, "speedup")] = map[string]any{
			"views":                        nv,
			"seq_ns_per_op":                seq.NsPerOp(),
			"par_ns_per_op":                par.NsPerOp(),
			"measured_speedup":             measured,
			"refine_ns":                    refine / 20,
			"join_ns":                      join / 20,
			"join_build_ns":                joinBuild / 20,
			"join_par_ns":                  joinPar / 20,
			"join_par_workers":             joinWorkers,
			"join_measured_speedup":        float64(join) / float64(joinPar),
			"join_parallelizable_fraction": joinFrac,
			"join_projected_speedup":       joinProjected,
			"extract_ns":                   extract / 20,
			"parallelizable_fraction":      frac,
			"projected_speedup":            projected,
			"projected_workers":            workers,
			"total_frags":                  sel.TotalFragments(),
		}
	}

	hitSpeedup := float64(miss.NsPerOp()) / float64(hit.NsPerOp())
	t.Logf("plan cache: hit %v/op (%d allocs), miss %v/op (%d allocs), speedup %.2fx",
		hit.NsPerOp(), hit.AllocsPerOp(), miss.NsPerOp(), miss.AllocsPerOp(), hitSpeedup)

	report := map[string]any{
		"source": "TestServingBenchReport",
		"query":  q,
		"plan_cache": map[string]any{
			"hit_ns_per_op":      hit.NsPerOp(),
			"miss_ns_per_op":     miss.NsPerOp(),
			"hit_allocs_per_op":  hit.AllocsPerOp(),
			"miss_allocs_per_op": miss.AllocsPerOp(),
			"hit_bytes_per_op":   hit.AllocedBytesPerOp(),
			"miss_bytes_per_op":  miss.AllocedBytesPerOp(),
			"speedup":            hitSpeedup,
		},
		"parallel_rewrite": parallel,
		"gomaxprocs":       runtime.GOMAXPROCS(0),
		"note": "measured_speedup is wall-clock on this host; on a single-core host it is ~1x by " +
			"construction (workersFor collapses to 1) and projected_speedup applies Amdahl's law " +
			"to the measured per-stage split instead; likewise join_measured_speedup on one core " +
			"measures the partitioned kernel's scheduling overhead, and join_projected_speedup " +
			"applies Amdahl to the embed fraction (join_ns - join_build_ns)",
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serving.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJoinRegressionGate is the CI guard on the join kernel: it replays
// the report's join measurement (same fixture, same 20-op sequential
// split methodology, best-of-two) and fails when join_ns at 8 views
// regresses more than 20% over the committed BENCH_serving.json.
// Env-gated like the report writer — `make gate-join` (and the CI step)
// set XPV_JOIN_GATE=1; an ordinary `go test ./...` must not flake on a
// loaded developer machine.
func TestJoinRegressionGate(t *testing.T) {
	if os.Getenv("XPV_JOIN_GATE") == "" {
		t.Skip("set XPV_JOIN_GATE=1 (or run `make gate-join`) to check join_ns against the committed baseline")
	}
	raw, err := os.ReadFile("BENCH_serving.json")
	if err != nil {
		t.Fatalf("no committed baseline: %v", err)
	}
	var report struct {
		ParallelRewrite map[string]struct {
			JoinNs float64 `json:"join_ns"`
		} `json:"parallel_rewrite"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("parse BENCH_serving.json: %v", err)
	}
	entry, ok := report.ParallelRewrite[sprintfViews(8, "speedup")]
	if !ok || entry.JoinNs <= 0 {
		t.Fatalf("BENCH_serving.json lacks a join_ns baseline at 8 views")
	}
	baseline := entry.JoinNs

	env := newParallelBenchEnv(t, 1.0, 2008)
	qp, sel := env.selectionFor(t, 8)
	// Warm exactly the way the report does: its 20-op split loop runs
	// after full testing.Benchmark passes over the same fixture, whose
	// sustained load sizes every pool and triggers the GC cycles that
	// settle steady state. A lightly-warmed loop measures ~30% slower
	// than the same kernel in the report's context.
	for pass := 0; pass < 2; pass++ {
		testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.ExecuteOptions(qp, sel, env.fst, nil, rewrite.Options{MaxWorkers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	measure := func() float64 {
		var join int64
		for i := 0; i < 20; i++ {
			r, err := rewrite.ExecuteOptions(qp, sel, env.fst, nil, rewrite.Options{MaxWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			join += r.JoinNanos
		}
		return float64(join) / 20
	}
	got := measure()
	for i := 0; i < 2; i++ { // best-of-three, same damping as the report writer
		if m := measure(); m < got {
			got = m
		}
	}
	limit := baseline * 1.20
	t.Logf("join_ns at 8 views: measured %.0f, committed baseline %.0f, limit %.0f", got, baseline, limit)
	if got > limit {
		t.Fatalf("join kernel regressed: %.0f ns/op vs committed %.0f (+%.0f%%, gate is +20%%)",
			got, baseline, 100*(got/baseline-1))
	}
}
