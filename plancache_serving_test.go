package xpathviews_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xpathviews"
	"xpathviews/internal/advisor"
	"xpathviews/internal/faults"
	"xpathviews/internal/paperdata"
	"xpathviews/internal/workload"
	"xpathviews/internal/xmark"
)

func mvOpts() xpathviews.Options {
	return xpathviews.Options{Strategy: xpathviews.MV}
}

// TestPlanCacheHitPath: the second identical query is served from the
// cached plan — the stats move from miss to hit and the answers are
// byte-identical to the first call's and to the no-view baseline.
func TestPlanCacheHitPath(t *testing.T) {
	sys := chaosSystem(t)
	ctx := context.Background()

	first, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := sys.PlanCacheStats()
	if st.Misses == 0 {
		t.Fatalf("cold query recorded no miss: %+v", st)
	}
	if sys.PlanCacheLen() == 0 {
		t.Fatal("cold query left the plan cache empty")
	}

	second, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts())
	if err != nil {
		t.Fatal(err)
	}
	st2 := sys.PlanCacheStats()
	if st2.Hits <= st.Hits {
		t.Fatalf("warm query did not hit the plan cache: %+v -> %+v", st, st2)
	}
	if strings.Join(first.Codes(), ",") != strings.Join(second.Codes(), ",") {
		t.Fatalf("cached plan changed the answers: %v vs %v", first.Codes(), second.Codes())
	}
	base, err := sys.Answer(paperdata.QueryE, xpathviews.BF)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(second.Codes(), ",") != strings.Join(base.Codes(), ",") {
		t.Fatalf("cached answers drifted from baseline: %v vs %v", second.Codes(), base.Codes())
	}
}

// TestPlanCacheNormalizedSpelling: whitespace-variant spellings of the
// same query share a plan after parsing — the second spelling hits the
// pattern-keyed entry even though its source alias is new.
func TestPlanCacheNormalizedSpelling(t *testing.T) {
	sys := chaosSystem(t)
	ctx := context.Background()
	if _, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts()); err != nil {
		t.Fatal(err)
	}
	before := sys.PlanCacheStats()

	spaced := strings.ReplaceAll(paperdata.QueryE, "/", " / ")
	res, err := sys.AnswerContext(ctx, spaced, mvOpts())
	if err != nil {
		t.Fatalf("spaced spelling %q: %v", spaced, err)
	}
	after := sys.PlanCacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("spaced spelling recomputed the plan: %+v -> %+v", before, after)
	}
	base, _ := sys.Answer(paperdata.QueryE, xpathviews.BF)
	if strings.Join(res.Codes(), ",") != strings.Join(base.Codes(), ",") {
		t.Fatalf("spaced spelling answers drifted: %v", res.Codes())
	}
}

// TestPlanCacheDisabled: Options.NoPlanCache keeps the hot path fully
// recomputed — nothing is cached and nothing is consulted.
func TestPlanCacheDisabled(t *testing.T) {
	sys := chaosSystem(t)
	ctx := context.Background()
	opts := xpathviews.Options{Strategy: xpathviews.MV, NoPlanCache: true}
	for i := 0; i < 3; i++ {
		if _, err := sys.AnswerContext(ctx, paperdata.QueryE, opts); err != nil {
			t.Fatal(err)
		}
	}
	if n := sys.PlanCacheLen(); n != 0 {
		t.Fatalf("NoPlanCache populated %d entries", n)
	}
	st := sys.PlanCacheStats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("NoPlanCache touched the cache: %+v", st)
	}
}

// TestPlanCacheInvalidationRemoveView is the safety property: a cached
// selection must never serve a view after RemoveView dropped it. With a
// redundant copy of V1 present, dropping whichever copy the plan selected
// forces a recompute that answers identically from the survivor.
func TestPlanCacheInvalidationRemoveView(t *testing.T) {
	sys, err := xpathviews.OpenWithFST(paperdata.BookTree(), paperdata.BookFST())
	if err != nil {
		t.Fatal(err)
	}
	v1a, err := sys.AddView(paperdata.ViewV1, 0)
	if err != nil {
		t.Fatal(err)
	}
	v1b, err := sys.AddView(paperdata.ViewV1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddView(paperdata.ViewV2, 0); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Drop whichever V1 copy the cached plan used.
	doomed := v1a
	used := map[int]bool{}
	for _, id := range first.ViewsUsed {
		used[id] = true
	}
	if !used[v1a] {
		doomed = v1b
	}
	if !sys.RemoveView(doomed) {
		t.Fatalf("RemoveView(%d) failed", doomed)
	}

	second, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts())
	if err != nil {
		t.Fatalf("query unanswerable after dropping a redundant view: %v", err)
	}
	for _, id := range second.ViewsUsed {
		if id == doomed {
			t.Fatalf("cached plan served dropped view %d", doomed)
		}
	}
	if strings.Join(first.Codes(), ",") != strings.Join(second.Codes(), ",") {
		t.Fatalf("answers drifted after invalidation: %v vs %v", first.Codes(), second.Codes())
	}
	if st := sys.PlanCacheStats(); st.Invalidations == 0 {
		t.Fatalf("RemoveView invalidated nothing: %+v", st)
	}

	// Dropping the last V1 makes the query unanswerable — and the stale
	// plan must not pretend otherwise.
	survivor := v1a + v1b - doomed
	if !sys.RemoveView(survivor) {
		t.Fatalf("RemoveView(%d) failed", survivor)
	}
	if _, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts()); !errors.Is(err, xpathviews.ErrNotAnswerable) {
		t.Fatalf("expected ErrNotAnswerable after dropping all Δ-views, got %v", err)
	}
}

// TestPlanCacheInvalidationApplyAdvice: a cached negative plan (the query
// was unanswerable) must be invalidated when ApplyAdvice materializes the
// views that answer it.
func TestPlanCacheInvalidationApplyAdvice(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 47})
	sys, err := xpathviews.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const q = "//person/name"

	if _, err := sys.AnswerContext(ctx, q, mvOpts()); !errors.Is(err, xpathviews.ErrNotAnswerable) {
		t.Fatalf("expected ErrNotAnswerable with no views, got %v", err)
	}
	// The negative outcome is itself cached: the retry hits.
	before := sys.PlanCacheStats()
	if _, err := sys.AnswerContext(ctx, q, mvOpts()); !errors.Is(err, xpathviews.ErrNotAnswerable) {
		t.Fatalf("expected cached ErrNotAnswerable, got %v", err)
	}
	if after := sys.PlanCacheStats(); after.Hits <= before.Hits {
		t.Fatalf("negative plan was not cached: %+v -> %+v", before, after)
	}

	adv, err := sys.Advise(advisor.StatsFromEntries([]workload.Entry{{Freq: 5, Query: q}}),
		xpathviews.AdviceOptions{ByteBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ApplyAdvice(adv); err != nil {
		t.Fatal(err)
	}

	res, err := sys.AnswerContext(ctx, q, mvOpts())
	if err != nil {
		t.Fatalf("stale negative plan survived ApplyAdvice: %v", err)
	}
	base, err := sys.Answer(q, xpathviews.BF)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Codes(), ",") != strings.Join(base.Codes(), ",") {
		t.Fatalf("post-advice answers drifted: %v vs %v", res.Codes(), base.Codes())
	}
}

// TestChaosPlanCacheInvalidation is the fault-injection variant of the
// invalidation property. A cached plan legitimately serves past armed
// filtering/selection fault points (those stages are skipped on a hit);
// the moment the view set changes, the recompute must run the real —
// faulted — pipeline and contain the failure, and recover once disarmed.
func TestChaosPlanCacheInvalidation(t *testing.T) {
	sys := chaosSystem(t)
	ctx := context.Background()

	warm, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts())
	if err != nil {
		t.Fatal(err)
	}

	defer faults.DisarmAll()
	faults.Arm("vfilter.filtering", faults.Error)
	faults.Arm("selection.minimum", faults.Error)

	// Hit path: armed plan-stage faults do not fire on a cache hit.
	hit, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts())
	if err != nil {
		t.Fatalf("cache hit ran the faulted plan stages: %v", err)
	}
	if strings.Join(hit.Codes(), ",") != strings.Join(warm.Codes(), ",") {
		t.Fatalf("hit answers drifted under armed faults: %v vs %v", hit.Codes(), warm.Codes())
	}

	// A view-set change invalidates the plan; the recompute must hit the
	// armed pipeline and fail contained — never serve the stale plan.
	if _, err := sys.AddView("//f//i", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts()); !errors.Is(err, xpathviews.ErrInternal) {
		t.Fatalf("invalidated plan did not recompute through the faulted pipeline: %v", err)
	}
	if faults.Hits("vfilter.filtering") == 0 && faults.Hits("selection.minimum") == 0 {
		t.Fatal("no plan-stage fault fired on the recompute")
	}

	faults.DisarmAll()
	res, err := sys.AnswerContext(ctx, paperdata.QueryE, mvOpts())
	if err != nil {
		t.Fatalf("pipeline unhealthy after chaos: %v", err)
	}
	if strings.Join(res.Codes(), ",") != strings.Join(warm.Codes(), ",") {
		t.Fatalf("post-chaos answers drifted: %v vs %v", res.Codes(), warm.Codes())
	}
}
